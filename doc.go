// Package lambdatune is a reproduction of "λ-Tune: Harnessing Large Language
// Models for Automated Database System Tuning" (Giannakouris & Trummer,
// SIGMOD 2025) as a self-contained Go library.
//
// λ-Tune tunes a database system for an OLAP workload by asking a large
// language model for entire configuration scripts — parameter settings plus
// index recommendations — and then selecting the best candidate with a
// principled, cost-bounded evaluation scheme:
//
//   - prompt generation compresses the workload's join structure and picks
//     the most valuable join snippets under a token budget by solving an
//     integer linear program (paper §3);
//   - configuration selection evaluates candidates in rounds under
//     geometrically growing timeouts, bounding total tuning time by
//     O(k·α·C_best) (paper §4);
//   - configuration evaluation creates indexes lazily and orders queries
//     with a dynamic-programming scheduler that minimizes expected
//     index-creation cost (paper §5).
//
// The package tunes the bundled simulated DBMS (PostgreSQL- and
// MySQL-flavoured; see DESIGN.md for the substitution rationale), runs the
// paper's benchmarks (TPC-H, TPC-DS, JOB), and ships every baseline of the
// evaluation. Quick start:
//
//	db, w, _ := lambdatune.Benchmark("tpch-1", lambdatune.Postgres)
//	res, _ := db.Tune(w, lambdatune.NewSimulatedLLM(1), lambdatune.DefaultOptions())
//	fmt.Println(res.BestScript)
//
// Plug in a real LLM by implementing Client.
package lambdatune
