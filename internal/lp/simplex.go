// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0
//
// Negative right-hand sides are handled with artificial variables in a
// textbook phase 1. It is the LP-relaxation engine behind the 0-1 ILP solver
// in internal/ilp, which λ-Tune's workload compressor uses to select join
// snippets under a token budget (paper §3.3).
package lp

import (
	"errors"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	// Stalled means the pivot-iteration cap was hit before reaching
	// optimality (a numerical-degeneracy backstop). Callers needing a
	// bound must treat Stalled conservatively.
	Stalled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Stalled:
		return "stalled"
	}
	return "unknown"
}

// Problem is a linear program: maximize Obj·x subject to A·x ≤ B, x ≥ 0.
type Problem struct {
	// Obj holds the objective coefficients, one per variable.
	Obj []float64
	// A is the constraint matrix, len(A) rows × len(Obj) columns.
	A [][]float64
	// B holds the right-hand sides, one per row; negative values are
	// allowed.
	B []float64
}

// Solution holds an optimal basic solution.
type Solution struct {
	Status Status
	// X is the optimal assignment (valid only when Status == Optimal).
	X []float64
	// Objective is Obj·X.
	Objective float64
}

const (
	eps = 1e-9
	// maxPivots caps simplex iterations per phase as a cycling backstop.
	maxPivots = 50000
	// blandAfter switches from Dantzig's to Bland's pivoting rule after
	// this many iterations without objective progress.
	blandAfter = 200
)

// ErrBadShape reports mismatched problem dimensions.
var ErrBadShape = errors.New("lp: constraint matrix shape does not match objective/rhs")

// Solve runs two-phase primal simplex.
func Solve(p Problem) (Solution, error) {
	n := len(p.Obj)
	m := len(p.A)
	if len(p.B) != m {
		return Solution{}, ErrBadShape
	}
	for _, row := range p.A {
		if len(row) != n {
			return Solution{}, ErrBadShape
		}
	}

	t := newTableau(p)
	if t.na > 0 {
		switch t.phase1() {
		case Infeasible:
			return Solution{Status: Infeasible}, nil
		case Stalled:
			return Solution{Status: Stalled}, nil
		}
	}
	switch t.phase2() {
	case Unbounded:
		return Solution{Status: Unbounded}, nil
	case Stalled:
		return Solution{Status: Stalled}, nil
	}
	x := t.extract(n)
	obj := 0.0
	for j, c := range p.Obj {
		obj += c * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau. Columns: 0..n-1 structural,
// n..n+m-1 slack/surplus, n+m..n+m+na-1 artificial, last column RHS.
// Row m is the objective row.
type tableau struct {
	n, m, na int
	width    int
	rows     [][]float64
	basis    []int
	obj      []float64
	// phase1c is the phase-1 cost vector, carved from the same backing
	// allocation as the rows so a solve costs one slab instead of a make
	// per row plus one per phase-1 call.
	phase1c []float64
}

func newTableau(p Problem) *tableau {
	n, m := len(p.Obj), len(p.A)
	na := 0
	for _, b := range p.B {
		if b < 0 {
			na++
		}
	}
	t := &tableau{n: n, m: m, na: na, obj: p.Obj}
	t.width = n + m + na + 1
	t.rows = make([][]float64, m+1)
	t.basis = make([]int, m)
	// One contiguous backing slab: (m+1) tableau rows followed by the
	// phase-1 cost vector. Rows are fixed-width subslices with capped
	// capacity so no row can grow into its neighbor.
	backing := make([]float64, (m+1)*t.width+n+m+na)
	rowAt := func(i int) []float64 {
		return backing[i*t.width : (i+1)*t.width : (i+1)*t.width]
	}
	t.phase1c = backing[(m+1)*t.width:]
	art := 0
	for i := 0; i < m; i++ {
		row := rowAt(i)
		if p.B[i] >= 0 {
			copy(row, p.A[i])
			row[n+i] = 1 // slack
			row[t.width-1] = p.B[i]
			t.basis[i] = n + i
		} else {
			// Negate: -A·x ≥ -b ⇒ (−A)x − s + a = −b with −b > 0.
			for j, v := range p.A[i] {
				row[j] = -v
			}
			row[n+i] = -1            // surplus
			row[n+m+art] = 1         // artificial
			row[t.width-1] = -p.B[i] // positive
			t.basis[i] = n + m + art
			art++
		}
		t.rows[i] = row
	}
	t.rows[m] = rowAt(m)
	return t
}

func (t *tableau) rhs(i int) float64 { return t.rows[i][t.width-1] }

// installObjective fills the objective row for maximizing Σ c_j x_j over the
// first `cols` columns and prices out the current basis.
func (t *tableau) installObjective(c []float64) {
	objRow := t.rows[t.m]
	for j := range objRow {
		objRow[j] = 0
	}
	for j, v := range c {
		objRow[j] = -v
	}
	for i := 0; i < t.m; i++ {
		bv := t.basis[i]
		if coef := objRow[bv]; coef != 0 {
			row := t.rows[i]
			for j := range objRow {
				objRow[j] -= coef * row[j]
			}
		}
	}
}

// phase1 minimizes the sum of artificial variables.
func (t *tableau) phase1() Status {
	c := t.phase1c
	for k := 0; k < t.na; k++ {
		c[t.n+t.m+k] = -1 // maximize −Σ artificials
	}
	t.installObjective(c)
	// During phase 1 every column may enter (artificials included; they are
	// priced to never be attractive once out).
	if st := t.iterate(t.n + t.m); st == Stalled {
		return Stalled
	}
	// The objective row's RHS slot holds the current objective value
	// (−Σ artificials); a negative value means infeasible.
	if t.rows[t.m][t.width-1] < -1e-7 {
		return Infeasible
	}
	// Drive any basic artificials (at value 0) out of the basis.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n+t.m {
			continue
		}
		pivoted := false
		for j := 0; j < t.n+t.m; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it never constrains anything.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
	return Optimal
}

// phase2 optimizes the original objective from a feasible basis.
func (t *tableau) phase2() Status {
	t.installObjective(t.obj)
	return t.iterate(t.n + t.m) // artificial columns never re-enter
}

// iterate runs primal simplex pivots until optimality, unboundedness, or the
// iteration cap. Entering columns are restricted to indexes < limit.
func (t *tableau) iterate(limit int) Status {
	lastObj := math.Inf(-1)
	stall := 0
	objRow := t.rows[t.m]
	for iter := 0; ; iter++ {
		if iter > maxPivots {
			return Stalled
		}
		if obj := objRow[t.width-1]; obj > lastObj+1e-12 {
			lastObj = obj
			stall = 0
		} else {
			stall++
		}
		c := -1
		if stall > blandAfter {
			for j := 0; j < limit; j++ {
				if objRow[j] < -eps {
					c = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < limit; j++ {
				if objRow[j] < best {
					best = objRow[j]
					c = j
				}
			}
		}
		if c < 0 {
			return Optimal
		}
		// Ratio test; ties resolved toward the smallest basis index
		// (Bland-compatible leaving rule).
		pr := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][c]
			if a <= eps {
				continue
			}
			ratio := t.rhs(i) / a
			if ratio < bestRatio-eps ||
				(ratio <= bestRatio+eps && (pr < 0 || t.basis[i] < t.basis[pr])) {
				bestRatio = ratio
				pr = i
			}
		}
		if pr < 0 {
			return Unbounded
		}
		t.pivot(pr, c)
	}
}

func (t *tableau) pivot(r, c int) {
	pr := t.rows[r]
	pv := pr[c]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[c] = 1 // kill rounding noise
	for i := 0; i <= t.m; i++ {
		if i == r {
			continue
		}
		row := t.rows[i]
		f := row[c]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * pr[j]
		}
		row[c] = 0
	}
	t.basis[r] = c
}

func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			v := t.rhs(i)
			if v < 0 && v > -eps {
				v = 0
			}
			x[bv] = v
		}
	}
	return x
}
