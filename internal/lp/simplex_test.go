package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status: %v", s.Status)
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimplexBasic(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x=4, y=0, obj=12.
	s := solveOK(t, Problem{
		Obj: []float64{3, 2},
		A:   [][]float64{{1, 1}, {1, 3}},
		B:   []float64{4, 6},
	})
	if !approx(s.Objective, 12) {
		t.Errorf("objective: %v", s.Objective)
	}
}

func TestSimplexClassic(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 → x=3, y=1.5, obj=21.
	s := solveOK(t, Problem{
		Obj: []float64{5, 4},
		A:   [][]float64{{6, 4}, {1, 2}},
		B:   []float64{24, 6},
	})
	if !approx(s.Objective, 21) || !approx(s.X[0], 3) || !approx(s.X[1], 1.5) {
		t.Errorf("got X=%v obj=%v", s.X, s.Objective)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	s, err := Solve(Problem{
		Obj: []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status: %v", s.Status)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	s, err := Solve(Problem{
		Obj: []float64{1},
		A:   [][]float64{{1}},
		B:   []float64{-1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status: %v", s.Status)
	}
}

func TestSimplexPhase1(t *testing.T) {
	// Constraints requiring phase 1: -x - y <= -2 (i.e. x+y >= 2),
	// x <= 3, y <= 3. max -x - y → minimize x+y → obj = -2.
	s := solveOK(t, Problem{
		Obj: []float64{-1, -1},
		A:   [][]float64{{-1, -1}, {1, 0}, {0, 1}},
		B:   []float64{-2, 3, 3},
	})
	if !approx(s.Objective, -2) {
		t.Errorf("objective: %v (X=%v)", s.Objective, s.X)
	}
}

func TestSimplexEqualityViaPair(t *testing.T) {
	// x + y = 5 encoded as <= and >=; max 2x + y → x=5, obj=10.
	s := solveOK(t, Problem{
		Obj: []float64{2, 1},
		A:   [][]float64{{1, 1}, {-1, -1}},
		B:   []float64{5, -5},
	})
	if !approx(s.Objective, 10) {
		t.Errorf("objective: %v (X=%v)", s.Objective, s.X)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// A degenerate problem that can cycle without Bland's rule (Beale).
	s := solveOK(t, Problem{
		Obj: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if !approx(s.Objective, 0.05) {
		t.Errorf("objective: %v", s.Objective)
	}
}

func TestSimplexBadShape(t *testing.T) {
	if _, err := Solve(Problem{Obj: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("expected shape error")
	}
	if _, err := Solve(Problem{Obj: []float64{1}, A: [][]float64{{1}}, B: []float64{}}); err == nil {
		t.Error("expected shape error")
	}
}

func TestSimplexZeroConstraints(t *testing.T) {
	// No constraints and positive objective → unbounded.
	s, err := Solve(Problem{Obj: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status: %v", s.Status)
	}
	// Negative objective → optimum at origin.
	s = solveOK(t, Problem{Obj: []float64{-1, -2}})
	if !approx(s.Objective, 0) {
		t.Errorf("objective: %v", s.Objective)
	}
}

// TestSimplexRandomFeasibility: on random problems with b >= 0, the solution
// must satisfy all constraints and nonnegativity.
func TestSimplexRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := Problem{Obj: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.Obj {
			p.Obj[j] = rng.Float64()*4 - 2
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64()*2 - 0.5
			}
			p.B[i] = rng.Float64() * 10
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status == Infeasible {
			t.Fatalf("trial %d: b>=0 problem reported infeasible", trial)
		}
		if s.Status != Optimal {
			continue
		}
		for j, v := range s.X {
			if v < -1e-6 {
				t.Errorf("trial %d: x[%d] = %v < 0", trial, j, v)
			}
		}
		for i, row := range p.A {
			lhs := 0.0
			for j, a := range row {
				lhs += a * s.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %v > %v", trial, i, lhs, p.B[i])
			}
		}
	}
}

// TestSimplexWeakDuality: optimal objective must not exceed the bound given
// by any nonnegative combination of constraints dominating the objective.
func TestSimplexUpperBoundsRespected(t *testing.T) {
	// max x1 + x2 + x3 with x_i <= 1 each → obj = 3.
	s := solveOK(t, Problem{
		Obj: []float64{1, 1, 1},
		A:   [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		B:   []float64{1, 1, 1},
	})
	if !approx(s.Objective, 3) {
		t.Errorf("objective: %v", s.Objective)
	}
}
