package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a dense random LP with n variables and m constraints.
// Mixing negative right-hand sides in forces the two-phase path, so the
// benchmark covers both the phase-1 artificial pass and phase 2.
func benchProblem(n, m int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	p := Problem{Obj: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	for j := range p.Obj {
		p.Obj[j] = rng.Float64()*4 - 2
	}
	for i := range p.A {
		p.A[i] = make([]float64, n)
		for j := range p.A[i] {
			p.A[i][j] = rng.Float64()*2 - 0.5
		}
		p.B[i] = rng.Float64() * 10
		if i%4 == 0 {
			// Lower bound x_j >= 0.1 in ≤-form: a negative right-hand side
			// that needs an artificial variable yet stays feasible.
			for j := range p.A[i] {
				p.A[i][j] = 0
			}
			p.A[i][i%n] = -1
			p.B[i] = -0.1
		}
	}
	return p
}

// BenchmarkSimplex exercises Solve on LPs shaped like the ILP relaxations the
// knob-recommendation path produces (tens of variables and constraints).
func BenchmarkSimplex(b *testing.B) {
	for _, size := range []struct {
		name string
		n, m int
	}{
		{"n8m6", 8, 6},
		{"n24m16", 24, 16},
		{"n48m32", 48, 32},
	} {
		b.Run(size.name, func(b *testing.B) {
			p := benchProblem(size.n, size.m, 7)
			if s, err := Solve(p); err != nil || s.Status != Optimal {
				b.Fatalf("unsolvable benchmark problem: %v %v", s.Status, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
