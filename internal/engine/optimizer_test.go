package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func optTestDB(t *testing.T) *DB {
	t.Helper()
	return NewDB(Postgres, testCatalog(), DefaultHardware)
}

func TestMergeJoinFallbackWhenHashDisabled(t *testing.T) {
	db := optTestDB(t)
	s := db.Settings()
	s["enable_hashjoin"] = 0
	db.SetSettings(s)
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f, dim1 d WHERE f.f_d1 = d.d1_id")
	plan := db.Plan(q)
	foundMerge := false
	for _, st := range plan.Steps {
		if st.Kind == StepHashJoin {
			t.Fatalf("hash join used while disabled: %s", plan)
		}
		if st.Kind == StepMergeJoin {
			foundMerge = true
		}
		if st.Kind == StepNestLoop {
			t.Fatalf("quadratic nested loop instead of merge join: %s", plan)
		}
	}
	if !foundMerge {
		t.Errorf("no merge join in plan: %s", plan)
	}
}

func TestHashJoinOffBoundedSlowdown(t *testing.T) {
	// Disabling hash joins must cost single-digit factors (merge join
	// fallback), never the quadratic blowup of a naive nested loop.
	db := optTestDB(t)
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f, dim1 d WHERE f.f_d1 = d.d1_id")
	base := db.QuerySeconds(q)
	s := db.Settings()
	s["enable_hashjoin"] = 0
	db.SetSettings(s)
	slow := db.QuerySeconds(q)
	if slow < base*0.5 {
		t.Errorf("disabling hash joins halved runtime: %v vs %v", slow, base)
	}
	if slow > base*20 {
		t.Errorf("hash-off slowdown unbounded: %v vs %v", slow, base)
	}
}

func TestPlannerKnowsParallelScans(t *testing.T) {
	// The planner's seq-scan estimate accounts for parallel workers, so a
	// selective index scan should not be displaced by raising workers.
	db := optTestDB(t)
	db.CreateIndex(NewIndexDef("fact", "f_id"))
	s := db.Settings()
	s["random_page_cost"] = 1.1
	s["max_parallel_workers_per_gather"] = 7
	db.SetSettings(s)
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f WHERE f.f_id = 42")
	if plan := db.Plan(q); plan.Steps[0].Kind != StepIndexScan {
		t.Errorf("point lookup lost to parallel scan: %s", plan)
	}
}

func TestSelectivityOrdering(t *testing.T) {
	col := &Column{Name: "c", WidthBytes: 8, Distinct: 1000}
	eq := selectivity(col, 0)     // FilterEq
	in := selectivity(col, 1)     // FilterIn
	rng := selectivity(col, 2)    // FilterRange
	if !(eq <= in && in <= rng) { //nolint
		t.Errorf("selectivity ordering: eq=%v in=%v range=%v", eq, in, rng)
	}
	if s := selectivity(nil, 0); s <= 0 || s > 1 {
		t.Errorf("nil-column selectivity: %v", s)
	}
}

func TestSortCostSpill(t *testing.T) {
	noSpill := sortCost(1000, 1<<30)
	if noSpill.spillPages != 0 {
		t.Error("small sort spilled")
	}
	spill := sortCost(1_000_000, 64<<10)
	if spill.spillPages <= 0 {
		t.Error("huge sort with tiny work_mem did not spill")
	}
}

// TestQueryTimeMonotoneInBuffer is a property test: for random buffer sizes
// b1 < b2, runtime(b2) ≤ runtime(b1).
func TestQueryTimeMonotoneInBuffer(t *testing.T) {
	db := optTestDB(t)
	q := MustPrepareQuery("q", joinQuery)
	f := func(a, b uint32) bool {
		lo := float64(a%64+1) * float64(1<<28) // 256MB .. 16GB
		hi := float64(b%64+1) * float64(1<<28)
		if lo > hi {
			lo, hi = hi, lo
		}
		s := db.Settings()
		s["shared_buffers"] = lo
		db.SetSettings(s)
		tLo := db.QuerySeconds(q)
		s["shared_buffers"] = hi
		db.SetSettings(s)
		tHi := db.QuerySeconds(q)
		return tHi <= tLo+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPlanCostsFinite: plans never produce NaN/Inf on any workload query
// under randomized settings.
func TestPlanCostsFinite(t *testing.T) {
	db := optTestDB(t)
	f := func(wm, sb uint32, rpc uint8) bool {
		s := db.Settings()
		s["work_mem"] = float64(wm%1024+64) * 1024
		s["shared_buffers"] = float64(sb%4096+8) * float64(1<<20)
		s["random_page_cost"] = float64(rpc%40) + 0.1
		db.SetSettings(s)
		q := MustPrepareQuery("q", joinQuery)
		plan := db.Plan(q)
		for _, st := range plan.Steps {
			if math.IsNaN(st.EstCost) || math.IsInf(st.EstCost, 0) ||
				math.IsNaN(st.TrueSeconds) || math.IsInf(st.TrueSeconds, 0) ||
				st.TrueSeconds < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlanString(t *testing.T) {
	db := optTestDB(t)
	q := MustPrepareQuery("q", joinQuery)
	out := db.Plan(q).String()
	if out == "" {
		t.Error("empty plan rendering")
	}
}

func TestCompositeIndexNarrowsScan(t *testing.T) {
	// With filters on f_d2 (eq) and f_date (range), a composite index
	// (f_d2, f_date) must beat the single-column index (f_d2).
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f WHERE f.f_d2 = 7 AND f.f_date > 100")

	single := optTestDB(t)
	s := single.Settings()
	s["random_page_cost"] = 1.1
	single.SetSettings(s)
	single.CreateIndex(NewIndexDef("fact", "f_d2"))
	tSingle := single.QuerySeconds(q)

	composite := optTestDB(t)
	composite.SetSettings(s)
	composite.CreateIndex(NewIndexDef("fact", "f_d2", "f_date"))
	tComposite := composite.QuerySeconds(q)

	if tComposite >= tSingle {
		t.Errorf("composite index not narrower: %v vs single %v", tComposite, tSingle)
	}
	if plan := composite.Plan(q); plan.Steps[0].Kind != StepIndexScan {
		t.Errorf("composite plan: %s", plan)
	}
}

func TestCompositePrefixRequiresLeadingColumn(t *testing.T) {
	// An index (f_date, f_d2) cannot serve a filter on f_d2 alone... but a
	// filter on f_date can use it; a query filtering only f_d2 must not.
	db := optTestDB(t)
	s := db.Settings()
	s["random_page_cost"] = 1.1
	db.SetSettings(s)
	db.CreateIndex(NewIndexDef("fact", "f_date", "f_d2"))
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f WHERE f.f_d2 = 7")
	if plan := db.Plan(q); plan.Steps[0].Kind == StepIndexScan {
		t.Errorf("non-leading composite column used for index scan: %s", plan)
	}
}
