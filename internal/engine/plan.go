package engine

import (
	"fmt"
	"strings"

	"lambdatune/internal/sqlparser"
)

// StepKind identifies the operator of a plan step.
type StepKind int

// Plan step kinds.
const (
	StepSeqScan StepKind = iota
	StepIndexScan
	StepHashJoin
	StepMergeJoin
	StepIndexNLJoin
	StepNestLoop
	StepAggregate
)

func (k StepKind) String() string {
	switch k {
	case StepSeqScan:
		return "SeqScan"
	case StepIndexScan:
		return "IndexScan"
	case StepHashJoin:
		return "HashJoin"
	case StepMergeJoin:
		return "MergeJoin"
	case StepIndexNLJoin:
		return "IndexNLJoin"
	case StepNestLoop:
		return "NestLoop"
	case StepAggregate:
		return "Aggregate"
	}
	return "?"
}

// PlanStep is one operator of a left-deep plan.
type PlanStep struct {
	Kind  StepKind
	Table string // scanned or joined-in table ("" for Aggregate)
	// Join is the condition evaluated by a join step (nil for scans,
	// aggregates, and cartesian NestLoop steps).
	Join *sqlparser.JoinCondition
	// EstCost is the optimizer's estimated cost of this step in planner
	// units (depends on the tunable cost constants).
	EstCost float64
	// TrueSeconds is the simulated execution time of this step.
	TrueSeconds float64
	// OutRows is the estimated output cardinality after the step.
	OutRows float64
}

// Plan is a left-deep execution plan: a scan followed by join steps and a
// final aggregation step.
type Plan struct {
	Steps []PlanStep
}

// EstCost is the optimizer's total estimated cost.
func (p *Plan) EstCost() float64 {
	var sum float64
	for _, s := range p.Steps {
		sum += s.EstCost
	}
	return sum
}

// TrueSeconds is the total simulated runtime.
func (p *Plan) TrueSeconds() float64 {
	var sum float64
	for _, s := range p.Steps {
		sum += s.TrueSeconds
	}
	return sum
}

// String renders the plan in an EXPLAIN-like form.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%*s%s", i*2, "", s.Kind)
		if s.Table != "" {
			fmt.Fprintf(&sb, " %s", s.Table)
		}
		if s.Join != nil {
			fmt.Fprintf(&sb, " on %s", s.Join)
		}
		fmt.Fprintf(&sb, " (cost=%.1f rows=%.0f time=%.3fs)", s.EstCost, s.OutRows, s.TrueSeconds)
	}
	return sb.String()
}

// JoinCost pairs a join condition with the optimizer's estimated cost of the
// join operator evaluating it, as returned by EXPLAIN. λ-Tune's workload
// compressor sums these into snippet values V(p) (paper §3.2).
type JoinCost struct {
	Condition sqlparser.JoinCondition
	EstCost   float64
}
