package engine

import "testing"

func TestFlavorString(t *testing.T) {
	if Postgres.String() != "PostgreSQL" || MySQL.String() != "MySQL" {
		t.Errorf("flavor strings: %s, %s", Postgres, MySQL)
	}
}

func TestStepKindStrings(t *testing.T) {
	kinds := []StepKind{StepSeqScan, StepIndexScan, StepHashJoin, StepMergeJoin, StepIndexNLJoin, StepNestLoop, StepAggregate}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestParamCategoryStrings(t *testing.T) {
	for _, c := range []ParamCategory{CatMemory, CatOptimizer, CatIO, CatParallel, CatLogging} {
		if c.String() == "Other" || c.String() == "" {
			t.Errorf("category %d has no name", c)
		}
	}
}

func TestJoinKindStrings(t *testing.T) {
	// Every parameter in both catalogs is self-consistent: default within
	// [min, max], name lower-case.
	for _, f := range []Flavor{Postgres, MySQL} {
		pc := Params(f)
		for _, name := range pc.Names() {
			def, ok := pc.Lookup(name)
			if !ok {
				t.Fatalf("lookup %s failed", name)
			}
			if def.Default < def.Min || def.Default > def.Max {
				t.Errorf("%s %s: default %v outside [%v, %v]", f, name, def.Default, def.Min, def.Max)
			}
		}
	}
}

func TestDBString(t *testing.T) {
	db := NewDB(Postgres, testCatalog(), DefaultHardware)
	if db.String() == "" {
		t.Error("empty DB string")
	}
}

func TestIndexDefSQLAndString(t *testing.T) {
	d := NewIndexDef("T1", "ColA", "colB")
	if d.Key() != "t1(cola+colb)" {
		t.Errorf("key: %s", d.Key())
	}
	if d.SQL() != "CREATE INDEX idx_t1_cola_colb ON t1 (cola, colb);" {
		t.Errorf("sql: %s", d.SQL())
	}
	if d.String() == "" {
		t.Error("empty index string")
	}
	// Named index keeps its name in SQL.
	d.Name = "myidx"
	if d.SQL() != "CREATE INDEX myidx ON t1 (cola, colb);" {
		t.Errorf("named sql: %s", d.SQL())
	}
}
