package engine

import "fmt"

// ConfigRejectedError reports a configuration statement or parameter value
// the engine refused: an unsupported (possibly truncated) command, an empty
// script, or a value that does not parse for its parameter type. It
// satisfies errors.As, so callers can recover the offending statement and
// decide whether to re-request a sample or surface the rejection.
type ConfigRejectedError struct {
	// Stmt is the offending statement or "name = value" parameter setting.
	Stmt string
	// Reason explains the rejection.
	Reason string
	// Err, when set, is the underlying cause (a backend's own error wrapped
	// into the rejection type); it is reachable through errors.Unwrap.
	Err error
}

// Error implements error.
func (e *ConfigRejectedError) Error() string {
	if e.Stmt == "" {
		return "engine: configuration rejected: " + e.Reason
	}
	return fmt.Sprintf("engine: configuration rejected: %s: %q", e.Reason, e.Stmt)
}

// Unwrap exposes the underlying cause, if any.
func (e *ConfigRejectedError) Unwrap() error { return e.Err }

// rejected builds a ConfigRejectedError.
func rejected(stmt, format string, args ...any) error {
	return &ConfigRejectedError{Stmt: stmt, Reason: fmt.Sprintf(format, args...)}
}
