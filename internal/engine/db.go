package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DB is one simulated database instance: a catalog with statistics, a live
// parameter assignment, and a set of indexes, all on a virtual clock.
type DB struct {
	flavor   Flavor
	catalog  *Catalog
	hw       Hardware
	clock    Clock
	settings Settings
	eff      effects
	// keyEff is eff restricted to the fields the planner reads (the
	// plan-cache key): maintenanceBytes zeroed, see installSettings.
	keyEff effects
	// indexes maps IndexDef.Key() → definition.
	indexes map[string]IndexDef
	// permanent marks indexes that survive DropTransientIndexes (the
	// "initial indexes" of scenario 1).
	permanent map[string]bool
	// executed counts completed query executions (for test introspection).
	executed int
	// faults, when set, is consulted before query executions and index
	// builds; see SetFaultInjector.
	faults FaultInjector
	// queryAborts / indexFailures count injected engine faults.
	queryAborts   int
	indexFailures int
	// execHook, when set, observes every query execution; snapshots inherit
	// it (see SetExecHook).
	execHook ExecHook
	// base records the counters at Snapshot time (zero on primary instances);
	// AbsorbSnapshot folds deltas above it back into the parent.
	base snapBase
	// cache memoizes plans per (effects, index signature, query); see
	// plancache.go. groupKeys/groupSigs hold the lazily maintained sorted
	// key lists and interned content signatures per probe group — a
	// (table, leading column) pair, the granularity at which the planner
	// consults the index set. Mutations update one group (noteIndexChange)
	// and bump sigSeq; qsigs memoizes the per-query composition; sigs is the
	// intern table shared with snapshots; sigScratch is the full rebuild's
	// reusable key buffer.
	cache         planCache
	sigs          *sigIntern
	groupKeys     map[string][]string
	groupSigs     map[string]uint32
	qsigs         map[*Query]querySigEntry
	sigScratch    []string
	sigSeq        uint64
	indexSigDirty bool
	// scratch holds the planner's reusable allocation arena (optimizer.go).
	// Never shared: snapshots start with a nil scratch of their own.
	scratch *plannerScratch
}

// FaultInjector is the engine-side fault-injection hook (implemented by
// internal/faults.Injector). Both methods return the fraction of the
// operation's cost that was wasted before the fault hit, and whether to
// inject at all.
type FaultInjector interface {
	// QueryFault is consulted before executing q; when abort is true the
	// execution dies after wastedFrac of its (timeout-capped) runtime.
	QueryFault(q *Query) (wastedFrac float64, abort bool)
	// IndexFault is consulted before building def; when fail is true the
	// build dies after wastedFrac of its cost and the index does not exist.
	IndexFault(def IndexDef) (wastedFrac float64, fail bool)
}

// SetFaultInjector installs (or, with nil, removes) the fault hook.
func (db *DB) SetFaultInjector(fi FaultInjector) { db.faults = fi }

// QueryAborts returns the number of injected query aborts so far.
func (db *DB) QueryAborts() int { return db.queryAborts }

// IndexFailures returns the number of injected index-build failures so far.
func (db *DB) IndexFailures() int { return db.indexFailures }

// NewDB creates a database with default settings and no indexes.
func NewDB(f Flavor, catalog *Catalog, hw Hardware) *DB {
	db := &DB{
		flavor:    f,
		catalog:   catalog,
		hw:        hw,
		indexes:   map[string]IndexDef{},
		permanent: map[string]bool{},
		cache:     planCache{counters: &planCacheCounters{}},
		sigs:      &sigIntern{},
	}
	db.SetSettings(Params(f).Defaults())
	return db
}

// Flavor returns the emulated DBMS flavor.
func (db *DB) Flavor() Flavor { return db.flavor }

// Catalog returns the database schema and statistics.
func (db *DB) Catalog() *Catalog { return db.catalog }

// Hardware returns the host machine description.
func (db *DB) Hardware() Hardware { return db.hw }

// Clock returns the virtual clock.
func (db *DB) Clock() *Clock { return &db.clock }

// Executions returns the number of completed query executions.
func (db *DB) Executions() int { return db.executed }

// Settings returns a copy of the live parameter assignment.
func (db *DB) Settings() Settings { return db.settings.Clone() }

// SetSettings installs a full parameter assignment (missing parameters fall
// back to defaults).
func (db *DB) SetSettings(s Settings) {
	full := Params(db.flavor).Defaults()
	for k, v := range s {
		if _, ok := full[k]; ok {
			full[k] = v
		}
	}
	db.installSettings(full)
}

// installSettings takes ownership of a complete, validated assignment (every
// parameter present, values in domain) and re-derives the planner effects.
// Fast path for callers that already hold such a map — ResolveSettings
// returns one, so ApplyConfigParams skips the second defaults build that
// SetSettings would do.
func (db *DB) installSettings(full Settings) {
	db.settings = full
	db.eff = deriveEffects(db.flavor, full)
	// The plan-cache key drops maintenanceBytes: it prices index builds
	// (IndexCreationSeconds), never query plans, so a maintenance_work_mem
	// change must not invalidate memoized plans.
	db.keyEff = db.eff
	db.keyEff.maintenanceBytes = 0
}

// ResetSettings restores flavor defaults.
func (db *DB) ResetSettings() { db.SetSettings(nil) }

// ApplyConfigParams resolves and installs the parameter part of a
// configuration (indexes are handled separately so callers can create them
// lazily, per paper §5.1).
func (db *DB) ApplyConfigParams(c *Config) error {
	s, err := c.ResolveSettings(db.flavor)
	if err != nil {
		return err
	}
	db.installSettings(s)
	return nil
}

// HasIndex reports whether the exact index exists.
func (db *DB) HasIndex(def IndexDef) bool {
	_, ok := db.indexes[def.Key()]
	return ok
}

// hasIndexOnColumn reports whether any index has the column as its leading
// key.
func (db *DB) hasIndexOnColumn(table, column string) bool {
	table = strings.ToLower(table)
	column = strings.ToLower(column)
	for _, def := range db.indexes {
		if def.Table == table && def.ColumnList()[0] == column {
			return true
		}
	}
	return false
}

// indexPrefixMatch returns, among indexes on `table` whose leading key is
// `column`, the longest key prefix whose trailing columns all appear in
// `wanted` (nil when no such index exists). Composite indexes whose trailing
// key columns match further predicates narrow an index scan beyond the
// leading column.
func (db *DB) indexPrefixMatch(table, column string, wanted map[string]bool) []string {
	table = strings.ToLower(table)
	column = strings.ToLower(column)
	var best []string
	for _, def := range db.indexes {
		if def.Table != table {
			continue
		}
		cols := def.ColumnList()
		if cols[0] != column {
			continue
		}
		n := 1
		for _, c := range cols[1:] {
			if !wanted[c] {
				break
			}
			n++
		}
		if n > len(best) {
			best = cols[:n]
		}
	}
	return best
}

// Indexes returns all current index definitions, sorted by key.
func (db *DB) Indexes() []IndexDef {
	keys := make([]string, 0, len(db.indexes))
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]IndexDef, len(keys))
	for i, k := range keys {
		out[i] = db.indexes[k]
	}
	return out
}

// IndexCreationSeconds estimates how long creating the index takes under the
// current settings without creating it.
func (db *DB) IndexCreationSeconds(def IndexDef) float64 {
	t := db.catalog.Table(def.Table)
	if t == nil {
		return 0.05
	}
	rows := float64(t.Rows)
	cols := float64(len(def.ColumnList()))
	// Sort-dominated build: read + sort + write.
	units := rows*0.06*cols + float64(t.Pages())*trueSeqPage
	// maintenance_work_mem speeds the sort phase up to 40%.
	factor := 1.0
	if m := db.eff.maintenanceBytes; m > 0 {
		need := rows * 16
		if float64(m) >= need {
			factor = 0.6
		} else {
			factor = 1 - 0.4*float64(m)/need
		}
	}
	return units * factor / unitsPerSecond
}

// CreateIndex creates an index (idempotent) and advances the clock by its
// creation time. It returns the seconds spent (0 when it already existed).
// An injected build fault leaves the index absent but still costs the
// partial build time; callers proceed without the index and a later
// evaluation round retries the build.
func (db *DB) CreateIndex(def IndexDef) float64 {
	if db.HasIndex(def) {
		return 0
	}
	if db.catalog.Table(def.Table) == nil {
		return 0 // ignore indexes on unknown tables, as Postgres would error
	}
	secs := db.IndexCreationSeconds(def)
	if db.faults != nil {
		if frac, fail := db.faults.IndexFault(def); fail {
			wasted := frac * secs
			db.indexFailures++
			db.clock.Advance(wasted)
			return wasted
		}
	}
	db.indexes[def.Key()] = def
	db.noteIndexChange(def, true)
	db.clock.Advance(secs)
	return secs
}

// CreatePermanentIndex creates an index that survives DropTransientIndexes.
// Used to set up the "initial indexes" scenario; does not advance the clock.
func (db *DB) CreatePermanentIndex(def IndexDef) {
	if db.catalog.Table(def.Table) == nil {
		return
	}
	if _, ok := db.indexes[def.Key()]; !ok {
		db.noteIndexChange(def, true)
	}
	db.indexes[def.Key()] = def
	db.permanent[def.Key()] = true
}

// DropIndex removes an index if present (permanent ones included).
func (db *DB) DropIndex(def IndexDef) {
	if _, ok := db.indexes[def.Key()]; ok {
		db.noteIndexChange(def, false)
	}
	delete(db.indexes, def.Key())
	delete(db.permanent, def.Key())
}

// DropTransientIndexes removes every index created by CreateIndex, keeping
// permanent (initial) ones. Dropping is metadata-only and free, matching the
// paper's assumption that evaluation cost is dominated by creations.
func (db *DB) DropTransientIndexes() {
	for k := range db.indexes {
		if !db.permanent[k] {
			def := db.indexes[k]
			delete(db.indexes, k)
			db.noteIndexChange(def, false)
		}
	}
}

// PermanentIndexCount returns the number of initial indexes.
func (db *DB) PermanentIndexCount() int { return len(db.permanent) }

// Explain plans the query under the current configuration and returns the
// estimated cost of each join operator, keyed by its join condition.
func (db *DB) Explain(q *Query) []JoinCost {
	plan := db.cachedPlan(q)
	var out []JoinCost
	for _, s := range plan.Steps {
		if s.Join != nil {
			out = append(out, JoinCost{Condition: *s.Join, EstCost: s.EstCost})
		}
	}
	return out
}

// Plan exposes the chosen plan (for tests and the in-depth analysis tools).
// The returned plan may be served from the memoization cache and must be
// treated as immutable.
func (db *DB) Plan(q *Query) *Plan { return db.cachedPlan(q) }

// QuerySeconds returns the simulated runtime of the query under the current
// configuration without executing it or advancing the clock.
func (db *DB) QuerySeconds(q *Query) float64 {
	return db.cachedPlan(q).TrueSeconds()
}

// Execute runs the query with a timeout (in simulated seconds; pass
// math.Inf(1) for none). The clock advances by the time consumed — the full
// runtime on completion, or the timeout on interruption.
func (db *DB) Execute(q *Query, timeout float64) ExecResult {
	secs := db.QuerySeconds(q)
	capped := secs
	if timeout >= 0 && secs > timeout && !math.IsInf(timeout, 1) {
		capped = timeout
	}
	if db.execHook != nil {
		db.execHook(q, capped)
	}
	if db.faults != nil {
		if frac, abort := db.faults.QueryFault(q); abort {
			wasted := frac * capped
			db.queryAborts++
			db.clock.Advance(wasted)
			return ExecResult{Seconds: wasted, Complete: false, Aborted: true}
		}
	}
	if capped < secs {
		db.clock.Advance(capped)
		return ExecResult{Seconds: capped, Complete: false}
	}
	db.clock.Advance(secs)
	db.executed++
	return ExecResult{Seconds: secs, Complete: true}
}

// WorkloadSeconds sums QuerySeconds over the queries (no clock advance).
func (db *DB) WorkloadSeconds(qs []*Query) float64 {
	var sum float64
	for _, q := range qs {
		sum += db.QuerySeconds(q)
	}
	return sum
}

// String describes the instance.
func (db *DB) String() string {
	return fmt.Sprintf("%s[%s, %d tables, %d indexes]",
		db.flavor, db.catalog.Name, len(db.catalog.tables), len(db.indexes))
}
