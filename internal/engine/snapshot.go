package engine

// snapBase records a snapshot's operation counters at birth, so the parent
// can later absorb only the delta the snapshot accumulated (AbsorbSnapshot).
type snapBase struct {
	executed      int
	queryAborts   int
	indexFailures int
}

// ExecHook observes every query execution on the instance: q is the query,
// seconds the (timeout-capped) virtual runtime about to be charged. Snapshots
// inherit the hook, and the parallel evaluator runs snapshots concurrently,
// so implementations must be safe for concurrent use. The E13 scaling study
// uses the hook to attach a real CPU cost to simulated executions.
type ExecHook func(q *Query, seconds float64)

// SetExecHook installs (or, with nil, removes) the execution observer.
func (db *DB) SetExecHook(h ExecHook) { db.execHook = h }

// HasFaultInjector reports whether a fault injector is installed. The
// selector uses it to force the sequential evaluation path: an injector's
// fault sequence is defined on the primary instance's clock and rng, so it
// cannot be replayed deterministically across parallel replicas.
func (db *DB) HasFaultInjector() bool { return db.faults != nil }

// Snapshot returns an independent clone of the instance for parallel
// candidate evaluation: the parameter assignment, the index set, and the
// operation counters are copied, while the catalog (immutable statistics) and
// hardware description are shared. The clone gets its own virtual clock
// starting at the parent's current time, so per-candidate runtimes measured
// on a snapshot are exactly what the primary would have measured.
//
// The fault injector is deliberately not inherited — snapshots evaluate
// fault-free (see HasFaultInjector). The exec hook is inherited and must
// therefore be concurrency-safe.
//
// The plan-memoization cache is shared copy-on-write: the parent's private
// write layer is frozen into the immutable layer chain, and the clone reads
// that chain while directing its own plannings into a fresh private write
// map — concurrent replicas never lock on the planning hot path, and a
// child's writes never leak into the parent (AbsorbSnapshot folds them back
// explicitly). The planner scratch arena is deliberately not inherited.
//
// Cost: O(parameters + indexes) — a few hundred map entries — independent of
// catalog size, so snapshotting per worker per round is cheap.
func (db *DB) Snapshot() *DB {
	clone := &DB{
		flavor:        db.flavor,
		catalog:       db.catalog,
		hw:            db.hw,
		clock:         db.clock,
		settings:      db.settings.Clone(),
		eff:           db.eff,
		keyEff:        db.keyEff,
		indexes:       make(map[string]IndexDef, len(db.indexes)),
		permanent:     make(map[string]bool, len(db.permanent)),
		executed:      db.executed,
		queryAborts:   db.queryAborts,
		indexFailures: db.indexFailures,
		execHook:      db.execHook,
		cache:         db.cache.snapshotCache(),
		// The signature maps are mutable and never shared: the clone rebuilds
		// them lazily. The intern table IS shared (and locked), so rebuilt
		// contents resolve to the parent's ids and shared frozen cache
		// entries still hit.
		sigs:          db.sigs,
		indexSigDirty: true,
	}
	for k, v := range db.indexes {
		clone.indexes[k] = v
	}
	for k := range db.permanent {
		clone.permanent[k] = true
	}
	clone.base = snapBase{
		executed:      db.executed,
		queryAborts:   db.queryAborts,
		indexFailures: db.indexFailures,
	}
	return clone
}

// AbsorbSnapshot folds the operation counters a snapshot accumulated since
// Snapshot back into the parent, so introspection (Executions, QueryAborts,
// IndexFailures) covers work done on replicas. The clock is deliberately not
// merged: the parallel evaluator's round rule — elapsed time is the max over
// workers, modeling N parallel DBMS replicas — governs time, and the pool
// advances the parent clock itself (see evaluator.Pool).
func (db *DB) AbsorbSnapshot(s *DB) {
	if s == nil {
		return
	}
	db.executed += s.executed - s.base.executed
	db.queryAborts += s.queryAborts - s.base.queryAborts
	db.indexFailures += s.indexFailures - s.base.indexFailures
	db.cache.absorb(&s.cache)
}
