package engine

import (
	"math"
	"testing"
)

// scriptedFaults aborts/fails according to pre-programmed decisions.
type scriptedFaults struct {
	queryFrac float64
	queryHits int // number of query executions to abort (counts down)
	indexFrac float64
	indexHits int
}

func (s *scriptedFaults) QueryFault(q *Query) (float64, bool) {
	if s.queryHits > 0 {
		s.queryHits--
		return s.queryFrac, true
	}
	return 0, false
}

func (s *scriptedFaults) IndexFault(def IndexDef) (float64, bool) {
	if s.indexHits > 0 {
		s.indexHits--
		return s.indexFrac, true
	}
	return 0, false
}

func TestExecuteAbortWastesTimeAndRetries(t *testing.T) {
	db := testDB(t)
	q, err := PrepareQuery("q", joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	full := db.QuerySeconds(q)
	db.SetFaultInjector(&scriptedFaults{queryFrac: 0.5, queryHits: 1})

	res := db.Execute(q, math.Inf(1))
	if !res.Aborted || res.Complete {
		t.Fatalf("want aborted incomplete result, got %+v", res)
	}
	if want := 0.5 * full; math.Abs(res.Seconds-want) > 1e-9 {
		t.Fatalf("wasted %v, want %v", res.Seconds, want)
	}
	if math.Abs(db.Clock().Now()-res.Seconds) > 1e-9 {
		t.Fatalf("clock = %v, want %v", db.Clock().Now(), res.Seconds)
	}
	if db.QueryAborts() != 1 {
		t.Fatalf("QueryAborts = %d, want 1", db.QueryAborts())
	}
	// Immediate re-execution succeeds (the fault was transient).
	res = db.Execute(q, math.Inf(1))
	if !res.Complete || res.Aborted {
		t.Fatalf("retry should complete, got %+v", res)
	}
}

func TestExecuteAbortRespectsTimeoutCap(t *testing.T) {
	db := testDB(t)
	q, err := PrepareQuery("q", joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	db.SetFaultInjector(&scriptedFaults{queryFrac: 1, queryHits: 1})
	timeout := db.QuerySeconds(q) / 4
	res := db.Execute(q, timeout)
	if !res.Aborted {
		t.Fatalf("want abort, got %+v", res)
	}
	if res.Seconds > timeout+1e-9 {
		t.Fatalf("abort wasted %v, exceeding the %v timeout budget", res.Seconds, timeout)
	}
}

func TestCreateIndexFailureLosesTimeNotIndex(t *testing.T) {
	db := testDB(t)
	def := NewIndexDef("fact", "f_d1")
	fullCost := db.IndexCreationSeconds(def)
	db.SetFaultInjector(&scriptedFaults{indexFrac: 0.25, indexHits: 1})

	wasted := db.CreateIndex(def)
	if want := 0.25 * fullCost; math.Abs(wasted-want) > 1e-9 {
		t.Fatalf("wasted %v, want %v", wasted, want)
	}
	if db.HasIndex(def) {
		t.Fatal("failed build must not leave the index behind")
	}
	if db.IndexFailures() != 1 {
		t.Fatalf("IndexFailures = %d, want 1", db.IndexFailures())
	}
	// Retry succeeds and pays the full cost.
	secs := db.CreateIndex(def)
	if math.Abs(secs-fullCost) > 1e-9 || !db.HasIndex(def) {
		t.Fatalf("retry: secs=%v hasIndex=%v", secs, db.HasIndex(def))
	}
}

func TestSetFaultInjectorNilRestoresCleanPath(t *testing.T) {
	db := testDB(t)
	q, err := PrepareQuery("q", joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	db.SetFaultInjector(&scriptedFaults{queryFrac: 1, queryHits: 100})
	db.SetFaultInjector(nil)
	if res := db.Execute(q, math.Inf(1)); !res.Complete {
		t.Fatalf("clean path broken: %+v", res)
	}
}
