// Package engine implements the simulated DBMS that λ-Tune tunes.
//
// The engine substitutes for the PostgreSQL 12 / MySQL 8 installations of the
// paper's testbed. It exposes exactly the surfaces λ-Tune and the baselines
// observe on a real system: a configuration interface (ALTER SYSTEM SET /
// SET GLOBAL plus CREATE INDEX), an EXPLAIN facility with per-join cost
// estimates, query execution with timeouts, and index-creation times. Query
// runtimes come from a deterministic cost model on a virtual clock, so
// experiments are fast and bit-for-bit reproducible while preserving the
// parameter→performance couplings that the tuning algorithms exploit.
package engine

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table with its statistics.
type Column struct {
	Name string
	// WidthBytes is the average stored width.
	WidthBytes int
	// Distinct is the number of distinct values (≥ 1).
	Distinct int64
}

// Table describes a base table with its statistics.
type Table struct {
	Name    string
	Rows    int64
	Columns []Column
	// PrimaryKey lists the primary-key columns (used for the
	// "initial indexes" scenario).
	PrimaryKey []string
	// ForeignKeys lists foreign-key columns.
	ForeignKeys []string
}

// RowWidth returns the total average row width in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.WidthBytes
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Pages returns the number of 8 KiB pages the table occupies.
func (t *Table) Pages() int64 {
	p := t.Rows * int64(t.RowWidth()) / 8192
	if p < 1 {
		p = 1
	}
	return p
}

// SizeBytes returns the table size in bytes.
func (t *Table) SizeBytes() int64 { return t.Rows * int64(t.RowWidth()) }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// Catalog is the schema plus statistics of a database.
type Catalog struct {
	Name   string
	tables map[string]*Table
}

// NewCatalog builds a catalog from table definitions. Table and column names
// are normalized to lower case.
func NewCatalog(name string, tables []Table) *Catalog {
	c := &Catalog{Name: name, tables: make(map[string]*Table, len(tables))}
	for i := range tables {
		t := tables[i]
		t.Name = strings.ToLower(t.Name)
		for j := range t.Columns {
			t.Columns[j].Name = strings.ToLower(t.Columns[j].Name)
			if t.Columns[j].Distinct < 1 {
				t.Columns[j].Distinct = 1
			}
		}
		for j := range t.PrimaryKey {
			t.PrimaryKey[j] = strings.ToLower(t.PrimaryKey[j])
		}
		for j := range t.ForeignKeys {
			t.ForeignKeys[j] = strings.ToLower(t.ForeignKeys[j])
		}
		c.tables[t.Name] = &t
	}
	return c
}

// Table returns the named table (case-insensitive), or nil.
func (c *Catalog) Table(name string) *Table {
	return c.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = c.tables[n]
	}
	return out
}

// Fingerprint digests the catalog — name, tables, statistics, and key
// declarations — into a stable hex string. Two catalogs fingerprint equal
// exactly when the cost model sees the same schema, so the runtime uses it
// (with the workload digest) to key cross-job memo namespaces: jobs may share
// memo state only when their simulated plans are provably interchangeable.
func (c *Catalog) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "catalog %s\n", c.Name)
	for _, t := range c.Tables() {
		fmt.Fprintf(h, "table %s rows %d pk %q fk %q\n", t.Name, t.Rows, t.PrimaryKey, t.ForeignKeys)
		for _, col := range t.Columns {
			fmt.Fprintf(h, "col %s width %d distinct %d\n", col.Name, col.WidthBytes, col.Distinct)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// TotalBytes returns the size of all tables.
func (c *Catalog) TotalBytes() int64 {
	var sum int64
	for _, t := range c.tables {
		sum += t.SizeBytes()
	}
	return sum
}

// Validate checks referential sanity of the catalog definition.
func (c *Catalog) Validate() error {
	for _, t := range c.tables {
		if t.Rows <= 0 {
			return fmt.Errorf("engine: table %s has non-positive row count", t.Name)
		}
		if len(t.Columns) == 0 {
			return fmt.Errorf("engine: table %s has no columns", t.Name)
		}
		for _, pk := range t.PrimaryKey {
			if t.Column(pk) == nil {
				return fmt.Errorf("engine: table %s: primary key column %s not found", t.Name, pk)
			}
		}
		for _, fk := range t.ForeignKeys {
			if t.Column(fk) == nil {
				return fmt.Errorf("engine: table %s: foreign key column %s not found", t.Name, fk)
			}
		}
	}
	return nil
}

// Hardware describes the machine hosting the database, mirroring the two
// properties λ-Tune's prompt conveys (paper §3.1).
type Hardware struct {
	Cores       int
	MemoryBytes int64
}

// DefaultHardware matches the paper's EC2 p3.2xlarge testbed
// (8 vCPU, 61 GB RAM).
var DefaultHardware = Hardware{Cores: 8, MemoryBytes: 61 << 30}
