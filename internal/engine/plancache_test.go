package engine

import (
	"fmt"
	"testing"
)

// step drives the table-driven invalidation tests: mutate the DB, plan the
// query, and check whether the lookup hit or missed.
type cacheStep struct {
	name    string
	mutate  func(t *testing.T, db *DB)
	wantHit bool
}

func runCacheSteps(t *testing.T, db *DB, q *Query, steps []cacheStep) {
	t.Helper()
	for _, st := range steps {
		before := db.PlanCacheStats()
		if st.mutate != nil {
			st.mutate(t, db)
		}
		db.QuerySeconds(q)
		after := db.PlanCacheStats()
		gotHit := after.Hits == before.Hits+1 && after.Misses == before.Misses
		gotMiss := after.Misses == before.Misses+1 && after.Hits == before.Hits
		switch {
		case !gotHit && !gotMiss:
			t.Fatalf("%s: counters moved %+v -> %+v, want exactly one lookup", st.name, before, after)
		case gotHit != st.wantHit:
			t.Errorf("%s: hit=%v, want hit=%v", st.name, gotHit, st.wantHit)
		}
	}
}

// TestPlanCacheSettingsInvalidation: a parameter change must miss, while
// re-installing an identical assignment (same effects fingerprint) must hit.
func TestPlanCacheSettingsInvalidation(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	runCacheSteps(t, db, q, []cacheStep{
		{name: "first plan", wantHit: false},
		{name: "repeat", wantHit: true},
		{name: "work_mem change", wantHit: false, mutate: func(t *testing.T, db *DB) {
			s := db.Settings()
			s["work_mem"] = float64(int64(1) << 30)
			db.SetSettings(s)
		}},
		{name: "identical settings reinstalled", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.SetSettings(db.Settings())
		}},
		{name: "non-planner knob change", wantHit: true, mutate: func(t *testing.T, db *DB) {
			s := db.Settings()
			s["maintenance_work_mem"] = float64(int64(2) << 30)
			db.SetSettings(s)
		}},
		{name: "revert to defaults", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.ResetSettings()
		}},
	})
}

// TestPlanCacheConfigReapplication: applying the same configuration again —
// the selector does this on every revisit — must not invalidate anything.
func TestPlanCacheConfigReapplication(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	cfg := &Config{ID: "c", Params: map[string]string{"work_mem": "512MB", "shared_buffers": "2GB"}}
	apply := func(t *testing.T, db *DB) {
		if err := db.ApplyConfigParams(cfg); err != nil {
			t.Fatal(err)
		}
	}
	runCacheSteps(t, db, q, []cacheStep{
		{name: "plan under config", wantHit: false, mutate: apply},
		{name: "identical config reapplied", wantHit: true, mutate: apply},
	})
}

// TestPlanCacheIndexInvalidation: index creation must miss; dropping the
// transient indexes restores a previously seen index set, so the
// content-addressed signature turns what a mutation counter would miss into
// a hit.
func TestPlanCacheIndexInvalidation(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	ix := NewIndexDef("fact", "f_d1")
	runCacheSteps(t, db, q, []cacheStep{
		{name: "first plan", wantHit: false},
		{name: "create index", wantHit: false, mutate: func(t *testing.T, db *DB) {
			if db.CreateIndex(ix) <= 0 {
				t.Fatal("index not created")
			}
		}},
		{name: "repeat with index", wantHit: true},
		{name: "recreate existing index is a no-op", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.CreateIndex(ix)
		}},
		{name: "drop transient restores prior key", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.DropTransientIndexes()
		}},
		{name: "re-create same index set hits again", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.CreateIndex(ix)
		}},
		{name: "drop via DropIndex", wantHit: true, mutate: func(t *testing.T, db *DB) {
			db.DropIndex(ix)
		}},
	})
}

// TestPlanCacheUnrelatedIndexKeepsEntry: the signature only covers the
// query's probe groups — (table, leading column) pairs from its filters and
// joins — so physical-design churn the planner would never look at (an
// index-search baseline toggling candidates) leaves the entry valid.
func TestPlanCacheUnrelatedIndexKeepsEntry(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", "SELECT SUM(f_val) FROM fact WHERE f_val > 100")
	runCacheSteps(t, db, q, []cacheStep{
		{name: "first plan", wantHit: false},
		{name: "index on unreferenced table", wantHit: true, mutate: func(t *testing.T, db *DB) {
			if db.CreateIndex(NewIndexDef("dim1", "d1_cat")) <= 0 {
				t.Fatal("index not created")
			}
		}},
		{name: "index on unprobed column of same table", wantHit: true, mutate: func(t *testing.T, db *DB) {
			if db.CreateIndex(NewIndexDef("fact", "f_d1")) <= 0 {
				t.Fatal("index not created")
			}
		}},
		{name: "index on probed column", wantHit: false, mutate: func(t *testing.T, db *DB) {
			if db.CreateIndex(NewIndexDef("fact", "f_val")) <= 0 {
				t.Fatal("index not created")
			}
		}},
		{name: "composite index in probed group", wantHit: false, mutate: func(t *testing.T, db *DB) {
			if db.CreateIndex(NewIndexDef("fact", "f_val", "f_d1")) <= 0 {
				t.Fatal("index not created")
			}
		}},
	})
}

// TestPlanCacheOffIdenticalResults: the cache must be invisible in every
// simulated number — the same measurement sequence on a cache-off DB yields
// bit-identical times, and the off DB's counters never move.
func TestPlanCacheOffIdenticalResults(t *testing.T) {
	on := testDB(t)
	off := testDB(t)
	off.SetPlanCache(false)
	q := MustPrepareQuery("q", joinQuery)
	ix := NewIndexDef("fact", "f_d2")
	for round := 0; round < 3; round++ {
		for _, db := range []*DB{on, off} {
			s := db.Settings()
			s["work_mem"] = float64(int64(round+1) << 24)
			db.SetSettings(s)
			db.CreateIndex(ix)
		}
		for rep := 0; rep < 2; rep++ {
			a, b := on.QuerySeconds(q), off.QuerySeconds(q)
			if a != b {
				t.Fatalf("round %d rep %d: cache-on %v != cache-off %v", round, rep, a, b)
			}
		}
		on.DropTransientIndexes()
		off.DropTransientIndexes()
	}
	if st := off.PlanCacheStats(); st.Lookups() != 0 {
		t.Errorf("disabled cache recorded lookups: %+v", st)
	}
	if st := on.PlanCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("enabled cache saw no traffic: %+v", st)
	}
}

// TestPlanCacheToggle: re-enabling starts from an empty cache.
func TestPlanCacheToggle(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	db.QuerySeconds(q)
	db.SetPlanCache(false)
	db.SetPlanCache(true)
	runCacheSteps(t, db, q, []cacheStep{
		{name: "after re-enable", wantHit: false},
		{name: "repeat", wantHit: true},
	})
}

// TestPlanCacheSnapshotIsolation: snapshots share the parent's frozen
// entries, but a child's private writes never leak into the parent until
// AbsorbSnapshot folds them back.
func TestPlanCacheSnapshotIsolation(t *testing.T) {
	db := testDB(t)
	q1 := MustPrepareQuery("q1", joinQuery)
	q2 := MustPrepareQuery("q2", "SELECT SUM(f_val) FROM fact")
	db.QuerySeconds(q1) // warm the parent

	child := db.Snapshot()
	if len(db.cache.write) != 0 {
		t.Fatal("Snapshot did not freeze the parent's write layer")
	}

	base := db.PlanCacheStats()
	child.QuerySeconds(q1) // served from the shared frozen layer
	if st := db.PlanCacheStats(); st.Hits != base.Hits+1 || st.Misses != base.Misses {
		t.Errorf("child lookup on shared entry: %+v -> %+v, want one hit", base, st)
	}

	child.QuerySeconds(q2) // lands in the child's private write layer
	key := planKey{eff: db.keyEff, sig: db.querySig(q2), q: q2}
	if _, ok := db.cache.lookup(key); ok {
		t.Error("child write leaked into the parent before absorb")
	}
	if len(child.cache.write) != 1 {
		t.Errorf("child write layer has %d entries, want 1", len(child.cache.write))
	}

	db.AbsorbSnapshot(child)
	if _, ok := db.cache.lookup(key); !ok {
		t.Error("AbsorbSnapshot did not fold the child's writes back")
	}
}

// TestPlanCacheWriteLayerEviction: write-layer overflow freezes the layer
// into the segment chain — entries stay reachable, nothing is discarded
// until the chain itself overflows.
func TestPlanCacheWriteLayerEviction(t *testing.T) {
	c := planCache{counters: &planCacheCounters{}}
	p := &Plan{}
	for i := 0; i <= planCacheMaxEntries; i++ {
		c.store(planKey{sig: fmt.Sprint(i)}, p)
	}
	if len(c.write) != 1 {
		t.Errorf("write layer has %d entries after overflow, want 1", len(c.write))
	}
	if len(c.frozen) != 1 {
		t.Errorf("frozen chain has %d segments after overflow, want 1", len(c.frozen))
	}
	if got := c.counters.evictions.Load(); got != 0 {
		t.Errorf("evictions = %d, want 0 — overflow must not discard entries", got)
	}
	if _, ok := c.lookup(planKey{sig: "0"}); !ok {
		t.Error("entry from the frozen segment became unreachable")
	}
	// Only when the segment chain overflows do entries actually die; the
	// compaction keeps recently-touched entries, so pin a never-touched one.
	for seg := 0; seg < planCacheMaxLayers+2; seg++ {
		for i := 0; i <= planCacheMaxEntries; i++ {
			c.store(planKey{sig: fmt.Sprintf("s%d-%d", seg, i)}, p)
		}
	}
	if got := c.counters.evictions.Load(); got == 0 {
		t.Error("chain overflow evicted nothing")
	}
	if _, ok := c.lookup(planKey{sig: "1"}); ok {
		t.Error("never-touched oldest-segment entry survived compaction")
	}
	if len(c.frozen) > planCacheMaxLayers {
		t.Errorf("frozen chain has %d layers, bound %d", len(c.frozen), planCacheMaxLayers)
	}
}

// TestPlanCacheLegacyLayerCap: under the legacy lifecycle the frozen chain
// drops (and counts) its oldest layer wholesale when snapshotting has
// stacked too many — the baseline behavior the compaction replaces.
func TestPlanCacheLegacyLayerCap(t *testing.T) {
	c := planCache{counters: &planCacheCounters{}, legacy: true}
	p := &Plan{}
	const extra = 3
	for i := 0; i < planCacheMaxLayers+extra; i++ {
		c.store(planKey{sig: fmt.Sprint(i)}, p)
		c.freeze()
	}
	if len(c.frozen) != planCacheMaxLayers {
		t.Errorf("frozen chain has %d layers, want %d", len(c.frozen), planCacheMaxLayers)
	}
	if got := c.counters.evictions.Load(); got != extra {
		t.Errorf("evictions = %d, want %d", got, extra)
	}
	if _, ok := c.lookup(planKey{sig: fmt.Sprint(planCacheMaxLayers + extra - 1)}); !ok {
		t.Error("newest layer entry lost")
	}
	if _, ok := c.lookup(planKey{sig: "0"}); ok {
		t.Error("oldest layer entry survived the cap")
	}
}

// TestPlanCacheCompactionRetention: the recency-aware compaction must keep a
// hot (re-hit) entry reachable across arbitrarily many chain overflows while
// shedding never-touched entries from the same old layers — and the same
// churn under the legacy lifecycle loses the hot entry with its layer.
func TestPlanCacheCompactionRetention(t *testing.T) {
	p := &Plan{}
	hot := planKey{sig: "hot"}

	c := planCache{counters: &planCacheCounters{}}
	c.store(hot, p)
	c.freeze()
	for i := 0; i < planCacheMaxLayers+5; i++ {
		if _, ok := c.lookup(hot); !ok {
			t.Fatalf("hot entry lost after %d freezes", i)
		}
		c.store(planKey{sig: fmt.Sprintf("cold%d", i)}, p)
		c.freeze()
	}
	if _, ok := c.lookup(hot); !ok {
		t.Error("hot entry evicted despite being touched every generation")
	}
	if _, ok := c.lookup(planKey{sig: "cold0"}); ok {
		t.Error("never-touched cold entry survived compaction")
	}
	if got := c.counters.evictions.Load(); got == 0 {
		t.Error("compaction evicted nothing")
	}
	if len(c.frozen) > planCacheMaxLayers {
		t.Errorf("frozen chain has %d layers, bound %d", len(c.frozen), planCacheMaxLayers)
	}

	// Same access pattern, legacy lifecycle: the hot entry dies with its
	// layer no matter how often it was hit.
	lg := planCache{counters: &planCacheCounters{}, legacy: true}
	lg.store(hot, p)
	lg.freeze()
	for i := 0; i < planCacheMaxLayers+5; i++ {
		lg.lookup(hot)
		lg.store(planKey{sig: fmt.Sprintf("cold%d", i)}, p)
		lg.freeze()
	}
	if _, ok := lg.lookup(hot); ok {
		t.Error("legacy drop-oldest unexpectedly retained the hot entry")
	}
}

// BenchmarkPlanCache measures repeat planning of the three-way join with the
// memoization cache on and off.
func BenchmarkPlanCache(b *testing.B) {
	q := MustPrepareQuery("q", joinQuery)
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			db := NewDB(Postgres, testCatalog(), DefaultHardware)
			db.SetPlanCache(on)
			db.QuerySeconds(q) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.QuerySeconds(q)
			}
		})
	}
}
