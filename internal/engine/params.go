package engine

import (
	"fmt"
	"maps"
	"sort"
	"strconv"
	"strings"
)

// Flavor selects the DBMS dialect the engine emulates.
type Flavor int

// Supported flavors.
const (
	Postgres Flavor = iota
	MySQL
)

func (f Flavor) String() string {
	if f == MySQL {
		return "MySQL"
	}
	return "PostgreSQL"
}

// ParamCategory groups parameters as in the paper's Table 5.
type ParamCategory int

// Parameter categories.
const (
	CatMemory ParamCategory = iota
	CatOptimizer
	CatIO
	CatParallel
	CatLogging
)

func (c ParamCategory) String() string {
	switch c {
	case CatMemory:
		return "Memory"
	case CatOptimizer:
		return "Optimizer"
	case CatIO:
		return "IO"
	case CatParallel:
		return "Parallelism"
	case CatLogging:
		return "Logging"
	}
	return "Other"
}

// ParamType is the value domain of a parameter.
type ParamType int

// Parameter value types.
const (
	TypeBytes ParamType = iota
	TypeInt
	TypeFloat
	TypeBool
)

// ParamDef describes one tunable parameter.
type ParamDef struct {
	Name     string
	Category ParamCategory
	Type     ParamType
	Default  float64 // bytes for TypeBytes; 0/1 for TypeBool
	Min      float64
	Max      float64
}

// postgresParams is the tunable-parameter catalog of the Postgres flavor.
var postgresParams = []ParamDef{
	{"shared_buffers", CatMemory, TypeBytes, 128 << 20, 8 << 20, 256 << 30},
	{"work_mem", CatMemory, TypeBytes, 4 << 20, 64 << 10, 64 << 30},
	{"maintenance_work_mem", CatMemory, TypeBytes, 64 << 20, 1 << 20, 64 << 30},
	{"effective_cache_size", CatOptimizer, TypeBytes, 4 << 30, 8 << 20, 512 << 30},
	{"random_page_cost", CatOptimizer, TypeFloat, 4.0, 0.1, 1000},
	{"seq_page_cost", CatOptimizer, TypeFloat, 1.0, 0.01, 1000},
	{"cpu_tuple_cost", CatOptimizer, TypeFloat, 0.01, 0.0001, 100},
	{"cpu_index_tuple_cost", CatOptimizer, TypeFloat, 0.005, 0.0001, 100},
	{"cpu_operator_cost", CatOptimizer, TypeFloat, 0.0025, 0.0001, 100},
	{"default_statistics_target", CatOptimizer, TypeInt, 100, 1, 10000},
	{"effective_io_concurrency", CatIO, TypeInt, 1, 0, 1000},
	{"max_parallel_workers_per_gather", CatParallel, TypeInt, 2, 0, 64},
	{"max_parallel_workers", CatParallel, TypeInt, 8, 0, 128},
	{"max_worker_processes", CatParallel, TypeInt, 8, 0, 128},
	{"wal_buffers", CatLogging, TypeBytes, 4 << 20, 32 << 10, 2 << 30},
	{"checkpoint_completion_target", CatLogging, TypeFloat, 0.5, 0, 1},
	{"checkpoint_timeout", CatLogging, TypeInt, 300, 30, 86400},
	{"max_wal_size", CatLogging, TypeBytes, 1 << 30, 32 << 20, 1 << 40},
	{"temp_buffers", CatMemory, TypeBytes, 8 << 20, 1 << 20, 16 << 30},
	{"enable_seqscan", CatOptimizer, TypeBool, 1, 0, 1},
	{"enable_indexscan", CatOptimizer, TypeBool, 1, 0, 1},
	{"enable_hashjoin", CatOptimizer, TypeBool, 1, 0, 1},
	{"enable_nestloop", CatOptimizer, TypeBool, 1, 0, 1},
	{"enable_mergejoin", CatOptimizer, TypeBool, 1, 0, 1},
	{"jit", CatOptimizer, TypeBool, 1, 0, 1},
}

// mysqlParams is the tunable-parameter catalog of the MySQL flavor.
var mysqlParams = []ParamDef{
	{"innodb_buffer_pool_size", CatMemory, TypeBytes, 128 << 20, 5 << 20, 256 << 30},
	{"innodb_buffer_pool_instances", CatMemory, TypeInt, 1, 1, 64},
	{"sort_buffer_size", CatMemory, TypeBytes, 256 << 10, 32 << 10, 16 << 30},
	{"join_buffer_size", CatMemory, TypeBytes, 256 << 10, 128, 16 << 30},
	{"tmp_table_size", CatMemory, TypeBytes, 16 << 20, 1 << 10, 64 << 30},
	{"max_heap_table_size", CatMemory, TypeBytes, 16 << 20, 16 << 10, 64 << 30},
	{"read_buffer_size", CatIO, TypeBytes, 128 << 10, 8 << 10, 2 << 30},
	{"read_rnd_buffer_size", CatIO, TypeBytes, 256 << 10, 1 << 10, 2 << 30},
	{"innodb_io_capacity", CatIO, TypeInt, 200, 100, 100000},
	{"innodb_read_io_threads", CatIO, TypeInt, 4, 1, 64},
	{"innodb_flush_log_at_trx_commit", CatLogging, TypeInt, 1, 0, 2},
	{"innodb_log_file_size", CatLogging, TypeBytes, 48 << 20, 4 << 20, 16 << 30},
	{"innodb_log_buffer_size", CatLogging, TypeBytes, 16 << 20, 1 << 20, 4 << 30},
	{"max_connections", CatMemory, TypeInt, 151, 1, 100000},
	{"table_open_cache", CatMemory, TypeInt, 4000, 1, 500000},
	{"optimizer_search_depth", CatOptimizer, TypeInt, 62, 0, 62},
	{"innodb_stats_persistent_sample_pages", CatOptimizer, TypeInt, 20, 1, 100000},
	{"innodb_adaptive_hash_index", CatOptimizer, TypeBool, 1, 0, 1},
}

// ParamCatalog gives access to a flavor's parameter definitions.
type ParamCatalog struct {
	flavor Flavor
	byName map[string]ParamDef
	// defaults is the master default assignment; Defaults() clones it so the
	// per-call cost is one bulk map copy instead of a rebuild from the defs.
	defaults Settings
}

// Params returns the parameter catalog for a flavor. Catalogs are built once
// and shared — they are immutable after construction, so the shared pointer is
// safe for concurrent use (the parallel evaluator resolves configurations on
// several workers at once).
func Params(f Flavor) *ParamCatalog {
	if f == MySQL {
		return mysqlCatalog
	}
	return postgresCatalog
}

var (
	postgresCatalog = newParamCatalog(Postgres, postgresParams)
	mysqlCatalog    = newParamCatalog(MySQL, mysqlParams)
)

func newParamCatalog(f Flavor, defs []ParamDef) *ParamCatalog {
	pc := &ParamCatalog{flavor: f, byName: make(map[string]ParamDef, len(defs))}
	for _, d := range defs {
		pc.byName[d.Name] = d
	}
	pc.defaults = make(Settings, len(pc.byName))
	for name, def := range pc.byName {
		pc.defaults[name] = def.Default
	}
	return pc
}

// Lookup returns the definition of a parameter.
func (pc *ParamCatalog) Lookup(name string) (ParamDef, bool) {
	d, ok := pc.byName[strings.ToLower(name)]
	return d, ok
}

// Names returns all parameter names, sorted.
func (pc *ParamCatalog) Names() []string {
	out := make([]string, 0, len(pc.byName))
	for n := range pc.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseValue parses a configuration value string ("15GB", "0.9", "on") into
// the parameter's numeric domain and clamps it to [Min, Max]. Every failure —
// unknown parameter included — wraps ConfigRejectedError, so callers have one
// error type for "the engine refused this setting".
func (pc *ParamCatalog) ParseValue(name, raw string) (float64, error) {
	def, ok := pc.Lookup(name)
	if !ok {
		return 0, rejected(name, "unknown parameter %q for %s", name, pc.flavor)
	}
	raw = strings.TrimSpace(strings.Trim(raw, "'\""))
	var v float64
	switch def.Type {
	case TypeBool:
		switch strings.ToLower(raw) {
		case "on", "true", "1", "yes":
			v = 1
		case "off", "false", "0", "no":
			v = 0
		default:
			return 0, rejected(name+" = "+raw, "bad boolean value for %s", name)
		}
	case TypeBytes:
		b, err := parseBytes(raw)
		if err != nil {
			return 0, rejected(name+" = "+raw, "%v", err)
		}
		v = float64(b)
	default:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, rejected(name+" = "+raw, "bad numeric value for %s", name)
		}
		v = f
	}
	if v < def.Min {
		v = def.Min
	}
	if v > def.Max {
		v = def.Max
	}
	return v, nil
}

// parseBytes parses "16MB", "1 GB", "512kB", "8192", "2TB".
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(s)
	suffixes := []struct {
		suf string
		mul int64
	}{
		{"TB", 1 << 40}, {"GB", 1 << 30}, {"MB", 1 << 20}, {"KB", 1 << 10}, {"B", 1},
	}
	num := upper
	for _, sf := range suffixes {
		if strings.HasSuffix(upper, sf.suf) {
			mult = sf.mul
			num = strings.TrimSpace(strings.TrimSuffix(upper, sf.suf))
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return int64(f * float64(mult)), nil
}

// FormatBytes renders a byte count in the largest whole unit.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dkB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}

// Settings is a parameter assignment: parameter name → parsed numeric value.
type Settings map[string]float64

// Defaults returns the default settings for a flavor.
func (pc *ParamCatalog) Defaults() Settings { return maps.Clone(pc.defaults) }

// Clone copies the settings.
func (s Settings) Clone() Settings {
	if s == nil {
		return Settings{}
	}
	return maps.Clone(s)
}

// effects is the engine-internal view of a settings map: the knobs that the
// cost model actually consumes, normalized across flavors.
type effects struct {
	bufferBytes       int64   // shared_buffers / innodb_buffer_pool_size
	workMemBytes      int64   // work_mem / max(sort_buffer, join_buffer)
	maintenanceBytes  int64   // maintenance_work_mem (PG only)
	effectiveCache    int64   // effective_cache_size (PG; MySQL: buffer pool)
	randomPageCost    float64 // optimizer constant
	seqPageCost       float64
	cpuTupleCost      float64
	cpuIndexTupleCost float64
	cpuOperatorCost   float64
	parallelWorkers   int
	ioConcurrency     int
	enableSeqScan     bool
	enableIndexScan   bool
	enableHashJoin    bool
	enableNestLoop    bool
}

// normSource tells deriveEffects how one flavor feeds one cost-model knob:
// the settings that supply it (several are combined by max — e.g. MySQL's
// working memory is the largest of its sort/join/tmp buffers), an optional
// scale factor, and a fixed value for knobs the flavor does not expose.
type normSource struct {
	params []string
	scale  float64 // 0 means 1
	fixed  float64 // used when params is empty
}

// normKnob maps one effects field to its per-flavor sources.
type normKnob struct {
	set     func(*effects, float64)
	sources map[Flavor]normSource
}

// normTable is the single normalization table shared by all flavors. Adding a
// flavor means adding a column here, not a new derivation branch. MySQL's
// optimizer constants are fixed at PostgreSQL-like defaults because MySQL
// exposes no user-visible cost constants in our model, its working and
// maintenance memory both derive from the largest per-session buffer, and
// innodb_io_capacity maps to effective IO concurrency at 200 IOPS per slot.
var normTable = []normKnob{
	{func(e *effects, v float64) { e.bufferBytes = int64(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"shared_buffers"}},
		MySQL:    {params: []string{"innodb_buffer_pool_size"}},
	}},
	{func(e *effects, v float64) { e.workMemBytes = int64(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"work_mem"}},
		MySQL:    {params: []string{"sort_buffer_size", "join_buffer_size", "tmp_table_size"}},
	}},
	{func(e *effects, v float64) { e.maintenanceBytes = int64(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"maintenance_work_mem"}},
		MySQL:    {params: []string{"sort_buffer_size", "join_buffer_size", "tmp_table_size"}},
	}},
	{func(e *effects, v float64) { e.effectiveCache = int64(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"effective_cache_size"}},
		MySQL:    {params: []string{"innodb_buffer_pool_size"}},
	}},
	{func(e *effects, v float64) { e.randomPageCost = v }, map[Flavor]normSource{
		Postgres: {params: []string{"random_page_cost"}},
		MySQL:    {fixed: 4.0},
	}},
	{func(e *effects, v float64) { e.seqPageCost = v }, map[Flavor]normSource{
		Postgres: {params: []string{"seq_page_cost"}},
		MySQL:    {fixed: 1.0},
	}},
	{func(e *effects, v float64) { e.cpuTupleCost = v }, map[Flavor]normSource{
		Postgres: {params: []string{"cpu_tuple_cost"}},
		MySQL:    {fixed: 0.01},
	}},
	{func(e *effects, v float64) { e.cpuIndexTupleCost = v }, map[Flavor]normSource{
		Postgres: {params: []string{"cpu_index_tuple_cost"}},
		MySQL:    {fixed: 0.005},
	}},
	{func(e *effects, v float64) { e.cpuOperatorCost = v }, map[Flavor]normSource{
		Postgres: {params: []string{"cpu_operator_cost"}},
		MySQL:    {fixed: 0.0025},
	}},
	{func(e *effects, v float64) { e.parallelWorkers = int(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"max_parallel_workers_per_gather"}},
		MySQL:    {fixed: 0}, // MySQL 8 executes single-threaded per query
	}},
	{func(e *effects, v float64) { e.ioConcurrency = int(v) }, map[Flavor]normSource{
		Postgres: {params: []string{"effective_io_concurrency"}},
		MySQL:    {params: []string{"innodb_io_capacity"}, scale: 1.0 / 200},
	}},
	{func(e *effects, v float64) { e.enableSeqScan = v != 0 }, map[Flavor]normSource{
		Postgres: {params: []string{"enable_seqscan"}},
		MySQL:    {fixed: 1},
	}},
	{func(e *effects, v float64) { e.enableIndexScan = v != 0 }, map[Flavor]normSource{
		Postgres: {params: []string{"enable_indexscan"}},
		MySQL:    {fixed: 1},
	}},
	{func(e *effects, v float64) { e.enableHashJoin = v != 0 }, map[Flavor]normSource{
		Postgres: {params: []string{"enable_hashjoin"}},
		MySQL:    {fixed: 1},
	}},
	{func(e *effects, v float64) { e.enableNestLoop = v != 0 }, map[Flavor]normSource{
		Postgres: {params: []string{"enable_nestloop"}},
		MySQL:    {fixed: 1},
	}},
}

// deriveEffects normalizes flavor-specific settings into cost-model knobs by
// walking normTable. A missing setting contributes 0, like the map lookup the
// previous per-flavor branches used.
func deriveEffects(f Flavor, s Settings) effects {
	var e effects
	for _, k := range normTable {
		src := k.sources[f]
		v := src.fixed
		for i, name := range src.params {
			if pv := s[name]; i == 0 || pv > v {
				v = pv
			}
		}
		if src.scale != 0 {
			v *= src.scale
		}
		k.set(&e, v)
	}
	return e
}
