package engine

import (
	"strings"
	"testing"
)

// TestParseScriptAdversarial feeds ParseScript the kinds of damaged scripts
// a faulty LLM boundary produces (truncation, duplication, chatter) and
// checks the warning-vs-hard-error contract: recoverable imperfections warn,
// untrustworthy responses error.
func TestParseScriptAdversarial(t *testing.T) {
	cases := []struct {
		name    string
		flavor  Flavor
		script  string
		wantErr string // substring of the hard error ("" = must parse)
		warns   int    // exact number of warnings when parsing succeeds
		params  int
		indexes int
	}{
		{
			name:   "clean script",
			flavor: Postgres,
			script: "ALTER SYSTEM SET work_mem = '64MB';\nCREATE INDEX i1 ON lineitem (l_orderkey);",
			params: 1, indexes: 1,
		},
		{
			name:    "truncated ALTER SYSTEM",
			flavor:  Postgres,
			script:  "ALTER SYSTEM SET work_mem = '64MB';\nALTER SYSTEM SET shared_buf",
			wantErr: "unsupported command",
		},
		{
			name:    "truncated mid CREATE INDEX",
			flavor:  Postgres,
			script:  "CREATE INDEX i1 ON lineitem (l_orderkey);\nCREATE INDEX i2 ON ord",
			wantErr: "unsupported command",
		},
		{
			name:    "LLM chatter line",
			flavor:  Postgres,
			script:  "Here are my recommendations:\nALTER SYSTEM SET work_mem = '64MB';",
			wantErr: "unsupported command",
		},
		{
			name:   "duplicate CREATE INDEX deduplicated",
			flavor: Postgres,
			script: "CREATE INDEX i1 ON lineitem (l_orderkey);\nCREATE INDEX other ON lineitem (l_orderkey);",
			warns:  1, indexes: 1,
		},
		{
			name:   "parameter set twice, last wins",
			flavor: Postgres,
			script: "ALTER SYSTEM SET work_mem = '64MB';\nALTER SYSTEM SET work_mem = '128MB';",
			warns:  1, params: 1,
		},
		{
			name:   "unknown parameter skipped with warning",
			flavor: Postgres,
			script: "ALTER SYSTEM SET totally_made_up = '1';\nALTER SYSTEM SET work_mem = '64MB';",
			warns:  1, params: 1,
		},
		{
			name:    "empty script",
			flavor:  Postgres,
			script:  "",
			wantErr: "empty configuration script",
		},
		{
			name:    "comments only",
			flavor:  Postgres,
			script:  "-- nothing to see here\n\n# or here\n",
			wantErr: "empty configuration script",
		},
		{
			name:   "only-unknown parameters parse with warnings",
			flavor: Postgres,
			script: "ALTER SYSTEM SET nonsense = '1';",
			warns:  1,
		},
		{
			name:   "mysql dialect",
			flavor: MySQL,
			script: "SET GLOBAL innodb_buffer_pool_size = 1073741824;\nSET GLOBAL innodb_buffer_pool_size = 2147483648;",
			warns:  1, params: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, warns, err := ParseScript(tc.flavor, "t", tc.script)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got cfg=%+v", tc.wantErr, cfg)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(warns) != tc.warns {
				t.Fatalf("warnings = %v, want %d", warns, tc.warns)
			}
			if len(cfg.Params) != tc.params {
				t.Fatalf("params = %v, want %d", cfg.Params, tc.params)
			}
			if len(cfg.Indexes) != tc.indexes {
				t.Fatalf("indexes = %v, want %d", cfg.Indexes, tc.indexes)
			}
		})
	}
}

// TestParseScriptLastValueWins pins the duplicate-parameter semantics.
func TestParseScriptLastValueWins(t *testing.T) {
	cfg, _, err := ParseScript(Postgres, "t",
		"ALTER SYSTEM SET work_mem = '64MB';\nALTER SYSTEM SET work_mem = '128MB';")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Params["work_mem"] != "128MB" {
		t.Fatalf("work_mem = %q, want 128MB", cfg.Params["work_mem"])
	}
}
