package engine

import (
	"math"
	"strings"
	"testing"
)

// testCatalog builds a small star schema: fact(10M rows) referencing
// dim1(10k) and dim2(100).
func testCatalog() *Catalog {
	return NewCatalog("test", []Table{
		{
			Name: "fact", Rows: 10_000_000,
			Columns: []Column{
				{Name: "f_id", WidthBytes: 8, Distinct: 10_000_000},
				{Name: "f_d1", WidthBytes: 8, Distinct: 10_000},
				{Name: "f_d2", WidthBytes: 8, Distinct: 100},
				{Name: "f_val", WidthBytes: 8, Distinct: 1_000_000},
				{Name: "f_date", WidthBytes: 8, Distinct: 2500},
			},
			PrimaryKey:  []string{"f_id"},
			ForeignKeys: []string{"f_d1", "f_d2"},
		},
		{
			Name: "dim1", Rows: 10_000,
			Columns: []Column{
				{Name: "d1_id", WidthBytes: 8, Distinct: 10_000},
				{Name: "d1_cat", WidthBytes: 16, Distinct: 25},
			},
			PrimaryKey: []string{"d1_id"},
		},
		{
			Name: "dim2", Rows: 100,
			Columns: []Column{
				{Name: "d2_id", WidthBytes: 8, Distinct: 100},
				{Name: "d2_name", WidthBytes: 16, Distinct: 100},
			},
			PrimaryKey: []string{"d2_id"},
		},
	})
}

func testDB(t *testing.T) *DB {
	t.Helper()
	c := testCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewDB(Postgres, c, DefaultHardware)
}

var joinQuery = `SELECT d1.d1_cat, SUM(f.f_val)
	FROM fact f, dim1 d1, dim2 d2
	WHERE f.f_d1 = d1.d1_id AND f.f_d2 = d2.d2_id AND d2.d2_name = 'x'
	GROUP BY d1.d1_cat`

func TestCatalogBasics(t *testing.T) {
	c := testCatalog()
	if c.Table("FACT") == nil {
		t.Error("case-insensitive lookup failed")
	}
	if got := len(c.Tables()); got != 3 {
		t.Errorf("tables: %d", got)
	}
	f := c.Table("fact")
	if f.RowWidth() != 40 {
		t.Errorf("row width: %d", f.RowWidth())
	}
	if f.Pages() != 10_000_000*40/8192 {
		t.Errorf("pages: %d", f.Pages())
	}
	if c.TotalBytes() <= f.SizeBytes() {
		t.Error("total bytes should exceed fact size")
	}
}

func TestCatalogValidate(t *testing.T) {
	bad := NewCatalog("bad", []Table{{Name: "t", Rows: 0, Columns: []Column{{Name: "c", WidthBytes: 4, Distinct: 1}}}})
	if bad.Validate() == nil {
		t.Error("zero-row table accepted")
	}
	bad2 := NewCatalog("bad2", []Table{{Name: "t", Rows: 10, Columns: []Column{{Name: "c", WidthBytes: 4, Distinct: 1}}, PrimaryKey: []string{"nope"}}})
	if bad2.Validate() == nil {
		t.Error("dangling primary key accepted")
	}
}

func TestParamParsing(t *testing.T) {
	pc := Params(Postgres)
	cases := []struct {
		name, raw string
		want      float64
	}{
		{"shared_buffers", "15GB", 15 << 30},
		{"shared_buffers", "'512MB'", 512 << 20},
		{"work_mem", "64kB", 64 << 10},
		{"random_page_cost", "1.1", 1.1},
		{"effective_io_concurrency", "200", 200},
		{"enable_seqscan", "off", 0},
		{"enable_seqscan", "on", 1},
		{"checkpoint_completion_target", "0.9", 0.9},
	}
	for _, c := range cases {
		got, err := pc.ParseValue(c.name, c.raw)
		if err != nil {
			t.Errorf("ParseValue(%s, %s): %v", c.name, c.raw, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseValue(%s, %s) = %v, want %v", c.name, c.raw, got, c.want)
		}
	}
}

func TestParamClamping(t *testing.T) {
	pc := Params(Postgres)
	v, err := pc.ParseValue("checkpoint_completion_target", "7")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("clamp: %v", v)
	}
}

func TestParamUnknown(t *testing.T) {
	pc := Params(Postgres)
	if _, err := pc.ParseValue("innodb_buffer_pool_size", "1GB"); err == nil {
		t.Error("MySQL parameter accepted on Postgres")
	}
	if _, ok := Params(MySQL).Lookup("innodb_buffer_pool_size"); !ok {
		t.Error("innodb_buffer_pool_size missing from MySQL catalog")
	}
}

func TestParseBytesFormats(t *testing.T) {
	cases := map[string]int64{
		"8192": 8192, "16MB": 16 << 20, "1 GB": 1 << 30,
		"2TB": 2 << 40, "512KB": 512 << 10, "0.5GB": 1 << 29,
	}
	for raw, want := range cases {
		got, err := parseBytes(raw)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", raw, err)
			continue
		}
		if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", raw, got, want)
		}
	}
	if _, err := parseBytes("abc"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFormatBytesRoundTrip(t *testing.T) {
	for _, b := range []int64{8192, 16 << 20, 15 << 30, 64 << 10} {
		got, err := parseBytes(FormatBytes(b))
		if err != nil || got != b {
			t.Errorf("round trip %d → %s → %d (%v)", b, FormatBytes(b), got, err)
		}
	}
}

func TestParseScriptPostgres(t *testing.T) {
	script := `
-- tuning recommendations
ALTER SYSTEM SET shared_buffers = '15GB';
ALTER SYSTEM SET random_page_cost = 1.1;
CREATE INDEX idx_f_d1 ON fact (f_d1);
CREATE INDEX ON fact (f_d2, f_val);
ALTER SYSTEM SET not_a_real_param = 42;
`
	cfg, warnings, err := ParseScript(Postgres, "c1", script)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Params["shared_buffers"] != "15GB" || cfg.Params["random_page_cost"] != "1.1" {
		t.Errorf("params: %v", cfg.Params)
	}
	if len(cfg.Indexes) != 2 {
		t.Fatalf("indexes: %v", cfg.Indexes)
	}
	if cfg.Indexes[1].Columns != "f_d2+f_val" {
		t.Errorf("composite index: %v", cfg.Indexes[1])
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "not_a_real_param") {
		t.Errorf("warnings: %v", warnings)
	}
}

func TestParseScriptMySQL(t *testing.T) {
	cfg, _, err := ParseScript(MySQL, "m1", "SET GLOBAL innodb_buffer_pool_size = 8589934592;\nCREATE INDEX i ON fact (f_d1);")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Params["innodb_buffer_pool_size"] != "8589934592" {
		t.Errorf("params: %v", cfg.Params)
	}
}

func TestParseScriptRejectsGarbage(t *testing.T) {
	if _, _, err := ParseScript(Postgres, "x", "DROP TABLE fact;"); err == nil {
		t.Error("DROP TABLE accepted")
	}
}

func TestConfigScriptRoundTrip(t *testing.T) {
	cfg := &Config{ID: "r", Params: map[string]string{"work_mem": "1GB"}, Indexes: []IndexDef{NewIndexDef("fact", "f_d1")}}
	script := cfg.Script(Postgres)
	cfg2, _, err := ParseScript(Postgres, "r2", script)
	if err != nil {
		t.Fatalf("re-parse: %v (script: %s)", err, script)
	}
	if cfg2.Params["work_mem"] != "1GB" || len(cfg2.Indexes) != 1 {
		t.Errorf("round trip: %+v", cfg2)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	t1 := db.QuerySeconds(q)
	t2 := db.QuerySeconds(q)
	if t1 != t2 {
		t.Errorf("nondeterministic: %v vs %v", t1, t2)
	}
	if t1 <= 0 {
		t.Errorf("runtime: %v", t1)
	}
}

func TestExecuteAdvancesClock(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	before := db.Clock().Now()
	res := db.Execute(q, math.Inf(1))
	if !res.Complete {
		t.Fatal("not complete without timeout")
	}
	if got := db.Clock().Now() - before; math.Abs(got-res.Seconds) > 1e-12 {
		t.Errorf("clock advanced %v, result says %v", got, res.Seconds)
	}
}

func TestExecuteTimeout(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	full := db.QuerySeconds(q)
	res := db.Execute(q, full/2)
	if res.Complete {
		t.Fatal("should have timed out")
	}
	if res.Seconds != full/2 {
		t.Errorf("interrupted time %v, want %v", res.Seconds, full/2)
	}
}

func TestMoreBufferIsFaster(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	slow := db.QuerySeconds(q)
	s := db.Settings()
	s["shared_buffers"] = float64(int64(2) << 30)
	db.SetSettings(s)
	fast := db.QuerySeconds(q)
	if fast >= slow {
		t.Errorf("2GB buffers not faster: %v vs %v", fast, slow)
	}
}

func TestParallelWorkersSpeedup(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", "SELECT SUM(f_val) FROM fact")
	s := db.Settings()
	s["max_parallel_workers_per_gather"] = 0
	db.SetSettings(s)
	serial := db.QuerySeconds(q)
	s["max_parallel_workers_per_gather"] = 6
	db.SetSettings(s)
	parallel := db.QuerySeconds(q)
	if parallel >= serial {
		t.Errorf("parallel not faster: %v vs %v", parallel, serial)
	}
}

func TestWorkMemSpill(t *testing.T) {
	db := testDB(t)
	// Join with a big build side to trigger spilling under tiny work_mem.
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f, dim1 d WHERE f.f_d1 = d.d1_id")
	s := db.Settings()
	s["work_mem"] = 64 << 10
	db.SetSettings(s)
	small := db.QuerySeconds(q)
	s["work_mem"] = float64(int64(1) << 30)
	db.SetSettings(s)
	big := db.QuerySeconds(q)
	if big > small {
		t.Errorf("large work_mem slower: %v vs %v", big, small)
	}
}

func TestIndexScanChosenWithLowRandomPageCost(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f WHERE f.f_id = 42")
	noIdx := db.QuerySeconds(q)
	db.CreateIndex(NewIndexDef("fact", "f_id"))
	s := db.Settings()
	s["random_page_cost"] = 1.1
	s["effective_cache_size"] = float64(int64(45) << 30)
	db.SetSettings(s)
	withIdx := db.QuerySeconds(q)
	if withIdx >= noIdx/10 {
		t.Errorf("selective index scan not much faster: %v vs %v", withIdx, noIdx)
	}
	plan := db.Plan(q)
	if plan.Steps[0].Kind != StepIndexScan {
		t.Errorf("plan did not use index: %s", plan)
	}
}

func TestHighRandomPageCostAvoidsIndex(t *testing.T) {
	db := testDB(t)
	db.CreateIndex(NewIndexDef("fact", "f_date"))
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f WHERE f.f_date > 100")
	s := db.Settings()
	s["random_page_cost"] = 1000
	db.SetSettings(s)
	plan := db.Plan(q)
	if plan.Steps[0].Kind != StepSeqScan {
		t.Errorf("range scan with huge random_page_cost should seq-scan: %s", plan)
	}
}

func TestIndexNLJoinUsedWithIndex(t *testing.T) {
	db := testDB(t)
	db.CreateIndex(NewIndexDef("fact", "f_d2"))
	s := db.Settings()
	s["random_page_cost"] = 1.1
	s["effective_cache_size"] = float64(int64(45) << 30)
	db.SetSettings(s)
	// dim2 filtered to ~1 row joins fact: INL should win.
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f, dim2 d WHERE f.f_d2 = d.d2_id AND d.d2_name = 'x'")
	plan := db.Plan(q)
	found := false
	for _, st := range plan.Steps {
		if st.Kind == StepIndexNLJoin {
			found = true
		}
	}
	if !found {
		t.Errorf("INL join not chosen: %s", plan)
	}
}

func TestIndexCreation(t *testing.T) {
	db := testDB(t)
	def := NewIndexDef("fact", "f_d1")
	before := db.Clock().Now()
	secs := db.CreateIndex(def)
	if secs <= 0 {
		t.Fatal("index creation free")
	}
	if db.Clock().Now()-before != secs {
		t.Error("clock not advanced by creation time")
	}
	if again := db.CreateIndex(def); again != 0 {
		t.Errorf("recreation not idempotent: %v", again)
	}
	if !db.HasIndex(def) || !db.hasIndexOnColumn("fact", "f_d1") {
		t.Error("index not registered")
	}
}

func TestMaintenanceWorkMemSpeedsCreation(t *testing.T) {
	db := testDB(t)
	def := NewIndexDef("fact", "f_d1")
	slow := db.IndexCreationSeconds(def)
	s := db.Settings()
	s["maintenance_work_mem"] = float64(int64(2) << 30)
	db.SetSettings(s)
	fast := db.IndexCreationSeconds(def)
	if fast >= slow {
		t.Errorf("maintenance_work_mem has no effect: %v vs %v", fast, slow)
	}
}

func TestTransientVsPermanentIndexes(t *testing.T) {
	db := testDB(t)
	db.CreatePermanentIndex(NewIndexDef("fact", "f_id"))
	db.CreateIndex(NewIndexDef("fact", "f_d1"))
	db.DropTransientIndexes()
	if !db.HasIndex(NewIndexDef("fact", "f_id")) {
		t.Error("permanent index dropped")
	}
	if db.HasIndex(NewIndexDef("fact", "f_d1")) {
		t.Error("transient index survived")
	}
	if db.PermanentIndexCount() != 1 {
		t.Errorf("permanent count: %d", db.PermanentIndexCount())
	}
}

func TestExplainReportsJoinCosts(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	jc := db.Explain(q)
	if len(jc) != 2 {
		t.Fatalf("join costs: %v", jc)
	}
	for _, j := range jc {
		if j.EstCost <= 0 {
			t.Errorf("non-positive join cost: %+v", j)
		}
	}
}

func TestUnknownTableTolerated(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", "SELECT * FROM mystery WHERE x = 1")
	if secs := db.QuerySeconds(q); secs <= 0 {
		t.Errorf("runtime: %v", secs)
	}
}

func TestMySQLFlavorSettings(t *testing.T) {
	db := NewDB(MySQL, testCatalog(), DefaultHardware)
	q := MustPrepareQuery("q", joinQuery)
	slow := db.QuerySeconds(q)
	s := db.Settings()
	s["innodb_buffer_pool_size"] = float64(int64(8) << 30)
	s["join_buffer_size"] = float64(int64(256) << 20)
	db.SetSettings(s)
	fast := db.QuerySeconds(q)
	if fast >= slow {
		t.Errorf("MySQL buffer pool has no effect: %v vs %v", fast, slow)
	}
}

func TestEnableFlagsSteerPlans(t *testing.T) {
	db := testDB(t)
	q := MustPrepareQuery("q", "SELECT COUNT(*) FROM fact f, dim1 d WHERE f.f_d1 = d.d1_id")
	s := db.Settings()
	s["enable_hashjoin"] = 0
	db.SetSettings(s)
	plan := db.Plan(q)
	for _, st := range plan.Steps {
		if st.Kind == StepHashJoin {
			t.Errorf("hash join used despite enable_hashjoin=off: %s", plan)
		}
	}
}

func TestConfigOrderingInvariance(t *testing.T) {
	// Applying the same settings in different construction orders yields
	// identical runtimes.
	db1 := testDB(t)
	db2 := testDB(t)
	q := MustPrepareQuery("q", joinQuery)
	s1 := Settings{"work_mem": 1 << 30, "shared_buffers": 4 << 30}
	s2 := Settings{"shared_buffers": 4 << 30, "work_mem": 1 << 30}
	db1.SetSettings(s1)
	db2.SetSettings(s2)
	if db1.QuerySeconds(q) != db2.QuerySeconds(q) {
		t.Error("settings order affects runtime")
	}
}
