package engine

import (
	"fmt"
	"testing"
)

func snapDB(t *testing.T) (*DB, []*Query) {
	t.Helper()
	db := testDB(t)
	var qs []*Query
	for i, sql := range []string{
		joinQuery,
		`SELECT SUM(f_val) FROM fact WHERE f_d2 = 7`,
		`SELECT d1_cat, COUNT(*) FROM fact, dim1 WHERE f_d1 = d1_id GROUP BY d1_cat`,
	} {
		qs = append(qs, MustPrepareQuery(fmt.Sprintf("q%d", i+1), sql))
	}
	return db, qs
}

func TestSnapshotIndependentClock(t *testing.T) {
	db, qs := snapDB(t)
	db.Clock().Advance(100)
	s := db.Snapshot()
	if got := s.Clock().Now(); got != 100 {
		t.Fatalf("snapshot clock starts at %v, want parent time 100", got)
	}
	s.Execute(qs[0], 1e9)
	if db.Clock().Now() != 100 {
		t.Fatalf("snapshot execution advanced the parent clock to %v", db.Clock().Now())
	}
	if s.Clock().Now() <= 100 {
		t.Fatal("snapshot execution did not advance the snapshot clock")
	}
}

func TestSnapshotSettingsIsolated(t *testing.T) {
	db, _ := snapDB(t)
	s := db.Snapshot()
	if err := s.ApplyConfigParams(&Config{ID: "c", Params: map[string]string{"work_mem": "256MB"}}); err != nil {
		t.Fatal(err)
	}
	if db.Settings()["work_mem"] == s.Settings()["work_mem"] {
		t.Fatalf("parent work_mem changed with the snapshot: %v", db.Settings()["work_mem"])
	}
}

func TestSnapshotIndexesIsolated(t *testing.T) {
	db, _ := snapDB(t)
	s := db.Snapshot()
	ix := IndexDef{Table: "dim1", Columns: "d1_id"}
	s.CreateIndex(ix)
	if !s.HasIndex(ix) {
		t.Fatal("index missing on the snapshot")
	}
	if db.HasIndex(ix) {
		t.Fatal("snapshot index leaked to the parent")
	}
	// And the other direction: parent indexes created after the snapshot
	// stay invisible to it.
	ix2 := IndexDef{Table: "dim2", Columns: "d2_id"}
	db.CreateIndex(ix2)
	if s.HasIndex(ix2) {
		t.Fatal("parent index leaked to the snapshot")
	}
}

func TestSnapshotInheritsLiveConfiguration(t *testing.T) {
	db, _ := snapDB(t)
	if err := db.ApplyConfigParams(&Config{ID: "c", Params: map[string]string{"work_mem": "512MB"}}); err != nil {
		t.Fatal(err)
	}
	ix := IndexDef{Table: "dim1", Columns: "d1_id"}
	db.CreateIndex(ix)
	s := db.Snapshot()
	if s.Settings()["work_mem"] != db.Settings()["work_mem"] {
		t.Fatal("snapshot did not inherit live settings")
	}
	if !s.HasIndex(ix) {
		t.Fatal("snapshot did not inherit live indexes")
	}
}

func TestAbsorbSnapshotFoldsCounterDeltas(t *testing.T) {
	db, qs := snapDB(t)
	db.Execute(qs[0], 1e9) // pre-snapshot work stays counted once
	s := db.Snapshot()
	s.Execute(qs[1], 1e9)
	s.Execute(qs[2], 1e9)
	before := db.Executions()
	clockBefore := db.Clock().Now()
	db.AbsorbSnapshot(s)
	if got := db.Executions() - before; got != 2 {
		t.Fatalf("absorbed %d executions, want 2 (delta above the snapshot base)", got)
	}
	// Clock is merged by the pool's max rule, never by AbsorbSnapshot.
	if db.Clock().Now() != clockBefore {
		t.Fatalf("AbsorbSnapshot advanced the clock from %v to %v", clockBefore, db.Clock().Now())
	}
}

func TestSnapshotDoesNotInheritFaultInjector(t *testing.T) {
	db, _ := snapDB(t)
	db.SetFaultInjector(stubInjector{})
	if !db.HasFaultInjector() {
		t.Fatal("injector not installed")
	}
	if db.Snapshot().HasFaultInjector() {
		t.Fatal("snapshot inherited the fault injector; fault sequences are defined on the primary's clock")
	}
}

type stubInjector struct{}

func (stubInjector) QueryFault(q *Query) (float64, bool)    { return 0, false }
func (stubInjector) IndexFault(ix IndexDef) (float64, bool) { return 0, false }
