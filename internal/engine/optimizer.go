package engine

import (
	"math"

	"lambdatune/internal/sqlparser"
)

// "Hardware truth" constants: the actual per-operation costs of the simulated
// machine (NVMe-backed storage, so random IO is only moderately more
// expensive than sequential). The optimizer plans with the *tunable* cost
// constants; the executor charges these. The gap between the two is what
// makes tuning random_page_cost & friends matter, exactly as on a real
// system.
const (
	trueSeqPage       = 1.0
	trueRandomPage    = 2.5
	trueCPUTuple      = 0.005
	trueCPUIndexTuple = 0.003
	trueCPUOperator   = 0.0015
	// unitsPerSecond converts cost units to simulated seconds.
	unitsPerSecond = 25000.0
	// maxCacheFrac bounds how much of the working set can be cached.
	maxCacheFrac = 0.95
)

// planner builds and costs a plan for one query under the current settings
// and index set.
type planner struct {
	db *DB
	q  *Query
	// tables in the query, with per-table filtered cardinalities.
	tables map[string]*tableInfo
	// scratch backs the maps and slices above; see plannerScratch.
	s *plannerScratch
}

// plannerScratch is a per-DB allocation arena for planning: the maps and
// slices a single plan() call needs are cleared and reused across calls
// instead of re-made. One DB plans one query at a time (snapshots get their
// own arena), so a single arena per instance suffices. Everything here is
// working state only — nothing in a returned Plan may alias it.
type plannerScratch struct {
	p          planner
	tables     map[string]*tableInfo
	infoPool   []*tableInfo
	infoUsed   int
	filterKind map[string]sqlparser.FilterKind
	wanted     map[string]bool
	joined     map[string]bool
	names      []string
	conds      []sqlparser.JoinCondition
	bestConds  []sqlparser.JoinCondition
}

func newPlannerScratch() *plannerScratch {
	return &plannerScratch{
		tables:     map[string]*tableInfo{},
		filterKind: map[string]sqlparser.FilterKind{},
		wanted:     map[string]bool{},
		joined:     map[string]bool{},
	}
}

// nextInfo hands out a zeroed tableInfo from the pool, growing it on demand.
// Pointer identity is stable across the growth, so entries already published
// in the tables map stay valid.
func (s *plannerScratch) nextInfo() *tableInfo {
	if s.infoUsed == len(s.infoPool) {
		s.infoPool = append(s.infoPool, &tableInfo{})
	}
	ti := s.infoPool[s.infoUsed]
	s.infoUsed++
	*ti = tableInfo{}
	return ti
}

type tableInfo struct {
	table *Table
	// filteredRows after applying constant predicates.
	filteredRows float64
	// scan holds the chosen access path.
	scan PlanStep
}

// selectivity estimates the fraction of rows passing a constant filter.
func selectivity(col *Column, kind sqlparser.FilterKind) float64 {
	switch kind {
	case sqlparser.FilterEq:
		if col == nil || col.Distinct <= 1 {
			return 0.5
		}
		return 1.0 / float64(col.Distinct)
	case sqlparser.FilterIn:
		if col == nil || col.Distinct <= 1 {
			return 0.5
		}
		s := 5.0 / float64(col.Distinct)
		if s > 0.25 {
			s = 0.25
		}
		return s
	case sqlparser.FilterRange:
		return 0.30
	case sqlparser.FilterLike:
		return 0.08
	}
	return 0.5
}

// cacheFrac is the fraction of pages served from the buffer pool given the
// configured buffer size and the total database size. A small baseline
// accounts for OS page cache.
func (db *DB) cacheFrac() float64 {
	total := db.catalog.TotalBytes()
	if total <= 0 {
		return maxCacheFrac
	}
	f := float64(db.eff.bufferBytes) / float64(total)
	f = 0.08 + 0.92*f
	if f > maxCacheFrac {
		f = maxCacheFrac
	}
	return f
}

// optCacheFrac is the *optimizer's belief* about caching, driven by
// effective_cache_size.
func (db *DB) optCacheFrac() float64 {
	total := db.catalog.TotalBytes()
	if total <= 0 {
		return maxCacheFrac
	}
	f := float64(db.eff.effectiveCache) / float64(total)
	if f > maxCacheFrac {
		f = maxCacheFrac
	}
	return f
}

// ioDiscount applies buffer caching to an IO cost: cached pages cost ~10% of
// a physical read.
func ioDiscount(cost, cacheFrac float64) float64 {
	return cost * (1 - cacheFrac + 0.1*cacheFrac)
}

// parallelSpeedup is the divisor applied to scan-dominated work.
func (db *DB) parallelSpeedup() float64 {
	w := db.eff.parallelWorkers
	if max := db.hw.Cores - 1; w > max {
		w = max
	}
	if w < 0 {
		w = 0
	}
	return 1 + 0.6*float64(w)
}

// ioConcurrencyDiscount shaves up to 20% off sequential IO.
func (db *DB) ioConcurrencyDiscount() float64 {
	d := 1 - 0.02*float64(db.eff.ioConcurrency)
	if d < 0.8 {
		d = 0.8
	}
	return d
}

// plan builds the full plan for q.
func (db *DB) plan(q *Query) *Plan {
	if db.scratch == nil {
		db.scratch = newPlannerScratch()
	}
	s := db.scratch
	clear(s.tables)
	s.infoUsed = 0
	s.p = planner{db: db, q: q, tables: s.tables, s: s}
	p := &s.p
	for _, name := range q.Analysis.Tables {
		t := db.catalog.Table(name)
		ti := s.nextInfo()
		if t == nil {
			// Unknown table: charge a nominal constant so execution still
			// "works" (mirrors a view or tiny side table).
			ti.table = &Table{Name: name, Rows: 1000, Columns: []Column{{Name: "c", WidthBytes: 8, Distinct: 1000}}}
			ti.filteredRows = 1000
			p.tables[name] = ti
			continue
		}
		ti.table = t
		ti.filteredRows = float64(t.Rows)
		p.tables[name] = ti
	}
	p.applyFilters()
	p.chooseScans()
	plan := p.orderJoins()
	p.addAggregate(plan)
	return plan
}

// applyFilters reduces per-table cardinalities using the query's constant
// predicates.
func (p *planner) applyFilters() {
	for _, f := range p.q.Analysis.Filters {
		ti, ok := p.tables[f.Table]
		if !ok {
			continue
		}
		col := ti.table.Column(f.Column)
		ti.filteredRows *= selectivity(col, f.Kind)
	}
	for _, ti := range p.tables {
		if ti.filteredRows < 1 {
			ti.filteredRows = 1
		}
	}
}

// chooseScans picks seq vs index scan per table by estimated cost.
func (p *planner) chooseScans() {
	db := p.db
	e := db.eff
	optCache := db.optCacheFrac()
	trueCache := db.cacheFrac()
	par := db.parallelSpeedup()
	ioc := db.ioConcurrencyDiscount()

	for name, ti := range p.tables {
		t := ti.table
		pages := float64(t.Pages())
		rows := float64(t.Rows)

		// The planner knows parallel workers speed up sequential scans
		// (parallel plans have divided costs in Postgres), while index
		// scans run in a single worker.
		seqEst := (pages*e.seqPageCost + rows*e.cpuTupleCost) / par
		seqTrue := (ioDiscount(pages*trueSeqPage*ioc, trueCache) + rows*trueCPUTuple) / par

		best := PlanStep{Kind: StepSeqScan, Table: name, EstCost: seqEst, TrueSeconds: seqTrue / unitsPerSecond, OutRows: ti.filteredRows}
		if !e.enableSeqScan {
			best.EstCost *= 1e6 // discouraged, still available as fallback
		}

		if e.enableIndexScan {
			// Other filtered columns of this table, for composite-prefix
			// matching.
			filterKind := p.s.filterKind
			clear(filterKind)
			for _, f := range p.q.Analysis.Filters {
				if f.Table == name && f.Kind != sqlparser.FilterLike {
					filterKind[f.Column] = f.Kind
				}
			}
			wanted := p.s.wanted
			clear(wanted)
			for c := range filterKind {
				wanted[c] = true
			}
			// The most selective indexed filter drives the index scan.
			for _, f := range p.q.Analysis.Filters {
				if f.Table != name {
					continue
				}
				if f.Kind == sqlparser.FilterLike {
					continue // B-tree can't serve %pattern% predicates
				}
				prefix := db.indexPrefixMatch(name, f.Column, wanted)
				if len(prefix) == 0 {
					continue
				}
				col := t.Column(f.Column)
				sel := selectivity(col, f.Kind)
				// A composite key narrows the scan by each additional
				// matched prefix column's selectivity.
				for _, extra := range prefix[1:] {
					if extra == f.Column {
						continue
					}
					sel *= selectivity(t.Column(extra), filterKind[extra])
				}
				selRows := rows * sel
				if selRows < 1 {
					selRows = 1
				}
				selPages := selRows * float64(t.RowWidth()) / 8192
				if selPages < 1 {
					selPages = 1
				}
				height := math.Log2(rows + 2)
				idxEst := selPages*e.randomPageCost*(1-0.75*optCache) +
					selRows*(e.cpuIndexTupleCost+e.cpuTupleCost) + height*e.randomPageCost
				idxTrue := ioDiscount(selPages*trueRandomPage, trueCache) +
					selRows*(trueCPUIndexTuple+trueCPUTuple) + height*trueRandomPage
				if idxEst < best.EstCost {
					best = PlanStep{
						Kind: StepIndexScan, Table: name,
						EstCost: idxEst, TrueSeconds: idxTrue / unitsPerSecond,
						OutRows: ti.filteredRows,
					}
				}
			}
		}
		ti.scan = best
	}
}

// joinsFor returns the join conditions linking table name to any table in
// joined. The result aliases the scratch conds buffer and is only valid
// until the next joinsFor call (orderJoins copies the winner aside).
func (p *planner) joinsFor(name string, joined map[string]bool) []sqlparser.JoinCondition {
	out := p.s.conds[:0]
	for _, j := range p.q.Analysis.Joins {
		if (j.LeftTable == name && joined[j.RightTable]) ||
			(j.RightTable == name && joined[j.LeftTable]) {
			out = append(out, j)
		}
	}
	p.s.conds = out
	return out
}

// orderJoins builds a left-deep join sequence greedily: start from the
// smallest filtered table, repeatedly add the connected table minimizing the
// estimated join output.
func (p *planner) orderJoins() *Plan {
	names := append(p.s.names[:0], p.q.Analysis.Tables...)
	p.s.names = names
	if len(names) == 0 {
		return &Plan{}
	}
	// Pick start: smallest filtered cardinality.
	start := names[0]
	for _, n := range names[1:] {
		if p.tables[n].filteredRows < p.tables[start].filteredRows {
			start = n
		}
	}
	joined := p.s.joined
	clear(joined)
	joined[start] = true
	plan := &Plan{Steps: []PlanStep{p.tables[start].scan}}
	curRows := p.tables[start].filteredRows

	for len(joined) < len(names) {
		bestName := ""
		bestRows := math.Inf(1)
		bestConds := p.s.bestConds[:0]
		for _, n := range names {
			if joined[n] {
				continue
			}
			conds := p.joinsFor(n, joined)
			rows := p.joinOutRows(curRows, n, conds)
			// Prefer connected tables strongly over cartesian products.
			penalty := 1.0
			if len(conds) == 0 {
				penalty = 1e12
			}
			if rows*penalty < bestRows {
				bestRows = rows * penalty
				bestName = n
				// Copy aside: conds aliases the scratch buffer the next
				// joinsFor call overwrites.
				bestConds = append(bestConds[:0], conds...)
			}
		}
		p.s.bestConds = bestConds
		step := p.joinStep(curRows, bestName, bestConds)
		plan.Steps = append(plan.Steps, step)
		joined[bestName] = true
		curRows = step.OutRows
	}
	return plan
}

// joinOutRows estimates the cardinality after joining the current
// intermediate (curRows) with table n over conds.
func (p *planner) joinOutRows(curRows float64, n string, conds []sqlparser.JoinCondition) float64 {
	inner := p.tables[n]
	out := curRows * inner.filteredRows
	for _, c := range conds {
		col := c.LeftColumn
		tbl := c.LeftTable
		if c.RightTable == n {
			col = c.RightColumn
			tbl = c.RightTable
		}
		_ = tbl
		d := int64(1)
		if tc := inner.table.Column(col); tc != nil {
			d = tc.Distinct
		}
		// Also consider the other side's distinct count.
		otherTbl, otherCol := c.LeftTable, c.LeftColumn
		if otherTbl == n {
			otherTbl, otherCol = c.RightTable, c.RightColumn
		}
		if ot, ok := p.tables[otherTbl]; ok {
			if oc := ot.table.Column(otherCol); oc != nil && oc.Distinct > d {
				d = oc.Distinct
			}
		}
		if d < 1 {
			d = 1
		}
		out /= float64(d)
	}
	if out < 1 {
		out = 1
	}
	return out
}

// joinStep builds the cheapest join operator bringing table n into the plan.
func (p *planner) joinStep(curRows float64, n string, conds []sqlparser.JoinCondition) PlanStep {
	db := p.db
	e := db.eff
	inner := p.tables[n]
	outRows := p.joinOutRows(curRows, n, conds)
	trueCache := db.cacheFrac()
	par := db.parallelSpeedup()

	var joinCond *sqlparser.JoinCondition
	if len(conds) > 0 {
		// Copy the condition out of the scratch buffer: the returned step is
		// retained in the (possibly cached) Plan and must not alias reused
		// planner scratch.
		jc := conds[0]
		joinCond = &jc
	}

	// Option 1: hash join — scan inner, build hash table, probe with outer.
	scan := inner.scan
	buildRows := inner.filteredRows
	buildBytes := buildRows * 24 // hashed key + pointer
	passes := 1.0
	if e.workMemBytes > 0 && buildBytes > float64(e.workMemBytes) {
		passes = math.Ceil(buildBytes / float64(e.workMemBytes))
		if passes > 8 {
			passes = 8
		}
	}
	spillIOPages := 0.0
	if passes > 1 {
		spillIOPages = (buildBytes + curRows*24) / 8192 * (passes - 1)
	}
	hashEst := scan.EstCost + buildRows*e.cpuOperatorCost*2 + curRows*e.cpuOperatorCost +
		spillIOPages*e.seqPageCost
	hashTrue := scan.TrueSeconds*unitsPerSecond +
		(buildRows*trueCPUOperator*2+curRows*trueCPUOperator+spillIOPages*trueSeqPage)/par
	if !e.enableHashJoin {
		hashEst *= 1e6
	}

	best := PlanStep{Kind: StepHashJoin, Table: n, Join: joinCond, EstCost: hashEst, TrueSeconds: hashTrue / unitsPerSecond, OutRows: outRows}

	// Option 2: index nested-loop — for each outer row, probe inner's index
	// on the join column.
	if e.enableNestLoop && e.enableIndexScan && joinCond != nil {
		innerCol := joinCond.LeftColumn
		if joinCond.RightTable == n {
			innerCol = joinCond.RightColumn
		}
		if joinCond.LeftTable == n {
			innerCol = joinCond.LeftColumn
		}
		if db.hasIndexOnColumn(n, innerCol) {
			innerRows := float64(inner.table.Rows)
			height := math.Log2(innerRows + 2)
			matchRows := outRows / math.Max(curRows, 1)
			if matchRows < 1 {
				matchRows = 1
			}
			optCache := db.optCacheFrac()
			perProbeEst := height*e.cpuIndexTupleCost + e.randomPageCost*(1-0.75*optCache)*(1+matchRows*0.2) + matchRows*e.cpuTupleCost
			perProbeTrue := height*trueCPUIndexTuple + ioDiscount(trueRandomPage*(1+matchRows*0.2), trueCache) + matchRows*trueCPUTuple
			inlEst := curRows * perProbeEst
			inlTrue := curRows * perProbeTrue / par
			if inlEst < best.EstCost {
				best = PlanStep{Kind: StepIndexNLJoin, Table: n, Join: joinCond, EstCost: inlEst, TrueSeconds: inlTrue / unitsPerSecond, OutRows: outRows}
			}
		}
	}

	// Option 3: sort-merge join — sort both inputs, one merge pass. Usually
	// dominated by hash join, but it is the equality-join fallback when
	// hash joins are disabled or work_mem is prohibitively small.
	if joinCond != nil {
		so := sortCost(curRows, e.workMemBytes)
		si := sortCost(inner.filteredRows, e.workMemBytes)
		mergeEst := scan.EstCost + so.est(e) + si.est(e) + (curRows+inner.filteredRows)*e.cpuOperatorCost
		mergeTrue := scan.TrueSeconds*unitsPerSecond + (so.truth()+si.truth())/par + (curRows+inner.filteredRows)*trueCPUOperator/par
		if mergeEst < best.EstCost || (best.Kind == StepHashJoin && !e.enableHashJoin) {
			best = PlanStep{Kind: StepMergeJoin, Table: n, Join: joinCond, EstCost: mergeEst, TrueSeconds: mergeTrue / unitsPerSecond, OutRows: outRows}
		}
	}

	// Option 4 (fallback): plain nested loop for cartesian products.
	if joinCond == nil {
		nlEst := scan.EstCost + curRows*inner.filteredRows*e.cpuOperatorCost
		nlTrue := scan.TrueSeconds*unitsPerSecond + curRows*inner.filteredRows*trueCPUOperator/par
		best = PlanStep{Kind: StepNestLoop, Table: n, Join: joinCond, EstCost: nlEst, TrueSeconds: nlTrue / unitsPerSecond, OutRows: outRows}
	}
	return best
}

// sortWork carries a sort's CPU and spill components so the planner can
// price it with either cost constants.
type sortWork struct {
	cpuOps     float64
	spillPages float64
}

func sortCost(rows float64, workMem int64) sortWork {
	if rows < 2 {
		rows = 2
	}
	w := sortWork{cpuOps: rows * math.Log2(rows)}
	bytes := rows * 24
	if workMem > 0 && bytes > float64(workMem) {
		w.spillPages = bytes * 2 / 8192 // external sort: write + read runs
	}
	return w
}

func (w sortWork) est(e effects) float64 {
	return w.cpuOps*e.cpuOperatorCost + w.spillPages*e.seqPageCost
}

func (w sortWork) truth() float64 {
	return w.cpuOps*trueCPUOperator + w.spillPages*trueSeqPage
}

// addAggregate appends the final aggregation/sort step.
func (p *planner) addAggregate(plan *Plan) {
	if len(plan.Steps) == 0 {
		return
	}
	db := p.db
	e := db.eff
	rows := plan.Steps[len(plan.Steps)-1].OutRows
	work := rows * 2
	if n := len(p.q.Stmt.GroupBy); n > 0 {
		work += rows * float64(n)
	}
	if n := len(p.q.Stmt.OrderBy); n > 0 && rows > 1 {
		work += rows * math.Log2(rows+2)
	}
	// Sorting beyond work_mem spills to disk.
	sortBytes := rows * 32
	spill := 0.0
	if e.workMemBytes > 0 && sortBytes > float64(e.workMemBytes) && len(p.q.Stmt.OrderBy) > 0 {
		spill = sortBytes * 2 / 8192
	}
	est := work*e.cpuOperatorCost + spill*e.seqPageCost
	tru := work*trueCPUOperator + spill*trueSeqPage
	plan.Steps = append(plan.Steps, PlanStep{
		Kind: StepAggregate, EstCost: est,
		TrueSeconds: tru / unitsPerSecond / db.parallelSpeedup(),
		OutRows:     math.Max(1, rows/10),
	})
}
