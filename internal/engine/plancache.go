package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Plans are pure functions of (effective settings, index set, query): the
// planner reads nothing else, and nothing in it is randomized. That makes
// them memoizable — a repeat planning under an unchanged configuration can
// return the cached *Plan (and hence the identical TrueSeconds/EstCost)
// without re-running the join ordering. Only host CPU time changes; every
// simulated number, the virtual clock, and the fault-injection semantics
// stay byte-identical whether the cache is on or off.
//
// Key derivation:
//   - the effects struct is the settings fingerprint. It is the planner's
//     *only* view of the parameter assignment (a comparable value struct),
//     so two assignments normalizing to the same effects genuinely plan
//     identically — e.g. UDO toggling logging knobs hits the cache. The key
//     further drops maintenanceBytes (db.keyEff), which prices index builds
//     but never query plans.
//   - the index-set signature is content-addressed (sorted index keys,
//     interned to compact ids — see sigIntern), not a bare mutation counter:
//     selector rounds drop and re-create the same index sets over and over,
//     and a counter would miss on every round. The signature is further
//     restricted to the query's probe groups — the planner consults
//     db.indexes only through hasIndexOnColumn/indexPrefixMatch, always
//     keyed by a (table, leading column) pair derivable from the query's
//     filters and joins (Query.probes) — so creating or dropping an index
//     the query never probes (UDO toggles candidate indexes constantly)
//     does not invalidate the query's entry. Group signatures are
//     maintained incrementally per mutation (noteIndexChange).
//   - the *Query pointer identifies the query. Queries are parsed once per
//     workload and never mutated afterwards.
//
// COW sharing mirrors the engine's snapshot model: Snapshot() freezes the
// parent's private write map into an immutable frozen layer and hands the
// child the frozen-layer chain plus a fresh write map. Workers on different
// snapshots then share the parent's read-mostly entries without any lock on
// the planning hot path; hit/miss/evict counters are shared atomics.

// PlanCacheStats reports plan-memoization counters. Hits and Misses count
// plan lookups; Evictions counts entries discarded to bound memory.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Lookups is the total number of plan-cache probes.
func (s PlanCacheStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate is Hits / Lookups (0 when the cache was never probed).
func (s PlanCacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// String renders "hits=H misses=M evictions=E (R% hit rate)".
func (s PlanCacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d (%.1f%% hit rate)",
		s.Hits, s.Misses, s.Evictions, 100*s.HitRate())
}

// planCacheCounters is shared by a DB and all its snapshots so telemetry
// covers replica work; atomics keep concurrent snapshot planning lock-free.
// gen is the freeze generation: bumped once per freeze, it is the clock that
// entry touch stamps are read against during compaction.
type planCacheCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	gen       atomic.Uint32
}

const (
	// planCacheMaxEntries bounds the private write layer; on overflow the
	// layer is frozen (becoming the newest segment of the frozen chain), so
	// hot entries survive and eviction happens in oldest-segment granularity.
	planCacheMaxEntries = 16384
	// planCacheMaxLayers bounds the frozen-layer chain; overflow compacts the
	// oldest two layers, retaining recently-touched entries (legacy mode
	// drops the oldest layer wholesale). Lookups scan at most this many maps
	// plus the compacted head, so total capacity is about
	// (planCacheMaxLayers+2) × planCacheMaxEntries entries.
	planCacheMaxLayers = 6
	// planCacheRecentGens is the compaction recency window: an oldest-layer
	// entry survives compaction only if it was hit within this many freeze
	// generations. One window ≈ one full trip through the chain.
	planCacheRecentGens = planCacheMaxLayers
	// planCacheCompactCap bounds the compacted head layer so repeated merges
	// cannot accrete unboundedly.
	planCacheCompactCap = 2 * planCacheMaxEntries
)

// planEntry wraps a cached *Plan with its recency stamp. touch holds the
// freeze generation of the entry's most recent hit (0 = never re-hit); it is
// an atomic because frozen layers are shared read-only across snapshots, and
// stamping recency is the one mutation the hot path performs on them.
type planEntry struct {
	p     *Plan
	touch atomic.Uint32
}

// planKey identifies one memoized planning. All three components are exact —
// there are no collisions, only identical plans.
type planKey struct {
	eff effects
	sig string
	q   *Query
}

// planCache is the per-DB memoization state. The frozen layers are immutable
// (modulo the atomic recency stamps) and may be shared with snapshots; the
// write map is private to one DB. legacy selects the historical drop-oldest
// layer lifecycle instead of recency-aware compaction — the A/B baseline for
// eviction benchmarks.
type planCache struct {
	counters *planCacheCounters
	frozen   []map[planKey]*planEntry
	write    map[planKey]*planEntry
	// ownFrom is the index of the first frozen layer born from THIS
	// instance's write map (by freeze) rather than inherited from the parent
	// at snapshot time. Layers at ownFrom and beyond hold plannings the
	// parent has never seen; absorb folds them back alongside the write map
	// so a multi-round evaluation loses nothing when its snapshot dies.
	ownFrom int
	off     bool
	legacy  bool
}

// lookup probes the private write layer, then the frozen chain newest-first,
// stamping the hit entry with the current freeze generation so compaction
// can tell hot entries from cold ones.
func (c *planCache) lookup(key planKey) (*Plan, bool) {
	if e, ok := c.write[key]; ok {
		e.touch.Store(c.counters.gen.Load())
		return e.p, true
	}
	for i := len(c.frozen) - 1; i >= 0; i-- {
		if e, ok := c.frozen[i][key]; ok {
			e.touch.Store(c.counters.gen.Load())
			return e.p, true
		}
	}
	return nil, false
}

// store inserts into the write layer. At the cap the layer is frozen into
// the segment chain (compacting at most the chain's oldest segments) rather
// than discarded — long single-instance searches like UDO's would otherwise
// lose their entire working set at every overflow.
func (c *planCache) store(key planKey, p *Plan) {
	if len(c.write) >= planCacheMaxEntries {
		c.freeze()
	}
	if c.write == nil {
		c.write = make(map[planKey]*planEntry, 64)
	}
	c.write[key] = &planEntry{p: p}
}

// freeze turns the write layer into an immutable frozen layer. Called before
// sharing the chain with a snapshot; consecutive snapshots with no writes in
// between share the same chain without growing it.
func (c *planCache) freeze() {
	if len(c.write) == 0 {
		return
	}
	c.frozen = append(c.frozen, c.write)
	c.write = nil
	c.counters.gen.Add(1)
	if len(c.frozen) <= planCacheMaxLayers {
		return
	}
	if c.legacy {
		c.counters.evictions.Add(uint64(len(c.frozen[0])))
		c.frozen = append(c.frozen[:0], c.frozen[1:]...)
		if c.ownFrom > 0 {
			c.ownFrom--
		}
		return
	}
	c.compactOldest()
}

// compactOldest merges the chain's two oldest layers into one, keeping every
// entry of the newer layer and only the recently-touched entries of the
// older one (bounded by planCacheCompactCap). A daemon churning through
// cold tenants thus sheds their never-re-hit plans while the hot cross-job
// working set keeps riding the chain's head — the throughput cliff of
// dropping a whole layer (legacy mode) never hits entries that are actually
// being used.
func (c *planCache) compactOldest() {
	gen := c.counters.gen.Load()
	f0, f1 := c.frozen[0], c.frozen[1]
	merged := make(map[planKey]*planEntry, len(f1))
	for k, e := range f1 {
		merged[k] = e
	}
	dropped := 0
	for k, e := range f0 {
		if _, ok := merged[k]; ok {
			dropped++ // shadowed by the newer layer: unreachable already
			continue
		}
		if gen-e.touch.Load() <= planCacheRecentGens && len(merged) < planCacheCompactCap {
			merged[k] = e
		} else {
			dropped++
		}
	}
	if dropped > 0 {
		c.counters.evictions.Add(uint64(dropped))
	}
	c.frozen[1] = merged
	c.frozen = append(c.frozen[:0], c.frozen[1:]...)
	if c.ownFrom > 0 {
		// The merged head inherits ownership from the newer input: if either
		// merged layer was own, treating the result as own only means absorb
		// copies some already-known entries — identical values, so harmless.
		c.ownFrom--
	}
}

// snapshotCache returns the cache state for a new snapshot: the shared
// frozen chain (copied slice header, shared immutable maps), shared
// counters, and a nil (lazily allocated) private write map.
func (c *planCache) snapshotCache() planCache {
	if c.off {
		return planCache{off: true, counters: c.counters}
	}
	c.freeze()
	return planCache{
		counters: c.counters,
		frozen:   append([]map[planKey]*planEntry(nil), c.frozen...),
		ownFrom:  len(c.frozen), // everything so far is inherited
		legacy:   c.legacy,
	}
}

// absorb folds a snapshot's private plannings back into this cache so later
// rounds benefit from plans computed on replicas (matching the sequential
// path's hit profile): the write map, plus any layers the snapshot froze out
// of its own writes along the way — a multi-round evaluation freezes its
// accumulated plans every time it re-snapshots, and before ownFrom tracking
// those layers were silently lost with the snapshot, leaving every later job
// to replan them (legacy mode preserves exactly that historical behavior).
// Entries are content-addressed and plans deterministic, so merge order
// cannot change any value; a hard bound keeps a worker fleet from ballooning
// the parent's write layer.
func (c *planCache) absorb(o *planCache) {
	if c.off || o.off {
		return
	}
	c.absorbLayer(o.write)
	if c.legacy {
		return
	}
	for _, l := range o.frozen[min(o.ownFrom, len(o.frozen)):] {
		c.absorbLayer(l)
	}
}

// absorbLayer copies one layer's entries into the write map under the
// absorb bound.
func (c *planCache) absorbLayer(l map[planKey]*planEntry) {
	if len(l) == 0 {
		return
	}
	if c.write == nil {
		c.write = make(map[planKey]*planEntry, len(l))
	}
	dropped := 0
	for k, e := range l {
		if len(c.write) >= 2*planCacheMaxEntries {
			dropped++
			continue
		}
		c.write[k] = e
	}
	if dropped > 0 {
		c.counters.evictions.Add(uint64(dropped))
	}
}

// SetPlanCache enables or disables plan memoization (enabled by default).
// Disabling drops every cached entry; simulated results are identical either
// way — the toggle exists for benchmarking the host-CPU effect.
func (db *DB) SetPlanCache(on bool) {
	if db.cache.off != on {
		return // no state change
	}
	db.cache.off = !on
	db.cache.frozen = nil
	db.cache.write = nil
}

// PlanCacheEnabled reports whether plan memoization is currently on.
func (db *DB) PlanCacheEnabled() bool { return !db.cache.off }

// SetPlanCacheLegacyEviction switches the frozen-chain lifecycle between
// recency-aware compaction (default, false) and the historical drop-oldest-
// layer eviction. Simulated results are identical either way — the toggle
// exists so eviction benchmarks can A/B the lifecycles.
func (db *DB) SetPlanCacheLegacyEviction(legacy bool) { db.cache.legacy = legacy }

// PlanCacheStats returns the memoization counters accumulated by this
// instance and every snapshot taken from it.
func (db *DB) PlanCacheStats() PlanCacheStats {
	c := db.cache.counters
	if c == nil {
		return PlanCacheStats{}
	}
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// querySigEntry memoizes one query's composed signature for one signature
// generation (sigSeq).
type querySigEntry struct {
	seq uint64
	sig string
}

// sigIntern maps per-table index-signature contents (the sorted index keys of
// one table, NUL-joined) to small stable ids. Interning keeps planKey.sig a
// few bytes long — cheap to hash on every lookup — while staying exact: equal
// ids mean byte-equal contents, never a lossy hash. The table is shared by a
// DB and all its snapshots (ids must agree for frozen-layer hits to work
// across replicas), hence the lock; it is only taken on rebuilds after an
// index mutation, never on the planning hot path.
type sigIntern struct {
	mu  sync.Mutex
	ids map[string]uint32
}

func (si *sigIntern) id(content string) uint32 {
	si.mu.Lock()
	id, ok := si.ids[content]
	if !ok {
		if si.ids == nil {
			si.ids = make(map[string]uint32, 16)
		}
		id = uint32(len(si.ids)) + 1
		si.ids[content] = id
	}
	si.mu.Unlock()
	return id
}

// indexGroup returns the probe group an index belongs to: its (lowercase)
// table plus leading key column, the same key format computeProbes emits.
func indexGroup(def IndexDef) string {
	cols := def.Columns
	if i := strings.IndexByte(cols, '+'); i >= 0 {
		cols = cols[:i]
	}
	return def.Table + "\x00" + cols
}

// rebuildGroupSigs recomputes every probe group's signature from scratch —
// the slow path, used on first planning and after Snapshot (clones start with
// nil maps). The key list is sorted globally first, so every group's list is
// a sorted subsequence that noteIndexChange can then maintain incrementally.
func (db *DB) rebuildGroupSigs() {
	if db.groupKeys == nil {
		db.groupKeys = make(map[string][]string, 16)
		db.groupSigs = make(map[string]uint32, 16)
	} else {
		clear(db.groupKeys)
		clear(db.groupSigs)
	}
	keys := db.sigScratch[:0]
	for k := range db.indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	db.sigScratch = keys
	for _, k := range keys {
		g := indexGroup(db.indexes[k])
		db.groupKeys[g] = append(db.groupKeys[g], k)
	}
	for g, ks := range db.groupKeys {
		db.groupSigs[g] = db.sigs.id(joinKeys(ks))
	}
	db.sigSeq++
	db.indexSigDirty = false
}

// joinKeys renders one group's sorted index keys as its signature content.
func joinKeys(ks []string) string {
	var b strings.Builder
	for _, k := range ks {
		b.WriteString(k)
		b.WriteByte(0)
	}
	return b.String()
}

// noteIndexChange records that the index def was added or removed. While the
// signature maps are live it updates just that group's sorted key list and
// re-interns its content — index-search baselines toggle one index per
// action, and a full rebuild per toggle would dominate their host CPU time.
// Either way the generation is bumped so per-query memos recompose lazily.
func (db *DB) noteIndexChange(def IndexDef, added bool) {
	if db.indexSigDirty || db.groupKeys == nil {
		db.indexSigDirty = true
		return
	}
	g, key := indexGroup(def), def.Key()
	ks := db.groupKeys[g]
	i := sort.SearchStrings(ks, key)
	if added {
		if i < len(ks) && ks[i] == key {
			return // already present; no signature change
		}
		ks = append(ks, "")
		copy(ks[i+1:], ks[i:])
		ks[i] = key
	} else {
		if i >= len(ks) || ks[i] != key {
			return // absent; no signature change
		}
		ks = append(ks[:i], ks[i+1:]...)
	}
	if len(ks) == 0 {
		delete(db.groupKeys, g)
		delete(db.groupSigs, g)
	} else {
		db.groupKeys[g] = ks
		db.groupSigs[g] = db.sigs.id(joinKeys(ks))
	}
	db.sigSeq++
}

// querySig returns the content-addressed signature of the index subset that
// can influence q's plan: the interned ids of q's probe groups' signatures,
// concatenated in the query's fixed probe order. Empty groups contribute
// nothing — this is unambiguous because a group's content embeds its table
// and leading column in every index key, so distinct groups never share an
// id. Signatures are rebuilt only after an actual index mutation and
// memoized per query in between.
func (db *DB) querySig(q *Query) string {
	if db.indexSigDirty {
		db.rebuildGroupSigs()
	}
	if e, ok := db.qsigs[q]; ok && e.seq == db.sigSeq {
		return e.sig
	}
	probes := q.probes
	if probes == nil && (len(q.Analysis.Filters) > 0 || len(q.Analysis.Joins) > 0) {
		// Query built without PrepareQuery: derive the probe set on the fly.
		probes = computeProbes(q.Analysis)
	}
	var sig string
	if len(db.groupSigs) > 0 {
		buf := make([]byte, 0, 4*len(probes))
		for _, g := range probes {
			if id, ok := db.groupSigs[g]; ok {
				buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
		}
		sig = string(buf)
	}
	if db.qsigs == nil {
		db.qsigs = make(map[*Query]querySigEntry, 32)
	}
	db.qsigs[q] = querySigEntry{seq: db.sigSeq, sig: sig}
	return sig
}

// cachedPlan is the memoizing front of the planner: every consumer of plans
// (Explain, Plan, QuerySeconds, Execute, WorkloadSeconds, PlanCost) funnels
// through it.
func (db *DB) cachedPlan(q *Query) *Plan {
	if db.cache.off || db.cache.counters == nil {
		return db.plan(q)
	}
	key := planKey{eff: db.keyEff, sig: db.querySig(q), q: q}
	if p, ok := db.cache.lookup(key); ok {
		db.cache.counters.hits.Add(1)
		return p
	}
	db.cache.counters.misses.Add(1)
	p := db.plan(q)
	db.cache.store(key, p)
	return p
}
