package engine

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// IndexDef identifies an index by table and key columns.
type IndexDef struct {
	Table string
	// Columns joined by "+", lower-cased, e.g. "l_orderkey" or
	// "l_orderkey+l_partkey" for a composite key.
	Columns string
	Name    string // optional
}

// NewIndexDef builds an IndexDef with normalized names.
func NewIndexDef(table string, columns ...string) IndexDef {
	lower := make([]string, len(columns))
	for i, c := range columns {
		lower[i] = strings.ToLower(c)
	}
	return IndexDef{Table: strings.ToLower(table), Columns: strings.Join(lower, "+")}
}

// ColumnList returns the key columns in order.
func (d IndexDef) ColumnList() []string { return strings.Split(d.Columns, "+") }

// Key is a canonical identity (ignores the optional name).
func (d IndexDef) Key() string { return d.Table + "(" + d.Columns + ")" }

func (d IndexDef) String() string {
	return fmt.Sprintf("INDEX ON %s(%s)", d.Table, strings.Join(d.ColumnList(), ", "))
}

// SQL renders the CREATE INDEX statement for the definition.
func (d IndexDef) SQL() string {
	name := d.Name
	if name == "" {
		name = "idx_" + d.Table + "_" + strings.ReplaceAll(d.Columns, "+", "_")
	}
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s);", name, d.Table, strings.Join(d.ColumnList(), ", "))
}

// Config is a complete candidate configuration: parameter settings plus
// index recommendations, as produced by one LLM response (paper §2).
type Config struct {
	// ID labels the configuration (e.g. "llm-sample-3").
	ID string
	// Params maps parameter names to raw value strings, e.g.
	// {"shared_buffers": "15GB"}.
	Params map[string]string
	// Indexes are the recommended indexes.
	Indexes []IndexDef
}

// Script renders the configuration as the SQL command list the LLM would
// emit for the given flavor.
func (c *Config) Script(f Flavor) string {
	var sb strings.Builder
	names := make([]string, 0, len(c.Params))
	for n := range c.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if f == MySQL {
			fmt.Fprintf(&sb, "SET GLOBAL %s = %s;\n", n, c.Params[n])
		} else {
			fmt.Fprintf(&sb, "ALTER SYSTEM SET %s = '%s';\n", n, c.Params[n])
		}
	}
	for _, ix := range c.Indexes {
		sb.WriteString(ix.SQL() + "\n")
	}
	return sb.String()
}

var (
	alterSystemRe = regexp.MustCompile(`(?i)^\s*ALTER\s+SYSTEM\s+SET\s+(\w+)\s*=\s*(.+?)\s*;?\s*$`)
	setGlobalRe   = regexp.MustCompile(`(?i)^\s*SET\s+(?:GLOBAL\s+)?(\w+)\s*=\s*(.+?)\s*;?\s*$`)
	createIndexRe = regexp.MustCompile(`(?i)^\s*CREATE\s+(?:UNIQUE\s+)?INDEX\s+(?:IF\s+NOT\s+EXISTS\s+)?(\w+)?\s*ON\s+(\w+)\s*\(([^)]+)\)\s*;?\s*$`)
)

// ParseScript parses a configuration script (one command per line; blank
// lines and -- comments ignored) into a Config, with a DBA's tolerance for
// imperfect LLM output:
//
//   - unknown parameters are skipped with a warning (a DBA ignores
//     inapplicable suggestions);
//   - duplicate CREATE INDEX statements and repeated parameter settings are
//     deduplicated with a warning (last setting wins, as in postgresql.conf);
//   - unsupported or truncated commands are hard errors — a cut-off line
//     means the response itself cannot be trusted, so the caller should
//     re-request rather than apply half a script;
//   - a script with no commands at all is a hard error (nothing to apply).
func ParseScript(f Flavor, id, script string) (*Config, []string, error) {
	cfg := &Config{ID: id, Params: map[string]string{}}
	var warnings []string
	pc := Params(f)
	seenIndex := map[string]bool{}
	for ln, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		if m := createIndexRe.FindStringSubmatch(line); m != nil {
			cols := strings.Split(m[3], ",")
			for i := range cols {
				cols[i] = strings.TrimSpace(cols[i])
			}
			def := NewIndexDef(m[2], cols...)
			def.Name = m[1]
			if seenIndex[def.Key()] {
				warnings = append(warnings, fmt.Sprintf("line %d: duplicate index %s skipped", ln+1, def.Key()))
				continue
			}
			seenIndex[def.Key()] = true
			cfg.Indexes = append(cfg.Indexes, def)
			continue
		}
		var name, value string
		if m := alterSystemRe.FindStringSubmatch(line); m != nil {
			name, value = m[1], m[2]
		} else if m := setGlobalRe.FindStringSubmatch(line); m != nil {
			name, value = m[1], m[2]
		} else {
			return nil, warnings, rejected(line, "line %d: unsupported command", ln+1)
		}
		name = strings.ToLower(name)
		if _, ok := pc.Lookup(name); !ok {
			warnings = append(warnings, fmt.Sprintf("line %d: unknown parameter %q skipped", ln+1, name))
			continue
		}
		if _, dup := cfg.Params[name]; dup {
			warnings = append(warnings, fmt.Sprintf("line %d: parameter %q set twice, last value wins", ln+1, name))
		}
		cfg.Params[name] = strings.Trim(value, "'\"")
	}
	if len(cfg.Params) == 0 && len(cfg.Indexes) == 0 && len(warnings) == 0 {
		return nil, nil, rejected("", "empty configuration script")
	}
	return cfg, warnings, nil
}

// ResolveSettings converts the raw parameter strings into numeric Settings on
// top of the flavor defaults.
func (c *Config) ResolveSettings(f Flavor) (Settings, error) {
	pc := Params(f)
	s := pc.Defaults()
	names := make([]string, 0, len(c.Params))
	for n := range c.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v, err := pc.ParseValue(n, c.Params[n])
		if err != nil {
			return nil, err
		}
		s[n] = v
	}
	return s, nil
}
