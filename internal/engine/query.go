package engine

import (
	"fmt"

	"lambdatune/internal/sqlparser"
)

// Query is a prepared workload query: SQL text plus its parsed and analyzed
// form. Preparing once amortizes parsing across the many evaluations a
// tuning run performs.
type Query struct {
	Name     string
	SQL      string
	Stmt     *sqlparser.SelectStmt
	Analysis sqlparser.Analysis
}

// PrepareQuery parses and analyzes one query.
func PrepareQuery(name, sql string) (*Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("engine: query %s: %w", name, err)
	}
	return &Query{Name: name, SQL: sql, Stmt: stmt, Analysis: sqlparser.Analyze(stmt)}, nil
}

// MustPrepareQuery is PrepareQuery that panics on error; for fixed benchmark
// query sets covered by tests.
func MustPrepareQuery(name, sql string) *Query {
	q, err := PrepareQuery(name, sql)
	if err != nil {
		panic(err)
	}
	return q
}

// ExecResult reports one query execution.
type ExecResult struct {
	// Seconds is the simulated time consumed (equals the timeout when the
	// query was interrupted).
	Seconds float64
	// Complete is false when the query hit the timeout or aborted.
	Complete bool
	// Aborted is true when an injected engine fault killed the query
	// mid-flight (as opposed to a timeout interruption): the time in
	// Seconds was wasted, and an immediate re-execution may succeed.
	Aborted bool
}
