package engine

import (
	"fmt"
	"sort"
	"strings"

	"lambdatune/internal/sqlparser"
)

// Query is a prepared workload query: SQL text plus its parsed and analyzed
// form. Preparing once amortizes parsing across the many evaluations a
// tuning run performs.
type Query struct {
	Name     string
	SQL      string
	Stmt     *sqlparser.SelectStmt
	Analysis sqlparser.Analysis
	// probes is the precomputed set of (table, leading-column) groups the
	// planner may look up indexes under for this query — the plan-cache
	// signature domain (see plancache.go). Computed once at preparation so
	// concurrent planning on snapshot replicas needs no synchronization.
	probes []string
}

// PrepareQuery parses and analyzes one query.
func PrepareQuery(name, sql string) (*Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("engine: query %s: %w", name, err)
	}
	a := sqlparser.Analyze(stmt)
	return &Query{Name: name, SQL: sql, Stmt: stmt, Analysis: a, probes: computeProbes(a)}, nil
}

// computeProbes derives the index-probe groups of an analyzed query: the
// planner consults the index set only through hasIndexOnColumn and
// indexPrefixMatch, and every such call uses either a non-LIKE constant
// filter's (table, column) or a join condition side's (table, column). An
// index outside these groups — wrong table, or a leading key column the
// query never probes — cannot influence the query's plan.
func computeProbes(a sqlparser.Analysis) []string {
	seen := map[string]bool{}
	add := func(table, column string) {
		k := strings.ToLower(table) + "\x00" + strings.ToLower(column)
		seen[k] = true
	}
	for _, f := range a.Filters {
		if f.Kind != sqlparser.FilterLike {
			add(f.Table, f.Column)
		}
	}
	for _, j := range a.Joins {
		add(j.LeftTable, j.LeftColumn)
		add(j.RightTable, j.RightColumn)
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MustPrepareQuery is PrepareQuery that panics on error; for fixed benchmark
// query sets covered by tests.
func MustPrepareQuery(name, sql string) *Query {
	q, err := PrepareQuery(name, sql)
	if err != nil {
		panic(err)
	}
	return q
}

// ExecResult reports one query execution.
type ExecResult struct {
	// Seconds is the simulated time consumed (equals the timeout when the
	// query was interrupted).
	Seconds float64
	// Complete is false when the query hit the timeout or aborted.
	Complete bool
	// Aborted is true when an injected engine fault killed the query
	// mid-flight (as opposed to a timeout interruption): the time in
	// Seconds was wasted, and an immediate re-execution may succeed.
	Aborted bool
}
