package engine

// Clock is a virtual clock measured in simulated seconds. All engine
// operations (query execution, index creation) advance it deterministically,
// which lets the tuning experiments replay the paper's hours-long runs in
// milliseconds while keeping every timeout interaction exact.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds (negative d is ignored).
func (c *Clock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// Set fast-forwards the clock to v seconds; values at or behind the current
// time are ignored — the clock never rewinds. Checkpoint resume uses it to
// restore a crashed run's virtual position on a fresh backend, exactly
// (Advance would accumulate floating-point error from the subtraction).
func (c *Clock) Set(v float64) {
	if v > c.now {
		c.now = v
	}
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
