package backend_test

import (
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/backend/backendtest"
	_ "lambdatune/internal/backend/instrumented" // registers "instrumented"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

// TestRegisteredBackendsConformance runs the behavioral contract against
// every registered backend — the simulator, the instrumented decorator, and
// (inside the suite) snapshots of both.
func TestRegisteredBackendsConformance(t *testing.T) {
	names := backend.List()
	if len(names) < 2 {
		t.Fatalf("expected at least sim and instrumented registered, got %v", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			backendtest.Run(t, func(spec backend.Spec) (backend.Backend, error) {
				return backend.Open(name, spec)
			})
		})
	}
}

// TestOpenUnknownBackend pins the registry's error behavior.
func TestOpenUnknownBackend(t *testing.T) {
	if _, err := backend.Open("no-such-backend", backendtest.Spec()); err == nil {
		t.Fatal("Open of an unregistered backend succeeded")
	}
	spec := backendtest.Spec()
	spec.Catalog = nil
	if _, err := backend.Open("sim", spec); err == nil {
		t.Fatal("Open with a nil catalog succeeded")
	}
}

// BenchmarkBackendDispatch guards the hot query path against
// interface-dispatch regressions: RunQuery through the Backend interface
// must stay within noise of calling the simulator directly.
func BenchmarkBackendDispatch(b *testing.B) {
	w := workload.TPCH(1)
	q := w.Queries[0]

	b.Run("direct", func(b *testing.B) {
		db := engine.NewDB(engine.Postgres, w.Catalog, engine.DefaultHardware)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Execute(q, math.Inf(1))
		}
	})
	b.Run("interface", func(b *testing.B) {
		var be backend.Backend = backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.RunQuery(q, math.Inf(1))
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		be, err := backend.Open("instrumented", backendtest.Spec())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.RunQuery(q, math.Inf(1))
		}
	})
}
