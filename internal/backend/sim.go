package backend

import "lambdatune/internal/engine"

// Sim adapts the engine simulator (engine.DB) to the Backend contract. It is
// the default backend, registered as "sim", and implements every capability
// interface: Snapshotter, FaultInjectable, Hookable, SettingsAccessor and
// ExecutionCounter.
type Sim struct {
	db *engine.DB
}

func init() {
	Register("sim", func(spec Spec) (Backend, error) {
		hw := spec.Hardware
		if hw == (engine.Hardware{}) {
			hw = engine.DefaultHardware
		}
		return NewSim(spec.Flavor, spec.Catalog, hw), nil
	})
}

// NewSim creates a simulator backend with default settings and no indexes.
func NewSim(f engine.Flavor, catalog *engine.Catalog, hw engine.Hardware) *Sim {
	return &Sim{db: engine.NewDB(f, catalog, hw)}
}

// Flavor returns the emulated DBMS flavor.
func (s *Sim) Flavor() engine.Flavor { return s.db.Flavor() }

// Catalog returns the database schema and statistics.
func (s *Sim) Catalog() *engine.Catalog { return s.db.Catalog() }

// Hardware returns the host machine description.
func (s *Sim) Hardware() engine.Hardware { return s.db.Hardware() }

// Clock returns the virtual clock.
func (s *Sim) Clock() *engine.Clock { return s.db.Clock() }

// ApplyConfig resolves and installs the parameter part of a configuration.
func (s *Sim) ApplyConfig(cfg *engine.Config) error { return s.db.ApplyConfigParams(cfg) }

// DropTransientIndexes removes every non-permanent index.
func (s *Sim) DropTransientIndexes() { s.db.DropTransientIndexes() }

// CreateIndex creates an index and advances the clock by its creation time.
func (s *Sim) CreateIndex(def engine.IndexDef) float64 { return s.db.CreateIndex(def) }

// CreatePermanentIndex creates an initial index without advancing the clock.
func (s *Sim) CreatePermanentIndex(def engine.IndexDef) { s.db.CreatePermanentIndex(def) }

// DropIndex removes an index if present.
func (s *Sim) DropIndex(def engine.IndexDef) { s.db.DropIndex(def) }

// HasIndex reports whether the exact index exists.
func (s *Sim) HasIndex(def engine.IndexDef) bool { return s.db.HasIndex(def) }

// Indexes returns all current index definitions, sorted by key.
func (s *Sim) Indexes() []engine.IndexDef { return s.db.Indexes() }

// IndexCreationSeconds estimates an index's creation time without creating it.
func (s *Sim) IndexCreationSeconds(def engine.IndexDef) float64 {
	return s.db.IndexCreationSeconds(def)
}

// RunQuery executes q with a timeout, advancing the clock by the consumed time.
func (s *Sim) RunQuery(q *engine.Query, timeout float64) engine.ExecResult {
	return s.db.Execute(q, timeout)
}

// QuerySeconds returns q's runtime without executing it.
func (s *Sim) QuerySeconds(q *engine.Query) float64 { return s.db.QuerySeconds(q) }

// WorkloadSeconds sums QuerySeconds over the queries.
func (s *Sim) WorkloadSeconds(qs []*engine.Query) float64 { return s.db.WorkloadSeconds(qs) }

// Explain returns the estimated cost of each join operator in q's plan.
func (s *Sim) Explain(q *engine.Query) []engine.JoinCost { return s.db.Explain(q) }

// PlanCost returns the optimizer's total cost estimate for q.
func (s *Sim) PlanCost(q *engine.Query) float64 { return s.db.Plan(q).EstCost() }

// Snapshot implements Snapshotter: an independent replica for parallel
// candidate evaluation.
func (s *Sim) Snapshot() Backend { return &Sim{db: s.db.Snapshot()} }

// AbsorbSnapshot implements Snapshotter: folds a replica's operation counters
// back into this instance. Non-Sim backends are ignored.
func (s *Sim) AbsorbSnapshot(o Backend) {
	if snap, ok := o.(*Sim); ok {
		s.db.AbsorbSnapshot(snap.db)
	}
}

// SetFaultInjector implements FaultInjectable.
func (s *Sim) SetFaultInjector(fi engine.FaultInjector) { s.db.SetFaultInjector(fi) }

// HasFaultInjector implements FaultInjectable.
func (s *Sim) HasFaultInjector() bool { return s.db.HasFaultInjector() }

// QueryAborts implements FaultInjectable.
func (s *Sim) QueryAborts() int { return s.db.QueryAborts() }

// IndexFailures implements FaultInjectable.
func (s *Sim) IndexFailures() int { return s.db.IndexFailures() }

// SetExecHook implements Hookable.
func (s *Sim) SetExecHook(h engine.ExecHook) { s.db.SetExecHook(h) }

// Settings implements SettingsAccessor.
func (s *Sim) Settings() engine.Settings { return s.db.Settings() }

// SetSettings implements SettingsAccessor.
func (s *Sim) SetSettings(set engine.Settings) { s.db.SetSettings(set) }

// ResetSettings implements SettingsAccessor.
func (s *Sim) ResetSettings() { s.db.ResetSettings() }

// Executions implements ExecutionCounter.
func (s *Sim) Executions() int { return s.db.Executions() }

// PlanCacheStats implements backend.PlanCacheStats: the engine's plan-
// memoization counters, shared with every snapshot taken from this instance.
func (s *Sim) PlanCacheStats() engine.PlanCacheStats { return s.db.PlanCacheStats() }

// SetPlanCache implements backend.PlanCacheToggler.
func (s *Sim) SetPlanCache(on bool) { s.db.SetPlanCache(on) }

// PlanCacheEnabled implements backend.PlanCacheQuerier.
func (s *Sim) PlanCacheEnabled() bool { return s.db.PlanCacheEnabled() }

// SetPlanCacheLegacyEviction implements backend.PlanCacheLifecycler.
func (s *Sim) SetPlanCacheLegacyEviction(legacy bool) { s.db.SetPlanCacheLegacyEviction(legacy) }

// PermanentIndexCount returns the number of initial indexes.
func (s *Sim) PermanentIndexCount() int { return s.db.PermanentIndexCount() }

// String describes the instance.
func (s *Sim) String() string { return s.db.String() }
