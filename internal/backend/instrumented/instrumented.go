// Package instrumented decorates any backend.Backend with per-surface call
// counters and latency histograms — one wall-clock and one virtual-clock
// histogram per observation surface. It exists both as a practical telemetry
// layer (tuner.Result exports the stats when present) and as proof that the
// backend seam composes: the decorator is itself a conforming Backend,
// forwards every capability of its inner backend, and registers as
// "instrumented" so it participates in the conformance suite.
package instrumented

import (
	"sync"
	"sync/atomic"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

func init() {
	backend.Register("instrumented", func(spec backend.Spec) (backend.Backend, error) {
		inner, err := backend.Open("sim", spec)
		if err != nil {
			return nil, err
		}
		return Wrap(inner), nil
	})
}

// surfaceCollector accumulates one observation surface. Call and error
// counts are atomics so the hot path is lock-free for the scalar part; the
// two histograms share one surface-local mutex, so concurrent pool workers
// contend only when they hit the *same* surface at the same instant (the
// mutex space is sharded by surface) — never across surfaces, and never on
// the counters.
type surfaceCollector struct {
	calls  atomic.Uint64
	errors atomic.Uint64

	mu      sync.Mutex // guards the two histograms only
	wall    backend.Histogram
	virtual backend.Histogram

	// Registry handles, resolved once by AttachMetrics (nil handles are
	// no-ops, so an unattached backend pays four nil checks per call).
	mCalls, mErrors      *obs.Counter
	mVirtSecs, mWallSecs *obs.Counter
	mVirtHist            *obs.MetricHistogram
}

// observe records one call on the surface.
func (sc *surfaceCollector) observe(wall, virtual float64, failed bool) {
	sc.calls.Add(1)
	if failed {
		sc.errors.Add(1)
	}
	sc.mu.Lock()
	sc.wall.Observe(wall)
	sc.virtual.Observe(virtual)
	sc.mu.Unlock()

	sc.mCalls.Inc()
	if failed {
		sc.mErrors.Inc()
	}
	sc.mVirtSecs.Add(virtual)
	sc.mWallSecs.Add(wall)
	sc.mVirtHist.Observe(virtual)
}

// snapshot copies the surface into a plain SurfaceStats value.
func (sc *surfaceCollector) snapshot() backend.SurfaceStats {
	sc.mu.Lock()
	wall, virtual := sc.wall, sc.virtual
	sc.mu.Unlock()
	return backend.SurfaceStats{
		Calls:   sc.calls.Load(),
		Errors:  sc.errors.Load(),
		Wall:    wall,
		Virtual: virtual,
	}
}

// attach binds the surface to its named registry metrics.
func (sc *surfaceCollector) attach(reg *obs.Registry, surface string) {
	sc.mCalls = reg.Counter("backend_" + surface + "_calls_total")
	sc.mErrors = reg.Counter("backend_" + surface + "_errors_total")
	sc.mVirtSecs = reg.Counter("backend_" + surface + "_virtual_seconds_total")
	sc.mWallSecs = reg.Counter("backend_" + surface + "_wall_seconds_total")
	sc.mVirtHist = reg.Histogram("backend_" + surface + "_virtual_seconds")
}

// collector is the accumulator shared by a backend and all its snapshots, so
// replica work taken on clones is counted in one place. Surfaces are
// independent shards; there is no collector-wide lock on the observe path.
type collector struct {
	apply, index, query, explain surfaceCollector

	// reg, when non-nil, additionally receives plan-cache gauges at
	// BackendStats time (the counters live inside the engine, so they are
	// pulled, not pushed).
	reg *obs.Registry
}

// snapshot assembles a consistent-enough Stats value: each surface is
// internally consistent; surfaces are copied one after another.
func (c *collector) snapshot() backend.Stats {
	return backend.Stats{
		ApplyConfig: c.apply.snapshot(),
		CreateIndex: c.index.snapshot(),
		RunQuery:    c.query.snapshot(),
		Explain:     c.explain.snapshot(),
	}
}

// Backend wraps an inner backend with observation telemetry. Construct with
// Wrap; snapshots share the wrapped instance's collector.
type Backend struct {
	inner backend.Backend
	c     *collector
}

// Wrap decorates inner. The returned backend forwards every method and every
// capability; only the four paper surfaces (ApplyConfig, CreateIndex,
// RunQuery, Explain) are instrumented. When inner implements
// backend.Snapshotter the result does too (snapshots share one stats
// collector); when it does not, neither does the result — capability probes
// like evaluator.Pool's must see the truth, or they would clone a decorator
// around shared state.
func Wrap(inner backend.Backend) backend.Backend {
	b := &Backend{inner: inner, c: &collector{}}
	if _, ok := inner.(backend.Snapshotter); ok {
		return &snapshottable{b}
	}
	return b
}

// snapshottable adds the Snapshotter capability to a decorator whose inner
// backend supports it.
type snapshottable struct {
	*Backend
}

// Snapshot clones the inner backend and wraps the clone with this decorator's
// stats collector, so work done on replicas aggregates with the parent's.
func (b *snapshottable) Snapshot() backend.Backend {
	inner := b.inner.(backend.Snapshotter).Snapshot()
	return &snapshottable{&Backend{inner: inner, c: b.c}}
}

// AbsorbSnapshot folds a replica's counters back into the inner backend.
func (b *snapshottable) AbsorbSnapshot(o backend.Backend) {
	sn := b.inner.(backend.Snapshotter)
	if ib, ok := o.(*snapshottable); ok {
		sn.AbsorbSnapshot(ib.inner)
		return
	}
	sn.AbsorbSnapshot(o)
}

// Unwrap returns the decorated backend.
func (b *Backend) Unwrap() backend.Backend { return b.inner }

// AttachMetrics routes every future surface observation into reg as
// backend_<surface>_{calls,errors,virtual_seconds,wall_seconds}_total
// counters plus a backend_<surface>_virtual_seconds histogram, and makes
// BackendStats publish the plan-cache counters as gauges. Attach before the
// run starts; handles are resolved once, so the per-call cost is four
// lock-free counter bumps.
func (b *Backend) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	b.c.apply.attach(reg, "apply_config")
	b.c.index.attach(reg, "create_index")
	b.c.query.attach(reg, "run_query")
	b.c.explain.attach(reg, "explain")
	b.c.reg = reg
}

// BackendStats implements backend.Instrumented: a consistent snapshot of the
// accumulated telemetry, shared with all snapshots taken from this backend.
// When the inner backend reports plan-memoization counters (the
// backend.PlanCacheStats capability), they are folded into Stats.PlanCache
// and, when a registry is attached, mirrored as backend_plan_cache_* gauges.
func (b *Backend) BackendStats() backend.Stats {
	st := b.c.snapshot()
	st.PlanCache = backend.PlanCache(b.inner)
	if reg := b.c.reg; reg != nil {
		reg.Gauge("backend_plan_cache_hits").Set(float64(st.PlanCache.Hits))
		reg.Gauge("backend_plan_cache_misses").Set(float64(st.PlanCache.Misses))
		reg.Gauge("backend_plan_cache_evictions").Set(float64(st.PlanCache.Evictions))
	}
	return st
}

// Plain accessors: forwarded untouched.

// Flavor returns the inner backend's flavor.
func (b *Backend) Flavor() engine.Flavor { return b.inner.Flavor() }

// Catalog returns the inner backend's catalog.
func (b *Backend) Catalog() *engine.Catalog { return b.inner.Catalog() }

// Hardware returns the inner backend's hardware description.
func (b *Backend) Hardware() engine.Hardware { return b.inner.Hardware() }

// Clock returns the inner backend's virtual clock.
func (b *Backend) Clock() *engine.Clock { return b.inner.Clock() }

// Instrumented surfaces.

// ApplyConfig forwards and counts the configuration-acceptance surface.
func (b *Backend) ApplyConfig(cfg *engine.Config) error {
	start, v0 := time.Now(), b.inner.Clock().Now()
	err := b.inner.ApplyConfig(cfg)
	b.c.apply.observe(time.Since(start).Seconds(), b.inner.Clock().Now()-v0, err != nil)
	return err
}

// CreateIndex forwards and counts the index-creation surface.
func (b *Backend) CreateIndex(def engine.IndexDef) float64 {
	start, v0 := time.Now(), b.inner.Clock().Now()
	secs := b.inner.CreateIndex(def)
	// A build that spent time but left no index behind is an injected
	// failure; count it as a surface error.
	failed := secs > 0 && !b.inner.HasIndex(def)
	b.c.index.observe(time.Since(start).Seconds(), b.inner.Clock().Now()-v0, failed)
	return secs
}

// RunQuery forwards and counts the timed-execution surface.
func (b *Backend) RunQuery(q *engine.Query, timeout float64) engine.ExecResult {
	start, v0 := time.Now(), b.inner.Clock().Now()
	res := b.inner.RunQuery(q, timeout)
	b.c.query.observe(time.Since(start).Seconds(), b.inner.Clock().Now()-v0, !res.Complete)
	return res
}

// Explain forwards and counts the EXPLAIN surface.
func (b *Backend) Explain(q *engine.Query) []engine.JoinCost {
	start, v0 := time.Now(), b.inner.Clock().Now()
	out := b.inner.Explain(q)
	b.c.explain.observe(time.Since(start).Seconds(), b.inner.Clock().Now()-v0, false)
	return out
}

// Uninstrumented pass-throughs (pure measurements and index bookkeeping).

// DropTransientIndexes forwards to the inner backend.
func (b *Backend) DropTransientIndexes() { b.inner.DropTransientIndexes() }

// CreatePermanentIndex forwards to the inner backend.
func (b *Backend) CreatePermanentIndex(def engine.IndexDef) { b.inner.CreatePermanentIndex(def) }

// DropIndex forwards to the inner backend.
func (b *Backend) DropIndex(def engine.IndexDef) { b.inner.DropIndex(def) }

// HasIndex forwards to the inner backend.
func (b *Backend) HasIndex(def engine.IndexDef) bool { return b.inner.HasIndex(def) }

// Indexes forwards to the inner backend.
func (b *Backend) Indexes() []engine.IndexDef { return b.inner.Indexes() }

// IndexCreationSeconds forwards to the inner backend.
func (b *Backend) IndexCreationSeconds(def engine.IndexDef) float64 {
	return b.inner.IndexCreationSeconds(def)
}

// QuerySeconds forwards to the inner backend.
func (b *Backend) QuerySeconds(q *engine.Query) float64 { return b.inner.QuerySeconds(q) }

// WorkloadSeconds forwards to the inner backend.
func (b *Backend) WorkloadSeconds(qs []*engine.Query) float64 { return b.inner.WorkloadSeconds(qs) }

// PlanCost forwards to the inner backend.
func (b *Backend) PlanCost(q *engine.Query) float64 { return b.inner.PlanCost(q) }

// Capability forwarding: the decorator advertises a capability exactly as far
// as the inner backend supports it, so capability checks made through the
// helpers in package backend (backend.HasFaultInjector etc.) see the truth.
// Setter-shaped capabilities are silent no-ops when the inner backend lacks
// them, mirroring how an unsupported feature behaves on a remote DBMS.

// SetFaultInjector forwards when supported.
func (b *Backend) SetFaultInjector(fi engine.FaultInjector) {
	if f, ok := b.inner.(backend.FaultInjectable); ok {
		f.SetFaultInjector(fi)
	}
}

// HasFaultInjector reports the inner backend's state (false when
// unsupported).
func (b *Backend) HasFaultInjector() bool { return backend.HasFaultInjector(b.inner) }

// QueryAborts reports the inner backend's count (0 when unsupported).
func (b *Backend) QueryAborts() int { return backend.QueryAborts(b.inner) }

// IndexFailures reports the inner backend's count (0 when unsupported).
func (b *Backend) IndexFailures() int { return backend.IndexFailures(b.inner) }

// SetExecHook forwards when supported.
func (b *Backend) SetExecHook(h engine.ExecHook) {
	if hk, ok := b.inner.(backend.Hookable); ok {
		hk.SetExecHook(h)
	}
}

// Settings forwards when supported (nil otherwise).
func (b *Backend) Settings() engine.Settings {
	if sa, ok := b.inner.(backend.SettingsAccessor); ok {
		return sa.Settings()
	}
	return nil
}

// SetSettings forwards when supported.
func (b *Backend) SetSettings(s engine.Settings) {
	if sa, ok := b.inner.(backend.SettingsAccessor); ok {
		sa.SetSettings(s)
	}
}

// ResetSettings forwards when supported.
func (b *Backend) ResetSettings() {
	if sa, ok := b.inner.(backend.SettingsAccessor); ok {
		sa.ResetSettings()
	}
}

// Executions reports the inner backend's count (0 when unsupported).
func (b *Backend) Executions() int { return backend.Executions(b.inner) }

// PlanCacheStats reports the inner backend's plan-memoization counters
// (zeros when unsupported).
func (b *Backend) PlanCacheStats() engine.PlanCacheStats { return backend.PlanCache(b.inner) }

// SetPlanCache forwards when supported.
func (b *Backend) SetPlanCache(on bool) { backend.SetPlanCache(b.inner, on) }

// SetPlanCacheLegacyEviction forwards when supported.
func (b *Backend) SetPlanCacheLegacyEviction(legacy bool) {
	backend.SetPlanCacheLegacyEviction(b.inner, legacy)
}

// PlanCacheEnabled reports the inner backend's memoization toggle (true when
// unsupported).
func (b *Backend) PlanCacheEnabled() bool { return backend.PlanCacheEnabled(b.inner) }
