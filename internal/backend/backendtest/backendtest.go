// Package backendtest is the reusable conformance suite every Backend
// implementation must pass. It pins the behavioral contract the tuning core
// relies on — the clock semantics of the four observation surfaces, typed
// configuration rejection, idempotent index-creation cost accounting, clock
// monotonicity, and (when the backend is a Snapshotter) replica isolation.
// The suite runs on a TPC-H 1GB Postgres spec; register a backend and run
// Run against its Open function, as internal/backend's conformance test does
// for every registered backend.
package backendtest

import (
	"errors"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

// Factory opens a fresh backend under test on the given spec.
type Factory func(spec backend.Spec) (backend.Backend, error)

// Spec returns the specification the suite tests against.
func Spec() backend.Spec {
	return backend.Spec{
		Flavor:   engine.Postgres,
		Catalog:  workload.TPCH(1).Catalog,
		Hardware: engine.DefaultHardware,
	}
}

// open builds a fresh backend or fails the test.
func open(t *testing.T, f Factory) backend.Backend {
	t.Helper()
	b, err := f(Spec())
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if b == nil {
		t.Fatal("factory returned a nil backend")
	}
	return b
}

// Run executes the full conformance suite against backends produced by f.
// Each subtest gets a fresh instance.
func Run(t *testing.T, f Factory) {
	t.Run("Identity", func(t *testing.T) { testIdentity(t, f) })
	t.Run("ConfigAcceptance", func(t *testing.T) { testConfigAcceptance(t, f) })
	t.Run("ConfigRejection", func(t *testing.T) { testConfigRejection(t, f) })
	t.Run("TimeoutSemantics", func(t *testing.T) { testTimeoutSemantics(t, f) })
	t.Run("IndexCostAccounting", func(t *testing.T) { testIndexCostAccounting(t, f) })
	t.Run("ExplainSurface", func(t *testing.T) { testExplainSurface(t, f) })
	t.Run("ClockMonotonicity", func(t *testing.T) { testClockMonotonicity(t, f) })
	t.Run("SnapshotIsolation", func(t *testing.T) { testSnapshotIsolation(t, f) })
	t.Run("PlanCacheCoherence", func(t *testing.T) { testPlanCacheCoherence(t, f) })
	t.Run("InstrumentedMonotonicity", func(t *testing.T) { testInstrumentedMonotonicity(t, f) })
}

// queries returns the suite's workload.
func queries(t *testing.T) []*engine.Query {
	t.Helper()
	w := workload.TPCH(1)
	if len(w.Queries) < 3 {
		t.Fatal("TPC-H workload too small for the suite")
	}
	return w.Queries
}

// testIdentity: the accessors must agree with the spec and never return nil.
func testIdentity(t *testing.T, f Factory) {
	b := open(t, f)
	spec := Spec()
	if b.Flavor() != spec.Flavor {
		t.Errorf("Flavor() = %v, want %v", b.Flavor(), spec.Flavor)
	}
	if b.Catalog() == nil {
		t.Fatal("Catalog() returned nil")
	}
	if b.Catalog().Name != spec.Catalog.Name {
		t.Errorf("Catalog().Name = %q, want %q", b.Catalog().Name, spec.Catalog.Name)
	}
	if hw := b.Hardware(); hw.MemoryBytes <= 0 || hw.Cores <= 0 {
		t.Errorf("Hardware() = %+v, want positive memory and cores", hw)
	}
	if b.Clock() == nil {
		t.Fatal("Clock() returned nil")
	}
}

// testConfigAcceptance: a valid configuration is accepted without advancing
// the clock (configuration changes are metadata-only on every backend we
// model), and it measurably changes what the backend reports.
func testConfigAcceptance(t *testing.T, f Factory) {
	b := open(t, f)
	qs := queries(t)
	before := b.WorkloadSeconds(qs)
	c0 := b.Clock().Now()
	cfg := &engine.Config{ID: "tuned", Params: map[string]string{
		"shared_buffers":       "15GB",
		"work_mem":             "1GB",
		"effective_cache_size": "45GB",
	}}
	if err := b.ApplyConfig(cfg); err != nil {
		t.Fatalf("ApplyConfig(valid) = %v", err)
	}
	if got := b.Clock().Now(); got != c0 {
		t.Errorf("ApplyConfig advanced the clock by %v", got-c0)
	}
	if after := b.WorkloadSeconds(qs); after == before {
		t.Error("ApplyConfig had no observable effect on workload time")
	}
	// Re-applying the empty configuration restores defaults.
	if err := b.ApplyConfig(&engine.Config{ID: "reset"}); err != nil {
		t.Fatalf("ApplyConfig(empty) = %v", err)
	}
	if got := b.WorkloadSeconds(qs); got != before {
		t.Errorf("empty config: workload time %v, want default %v", got, before)
	}
}

// testConfigRejection: bad parameter values and unknown parameters are
// refused with an error wrapping *engine.ConfigRejectedError, the clock does
// not advance, and the backend stays usable.
func testConfigRejection(t *testing.T, f Factory) {
	b := open(t, f)
	bad := []*engine.Config{
		{ID: "bad-value", Params: map[string]string{"work_mem": "banana"}},
		{ID: "unknown-param", Params: map[string]string{"no_such_parameter": "1"}},
	}
	for _, cfg := range bad {
		c0 := b.Clock().Now()
		err := b.ApplyConfig(cfg)
		if err == nil {
			t.Fatalf("ApplyConfig(%s) accepted an invalid configuration", cfg.ID)
		}
		var rej *engine.ConfigRejectedError
		if !errors.As(err, &rej) {
			t.Errorf("ApplyConfig(%s) error %v does not wrap *engine.ConfigRejectedError", cfg.ID, err)
		}
		if got := b.Clock().Now(); got != c0 {
			t.Errorf("rejected ApplyConfig(%s) advanced the clock by %v", cfg.ID, got-c0)
		}
	}
	if err := b.ApplyConfig(&engine.Config{ID: "ok", Params: map[string]string{"work_mem": "256MB"}}); err != nil {
		t.Fatalf("backend unusable after rejection: %v", err)
	}
}

// near compares two durations with a tiny relative tolerance — clock reads
// are sums of float64 advances, so deltas can differ from the charged time in
// the last bits.
func near(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// testTimeoutSemantics: RunQuery charges the full runtime on completion and
// exactly the timeout on interruption; QuerySeconds never advances the clock.
func testTimeoutSemantics(t *testing.T, f Factory) {
	b := open(t, f)
	q := queries(t)[0]

	c0 := b.Clock().Now()
	full := b.QuerySeconds(q)
	if full <= 0 {
		t.Fatalf("QuerySeconds = %v, want > 0", full)
	}
	if got := b.Clock().Now(); got != c0 {
		t.Fatalf("QuerySeconds advanced the clock by %v", got-c0)
	}

	// No timeout: completes and charges the full runtime.
	res := b.RunQuery(q, math.Inf(1))
	if !res.Complete || res.Seconds != full {
		t.Errorf("RunQuery(inf) = {%v %v}, want complete in %v", res.Complete, res.Seconds, full)
	}
	if got := b.Clock().Now() - c0; !near(got, full) {
		t.Errorf("RunQuery(inf) advanced the clock by %v, want %v", got, full)
	}

	// Generous timeout: still completes.
	if res := b.RunQuery(q, full*2); !res.Complete {
		t.Error("RunQuery with timeout > runtime did not complete")
	}

	// Tight timeout: interrupted, charged exactly the timeout.
	c1 := b.Clock().Now()
	res = b.RunQuery(q, full/2)
	if res.Complete {
		t.Error("RunQuery with timeout < runtime completed")
	}
	if res.Seconds != full/2 {
		t.Errorf("interrupted RunQuery charged %v, want the timeout %v", res.Seconds, full/2)
	}
	if got := b.Clock().Now() - c1; !near(got, full/2) {
		t.Errorf("interrupted RunQuery advanced the clock by %v, want %v", got, full/2)
	}
}

// testIndexCostAccounting: CreateIndex charges the estimated creation time
// once, is idempotent and free on re-creation, and transient vs permanent
// index lifetimes follow DropTransientIndexes.
func testIndexCostAccounting(t *testing.T, f Factory) {
	b := open(t, f)
	tables := b.Catalog().Tables()
	if len(tables) == 0 {
		t.Fatal("catalog has no tables")
	}
	tab := tables[0]
	if len(tab.Columns) < 2 {
		t.Fatal("first table has too few columns for the suite")
	}
	def := engine.IndexDef{Table: tab.Name, Columns: tab.Columns[0].Name}

	est := b.IndexCreationSeconds(def)
	if est <= 0 {
		t.Fatalf("IndexCreationSeconds = %v, want > 0", est)
	}
	c0 := b.Clock().Now()
	secs := b.CreateIndex(def)
	if secs != est {
		t.Errorf("CreateIndex charged %v, want the estimate %v", secs, est)
	}
	if got := b.Clock().Now() - c0; !near(got, secs) {
		t.Errorf("CreateIndex advanced the clock by %v, want %v", got, secs)
	}
	if !b.HasIndex(def) {
		t.Fatal("index missing after CreateIndex")
	}
	// Idempotent re-creation is free.
	c1 := b.Clock().Now()
	if again := b.CreateIndex(def); again != 0 {
		t.Errorf("re-creating an existing index charged %v, want 0", again)
	}
	if got := b.Clock().Now(); got != c1 {
		t.Errorf("idempotent CreateIndex advanced the clock by %v", got-c1)
	}
	// Transient indexes vanish, permanent ones survive.
	perm := engine.IndexDef{Table: tab.Name, Columns: tab.Columns[len(tab.Columns)-1].Name}
	if perm.Key() == def.Key() {
		t.Fatalf("suite needs two distinct columns on %s", tab.Name)
	}
	b.CreatePermanentIndex(perm)
	b.DropTransientIndexes()
	if b.HasIndex(def) {
		t.Error("transient index survived DropTransientIndexes")
	}
	if !b.HasIndex(perm) {
		t.Error("permanent index did not survive DropTransientIndexes")
	}
	b.DropIndex(perm)
	if b.HasIndex(perm) {
		t.Error("DropIndex did not remove a permanent index")
	}
	if n := len(b.Indexes()); n != 0 {
		t.Errorf("Indexes() reports %d entries on an empty instance", n)
	}
}

// testExplainSurface: Explain yields join costs for a join query and
// PlanCost a positive total estimate; neither advances the clock.
func testExplainSurface(t *testing.T, f Factory) {
	b := open(t, f)
	qs := queries(t)
	c0 := b.Clock().Now()
	var sawJoin bool
	for _, q := range qs {
		for _, jc := range b.Explain(q) {
			sawJoin = true
			if jc.EstCost < 0 {
				t.Errorf("%s: negative join cost %v", q.Name, jc.EstCost)
			}
		}
		if cost := b.PlanCost(q); cost <= 0 {
			t.Errorf("%s: PlanCost = %v, want > 0", q.Name, cost)
		}
	}
	if !sawJoin {
		t.Error("Explain returned no join costs for the whole workload")
	}
	if got := b.Clock().Now(); got != c0 {
		t.Errorf("Explain/PlanCost advanced the clock by %v", got-c0)
	}
}

// testClockMonotonicity: a mixed operation sequence never rewinds the clock.
func testClockMonotonicity(t *testing.T, f Factory) {
	b := open(t, f)
	qs := queries(t)
	last := b.Clock().Now()
	check := func(op string) {
		t.Helper()
		now := b.Clock().Now()
		if now < last {
			t.Fatalf("%s rewound the clock: %v -> %v", op, last, now)
		}
		last = now
	}
	for i, q := range qs {
		b.RunQuery(q, math.Inf(1))
		check("RunQuery")
		if i%2 == 0 {
			b.ApplyConfig(&engine.Config{ID: "mono", Params: map[string]string{"work_mem": "512MB"}})
			check("ApplyConfig")
		}
		b.Explain(q)
		check("Explain")
	}
	tab := b.Catalog().Tables()[0]
	b.CreateIndex(engine.IndexDef{Table: tab.Name, Columns: tab.Columns[0].Name})
	check("CreateIndex")
	b.DropTransientIndexes()
	check("DropTransientIndexes")
}

// testSnapshotIsolation: when the backend is a Snapshotter, replicas must be
// isolated — their clocks, configurations and index sets evolve
// independently — and AbsorbSnapshot folds execution counters back into the
// parent when the backend counts executions.
func testSnapshotIsolation(t *testing.T, f Factory) {
	b := open(t, f)
	sn, ok := b.(backend.Snapshotter)
	if !ok {
		t.Skip("backend is not a Snapshotter")
	}
	qs := queries(t)
	q := qs[0]
	c0 := b.Clock().Now()

	snap := sn.Snapshot()
	if snap == nil {
		t.Fatal("Snapshot returned nil")
	}
	if snap.Clock().Now() != c0 {
		t.Fatalf("snapshot clock starts at %v, want parent's %v", snap.Clock().Now(), c0)
	}

	// Work on the replica: parent must not observe any of it.
	snap.RunQuery(q, math.Inf(1))
	tab := snap.Catalog().Tables()[0]
	def := engine.IndexDef{Table: tab.Name, Columns: tab.Columns[0].Name}
	snap.CreateIndex(def)
	if err := snap.ApplyConfig(&engine.Config{ID: "replica", Params: map[string]string{"work_mem": "2GB"}}); err != nil {
		t.Fatalf("ApplyConfig on snapshot: %v", err)
	}
	if got := b.Clock().Now(); got != c0 {
		t.Errorf("replica work advanced the parent clock by %v", got-c0)
	}
	if b.HasIndex(def) {
		t.Error("replica index leaked into the parent")
	}
	if snap.Clock().Now() <= c0 {
		t.Error("replica clock did not advance under replica work")
	}

	// Parent work must not leak into the replica either.
	parentTime := snap.WorkloadSeconds(qs)
	if err := b.ApplyConfig(&engine.Config{ID: "parent", Params: map[string]string{"shared_buffers": "15GB"}}); err != nil {
		t.Fatalf("ApplyConfig on parent: %v", err)
	}
	if got := snap.WorkloadSeconds(qs); got != parentTime {
		t.Error("parent reconfiguration changed the replica's measurements")
	}

	// Counter folding, when the backend counts executions.
	if _, counts := b.(backend.ExecutionCounter); counts {
		before := backend.Executions(b)
		sn.AbsorbSnapshot(snap)
		if got := backend.Executions(b); got != before+1 {
			t.Errorf("AbsorbSnapshot: parent executions %d, want %d", got, before+1)
		}
	} else {
		sn.AbsorbSnapshot(snap)
	}
}

// testInstrumentedMonotonicity: when the backend advertises the Instrumented
// capability, each observation-surface call must monotonically increase that
// surface's call counter (and only that surface's), errors must count against
// the erroring surface, and the virtual-time histogram must absorb exactly the
// time the call charged to the clock.
func testInstrumentedMonotonicity(t *testing.T, f Factory) {
	b := open(t, f)
	ins, ok := b.(backend.Instrumented)
	if !ok {
		t.Skip("backend is not Instrumented")
	}
	qs := queries(t)
	q := qs[0]

	surface := func(st backend.Stats, name string) backend.SurfaceStats {
		for _, sf := range st.Surfaces() {
			if sf.Name == name {
				return *sf.S
			}
		}
		t.Fatalf("Stats.Surfaces() is missing %q", name)
		return backend.SurfaceStats{}
	}
	// step runs op and asserts exactly the named surface's counters moved.
	step := func(name string, wantErr bool, op func()) {
		t.Helper()
		before := ins.BackendStats()
		op()
		after := ins.BackendStats()
		for _, sf := range after.Surfaces() {
			prev := surface(before, sf.Name)
			if sf.Name == name {
				if sf.S.Calls != prev.Calls+1 {
					t.Errorf("%s: calls %d -> %d, want +1", name, prev.Calls, sf.S.Calls)
				}
				wantErrs := prev.Errors
				if wantErr {
					wantErrs++
				}
				if sf.S.Errors != wantErrs {
					t.Errorf("%s: errors %d -> %d, want %d", name, prev.Errors, sf.S.Errors, wantErrs)
				}
				if sf.S.Wall.Count != prev.Wall.Count+1 || sf.S.Virtual.Count != prev.Virtual.Count+1 {
					t.Errorf("%s: histogram counts did not advance with the call", name)
				}
				continue
			}
			if sf.S.Calls != prev.Calls {
				t.Errorf("%s call moved %s's counter: %d -> %d", name, sf.Name, prev.Calls, sf.S.Calls)
			}
		}
	}

	step("run_query", false, func() { b.RunQuery(q, math.Inf(1)) })
	// An interrupted query is an error on the run_query surface.
	step("run_query", true, func() { b.RunQuery(q, b.QuerySeconds(q)/2) })
	step("apply_config", false, func() {
		if err := b.ApplyConfig(&engine.Config{ID: "ok", Params: map[string]string{"work_mem": "256MB"}}); err != nil {
			t.Fatalf("ApplyConfig: %v", err)
		}
	})
	step("apply_config", true, func() {
		if err := b.ApplyConfig(&engine.Config{ID: "bad", Params: map[string]string{"work_mem": "banana"}}); err == nil {
			t.Fatal("invalid ApplyConfig accepted")
		}
	})
	tab := b.Catalog().Tables()[0]
	def := engine.IndexDef{Table: tab.Name, Columns: tab.Columns[0].Name}
	c0 := b.Clock().Now()
	var charged float64
	step("create_index", false, func() { charged = b.CreateIndex(def) })
	step("explain", false, func() { b.Explain(q) })

	// The virtual histogram absorbs exactly what the call charged.
	st := ins.BackendStats()
	ci := surface(st, "create_index")
	if got := b.Clock().Now() - c0; !near(got, charged) {
		t.Errorf("CreateIndex charged %v but the clock moved %v", charged, got)
	}
	if !near(ci.Virtual.Sum, charged) {
		t.Errorf("create_index virtual histogram sum %v, want the charged %v", ci.Virtual.Sum, charged)
	}
}

// testPlanCacheCoherence: a backend may memoize plans per configuration, but
// memoization must never be observable in the measurements — repeat
// measurements are self-consistent, and configuration or index mutations
// never serve stale plans. When the backend reports plan-cache telemetry
// (backend.PlanCacheStats) with a live cache, the counters must follow the
// invalidation rules: identical re-measurement hits, a settings change
// misses.
func testPlanCacheCoherence(t *testing.T, f Factory) {
	b := open(t, f)
	qs := queries(t)

	w0 := b.WorkloadSeconds(qs)
	if again := b.WorkloadSeconds(qs); again != w0 {
		t.Fatalf("repeat measurement drifted: %v then %v", w0, again)
	}

	// A settings change must change what is measured (no stale plans) and
	// re-applying the identical configuration must reproduce it exactly.
	cfgA := &engine.Config{ID: "tuned", Params: map[string]string{
		"shared_buffers":       "15GB",
		"work_mem":             "1GB",
		"effective_cache_size": "45GB",
	}}
	if err := b.ApplyConfig(cfgA); err != nil {
		t.Fatalf("ApplyConfig: %v", err)
	}
	wA := b.WorkloadSeconds(qs)
	if wA == w0 {
		t.Error("settings change had no effect on measurements")
	}
	if err := b.ApplyConfig(cfgA); err != nil {
		t.Fatalf("re-ApplyConfig: %v", err)
	}
	if got := b.WorkloadSeconds(qs); got != wA {
		t.Errorf("identical re-application changed measurements: %v, want %v", got, wA)
	}

	// Index churn: creating and dropping an index must leave measurements
	// exactly where they were — cached indexed-era plans must not survive
	// DropTransientIndexes.
	tab := b.Catalog().Tables()[0]
	def := engine.IndexDef{Table: tab.Name, Columns: tab.Columns[0].Name}
	b.CreateIndex(def)
	wI := b.WorkloadSeconds(qs)
	if again := b.WorkloadSeconds(qs); again != wI {
		t.Errorf("repeat measurement under index drifted: %v then %v", wI, again)
	}
	b.DropTransientIndexes()
	if got := b.WorkloadSeconds(qs); got != wA {
		t.Errorf("stale plan after DropTransientIndexes: %v, want %v", got, wA)
	}
	if err := b.ApplyConfig(&engine.Config{ID: "reset"}); err != nil {
		t.Fatalf("ApplyConfig(reset): %v", err)
	}
	if got := b.WorkloadSeconds(qs); got != w0 {
		t.Errorf("reset did not restore default measurements: %v, want %v", got, w0)
	}

	// Telemetry contract, for backends with a live plan cache. (A decorator
	// may advertise the capability while its inner backend does not memoize;
	// zero lookups then simply skips the counter assertions.)
	pc, ok := b.(backend.PlanCacheStats)
	if !ok || pc.PlanCacheStats().Lookups() == 0 {
		return
	}
	// Identical re-measurement must be served from the cache.
	before := pc.PlanCacheStats()
	b.WorkloadSeconds(qs)
	after := pc.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("identical re-measurement added no cache hits: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Errorf("identical re-measurement missed the cache: %+v -> %+v", before, after)
	}
	// A settings change must invalidate: the next measurement re-plans.
	if err := b.ApplyConfig(&engine.Config{ID: "shift", Params: map[string]string{"work_mem": "3GB"}}); err != nil {
		t.Fatalf("ApplyConfig(shift): %v", err)
	}
	mid := pc.PlanCacheStats()
	b.QuerySeconds(qs[0])
	end := pc.PlanCacheStats()
	if end.Misses <= mid.Misses {
		t.Errorf("settings change did not invalidate the plan cache: %+v -> %+v", mid, end)
	}
}
