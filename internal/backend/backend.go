// Package backend defines the seam between λ-Tune's tuning core and the
// database system being tuned. The paper observes the DBMS through exactly
// four surfaces — timed query execution under a configuration, EXPLAIN join
// costs, index-creation cost, and configuration acceptance (ALTER SYSTEM /
// CREATE INDEX) — and Backend codifies those surfaces plus the accessors the
// pipeline needs (flavor, catalog, hardware, virtual clock). Everything above
// this package (core/tuner, core/selector, core/evaluator, core/prompt, the
// baselines, the bench harness, and the public API) talks to a Backend;
// nothing above it may name the concrete simulator type.
//
// Optional abilities — snapshotting for parallel evaluation, fault injection,
// execution hooks, raw settings access — are capability interfaces a backend
// may additionally implement. Callers discover them with type assertions (or
// the package-level helpers, which degrade to zero values), so a minimal
// backend stays minimal: evaluator.Pool, for example, falls back to
// sequential evaluation when the backend is not a Snapshotter.
//
// Implementations register an Opener under a name (Register); Open
// instantiates one from a Spec. The built-in simulator registers as "sim" and
// the instrumented decorator (package backend/instrumented) as
// "instrumented". Any implementation must pass the conformance suite in
// backend/backendtest.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"lambdatune/internal/engine"
)

// Backend is the narrow interface the tuning core sees. The engine package
// remains the vocabulary — Query, Config, IndexDef, Clock, Catalog and
// friends are plain value/data types shared by every implementation — but the
// only behavior the core may invoke lives here.
//
// Clock semantics: RunQuery and CreateIndex advance the backend's virtual
// clock by the time they consume; ApplyConfig, Explain and the pure
// measurement helpers (QuerySeconds, WorkloadSeconds, IndexCreationSeconds,
// PlanCost) do not. The clock is monotone — nothing ever rewinds it.
type Backend interface {
	// Flavor returns the DBMS dialect (drives parameter catalogs and prompt
	// wording).
	Flavor() engine.Flavor
	// Catalog returns the schema and statistics of the tuned database.
	Catalog() *engine.Catalog
	// Hardware describes the host machine (memory, cores) for the prompt.
	Hardware() engine.Hardware
	// Clock returns the backend's virtual clock. All tuning costs are charged
	// to it.
	Clock() *engine.Clock

	// ApplyConfig resolves and installs the parameter part of a configuration
	// (paper surface: ALTER SYSTEM acceptance). Indexes are handled
	// separately so the evaluator can create them lazily (§5.1). A refused
	// configuration returns an error wrapping *engine.ConfigRejectedError.
	ApplyConfig(cfg *engine.Config) error
	// DropTransientIndexes removes every index created by CreateIndex,
	// keeping permanent (initial) ones.
	DropTransientIndexes()

	// CreateIndex creates an index (idempotent), advances the clock by its
	// creation time, and returns the seconds spent (paper surface:
	// index-creation cost).
	CreateIndex(def engine.IndexDef) float64
	// CreatePermanentIndex creates an index that survives
	// DropTransientIndexes without advancing the clock (scenario setup and
	// what-if advisors).
	CreatePermanentIndex(def engine.IndexDef)
	// DropIndex removes an index if present, permanent ones included.
	DropIndex(def engine.IndexDef)
	// HasIndex reports whether the exact index exists.
	HasIndex(def engine.IndexDef) bool
	// Indexes returns all current index definitions, sorted by key.
	Indexes() []engine.IndexDef
	// IndexCreationSeconds estimates an index's creation time under the
	// current configuration without creating it or advancing the clock.
	IndexCreationSeconds(def engine.IndexDef) float64

	// RunQuery executes q with a timeout in virtual seconds (math.Inf(1) for
	// none), advancing the clock by the time consumed — the full runtime on
	// completion, the timeout on interruption (paper surface: timed query
	// execution).
	RunQuery(q *engine.Query, timeout float64) engine.ExecResult
	// QuerySeconds returns q's runtime under the current configuration
	// without executing it or advancing the clock.
	QuerySeconds(q *engine.Query) float64
	// WorkloadSeconds sums QuerySeconds over the queries (no clock advance).
	WorkloadSeconds(qs []*engine.Query) float64

	// Explain plans q under the current configuration and returns the
	// estimated cost of each join operator (paper surface: EXPLAIN join
	// costs). No clock advance.
	Explain(q *engine.Query) []engine.JoinCost
	// PlanCost returns the optimizer's total cost estimate for q — the
	// what-if costing surface the index-advisor baselines compare hypothetical
	// index sets with. No clock advance.
	PlanCost(q *engine.Query) float64
}

// Snapshotter is the capability to clone a backend for parallel candidate
// evaluation. Snapshot returns an independent replica (own clock starting at
// the parent's current time, own configuration and index set, shared
// immutable statistics); AbsorbSnapshot folds a replica's operation counters
// back into the parent. evaluator.Pool requires this capability for its
// parallel path and degrades to sequential evaluation without it.
type Snapshotter interface {
	Snapshot() Backend
	AbsorbSnapshot(Backend)
}

// FaultInjectable is the capability to inject engine-side faults (query
// aborts, index-build failures) and to report how many fired.
type FaultInjectable interface {
	SetFaultInjector(engine.FaultInjector)
	HasFaultInjector() bool
	QueryAborts() int
	IndexFailures() int
}

// Hookable is the capability to observe every query execution (used by the
// scaling study to attach real CPU cost to simulated executions). Snapshots
// inherit the hook, so implementations must be safe for concurrent use.
type Hookable interface {
	SetExecHook(engine.ExecHook)
}

// SettingsAccessor is the capability to read and write the raw parameter
// assignment directly, bypassing configuration scripts. Benchmark setup code
// uses it; the tuning core does not.
type SettingsAccessor interface {
	Settings() engine.Settings
	SetSettings(engine.Settings)
	ResetSettings()
}

// ExecutionCounter is the capability to report how many query executions
// completed — test and telemetry introspection.
type ExecutionCounter interface {
	Executions() int
}

// Instrumented is the capability to report per-surface observation
// statistics. The instrumented decorator (backend/instrumented) provides it;
// the tuner exports the stats on Result when present.
type Instrumented interface {
	BackendStats() Stats
}

// PlanCacheStats is the capability to report plan-memoization telemetry:
// backends that cache query plans per configuration (the simulator does, see
// engine/plancache.go) expose their hit/miss/evict counters here. The
// instrumented decorator folds them into Stats.PlanCache.
type PlanCacheStats interface {
	PlanCacheStats() engine.PlanCacheStats
}

// PlanCacheToggler is the capability to switch plan memoization on or off.
// Memoization never changes observable results — only host CPU time — so the
// toggle exists for benchmarking and debugging, not for correctness.
type PlanCacheToggler interface {
	SetPlanCache(on bool)
}

// PlanCacheQuerier is the capability to report whether plan memoization is
// currently enabled. Components that layer their own result memoization on
// top of the backend (the evaluator's schedule-order memo) consult it so one
// toggle governs every caching layer.
type PlanCacheQuerier interface {
	PlanCacheEnabled() bool
}

// PlanCacheLifecycler is the capability to switch the plan cache's eviction
// lifecycle between recency-aware compaction (default) and the historical
// drop-oldest-layer mode. Like the on/off toggle it never changes observable
// results — it exists so eviction benchmarks can A/B the lifecycles.
type PlanCacheLifecycler interface {
	SetPlanCacheLegacyEviction(legacy bool)
}

// HasFaultInjector reports whether b supports fault injection and has an
// injector installed. False for backends without the capability.
func HasFaultInjector(b Backend) bool {
	if fi, ok := b.(FaultInjectable); ok {
		return fi.HasFaultInjector()
	}
	return false
}

// QueryAborts returns b's injected-query-abort count, or 0 without the
// capability.
func QueryAborts(b Backend) int {
	if fi, ok := b.(FaultInjectable); ok {
		return fi.QueryAborts()
	}
	return 0
}

// IndexFailures returns b's injected-index-failure count, or 0 without the
// capability.
func IndexFailures(b Backend) int {
	if fi, ok := b.(FaultInjectable); ok {
		return fi.IndexFailures()
	}
	return 0
}

// Executions returns b's completed-execution count, or 0 without the
// capability.
func Executions(b Backend) int {
	if ec, ok := b.(ExecutionCounter); ok {
		return ec.Executions()
	}
	return 0
}

// PlanCache returns b's plan-memoization counters, or zeros without the
// capability.
func PlanCache(b Backend) engine.PlanCacheStats {
	if pc, ok := b.(PlanCacheStats); ok {
		return pc.PlanCacheStats()
	}
	return engine.PlanCacheStats{}
}

// SetPlanCache toggles b's plan memoization when supported; a no-op
// otherwise.
func SetPlanCache(b Backend, on bool) {
	if t, ok := b.(PlanCacheToggler); ok {
		t.SetPlanCache(on)
	}
}

// SetPlanCacheLegacyEviction switches b's plan-cache eviction lifecycle when
// supported; a no-op otherwise.
func SetPlanCacheLegacyEviction(b Backend, legacy bool) {
	if l, ok := b.(PlanCacheLifecycler); ok {
		l.SetPlanCacheLegacyEviction(legacy)
	}
}

// PlanCacheEnabled reports whether b currently memoizes plans. Backends
// without the capability report true: memoization layers built on top of the
// backend are exact regardless (their keys capture every backend value they
// fold in), so only an explicit cache-off needs to disable them.
func PlanCacheEnabled(b Backend) bool {
	if q, ok := b.(PlanCacheQuerier); ok {
		return q.PlanCacheEnabled()
	}
	return true
}

// Spec carries everything an Opener needs to instantiate a backend for one
// tuned database.
type Spec struct {
	Flavor   engine.Flavor
	Catalog  *engine.Catalog
	Hardware engine.Hardware
}

// Opener instantiates a backend from a spec.
type Opener func(Spec) (Backend, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Opener{}
)

// Register makes a backend implementation available under name. It panics on
// a duplicate or empty name — registration is an init-time programming
// contract, like database/sql drivers.
func Register(name string, open Opener) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || open == nil {
		panic("backend: Register with empty name or nil opener")
	}
	if _, dup := registry[name]; dup {
		panic("backend: Register called twice for " + name)
	}
	registry[name] = open
}

// Open instantiates the backend registered under name.
func Open(name string, spec Spec) (Backend, error) {
	registryMu.RLock()
	open, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %v)", name, List())
	}
	if spec.Catalog == nil {
		return nil, fmt.Errorf("backend: open %q: spec has no catalog", name)
	}
	return open(spec)
}

// List returns the registered backend names, sorted.
func List() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
