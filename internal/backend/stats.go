package backend

import (
	"fmt"
	"math"
	"strings"

	"lambdatune/internal/engine"
)

// histBuckets are the upper bounds (exclusive) of the latency histogram, in
// seconds: decades from 1µs to 10ks, plus an overflow bucket. One bucket
// layout serves both wall-clock latencies (microseconds in the simulator) and
// virtual-clock charges (seconds to hours).
var histBuckets = [...]float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3, 1e4,
}

// Histogram is a fixed-bucket latency histogram over seconds. The zero value
// is ready to use. It is a plain value type — the instrumented decorator
// serializes updates; snapshots returned by BackendStats are safe to read
// without locking.
type Histogram struct {
	Counts [len(histBuckets) + 1]uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// Observe records one measurement.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(histBuckets) && v >= histBuckets[i] {
		i++
	}
	h.Counts[i]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// String renders "n=K mean=X [min,max]".
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s [%s,%s]", h.Count,
		fmtSeconds(h.Mean()), fmtSeconds(h.Min), fmtSeconds(h.Max))
}

// fmtSeconds renders a duration in seconds with a sensible unit.
func fmtSeconds(s float64) string {
	abs := math.Abs(s)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// SurfaceStats aggregates one observation surface: how often it was called,
// how many calls failed (rejected configurations, timed-out or aborted
// queries), and the real and virtual time per call.
type SurfaceStats struct {
	Calls  uint64
	Errors uint64
	// Wall is the real (host) latency per call.
	Wall Histogram
	// Virtual is the virtual-clock time each call charged to the backend.
	Virtual Histogram
}

// Stats is the per-surface telemetry of an instrumented backend, keyed by the
// paper's four observation surfaces, plus the backend's plan-memoization
// counters when it exposes them (see the PlanCacheStats capability). It is a
// plain value snapshot.
type Stats struct {
	ApplyConfig SurfaceStats
	CreateIndex SurfaceStats
	RunQuery    SurfaceStats
	Explain     SurfaceStats
	PlanCache   engine.PlanCacheStats
}

// Surfaces returns (name, stats) pairs in a fixed order.
func (s *Stats) Surfaces() []struct {
	Name string
	S    *SurfaceStats
} {
	return []struct {
		Name string
		S    *SurfaceStats
	}{
		{"apply_config", &s.ApplyConfig},
		{"create_index", &s.CreateIndex},
		{"run_query", &s.RunQuery},
		{"explain", &s.Explain},
	}
}

// TotalCalls sums calls over all surfaces.
func (s *Stats) TotalCalls() uint64 {
	return s.ApplyConfig.Calls + s.CreateIndex.Calls + s.RunQuery.Calls + s.Explain.Calls
}

// String renders a small per-surface report.
func (s *Stats) String() string {
	var b strings.Builder
	b.WriteString("backend observation surfaces:\n")
	for _, sf := range s.Surfaces() {
		fmt.Fprintf(&b, "  %-12s calls=%-6d errors=%-4d wall{%s} virtual{%s}\n",
			sf.Name, sf.S.Calls, sf.S.Errors, sf.S.Wall.String(), sf.S.Virtual.String())
	}
	if s.PlanCache.Lookups() > 0 {
		fmt.Fprintf(&b, "  %-12s %s\n", "plan_cache", s.PlanCache)
	}
	return strings.TrimRight(b.String(), "\n")
}
