package sqlparser

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 1.5 FROM t WHERE x = 'it''s'")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokenKeyword, "SELECT"},
		{TokenIdent, "a"},
		{TokenSymbol, "."},
		{TokenIdent, "b"},
		{TokenSymbol, ","},
		{TokenNumber, "1.5"},
		{TokenKeyword, "FROM"},
		{TokenIdent, "t"},
		{TokenKeyword, "WHERE"},
		{TokenIdent, "x"},
		{TokenSymbol, "="},
		{TokenString, "it's"},
		{TokenEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From wHeRe")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokenKeyword {
			t.Errorf("expected keyword, got %v for %q", tok.Kind, tok.Text)
		}
		if tok.Text != strings.ToUpper(tok.Text) {
			t.Errorf("keyword not uppercased: %q", tok.Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT -- a comment\n1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokenEOF {
			texts = append(texts, tok.Text)
		}
	}
	got := strings.Join(texts, " ")
	if got != "SELECT 1 + 2" {
		t.Errorf("got %q, want %q", got, "SELECT 1 + 2")
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := Lex("a <= b >= c <> d != e || f")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokenSymbol {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!=", "||"}
	if len(ops) != len(want) {
		t.Fatalf("got ops %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: got %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"'unterminated",
		"/* unterminated",
		"SELECT @",
	}
	for _, c := range cases {
		if _, err := Lex(c); err == nil {
			t.Errorf("Lex(%q): expected error", c)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT x")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Errorf("positions: got %d, %d; want 0, 7", toks[0].Pos, toks[1].Pos)
	}
}
