// Package sqlparser implements a lexer and recursive-descent parser for the
// analytical SQL subset used by the λ-Tune benchmarks (TPC-H, TPC-DS, JOB).
//
// The parser produces an AST rich enough for λ-Tune's needs: extracting join
// conditions, predicate columns, and table references. It is not a full SQL
// implementation; unsupported constructs yield parse errors rather than
// silently wrong ASTs.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenKeyword
	TokenNumber
	TokenString
	TokenSymbol // punctuation and operators: ( ) , ; . * = <> < > <= >= + - / ||
)

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokenEOF:
		return "EOF"
	case TokenString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become TokenKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "ON": true, "DISTINCT": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "UNION": true,
	"ALL": true, "ANY": true, "SOME": true, "INTERVAL": true, "DATE": true,
	"SUBSTRING": true, "EXTRACT": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "TRUE": true, "FALSE": true,
	"CAST": true, "OFFSET": true,
}

// Lex tokenizes the SQL input. It returns an error for unterminated strings
// or illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i, n := 0, len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*': // block comment
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sqlparser: unterminated comment at offset %d", i)
			}
			i += end + 4
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sqlparser: unterminated string at offset %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, Token{TokenString, sb.String(), i})
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			j := i
			seenDot := false
			for j < n && (isDigit(input[j]) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, Token{TokenNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{TokenKeyword, upper, i})
			} else {
				toks = append(toks, Token{TokenIdent, word, i})
			}
			i = j
		default:
			if sym, w := lexSymbol(input[i:]); w > 0 {
				toks = append(toks, Token{TokenSymbol, sym, i})
				i += w
			} else {
				return nil, fmt.Errorf("sqlparser: illegal character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{TokenEOF, "", n})
	return toks, nil
}

// lexSymbol recognizes one- and two-character operators at the start of s.
func lexSymbol(s string) (string, int) {
	two := []string{"<>", "<=", ">=", "!=", "||"}
	for _, t := range two {
		if strings.HasPrefix(s, t) {
			return t, 2
		}
	}
	switch s[0] {
	case '(', ')', ',', ';', '.', '*', '=', '<', '>', '+', '-', '/', '%':
		return string(s[0]), 1
	}
	return "", 0
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
