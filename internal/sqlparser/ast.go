package sqlparser

import (
	"fmt"
	"strings"
)

// Node is implemented by all AST nodes.
type Node interface {
	// SQL renders the node back to SQL text (normalized whitespace).
	SQL() string
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableExpr
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    *int64 // nil when absent
}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // "" when absent
	Star  bool   // SELECT * (Expr nil)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableExpr is an item in the FROM clause: a base table or a derived table
// (subquery) with optional alias, possibly followed by explicit JOINs.
type TableExpr struct {
	Table string // "" for derived tables
	// Subquery is non-nil for derived tables: FROM (SELECT …) alias.
	Subquery *SelectStmt
	Alias    string // "" when absent (required for derived tables)
	Joins    []JoinClause
}

// JoinKind distinguishes explicit join types.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "JOIN"
}

// JoinClause is an explicit JOIN attached to a TableExpr.
type JoinClause struct {
	Kind  JoinKind
	Table string
	Alias string
	On    Expr // nil for CROSS JOIN
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Qualifier string // table name or alias; "" when unqualified
	Column    string
}

// NumberLit is a numeric literal (kept as text to avoid precision loss).
type NumberLit struct{ Value string }

// StringLit is a string literal.
type StringLit struct{ Value string }

// NullLit is the NULL literal.
type NullLit struct{}

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// IntervalLit is INTERVAL '<value>' <unit> (unit folded into Value text).
type IntervalLit struct{ Value string }

// DateLit is DATE '<value>'.
type DateLit struct{ Value string }

// BinaryExpr is a binary operation (comparison, arithmetic, AND/OR, LIKE...).
type BinaryExpr struct {
	Op    string // upper-case operator: "=", "<", "AND", "LIKE", ...
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

// FuncCall is a function invocation, including aggregates.
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
}

// InExpr is <expr> [NOT] IN (<list> | <subquery>).
type InExpr struct {
	Not      bool
	Expr     Expr
	List     []Expr
	Subquery *SelectStmt // nil when List is used
}

// BetweenExpr is <expr> [NOT] BETWEEN <lo> AND <hi>.
type BetweenExpr struct {
	Not  bool
	Expr Expr
	Lo   Expr
	Hi   Expr
}

// ExistsExpr is [NOT] EXISTS (<subquery>).
type ExistsExpr struct {
	Not      bool
	Subquery *SelectStmt
}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct{ Subquery *SelectStmt }

// IsNullExpr is <expr> IS [NOT] NULL.
type IsNullExpr struct {
	Not  bool
	Expr Expr
}

// CaseExpr is CASE [expr] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil when absent
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// ParenExpr preserves explicit grouping.
type ParenExpr struct{ Expr Expr }

func (*ColumnRef) exprNode()    {}
func (*NumberLit) exprNode()    {}
func (*StringLit) exprNode()    {}
func (*NullLit) exprNode()      {}
func (*BoolLit) exprNode()      {}
func (*IntervalLit) exprNode()  {}
func (*DateLit) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*ExistsExpr) exprNode()   {}
func (*SubqueryExpr) exprNode() {}
func (*IsNullExpr) exprNode()   {}
func (*CaseExpr) exprNode()     {}
func (*ParenExpr) exprNode()    {}

// SQL implementations.

func (c *ColumnRef) SQL() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}

func (n *NumberLit) SQL() string   { return n.Value }
func (s *StringLit) SQL() string   { return "'" + strings.ReplaceAll(s.Value, "'", "''") + "'" }
func (*NullLit) SQL() string       { return "NULL" }
func (i *IntervalLit) SQL() string { return "INTERVAL '" + i.Value + "'" }
func (d *DateLit) SQL() string     { return "DATE '" + d.Value + "'" }

func (b *BoolLit) SQL() string {
	if b.Value {
		return "TRUE"
	}
	return "FALSE"
}

func (b *BinaryExpr) SQL() string {
	return b.Left.SQL() + " " + b.Op + " " + b.Right.SQL()
}

func (u *UnaryExpr) SQL() string {
	if u.Op == "NOT" {
		return "NOT " + u.Expr.SQL()
	}
	return u.Op + u.Expr.SQL()
}

func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var args []string
	for _, a := range f.Args {
		args = append(args, a.SQL())
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

func (i *InExpr) SQL() string {
	not := ""
	if i.Not {
		not = "NOT "
	}
	if i.Subquery != nil {
		return i.Expr.SQL() + " " + not + "IN (" + i.Subquery.SQL() + ")"
	}
	var items []string
	for _, e := range i.List {
		items = append(items, e.SQL())
	}
	return i.Expr.SQL() + " " + not + "IN (" + strings.Join(items, ", ") + ")"
}

func (b *BetweenExpr) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return b.Expr.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return not + "EXISTS (" + e.Subquery.SQL() + ")"
}

func (s *SubqueryExpr) SQL() string { return "(" + s.Subquery.SQL() + ")" }

func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.Expr.SQL() + " IS NOT NULL"
	}
	return i.Expr.SQL() + " IS NULL"
}

func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

func (p *ParenExpr) SQL() string { return "(" + p.Expr.SQL() + ")" }

// SQL renders the statement.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	var items []string
	for _, it := range s.Select {
		switch {
		case it.Star:
			items = append(items, "*")
		case it.Alias != "":
			items = append(items, it.Expr.SQL()+" AS "+it.Alias)
		default:
			items = append(items, it.Expr.SQL())
		}
	}
	sb.WriteString(strings.Join(items, ", "))
	sb.WriteString(" FROM ")
	var froms []string
	for _, t := range s.From {
		froms = append(froms, t.SQL())
	}
	sb.WriteString(strings.Join(froms, ", "))
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		var gs []string
		for _, g := range s.GroupBy {
			gs = append(gs, g.SQL())
		}
		sb.WriteString(" GROUP BY " + strings.Join(gs, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		var os []string
		for _, o := range s.OrderBy {
			item := o.Expr.SQL()
			if o.Desc {
				item += " DESC"
			}
			os = append(os, item)
		}
		sb.WriteString(" ORDER BY " + strings.Join(os, ", "))
	}
	if s.Limit != nil {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", *s.Limit))
	}
	return sb.String()
}

// SQL renders the table expression including its joins.
func (t TableExpr) SQL() string {
	var sb strings.Builder
	if t.Subquery != nil {
		sb.WriteString("(" + t.Subquery.SQL() + ")")
	} else {
		sb.WriteString(t.Table)
	}
	if t.Alias != "" {
		sb.WriteString(" " + t.Alias)
	}
	for _, j := range t.Joins {
		sb.WriteString(" " + j.Kind.String() + " " + j.Table)
		if j.Alias != "" {
			sb.WriteString(" " + j.Alias)
		}
		if j.On != nil {
			sb.WriteString(" ON " + j.On.SQL())
		}
	}
	return sb.String()
}
