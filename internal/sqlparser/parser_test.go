package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT a, b FROM t")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.Select) != 2 {
		t.Fatalf("got %d select items, want 2", len(stmt.Select))
	}
	if len(stmt.From) != 1 || stmt.From[0].Table != "t" {
		t.Fatalf("bad FROM: %+v", stmt.From)
	}
}

func TestParseStar(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !stmt.Select[0].Star {
		t.Error("expected star projection")
	}
}

func TestParseAliases(t *testing.T) {
	stmt, err := Parse("SELECT x.a AS c1, y.b c2 FROM t1 AS x, t2 y")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stmt.Select[0].Alias != "c1" || stmt.Select[1].Alias != "c2" {
		t.Errorf("select aliases: %+v", stmt.Select)
	}
	if stmt.From[0].Alias != "x" || stmt.From[1].Alias != "y" {
		t.Errorf("table aliases: %+v", stmt.From)
	}
}

func TestParseExplicitJoins(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t1 JOIN t2 ON t1.id = t2.id LEFT JOIN t3 ON t2.x = t3.x")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	joins := stmt.From[0].Joins
	if len(joins) != 2 {
		t.Fatalf("got %d joins, want 2", len(joins))
	}
	if joins[0].Kind != JoinInner || joins[1].Kind != JoinLeft {
		t.Errorf("join kinds: %v, %v", joins[0].Kind, joins[1].Kind)
	}
	if joins[0].On == nil || joins[1].On == nil {
		t.Error("missing ON clauses")
	}
}

func TestParseWherePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op: %T %+v", stmt.Where, stmt.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR should be AND, got %+v", or.Right)
	}
}

func TestParseInBetweenLike(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE
		x IN (1, 2, 3) AND y NOT IN ('a') AND
		z BETWEEN 1 AND 10 AND w LIKE '%foo%' AND v NOT LIKE 'b%'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sql := stmt.Where.SQL()
	for _, want := range []string{"IN (1, 2, 3)", "NOT IN ('a')", "BETWEEN 1 AND 10", "LIKE '%foo%'", "NOT LIKE 'b%'"} {
		if !strings.Contains(sql, want) {
			t.Errorf("rendered WHERE missing %q: %s", want, sql)
		}
	}
}

func TestParseSubqueries(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE
		x IN (SELECT id FROM u WHERE u.k = t.k) AND
		EXISTS (SELECT 1 FROM v WHERE v.id = t.id) AND
		y > (SELECT AVG(z) FROM w)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sql := stmt.SQL()
	if !strings.Contains(sql, "EXISTS (SELECT") {
		t.Errorf("missing EXISTS subquery: %s", sql)
	}
	if !strings.Contains(sql, "> (SELECT AVG(z) FROM w)") {
		t.Errorf("missing scalar subquery: %s", sql)
	}
}

func TestParseQuantifiedComparison(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x = ANY (SELECT y FROM u)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok || be.Op != "= ANY" {
		t.Fatalf("got %+v", stmt.Where)
	}
}

func TestParseAggregatesGroupHaving(t *testing.T) {
	stmt, err := Parse(`SELECT k, COUNT(*), SUM(v * 2), AVG(DISTINCT w)
		FROM t GROUP BY k HAVING COUNT(*) > 10 ORDER BY k DESC LIMIT 5`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Fatal("missing GROUP BY / HAVING")
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Fatal("missing ORDER BY DESC")
	}
	if stmt.Limit == nil || *stmt.Limit != 5 {
		t.Fatal("missing LIMIT")
	}
	fc, ok := stmt.Select[3].Expr.(*FuncCall)
	if !ok || !fc.Distinct {
		t.Errorf("AVG(DISTINCT w) not parsed: %+v", stmt.Select[3].Expr)
	}
}

func TestParseCase(t *testing.T) {
	stmt, err := Parse(`SELECT SUM(CASE WHEN x = 1 THEN v ELSE 0 END) FROM t`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sql := stmt.SQL()
	if !strings.Contains(sql, "CASE WHEN x = 1 THEN v ELSE 0 END") {
		t.Errorf("bad CASE rendering: %s", sql)
	}
}

func TestParseDateInterval(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1994-01-01' + INTERVAL '1' year`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sql := stmt.SQL()
	if !strings.Contains(sql, "DATE '1994-01-01'") || !strings.Contains(sql, "INTERVAL '1 year'") {
		t.Errorf("bad date/interval rendering: %s", sql)
	}
}

func TestParseExtractSubstring(t *testing.T) {
	_, err := Parse(`SELECT EXTRACT(year FROM o_orderdate), SUBSTRING(c_phone FROM 1 FOR 2) FROM orders`)
	if err == nil {
		// SUBSTRING ... FOR is not in the grammar; only verify EXTRACT alone.
		t.Skip("FOR accepted unexpectedly")
	}
	stmt, err := Parse(`SELECT EXTRACT(year FROM o_orderdate) FROM orders`)
	if err != nil {
		t.Fatalf("Parse EXTRACT: %v", err)
	}
	fc, ok := stmt.Select[0].Expr.(*FuncCall)
	if !ok || fc.Name != "EXTRACT" || len(fc.Args) != 2 {
		t.Errorf("EXTRACT parse: %+v", stmt.Select[0].Expr)
	}
}

func TestParseIsNull(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sql := stmt.Where.SQL()
	if !strings.Contains(sql, "x IS NULL") || !strings.Contains(sql, "y IS NOT NULL") {
		t.Errorf("IS NULL rendering: %s", sql)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t extra garbage (",
		"INSERT INTO t VALUES (1)",
		"SELECT a FROM t WHERE x IN (",
		"SELECT a FROM t LIMIT x",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestParseSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}

// TestRoundTrip checks that rendering a parsed statement and re-parsing it
// yields an identical rendering (SQL() is a fixed point after one pass).
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t WHERE x = 1",
		"SELECT COUNT(*) FROM a, b WHERE a.id = b.id AND a.v > 10 GROUP BY a.k ORDER BY a.k",
		"SELECT SUM(l.price * (1 - l.disc)) AS rev FROM lineitem l WHERE l.ship BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'",
		"SELECT x FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		r1 := s1.SQL()
		s2, err := Parse(r1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", r1, err)
		}
		if r2 := s2.SQL(); r1 != r2 {
			t.Errorf("not a fixed point:\n first: %s\nsecond: %s", r1, r2)
		}
	}
}

// TestParseNeverPanics feeds random strings to the parser; it must return an
// error or a statement, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on input %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid SQL")
		}
	}()
	MustParse("not sql")
}
