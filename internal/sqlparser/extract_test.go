package sqlparser

import (
	"reflect"
	"testing"
)

func analyze(t *testing.T, q string) Analysis {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return Analyze(stmt)
}

func TestAnalyzeTables(t *testing.T) {
	a := analyze(t, "SELECT * FROM Orders o, LineItem l WHERE o.id = l.oid")
	want := []string{"lineitem", "orders"}
	if !reflect.DeepEqual(a.Tables, want) {
		t.Errorf("tables: got %v, want %v", a.Tables, want)
	}
}

func TestAnalyzeImplicitJoin(t *testing.T) {
	a := analyze(t, "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey")
	if len(a.Joins) != 1 {
		t.Fatalf("joins: %v", a.Joins)
	}
	j := a.Joins[0]
	if j.String() != "lineitem.l_orderkey = orders.o_orderkey" {
		t.Errorf("join: %s", j)
	}
}

func TestAnalyzeExplicitJoin(t *testing.T) {
	a := analyze(t, "SELECT * FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey")
	if len(a.Joins) != 1 {
		t.Fatalf("joins: %v", a.Joins)
	}
}

func TestAnalyzeJoinCanonicalization(t *testing.T) {
	a1 := analyze(t, "SELECT * FROM a, b WHERE a.x = b.y")
	a2 := analyze(t, "SELECT * FROM a, b WHERE b.y = a.x")
	if !reflect.DeepEqual(a1.Joins, a2.Joins) {
		t.Errorf("canonicalization failed: %v vs %v", a1.Joins, a2.Joins)
	}
}

func TestAnalyzeJoinDedup(t *testing.T) {
	a := analyze(t, "SELECT * FROM a, b WHERE a.x = b.y AND b.y = a.x")
	if len(a.Joins) != 1 {
		t.Errorf("expected 1 join after dedup, got %v", a.Joins)
	}
}

func TestAnalyzeFilterColumns(t *testing.T) {
	a := analyze(t, `SELECT * FROM orders o WHERE o.o_orderdate >= DATE '1994-01-01'
		AND o.o_totalprice BETWEEN 100 AND 200 AND o.o_orderstatus IN ('F', 'O')`)
	want := map[ColumnUse]FilterKind{
		{"orders", "o_orderdate"}:   FilterRange,
		{"orders", "o_totalprice"}:  FilterRange,
		{"orders", "o_orderstatus"}: FilterIn,
	}
	if len(a.Filters) != len(want) {
		t.Fatalf("filters: %v", a.Filters)
	}
	for _, f := range a.Filters {
		kind, ok := want[f.ColumnUse]
		if !ok {
			t.Errorf("unexpected filter %v", f)
		} else if f.Kind != kind {
			t.Errorf("filter %v: kind %v, want %v", f.ColumnUse, f.Kind, kind)
		}
	}
}

func TestAnalyzeSelfJoinNotAJoinCondition(t *testing.T) {
	// Same base table on both sides via aliases is a join; same alias on
	// both sides is not.
	a := analyze(t, "SELECT * FROM t a WHERE a.x = a.y")
	if len(a.Joins) != 0 {
		t.Errorf("self-column equality misclassified as join: %v", a.Joins)
	}
}

func TestAnalyzeSubqueryTablesAndJoins(t *testing.T) {
	a := analyze(t, `SELECT * FROM part p WHERE p.p_partkey IN
		(SELECT ps.ps_partkey FROM partsupp ps, supplier s WHERE ps.ps_suppkey = s.s_suppkey)`)
	wantTables := []string{"part", "partsupp", "supplier"}
	if !reflect.DeepEqual(a.Tables, wantTables) {
		t.Errorf("tables: got %v, want %v", a.Tables, wantTables)
	}
	// Two joins: the explicit supplier join inside the subquery plus the
	// semijoin edge implied by IN (SELECT ...).
	if len(a.Joins) != 2 {
		t.Errorf("joins: %v", a.Joins)
	}
	if a.Joins[1].String() != "part.p_partkey = partsupp.ps_partkey" &&
		a.Joins[0].String() != "part.p_partkey = partsupp.ps_partkey" {
		t.Errorf("semijoin edge missing: %v", a.Joins)
	}
}

func TestAnalyzeSemijoinEdge(t *testing.T) {
	a := analyze(t, `SELECT s.s_name FROM supplier s WHERE s.s_suppkey IN
		(SELECT ps.ps_suppkey FROM partsupp ps)`)
	if len(a.Joins) != 1 || a.Joins[0].String() != "partsupp.ps_suppkey = supplier.s_suppkey" {
		t.Errorf("joins: %v", a.Joins)
	}
}

func TestAnalyzeQuantifiedSemijoin(t *testing.T) {
	a := analyze(t, `SELECT * FROM orders o WHERE o.o_orderkey = ANY
		(SELECT l.l_orderkey FROM lineitem l)`)
	if len(a.Joins) != 1 || a.Joins[0].String() != "lineitem.l_orderkey = orders.o_orderkey" {
		t.Errorf("joins: %v", a.Joins)
	}
}

func TestAnalyzeCorrelatedSubquery(t *testing.T) {
	a := analyze(t, `SELECT * FROM orders o WHERE EXISTS
		(SELECT 1 FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)`)
	if len(a.Joins) != 1 {
		t.Fatalf("correlated join not found: %v", a.Joins)
	}
	if a.Joins[0].String() != "lineitem.l_orderkey = orders.o_orderkey" {
		t.Errorf("join: %s", a.Joins[0])
	}
}

func TestAnalyzeUnqualifiedSingleTable(t *testing.T) {
	a := analyze(t, "SELECT * FROM t WHERE x > 5")
	if len(a.Filters) != 1 || a.Filters[0].Table != "t" || a.Filters[0].Column != "x" || a.Filters[0].Kind != FilterRange {
		t.Errorf("unqualified filter resolution: %v", a.Filters)
	}
}

func TestAnalyzeCaseAndFuncArgs(t *testing.T) {
	a := analyze(t, `SELECT SUM(CASE WHEN n.n_name = 'BRAZIL' THEN 1 ELSE 0 END)
		FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey`)
	if len(a.Joins) != 1 {
		t.Errorf("joins: %v", a.Joins)
	}
	found := false
	for _, f := range a.Filters {
		if f.Table == "nation" && f.Column == "n_name" && f.Kind == FilterEq {
			found = true
		}
	}
	if !found {
		t.Errorf("filter inside CASE not found: %v", a.Filters)
	}
}

func TestJoinConditionCanonicalIdempotent(t *testing.T) {
	j := JoinCondition{"b", "y", "a", "x"}
	c := j.Canonical()
	if c != c.Canonical() {
		t.Error("Canonical not idempotent")
	}
	if c.LeftTable != "a" {
		t.Errorf("canonical order: %v", c)
	}
}

func TestAnalyzeDerivedTable(t *testing.T) {
	a := analyze(t, `SELECT dt.rev FROM
		(SELECT l.l_extendedprice AS rev, l.l_orderkey FROM lineitem l) dt, orders o
		WHERE dt.l_orderkey = o.o_orderkey AND dt.rev > 100`)
	wantTables := []string{"lineitem", "orders"}
	if !reflect.DeepEqual(a.Tables, wantTables) {
		t.Errorf("tables: %v", a.Tables)
	}
	// The derived column dt.l_orderkey resolves through to lineitem.
	if len(a.Joins) != 1 || a.Joins[0].String() != "lineitem.l_orderkey = orders.o_orderkey" {
		t.Errorf("joins: %v", a.Joins)
	}
	// dt.rev > 100 resolves to lineitem.l_extendedprice.
	found := false
	for _, f := range a.Filters {
		if f.Table == "lineitem" && f.Column == "l_extendedprice" && f.Kind == FilterRange {
			found = true
		}
	}
	if !found {
		t.Errorf("derived filter not resolved: %v", a.Filters)
	}
}

func TestAnalyzeDerivedTableInnerPredicates(t *testing.T) {
	// Joins and filters inside the derived table count toward the analysis.
	a := analyze(t, `SELECT x.cnt FROM
		(SELECT COUNT(*) AS cnt FROM customer c, orders o
			WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING') x`)
	if len(a.Joins) != 1 || a.Joins[0].String() != "customer.c_custkey = orders.o_custkey" {
		t.Errorf("inner join lost: %v", a.Joins)
	}
	found := false
	for _, f := range a.Filters {
		if f.Table == "customer" && f.Column == "c_mktsegment" {
			found = true
		}
	}
	if !found {
		t.Errorf("inner filter lost: %v", a.Filters)
	}
}

func TestParseDerivedTableRequiresAlias(t *testing.T) {
	if _, err := Parse("SELECT a FROM (SELECT b FROM t)"); err == nil {
		t.Error("derived table without alias accepted")
	}
}

func TestParseDerivedTableRoundTrip(t *testing.T) {
	q := "SELECT dt.a FROM (SELECT t.a FROM t) dt WHERE dt.a > 1"
	s1, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.SQL()
	s2, err := Parse(r1)
	if err != nil {
		t.Fatalf("re-parse %q: %v", r1, err)
	}
	if r2 := s2.SQL(); r1 != r2 {
		t.Errorf("not a fixed point: %q vs %q", r1, r2)
	}
}

func TestAnalyzeDerivedJoinToDerived(t *testing.T) {
	a := analyze(t, `SELECT COUNT(*) FROM
		(SELECT l.l_orderkey FROM lineitem l) a,
		(SELECT o.o_orderkey FROM orders o) b
		WHERE a.l_orderkey = b.o_orderkey`)
	if len(a.Joins) != 1 || a.Joins[0].String() != "lineitem.l_orderkey = orders.o_orderkey" {
		t.Errorf("derived-derived join: %v", a.Joins)
	}
}
