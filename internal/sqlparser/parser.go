package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement (an optional trailing semicolon is
// allowed) and returns its AST.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenSymbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokenEOF {
		return nil, p.errf("unexpected trailing token %s", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse that panics on error. Intended for workload definitions
// whose queries are fixed at compile time and covered by tests.
func MustParse(input string) *SelectStmt {
	stmt, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return stmt
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token  { return p.toks[p.pos] }
func (p *parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().Kind == TokenKeyword && p.peek().Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().Kind == TokenSymbol && p.peek().Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, te)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokenNumber {
			return nil, p.errf("expected number after LIMIT, got %s", t)
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value %q", t.Text)
		}
		stmt.Limit = &v
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Kind == TokenSymbol && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokenIdent && t.Kind != TokenKeyword {
			return SelectItem{}, p.errf("expected alias after AS, got %s", t)
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokenIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableExpr() (TableExpr, error) {
	var te TableExpr
	if p.peek().Kind == TokenSymbol && p.peek().Text == "(" {
		// Derived table: FROM (SELECT …) alias.
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return TableExpr{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return TableExpr{}, err
		}
		p.acceptKeyword("AS")
		a := p.next()
		if a.Kind != TokenIdent {
			return TableExpr{}, p.errf("derived table requires an alias, got %s", a)
		}
		te = TableExpr{Subquery: sub, Alias: a.Text}
	} else {
		name, alias, err := p.parseTableName()
		if err != nil {
			return TableExpr{}, err
		}
		te = TableExpr{Table: name, Alias: alias}
	}
	for {
		kind, ok := p.peekJoin()
		if !ok {
			return te, nil
		}
		jn, ja, err := p.parseTableName()
		if err != nil {
			return TableExpr{}, err
		}
		jc := JoinClause{Kind: kind, Table: jn, Alias: ja}
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return TableExpr{}, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return TableExpr{}, err
			}
			jc.On = on
		}
		te.Joins = append(te.Joins, jc)
	}
}

// peekJoin consumes and classifies a JOIN introducer if present.
func (p *parser) peekJoin() (JoinKind, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true
	case p.acceptKeyword("INNER"):
		p.acceptKeyword("JOIN")
		return JoinInner, true
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinLeft, true
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinRight, true
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinFull, true
	case p.acceptKeyword("CROSS"):
		p.acceptKeyword("JOIN")
		return JoinCross, true
	}
	return 0, false
}

func (p *parser) parseTableName() (name, alias string, err error) {
	t := p.next()
	if t.Kind != TokenIdent {
		return "", "", p.errf("expected table name, got %s", t)
	}
	name = t.Text
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.Kind != TokenIdent {
			return "", "", p.errf("expected alias after AS, got %s", a)
		}
		return name, a.Text, nil
	}
	if p.peek().Kind == TokenIdent {
		alias = p.next().Text
	}
	return name, alias, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := or
//	or      := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | predicate
//	predicate := cmp [IS [NOT] NULL | [NOT] (IN | BETWEEN | LIKE) ...]
//	cmp     := add (( = | <> | != | < | > | <= | >= ) add)?
//	add     := mul (( + | - | "||" ) mul)*
//	mul     := unary (( * | / | % ) unary)*
//	unary   := - unary | primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.peek().Kind == TokenKeyword && p.peek().Text == "EXISTS" {
		p.next()
		return p.parseExistsTail(false)
	}
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peek().Kind == TokenKeyword && p.peek().Text == "IS":
			p.next()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Not: not, Expr: left}
		case p.peek().Kind == TokenKeyword && p.peek().Text == "NOT" &&
			p.peek2().Kind == TokenKeyword &&
			(p.peek2().Text == "IN" || p.peek2().Text == "BETWEEN" || p.peek2().Text == "LIKE"):
			p.next() // NOT
			e, err := p.parsePredicateTail(left, true)
			if err != nil {
				return nil, err
			}
			left = e
		case p.peek().Kind == TokenKeyword &&
			(p.peek().Text == "IN" || p.peek().Text == "BETWEEN" || p.peek().Text == "LIKE"):
			e, err := p.parsePredicateTail(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		default:
			return left, nil
		}
	}
}

func (p *parser) parseExistsTail(not bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Not: not, Subquery: sub}, nil
}

func (p *parser) parsePredicateTail(left Expr, not bool) (Expr, error) {
	switch p.next().Text {
	case "IN":
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.peek().Kind == TokenKeyword && p.peek().Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{Not: not, Expr: left, Subquery: sub}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Not: not, Expr: left, List: list}, nil
	case "BETWEEN":
		lo, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Not: not, Expr: left, Lo: lo, Hi: hi}, nil
	case "LIKE":
		pat, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		op := "LIKE"
		if not {
			op = "NOT LIKE"
		}
		return &BinaryExpr{Op: op, Left: left, Right: pat}, nil
	}
	return nil, p.errf("internal: bad predicate tail")
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenSymbol {
		switch p.peek().Text {
		case "=", "<>", "!=", "<", ">", "<=", ">=":
			op := p.next().Text
			if op == "!=" {
				op = "<>"
			}
			// Quantified comparison: = ANY (subquery) etc.
			if p.peek().Kind == TokenKeyword &&
				(p.peek().Text == "ANY" || p.peek().Text == "ALL" || p.peek().Text == "SOME") {
				quant := p.next().Text
				if err := p.expectSymbol("("); err != nil {
					return nil, err
				}
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &BinaryExpr{Op: op + " " + quant, Left: left, Right: &SubqueryExpr{Subquery: sub}}, nil
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokenSymbol &&
		(p.peek().Text == "+" || p.peek().Text == "-" || p.peek().Text == "||") {
		op := p.next().Text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokenSymbol &&
		(p.peek().Text == "*" || p.peek().Text == "/" || p.peek().Text == "%") {
		op := p.next().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokenSymbol && p.peek().Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenNumber:
		p.next()
		return &NumberLit{Value: t.Text}, nil
	case TokenString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case TokenSymbol:
		if t.Text == "(" {
			p.next()
			if p.peek().Kind == TokenKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Subquery: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ParenExpr{Expr: e}, nil
		}
	case TokenKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "TRUE":
			p.next()
			return &BoolLit{Value: true}, nil
		case "FALSE":
			p.next()
			return &BoolLit{Value: false}, nil
		case "CASE":
			return p.parseCase()
		case "INTERVAL":
			p.next()
			v := p.next()
			if v.Kind != TokenString {
				return nil, p.errf("expected string after INTERVAL, got %s", v)
			}
			val := v.Text
			// Optional unit keyword/identifier, folded into the value.
			if p.peek().Kind == TokenIdent {
				val += " " + strings.ToLower(p.next().Text)
			}
			return &IntervalLit{Value: val}, nil
		case "DATE":
			p.next()
			v := p.next()
			if v.Kind != TokenString {
				return nil, p.errf("expected string after DATE, got %s", v)
			}
			return &DateLit{Value: v.Text}, nil
		case "EXISTS":
			p.next()
			return p.parseExistsTail(false)
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "SUBSTRING", "EXTRACT", "CAST":
			return p.parseFuncCall()
		}
	case TokenIdent:
		if p.peek2().Kind == TokenSymbol && p.peek2().Text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		if p.acceptSymbol(".") {
			col := p.next()
			if col.Kind != TokenIdent && col.Kind != TokenKeyword {
				return nil, p.errf("expected column after %q., got %s", t.Text, col)
			}
			return &ColumnRef{Qualifier: t.Text, Column: col.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !(p.peek().Kind == TokenKeyword && p.peek().Text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE without WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := strings.ToUpper(p.next().Text)
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptSymbol("*") {
		fc.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptSymbol(")") {
		return fc, nil
	}
	fc.Distinct = p.acceptKeyword("DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		// EXTRACT(year FROM col) and CAST(x AS type): fold the keyword into
		// the arg list by skipping the connective.
		if p.acceptKeyword("FROM") || p.acceptKeyword("AS") {
			continue
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
