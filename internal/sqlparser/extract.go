package sqlparser

import (
	"sort"
	"strings"
)

// JoinCondition is an equality join predicate between two columns, with
// qualifiers resolved to base table names where possible.
type JoinCondition struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
}

// Canonical returns the condition with sides ordered deterministically
// (lexicographic by table.column), so A=B and B=A compare equal.
func (j JoinCondition) Canonical() JoinCondition {
	l := j.LeftTable + "." + j.LeftColumn
	r := j.RightTable + "." + j.RightColumn
	if l <= r {
		return j
	}
	return JoinCondition{
		LeftTable: j.RightTable, LeftColumn: j.RightColumn,
		RightTable: j.LeftTable, RightColumn: j.LeftColumn,
	}
}

// String renders "table.col = table.col".
func (j JoinCondition) String() string {
	return j.LeftTable + "." + j.LeftColumn + " = " + j.RightTable + "." + j.RightColumn
}

// FilterKind classifies how a column is compared against constants.
type FilterKind int

// Filter kinds, ordered by typical selectivity (equality most selective).
const (
	FilterEq FilterKind = iota
	FilterIn
	FilterRange
	FilterLike
)

func (k FilterKind) String() string {
	switch k {
	case FilterEq:
		return "eq"
	case FilterIn:
		return "in"
	case FilterRange:
		return "range"
	case FilterLike:
		return "like"
	}
	return "?"
}

// ColumnUse is a column reference with its resolved base table.
type ColumnUse struct {
	Table  string
	Column string
}

// Filter is a constant predicate on a column.
type Filter struct {
	ColumnUse
	Kind FilterKind
}

// Analysis summarizes the parts of a query that λ-Tune consumes.
type Analysis struct {
	// Tables are the base tables referenced anywhere in the query
	// (including subqueries), deduplicated and sorted.
	Tables []string
	// Joins are the equality join conditions, canonicalized and
	// deduplicated, in first-appearance order.
	Joins []JoinCondition
	// Filters are constant predicates on columns (candidates for index
	// usage), deduplicated by column; the most selective kind wins.
	Filters []Filter
}

// FilterColumns returns the distinct filtered columns (kind dropped).
func (a Analysis) FilterColumns() []ColumnUse {
	out := make([]ColumnUse, len(a.Filters))
	for i, f := range a.Filters {
		out[i] = f.ColumnUse
	}
	return out
}

// Analyze resolves aliases and extracts tables, join conditions, and filter
// columns from the statement and all of its subqueries (including derived
// tables in FROM, whose projected columns are resolved back to base tables).
func Analyze(stmt *SelectStmt) Analysis {
	a := &analyzer{
		seenJoin:   map[JoinCondition]bool{},
		seenTable:  map[string]bool{},
		seenFilter: map[ColumnUse]int{},
	}
	a.selectStmt(stmt, emptyScope())
	sort.Strings(a.out.Tables)
	return a.out
}

type analyzer struct {
	out        Analysis
	seenJoin   map[JoinCondition]bool
	seenTable  map[string]bool
	seenFilter map[ColumnUse]int // index into out.Filters + 1 (0 = absent)
}

// scopeInfo carries name resolution for one SELECT scope: alias → base
// table, plus derived-table projections mapped back to base columns.
type scopeInfo struct {
	// tables maps lower-cased aliases and table names to base table names.
	tables map[string]string
	// derived maps "alias.column" of a derived table's projection to the
	// underlying base column, when the projection is a plain column.
	derived map[string]ColumnUse
}

func emptyScope() *scopeInfo {
	return &scopeInfo{tables: map[string]string{}, derived: map[string]ColumnUse{}}
}

func (s *scopeInfo) clone() *scopeInfo {
	out := &scopeInfo{
		tables:  make(map[string]string, len(s.tables)),
		derived: make(map[string]ColumnUse, len(s.derived)),
	}
	for k, v := range s.tables {
		out.tables[k] = v
	}
	for k, v := range s.derived {
		out.derived[k] = v
	}
	return out
}

// buildScope extends outer with the FROM items of a statement. Derived
// tables are analyzed as part of scope construction (their inner joins and
// filters count toward the analysis) and their plain-column projections are
// registered for resolution through the derived alias.
func (a *analyzer) buildScope(stmt *SelectStmt, outer *scopeInfo) *scopeInfo {
	scope := outer.clone()
	addBase := func(alias, table string) {
		if table == "" {
			return
		}
		a.addTable(table)
		if alias == "" {
			alias = table
		}
		scope.tables[strings.ToLower(alias)] = strings.ToLower(table)
		scope.tables[strings.ToLower(table)] = strings.ToLower(table)
	}
	for _, te := range stmt.From {
		if te.Subquery != nil {
			a.registerDerived(te, outer, scope)
		} else {
			addBase(te.Alias, te.Table)
		}
		for _, j := range te.Joins {
			addBase(j.Alias, j.Table)
		}
	}
	return scope
}

// registerDerived analyzes a derived table and maps its projected plain
// columns back to base tables under the derived alias.
func (a *analyzer) registerDerived(te TableExpr, outer, scope *scopeInfo) {
	// Analyze the subquery itself (tables, joins, filters inside count).
	a.selectStmt(te.Subquery, outer)
	inner := a.buildScopeShallow(te.Subquery, outer)
	alias := strings.ToLower(te.Alias)
	for _, item := range te.Subquery.Select {
		if item.Star || item.Expr == nil {
			continue
		}
		c, ok := item.Expr.(*ColumnRef)
		if !ok {
			continue
		}
		bt, bc, ok := a.resolveCol(c, inner)
		if !ok {
			continue
		}
		name := item.Alias
		if name == "" {
			name = c.Column
		}
		scope.derived[alias+"."+strings.ToLower(name)] = ColumnUse{Table: bt, Column: bc}
	}
}

// buildScopeShallow builds a statement's scope without re-analyzing derived
// subqueries (used when the subquery's analysis has already been recorded).
func (a *analyzer) buildScopeShallow(stmt *SelectStmt, outer *scopeInfo) *scopeInfo {
	scope := outer.clone()
	add := func(alias, table string) {
		if table == "" {
			return
		}
		if alias == "" {
			alias = table
		}
		scope.tables[strings.ToLower(alias)] = strings.ToLower(table)
		scope.tables[strings.ToLower(table)] = strings.ToLower(table)
	}
	for _, te := range stmt.From {
		add(te.Alias, te.Table)
		for _, j := range te.Joins {
			add(j.Alias, j.Table)
		}
	}
	return scope
}

// selectStmt processes one SELECT scope. outer carries aliases visible from
// enclosing scopes (for correlated subqueries).
func (a *analyzer) selectStmt(stmt *SelectStmt, outer *scopeInfo) {
	scope := a.buildScope(stmt, outer)
	for _, te := range stmt.From {
		for _, j := range te.Joins {
			if j.On != nil {
				a.expr(j.On, scope)
			}
		}
	}
	for _, it := range stmt.Select {
		if it.Expr != nil {
			a.expr(it.Expr, scope)
		}
	}
	if stmt.Where != nil {
		a.expr(stmt.Where, scope)
	}
	for _, g := range stmt.GroupBy {
		a.expr(g, scope)
	}
	if stmt.Having != nil {
		a.expr(stmt.Having, scope)
	}
	for _, o := range stmt.OrderBy {
		a.expr(o.Expr, scope)
	}
}

func (a *analyzer) addTable(name string) {
	name = strings.ToLower(name)
	if !a.seenTable[name] {
		a.seenTable[name] = true
		a.out.Tables = append(a.out.Tables, name)
	}
}

func (a *analyzer) addJoin(lt, lc, rt, rc string) {
	j := JoinCondition{LeftTable: lt, LeftColumn: lc, RightTable: rt, RightColumn: rc}.Canonical()
	if !a.seenJoin[j] {
		a.seenJoin[j] = true
		a.out.Joins = append(a.out.Joins, j)
	}
}

func (a *analyzer) addFilter(t, c string, kind FilterKind) {
	u := ColumnUse{Table: t, Column: c}
	if idx := a.seenFilter[u]; idx > 0 {
		// Keep the most selective (lowest) kind for the column.
		if kind < a.out.Filters[idx-1].Kind {
			a.out.Filters[idx-1].Kind = kind
		}
		return
	}
	a.out.Filters = append(a.out.Filters, Filter{ColumnUse: u, Kind: kind})
	a.seenFilter[u] = len(a.out.Filters)
}

// resolveCol maps a column reference to its base table and column via the
// scope, following derived-table projections. Returns ok=false when the
// reference cannot be attributed.
func (a *analyzer) resolveCol(c *ColumnRef, scope *scopeInfo) (table, column string, ok bool) {
	col := strings.ToLower(c.Column)
	if c.Qualifier != "" {
		q := strings.ToLower(c.Qualifier)
		if cu, ok := scope.derived[q+"."+col]; ok {
			return cu.Table, cu.Column, true
		}
		t, ok := scope.tables[q]
		return t, col, ok
	}
	// Unqualified columns: attributable only when a single table is in
	// scope. Benchmarks qualify all shared columns, so this is rare.
	uniq := map[string]bool{}
	for _, t := range scope.tables {
		uniq[t] = true
	}
	if len(uniq) == 1 {
		for t := range uniq {
			return t, col, true
		}
	}
	return "", "", false
}

func (a *analyzer) expr(e Expr, scope *scopeInfo) {
	switch x := e.(type) {
	case *BinaryExpr:
		// Quantified comparisons (= ANY / = ALL) against a subquery are
		// semijoins too.
		if strings.HasPrefix(x.Op, "= ") {
			if sub, ok := x.Right.(*SubqueryExpr); ok {
				if c, cok := x.Left.(*ColumnRef); cok {
					a.semijoin(c, sub.Subquery, scope)
				}
				a.expr(x.Left, scope)
				a.selectStmt(sub.Subquery, scope)
				return
			}
		}
		if x.Op == "=" {
			lc, lok := x.Left.(*ColumnRef)
			rc, rok := x.Right.(*ColumnRef)
			if lok && rok {
				lt, lcol, ltok := a.resolveCol(lc, scope)
				rt, rcol, rtok := a.resolveCol(rc, scope)
				if ltok && rtok && lt != rt {
					a.addJoin(lt, lcol, rt, rcol)
					return
				}
			}
			if lok && !rok {
				a.filterIfConstant(lc, x.Right, FilterEq, scope)
			}
			if rok && !lok {
				a.filterIfConstant(rc, x.Left, FilterEq, scope)
			}
		} else if isComparisonOp(x.Op) || x.Op == "LIKE" || x.Op == "NOT LIKE" {
			kind := FilterRange
			if strings.HasSuffix(x.Op, "LIKE") {
				kind = FilterLike
			}
			if lc, ok := x.Left.(*ColumnRef); ok {
				a.filterIfConstant(lc, x.Right, kind, scope)
			}
			if rc, ok := x.Right.(*ColumnRef); ok {
				a.filterIfConstant(rc, x.Left, kind, scope)
			}
		}
		a.expr(x.Left, scope)
		a.expr(x.Right, scope)
	case *UnaryExpr:
		a.expr(x.Expr, scope)
	case *ParenExpr:
		a.expr(x.Expr, scope)
	case *FuncCall:
		for _, arg := range x.Args {
			a.expr(arg, scope)
		}
	case *InExpr:
		if c, ok := x.Expr.(*ColumnRef); ok && x.Subquery == nil {
			if t, col, tok := a.resolveCol(c, scope); tok {
				a.addFilter(t, col, FilterIn)
			}
		}
		a.expr(x.Expr, scope)
		for _, item := range x.List {
			a.expr(item, scope)
		}
		if x.Subquery != nil {
			// col IN (SELECT c2 FROM ...) is a semijoin: register the
			// implied join edge, as query optimizers plan it.
			if c, ok := x.Expr.(*ColumnRef); ok {
				a.semijoin(c, x.Subquery, scope)
			}
			a.selectStmt(x.Subquery, scope)
		}
	case *BetweenExpr:
		if c, ok := x.Expr.(*ColumnRef); ok {
			if t, col, tok := a.resolveCol(c, scope); tok {
				a.addFilter(t, col, FilterRange)
			}
		}
		a.expr(x.Expr, scope)
		a.expr(x.Lo, scope)
		a.expr(x.Hi, scope)
	case *ExistsExpr:
		a.selectStmt(x.Subquery, scope)
	case *SubqueryExpr:
		a.selectStmt(x.Subquery, scope)
	case *IsNullExpr:
		a.expr(x.Expr, scope)
	case *CaseExpr:
		if x.Operand != nil {
			a.expr(x.Operand, scope)
		}
		for _, w := range x.Whens {
			a.expr(w.Cond, scope)
			a.expr(w.Then, scope)
		}
		if x.Else != nil {
			a.expr(x.Else, scope)
		}
	}
}

// semijoin registers the join edge implied by `outer IN (SELECT inner ...)`
// when the subquery projects a single plain column.
func (a *analyzer) semijoin(outer *ColumnRef, sub *SelectStmt, scope *scopeInfo) {
	ot, ocol, ook := a.resolveCol(outer, scope)
	if !ook {
		return
	}
	if len(sub.Select) != 1 || sub.Select[0].Star {
		return
	}
	inner, ok := sub.Select[0].Expr.(*ColumnRef)
	if !ok {
		return
	}
	subScope := a.buildScopeShallow(sub, scope)
	it, icol, iok := a.resolveCol(inner, subScope)
	if !iok || it == ot {
		return
	}
	a.addJoin(ot, ocol, it, icol)
}

// filterIfConstant records col as a filter column when other is a constant
// expression (literal or arithmetic over literals).
func (a *analyzer) filterIfConstant(col *ColumnRef, other Expr, kind FilterKind, scope *scopeInfo) {
	if !isConstantExpr(other) {
		return
	}
	if t, c, ok := a.resolveCol(col, scope); ok {
		a.addFilter(t, c, kind)
	}
}

func isConstantExpr(e Expr) bool {
	switch x := e.(type) {
	case *NumberLit, *StringLit, *NullLit, *BoolLit, *IntervalLit, *DateLit:
		return true
	case *UnaryExpr:
		return isConstantExpr(x.Expr)
	case *ParenExpr:
		return isConstantExpr(x.Expr)
	case *BinaryExpr:
		return isConstantExpr(x.Left) && isConstantExpr(x.Right)
	}
	return false
}

func isComparisonOp(op string) bool {
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
		return true
	}
	return false
}
