package service

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"lambdatune"
	"lambdatune/internal/workload"
)

// resolveLogger picks the manager's structured logger: the configured one,
// else a bridge that renders records as "msg key=value" lines onto the legacy
// Logf hook, else a discard logger so call sites never nil-check.
func resolveLogger(logger *slog.Logger, logf func(string, ...any)) *slog.Logger {
	if logger != nil {
		return logger
	}
	if logf != nil {
		return slog.New(&logfHandler{logf: logf})
	}
	return slog.New(discardHandler{})
}

// jobLog returns the manager logger bound to the job's identity: every
// job-scoped line carries the same job_id / tenant / run_id keys, so one
// grep (or one structured-log query) follows a job across enqueue, run,
// panic, and finish.
func (m *Manager) jobLog(job *Job) *slog.Logger {
	return m.log.With("job_id", job.ID, "tenant", job.Spec.Tenant, "run_id", runIDOf(&job.Spec))
}

// runIDOf derives the job's run identity — the workload display name + seed
// stem its durable checkpoints are stored under — so log lines correlate
// directly with checkpoint files and trace exports.
func runIDOf(spec *JobSpec) string {
	if w, err := workload.ByName(spec.Benchmark); err == nil {
		return lambdatune.RunID(w.Name, spec.seed())
	}
	return lambdatune.RunID(spec.Benchmark, spec.seed())
}

// logfHandler adapts slog records onto a printf-style sink. It keeps the old
// Config.Logf contract working unchanged (one line per record) while the
// manager's call sites speak structured logging; debug records are dropped,
// matching the old hook's verbosity.
type logfHandler struct {
	logf  func(string, ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &logfHandler{logf: h.logf, attrs: merged}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived after
// this module's Go baseline).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
