package service

import (
	"errors"
	"fmt"

	"lambdatune/internal/obs"
)

// ErrTraceUnavailable reports a job that exists but has no fetchable trace:
// it has not started yet, tracing is disabled, the trace was evicted by the
// retention window, or the job predates this process (re-adopted terminal
// jobs carry no spans). Distinct from ErrNotFound — the job itself is real.
var ErrTraceUnavailable = errors.New("service: trace unavailable")

// TraceRecords returns the job's span records in canonical depth-first order
// plus the job status at snapshot time. For a running job the records are a
// partial trace — a schema-valid prefix of the run so far; for a completed
// job they are the full export. ErrNotFound for unknown jobs,
// ErrTraceUnavailable (HTTP 409) when the job exists but holds no trace.
func (m *Manager) TraceRecords(id string) ([]obs.SpanRecord, JobStatus, error) {
	tr, _, status, err := m.traceOf(id)
	if err != nil {
		return nil, status, err
	}
	return tr.Records(), status, nil
}

// TraceSummary is the JSON form of a job's per-phase cost table — the same
// breakdown `lambdatune trace-summary` renders, served by
// GET /v1/jobs/{id}/summary.
type TraceSummary struct {
	JobID  string    `json:"job_id"`
	Status JobStatus `json:"status"`
	// Partial marks a summary taken from a still-running job's trace.
	Partial bool            `json:"partial,omitempty"`
	Spans   int             `json:"spans"`
	Events  int             `json:"events"`
	Phases  []obs.PhaseCost `json:"phases"`
}

// TraceSummary condenses the job's trace into its per-phase cost breakdown.
// Same availability contract as TraceRecords.
func (m *Manager) TraceSummary(id string) (*TraceSummary, error) {
	recs, status, err := m.TraceRecords(id)
	if err != nil {
		return nil, err
	}
	s := obs.Summarize(recs)
	return &TraceSummary{
		JobID:   id,
		Status:  status,
		Partial: !status.Terminal(),
		Spans:   s.Spans,
		Events:  s.Events,
		Phases:  s.Phases,
	}, nil
}

// traceOf resolves a job's live tracer, done channel, and status under the
// manager lock. The done channel closes when the job reaches a terminal
// state, which is what lets the stream endpoint follow a run to completion.
func (m *Manager) traceOf(id string) (*obs.Tracer, <-chan struct{}, JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, nil, "", ErrNotFound
	}
	if job.trace == nil {
		return nil, nil, job.Status, fmt.Errorf("%w: job %s (%s) has no retained trace", ErrTraceUnavailable, id, job.Status)
	}
	return job.trace, job.done, job.Status, nil
}
