package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lambdatune"
	"lambdatune/internal/obs"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		DataDir: t.TempDir(),
		Workers: 2,
		Logf:    t.Logf,
	}
}

func openManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func waitJob(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return job
}

// reference runs the same tuning the service would run for spec, through the
// public API, and returns the result.
func reference(t *testing.T, spec JobSpec) *lambdatune.Result {
	t.Helper()
	db, w, err := lambdatune.Benchmark(spec.Benchmark, spec.flavor())
	if err != nil {
		t.Fatal(err)
	}
	opts := lambdatune.DefaultOptions()
	opts.Seed = spec.seed()
	if spec.Samples > 0 {
		opts.Samples = spec.Samples
	}
	opts.Evaluation.Parallelism = spec.Parallelism
	res, err := db.Tune(w, lambdatune.NewSimulatedLLM(opts.Seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEnqueueRunsToSuccess(t *testing.T) {
	cfg := testConfig(t)
	m := openManager(t, cfg)

	spec := JobSpec{Benchmark: "tpch-1", Seed: 1}
	job, err := m.Enqueue(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Status != StatusQueued {
		t.Fatalf("unexpected fresh job: %+v", job)
	}

	done := waitJob(t, m, job.ID)
	if done.Status != StatusSucceeded {
		t.Fatalf("status = %s (error %q)", done.Status, done.Error)
	}
	if done.Result == nil {
		t.Fatal("no result on succeeded job")
	}
	want := reference(t, spec)
	if done.Result.BestScript != want.BestScript {
		t.Errorf("service best script differs from direct API run:\n--- want\n%s\n--- got\n%s",
			want.BestScript, done.Result.BestScript)
	}
	if done.Result.BestSeconds != want.BestSeconds || done.Result.TuningSeconds != want.TuningSeconds {
		t.Errorf("times differ: got (%v, %v) want (%v, %v)",
			done.Result.BestSeconds, done.Result.TuningSeconds, want.BestSeconds, want.TuningSeconds)
	}

	// The job record is durable and readable by the next process.
	data, err := os.ReadFile(filepath.Join(cfg.DataDir, job.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var persisted Job
	if err := json.Unmarshal(data, &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.Status != StatusSucceeded || persisted.Result == nil {
		t.Errorf("persisted record not terminal: status %q, result %+v", persisted.Status, persisted.Result)
	}
}

func TestEnqueueRejectsBadSpecs(t *testing.T) {
	m := openManager(t, testConfig(t))
	for _, spec := range []JobSpec{
		{},
		{Benchmark: "no-such-benchmark"},
		{Benchmark: "tpch-1", DBMS: "oracle"},
		{Benchmark: "tpch-1", LLMFaultRate: 1.5},
		{Benchmark: "tpch-1", Samples: -1},
	} {
		if _, err := m.Enqueue(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

// TestPanicIsolation: a panicking job becomes a failed job with the stack
// recorded — and the worker pool keeps serving new jobs.
func TestPanicIsolation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Metrics = obs.NewRegistry()
	m := openManager(t, cfg)
	m.beforeRun = func(job *Job, _ context.Context) {
		if job.Spec.Tenant == "boom" {
			panic("injected test panic")
		}
	}

	bad, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, m, bad.ID)
	if done.Status != StatusFailed {
		t.Fatalf("panicking job status = %s, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "injected test panic") {
		t.Errorf("error %q does not carry the panic message", done.Error)
	}
	if !strings.Contains(done.Stack, "runJob") && !strings.Contains(done.Stack, "goroutine") {
		t.Errorf("no stack captured: %q", done.Stack)
	}
	if got := cfg.Metrics.Counter("service_job_panics_total").Value(); got != 1 {
		t.Errorf("panic counter = %v, want 1", got)
	}

	// The server survived: a healthy job still runs to completion.
	good, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if done := waitJob(t, m, good.ID); done.Status != StatusSucceeded {
		t.Fatalf("follow-up job status = %s (error %q)", done.Status, done.Error)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	m := openManager(t, cfg)
	started := make(chan string, 8)
	gate := make(chan struct{})
	m.beforeRun = func(job *Job, ctx context.Context) {
		started <- job.ID
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}

	a, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // a is running (blocked at the gate), b is queued

	// Cancel the queued job: immediate terminal state, never runs.
	if _, err := m.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if job := waitJob(t, m, b.ID); job.Status != StatusCanceled {
		t.Fatalf("queued cancel: status = %s", job.Status)
	}

	// Cancel the running job: its context unblocks the gate wait and the
	// run is recorded as canceled, not failed.
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if job := waitJob(t, m, a.ID); job.Status != StatusCanceled {
		t.Fatalf("running cancel: status = %s (error %q)", job.Status, job.Error)
	}

	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown job: %v", err)
	}
}

func TestQueueFull(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	m := openManager(t, cfg)
	started := make(chan string, 8)
	gate := make(chan struct{})
	defer close(gate)
	m.beforeRun = func(job *Job, ctx context.Context) {
		started <- job.ID
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}

	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"}); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied
	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"}); err != nil {
		t.Fatal(err) // fills the queue
	}
	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
}

func TestTenantRateLimit(t *testing.T) {
	cfg := testConfig(t)
	cfg.RateBurst = 2
	cfg.RatePerSecond = 100
	m := openManager(t, cfg)
	now := time.Unix(0, 0)
	m.limiter.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "acme"}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "acme"}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("expected ErrRateLimited, got %v", err)
	}
	// Another tenant has its own bucket.
	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "other"}); err != nil {
		t.Fatalf("other tenant limited: %v", err)
	}
	// Refill restores the exhausted tenant.
	now = now.Add(time.Second)
	if _, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "acme"}); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

// TestDrainInterruptsRunningJob: draining cancels the in-flight run, records
// it as interrupted (not failed), and a fresh manager on the same DataDir
// re-adopts and finishes it.
func TestDrainInterruptsRunningJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	m.beforeRun = func(_ *Job, ctx context.Context) {
		close(started)
		<-ctx.Done() // hold the job mid-flight until drain cancels it
	}

	spec := JobSpec{Benchmark: "tpch-1"}
	job, err := m.Enqueue(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, err := m.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusInterrupted {
		t.Fatalf("after drain: status = %s (error %q), want interrupted", got.Status, got.Error)
	}
	if !m.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := m.Enqueue(spec); !errors.Is(err, ErrDraining) {
		t.Errorf("enqueue while draining: %v", err)
	}

	// "Restart": a new manager re-adopts the interrupted job and runs it.
	m2 := openManager(t, cfg)
	done := waitJob(t, m2, job.ID)
	if done.Status != StatusSucceeded {
		t.Fatalf("re-adopted job status = %s (error %q)", done.Status, done.Error)
	}
	if done.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", done.Resumes)
	}
	want := reference(t, spec)
	if done.Result.BestScript != want.BestScript || done.Result.BestSeconds != want.BestSeconds {
		t.Errorf("re-adopted result differs from direct run: got (%v) want (%v)",
			done.Result.BestSeconds, want.BestSeconds)
	}
}

// TestReadoptResumesFromCheckpoint simulates the full crash story: a
// previous process died mid-run (job.json says running, a real mid-run
// checkpoint is on disk), and a fresh manager re-adopts the job and resumes
// it from the checkpoint to the same answer an uninterrupted run produces.
func TestReadoptResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Benchmark: "tpch-1", Seed: 1}
	jobID := "job-000042"
	jobDir := filepath.Join(dir, jobID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// Leave a genuine mid-run checkpoint behind by crashing a direct run at
	// a chaos kill point, with the exact options the service would use.
	db, w, err := lambdatune.Benchmark(spec.Benchmark, spec.flavor())
	if err != nil {
		t.Fatal(err)
	}
	opts := lambdatune.DefaultOptions()
	opts.Seed = spec.seed()
	opts.Durability.CheckpointDir = jobDir
	opts.Faults = &lambdatune.FaultPlan{Seed: opts.Seed, CrashAfterRound: 2}
	if _, err := db.Tune(w, lambdatune.NewSimulatedLLM(opts.Seed), opts); !errors.Is(err, lambdatune.ErrKilled) {
		t.Fatalf("expected ErrKilled, got %v", err)
	}

	// The dead process's job record.
	rec, err := json.Marshal(&Job{ID: jobID, Spec: spec, Status: StatusRunning})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), rec, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	cfg.DataDir = dir
	m := openManager(t, cfg)
	done := waitJob(t, m, jobID)
	if done.Status != StatusSucceeded {
		t.Fatalf("resumed job status = %s (error %q)", done.Status, done.Error)
	}
	if done.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1", done.Resumes)
	}
	if !done.Result.Resumed {
		t.Error("result does not report Resumed — the checkpoint was ignored")
	}
	want := reference(t, spec)
	if done.Result.BestScript != want.BestScript {
		t.Errorf("resumed best script differs:\n--- want\n%s\n--- got\n%s",
			want.BestScript, done.Result.BestScript)
	}
	if done.Result.BestSeconds != want.BestSeconds || done.Result.TuningSeconds != want.TuningSeconds {
		t.Errorf("resumed times differ: got (%v, %v) want (%v, %v)",
			done.Result.BestSeconds, done.Result.TuningSeconds, want.BestSeconds, want.TuningSeconds)
	}
	// ID continuity: new jobs never collide with adopted ones.
	next, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= jobID {
		t.Errorf("new job ID %s does not continue after adopted %s", next.ID, jobID)
	}
}

func TestSubscribeStreamsProgress(t *testing.T) {
	m := openManager(t, testConfig(t))
	job, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var lines []string
	for line := range ch {
		lines = append(lines, line)
	}
	// The channel closed, so the job is terminal; lines may be empty if the
	// run outpaced the subscription, but normally the selector narrates.
	if job := waitJob(t, m, job.ID); job.Status != StatusSucceeded {
		t.Fatalf("job status = %s", job.Status)
	}
	t.Logf("streamed %d progress lines", len(lines))
}

func TestSeqOf(t *testing.T) {
	for id, want := range map[string]int{"job-000042": 42, "job-7": 7, "weird": 0, "": 0} {
		if got := seqOf(id); got != want {
			t.Errorf("seqOf(%q) = %d, want %d", id, got, want)
		}
	}
}
