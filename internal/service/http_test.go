package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lambdatune/internal/obs"
)

func newTestServer(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	cfg := testConfig(t)
	cfg.Metrics = obs.NewRegistry()
	m := openManager(t, cfg)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, srv
}

func decodeJob(t *testing.T, resp *http.Response) *Job {
	t.Helper()
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return &job
}

func TestHTTPJobLifecycle(t *testing.T) {
	m, srv := newTestServer(t)

	// Enqueue.
	body := `{"benchmark": "tpch-1", "seed": 1, "tenant": "acme"}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", resp.StatusCode)
	}
	job := decodeJob(t, resp)
	if job.ID == "" {
		t.Fatal("no job ID in response")
	}

	waitJob(t, m, job.ID)

	// Status.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", job.ID, resp.StatusCode)
	}
	got := decodeJob(t, resp)
	if got.Status != StatusSucceeded {
		t.Fatalf("status = %s (error %q)", got.Status, got.Error)
	}
	if got.Result == nil || got.Result.BestScript == "" {
		t.Error("result missing from response")
	}

	// List.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Errorf("GET /jobs listed %d jobs", len(list.Jobs))
	}

	// Metrics went through the mounted registry handler.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "service_jobs_enqueued_total") {
		t.Errorf("metrics exposition missing service series:\n%s", buf.String())
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv := newTestServer(t)

	for _, tc := range []struct {
		method, path, body string
		want               int
		wantCode           string
		wantRetryable      bool
	}{
		{"POST", "/v1/jobs", `{"benchmark": "no-such"}`, http.StatusBadRequest, CodeInvalidRequest, false},
		{"POST", "/v1/jobs", `not json`, http.StatusBadRequest, CodeInvalidRequest, false},
		{"POST", "/v1/jobs", `{"benchmark": "tpch-1", "bogus_field": 1}`, http.StatusBadRequest, CodeInvalidRequest, false},
		{"GET", "/v1/jobs/job-999999", "", http.StatusNotFound, CodeNotFound, false},
		{"POST", "/v1/jobs/job-999999/cancel", "", http.StatusNotFound, CodeNotFound, false},
		{"GET", "/v1/jobs/job-999999/stream", "", http.StatusNotFound, CodeNotFound, false},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var apiErr APIError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: code %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		if apiErr.Code != tc.wantCode {
			t.Errorf("%s %s: error code %q, want %q", tc.method, tc.path, apiErr.Code, tc.wantCode)
		}
		if apiErr.Message == "" {
			t.Errorf("%s %s: no error message", tc.method, tc.path)
		}
		if apiErr.Retryable != tc.wantRetryable {
			t.Errorf("%s %s: retryable %v, want %v", tc.method, tc.path, apiErr.Retryable, tc.wantRetryable)
		}
	}
}

// TestHTTPUnknownPath404: the removed unversioned /jobs* paths — and every
// other unknown path — answer 404 with the APIError JSON envelope, never the
// old 308 redirect or a text/plain 404.
func TestHTTPUnknownPath404(t *testing.T) {
	_, srv := newTestServer(t)

	for _, tc := range []struct {
		method, path string
	}{
		{"GET", "/jobs"},
		{"POST", "/jobs"},
		{"GET", "/jobs/job-000001"},
		{"POST", "/jobs/job-000001/cancel"},
		{"GET", "/jobs/job-000001/stream"},
		{"GET", "/v2/jobs"},
		{"GET", "/nonsense"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var apiErr APIError
		derr := json.NewDecoder(resp.Body).Decode(&apiErr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: code %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type %q, want application/json", tc.method, tc.path, ct)
		}
		if derr != nil {
			t.Errorf("%s %s: body is not a JSON envelope: %v", tc.method, tc.path, derr)
			continue
		}
		if apiErr.Code != CodeNotFound {
			t.Errorf("%s %s: error code %q, want %q", tc.method, tc.path, apiErr.Code, CodeNotFound)
		}
		if apiErr.Retryable {
			t.Errorf("%s %s: 404 marked retryable", tc.method, tc.path)
		}
	}
}

// TestHTTPClientHelpers drives the typed Client against a live server,
// including the *APIError translation of failures.
func TestHTTPClientHelpers(t *testing.T) {
	m, srv := newTestServer(t)
	c := &Client{BaseURL: srv.URL}

	job, err := c.Enqueue(JobSpec{Benchmark: "tpch-1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID)

	got, err := c.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusSucceeded || got.Result == nil {
		t.Fatalf("job = %+v", got)
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != job.ID {
		t.Errorf("List returned %d jobs", len(list))
	}
	if _, err := c.Cancel(job.ID); err != nil {
		t.Errorf("cancel of a terminal job should be a no-op, got %v", err)
	}

	// Failures surface as *APIError with the stable code.
	_, err = c.Get("job-999999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.Code != CodeNotFound || apiErr.Retryable || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("APIError = %+v", apiErr)
	}

	_, err = c.Enqueue(JobSpec{Benchmark: "no-such"})
	if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidRequest {
		t.Errorf("bad spec error = %v", err)
	}
}

func TestHTTPRateLimited(t *testing.T) {
	cfg := testConfig(t)
	cfg.RateBurst = 1
	cfg.RatePerSecond = 0.001
	m := openManager(t, cfg)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)

	post := func() *http.Response {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"benchmark": "tpch-1", "tenant": "acme"}`))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first enqueue: %d", resp.StatusCode)
	}
	if resp := post(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second enqueue: %d, want 429", resp.StatusCode)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	m, srv := newTestServer(t)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Draining: alive but not ready, and enqueues are refused.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready APIError
	derr := json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	if derr != nil {
		t.Errorf("readyz drain body is not a JSON envelope: %v", derr)
	} else if ready.Code != CodeDraining || !ready.Retryable {
		t.Errorf("readyz drain envelope: code %q retryable %v, want %q/true", ready.Code, ready.Retryable, CodeDraining)
	}
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "tpch-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("enqueue while draining: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPStream: the stream endpoint delivers progress lines and terminates
// with a final status line when the job finishes.
func TestHTTPStream(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	m := openManager(t, cfg)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)

	// Hold the job at the start line until the stream is attached, so the
	// subscription always sees the run's progress.
	attached := make(chan struct{})
	m.beforeRun = func(_ *Job, ctx context.Context) {
		select {
		case <-attached:
		case <-ctx.Done():
		}
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark": "tpch-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp)

	stream, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream", srv.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", stream.StatusCode)
	}
	close(attached)

	var lines []string
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("stream delivered no lines")
	}
	last := lines[len(lines)-1]
	if want := fmt.Sprintf("job %s: %s", job.ID, StatusSucceeded); last != want {
		t.Errorf("final stream line = %q, want %q", last, want)
	}
}

func TestHTTPListPagination(t *testing.T) {
	m, srv := newTestServer(t)

	const n = 5
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		job, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		waitJob(t, m, id)
	}

	// Walk the table in pages of 2 through the typed client; the pages must
	// reassemble the full ID-ordered listing exactly once each.
	c := &Client{BaseURL: srv.URL}
	var walked []string
	after := ""
	pages := 0
	for {
		jobs, next, err := c.ListPage(after, 2)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(jobs) > 2 {
			t.Fatalf("page of %d jobs exceeds limit 2", len(jobs))
		}
		for _, j := range jobs {
			walked = append(walked, j.ID)
		}
		if next == "" {
			break
		}
		after = next
	}
	if pages != 3 {
		t.Errorf("walked %d pages, want 3", pages)
	}
	if len(walked) != n {
		t.Fatalf("walked %d jobs, want %d", len(walked), n)
	}
	for i, id := range ids {
		if walked[i] != id {
			t.Errorf("page walk[%d] = %s, want %s", i, walked[i], id)
		}
	}

	// A cursor past the end yields an empty page and no next cursor.
	jobs, next, err := c.ListPage(ids[n-1], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || next != "" {
		t.Errorf("page past the end: %d jobs, next %q", len(jobs), next)
	}

	// Bare GET /v1/jobs keeps the unpaginated contract.
	all, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Errorf("unpaginated list has %d jobs, want %d", len(all), n)
	}

	// A malformed limit is a typed client error.
	resp, err := http.Get(srv.URL + "/v1/jobs?limit=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("limit=bogus: HTTP %d, want 400", resp.StatusCode)
	}
}
