package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lambdatune/internal/obs"
)

// TestTraceEndpointCompletedJob covers the happy path: a finished job serves
// a schema-valid JSONL trace, a JSON phase summary, and both typed client
// helpers agree with the raw endpoints.
func TestTraceEndpointCompletedJob(t *testing.T) {
	m, srv := newTestServer(t)
	job, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, m, job.ID); got.Status != StatusSucceeded {
		t.Fatalf("job status = %s (%s)", got.Status, got.Error)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Lambdatune-Trace"); got != "complete" {
		t.Errorf("Lambdatune-Trace = %q, want complete", got)
	}
	recs, err := obs.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateRecords(recs); err != nil {
		t.Fatalf("trace endpoint served invalid trace: %v", err)
	}
	if len(recs) < 10 {
		t.Fatalf("suspiciously small trace: %d spans", len(recs))
	}

	// The summary endpoint condenses the same records.
	var sum TraceSummary
	sresp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("GET summary: %d", sresp.StatusCode)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.JobID != job.ID || sum.Status != StatusSucceeded || sum.Partial {
		t.Errorf("summary header wrong: %+v", sum)
	}
	if sum.Spans != len(recs) || len(sum.Phases) == 0 {
		t.Errorf("summary spans=%d phases=%d (trace has %d spans)", sum.Spans, len(sum.Phases), len(recs))
	}

	// Typed client helpers.
	c := &Client{BaseURL: srv.URL}
	crecs, err := c.Trace(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(crecs) != len(recs) {
		t.Errorf("client trace %d spans, endpoint %d", len(crecs), len(recs))
	}
	csum, err := c.TraceSummary(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if csum.Spans != sum.Spans || len(csum.Phases) != len(sum.Phases) {
		t.Errorf("client summary %+v != endpoint %+v", csum, sum)
	}
}

// TestTraceEndpointAvailability pins the status-code contract: 404 for
// unknown jobs, 409 trace_unavailable for a queued job, 200 partial for a
// running one, and 200 complete for a failed (panicked) one.
func TestTraceEndpointAvailability(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	release := make(chan struct{})
	started := make(chan string, 1)
	m := openManager(t, cfg)
	m.beforeRun = func(job *Job, ctx context.Context) {
		if job.Spec.Seed == 99 {
			panic("trace-test boom")
		}
		started <- job.ID
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	srv := newServerFor(t, m)

	// Unknown job: 404.
	assertTraceErr(t, srv, "job-999999", http.StatusNotFound, CodeNotFound)

	running, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The running job serves its (possibly empty) partial trace.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + running.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("running job trace: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Lambdatune-Trace"); got != "partial" {
		t.Errorf("running job Lambdatune-Trace = %q, want partial", got)
	}

	// The queued job has no trace yet: 409 with the stable code, and the
	// typed client surfaces it as *APIError.
	assertTraceErr(t, srv, queued.ID, http.StatusConflict, CodeTraceUnavailable)
	c := &Client{BaseURL: srv.URL}
	_, err = c.Trace(queued.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeTraceUnavailable || !apiErr.Retryable {
		t.Fatalf("client trace on queued job: %v", err)
	}

	close(release)
	waitJob(t, m, running.ID)
	waitJob(t, m, queued.ID)

	// A failed (panicked) job keeps its trace fetchable.
	boom, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, m, boom.ID); got.Status != StatusFailed {
		t.Fatalf("panicking job status = %s", got.Status)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + boom.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failed job trace: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Lambdatune-Trace"); got != "complete" {
		t.Errorf("failed job Lambdatune-Trace = %q, want complete", got)
	}
}

// TestTraceRetentionEviction runs more jobs than the retention window holds
// and checks the oldest completed trace is evicted (409) while the newest
// stays fetchable, with the eviction counter advancing.
func TestTraceRetentionEviction(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.TraceRetention = 1
	cfg.Metrics = obs.NewRegistry()
	m := openManager(t, cfg)
	srv := newServerFor(t, m)

	first, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, first.ID)
	if _, _, err := m.TraceRecords(first.ID); err != nil {
		t.Fatalf("first trace should be retained: %v", err)
	}

	second, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, second.ID)

	assertTraceErr(t, srv, first.ID, http.StatusConflict, CodeTraceUnavailable)
	if _, _, err := m.TraceRecords(second.ID); err != nil {
		t.Fatalf("second trace should be retained: %v", err)
	}
	snap := cfg.Metrics.Snapshot()
	if snap["service_traces_evicted_total"] != 1 {
		t.Errorf("service_traces_evicted_total = %v, want 1", snap["service_traces_evicted_total"])
	}
	if snap["service_traces_retained"] != 1 {
		t.Errorf("service_traces_retained = %v, want 1", snap["service_traces_retained"])
	}
}

// TestTraceCaptureDisabled: negative retention turns per-job tracing off
// entirely — even completed jobs answer 409.
func TestTraceCaptureDisabled(t *testing.T) {
	cfg := testConfig(t)
	cfg.TraceRetention = -1
	m := openManager(t, cfg)
	srv := newServerFor(t, m)
	job, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, job.ID)
	assertTraceErr(t, srv, job.ID, http.StatusConflict, CodeTraceUnavailable)
}

// TestTraceStreamFollowsLiveJob opens the stream while the job runs and
// checks it emits schema-parseable span lines and closes at job completion,
// agreeing with the final trace's span count.
func TestTraceStreamFollowsLiveJob(t *testing.T) {
	m, srv := newTestServer(t)
	job, err := m.Enqueue(JobSpec{Benchmark: "tpch-1"})
	if err != nil {
		t.Fatal(err)
	}

	// Open the stream as soon as the trace exists (the run may finish first
	// on a fast machine — the stream then replays the full trace).
	deadline := time.Now().Add(30 * time.Second)
	var resp *http.Response
	for {
		resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/trace/stream")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("stream never became available: %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer resp.Body.Close()

	var lines int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %d unparseable: %v", lines+1, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	got := waitJob(t, m, job.ID)
	if got.Status != StatusSucceeded {
		t.Fatalf("job status = %s (%s)", got.Status, got.Error)
	}
	recs, _, err := m.TraceRecords(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lines != len(recs) {
		t.Errorf("stream emitted %d spans, final trace has %d", lines, len(recs))
	}
	if lines == 0 {
		t.Error("stream emitted no spans")
	}
}

// TestJobLogsCarryIdentityKeys checks the structured logger path: every
// job-scoped line is JSON with job_id, tenant, and run_id, the lifecycle
// transitions appear, and a panic produces a structured error record with
// the stack.
func TestJobLogsCarryIdentityKeys(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	cfg := testConfig(t)
	cfg.Logf = nil
	cfg.Logger = slog.New(slog.NewJSONHandler(&syncWriter{mu: &mu, w: &buf}, nil))
	m := openManager(t, cfg)
	m.beforeRun = func(job *Job, _ context.Context) {
		if job.Spec.Seed == 99 {
			panic("log-test boom")
		}
	}

	ok, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, ok.ID)
	boom, err := m.Enqueue(JobSpec{Benchmark: "tpch-1", Seed: 99, Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, boom.ID)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		seen[msg] = true
		if jid, _ := rec["job_id"].(string); jid != "" {
			for _, key := range []string{"tenant", "run_id"} {
				if _, has := rec[key]; !has {
					t.Errorf("log %q missing %s: %s", msg, key, line)
				}
			}
		}
		if msg == "job panicked" {
			if rec["level"] != "ERROR" {
				t.Errorf("panic log level = %v, want ERROR", rec["level"])
			}
			if stack, _ := rec["stack"].(string); !strings.Contains(stack, "goroutine") {
				t.Errorf("panic log carries no stack: %s", line)
			}
			if rec["job_id"] != boom.ID {
				t.Errorf("panic log job_id = %v, want %s", rec["job_id"], boom.ID)
			}
		}
	}
	for _, want := range []string{"job enqueued", "job running", "job finished", "job panicked"} {
		if !seen[want] {
			t.Errorf("no %q log line; got messages %v", want, seen)
		}
	}
}

// syncWriter serializes concurrent log writes from worker goroutines.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func newServerFor(t *testing.T, m *Manager) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func assertTraceErr(t *testing.T, srv *httptest.Server, id string, wantStatus int, wantCode string) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET trace %s: status %d, want %d", id, resp.StatusCode, wantStatus)
	}
	var apiErr APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != wantCode {
		t.Fatalf("GET trace %s: code %q, want %q", id, apiErr.Code, wantCode)
	}
}
