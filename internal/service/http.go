package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"lambdatune/internal/obs"
)

// Handler serves the job API over HTTP/JSON, versioned under /v1:
//
//	POST /v1/jobs                    enqueue a job (body: JobSpec) → 202 + Job
//	GET  /v1/jobs                    list jobs; ?limit= and ?after= paginate
//	GET  /v1/jobs/{id}               one job's status and result
//	POST /v1/jobs/{id}/cancel        cancel a queued or running job
//	GET  /v1/jobs/{id}/stream        live progress lines, chunked, until the job ends
//	GET  /v1/jobs/{id}/trace         the job's span trace as JSONL (partial while running)
//	GET  /v1/jobs/{id}/summary       the trace's per-phase cost table as JSON
//	GET  /v1/jobs/{id}/trace/stream  spans streamed live, chunked, until the job ends
//	GET  /healthz                    liveness (200 while the process serves)
//	GET  /readyz                     readiness (503 while draining)
//	GET  /metrics                    Prometheus text exposition (when metrics are on)
//
// Trace endpoints answer 404 for unknown jobs and 409 (trace_unavailable)
// for jobs that exist but hold no trace: still queued, re-adopted from a
// previous process, tracing disabled, or evicted by the retention window. A
// running job serves its partial trace (the Lambdatune-Trace header says
// partial vs complete).
//
// The unversioned /jobs* paths of the pre-/v1 release are gone (their one
// deprecation release, as 308 redirects, is over): they now 404 like any
// other unknown path. Probe and metrics endpoints stay unversioned — they
// address the process, not the API.
//
// Every non-2xx response carries the APIError JSON envelope: a stable
// machine-readable code, a human message, and a retryable hint. That
// includes unknown paths, which get a CodeNotFound envelope instead of the
// default text/plain 404.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", m.handleEnqueue)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", m.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", m.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", m.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/summary", m.handleTraceSummary)
	mux.HandleFunc("GET /v1/jobs/{id}/trace/stream", m.handleTraceStream)
	// Catch-all: unknown paths (including the removed unversioned /jobs*
	// routes) answer with the JSON 404 envelope.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, &APIError{
			Code:    CodeNotFound,
			Message: fmt.Sprintf("no route for %s %s (the job API lives under /v1)", r.Method, r.URL.Path),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if m.Draining() {
			// Typed envelope: readiness probes and clients get the same
			// machine-readable drain signal as the job endpoints.
			writeJSON(w, http.StatusServiceUnavailable, &APIError{
				Code:      CodeDraining,
				Message:   "service: draining",
				Retryable: true,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if m.cfg.Metrics != nil {
		metrics := obs.NewMetricsServer(m.cfg.Metrics, "").Handler()
		mux.Handle("GET /metrics", metrics)
		mux.Handle("GET /debug/vars", metrics)
	}
	return mux
}

// Stable machine-readable error codes carried by APIError.Code.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeNotFound         = "not_found"
	CodeRateLimited      = "rate_limited"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeInternal         = "internal"
	CodeTraceUnavailable = "trace_unavailable"
)

// APIError is the JSON error envelope every non-2xx response carries. It is
// also what the client helpers (Client) return for API failures, so callers
// on both sides of the wire can switch on Code or consult Retryable.
type APIError struct {
	// Code is a stable machine-readable identifier (invalid_request,
	// not_found, rate_limited, queue_full, draining, internal).
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// Retryable hints that the same request may succeed later (backpressure
	// and drain conditions), as opposed to client errors that never will.
	Retryable bool `json:"retryable"`
	// HTTPStatus is the response status code (not serialized; set by the
	// client helpers for callers that need it).
	HTTPStatus int `json:"-"`
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// toAPIError maps a service error onto the wire envelope.
func toAPIError(err error) (int, *APIError) {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, &APIError{Code: CodeNotFound, Message: err.Error()}
	case errors.Is(err, ErrTraceUnavailable):
		// 409: the job exists but its current state holds no trace. Retryable
		// because a queued job gains one the moment it starts running (an
		// evicted trace, though, is gone for good).
		return http.StatusConflict, &APIError{Code: CodeTraceUnavailable, Message: err.Error(), Retryable: true}
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests, &APIError{Code: CodeRateLimited, Message: err.Error(), Retryable: true}
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, &APIError{Code: CodeQueueFull, Message: err.Error(), Retryable: true}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, &APIError{Code: CodeDraining, Message: err.Error(), Retryable: true}
	default:
		// Spec validation problems are the client's fault.
		return http.StatusBadRequest, &APIError{Code: CodeInvalidRequest, Message: err.Error()}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code, envelope := toAPIError(err)
	writeJSON(w, code, envelope)
}

func (m *Manager) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	job, err := m.Enqueue(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// handleList serves GET /v1/jobs. Without parameters it returns the full
// table (the pre-pagination contract). ?limit=N caps the page at N jobs and
// ?after=ID resumes past a cursor; a non-empty "next_after" in the response
// is the cursor for the following page, so clients polling a thousand-job
// daemon can walk the table in bounded chunks.
func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("invalid limit %q: must be a non-negative integer", raw))
			return
		}
		limit = n
	}
	jobs, next := m.ListPage(q.Get("after"), limit)
	resp := map[string]any{"jobs": jobs}
	if next != "" {
		resp["next_after"] = next
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleStream sends the job's progress lines as they happen, one per line,
// flushing each, and closes when the job reaches a terminal state (or the
// client goes away).
func (m *Manager) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := m.Subscribe(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				// Job finished: emit a final status line so the stream is
				// self-describing.
				if job, err := m.Get(id); err == nil {
					fmt.Fprintf(w, "job %s: %s\n", job.ID, job.Status)
				}
				flush()
				return
			}
			fmt.Fprintln(w, line)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves the job's span trace as JSONL — the exact format
// `lambdatune trace-summary` and obs.ReadJSONL consume. A running job gets
// its schema-valid partial trace (DFS order over the spans recorded so far);
// the Lambdatune-Trace header distinguishes partial from complete.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	recs, status, err := m.TraceRecords(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	if status.Terminal() {
		w.Header().Set("Lambdatune-Trace", "complete")
	} else {
		w.Header().Set("Lambdatune-Trace", "partial")
	}
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteJSONL(w, recs)
}

// handleTraceSummary serves the trace's per-phase cost table as JSON.
func (m *Manager) handleTraceSummary(w http.ResponseWriter, r *http.Request) {
	s, err := m.TraceSummary(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s)
}

// traceStreamPoll is how often the trace stream looks for new spans. Spans
// are emitted in creation order with stable IDs (obs.CreationRecords), so
// every chunk extends a well-formed trace; the canonical DFS-ordered export
// from /trace remains the authoritative completed form.
const traceStreamPoll = 50 * time.Millisecond

// handleTraceStream follows a job's spans live: each new span is written as
// one JSONL line and flushed, until the job reaches a terminal state or the
// client goes away. Streaming an already-finished job emits its full trace
// and closes.
func (m *Manager) handleTraceStream(w http.ResponseWriter, r *http.Request) {
	tr, done, _, err := m.traceOf(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sent := 0
	emit := func() {
		recs := tr.CreationRecords(sent)
		if len(recs) == 0 {
			return
		}
		sent += len(recs)
		_ = obs.WriteJSONL(w, recs)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit()
	ticker := time.NewTicker(traceStreamPoll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			emit()
			return
		case <-ticker.C:
			emit()
		case <-r.Context().Done():
			return
		}
	}
}

// Client is a typed HTTP client for the /v1 job API: the lambdatuned CLI
// helpers and tests use it instead of hand-rolled requests. API failures
// come back as *APIError (errors.As), transport failures as plain errors.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out, translating
// non-2xx responses into *APIError.
func (c *Client) do(method, path string, body any, out any) error {
	var reqBody *strings.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqBody = strings.NewReader(string(data))
	} else {
		reqBody = strings.NewReader("")
	}
	req, err := http.NewRequest(method, strings.TrimSuffix(c.BaseURL, "/")+path, reqBody)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiErrFromResponse(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiErrFromResponse decodes a non-2xx response's APIError envelope, falling
// back to a bare HTTP-status error for non-envelope bodies.
func apiErrFromResponse(resp *http.Response) *APIError {
	var apiErr APIError
	if derr := json.NewDecoder(resp.Body).Decode(&apiErr); derr != nil || apiErr.Code == "" {
		return &APIError{Code: CodeInternal, Message: fmt.Sprintf("HTTP %d", resp.StatusCode), HTTPStatus: resp.StatusCode}
	}
	apiErr.HTTPStatus = resp.StatusCode
	return &apiErr
}

// Enqueue submits a job spec and returns the accepted job record.
func (c *Client) Enqueue(spec JobSpec) (*Job, error) {
	var job Job
	if err := c.do(http.MethodPost, "/v1/jobs", spec, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Get fetches one job by ID.
func (c *Client) Get(id string) (*Job, error) {
	var job Job
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// List fetches all jobs in ID order.
func (c *Client) List() ([]*Job, error) {
	var out struct {
		Jobs []*Job `json:"jobs"`
	}
	if err := c.do(http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// ListPage fetches up to limit jobs whose IDs sort after the cursor. The
// returned cursor is "" once the listing is exhausted; pass it back as after
// to continue.
func (c *Client) ListPage(after string, limit int) ([]*Job, string, error) {
	var out struct {
		Jobs      []*Job `json:"jobs"`
		NextAfter string `json:"next_after"`
	}
	params := url.Values{}
	if after != "" {
		params.Set("after", after)
	}
	if limit > 0 {
		params.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/jobs"
	if len(params) > 0 {
		path += "?" + params.Encode()
	}
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, "", err
	}
	return out.Jobs, out.NextAfter, nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(id string) (*Job, error) {
	var job Job
	if err := c.do(http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Trace fetches the job's span trace (the JSONL endpoint, parsed back into
// records). For a running job this is a partial trace of the run so far.
// *APIError with Code trace_unavailable means the job exists but holds no
// trace (queued, evicted, or re-adopted).
func (c *Client) Trace(id string) ([]obs.SpanRecord, error) {
	resp, err := c.http().Get(strings.TrimSuffix(c.BaseURL, "/") + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, apiErrFromResponse(resp)
	}
	return obs.ReadJSONL(resp.Body)
}

// TraceSummary fetches the job's per-phase cost table.
func (c *Client) TraceSummary(id string) (*TraceSummary, error) {
	var s TraceSummary
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/summary", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
