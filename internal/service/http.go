package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lambdatune/internal/obs"
)

// Handler serves the job API over HTTP/JSON:
//
//	POST /jobs              enqueue a job (body: JobSpec) → 202 + Job
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         one job's status and result
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /jobs/{id}/stream  live progress lines, chunked, until the job ends
//	GET  /healthz           liveness (200 while the process serves)
//	GET  /readyz            readiness (503 while draining)
//	GET  /metrics           Prometheus text exposition (when metrics are on)
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleEnqueue)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", m.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", m.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if m.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	if m.cfg.Metrics != nil {
		metrics := obs.NewMetricsServer(m.cfg.Metrics, "").Handler()
		mux.Handle("GET /metrics", metrics)
		mux.Handle("GET /debug/vars", metrics)
	}
	return mux
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrRateLimited):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	default:
		// Spec validation problems are the client's fault.
		code = http.StatusBadRequest
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (m *Manager) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	job, err := m.Enqueue(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleStream sends the job's progress lines as they happen, one per line,
// flushing each, and closes when the job reaches a terminal state (or the
// client goes away).
func (m *Manager) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := m.Subscribe(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				// Job finished: emit a final status line so the stream is
				// self-describing.
				if job, err := m.Get(id); err == nil {
					fmt.Fprintf(w, "job %s: %s\n", job.ID, job.Status)
				}
				flush()
				return
			}
			fmt.Fprintln(w, line)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
