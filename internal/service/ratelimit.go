package service

import (
	"sync"
	"time"
)

// tenantLimiter is a per-tenant token bucket: each tenant starts with burst
// tokens, pays one per enqueue, and refills at perSecond. A zero burst
// disables limiting entirely.
type tenantLimiter struct {
	burst     float64
	perSecond float64
	// now is injectable so tests can step time deterministically.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(burst int, perSecond float64) *tenantLimiter {
	return &tenantLimiter{
		burst:     float64(burst),
		perSecond: perSecond,
		now:       time.Now,
		buckets:   map[string]*bucket{},
	}
}

// allow spends one token from the tenant's bucket, reporting whether one was
// available.
func (l *tenantLimiter) allow(tenant string) bool {
	if l.burst <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.perSecond
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
