// Package service implements the lambdatuned job runner: a long-running
// tuning service that accepts jobs over HTTP, schedules them onto a bounded
// worker pool, and survives crashes. Every job checkpoints its tuning run
// durably (via the public API's CheckpointDir), so a killed or drained
// service re-adopts its in-flight jobs on restart and resumes them from the
// last checkpoint instead of starting over. A panicking job is isolated: it
// becomes a failed job carrying the panic message and stack, and the server
// keeps serving.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lambdatune"
	"lambdatune/internal/obs"
	"lambdatune/internal/runstate"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// The job lifecycle. queued → running → {succeeded, failed, canceled,
// interrupted}; interrupted jobs (drained or crashed mid-run) go back to
// queued on restart and resume from their checkpoint.
const (
	StatusQueued      JobStatus = "queued"
	StatusRunning     JobStatus = "running"
	StatusSucceeded   JobStatus = "succeeded"
	StatusFailed      JobStatus = "failed"
	StatusCanceled    JobStatus = "canceled"
	StatusInterrupted JobStatus = "interrupted"
)

// Terminal reports whether the status is an end state.
func (s JobStatus) Terminal() bool {
	switch s {
	case StatusSucceeded, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// JobSpec is the client-supplied description of one tuning job.
type JobSpec struct {
	// Benchmark names a built-in workload ("tpch-1", ...).
	Benchmark string `json:"benchmark"`
	// DBMS is "postgres" (default) or "mysql".
	DBMS string `json:"dbms,omitempty"`
	// Seed drives the run's determinism (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Samples is k, the number of LLM candidates (0 = paper default).
	Samples int `json:"samples,omitempty"`
	// Parallelism is the evaluation worker count (0/1 = sequential).
	Parallelism int `json:"parallelism,omitempty"`
	// LLMFaultRate / EngineFaultRate inject deterministic faults.
	LLMFaultRate    float64 `json:"llm_fault_rate,omitempty"`
	EngineFaultRate float64 `json:"engine_fault_rate,omitempty"`
	// Tenant attributes the job for rate limiting ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
}

// Validate rejects specs the service cannot run.
func (s *JobSpec) Validate() error {
	if s.Benchmark == "" {
		return fmt.Errorf("benchmark is required")
	}
	ok := false
	for _, b := range lambdatune.BenchmarkNames() {
		if b == s.Benchmark {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown benchmark %q (have: %s)",
			s.Benchmark, strings.Join(lambdatune.BenchmarkNames(), ", "))
	}
	switch strings.ToLower(s.DBMS) {
	case "", "postgres", "mysql":
	default:
		return fmt.Errorf("unknown dbms %q", s.DBMS)
	}
	if s.LLMFaultRate < 0 || s.LLMFaultRate > 1 || s.EngineFaultRate < 0 || s.EngineFaultRate > 1 {
		return fmt.Errorf("fault rates must be in [0,1]")
	}
	if s.Samples < 0 || s.Parallelism < 0 {
		return fmt.Errorf("samples and parallelism must be >= 0")
	}
	return nil
}

func (s *JobSpec) flavor() lambdatune.DBMS {
	if strings.EqualFold(s.DBMS, "mysql") {
		return lambdatune.MySQL
	}
	return lambdatune.Postgres
}

func (s *JobSpec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// JobResult is the subset of a tuning result the service reports.
type JobResult struct {
	BestScript     string  `json:"best_script"`
	BestSeconds    float64 `json:"best_seconds"`
	DefaultSeconds float64 `json:"default_seconds"`
	Speedup        float64 `json:"speedup"`
	TuningSeconds  float64 `json:"tuning_seconds"`
	Candidates     int     `json:"candidates"`
	Resumed        bool    `json:"resumed"`
}

// Job is one tuning job's full record — the unit the service persists
// (atomically, as job.json in the job's directory) on every transition.
type Job struct {
	ID     string    `json:"id"`
	Spec   JobSpec   `json:"spec"`
	Status JobStatus `json:"status"`
	// Error / Stack carry a failed job's cause; Stack is non-empty only for
	// panics — the panic is isolated to the job, never the server.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Resumes counts how many times the job was re-adopted from a checkpoint.
	Resumes int        `json:"resumes,omitempty"`
	Result  *JobResult `json:"result,omitempty"`

	// userCanceled distinguishes a client cancel from a drain interrupt.
	userCanceled bool
	cancel       context.CancelFunc
	done         chan struct{}

	// trace retains the job's span recorder for the /v1/jobs/{id}/trace
	// endpoints; traceHandle is the public wrapper the tuning run records
	// into. Both are nil while the job is queued, when tracing is disabled,
	// or after retention evicted the completed trace.
	trace       *obs.Tracer
	traceHandle *lambdatune.Trace

	// persistGen numbers record snapshots (under Manager.mu); persistMu and
	// persistWrote serialize the disk writes happening outside Manager.mu,
	// newest snapshot wins (see Manager.persistLocked).
	persistGen   uint64
	persistMu    sync.Mutex
	persistWrote uint64
}

// Config configures a Manager. Zero values get production defaults.
type Config struct {
	// DataDir is the durable root: one subdirectory per job holding job.json
	// and the run's checkpoints.
	DataDir string
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueDepth bounds the backlog of queued jobs (default 64); a full
	// queue rejects enqueues with ErrQueueFull.
	QueueDepth int
	// RateBurst / RatePerSecond form the per-tenant token bucket consulted
	// on enqueue (burst 0 = unlimited).
	RateBurst     int
	RatePerSecond float64
	// Runtime, when non-nil, is the shared tuning runtime every job runs on:
	// jobs of the same tenant over the same benchmark share plan caches and
	// schedule memos (wall-time savings only — per-job results are identical
	// to isolated runs), while breaker state and memo namespaces stay
	// isolated per tenant. nil creates a private runtime owned (and closed)
	// by the Manager.
	Runtime *lambdatune.Runtime
	// Metrics receives the service_* series (nil = discard).
	Metrics *obs.Registry
	// Logf receives one-line operational logs (nil = discard). Deprecated in
	// favor of Logger; when only Logf is set, structured records are bridged
	// onto it as "msg key=value" lines.
	Logf func(format string, args ...any)
	// Logger receives structured operational logs: job lifecycle transitions,
	// panic recoveries, trace evictions, and persistence failures, every
	// job-scoped line carrying consistent job_id/tenant/run_id keys. nil
	// falls back to the Logf bridge, or discards when Logf is nil too.
	Logger *slog.Logger
	// TraceRetention bounds how many completed jobs keep their span trace in
	// memory for the trace endpoints: 0 means the default (64), oldest
	// completed trace evicted first; negative disables per-job trace capture
	// entirely. A running job always keeps its live trace regardless of the
	// bound.
	TraceRetention int
}

// Typed service errors, matchable with errors.Is.
var (
	// ErrQueueFull reports a bounded-queue overflow on enqueue.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrRateLimited reports a per-tenant rate-limit rejection on enqueue.
	ErrRateLimited = errors.New("service: tenant rate limited")
	// ErrDraining reports an enqueue or cancel against a draining server.
	ErrDraining = errors.New("service: draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
)

// Manager owns the job table, the bounded scheduler, and the durable state
// under DataDir.
type Manager struct {
	cfg Config
	log *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	seq      int
	draining bool
	subs     map[string][]chan string
	// traceDone is the FIFO of completed jobs whose traces are retained;
	// beyond cfg.TraceRetention the oldest is evicted (trace set to nil).
	traceDone []string

	queue   chan string
	wg      sync.WaitGroup
	rootCtx context.Context
	stop    context.CancelFunc

	// rt is the shared tuning runtime all jobs execute on; ownRuntime marks
	// a Manager-created runtime that Drain must close.
	rt         *lambdatune.Runtime
	ownRuntime bool

	limiter *tenantLimiter

	// traceCheckTick counts completed traced jobs for the sampled telemetry
	// self-check (see traceSelfCheckEvery).
	traceCheckTick atomic.Uint64

	// beforeRun, when set, runs inside the job goroutine right before the
	// tuning run starts — the panic-isolation and drain tests hook in here.
	beforeRun func(job *Job, ctx context.Context)
}

// traceSelfCheckEvery samples the post-completion trace schema self-check:
// the first completed trace and every Nth after are exported and run through
// ValidateRecords. Schema breaks are systematic (an instrumentation-site or
// exporter bug corrupts every trace, not one), so sampling catches them just
// as surely while keeping the per-job telemetry cost at capture + summary —
// a full export per completed job is measurable drag on a busy daemon (E17).
const traceSelfCheckEvery = 16

// Open creates a Manager on DataDir, re-adopting every job a previous
// process left behind: terminal jobs are loaded read-only; queued, running,
// and interrupted jobs are re-queued, resuming from their checkpoint when
// one exists. Call Close or Drain to stop it.
func Open(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir is required")
	}
	if cfg.TraceRetention == 0 {
		cfg.TraceRetention = 64
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		log:     resolveLogger(cfg.Logger, cfg.Logf),
		jobs:    map[string]*Job{},
		subs:    map[string][]chan string{},
		rootCtx: ctx,
		stop:    stop,
		rt:      cfg.Runtime,
		limiter: newTenantLimiter(cfg.RateBurst, cfg.RatePerSecond),
	}
	if m.rt == nil {
		m.rt = lambdatune.NewRuntime(lambdatune.RuntimeOptions{})
		m.ownRuntime = true
	}
	adopt, err := m.scan()
	if err != nil {
		stop()
		return nil, err
	}
	// The queue must hold every re-adopted job on top of the configured
	// backlog, or a restart with a deep backlog would deadlock here.
	m.queue = make(chan string, cfg.QueueDepth+len(adopt))
	m.readopt(adopt)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// scan loads every persisted job from DataDir, returning the unfinished ones
// a previous process left behind.
func (m *Manager) scan() ([]*Job, error) {
	entries, err := os.ReadDir(m.cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	var adopt []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.DataDir, e.Name(), "job.json"))
		if err != nil {
			continue // not a job dir
		}
		var job Job
		if err := json.Unmarshal(data, &job); err != nil {
			m.log.Warn("readopt: skipping corrupt job record", "dir", e.Name(), "error", err)
			continue
		}
		job.done = make(chan struct{})
		if job.Status.Terminal() {
			close(job.done)
		}
		m.jobs[job.ID] = &job
		m.order = append(m.order, job.ID)
		if n := seqOf(job.ID); n > m.seq {
			m.seq = n
		}
		if !job.Status.Terminal() {
			adopt = append(adopt, &job)
		}
	}
	sort.Strings(m.order)
	sort.Slice(adopt, func(i, j int) bool { return adopt[i].ID < adopt[j].ID })
	return adopt, nil
}

// readopt re-queues the unfinished jobs a previous process left behind.
func (m *Manager) readopt(adopt []*Job) {
	for _, job := range adopt {
		// A job that was running or interrupted when the process died has a
		// checkpoint to resume from; a queued one simply starts.
		if job.Status != StatusQueued {
			job.Resumes++
		}
		job.Status = StatusQueued
		m.persistLocked(job)()
		m.queue <- job.ID
		m.counter("service_jobs_readopted_total").Inc()
		m.jobLog(job).Info("job readopted",
			"benchmark", job.Spec.Benchmark, "seed", job.Spec.seed(), "resumes", job.Resumes)
	}
}

func seqOf(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

func (m *Manager) counter(name string) *obs.Counter { return m.cfg.Metrics.Counter(name) }
func (m *Manager) gauge(name string) *obs.Gauge     { return m.cfg.Metrics.Gauge(name) }

// Enqueue validates, persists, and queues a new job, returning its ID.
func (m *Manager) Enqueue(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid spec: %w", err)
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if !m.limiter.allow(spec.Tenant) {
		m.mu.Unlock()
		m.counter("service_rate_limited_total").Inc()
		m.log.Warn("enqueue rate limited", "tenant", spec.Tenant, "benchmark", spec.Benchmark)
		return nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, spec.Tenant)
	}
	m.seq++
	job := &Job{
		ID:     fmt.Sprintf("job-%06d", m.seq),
		Spec:   spec,
		Status: StatusQueued,
		done:   make(chan struct{}),
	}
	// The non-blocking send happens under the lock so it is serialized with
	// Drain's close of the queue — never a send on a closed channel.
	select {
	case m.queue <- job.ID:
	default:
		m.seq--
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	flush := m.persistLocked(job)
	// Snapshot before unlocking: a worker may grab the job the instant the
	// lock drops.
	snap := job.clone()
	m.mu.Unlock()
	flush()
	m.counter("service_jobs_enqueued_total").Inc()
	m.jobLog(job).Info("job enqueued", "benchmark", spec.Benchmark, "seed", spec.seed())
	return snap, nil
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job.clone(), nil
}

// List returns snapshots of all jobs in ID order.
func (m *Manager) List() []*Job {
	jobs, _ := m.ListPage("", 0)
	return jobs
}

// ListPage returns up to limit job snapshots whose IDs sort strictly after
// the cursor, in ID order, plus the cursor for the next page ("" once the
// listing is exhausted). limit <= 0 means unbounded. Job IDs are zero-padded
// monotone sequence numbers, so m.order — sorted once on scan and appended
// in sequence order afterwards — stays sorted and the cursor resolves with a
// binary search instead of a copy of the whole table. Pagination keeps a
// thousand-job daemon's poll loops from cloning every record per request.
func (m *Manager) ListPage(after string, limit int) ([]*Job, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := 0
	if after != "" {
		start = sort.SearchStrings(m.order, after)
		if start < len(m.order) && m.order[start] == after {
			start++
		}
	}
	end := len(m.order)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	out := make([]*Job, 0, end-start)
	for _, id := range m.order[start:end] {
		out = append(out, m.jobs[id].clone())
	}
	next := ""
	if end < len(m.order) && end > start {
		next = m.order[end-1]
	}
	return out, next
}

// Cancel stops a queued or running job. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	flush := func() {}
	terminal := false
	switch job.Status {
	case StatusQueued:
		job.Status = StatusCanceled
		job.userCanceled = true
		terminal = true
		flush = m.persistLocked(job)
		m.counter("service_jobs_canceled_total").Inc()
	case StatusRunning:
		job.userCanceled = true
		if job.cancel != nil {
			job.cancel()
		}
	}
	snap := job.clone()
	m.mu.Unlock()
	// As in runJob: the terminal record reaches the disk before waiters wake.
	flush()
	if terminal {
		close(job.done)
	}
	return snap, nil
}

// Wait blocks until the job leaves the running/queued states or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (*Job, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	select {
	case <-job.done:
		return m.Get(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Subscribe returns a channel of the job's live progress lines. The channel
// closes when the job finishes. Call the returned cancel to unsubscribe.
func (m *Manager) Subscribe(id string) (<-chan string, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan string, 64)
	if job.Status.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	m.subs[id] = append(m.subs[id], ch)
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		subs := m.subs[id]
		for i, c := range subs {
			if c == ch {
				m.subs[id] = append(subs[:i], subs[i+1:]...)
				close(c)
				return
			}
		}
	}
	return ch, cancel, nil
}

// publish fans one progress line out to the job's subscribers (dropping
// lines to slow consumers rather than blocking the run).
func (m *Manager) publish(id, line string) {
	m.mu.Lock()
	subs := append([]chan string(nil), m.subs[id]...)
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- line:
		default:
		}
	}
}

func (m *Manager) closeSubs(id string) {
	m.mu.Lock()
	subs := m.subs[id]
	delete(m.subs, id)
	m.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
}

// Draining reports whether the server is shutting down (readiness).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain gracefully stops the manager: no new enqueues, every running job is
// cancelled — its selector writes a final mid-round checkpoint on the way
// out — and marked interrupted, so a restarted service re-adopts and
// resumes it. Drain waits for the workers to finish or ctx to expire.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	for _, job := range m.jobs {
		if job.Status == StatusRunning && job.cancel != nil {
			job.cancel()
		}
	}
	// Closed under the lock, serialized with Enqueue's send.
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		m.stop()
		if m.ownRuntime {
			m.rt.Close()
		}
		return ctx.Err()
	}
	// Queued jobs that never started stay queued on disk; the next process
	// picks them up.
	m.stop()
	if m.ownRuntime {
		m.rt.Close()
	}
	return nil
}

// Close is Drain with a short grace period, for tests and defers.
func (m *Manager) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return m.Drain(ctx)
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for id := range m.queue {
		m.runJob(id)
	}
}

// runJob executes one job with panic isolation: a panic anywhere inside the
// tuning run becomes a failed job carrying the stack — the worker, and the
// server, keep going.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok || job.Status != StatusQueued {
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.rootCtx)
	defer cancel()
	job.Status = StatusRunning
	job.cancel = cancel
	if m.cfg.TraceRetention >= 0 {
		// The trace exists from the instant the job is running, so the trace
		// endpoints can follow the run live from its first span.
		job.traceHandle = lambdatune.NewTrace()
		job.trace = job.traceHandle.Tracer()
	}
	flush := m.persistLocked(job)
	m.mu.Unlock()
	flush()
	jlog := m.jobLog(job)
	jlog.Info("job running", "benchmark", job.Spec.Benchmark, "seed", job.Spec.seed(), "resumes", job.Resumes)
	m.gauge("service_jobs_running").Add(1)
	defer m.gauge("service_jobs_running").Add(-1)

	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
				stack := debug.Stack()
				m.mu.Lock()
				job.Stack = string(stack)
				m.mu.Unlock()
				// Surface the recovery beyond the persisted job record: a
				// counter to alert on and a structured error log with the
				// job's identity keys, visible without polling the job API.
				m.counter("service_job_panics_total").Inc()
				jlog.Error("job panicked", "panic", fmt.Sprint(r), "stack", string(stack))
			}
		}()
		if m.beforeRun != nil {
			m.beforeRun(job, ctx)
		}
		return m.execute(ctx, job)
	}()

	m.mu.Lock()
	job.cancel = nil
	switch {
	case err == nil:
		job.Status = StatusSucceeded
		m.counter("service_jobs_succeeded_total").Inc()
	case job.userCanceled:
		job.Status = StatusCanceled
		job.Error = ""
		m.counter("service_jobs_canceled_total").Inc()
	case errors.Is(err, context.Canceled) && m.draining:
		// Drained mid-run: the checkpoint written on the way out makes the
		// job resumable; a restarted service re-adopts it.
		job.Status = StatusInterrupted
		job.Error = ""
		m.counter("service_jobs_interrupted_total").Inc()
	default:
		job.Status = StatusFailed
		job.Error = err.Error()
		m.counter("service_jobs_failed_total").Inc()
	}
	m.retainTraceLocked(job)
	flush = m.persistLocked(job)
	status := job.Status
	tr := job.trace
	m.mu.Unlock()
	// Flush before waking waiters: Wait's contract is that a returned
	// terminal job is already durable, so a process that reads job.json the
	// instant Wait returns sees the terminal record.
	flush()
	close(job.done)
	m.closeSubs(id)
	if status == StatusSucceeded && tr != nil {
		// Sampled telemetry self-check: a completed job's export must satisfy
		// the schema the /trace endpoint advertises (ValidateRecords). The
		// first trace and every traceSelfCheckEvery-th after are checked.
		if n := m.traceCheckTick.Add(1); n == 1 || n%traceSelfCheckEvery == 0 {
			if verr := obs.ValidateRecords(tr.Records()); verr != nil {
				jlog.Error("trace schema validation failed", "error", verr)
			}
		}
	}
	if status == StatusFailed {
		jlog.Error("job finished", "status", string(status), "error", job.Error)
	} else {
		jlog.Info("job finished", "status", string(status))
	}
}

// retainTraceLocked moves a finishing job's trace into the bounded retention
// window: the newest cfg.TraceRetention completed traces stay fetchable, the
// oldest beyond that bound is dropped (its jobs answer 409 trace_unavailable
// from then on). Callers hold m.mu.
func (m *Manager) retainTraceLocked(job *Job) {
	if job.trace == nil {
		return
	}
	m.traceDone = append(m.traceDone, job.ID)
	for len(m.traceDone) > m.cfg.TraceRetention {
		victim := m.traceDone[0]
		m.traceDone = m.traceDone[1:]
		if j, ok := m.jobs[victim]; ok {
			j.trace = nil
			j.traceHandle = nil
		}
		m.counter("service_traces_evicted_total").Inc()
		m.log.Info("trace evicted", "job_id", victim, "retention", m.cfg.TraceRetention)
	}
	m.gauge("service_traces_retained").Set(float64(len(m.traceDone)))
}

// progressWriter adapts the manager's pub/sub to the tuning run's
// line-oriented Progress writer.
type progressWriter struct {
	m  *Manager
	id string
	// buf holds a partial line between writes.
	buf strings.Builder
}

func (w *progressWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	for {
		s := w.buf.String()
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			break
		}
		w.m.publish(w.id, s[:nl])
		w.buf.Reset()
		w.buf.WriteString(s[nl+1:])
	}
	return len(p), nil
}

// execute runs the tuning pipeline for one job on the shared runtime,
// checkpointing into the job's directory and resuming when a checkpoint is
// already there.
func (m *Manager) execute(ctx context.Context, job *Job) error {
	spec := job.Spec
	db, w, err := m.rt.Benchmark(spec.Benchmark, spec.flavor())
	if err != nil {
		return err
	}
	jobDir := filepath.Join(m.cfg.DataDir, job.ID)
	opts := lambdatune.DefaultOptions()
	opts.Seed = spec.seed()
	if spec.Samples > 0 {
		opts.Samples = spec.Samples
	}
	opts.Evaluation.Parallelism = spec.Parallelism
	opts.Tenant = spec.Tenant
	opts.Durability.CheckpointDir = jobDir
	opts.Observability.Progress = &progressWriter{m: m, id: job.ID}
	m.mu.Lock()
	if job.traceHandle != nil {
		// Tracing is passive — the traced run selects the same configuration,
		// byte for byte, as an untraced one — so every job can afford it.
		opts.Observability.Trace = job.traceHandle
	}
	m.mu.Unlock()
	if spec.LLMFaultRate > 0 || spec.EngineFaultRate > 0 {
		opts.Faults = &lambdatune.FaultPlan{LLMRate: spec.LLMFaultRate, EngineRate: spec.EngineFaultRate, Seed: opts.Seed}
	}
	// Resume when a previous attempt left a checkpoint behind.
	ckpt := runstate.NewStore(jobDir, lambdatune.RunID(w.Name(), opts.Seed))
	if _, err := os.Stat(ckpt.Path()); err == nil {
		opts.Durability.Resume = true
	}

	res, err := m.rt.TuneContext(ctx, db, w, lambdatune.NewSimulatedLLM(opts.Seed), opts)
	if err != nil {
		return err
	}
	m.mu.Lock()
	job.Result = &JobResult{
		BestScript:     res.BestScript,
		BestSeconds:    res.BestSeconds,
		DefaultSeconds: res.DefaultSeconds,
		Speedup:        res.Speedup(),
		TuningSeconds:  res.TuningSeconds,
		Candidates:     res.Candidates,
		Resumed:        res.Resumed,
	}
	m.mu.Unlock()
	return nil
}

// persistLocked snapshots the job record under m.mu and returns a closure
// that writes it to disk. Call the closure after releasing m.mu: the write —
// a mkdir plus an atomic fsync'd file replace — used to sit inside the
// manager's one global lock, stalling every Enqueue/Get/List behind each
// job-state flush. Marshaling stays under the lock (it must see a consistent
// record); the closures serialize per job on persistMu with newest-snapshot-
// wins ordering, so concurrent flushes of one job can never regress the
// on-disk record. Persistence failures are logged, not fatal: the in-memory
// state stays authoritative for the life of the process.
func (m *Manager) persistLocked(job *Job) func() {
	job.persistGen++
	gen := job.persistGen
	data, err := json.MarshalIndent(job, "", "  ")
	if err != nil {
		m.log.Error("persist failed", "job_id", job.ID, "error", err)
		return func() {}
	}
	dir := filepath.Join(m.cfg.DataDir, job.ID)
	id := job.ID
	return func() {
		job.persistMu.Lock()
		defer job.persistMu.Unlock()
		if gen <= job.persistWrote {
			return // a newer snapshot already reached the disk
		}
		job.persistWrote = gen
		if err := os.MkdirAll(dir, 0o755); err != nil {
			m.log.Error("persist failed", "job_id", id, "error", err)
			return
		}
		if err := runstate.WriteFileAtomic(filepath.Join(dir, "job.json"), append(data, '\n')); err != nil {
			m.log.Error("persist failed", "job_id", id, "error", err)
		}
	}
}

// clone snapshots a job for hand-out (the internal fields stay behind).
func (j *Job) clone() *Job {
	cp := Job{
		ID: j.ID, Spec: j.Spec, Status: j.Status,
		Error: j.Error, Stack: j.Stack, Resumes: j.Resumes,
	}
	if j.Result != nil {
		r := *j.Result
		cp.Result = &r
	}
	return &cp
}
