package runstate

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// CheckpointExt is the checkpoint filename extension; the previous
// generation keeps PrevExt appended.
const (
	CheckpointExt = ".ckpt"
	PrevExt       = ".prev"
)

// Store persists a run's checkpoints durably. Save is crash-safe: the new
// checkpoint is written to a temp file, fsync'd, and atomically renamed over
// the live one, after the live one was rotated to the previous-generation
// file. A reader therefore always finds either the new checkpoint or the
// complete old one — never a half-written file under the live name — and
// even external corruption of the live file (the chaos harness simulates
// torn writes by truncating it) degrades to the previous generation, which
// costs at most one re-run selector round.
type Store struct {
	// Dir is the checkpoint directory (created on first Save).
	Dir string
	// RunID names the run; the live checkpoint lives at <Dir>/<RunID>.ckpt.
	RunID string
	// AfterSave, when set, runs after every durable save — the chaos
	// harness's kill points hook in here. A non-nil error aborts the run
	// (the checkpoint itself is already on disk).
	AfterSave func(st *State) error

	saves int
}

// NewStore creates a store for one run's checkpoints.
func NewStore(dir, runID string) *Store {
	return &Store{Dir: dir, RunID: sanitizeRunID(runID)}
}

// sanitizeRunID makes a run identifier filesystem-safe.
func sanitizeRunID(id string) string {
	if id == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, id)
}

// Path returns the live checkpoint's path.
func (s *Store) Path() string { return filepath.Join(s.Dir, s.RunID+CheckpointExt) }

// PrevPath returns the previous generation's path.
func (s *Store) PrevPath() string { return s.Path() + PrevExt }

// Saves counts the durable saves this store performed.
func (s *Store) Saves() int { return s.saves }

// Save durably persists the state and returns the number of bytes written.
func (s *Store) Save(st *State) (int, error) {
	if st.RunID == "" {
		st.RunID = s.RunID
	}
	data, err := Encode(st)
	if err != nil {
		return 0, fmt.Errorf("runstate: encode: %w", err)
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return 0, fmt.Errorf("runstate: %w", err)
	}
	path := s.Path()
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return 0, fmt.Errorf("runstate: %w", err)
	}
	// Rotate the live checkpoint to the previous generation before renaming
	// the new one in. If the rotation itself is interrupted, the worst case
	// is a missing .prev — the live file is still either old or new, whole.
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, s.PrevPath()); err != nil {
			return 0, fmt.Errorf("runstate: rotate: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("runstate: publish: %w", err)
	}
	syncDir(s.Dir)
	s.saves++
	if s.AfterSave != nil {
		if err := s.AfterSave(st); err != nil {
			return len(data), err
		}
	}
	return len(data), nil
}

// Load reads the latest usable checkpoint: the live file, or — when the live
// file is corrupt (torn write, truncation, bit flips) — the previous
// generation. fellBack reports that the fallback was taken. A version
// mismatch is not fallen back from: an incompatible schema on the live file
// means the whole directory is suspect.
func (s *Store) Load() (st *State, fellBack bool, err error) {
	st, err = LoadFile(s.Path())
	if err == nil {
		return st, false, nil
	}
	if !errors.Is(err, ErrCheckpointCorrupt) {
		return nil, false, err
	}
	prev, perr := LoadFile(s.PrevPath())
	if perr != nil {
		// Surface the live file's corruption, not the fallback's absence.
		return nil, false, err
	}
	return prev, true, nil
}

// LoadFile reads and verifies one checkpoint file.
func LoadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return st, nil
}

// writeFileSync writes data and fsyncs before closing, so a crash after
// Save's rename never exposes a half-written checkpoint.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames inside it are durable. Errors are
// ignored: some filesystems refuse directory fsync, and the rename itself
// is still atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// WriteFileAtomic durably writes data to path via a temp file and rename —
// the same discipline Save uses, for sidecar files like job specs.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}
