package runstate

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run-1")
	st := sampleState()
	n, err := s.Save(st)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("bytes written: %d", n)
	}
	if s.Saves() != 1 {
		t.Fatalf("saves: %d", s.Saves())
	}
	got, fellBack, err := s.Load()
	if err != nil || fellBack {
		t.Fatalf("load: %v fellBack=%v", err, fellBack)
	}
	if got.RunID != st.RunID || got.ClockSeconds != st.ClockSeconds {
		t.Errorf("loaded state differs: %+v", got)
	}
	// No temp file left behind.
	if _, err := os.Stat(s.Path() + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind after save")
	}
}

func TestStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run")
	st := sampleState()
	st.ClockSeconds = 1
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	st.ClockSeconds = 2
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	live, err := LoadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	prev, err := LoadFile(s.PrevPath())
	if err != nil {
		t.Fatal(err)
	}
	if live.ClockSeconds != 2 || prev.ClockSeconds != 1 {
		t.Errorf("rotation: live=%v prev=%v", live.ClockSeconds, prev.ClockSeconds)
	}
}

// TestStoreTornWriteFallback truncates the live checkpoint at every possible
// length and verifies Load either returns the live state (only at full
// length) or falls back to the previous generation — never garbage.
func TestStoreTornWriteFallback(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run")
	st := sampleState()
	st.ClockSeconds = 1
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	st.ClockSeconds = 2
	if _, err := s.Save(st); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Sample truncation points across the file (all of them at small sizes
	// would be slow for nothing — corruption detection is length+CRC based).
	for cut := 0; cut < len(full); cut += 37 {
		if err := os.WriteFile(s.Path(), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, fellBack, err := s.Load()
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if !fellBack {
			t.Fatalf("cut=%d: expected fallback", cut)
		}
		if got.ClockSeconds != 1 {
			t.Fatalf("cut=%d: fallback returned clock %v", cut, got.ClockSeconds)
		}
	}
	// Full-length file loads without fallback.
	if err := os.WriteFile(s.Path(), full, 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack, err := s.Load()
	if err != nil || fellBack || got.ClockSeconds != 2 {
		t.Fatalf("restored full file: %v fellBack=%v clock=%v", err, fellBack, got.ClockSeconds)
	}
}

func TestStoreCorruptLiveNoPrev(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run")
	if _, err := s.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.Path())
	if err := os.WriteFile(s.Path(), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("corrupt live, no prev: got %v, want ErrCheckpointCorrupt", err)
	}
}

// TestStoreVersionMismatchNoFallback: an unknown schema version on the live
// file means the directory is suspect — no silent fallback.
func TestStoreVersionMismatchNoFallback(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run")
	if _, err := s.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(sampleState()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.Path())
	bumped := strings.Replace(string(data), " v2 ", " v9 ", 1)
	if err := os.WriteFile(s.Path(), []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("version mismatch: got %v, want ErrCheckpointVersion (no fallback)", err)
	}
}

func TestStoreAfterSaveError(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, "run")
	boom := errors.New("boom")
	s.AfterSave = func(*State) error { return boom }
	n, err := s.Save(sampleState())
	if !errors.Is(err, boom) {
		t.Fatalf("hook error not propagated: %v", err)
	}
	if n <= 0 {
		t.Error("bytes should be reported — the checkpoint is durable before the hook runs")
	}
	// The checkpoint itself must be on disk and loadable.
	if _, _, err := s.Load(); err != nil {
		t.Errorf("checkpoint not durable despite hook error: %v", err)
	}
}

func TestSanitizeRunID(t *testing.T) {
	cases := map[string]string{
		"":                "run",
		"tpch-1_seed1":    "tpch-1_seed1",
		"../../etc/pass":  "..-..-etc-pass",
		"a b\tc":          "a-b-c",
		"job:42/shard#1":  "job-42-shard-1",
		"UPPER.lower-123": "UPPER.lower-123",
	}
	for in, want := range cases {
		if got := sanitizeRunID(in); got != want {
			t.Errorf("sanitizeRunID(%q) = %q, want %q", in, got, want)
		}
	}
	s := NewStore(t.TempDir(), "../../escape")
	if strings.Contains(filepath.Base(s.Path()), "/") || !strings.HasPrefix(s.Path(), s.Dir) {
		t.Errorf("store path escapes dir: %s", s.Path())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := WriteFileAtomic(path, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"a":2}` {
		t.Errorf("content: %s", data)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind")
	}
}
