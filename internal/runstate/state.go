// Package runstate serializes the full resumable state of a tuning run —
// the parsed candidate pool, the selector's round bookkeeping, the virtual
// clock position, and (optionally) the fault injector's RNG position — into
// a versioned, checksum-framed checkpoint. The tuner writes one checkpoint
// after LLM sampling completes and one after every selector round; feeding
// the latest checkpoint back through the resume path reproduces the
// uninterrupted run's selection byte-for-byte (pinned by the golden-E1 chaos
// tests in internal/bench).
//
// Durability model: checkpoints are written by Store with an atomic rename
// after an fsync, and the previous generation is kept as a fallback. A torn
// or corrupted file (truncation, bit flips) is detected by the length+CRC
// frame and Decode returns ErrCheckpointCorrupt; Store.Load then falls back
// to the previous generation, which re-runs at most one selector round.
package runstate

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/race"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
)

// Version is the current checkpoint schema version. Decode rejects any
// version newer than it with ErrCheckpointVersion — a checkpoint written by
// a newer build must not be half-understood by an older one — while still
// reading every older supported version (v2 added the racing rung state and
// per-query times; v1 files decode with those fields absent).
const Version = 2

// minVersion is the oldest checkpoint schema this build still reads.
const minVersion = 1

// magic is the first token of every checkpoint file.
const magic = "lambdatune-checkpoint"

// Typed checkpoint errors, matchable with errors.Is.
var (
	// ErrCheckpointCorrupt reports a checkpoint that failed the length or
	// CRC-32 check, or whose payload is not valid checkpoint JSON — a torn
	// write, truncation, or external damage.
	ErrCheckpointCorrupt = errors.New("runstate: checkpoint corrupt")
	// ErrCheckpointVersion reports a checkpoint with an unknown schema
	// version.
	ErrCheckpointVersion = errors.New("runstate: unsupported checkpoint version")
	// ErrCheckpointMismatch reports a checkpoint that belongs to a different
	// run: the workload or the selection-relevant options differ.
	ErrCheckpointMismatch = errors.New("runstate: checkpoint belongs to a different run")
)

// IndexState is one serialized index recommendation.
type IndexState struct {
	Table   string `json:"table"`
	Columns string `json:"columns"`
	Name    string `json:"name,omitempty"`
}

// ConfigState is one serialized candidate configuration. Params marshal with
// sorted keys (encoding/json map ordering), so encoding is byte-stable.
type ConfigState struct {
	ID      string            `json:"id"`
	Params  map[string]string `json:"params"`
	Indexes []IndexState      `json:"indexes,omitempty"`
}

// MetaState is one configuration's serialized evaluation bookkeeping
// (evaluator.ConfigMeta, with the Completed set flattened to a sorted list).
type MetaState struct {
	Time       float64  `json:"time"`
	IsComplete bool     `json:"is_complete"`
	IndexTime  float64  `json:"index_time"`
	Completed  []string `json:"completed,omitempty"`
	Aborts     int      `json:"aborts,omitempty"`
	// QueryTimes carries the per-query observed seconds racing's surrogate
	// fits from (v2; absent outside racing runs, so non-racing encodings are
	// unchanged from v1 apart from the header version).
	QueryTimes map[string]float64 `json:"query_times,omitempty"`
}

// RoundCheckpoint is the serialized form of selector.RoundState.
type RoundCheckpoint struct {
	Round   int     `json:"round"`
	Timeout float64 `json:"timeout"`
	// BestID/BestTime carry the best fully evaluated configuration at save
	// time ("" = none yet): a resumed run restores the best directly instead
	// of re-deriving it, which keeps post-completion checkpoints resumable
	// without re-evaluating candidates the uninterrupted run never touched
	// again.
	BestID   string               `json:"best_id,omitempty"`
	BestTime float64              `json:"best_time,omitempty"`
	Metas    map[string]MetaState `json:"metas"`
	// Race is the racing strategy's rung bookkeeping (v2; nil under full
	// evaluation).
	Race *race.State `json:"race,omitempty"`
}

// InjectorState is the fault injector's resumable position (see
// faults.Injector.Snapshot). Only the engine-side stream matters after a
// round checkpoint — LLM faults can only fire during sampling, which resume
// skips.
type InjectorState struct {
	Seed        int64          `json:"seed"`
	EngineDraws int            `json:"engine_draws"`
	Counts      map[string]int `json:"counts,omitempty"`
}

// State is the full resumable state of a tuning run at a checkpoint.
type State struct {
	// Version is the schema version (always the package Version on encode).
	Version int `json:"version"`
	// RunID names the run; Store derives the checkpoint filename from it.
	RunID string `json:"run_id"`
	// WorkloadDigest / OptionsDigest fingerprint what the checkpoint was
	// taken against; Validate refuses to resume onto a different workload or
	// differently configured run.
	WorkloadDigest string `json:"workload_digest"`
	OptionsDigest  string `json:"options_digest"`
	// StartClockSeconds / ClockSeconds are the virtual clock at run start and
	// at the checkpoint. Resume advances a fresh backend's clock to
	// ClockSeconds and accounts TuningSeconds from StartClockSeconds, so a
	// resumed run reports the same totals as the uninterrupted one.
	StartClockSeconds float64 `json:"start_clock_seconds"`
	ClockSeconds      float64 `json:"clock_seconds"`
	// PromptTokens preserves the prompt accounting of the original run (the
	// prompt itself is not re-generated on resume).
	PromptTokens int `json:"prompt_tokens"`
	// SeedDefault records whether the candidate pool was seeded with the
	// default configuration.
	SeedDefault bool `json:"seed_default"`
	// Candidates is the parsed candidate pool in sampling order — the paid-for
	// LLM samples, never re-requested on resume.
	Candidates []ConfigState `json:"candidates"`
	// Warnings / DroppedSamples carry the sampling phase's non-fatal issues.
	Warnings       []string `json:"warnings,omitempty"`
	DroppedSamples int      `json:"dropped_samples,omitempty"`
	// Round is the selector's last saved round state; nil when only sampling
	// has finished (selection restarts from round 1 with the restored pool).
	Round *RoundCheckpoint `json:"round,omitempty"`
	// Injector is the fault injector's RNG position for fault-injected runs.
	Injector *InjectorState `json:"injector,omitempty"`
}

// Validate checks the checkpoint against the run about to resume. A nil
// error means the checkpoint was taken by an equivalent run.
func (st *State) Validate(workloadDigest, optionsDigest string) error {
	if st.WorkloadDigest != workloadDigest {
		return fmt.Errorf("%w: workload digest %s != %s",
			ErrCheckpointMismatch, st.WorkloadDigest, workloadDigest)
	}
	if st.OptionsDigest != optionsDigest {
		return fmt.Errorf("%w: options digest %s != %s",
			ErrCheckpointMismatch, st.OptionsDigest, optionsDigest)
	}
	return nil
}

// Encode frames the state as a checkpoint file: a header line carrying the
// schema version, payload length, and CRC-32, followed by the JSON payload.
// Encoding is deterministic for a given state (JSON maps marshal with sorted
// keys, floats round-trip exactly).
func Encode(st *State) ([]byte, error) {
	cp := *st
	cp.Version = Version
	payload, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, err
	}
	payload = append(payload, '\n')
	header := fmt.Sprintf("%s v%d crc32=%08x bytes=%d\n",
		magic, Version, crc32.ChecksumIEEE(payload), len(payload))
	return append([]byte(header), payload...), nil
}

// Decode parses and verifies a checkpoint file. Torn writes and corruption
// return ErrCheckpointCorrupt; unknown schema versions return
// ErrCheckpointVersion. Both are wrapped, so errors.Is matches.
func Decode(data []byte) (*State, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCheckpointCorrupt)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != magic {
		return nil, fmt.Errorf("%w: bad header %q", ErrCheckpointCorrupt, string(data[:nl]))
	}
	version, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
	if err != nil || !strings.HasPrefix(fields[1], "v") {
		return nil, fmt.Errorf("%w: bad version field %q", ErrCheckpointCorrupt, fields[1])
	}
	if version < minVersion || version > Version {
		return nil, fmt.Errorf("%w: v%d (this build reads v%d-v%d)", ErrCheckpointVersion, version, minVersion, Version)
	}
	wantCRC, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "crc32="), 16, 32)
	if err != nil || !strings.HasPrefix(fields[2], "crc32=") {
		return nil, fmt.Errorf("%w: bad crc field %q", ErrCheckpointCorrupt, fields[2])
	}
	wantLen, err := strconv.Atoi(strings.TrimPrefix(fields[3], "bytes="))
	if err != nil || !strings.HasPrefix(fields[3], "bytes=") {
		return nil, fmt.Errorf("%w: bad length field %q", ErrCheckpointCorrupt, fields[3])
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d (torn write?)",
			ErrCheckpointCorrupt, len(payload), wantLen)
	}
	if got := crc32.ChecksumIEEE(payload); got != uint32(wantCRC) {
		return nil, fmt.Errorf("%w: crc32 %08x != %08x", ErrCheckpointCorrupt, got, uint32(wantCRC))
	}
	var st State
	dec := json.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if st.Version < minVersion || st.Version > Version {
		return nil, fmt.Errorf("%w: payload v%d (this build reads v%d-v%d)", ErrCheckpointVersion, st.Version, minVersion, Version)
	}
	if st.Version != version {
		return nil, fmt.Errorf("%w: header says v%d, payload says v%d", ErrCheckpointCorrupt, version, st.Version)
	}
	return &st, nil
}

// CaptureConfigs serializes a candidate pool.
func CaptureConfigs(cs []*engine.Config) []ConfigState {
	out := make([]ConfigState, len(cs))
	for i, c := range cs {
		cc := ConfigState{ID: c.ID, Params: map[string]string{}}
		for k, v := range c.Params {
			cc.Params[k] = v
		}
		for _, ix := range c.Indexes {
			cc.Indexes = append(cc.Indexes, IndexState{Table: ix.Table, Columns: ix.Columns, Name: ix.Name})
		}
		out[i] = cc
	}
	return out
}

// RestoreConfigs rebuilds the candidate pool from its serialized form.
func RestoreConfigs(cs []ConfigState) []*engine.Config {
	out := make([]*engine.Config, len(cs))
	for i, c := range cs {
		cfg := &engine.Config{ID: c.ID, Params: map[string]string{}}
		for k, v := range c.Params {
			cfg.Params[k] = v
		}
		for _, ix := range c.Indexes {
			cfg.Indexes = append(cfg.Indexes, engine.IndexDef{Table: ix.Table, Columns: ix.Columns, Name: ix.Name})
		}
		out[i] = cfg
	}
	return out
}

// CaptureRound serializes the selector's round state (nil in, nil out).
func CaptureRound(rs *selector.RoundState) *RoundCheckpoint {
	if rs == nil {
		return nil
	}
	rc := &RoundCheckpoint{
		Round: rs.Round, Timeout: rs.Timeout,
		BestID: rs.BestID, BestTime: rs.BestTime,
		Metas: map[string]MetaState{},
		Race:  rs.Race.Clone(),
	}
	for id, m := range rs.Metas {
		if m == nil {
			continue
		}
		ms := MetaState{Time: m.Time, IsComplete: m.IsComplete, IndexTime: m.IndexTime, Aborts: m.Aborts}
		for q, done := range m.Completed {
			if done {
				ms.Completed = append(ms.Completed, q)
			}
		}
		sort.Strings(ms.Completed)
		if len(m.QueryTimes) > 0 {
			ms.QueryTimes = make(map[string]float64, len(m.QueryTimes))
			for q, secs := range m.QueryTimes {
				ms.QueryTimes[q] = secs
			}
		}
		rc.Metas[id] = ms
	}
	return rc
}

// Restore rebuilds the selector round state from its serialized form.
func (rc *RoundCheckpoint) Restore() *selector.RoundState {
	if rc == nil {
		return nil
	}
	rs := &selector.RoundState{
		Round: rc.Round, Timeout: rc.Timeout,
		BestID: rc.BestID, BestTime: rc.BestTime,
		Metas: map[string]*evaluator.ConfigMeta{},
		Race:  rc.Race.Clone(),
	}
	for id, ms := range rc.Metas {
		m := evaluator.NewConfigMeta()
		m.Time = ms.Time
		m.IsComplete = ms.IsComplete
		m.IndexTime = ms.IndexTime
		m.Aborts = ms.Aborts
		for _, q := range ms.Completed {
			m.Completed[q] = true
		}
		if len(ms.QueryTimes) > 0 {
			m.QueryTimes = make(map[string]float64, len(ms.QueryTimes))
			for q, secs := range ms.QueryTimes {
				m.QueryTimes[q] = secs
			}
		}
		rs.Metas[id] = m
	}
	return rs
}

// WorkloadDigest fingerprints a workload: its name plus every query's name
// and SQL text, in order.
func WorkloadDigest(name string, qs []*engine.Query) string {
	h := sha256.New()
	fmt.Fprintf(h, "workload %s\n", name)
	for _, q := range qs {
		fmt.Fprintf(h, "query %s\n%s\n", q.Name, q.SQL)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// Fingerprint is the set of option fields that determine a run's selection
// behavior. Two runs with equal fingerprints (and equal workload digests)
// make byte-identical selection decisions, so a checkpoint from one may
// resume in the other. Parallelism is deliberately absent: selection is
// parallelism-invariant, so a run checkpointed at Parallelism 1 may resume
// at 4 and vice versa.
type Fingerprint struct {
	Flavor         string
	Seed           int64
	Samples        int
	Temperature    float64
	TokenBudget    int
	InitialTimeout float64
	Alpha          float64
	Adaptive       bool
	UseScheduler   bool
	LazyIndexes    bool
	SeedDefault    bool
	// Racing and its tuning knobs join the digest only when racing is on, so
	// every pre-racing (and non-racing) digest is unchanged: old checkpoints
	// keep resuming under new builds.
	Racing     bool
	RaceStart  float64
	RaceGrowth float64
	RaceFinal  int
	RaceNoElim bool
}

// Digest condenses the fingerprint.
func (f Fingerprint) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s seed=%d k=%d temp=%g budget=%d t0=%g alpha=%g adapt=%t sched=%t lazy=%t seeddef=%t",
		f.Flavor, f.Seed, f.Samples, f.Temperature, f.TokenBudget,
		f.InitialTimeout, f.Alpha, f.Adaptive, f.UseScheduler, f.LazyIndexes, f.SeedDefault)
	if f.Racing {
		fmt.Fprintf(h, " racing start=%g growth=%g final=%d noelim=%t",
			f.RaceStart, f.RaceGrowth, f.RaceFinal, f.RaceNoElim)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
