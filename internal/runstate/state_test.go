package runstate

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/race"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/engine"
)

// sampleState builds a representative checkpoint state with every field
// populated, used by the round-trip and golden tests.
func sampleState() *State {
	rs := &selector.RoundState{
		Round: 2, Timeout: 100, BestID: "llm-1", BestTime: 10.136116263704787,
		Metas: map[string]*evaluator.ConfigMeta{},
	}
	m := evaluator.NewConfigMeta()
	m.Time = 42.5
	m.IsComplete = true
	m.IndexTime = 3.25
	m.Aborts = 1
	m.Completed["q1"] = true
	m.Completed["q9"] = true
	m.Completed["q3"] = false // not completed: must not serialize
	m.QueryTimes = map[string]float64{"q1": 1.5, "q9": 41.0}
	rs.Metas["llm-1"] = m
	rs.Metas["default"] = evaluator.NewConfigMeta()
	rs.Race = &race.State{Rung: 1, Survivors: []string{"llm-1", "default"}}

	return &State{
		RunID:             "golden-run",
		WorkloadDigest:    "wd-1234",
		OptionsDigest:     "od-5678",
		StartClockSeconds: 0,
		ClockSeconds:      123.45678901234567,
		PromptTokens:      2048,
		SeedDefault:       true,
		Candidates: CaptureConfigs([]*engine.Config{
			{ID: "llm-1", Params: map[string]string{"work_mem": "512MB", "shared_buffers": "4GB"},
				Indexes: []engine.IndexDef{{Table: "lineitem", Columns: "l_orderkey"}}},
			{ID: "llm-2", Params: map[string]string{"work_mem": "1GB"}},
		}),
		Warnings:       []string{"sample 3 dropped: unparseable response"},
		DroppedSamples: 1,
		Round:          CaptureRound(rs),
		Injector:       &InjectorState{Seed: 7, EngineDraws: 19, Counts: map[string]int{"query_abort": 2}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != st.RunID || got.ClockSeconds != st.ClockSeconds ||
		got.PromptTokens != st.PromptTokens || got.DroppedSamples != st.DroppedSamples {
		t.Errorf("scalar fields did not round-trip: %+v", got)
	}
	if got.Round == nil || got.Round.BestID != "llm-1" || got.Round.BestTime != st.Round.BestTime {
		t.Errorf("round best did not round-trip: %+v", got.Round)
	}
	if got.Injector == nil || got.Injector.EngineDraws != 19 {
		t.Errorf("injector did not round-trip: %+v", got.Injector)
	}

	// Encoding is deterministic: same state, same bytes.
	again, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("re-encoding a decoded state produced different bytes")
	}
}

func TestRoundStateRoundTrip(t *testing.T) {
	st := sampleState()
	rs := st.Round.Restore()
	if rs.Round != 2 || rs.Timeout != 100 || rs.BestID != "llm-1" {
		t.Fatalf("restored round: %+v", rs)
	}
	m := rs.Metas["llm-1"]
	if m == nil || m.Time != 42.5 || !m.IsComplete || m.IndexTime != 3.25 || m.Aborts != 1 {
		t.Fatalf("restored meta: %+v", m)
	}
	if !m.Completed["q1"] || !m.Completed["q9"] {
		t.Errorf("completed set lost: %v", m.Completed)
	}
	if m.Completed["q3"] {
		t.Error("not-completed query serialized as completed")
	}
	if m.QueryTimes["q1"] != 1.5 || m.QueryTimes["q9"] != 41.0 {
		t.Errorf("query times lost: %v", m.QueryTimes)
	}
	if rs.Race == nil || rs.Race.Rung != 1 || len(rs.Race.Survivors) != 2 {
		t.Errorf("race state lost: %+v", rs.Race)
	}
	// Capture(Restore(x)) is a fixed point.
	got := CaptureRound(rs)
	if got.Metas["llm-1"].Completed[0] != "q1" ||
		got.Metas["llm-1"].Completed[1] != "q9" {
		t.Errorf("re-captured completed list: %v", got.Metas["llm-1"].Completed)
	}
	if got.Race == nil || got.Race.Survivors[0] != "llm-1" {
		t.Errorf("re-captured race state: %+v", got.Race)
	}
	// The capture deep-copies the race state — mutating the live selector
	// state must not reach into an already-saved checkpoint.
	rs.Race.Survivors[0] = "mutated"
	if got.Race.Survivors[0] != "llm-1" {
		t.Error("captured race state aliases the live one")
	}
}

// TestGoldenCheckpoint pins the on-disk format: a schema change that alters
// the encoding of an existing state must bump Version and regenerate this
// fixture (set UPDATE_GOLDEN=1).
func TestGoldenCheckpoint(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "checkpoint_v2.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if string(data) != string(want) {
		t.Error("checkpoint encoding changed without a Version bump; " +
			"if intentional, bump Version and regenerate with UPDATE_GOLDEN=1")
	}
	if _, err := Decode(want); err != nil {
		t.Errorf("golden fixture does not decode: %v", err)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	data, _ := Encode(sampleState())
	bumped := strings.Replace(string(data), "lambdatune-checkpoint v2 ", "lambdatune-checkpoint v9 ", 1)
	if _, err := Decode([]byte(bumped)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("header version bump: got %v, want ErrCheckpointVersion", err)
	}
	// A payload whose version is unknown is also rejected (the header CRC
	// covers the payload, so this requires reframing).
	st := sampleState()
	raw, _ := Encode(st)
	tampered := strings.Replace(string(raw), `"version": 2`, `"version": 3`, 1)
	if _, err := Decode(reframe(t, tampered)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("payload version mismatch: got %v, want ErrCheckpointVersion", err)
	}
	// A supported payload version that disagrees with the header is corruption,
	// not a version skew.
	disagree := strings.Replace(string(raw), `"version": 2`, `"version": 1`, 1)
	if _, err := Decode(reframe(t, disagree)); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("header/payload disagreement: got %v, want ErrCheckpointCorrupt", err)
	}
}

// TestDecodeV1Checkpoint: checkpoints written by v1 builds (pre-racing) must
// keep decoding — the v1 fixture is frozen for exactly this test.
func TestDecodeV1Checkpoint(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Decode(data)
	if err != nil {
		t.Fatalf("v1 checkpoint no longer decodes: %v", err)
	}
	if st.Version != 1 || st.RunID != "golden-run" {
		t.Fatalf("v1 decode lost fields: version=%d run=%s", st.Version, st.RunID)
	}
	if st.Round == nil || st.Round.Race != nil {
		t.Fatalf("v1 round state should restore with no racing bookkeeping: %+v", st.Round)
	}
	if rs := st.Round.Restore(); rs.Race != nil || rs.Metas["llm-1"].QueryTimes != nil {
		t.Fatal("v1 restore invented v2 fields")
	}
}

// reframe recomputes the header for a tampered payload so only the payload
// check under test fires, not the CRC.
func reframe(t *testing.T, data string) []byte {
	t.Helper()
	nl := strings.IndexByte(data, '\n')
	payload := []byte(data[nl+1:])
	header := fmt.Sprintf("%s v%d crc32=%08x bytes=%d\n",
		magic, Version, crc32.ChecksumIEEE(payload), len(payload))
	return append([]byte(header), payload...)
}

func TestDecodeCorruption(t *testing.T) {
	data, _ := Encode(sampleState())
	cases := map[string][]byte{
		"empty":            {},
		"no header":        []byte("junk"),
		"truncated":        data[:len(data)/2],
		"extra bytes":      append(append([]byte{}, data...), "tail"...),
		"flipped bit":      flip(data, len(data)-10),
		"garbage header":   []byte("lambdatune-checkpoint v1 zzz\n{}"),
		"not a checkpoint": []byte("PNG\x0d\x0a\x1a\x0a....."),
	}
	for name, c := range cases {
		if _, err := Decode(c); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: got %v, want ErrCheckpointCorrupt", name, err)
		}
	}
}

func flip(data []byte, i int) []byte {
	cp := append([]byte{}, data...)
	cp[i] ^= 0x40
	return cp
}

func TestValidate(t *testing.T) {
	st := sampleState()
	if err := st.Validate("wd-1234", "od-5678"); err != nil {
		t.Errorf("matching digests: %v", err)
	}
	if err := st.Validate("other", "od-5678"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("workload mismatch: %v", err)
	}
	if err := st.Validate("wd-1234", "other"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("options mismatch: %v", err)
	}
}

func TestWorkloadDigest(t *testing.T) {
	qs := []*engine.Query{{Name: "q1", SQL: "SELECT 1"}, {Name: "q2", SQL: "SELECT 2"}}
	d1 := WorkloadDigest("", qs)
	if d1 != WorkloadDigest("", qs) {
		t.Error("digest not deterministic")
	}
	if d1 == WorkloadDigest("", qs[:1]) {
		t.Error("digest ignores query count")
	}
	if d1 == WorkloadDigest("", []*engine.Query{{Name: "q1", SQL: "SELECT 1"}, {Name: "q2", SQL: "SELECT 3"}}) {
		t.Error("digest ignores SQL text")
	}
	if d1 == WorkloadDigest("named", qs) {
		t.Error("digest ignores workload name")
	}
}

func TestFingerprintDigest(t *testing.T) {
	base := Fingerprint{Flavor: "postgres", Seed: 1, Samples: 5, Temperature: 0.7,
		InitialTimeout: 10, Alpha: 10, Adaptive: true, UseScheduler: true, LazyIndexes: true, SeedDefault: true}
	if base.Digest() != base.Digest() {
		t.Error("fingerprint not deterministic")
	}
	variants := []Fingerprint{base, base, base, base, base}
	variants[1].Seed = 2
	variants[2].Alpha = 5
	variants[3].Flavor = "mysql"
	variants[4].Racing = true
	variants[4].RaceStart = 0.25
	variants[4].RaceGrowth = 2
	variants[4].RaceFinal = 2
	seen := map[string]bool{}
	for _, v := range variants[1:] {
		d := v.Digest()
		if d == base.Digest() || seen[d] {
			t.Errorf("fingerprint collision for %+v", v)
		}
		seen[d] = true
	}
	// Racing knobs must not perturb non-racing digests: a pre-racing build's
	// checkpoints keep validating under this build.
	withKnobs := base
	withKnobs.RaceStart = 0.5
	withKnobs.RaceFinal = 3
	if withKnobs.Digest() != base.Digest() {
		t.Error("racing knobs changed a non-racing digest")
	}
}

func FuzzDecode(f *testing.F) {
	data, _ := Encode(sampleState())
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte("lambdatune-checkpoint v1 crc32=00000000 bytes=2\n{}"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Decode must never panic and must only return nil errors for frames
		// that verify end to end.
		st, err := Decode(b)
		if err == nil && st == nil {
			t.Fatal("nil state with nil error")
		}
		if err == nil {
			// Anything that decodes must re-encode.
			if _, err := Encode(st); err != nil {
				t.Fatalf("decoded state does not re-encode: %v", err)
			}
		}
	})
}
