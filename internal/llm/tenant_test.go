package llm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedClient fails while failing is true, else succeeds; counts calls
// that reach the transport.
type scriptedClient struct {
	failing atomic.Bool
	calls   atomic.Int64
}

func (c *scriptedClient) Complete(context.Context, string) (string, error) {
	c.calls.Add(1)
	if c.failing.Load() {
		return "", errors.New("transport down")
	}
	return "ok", nil
}

func (c *scriptedClient) Name() string { return "scripted" }

// TestTenantGatewayDisabledPassthrough asserts zero options return the inner
// client untouched.
func TestTenantGatewayDisabledPassthrough(t *testing.T) {
	inner := &scriptedClient{}
	g := NewTenantGateway(TenantGatewayOptions{})
	if g.Enabled() {
		t.Fatal("zero-options gateway reports enabled")
	}
	if got := g.Client("a", inner); got != Client(inner) {
		t.Fatal("disabled gateway wrapped the inner client")
	}
}

// TestTenantGatewayBreakerTripAndCooldown walks the breaker through trip,
// open rejection, and half-open recovery.
func TestTenantGatewayBreakerTripAndCooldown(t *testing.T) {
	inner := &scriptedClient{}
	inner.failing.Store(true)
	g := NewTenantGateway(TenantGatewayOptions{BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond})
	c := g.Client("acme", inner)
	ctx := context.Background()

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Complete(ctx, "p"); err == nil {
			t.Fatal("expected transport failure")
		}
	}
	if !g.BreakerOpen("acme") {
		t.Fatal("breaker should be open after threshold failures")
	}
	if g.Trips("acme") != 1 {
		t.Fatalf("trips = %d, want 1", g.Trips("acme"))
	}

	// Open breaker rejects without touching the transport, non-retryably.
	before := inner.calls.Load()
	_, err := c.Complete(ctx, "p")
	var reject *TenantBreakerError
	if !errors.As(err, &reject) {
		t.Fatalf("open breaker returned %v, want TenantBreakerError", err)
	}
	if reject.Retryable() {
		t.Fatal("breaker rejection must be non-retryable")
	}
	if inner.calls.Load() != before {
		t.Fatal("open breaker let a call reach the transport")
	}

	// After cooldown the half-open probe goes through and closes the breaker.
	inner.failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	if out, err := c.Complete(ctx, "p"); err != nil || out != "ok" {
		t.Fatalf("half-open probe: %q, %v", out, err)
	}
	if g.BreakerOpen("acme") {
		t.Fatal("breaker still open after successful probe")
	}
}

// TestTenantGatewayIsolation asserts one tenant's tripped breaker leaves
// another tenant's calls — against the very same shared transport — intact.
func TestTenantGatewayIsolation(t *testing.T) {
	inner := &scriptedClient{}
	g := NewTenantGateway(TenantGatewayOptions{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	bad := g.Client("bad", inner)
	good := g.Client("good", inner)
	ctx := context.Background()

	inner.failing.Store(true)
	if _, err := bad.Complete(ctx, "p"); err == nil {
		t.Fatal("expected failure")
	}
	if !g.BreakerOpen("bad") {
		t.Fatal("bad tenant's breaker should be open")
	}

	inner.failing.Store(false)
	if out, err := good.Complete(ctx, "p"); err != nil || out != "ok" {
		t.Fatalf("good tenant blocked by bad tenant's breaker: %q, %v", out, err)
	}
	if g.BreakerOpen("good") || g.Trips("good") != 0 {
		t.Fatal("breaker state leaked across tenants")
	}
}

// TestTenantGatewayCancellationNeutral asserts a context-canceled call moves
// the breaker neither toward tripping nor toward recovery.
func TestTenantGatewayCancellationNeutral(t *testing.T) {
	inner := &scriptedClient{}
	inner.failing.Store(true)
	g := NewTenantGateway(TenantGatewayOptions{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	c := g.Client("acme", inner)

	// One real failure: streak 1.
	if _, err := c.Complete(context.Background(), "p"); err == nil {
		t.Fatal("expected failure")
	}
	// A canceled call must not become failure number 2.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Complete(ctx, "p"); err == nil {
		t.Fatal("expected cancellation error")
	}
	if g.BreakerOpen("acme") {
		t.Fatal("cancellation advanced the failure streak")
	}
}

// TestTenantGatewayMaxInFlight asserts the per-tenant bound blocks the
// excess call until a slot frees.
func TestTenantGatewayMaxInFlight(t *testing.T) {
	gateCh := make(chan struct{})
	slow := &gatedClient{gate: gateCh}
	g := NewTenantGateway(TenantGatewayOptions{MaxInFlight: 1})
	c := g.Client("acme", slow)

	first := make(chan struct{})
	go func() {
		defer close(first)
		c.Complete(context.Background(), "p")
	}()
	// Wait until the first call holds the slot.
	for slow.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Complete(ctx, "p"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second call: %v, want deadline exceeded while slot held", err)
	}
	close(gateCh)
	<-first
	if _, err := c.Complete(context.Background(), "p"); err != nil {
		t.Fatalf("call after slot freed: %v", err)
	}
}

// gatedClient blocks Complete until its gate closes.
type gatedClient struct {
	gate    chan struct{}
	started atomic.Int64
}

func (c *gatedClient) Complete(ctx context.Context, _ string) (string, error) {
	c.started.Add(1)
	select {
	case <-c.gate:
		return "ok", nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

func (c *gatedClient) Name() string { return "gated" }
