package llm

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// The paper notes that λ-Tune "could easily be augmented via retrieval
// augmented generation, enabling the LLM to parse additional information
// from the Web". This file implements that extension: a retriever over a
// document corpus plus a Client decorator that prepends the most relevant
// documents to every prompt.

// Document is one retrievable text, e.g. a manual section or a blog post.
type Document struct {
	Title string
	Text  string
}

// Retriever ranks documents against a query by token overlap (a TF-style
// score — no external embedding model is available offline, and keyword
// retrieval is the classic RAG baseline).
type Retriever struct {
	docs []Document
	// tokenized holds the lower-cased token multiset of each document.
	tokenized []map[string]int
}

// NewRetriever indexes a corpus.
func NewRetriever(docs []Document) *Retriever {
	r := &Retriever{docs: docs, tokenized: make([]map[string]int, len(docs))}
	for i, d := range docs {
		r.tokenized[i] = tokenize(d.Title + " " + d.Text)
	}
	return r
}

var wordRe = regexp.MustCompile(`[a-zA-Z_][\w]*`)

func tokenize(s string) map[string]int {
	out := map[string]int{}
	for _, w := range wordRe.FindAllString(strings.ToLower(s), -1) {
		if len(w) > 2 { // drop stop-ish short tokens
			out[w]++
		}
	}
	return out
}

// Retrieve returns the k documents with the highest overlap score against
// the query, best first. Documents with zero overlap are never returned.
func (r *Retriever) Retrieve(query string, k int) []Document {
	q := tokenize(query)
	type scored struct {
		idx   int
		score float64
	}
	var hits []scored
	for i, toks := range r.tokenized {
		var s float64
		for w := range q {
			if c := toks[w]; c > 0 {
				s += 1 + 0.1*float64(c)
			}
		}
		if s > 0 {
			hits = append(hits, scored{i, s})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].score != hits[b].score {
			return hits[a].score > hits[b].score
		}
		return hits[a].idx < hits[b].idx
	})
	if k > len(hits) {
		k = len(hits)
	}
	out := make([]Document, k)
	for i := 0; i < k; i++ {
		out[i] = r.docs[hits[i].idx]
	}
	return out
}

// RAGClient decorates a Client with retrieval: the top-K documents matching
// the prompt are prepended under a "Relevant documentation" header, giving
// the model grounding beyond its pre-trained weights.
type RAGClient struct {
	Inner     Client
	Retriever *Retriever
	// K is the number of documents to attach (default 3).
	K int
}

// NewRAGClient builds the decorator.
func NewRAGClient(inner Client, docs []Document) *RAGClient {
	return &RAGClient{Inner: inner, Retriever: NewRetriever(docs), K: 3}
}

// Name implements Client.
func (c *RAGClient) Name() string { return c.Inner.Name() + "+rag" }

// Complete implements Client.
func (c *RAGClient) Complete(ctx context.Context, prompt string) (string, error) {
	return c.Inner.Complete(ctx, c.augment(prompt))
}

// CompleteT implements TemperatureCompleter, forwarding the temperature to
// the inner client when it supports one.
func (c *RAGClient) CompleteT(ctx context.Context, prompt string, temperature float64) (string, error) {
	return Complete(ctx, c.Inner, c.augment(prompt), temperature)
}

// augment prepends the top-K retrieved documents to the prompt.
func (c *RAGClient) augment(prompt string) string {
	k := c.K
	if k <= 0 {
		k = 3
	}
	docs := c.Retriever.Retrieve(prompt, k)
	if len(docs) == 0 {
		return prompt
	}
	var b strings.Builder
	b.WriteString("Relevant documentation:\n")
	for _, d := range docs {
		fmt.Fprintf(&b, "[%s] %s\n", d.Title, d.Text)
	}
	b.WriteString("\n")
	b.WriteString(prompt)
	return b.String()
}

// DefaultCorpus bundles excerpts in the spirit of the documents the paper's
// systems mine (the PostgreSQL tuning wiki, the MySQL reference manual, and
// well-known practitioner posts).
func DefaultCorpus() []Document {
	return []Document{
		{
			Title: "PostgreSQL wiki: Tuning Your PostgreSQL Server",
			Text: "A reasonable starting value for shared_buffers is 25% of the memory " +
				"in your system. For analytical PostgreSQL workloads, set effective_cache_size " +
				"to 50-75% of RAM so the planner expects cached indexes.",
		},
		{
			Title: "PostgreSQL on SSD storage",
			Text: "On solid state drives, set random_page_cost to 1.1 and " +
				"effective_io_concurrency to 200 so PostgreSQL issues concurrent reads.",
		},
		{
			Title: "Parallel query in PostgreSQL",
			Text: "Data warehouses should raise max_parallel_workers_per_gather to the " +
				"core count; each gather node can then use all available PostgreSQL workers.",
		},
		{
			Title: "MySQL reference manual: InnoDB buffer pool",
			Text: "On a dedicated MySQL server, innodb_buffer_pool_size is commonly set " +
				"to 70-80% of physical memory; larger pools reduce disk I/O.",
		},
		{
			Title: "MySQL sort and join buffers",
			Text: "Analytic MySQL queries with large in-memory sorts benefit from raising " +
				"sort_buffer_size and join_buffer_size well beyond their defaults.",
		},
		{
			Title: "Index design for star joins",
			Text: "Create indexes on the join columns of the largest fact tables first; " +
				"foreign key columns referenced by many queries are the best candidates.",
		},
	}
}
