package llm

import (
	"context"
	"strings"
	"testing"

	"lambdatune/internal/engine"
)

func TestCountTokens(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"word", 1},
		{"twelveletter", 3},
		{"a b c", 3},
		{"a.b", 3}, // a + "." + b
		{"  spaced   out  ", 3},
	}
	for _, c := range cases {
		if got := CountTokens(c.in); got != c.want {
			t.Errorf("CountTokens(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCountTokensMonotone(t *testing.T) {
	// Adding text never reduces the token count.
	base := "SELECT a FROM t WHERE x = 1"
	if CountTokens(base) >= CountTokens(base+" AND y = 2") {
		t.Error("token count not monotone")
	}
}

const testPrompt = `Recommend some configuration parameters for PostgreSQL to
optimize the system's performance.
Each row in the following list has the following format:
{a join key A}:{all the joins with A in the workload}
lineitem.l_orderkey: orders.o_orderkey
lineitem.l_partkey: part.p_partkey, partsupp.ps_partkey
orders.o_custkey: customer.c_custkey
The workload runs on a system with the following specs:
memory: 61 GB
cores: 8
`

func TestSimClientDeterministicAtZeroTemperature(t *testing.T) {
	c1 := NewSimClient(1)
	c2 := NewSimClient(1)
	r1, err := c1.CompleteT(context.Background(), testPrompt, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := c2.CompleteT(context.Background(), testPrompt, 0)
	if r1 != r2 {
		t.Error("same seed, same prompt, temp 0: different outputs")
	}
}

func TestSimClientParsesHardware(t *testing.T) {
	c := NewSimClient(1)
	out, err := c.CompleteT(context.Background(), testPrompt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 25% of 61 GB = 15 GB.
	if !strings.Contains(out, "shared_buffers = '15GB'") {
		t.Errorf("shared_buffers not 25%% of RAM:\n%s", out)
	}
	if !strings.Contains(out, "effective_cache_size = '45GB'") {
		t.Errorf("effective_cache_size not 75%% of RAM:\n%s", out)
	}
}

func TestSimClientRecommendsIndexesFromSnippets(t *testing.T) {
	c := NewSimClient(1)
	out, _ := c.CompleteT(context.Background(), testPrompt, 0)
	for _, want := range []string{
		"CREATE INDEX idx_lineitem_l_orderkey ON lineitem (l_orderkey);",
		"CREATE INDEX idx_orders_o_custkey ON orders (o_custkey);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSimClientOutputParseable(t *testing.T) {
	c := NewSimClient(42)
	for i := 0; i < 20; i++ {
		out, err := c.CompleteT(context.Background(), testPrompt, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := engine.ParseScript(engine.Postgres, "t", out); err != nil {
			t.Fatalf("unparseable LLM output: %v\n%s", err, out)
		}
	}
}

func TestSimClientMySQLDialect(t *testing.T) {
	prompt := strings.Replace(testPrompt, "PostgreSQL", "MySQL", 1)
	c := NewSimClient(1)
	out, _ := c.CompleteT(context.Background(), prompt, 0)
	if !strings.Contains(out, "SET GLOBAL innodb_buffer_pool_size") {
		t.Errorf("MySQL dialect not used:\n%s", out)
	}
	if strings.Contains(out, "ALTER SYSTEM") {
		t.Errorf("Postgres syntax in MySQL response:\n%s", out)
	}
	if _, _, err := engine.ParseScript(engine.MySQL, "t", out); err != nil {
		t.Fatalf("unparseable: %v", err)
	}
}

func TestSimClientFewerSnippetsFewerIndexes(t *testing.T) {
	small := `Recommend configuration parameters for PostgreSQL.
Each row in the following list has the following format:
{a join key A}:{all the joins with A in the workload}
lineitem.l_orderkey: orders.o_orderkey
memory: 61 GB
cores: 8
`
	c := NewSimClient(1)
	outSmall, _ := c.CompleteT(context.Background(), small, 0)
	c2 := NewSimClient(1)
	outBig, _ := c2.CompleteT(context.Background(), testPrompt, 0)
	if strings.Count(outSmall, "CREATE INDEX") >= strings.Count(outBig, "CREATE INDEX") {
		t.Errorf("snippet count does not influence index count:\nsmall:\n%s\nbig:\n%s", outSmall, outBig)
	}
}

func TestSimClientBadConfigsAppear(t *testing.T) {
	c := NewSimClient(7)
	c.BadConfigRate = 0.5
	bad := 0
	for i := 0; i < 40; i++ {
		out, _ := c.CompleteT(context.Background(), testPrompt, 0.7)
		if !strings.Contains(out, "CREATE INDEX") {
			bad++
		}
	}
	if bad == 0 {
		t.Error("no bad configurations sampled at high temperature")
	}
	if bad == 40 {
		t.Error("all configurations bad")
	}
}

func TestSimClientNoBadConfigsAtZeroTemperature(t *testing.T) {
	c := NewSimClient(7)
	c.BadConfigRate = 1.0
	for i := 0; i < 10; i++ {
		out, _ := c.CompleteT(context.Background(), testPrompt, 0)
		if !strings.Contains(out, "CREATE INDEX") {
			t.Fatal("bad config at temperature 0")
		}
	}
}

func TestSimClientRawSQLFallback(t *testing.T) {
	prompt := `Recommend configuration parameters for PostgreSQL.
SELECT COUNT(*) FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey
memory: 61 GB
cores: 8
`
	c := NewSimClient(1)
	out, _ := c.CompleteT(context.Background(), prompt, 0)
	if !strings.Contains(out, "ON lineitem (l_orderkey)") {
		t.Errorf("alias resolution from raw SQL failed:\n%s", out)
	}
}

func TestSimClientEmptyPrompt(t *testing.T) {
	c := NewSimClient(1)
	if _, err := c.CompleteT(context.Background(), "", 0.5); err == nil {
		t.Error("empty prompt accepted")
	}
}

func TestSimClientMissingHardwareConservative(t *testing.T) {
	prompt := `Recommend configuration parameters for PostgreSQL.
lineitem.l_orderkey: orders.o_orderkey
`
	c := NewSimClient(1)
	out, _ := c.CompleteT(context.Background(), prompt, 0)
	if strings.Contains(out, "15GB") {
		t.Errorf("hardware guessed too aggressively without spec:\n%s", out)
	}
}
