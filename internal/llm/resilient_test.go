package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// flakyClient fails the first failures calls, then succeeds.
type flakyClient struct {
	failures int
	calls    int
	err      error
}

func (c *flakyClient) Name() string { return "flaky" }

func (c *flakyClient) Complete(ctx context.Context, prompt string) (string, error) {
	c.calls++
	if c.calls <= c.failures {
		if c.err != nil {
			return "", c.err
		}
		return "", fmt.Errorf("boom %d", c.calls)
	}
	return "ok", nil
}

// timedError carries a latency like faults.Error does.
type timedError struct{ lat float64 }

func (e *timedError) Error() string           { return "timed failure" }
func (e *timedError) LatencySeconds() float64 { return e.lat }

// fatalError opts out of retries.
type fatalError struct{}

func (e *fatalError) Error() string   { return "fatal" }
func (e *fatalError) Retryable() bool { return false }

func TestResilientPassThrough(t *testing.T) {
	clock := &localClock{}
	c := NewResilientClient(&flakyClient{}, ResilienceOptions{Clock: clock})
	out, err := c.CompleteT(context.Background(), "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	if clock.Now() != 0 {
		t.Fatalf("clean call advanced the clock by %v", clock.Now())
	}
	s := c.Stats()
	if s.Calls != 1 || s.Failures != 0 || s.Retries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestResilientRetriesAdvanceClock(t *testing.T) {
	clock := &localClock{}
	c := NewResilientClient(&flakyClient{failures: 2}, ResilienceOptions{
		Clock: clock, MaxRetries: 3, InitialBackoff: 1, BackoffFactor: 2,
	})
	c.opts.Jitter = 0 // exact backoff arithmetic
	out, err := c.CompleteT(context.Background(), "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	s := c.Stats()
	if s.Retries != 2 || s.Failures != 2 || s.Calls != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// Two backoff waits: 1s + 2s.
	if s.BackoffSeconds != 3 {
		t.Fatalf("BackoffSeconds = %v, want 3", s.BackoffSeconds)
	}
	if clock.Now() != 3 {
		t.Fatalf("clock = %v, want 3", clock.Now())
	}
}

func TestResilientJitterSeededDeterministic(t *testing.T) {
	run := func() float64 {
		clock := &localClock{}
		c := NewResilientClient(&flakyClient{failures: 3}, ResilienceOptions{
			Clock: clock, MaxRetries: 3, Seed: 5,
		})
		_, _ = c.CompleteT(context.Background(), "p", 0)
		return clock.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("jittered backoff not deterministic: %v vs %v", a, b)
	}
}

func TestResilientExhaustionReturnsError(t *testing.T) {
	inner := &flakyClient{failures: 100}
	c := NewResilientClient(inner, ResilienceOptions{MaxRetries: 2})
	_, err := c.CompleteT(context.Background(), "p", 0)
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3 (1 + 2 retries)", inner.calls)
	}
	if !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("error should count attempts: %v", err)
	}
}

func TestResilientRetriesDisabled(t *testing.T) {
	inner := &flakyClient{failures: 100}
	c := NewResilientClient(inner, ResilienceOptions{MaxRetries: -1})
	_, err := c.CompleteT(context.Background(), "p", 0)
	if err == nil {
		t.Fatal("want error")
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
}

func TestResilientChargesFailedCallLatency(t *testing.T) {
	clock := &localClock{}
	c := NewResilientClient(&flakyClient{failures: 1, err: &timedError{lat: 2}},
		ResilienceOptions{Clock: clock, MaxRetries: 1})
	c.opts.Jitter = 0
	if _, err := c.CompleteT(context.Background(), "p", 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.LatencySeconds != 2 {
		t.Fatalf("LatencySeconds = %v, want 2", s.LatencySeconds)
	}
	// 2s failed call + 1s backoff.
	if clock.Now() != 3 {
		t.Fatalf("clock = %v, want 3", clock.Now())
	}
}

func TestResilientCallTimeoutCapsLatency(t *testing.T) {
	clock := &localClock{}
	c := NewResilientClient(&flakyClient{failures: 100, err: &timedError{lat: 500}},
		ResilienceOptions{Clock: clock, MaxRetries: -1, CallTimeout: 60})
	_, err := c.CompleteT(context.Background(), "p", 0)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got: %v", err)
	}
	if got := c.Stats().LatencySeconds; got != 60 {
		t.Fatalf("LatencySeconds = %v, want capped 60", got)
	}
}

func TestResilientNonRetryableShortCircuits(t *testing.T) {
	inner := &flakyClient{failures: 100, err: &fatalError{}}
	c := NewResilientClient(inner, ResilienceOptions{MaxRetries: 5})
	_, err := c.CompleteT(context.Background(), "p", 0)
	if err == nil {
		t.Fatal("want error")
	}
	if inner.calls != 1 {
		t.Fatalf("non-retryable error retried: %d calls", inner.calls)
	}
}

func TestResilientBreakerTripsAndRecovers(t *testing.T) {
	clock := &localClock{}
	inner := &flakyClient{failures: 3}
	c := NewResilientClient(inner, ResilienceOptions{
		Clock: clock, MaxRetries: 5, BreakerThreshold: 3, BreakerCooldown: 120,
	})
	c.opts.Jitter = 0
	// 3 consecutive failures trip the breaker mid-call; the loop stops.
	out, err := c.CompleteT(context.Background(), "p", 0)
	if err == nil {
		t.Fatalf("breaker should have cut the call short, got %q", out)
	}
	s := c.Stats()
	if s.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", s.BreakerTrips)
	}
	// Next call: breaker open, no fallback → wait the cooldown out on the
	// virtual clock, then probe; inner now succeeds.
	before := clock.Now()
	out, err = c.CompleteT(context.Background(), "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("post-cooldown call = %q, %v", out, err)
	}
	if waited := c.Stats().BreakerWaitSeconds; waited <= 0 {
		t.Fatalf("BreakerWaitSeconds = %v, want > 0", waited)
	}
	if clock.Now() <= before {
		t.Fatal("cooldown wait did not advance the clock")
	}
}

func TestResilientFallbackOnExhaustion(t *testing.T) {
	fb := &flakyClient{}
	c := NewResilientClient(&flakyClient{failures: 100}, ResilienceOptions{
		MaxRetries: 1, Fallback: fb,
	})
	out, err := c.CompleteT(context.Background(), "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("fallback not used: %q, %v", out, err)
	}
	if c.Stats().FallbackCalls != 1 {
		t.Fatalf("FallbackCalls = %d, want 1", c.Stats().FallbackCalls)
	}
}

func TestResilientFallbackWhileBreakerOpen(t *testing.T) {
	clock := &localClock{}
	fb := &flakyClient{}
	c := NewResilientClient(&flakyClient{failures: 100}, ResilienceOptions{
		Clock: clock, MaxRetries: 0, BreakerThreshold: 1, Fallback: fb,
	})
	// Trip the breaker (first call fails once, threshold 1), served by fallback.
	if _, err := c.CompleteT(context.Background(), "p", 0); err != nil {
		t.Fatal(err)
	}
	// Breaker open now: straight to fallback, no inner attempt, no wait.
	before := clock.Now()
	out, err := c.CompleteT(context.Background(), "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("open-breaker call = %q, %v", out, err)
	}
	if clock.Now() != before {
		t.Fatal("fallback call should not wait out the cooldown")
	}
	if c.Stats().FallbackCalls != 2 {
		t.Fatalf("FallbackCalls = %d, want 2", c.Stats().FallbackCalls)
	}
}

func TestWithInterceptorBeforeAndAfter(t *testing.T) {
	ic := &recordingInterceptor{}
	c := WithInterceptor(&flakyClient{}, ic)
	out, err := Complete(context.Background(), c, "prompt", 0)
	if err != nil || out != "ok!" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	if ic.before != 1 || ic.after != 1 {
		t.Fatalf("interceptor calls = %d/%d", ic.before, ic.after)
	}
	ic.fail = true
	if _, err := Complete(context.Background(), c, "prompt", 0); err == nil {
		t.Fatal("BeforeComplete error should fail the call")
	}
}

type recordingInterceptor struct {
	before, after int
	fail          bool
}

func (r *recordingInterceptor) BeforeComplete(prompt string) error {
	r.before++
	if r.fail {
		return errors.New("injected")
	}
	return nil
}

func (r *recordingInterceptor) AfterComplete(response string) (string, error) {
	r.after++
	return response + "!", nil
}

func TestResilienceOptionsDefaults(t *testing.T) {
	o := ResilienceOptions{}.withDefaults()
	d := DefaultResilienceOptions()
	if o.MaxRetries != d.MaxRetries || o.CallTimeout != d.CallTimeout ||
		o.BreakerThreshold != d.BreakerThreshold || o.BreakerCooldown != d.BreakerCooldown {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if neg := (ResilienceOptions{MaxRetries: -1}).withDefaults(); neg.MaxRetries != 0 {
		t.Fatalf("negative MaxRetries should disable retries, got %d", neg.MaxRetries)
	}
}
