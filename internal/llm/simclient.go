package llm

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// SimClient is the deterministic GPT-4 stand-in. It parses the λ-Tune prompt
// (DBMS name, hardware spec, compressed workload or raw SQL) and emits a
// complete configuration script. Randomization is driven by an explicit
// seed, so experiment runs are reproducible.
type SimClient struct {
	rng *rand.Rand
	// BadConfigRate is the probability (scaled by temperature) of emitting a
	// deliberately poor configuration, modeling the LLM outliers of §6.3.
	// The default of 0.25 yields roughly the paper's 2-3 outliers in 15
	// samples at temperature ~0.7.
	BadConfigRate float64
	// Intercept, when set, is the fault-injection hook: it can fail a call
	// before the model runs (transient errors, rate limits) and damage the
	// produced script afterwards (truncation, garbage). It consumes no
	// SimClient rng, so injecting faults never perturbs the configurations
	// the model would otherwise emit.
	Intercept CompleteInterceptor
}

// NewSimClient creates a simulator with the given seed.
func NewSimClient(seed int64) *SimClient {
	return &SimClient{rng: rand.New(rand.NewSource(seed)), BadConfigRate: 0.25}
}

// Name implements Client.
func (c *SimClient) Name() string { return "sim-gpt4" }

// promptFacts is what the simulator understood from the prompt.
type promptFacts struct {
	mysql    bool
	memoryGB float64
	cores    int
	hasHW    bool
	// joinCols maps "table.column" → weight (mention count across
	// snippet lines, LHS counted heavier, earlier lines heavier).
	joinCols map[string]float64
	// colOrder records first appearance per column, for rename-invariant
	// tie-breaking (the model keys on prompt position, not on names).
	colOrder map[string]int
	// colSequence lists columns in prompt order (snippet lines only):
	// λ-Tune orders its compressed representation by join cost, so reading
	// columns off in order is reading them in decreasing importance.
	colSequence []string
	// fromSnippets reports whether the workload came from a compressed
	// snippet list (true) or raw SQL (false).
	fromSnippets bool
}

var (
	memRe     = regexp.MustCompile(`(?i)memory:\s*([0-9.]+)\s*(GB|MB|TB)?`)
	coresRe   = regexp.MustCompile(`(?i)cores:\s*([0-9]+)`)
	snippetRe = regexp.MustCompile(`^([A-Za-z_][\w]*\.[\w]+)\s*:\s*(.+)$`)
	eqPairRe  = regexp.MustCompile(`([A-Za-z_][\w]*)\.([\w]+)\s*=\s*([A-Za-z_][\w]*)\.([\w]+)`)
	fromRe    = regexp.MustCompile(`(?is)FROM\s+(.+?)(?:WHERE|GROUP|ORDER|$)`)
)

// factsCache memoizes parsePrompt per prompt text. Parsing is a pure
// function of the prompt, the result is read-only after construction, and a
// daemon re-submits the same few prompts thousands of times — without the
// cache the regexp passes were among the hottest per-job constant costs. The
// bound guards against a pathological stream of unique prompts; on overflow
// the whole map is dropped (entries are cheap to rebuild).
var factsCache = struct {
	sync.RWMutex
	m map[string]promptFacts
}{m: make(map[string]promptFacts, 16)}

const factsCacheMax = 128

// parsePrompt extracts the facts the knowledge model conditions on, serving
// repeat prompts from the shared parse cache.
func (c *SimClient) parsePrompt(prompt string) promptFacts {
	factsCache.RLock()
	f, ok := factsCache.m[prompt]
	factsCache.RUnlock()
	if ok {
		return f
	}
	f = parsePromptUncached(prompt)
	factsCache.Lock()
	if len(factsCache.m) >= factsCacheMax {
		factsCache.m = make(map[string]promptFacts, 16)
	}
	factsCache.m[prompt] = f
	factsCache.Unlock()
	return f
}

func parsePromptUncached(prompt string) promptFacts {
	f := promptFacts{joinCols: map[string]float64{}, colOrder: map[string]int{}}
	note := func(col string) {
		if _, ok := f.colOrder[col]; !ok {
			f.colOrder[col] = len(f.colOrder)
			f.colSequence = append(f.colSequence, col)
		}
	}
	lower := strings.ToLower(prompt)
	f.mysql = strings.Contains(lower, "mysql")

	if m := memRe.FindStringSubmatch(prompt); m != nil {
		var v float64
		fmt.Sscanf(m[1], "%g", &v)
		switch strings.ToUpper(m[2]) {
		case "MB":
			v /= 1024
		case "TB":
			v *= 1024
		}
		f.memoryGB = v
		f.hasHW = true
	}
	if m := coresRe.FindStringSubmatch(prompt); m != nil {
		fmt.Sscanf(m[1], "%d", &f.cores)
	}

	// Compressed-workload lines: "table.col: table.col, table.col". λ-Tune
	// lists the most expensive joins first, so earlier lines weigh more —
	// like a human DBA, the model treats list order as importance.
	sawSnippets := false
	lineNo := 0
	for _, line := range strings.Split(prompt, "\n") {
		line = trimIndent(line)
		m := snippetRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// Skip prompt-template lines that merely *look* like snippets.
		if strings.Contains(m[2], "{") || strings.Contains(m[1], "{") {
			continue
		}
		sawSnippets = true
		f.fromSnippets = true
		rank := 1.0 + 4.0/float64(1+lineNo) // 5, 3, 2.3, 2, …
		lineNo++
		// A line "A: B, C, D" encodes the joins (A,B), (A,C), (A,D): the
		// LHS participates in one join per RHS entry, so it accumulates
		// weight per pair. This reading is invariant to how the compressor
		// oriented the pairs.
		lhs := strings.ToLower(m[1])
		note(lhs)
		pos := 0
		for _, rhs := range strings.Split(m[2], ",") {
			rhs = strings.TrimSpace(rhs)
			if strings.Contains(rhs, ".") {
				// Within a line, earlier partners are the more expensive
				// joins (λ-Tune orders them so); weight decays with the
				// position.
				pairWeight := rank * (1 + 2.0/float64(1+pos))
				pos++
				rl := strings.ToLower(rhs)
				f.joinCols[lhs] += pairWeight
				f.joinCols[rl] += pairWeight
				note(rl)
			}
		}
	}

	// Raw-SQL fallback (the compressor-off ablation): extract equality pairs
	// and resolve aliases from FROM clauses. The digestion is imperfect on
	// purpose, modeling long-context degradation: attention over thousands
	// of tokens of dense SQL is diluted ("lost in the middle"), so only
	// roughly the first half of the query dump registers reliably — part of
	// what the paper's Figure 6/7 compressor comparison measures.
	if !sawSnippets {
		window := prompt
		if limit := 4000; len(window) > limit {
			window = window[:limit]
		}
		alias := map[string]string{}
		for _, m := range fromRe.FindAllStringSubmatch(window, -1) {
			for _, item := range strings.Split(m[1], ",") {
				fields := strings.Fields(strings.TrimSpace(item))
				if len(fields) >= 2 {
					alias[strings.ToLower(fields[1])] = strings.ToLower(fields[0])
				} else if len(fields) == 1 {
					alias[strings.ToLower(fields[0])] = strings.ToLower(fields[0])
				}
			}
		}
		for _, m := range eqPairRe.FindAllStringSubmatch(window, -1) {
			lt, lc := strings.ToLower(m[1]), strings.ToLower(m[2])
			rt, rc := strings.ToLower(m[3]), strings.ToLower(m[4])
			if t, ok := alias[lt]; ok {
				f.joinCols[t+"."+lc]++
				note(t + "." + lc)
			}
			if t, ok := alias[rt]; ok {
				f.joinCols[t+"."+rc]++
				note(t + "." + rc)
			}
		}
	}
	return f
}

// Complete implements Client, sampling at DefaultTemperature.
func (c *SimClient) Complete(ctx context.Context, prompt string) (string, error) {
	return c.CompleteT(ctx, prompt, DefaultTemperature)
}

// CompleteT implements TemperatureCompleter.
func (c *SimClient) CompleteT(ctx context.Context, prompt string, temperature float64) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	if prompt == "" {
		return "", fmt.Errorf("llm: empty prompt")
	}
	if c.Intercept != nil {
		if err := c.Intercept.BeforeComplete(prompt); err != nil {
			return "", err
		}
	}
	f := c.parsePrompt(prompt)
	if temperature < 0 {
		temperature = 0
	}
	bad := temperature > 0 && c.rng.Float64() < c.BadConfigRate*min(temperature/0.7, 1.5)
	var out string
	if f.mysql {
		out = c.mysqlConfig(f, temperature, bad)
	} else {
		out = c.postgresConfig(f, temperature, bad)
	}
	if c.Intercept != nil {
		return c.Intercept.AfterComplete(out)
	}
	return out, nil
}

// jitter returns a multiplicative factor 2^U(-t, t).
func (c *SimClient) jitter(temperature float64) float64 {
	if temperature <= 0 {
		return 1
	}
	e := (c.rng.Float64()*2 - 1) * temperature
	return math.Pow(2, e)
}

// rankedIndexCols returns the join columns in decreasing importance. When
// the prompt carried λ-Tune's compressed representation, its own ordering is
// authoritative — the compressor sorts lines and partners by join cost — so
// columns are read off in prompt order. For raw-SQL prompts the model falls
// back to frequency weighting.
func rankedIndexCols(f promptFacts) []string {
	if len(f.colSequence) > 0 && f.colSequence[0] != "" && len(f.joinCols) > 0 && f.snippetSourced() {
		return f.colSequence
	}
	return rankedByWeight(f)
}

// snippetSourced reports whether the facts came from snippet lines (the
// sequence is only importance-ordered in that case).
func (f promptFacts) snippetSourced() bool { return f.fromSnippets }

// rankedByWeight orders columns by descending accumulated weight.
func rankedByWeight(f promptFacts) []string {
	type kv struct {
		col string
		w   float64
	}
	items := make([]kv, 0, len(f.joinCols))
	for col, w := range f.joinCols {
		items = append(items, kv{col, w})
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].w != items[b].w {
			return items[a].w > items[b].w
		}
		// Ties break by first appearance in the prompt — invariant under
		// identifier renaming (the §6.4.3 obfuscation ablation).
		return f.colOrder[items[a].col] < f.colOrder[items[b].col]
	})
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.col
	}
	return out
}

// postgresConfig emits the PostgreSQL configuration script.
func (c *SimClient) postgresConfig(f promptFacts, temperature float64, bad bool) string {
	memGB := f.memoryGB
	if !f.hasHW || memGB <= 0 {
		memGB = 4 // conservative guess when the prompt omits hardware
	}
	cores := f.cores
	if cores <= 0 {
		cores = 4
	}
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	if bad {
		// One of the LLM's occasional poor answers: plausible-looking but
		// badly mis-tuned (temperature sampling artifact).
		switch c.rng.Intn(3) {
		case 0: // "safe minimal" answer: logging-only, no memory, no indexes
			w("ALTER SYSTEM SET checkpoint_completion_target = 0.9;")
			w("ALTER SYSTEM SET wal_buffers = '16MB';")
			w("ALTER SYSTEM SET default_statistics_target = 100;")
		case 1: // confused about storage: discourages all index use
			w("ALTER SYSTEM SET shared_buffers = '%dGB';", maxInt(1, int(memGB*0.25)))
			w("ALTER SYSTEM SET random_page_cost = 40;")
			w("ALTER SYSTEM SET enable_indexscan = off;")
			w("ALTER SYSTEM SET work_mem = '64kB';")
		default: // disables the workhorse join operator
			w("ALTER SYSTEM SET enable_hashjoin = off;")
			w("ALTER SYSTEM SET work_mem = '256kB';")
			w("ALTER SYSTEM SET shared_buffers = '256MB';")
		}
		return b.String()
	}

	shared := memGB * 0.25 * c.jitter(temperature*0.3)
	cache := memGB * 0.75 * c.jitter(temperature*0.2)
	workMemMB := memGB * 1024 / 64 * c.jitter(temperature)
	if workMemMB < 4 {
		workMemMB = 4
	}
	w("ALTER SYSTEM SET shared_buffers = '%dGB';", maxInt(1, int(shared)))
	w("ALTER SYSTEM SET effective_cache_size = '%dGB';", maxInt(1, int(cache)))
	w("ALTER SYSTEM SET work_mem = '%dMB';", maxInt(4, int(workMemMB)))
	w("ALTER SYSTEM SET maintenance_work_mem = '2GB';")
	w("ALTER SYSTEM SET checkpoint_completion_target = 0.9;")
	w("ALTER SYSTEM SET wal_buffers = '16MB';")
	w("ALTER SYSTEM SET default_statistics_target = 100;")
	w("ALTER SYSTEM SET random_page_cost = 1.1;")
	w("ALTER SYSTEM SET effective_io_concurrency = 200;")
	// For analytics, dedicate the machine to the query: all cores by
	// default, sometimes the more conservative cores/2 at temperature.
	workers := cores
	if temperature > 0 && c.rng.Float64() < 0.3*temperature {
		workers = maxInt(2, cores/2)
	}
	w("ALTER SYSTEM SET max_parallel_workers_per_gather = %d;", workers)
	w("ALTER SYSTEM SET max_parallel_workers = %d;", cores*2)

	// Index recommendations: the most frequently joined columns the prompt
	// conveyed. The count wobbles with temperature.
	cols := rankedIndexCols(f)
	limit := 20 + int(float64(c.rng.Intn(9)-4)*temperature)
	if limit < 4 {
		limit = 4
	}
	if limit > len(cols) {
		limit = len(cols)
	}
	for _, col := range cols[:limit] {
		parts := strings.SplitN(col, ".", 2)
		w("CREATE INDEX idx_%s_%s ON %s (%s);", parts[0], parts[1], parts[0], parts[1])
	}
	return b.String()
}

// mysqlConfig emits the MySQL configuration script.
func (c *SimClient) mysqlConfig(f promptFacts, temperature float64, bad bool) string {
	memGB := f.memoryGB
	if !f.hasHW || memGB <= 0 {
		memGB = 4
	}
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	if bad {
		switch c.rng.Intn(2) {
		case 0:
			w("SET GLOBAL innodb_flush_log_at_trx_commit = 2;")
			w("SET GLOBAL innodb_log_buffer_size = 67108864;")
		default:
			w("SET GLOBAL innodb_buffer_pool_size = %d;", int64(256)<<20)
			w("SET GLOBAL join_buffer_size = %d;", int64(128))
			w("SET GLOBAL sort_buffer_size = %d;", int64(32)<<10)
		}
		return b.String()
	}

	pool := int64(memGB * 0.6 * c.jitter(temperature*0.3) * float64(int64(1)<<30))
	if pool < 1<<30 {
		pool = 1 << 30
	}
	joinBuf := int64(memGB * 4 * c.jitter(temperature) * float64(int64(1)<<20))
	if joinBuf < 4<<20 {
		joinBuf = 4 << 20
	}
	w("SET GLOBAL innodb_buffer_pool_size = %d;", pool)
	w("SET GLOBAL innodb_buffer_pool_instances = 8;")
	w("SET GLOBAL join_buffer_size = %d;", joinBuf)
	w("SET GLOBAL sort_buffer_size = %d;", joinBuf)
	w("SET GLOBAL tmp_table_size = %d;", joinBuf*4)
	w("SET GLOBAL max_heap_table_size = %d;", joinBuf*4)
	w("SET GLOBAL innodb_io_capacity = 2000;")
	w("SET GLOBAL innodb_read_io_threads = 16;")

	cols := rankedIndexCols(f)
	limit := 20 + int(float64(c.rng.Intn(9)-4)*temperature)
	if limit < 4 {
		limit = 4
	}
	if limit > len(cols) {
		limit = len(cols)
	}
	for _, col := range cols[:limit] {
		parts := strings.SplitN(col, ".", 2)
		w("CREATE INDEX idx_%s_%s ON %s (%s);", parts[0], parts[1], parts[0], parts[1])
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
