package llm

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"lambdatune/internal/obs"
)

// Clock is the virtual-time source the resilience layer charges: retries,
// backoff waits, and breaker cooldowns advance it so resilience costs tuning
// time exactly as real wall-clock retries would. *engine.Clock satisfies it.
type Clock interface {
	Now() float64
	Advance(d float64)
}

// localClock is a self-contained fallback clock used when no engine clock is
// wired in; time still progresses so breaker windows expire.
type localClock struct{ now float64 }

func (c *localClock) Now() float64 { return c.now }
func (c *localClock) Advance(d float64) {
	if d > 0 {
		c.now += d
	}
}

// CompleteInterceptor observes and may fail or rewrite Complete calls. It is
// the LLM-side fault-injection hook: BeforeComplete runs before the model is
// invoked and may fail the call; AfterComplete runs on the produced response
// and may rewrite or fail it.
type CompleteInterceptor interface {
	BeforeComplete(prompt string) error
	AfterComplete(response string) (string, error)
}

// WithInterceptor decorates any client with a CompleteInterceptor, for
// clients without a native hook (SimClient has one, see SimClient.Intercept).
func WithInterceptor(inner Client, ic CompleteInterceptor) Client {
	return &interceptedClient{inner: inner, ic: ic}
}

type interceptedClient struct {
	inner Client
	ic    CompleteInterceptor
}

func (c *interceptedClient) Name() string { return c.inner.Name() }

// Complete implements Client.
func (c *interceptedClient) Complete(ctx context.Context, prompt string) (string, error) {
	return c.intercept(prompt, func(p string) (string, error) {
		return c.inner.Complete(ctx, p)
	})
}

// CompleteT implements TemperatureCompleter, forwarding the temperature to
// the inner client when it supports one.
func (c *interceptedClient) CompleteT(ctx context.Context, prompt string, temperature float64) (string, error) {
	return c.intercept(prompt, func(p string) (string, error) {
		return Complete(ctx, c.inner, p, temperature)
	})
}

func (c *interceptedClient) intercept(prompt string, call func(string) (string, error)) (string, error) {
	if err := c.ic.BeforeComplete(prompt); err != nil {
		return "", err
	}
	out, err := call(prompt)
	if err != nil {
		return "", err
	}
	return c.ic.AfterComplete(out)
}

// ResilienceOptions configures NewResilientClient. The zero value is usable:
// every unset field falls back to the DefaultResilienceOptions value.
type ResilienceOptions struct {
	// MaxRetries is the number of re-attempts after a failed call
	// (default 3; negative disables retries).
	MaxRetries int
	// InitialBackoff is the virtual wait before the first retry, in seconds
	// (default 1).
	InitialBackoff float64
	// BackoffFactor multiplies the backoff after every retry (default 2).
	BackoffFactor float64
	// MaxBackoff caps a single backoff wait (default 30).
	MaxBackoff float64
	// Jitter randomizes each backoff by ±Jitter fraction (default 0.25);
	// the randomization is seeded, so runs stay reproducible.
	Jitter float64
	// CallTimeout is the per-call deadline in virtual seconds: a failed
	// call is never charged more than this (default 60).
	CallTimeout float64
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive failed calls (default 4; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is the virtual time the breaker stays open
	// (default 120). With no fallback client the layer waits the cooldown
	// out on the virtual clock — the pipeline has nothing else to do — and
	// then probes half-open.
	BreakerCooldown float64
	// Fallback is consulted when the inner client's retries are exhausted
	// or the breaker is open (optional).
	Fallback Client
	// Clock is the virtual clock to charge (default: a private clock).
	Clock Clock
	// Seed drives backoff jitter (default 1).
	Seed int64
}

// DefaultResilienceOptions returns the production defaults.
func DefaultResilienceOptions() ResilienceOptions {
	return ResilienceOptions{
		MaxRetries:       3,
		InitialBackoff:   1,
		BackoffFactor:    2,
		MaxBackoff:       30,
		Jitter:           0.25,
		CallTimeout:      60,
		BreakerThreshold: 4,
		BreakerCooldown:  120,
		Seed:             1,
	}
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	d := DefaultResilienceOptions()
	if o.MaxRetries == 0 {
		o.MaxRetries = d.MaxRetries
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.InitialBackoff <= 0 {
		o.InitialBackoff = d.InitialBackoff
	}
	if o.BackoffFactor < 1 {
		o.BackoffFactor = d.BackoffFactor
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = d.MaxBackoff
	}
	if o.Jitter < 0 || o.Jitter > 1 {
		o.Jitter = d.Jitter
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = d.CallTimeout
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = d.BreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = d.BreakerCooldown
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// ResilienceStats is the layer's cumulative telemetry.
type ResilienceStats struct {
	// Calls counts attempts against the inner client.
	Calls int
	// Failures counts failed inner attempts.
	Failures int
	// Retries counts re-attempts (Calls minus first attempts).
	Retries int
	// BreakerTrips counts circuit-breaker openings.
	BreakerTrips int
	// FallbackCalls counts requests served by the fallback client.
	FallbackCalls int
	// BackoffSeconds is the virtual time spent waiting between retries.
	BackoffSeconds float64
	// BreakerWaitSeconds is the virtual time spent waiting out open
	// breaker windows.
	BreakerWaitSeconds float64
	// LatencySeconds is the virtual time charged for failed calls.
	LatencySeconds float64
}

// StatsProvider is implemented by clients that expose resilience telemetry;
// the tuner uses it to populate its FaultReport.
type StatsProvider interface {
	Stats() ResilienceStats
}

// latencyError is implemented by errors that know how much virtual time the
// failed call consumed (see faults.Error).
type latencyError interface {
	LatencySeconds() float64
}

// retryableError lets an error opt out of retries; errors without the
// method are treated as retryable (transient-by-default, as hosted LLM APIs
// recommend).
type retryableError interface {
	Retryable() bool
}

// ResilientClient hardens any Client: retries with exponential backoff and
// seeded jitter, per-call deadlines, a consecutive-failure circuit breaker,
// and an optional fallback client. All waiting advances the virtual clock,
// keeping the paper's bounded-evaluation-cost accounting honest.
type ResilientClient struct {
	inner Client
	opts  ResilienceOptions
	clock Clock
	rng   *rand.Rand

	consecFails int
	openUntil   float64
	// halfOpen tracks the breaker's probing state purely for trace-event
	// emission (open → half-open on cooldown expiry, half-open → close on
	// the first success); the control flow never reads it.
	halfOpen bool
	stats    ResilienceStats
}

// NewResilientClient wraps inner with the resilience layer.
func NewResilientClient(inner Client, opts ResilienceOptions) *ResilientClient {
	opts = opts.withDefaults()
	clock := opts.Clock
	if clock == nil {
		clock = &localClock{}
	}
	return &ResilientClient{
		inner: inner,
		opts:  opts,
		clock: clock,
		rng:   rand.New(rand.NewSource(opts.Seed)),
	}
}

// Name implements Client.
func (c *ResilientClient) Name() string { return c.inner.Name() }

// Stats returns the accumulated telemetry.
func (c *ResilientClient) Stats() ResilienceStats { return c.stats }

// breakerOpen reports whether the breaker currently blocks calls.
func (c *ResilientClient) breakerOpen() bool {
	return c.clock.Now() < c.openUntil
}

// Complete implements Client.
func (c *ResilientClient) Complete(ctx context.Context, prompt string) (string, error) {
	return c.run(ctx, func(ctx context.Context, cl Client) (string, error) {
		return cl.Complete(ctx, prompt)
	})
}

// CompleteT implements TemperatureCompleter, forwarding the temperature to
// the inner (and fallback) client when supported.
func (c *ResilientClient) CompleteT(ctx context.Context, prompt string, temperature float64) (string, error) {
	return c.run(ctx, func(ctx context.Context, cl Client) (string, error) {
		return Complete(ctx, cl, prompt, temperature)
	})
}

// attempt invokes one client under the per-call deadline: CallTimeout is
// both the virtual-time cap charged for failed calls and a real
// context.WithTimeout deadline on the transport, so a hung API call cannot
// stall the pipeline beyond it.
func (c *ResilientClient) attempt(ctx context.Context, cl Client, call func(context.Context, Client) (string, error)) (string, error) {
	cctx, cancel := context.WithTimeout(ctx, time.Duration(c.opts.CallTimeout*float64(time.Second)))
	defer cancel()
	return call(cctx, cl)
}

// run is the shared retry/backoff/breaker/fallback engine behind Complete
// and CompleteT. When the caller's context carries a trace span (the tuner's
// llm.sample span), every resilience decision — retry, backoff, breaker
// transition, fallback — is recorded on it as a virtual-clock-stamped event;
// emission is passive and never alters the control flow.
func (c *ResilientClient) run(ctx context.Context, call func(context.Context, Client) (string, error)) (string, error) {
	span := obs.SpanFromContext(ctx)
	if c.breakerOpen() {
		if c.opts.Fallback != nil {
			c.stats.FallbackCalls++
			span.Event("llm.fallback", c.clock.Now(), obs.String("reason", "breaker_open"))
			return c.attempt(ctx, c.opts.Fallback, call)
		}
		// Nothing else to do but wait the cooldown out; the wait costs
		// virtual tuning time, then the breaker goes half-open.
		wait := c.openUntil - c.clock.Now()
		c.clock.Advance(wait)
		c.stats.BreakerWaitSeconds += wait
		c.openUntil = 0
		c.halfOpen = true
		span.Event("llm.breaker.half_open", c.clock.Now(), obs.Float("waited", wait))
	} else if c.openUntil > 0 {
		// The cooldown expired between calls (another sample advanced the
		// shared clock past it): this call is the half-open probe.
		c.openUntil = 0
		c.halfOpen = true
		span.Event("llm.breaker.half_open", c.clock.Now(), obs.Float("waited", 0))
	}

	backoff := c.opts.InitialBackoff
	tried := 0
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			// Canceled callers get the context error, not a transport error:
			// retries and fallbacks must stop promptly.
			return "", err
		}
		if attempt > 0 {
			wait := backoff
			if j := c.opts.Jitter; j > 0 {
				wait *= 1 + j*(2*c.rng.Float64()-1)
			}
			c.clock.Advance(wait)
			c.stats.BackoffSeconds += wait
			c.stats.Retries++
			backoff *= c.opts.BackoffFactor
			if backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
			span.Event("llm.retry", c.clock.Now(), obs.Int("attempt", attempt), obs.Float("backoff", wait))
		}
		c.stats.Calls++
		tried++
		out, err := c.attempt(ctx, c.inner, call)
		if err == nil {
			c.consecFails = 0
			if c.halfOpen {
				c.halfOpen = false
				span.Event("llm.breaker.close", c.clock.Now())
			}
			return out, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}

		// Charge the failed call's latency, cut at the per-call deadline.
		lat := 0.0
		if le, ok := err.(latencyError); ok {
			lat = le.LatencySeconds()
		}
		if lat > c.opts.CallTimeout {
			lat = c.opts.CallTimeout
			err = fmt.Errorf("llm: call deadline (%gs) exceeded: %w", c.opts.CallTimeout, err)
		}
		c.clock.Advance(lat)
		c.stats.LatencySeconds += lat
		c.stats.Failures++
		lastErr = err
		span.Event("llm.call_failed", c.clock.Now(), obs.String("error", err.Error()))

		c.consecFails++
		if th := c.opts.BreakerThreshold; th > 0 && c.consecFails >= th {
			c.openUntil = c.clock.Now() + c.opts.BreakerCooldown
			c.consecFails = 0
			c.halfOpen = false
			c.stats.BreakerTrips++
			span.Event("llm.breaker.open", c.clock.Now(), obs.Float("cooldown", c.opts.BreakerCooldown))
			break // circuit open: stop hammering the API
		}
		if re, ok := err.(retryableError); ok && !re.Retryable() {
			break
		}
	}

	if c.opts.Fallback != nil {
		c.stats.FallbackCalls++
		span.Event("llm.fallback", c.clock.Now(), obs.String("reason", "retries_exhausted"))
		out, err := c.attempt(ctx, c.opts.Fallback, call)
		if err == nil {
			return out, nil
		}
		lastErr = fmt.Errorf("fallback %s also failed: %w (inner: %v)", c.opts.Fallback.Name(), err, lastErr)
	}
	return "", fmt.Errorf("llm: %s unavailable after %d attempt(s): %w", c.inner.Name(), tried, lastErr)
}
