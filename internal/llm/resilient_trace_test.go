package llm

import (
	"context"
	"testing"

	"lambdatune/internal/obs"
)

// traceSetup builds a tracer with one open sample span and a context carrying
// it, the way the tuner hands spans to the resilient client.
func traceSetup() (*obs.Tracer, *obs.Span, context.Context) {
	tr := obs.NewTracer()
	span := tr.Start(nil, "llm.sample", 0)
	return tr, span, obs.ContextWithSpan(context.Background(), span)
}

// sampleEvents ends the span and returns its recorded events.
func sampleEvents(t *testing.T, tr *obs.Tracer, span *obs.Span, end float64) []obs.EventRecord {
	t.Helper()
	span.End(end)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	return recs[0].Events
}

// checkEvents asserts the exact event-name sequence and that virtual
// timestamps never move backwards.
func checkEvents(t *testing.T, events []obs.EventRecord, names []string, virts []float64) {
	t.Helper()
	if len(events) != len(names) {
		var got []string
		for _, e := range events {
			got = append(got, e.Name)
		}
		t.Fatalf("got %d events %v, want %v", len(events), got, names)
	}
	last := 0.0
	for i, e := range events {
		if e.Name != names[i] {
			t.Errorf("event %d = %s, want %s", i, e.Name, names[i])
		}
		if virts != nil && e.Virt != virts[i] {
			t.Errorf("event %d (%s) at virtual %v, want %v", i, e.Name, e.Virt, virts[i])
		}
		if e.Virt < last {
			t.Errorf("event %d (%s) rewinds virtual time: %v after %v", i, e.Name, e.Virt, last)
		}
		last = e.Virt
	}
}

// TestResilientTraceBreakerLifecycle drives the breaker through its full
// open → half-open → close cycle under injected failures and pins the event
// sequence in virtual-clock order: two 2s-failures trip the 2-threshold
// breaker, the next call waits out the 50s cooldown as the half-open probe
// and succeeds, closing the breaker.
func TestResilientTraceBreakerLifecycle(t *testing.T) {
	clock := &localClock{}
	tr, span, ctx := traceSetup()
	c := NewResilientClient(&flakyClient{failures: 2, err: &timedError{lat: 2}}, ResilienceOptions{
		Clock: clock, MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: 50,
	})

	if _, err := c.CompleteT(ctx, "p", 0); err == nil {
		t.Fatal("first failing call succeeded")
	}
	if _, err := c.CompleteT(ctx, "p", 0); err == nil {
		t.Fatal("second failing call succeeded")
	}
	out, err := c.CompleteT(ctx, "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("half-open probe = %q, %v", out, err)
	}
	if s := c.Stats(); s.BreakerTrips != 1 || s.BreakerWaitSeconds != 50 {
		t.Fatalf("stats = %+v", s)
	}
	checkEvents(t, sampleEvents(t, tr, span, clock.Now()),
		[]string{"llm.call_failed", "llm.call_failed", "llm.breaker.open",
			"llm.breaker.half_open", "llm.breaker.close"},
		[]float64{2, 4, 4, 54, 54})
}

// TestResilientTraceRetryBackoff pins retry/backoff event emission: each
// backoff wait emits llm.retry with the attempt number and the (jitter-free)
// wait, interleaved with the failures that caused it, all on the virtual
// clock.
func TestResilientTraceRetryBackoff(t *testing.T) {
	clock := &localClock{}
	tr, span, ctx := traceSetup()
	c := NewResilientClient(&flakyClient{failures: 2, err: &timedError{lat: 3}}, ResilienceOptions{
		Clock: clock, MaxRetries: 2, InitialBackoff: 1, BackoffFactor: 2,
	})
	c.opts.Jitter = 0 // exact backoff arithmetic

	out, err := c.CompleteT(ctx, "p", 0)
	if err != nil || out != "ok" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	events := sampleEvents(t, tr, span, clock.Now())
	// 3s failure, 1s backoff, 3s failure, 2s backoff, success.
	checkEvents(t, events,
		[]string{"llm.call_failed", "llm.retry", "llm.call_failed", "llm.retry"},
		[]float64{3, 4, 7, 9})
	if a := events[1].Attrs["attempt"]; a != float64(1) && a != 1 {
		t.Errorf("first retry attempt attr = %v", a)
	}
	if b := events[3].Attrs["backoff"]; b != float64(2) {
		t.Errorf("second retry backoff attr = %v, want 2", b)
	}
}

// TestResilientTraceFallbackReasons covers both fallback event reasons: a
// failing call that exhausts retries falls back with "retries_exhausted" and
// trips the 1-threshold breaker; the next call finds the breaker open and
// falls back with "breaker_open" without touching the inner client.
func TestResilientTraceFallbackReasons(t *testing.T) {
	clock := &localClock{}
	tr, span, ctx := traceSetup()
	inner := &flakyClient{failures: 100, err: &timedError{lat: 1}}
	c := NewResilientClient(inner, ResilienceOptions{
		Clock: clock, MaxRetries: -1, BreakerThreshold: 1, BreakerCooldown: 50,
		Fallback: &flakyClient{},
	})

	for i := 0; i < 2; i++ {
		out, err := c.CompleteT(ctx, "p", 0)
		if err != nil || out != "ok" {
			t.Fatalf("call %d = %q, %v", i+1, out, err)
		}
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (second call must not reach the inner client)", inner.calls)
	}
	events := sampleEvents(t, tr, span, clock.Now())
	checkEvents(t, events,
		[]string{"llm.call_failed", "llm.breaker.open", "llm.fallback", "llm.fallback"},
		[]float64{1, 1, 1, 1})
	if r := events[2].Attrs["reason"]; r != "retries_exhausted" {
		t.Errorf("first fallback reason = %v, want retries_exhausted", r)
	}
	if r := events[3].Attrs["reason"]; r != "breaker_open" {
		t.Errorf("second fallback reason = %v, want breaker_open", r)
	}
}
