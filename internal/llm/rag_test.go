package llm

import (
	"context"
	"strings"
	"testing"
)

func TestRetrieverRanksByOverlap(t *testing.T) {
	r := NewRetriever([]Document{
		{Title: "apples", Text: "apples are red fruit with seeds"},
		{Title: "postgres", Text: "shared_buffers memory postgresql tuning"},
		{Title: "mysql", Text: "innodb_buffer_pool_size mysql memory"},
	})
	got := r.Retrieve("tuning postgresql shared_buffers memory", 2)
	if len(got) != 2 || got[0].Title != "postgres" {
		t.Fatalf("retrieved: %+v", got)
	}
	// Zero-overlap docs never surface.
	for _, d := range got {
		if d.Title == "apples" {
			t.Error("irrelevant document retrieved")
		}
	}
}

func TestRetrieveEmptyQuery(t *testing.T) {
	r := NewRetriever(DefaultCorpus())
	if got := r.Retrieve("zzzqqq", 3); len(got) != 0 {
		t.Errorf("no-overlap query retrieved %d docs", len(got))
	}
}

func TestRetrieveKClamped(t *testing.T) {
	r := NewRetriever(DefaultCorpus())
	got := r.Retrieve("postgresql memory", 100)
	if len(got) > len(DefaultCorpus()) {
		t.Errorf("retrieved more than corpus size: %d", len(got))
	}
}

func TestRAGClientAugmentsPrompt(t *testing.T) {
	var captured string
	inner := clientFunc(func(prompt string, temp float64) (string, error) {
		captured = prompt
		return "ALTER SYSTEM SET work_mem = '64MB';", nil
	})
	rag := NewRAGClient(inner, DefaultCorpus())
	out, err := rag.CompleteT(context.Background(), testPrompt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty response")
	}
	if !strings.Contains(captured, "Relevant documentation:") {
		t.Error("prompt not augmented")
	}
	if !strings.Contains(captured, "PostgreSQL") {
		t.Errorf("no postgres docs retrieved for a postgres prompt:\n%s", captured)
	}
	if !strings.HasSuffix(captured, testPrompt) {
		t.Error("original prompt not preserved")
	}
}

func TestRAGClientPassThroughOnNoHits(t *testing.T) {
	inner := clientFunc(func(prompt string, temp float64) (string, error) {
		return prompt, nil
	})
	rag := NewRAGClient(inner, []Document{{Title: "x", Text: "zzz qqq"}})
	out, err := rag.CompleteT(context.Background(), "completely unrelated words here", 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Relevant documentation") {
		t.Error("augmented despite zero overlap")
	}
}

func TestRAGClientName(t *testing.T) {
	rag := NewRAGClient(NewSimClient(1), DefaultCorpus())
	if rag.Name() != "sim-gpt4+rag" {
		t.Errorf("name: %s", rag.Name())
	}
}

// TestRAGWithSimClient: the augmented prompt must still parse cleanly (doc
// lines must not be mistaken for workload snippets).
func TestRAGWithSimClient(t *testing.T) {
	rag := NewRAGClient(NewSimClient(1), DefaultCorpus())
	out, err := rag.CompleteT(context.Background(), testPrompt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shared_buffers = '15GB'") {
		t.Errorf("hardware-derived recommendation lost under RAG:\n%s", out)
	}
}

type clientFunc func(string, float64) (string, error)

func (f clientFunc) Complete(ctx context.Context, p string) (string, error) {
	return f(p, DefaultTemperature)
}
func (f clientFunc) CompleteT(ctx context.Context, p string, t float64) (string, error) {
	return f(p, t)
}
func (clientFunc) Name() string { return "fn" }
