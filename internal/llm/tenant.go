package llm

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"lambdatune/internal/obs"
)

// TenantGateway scopes one shared LLM transport across the tenants of a
// Runtime. Each tenant gets its own circuit breaker and in-flight bound, so
// one tenant's failing model calls (or call storm) cannot poison another's:
// breaker state, failure streaks, and rate slots never cross tenant lines.
//
// The gateway sits between the shared transport and each job's private
// ResilientClient: transport → fault interceptor → gateway → per-job
// retries/backoff. A tripped breaker rejects calls with a non-retryable
// TenantBreakerError, which the per-job ResilientClient surfaces immediately
// instead of burning its retry budget.
//
// Unlike the per-job resilience layer, which runs on the job's virtual
// clock, breaker cooldowns here use wall time: tenants' virtual clocks are
// mutually incomparable, and the wall clock is the only time base the
// shared transport actually lives on. The gateway therefore never
// participates in virtual-clock accounting — a rejected call fails
// instantly on both clocks.
//
// A zero-valued options struct disables every mechanism; Enabled() reports
// false and Client returns the inner client untouched, so the default
// Runtime path is byte-identical to the pre-gateway pipeline.
type TenantGateway struct {
	opts TenantGatewayOptions

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// TenantGatewayOptions configures the per-tenant scoping.
type TenantGatewayOptions struct {
	// BreakerThreshold is the number of consecutive failed calls that trips
	// a tenant's circuit breaker. 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the wall-clock time a tripped breaker stays open
	// before the next call is allowed through as a half-open probe.
	// Defaults to 30s when the breaker is enabled.
	BreakerCooldown time.Duration
	// MaxInFlight bounds a tenant's concurrent calls on the shared
	// transport. 0 means unbounded.
	MaxInFlight int
	// Registry, when non-nil, receives the per-tenant breaker metrics
	// (runtime_llm_breaker_open_<tenant>, runtime_llm_breaker_trips_total_<tenant>,
	// runtime_llm_breaker_rejects_total_<tenant>) plus the gateway depth
	// series: tenant_gateway_calls_total_<tenant>,
	// tenant_gateway_inflight_<tenant>, and
	// tenant_gateway_breaker_transitions_total_<tenant>. A registry alone
	// makes the gateway Active — calls are counted even with every
	// enforcement mechanism off.
	Registry *obs.Registry
	// Logger, when non-nil, records breaker state changes (opened, half-open
	// probe) with the tenant key.
	Logger *slog.Logger
}

// tenantState is one tenant's isolated gateway state.
type tenantState struct {
	tenant string
	sem    chan struct{} // nil when MaxInFlight is off

	mu          sync.Mutex
	consecFails int
	openUntil   time.Time // zero when closed
	trips       int
	inflight    int // calls currently on the shared transport
}

// NewTenantGateway builds a gateway. The zero options value yields a
// disabled gateway (see Enabled).
func NewTenantGateway(opts TenantGatewayOptions) *TenantGateway {
	if opts.BreakerThreshold > 0 && opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	return &TenantGateway{opts: opts, tenants: make(map[string]*tenantState)}
}

// Enabled reports whether any enforcement mechanism (breaker, in-flight
// bound) is on.
func (g *TenantGateway) Enabled() bool {
	return g != nil && (g.opts.BreakerThreshold > 0 || g.opts.MaxInFlight > 0)
}

// Active reports whether Client wraps inner at all: enforcement enabled, or
// pure instrumentation requested (a registry or logger). With enforcement
// off the wrapper is a pass-through — the breaker can never trip at
// threshold 0 and no semaphore exists — so wrapping for instrumentation
// alone cannot change call outcomes. An inactive gateway's Client returns
// the inner client untouched.
func (g *TenantGateway) Active() bool {
	return g.Enabled() || (g != nil && (g.opts.Registry != nil || g.opts.Logger != nil))
}

// state returns (creating if needed) the named tenant's isolated state.
func (g *TenantGateway) state(tenant string) *tenantState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.tenants[tenant]
	if st == nil {
		st = &tenantState{tenant: tenant}
		if g.opts.MaxInFlight > 0 {
			st.sem = make(chan struct{}, g.opts.MaxInFlight)
		}
		g.tenants[tenant] = st
	}
	return st
}

// Client wraps inner with the named tenant's breaker, in-flight bound, and
// gateway instrumentation. With the gateway inactive, inner comes back
// untouched.
func (g *TenantGateway) Client(tenant string, inner Client) Client {
	if !g.Active() {
		return inner
	}
	return &tenantClient{g: g, st: g.state(tenant), inner: inner}
}

// BreakerOpen reports whether the tenant's breaker is currently open.
func (g *TenantGateway) BreakerOpen(tenant string) bool {
	if g == nil {
		return false
	}
	st := g.state(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.openUntil.IsZero() && time.Now().Before(st.openUntil)
}

// Trips returns how many times the tenant's breaker has tripped.
func (g *TenantGateway) Trips(tenant string) int {
	if g == nil {
		return 0
	}
	st := g.state(tenant)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.trips
}

// TenantBreakerError rejects a call while a tenant's breaker is open. It is
// non-retryable for the per-job resilience layer: retrying within the job
// cannot help until the wall-clock cooldown expires.
type TenantBreakerError struct {
	Tenant string
	Until  time.Time
}

// Error implements error.
func (e *TenantBreakerError) Error() string {
	return fmt.Sprintf("llm: tenant %q circuit breaker open until %s", e.Tenant, e.Until.Format(time.RFC3339))
}

// Retryable marks the error non-retryable (see retryableError).
func (e *TenantBreakerError) Retryable() bool { return false }

// tenantClient is the per-tenant view of the shared transport.
type tenantClient struct {
	g     *TenantGateway
	st    *tenantState
	inner Client
}

// Name identifies the underlying model.
func (c *tenantClient) Name() string { return c.inner.Name() }

// Complete implements Client.
func (c *tenantClient) Complete(ctx context.Context, prompt string) (string, error) {
	return c.run(ctx, func(ctx context.Context) (string, error) {
		return c.inner.Complete(ctx, prompt)
	})
}

// CompleteT implements TemperatureCompleter, forwarding the temperature to
// the inner client.
func (c *tenantClient) CompleteT(ctx context.Context, prompt string, temperature float64) (string, error) {
	return c.run(ctx, func(ctx context.Context) (string, error) {
		return Complete(ctx, c.inner, prompt, temperature)
	})
}

// run applies the tenant's breaker, in-flight bound, and gateway
// instrumentation around one call.
func (c *tenantClient) run(ctx context.Context, call func(context.Context) (string, error)) (string, error) {
	st := c.st
	st.mu.Lock()
	if !st.openUntil.IsZero() {
		if time.Now().Before(st.openUntil) {
			until := st.openUntil
			st.mu.Unlock()
			c.g.counter("runtime_llm_breaker_rejects_total_", st.tenant).Inc()
			return "", &TenantBreakerError{Tenant: st.tenant, Until: until}
		}
		// Cooldown elapsed: half-open — let this call probe the transport.
		st.openUntil = time.Time{}
		c.g.gauge("runtime_llm_breaker_open_", st.tenant).Set(0)
		c.g.counter("tenant_gateway_breaker_transitions_total_", st.tenant).Inc()
		if c.g.opts.Logger != nil {
			c.g.opts.Logger.Info("tenant breaker half-open", "tenant", st.tenant)
		}
	}
	st.mu.Unlock()

	if st.sem != nil {
		select {
		case st.sem <- struct{}{}:
			defer func() { <-st.sem }()
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}

	st.mu.Lock()
	st.inflight++
	c.g.gauge("tenant_gateway_inflight_", st.tenant).Set(float64(st.inflight))
	st.mu.Unlock()
	c.g.counter("tenant_gateway_calls_total_", st.tenant).Inc()

	out, err := call(ctx)

	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight--
	c.g.gauge("tenant_gateway_inflight_", st.tenant).Set(float64(st.inflight))
	switch {
	case err == nil:
		st.consecFails = 0
	case ctx.Err() != nil:
		// Cancellation is the caller's verdict, not the transport's: it
		// must not move the breaker either way.
	default:
		st.consecFails++
		if th := c.g.opts.BreakerThreshold; th > 0 && st.consecFails >= th {
			st.consecFails = 0
			st.openUntil = time.Now().Add(c.g.opts.BreakerCooldown)
			st.trips++
			c.g.counter("runtime_llm_breaker_trips_total_", st.tenant).Inc()
			c.g.counter("tenant_gateway_breaker_transitions_total_", st.tenant).Inc()
			c.g.gauge("runtime_llm_breaker_open_", st.tenant).Set(1)
			if c.g.opts.Logger != nil {
				c.g.opts.Logger.Warn("tenant breaker opened",
					"tenant", st.tenant, "trips", st.trips, "cooldown", c.g.opts.BreakerCooldown.String())
			}
		}
	}
	return out, err
}

// counter / gauge resolve a per-tenant metric (nil-safe via the registry).
func (g *TenantGateway) counter(prefix, tenant string) *obs.Counter {
	return g.opts.Registry.Counter(prefix + MetricTenant(tenant))
}

func (g *TenantGateway) gauge(prefix, tenant string) *obs.Gauge {
	return g.opts.Registry.Gauge(prefix + MetricTenant(tenant))
}

// MetricTenant sanitizes a tenant name into a metric-name suffix: lowercase
// [a-z0-9_], everything else mapped to '_', empty → "default".
func MetricTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(tenant) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
