// Package llm provides the language-model client that λ-Tune samples
// configurations from, plus an approximate tokenizer for prompt budgeting.
//
// The paper uses OpenAI's GPT-4; offline, we substitute a deterministic
// knowledge-model simulator (see DESIGN.md §2). The simulator reads the same
// prompt text the paper's system would send and applies the documented DBA
// heuristics — 25% of RAM to shared_buffers, index the join columns the
// prompt mentions, lower random_page_cost alongside index recommendations —
// with temperature-controlled randomization that occasionally yields the bad
// configurations the paper's configuration selector exists to defend against
// (§6.3 reports outliers up to 5× the optimum among 15 samples).
package llm

import (
	"context"
	"strings"
	"unicode"
)

// CountTokens approximates a BPE tokenizer's token count: each word costs
// roughly one token per four characters, and every punctuation rune costs
// one token. The approximation is deliberately deterministic so prompt
// budgeting is reproducible.
func CountTokens(text string) int {
	tokens := 0
	wordLen := 0
	flush := func() {
		if wordLen > 0 {
			tokens += (wordLen + 3) / 4
			wordLen = 0
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			wordLen++
		default:
			flush()
			tokens++
		}
	}
	flush()
	return tokens
}

// CountTokensLines sums CountTokens over lines plus one token per newline.
func CountTokensLines(lines []string) int {
	total := 0
	for _, l := range lines {
		total += CountTokens(l) + 1
	}
	return total
}

// Client is the language-model interface λ-Tune invokes. Complete returns
// one full configuration script for the given prompt. The context carries
// cancellation and per-call deadlines down to the model transport.
type Client interface {
	// Complete returns the model's response to the prompt.
	Complete(ctx context.Context, prompt string) (string, error)
	// Name identifies the model (for logs and experiment records).
	Name() string
}

// DefaultTemperature is the sampling temperature the paper's setup uses
// (§6.1) and what Complete assumes for clients whose sampling is
// temperature-controlled.
const DefaultTemperature = 0.7

// TemperatureCompleter is optionally implemented by clients whose sampling
// supports per-call temperature control (the bundled simulator does; wrapper
// clients forward it). Clients without the method simply use whatever
// sampling parameters they were built with.
type TemperatureCompleter interface {
	CompleteT(ctx context.Context, prompt string, temperature float64) (string, error)
}

// Complete invokes c with the given per-call temperature when the client
// supports it, and plain Complete otherwise. The pipeline routes every model
// call through this helper so Options.Temperature reaches capable clients
// without widening the minimal Client interface.
func Complete(ctx context.Context, c Client, prompt string, temperature float64) (string, error) {
	if tc, ok := c.(TemperatureCompleter); ok {
		return tc.CompleteT(ctx, prompt, temperature)
	}
	return c.Complete(ctx, prompt)
}

// trimIndent normalizes a prompt line for parsing.
func trimIndent(s string) string { return strings.TrimSpace(s) }
