package faults

import (
	"errors"
	"strings"
	"testing"

	"lambdatune/internal/engine"
)

// fakeClock is a settable virtual-time source.
type fakeClock struct{ now float64 }

func (c *fakeClock) Now() float64 { return c.now }

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{}, 1, nil)
	for i := 0; i < 100; i++ {
		if err := in.BeforeComplete("p"); err != nil {
			t.Fatalf("call %d: unexpected fault %v", i, err)
		}
		out, err := in.AfterComplete("ALTER SYSTEM SET work_mem = '64MB';")
		if err != nil || out != "ALTER SYSTEM SET work_mem = '64MB';" {
			t.Fatalf("call %d: response altered: %q %v", i, out, err)
		}
		if _, abort := in.QueryFault(nil); abort {
			t.Fatalf("call %d: unexpected query abort", i)
		}
		if _, fail := in.IndexFault(engine.IndexDef{}); fail {
			t.Fatalf("call %d: unexpected index failure", i)
		}
	}
	if in.Total() != 0 {
		t.Fatalf("Total() = %d, want 0", in.Total())
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() (string, []bool) {
		in := NewInjector(NewPlan(0.5, 0.5), 42, nil)
		var aborts []bool
		for i := 0; i < 50; i++ {
			_ = in.BeforeComplete("p")
			_, _ = in.AfterComplete("line1\nline2\nline3\n")
			_, a := in.QueryFault(nil)
			aborts = append(aborts, a)
		}
		return in.Summary(), aborts
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("summaries differ:\n%s\n%s", s1, s2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("abort decision %d differs", i)
		}
	}
}

func TestLLMStreamIndependentOfEngineDraws(t *testing.T) {
	// The LLM fault sequence must not shift when the number of interleaved
	// engine-side draws changes (queries executed varies run to run).
	seq := func(engineDraws int) []error {
		in := NewInjector(NewPlan(0.8, 0.5), 7, nil)
		var errs []error
		for i := 0; i < 20; i++ {
			errs = append(errs, in.BeforeComplete("p"))
			for j := 0; j < engineDraws; j++ {
				in.QueryFault(nil)
			}
		}
		return errs
	}
	a, b := seq(0), seq(13)
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("LLM fault decision %d depends on engine draw count", i)
		}
	}
}

func TestRateLimitWindow(t *testing.T) {
	clock := &fakeClock{}
	in := NewInjector(Plan{RateLimitRate: 1, RateLimitWindowSeconds: 20}, 1, clock)
	err := in.BeforeComplete("p")
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != LLMRateLimit {
		t.Fatalf("want rate-limit error, got %v", err)
	}
	// Inside the window every call fails, whatever the rates say.
	clock.now = 10
	if err := in.BeforeComplete("p"); err == nil {
		t.Fatal("call inside the burst window should fail")
	}
	// After the window the gate is drawn again (rate 1 → fails again, but
	// with a *new* window start).
	clock.now = 25
	err = in.BeforeComplete("p")
	if !errors.As(err, &fe) || fe.Kind != LLMRateLimit {
		t.Fatalf("want new rate-limit burst, got %v", err)
	}
	if got := in.Counts()[LLMRateLimit]; got != 3 {
		t.Fatalf("rate-limit count = %d, want 3", got)
	}
}

func TestRateLimitWindowExpires(t *testing.T) {
	clock := &fakeClock{}
	in := NewInjector(Plan{RateLimitRate: 0.999}, 99, clock)
	if err := in.BeforeComplete("p"); err == nil {
		t.Fatal("first call should open a burst")
	}
	clock.now = 1000 // far past the window
	in.plan.RateLimitRate = 0
	if err := in.BeforeComplete("p"); err != nil {
		t.Fatalf("window should have expired: %v", err)
	}
}

func TestTransientErrorCarriesLatency(t *testing.T) {
	in := NewInjector(Plan{TransientRate: 1, FailedCallSeconds: 2}, 1, nil)
	err := in.BeforeComplete("p")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("want *Error, got %v", err)
	}
	if fe.Kind != LLMTransient || fe.LatencySeconds() != 2 || !fe.Retryable() {
		t.Fatalf("unexpected error shape: %+v", fe)
	}
}

func TestTruncationShortensResponse(t *testing.T) {
	in := NewInjector(Plan{TruncateRate: 1}, 1, nil)
	full := strings.Repeat("ALTER SYSTEM SET work_mem = '64MB';\n", 10)
	out, err := in.AfterComplete(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(full) || len(out) == 0 {
		t.Fatalf("truncated length %d not in (0, %d)", len(out), len(full))
	}
	if got := in.Counts()[LLMTruncated]; got != 1 {
		t.Fatalf("truncate count = %d, want 1", got)
	}
}

func TestMalformInsertsChatter(t *testing.T) {
	in := NewInjector(Plan{MalformRate: 1}, 1, nil)
	out, err := in.AfterComplete("ALTER SYSTEM SET work_mem = '64MB';")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "As an AI language model") {
		t.Fatalf("chatter missing from %q", out)
	}
	if !strings.Contains(out, "work_mem") {
		t.Fatalf("original content lost: %q", out)
	}
}

func TestEngineFaultFractions(t *testing.T) {
	in := NewInjector(Plan{QueryAbortRate: 1, IndexFailRate: 1}, 1, nil)
	for i := 0; i < 20; i++ {
		frac, abort := in.QueryFault(nil)
		if !abort || frac < 0 || frac >= 1 {
			t.Fatalf("QueryFault = (%v, %v)", frac, abort)
		}
		frac, fail := in.IndexFault(engine.IndexDef{})
		if !fail || frac < 0 || frac >= 1 {
			t.Fatalf("IndexFault = (%v, %v)", frac, fail)
		}
	}
	if in.Counts()[QueryAbort] != 20 || in.Counts()[IndexFail] != 20 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

func TestSummaryFormat(t *testing.T) {
	in := NewInjector(Plan{TransientRate: 1}, 1, nil)
	_ = in.BeforeComplete("p")
	_ = in.BeforeComplete("p")
	if got := in.Summary(); got != "llm-transient=2" {
		t.Fatalf("Summary() = %q", got)
	}
	if in.Total() != 2 {
		t.Fatalf("Total() = %d", in.Total())
	}
}

func TestNewPlanSplit(t *testing.T) {
	p := NewPlan(0.5, 0.2)
	sumLLM := p.TransientRate + p.RateLimitRate + p.TruncateRate + p.MalformRate
	if diff := sumLLM - 0.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("LLM rates sum to %v, want 0.5", sumLLM)
	}
	sumEng := p.QueryAbortRate + p.IndexFailRate
	if diff := sumEng - 0.2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("engine rates sum to %v, want 0.2", sumEng)
	}
	if p.RateLimitWindowSeconds <= 0 || p.FailedCallSeconds <= 0 {
		t.Fatalf("defaults missing: %+v", p)
	}
}
