package faults

import "errors"

// ErrKilled reports a simulated crash at a chaos kill point. In-process
// chaos tests match it with errors.Is; process-level chaos installs an Exit
// function instead and never sees it.
var ErrKilled = errors.New("faults: killed at kill point")

// KillExitCode is the exit code process-level kills die with (the
// conventional SIGKILL code).
const KillExitCode = 137

// Killer simulates process death at checkpoint boundaries — the chaos
// harness's crash injector. It hooks into the checkpoint store's after-save
// callback, so a kill always lands after the checkpoint bytes are durable:
// exactly the state a real crash leaves behind. The zero value never kills.
type Killer struct {
	// AfterSampling kills at the post-sampling checkpoint, before the first
	// evaluation round.
	AfterSampling bool
	// AfterRound kills at the checkpoint that closes selector round N
	// (> 0 enables).
	AfterRound int
	// AfterSaves kills at the Nth durable save regardless of its content
	// (> 0 enables) — this is how the chaos harness sweeps every boundary
	// without knowing the round structure in advance.
	AfterSaves int
	// Exit, when set, replaces the ErrKilled return — point it at os.Exit
	// for process-level chaos. It must not return.
	Exit func(code int)

	saves int
}

// AfterCheckpoint observes one durable checkpoint and fires when it is a
// configured kill point. round is the selector round the checkpoint closed
// (0 = the post-sampling checkpoint). A fired in-process kill returns
// ErrKilled; a process-level kill calls Exit and does not return.
func (k *Killer) AfterCheckpoint(round int) error {
	k.saves++
	hit := (k.AfterSampling && round == 0) ||
		(k.AfterRound > 0 && round == k.AfterRound) ||
		(k.AfterSaves > 0 && k.saves == k.AfterSaves)
	if !hit {
		return nil
	}
	if k.Exit != nil {
		k.Exit(KillExitCode)
	}
	return ErrKilled
}

// Armed reports whether any kill point is configured.
func (k *Killer) Armed() bool {
	return k.AfterSampling || k.AfterRound > 0 || k.AfterSaves > 0
}
