// Package faults implements deterministic fault injection for the tuning
// pipeline's substrate boundaries. Real λ-Tune deployments talk to a hosted
// LLM and a live DBMS, both of which fail routinely — transient API errors,
// rate-limit bursts, truncated or garbage completions, killed queries,
// failed index builds. The Injector reproduces that failure surface on the
// simulated substrate: it is seeded (two runs with the same seed inject the
// byte-identical fault sequence) and virtual-clock-aware (rate-limit bursts
// span a window of simulated time, so waiting them out costs tuning time).
//
// The injector plugs into the substrates through two small hook interfaces
// it implements: llm.CompleteInterceptor (installed with llm.WithInterceptor
// or SimClient.Intercept) and engine.FaultInjector (installed with
// engine/DB.SetFaultInjector).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// Kind identifies one fault class of the taxonomy.
type Kind int

// The fault taxonomy. LLM faults model the hosted-API failure modes the
// paper's §4 retry loop exists for; engine faults model a production DBMS
// under pressure (statement_timeout kills, failed index builds).
const (
	// LLMTransient is a transient API error (HTTP 5xx): the call fails,
	// an immediate retry may succeed.
	LLMTransient Kind = iota
	// LLMRateLimit is a 429 burst: the call fails and every further call
	// fails until a window of virtual time has passed.
	LLMRateLimit
	// LLMTruncated cuts the completion off mid-script (max-token cutoffs,
	// dropped connections). The call "succeeds" with a damaged payload.
	LLMTruncated
	// LLMMalformed corrupts the completion with non-SQL chatter.
	LLMMalformed
	// QueryAbort kills a query mid-flight after part of its runtime was
	// already spent (engine crash, admission-control kill).
	QueryAbort
	// IndexFail aborts an index build partway; the index does not exist
	// afterwards but the partial build time is lost.
	IndexFail
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LLMTransient:
		return "llm-transient"
	case LLMRateLimit:
		return "llm-rate-limit"
	case LLMTruncated:
		return "llm-truncated"
	case LLMMalformed:
		return "llm-malformed"
	case QueryAbort:
		return "query-abort"
	case IndexFail:
		return "index-fail"
	}
	return "unknown"
}

// Error is an injected LLM-boundary failure. It carries the virtual latency
// the failed call consumed, so a resilience layer can charge the clock
// honestly.
type Error struct {
	Kind    Kind
	Latency float64
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("injected fault: %s", e.Kind)
}

// Retryable reports whether an immediate retry can help. All injected LLM
// faults are transient by construction.
func (e *Error) Retryable() bool { return true }

// LatencySeconds returns the virtual seconds the failed call consumed.
func (e *Error) LatencySeconds() float64 { return e.Latency }

// Clock is the read-only virtual-time source the injector observes.
// *engine.Clock satisfies it.
type Clock interface {
	Now() float64
}

// Plan configures per-kind fault rates (probabilities in [0,1], evaluated
// independently per call site).
type Plan struct {
	// TransientRate is the per-call probability of an LLMTransient error.
	TransientRate float64
	// RateLimitRate is the per-call probability of opening a rate-limit
	// burst window.
	RateLimitRate float64
	// TruncateRate is the per-call probability of truncating the response.
	TruncateRate float64
	// MalformRate is the per-call probability of corrupting the response.
	MalformRate float64
	// QueryAbortRate is the per-execution probability of a query abort.
	QueryAbortRate float64
	// IndexFailRate is the per-build probability of an index-build failure.
	IndexFailRate float64
	// RateLimitWindowSeconds is the virtual duration of a rate-limit burst
	// (default 20).
	RateLimitWindowSeconds float64
	// FailedCallSeconds is the virtual latency a failed LLM call consumes
	// (default 2).
	FailedCallSeconds float64
}

// NewPlan spreads an aggregate LLM fault rate across the LLM fault kinds
// (40% transient errors, 20% rate limits, 20% truncations, 20% garbage) and
// an aggregate engine fault rate across query aborts and index failures
// (split evenly), with default window and latency settings.
func NewPlan(llmRate, engineRate float64) Plan {
	return Plan{
		TransientRate:          0.4 * llmRate,
		RateLimitRate:          0.2 * llmRate,
		TruncateRate:           0.2 * llmRate,
		MalformRate:            0.2 * llmRate,
		QueryAbortRate:         0.5 * engineRate,
		IndexFailRate:          0.5 * engineRate,
		RateLimitWindowSeconds: 20,
		FailedCallSeconds:      2,
	}
}

// Injector produces the plan's faults from seeded streams. It implements
// llm.CompleteInterceptor and engine.FaultInjector. The LLM and engine
// boundaries draw from independent streams, so the (few) LLM fault decisions
// do not shift with the (many) per-query engine draws.
type Injector struct {
	plan   Plan
	seed   int64
	llmRng *rand.Rand
	engRng *rand.Rand
	// engDraws counts the engine stream's consumed draws; Snapshot exposes it
	// so a resumed run can fast-forward a fresh injector to the same position.
	engDraws int
	clock    Clock
	// rateLimitedUntil is the virtual end of the current 429 burst.
	rateLimitedUntil float64
	counts           map[Kind]int
	// tracer, when set, turns every injection into a fault.<kind> trace
	// event on the run's root span (fault-injected runs are forced
	// sequential, so the single-writer event order is deterministic).
	tracer *obs.Tracer
}

// SetTracer makes every future injection emit a virtual-clock-stamped
// fault.<kind> event on tr's root span. A nil tracer disables emission.
func (in *Injector) SetTracer(tr *obs.Tracer) { in.tracer = tr }

// NewInjector creates an injector. clock may be nil when no component
// advances virtual time (rate-limit windows then never expire on their own).
func NewInjector(plan Plan, seed int64, clock Clock) *Injector {
	if plan.RateLimitWindowSeconds <= 0 {
		plan.RateLimitWindowSeconds = 20
	}
	if plan.FailedCallSeconds <= 0 {
		plan.FailedCallSeconds = 2
	}
	return &Injector{
		plan:   plan,
		seed:   seed,
		llmRng: rand.New(rand.NewSource(seed)),
		engRng: rand.New(rand.NewSource(seed + 7919)),
		clock:  clock,
		counts: map[Kind]int{},
	}
}

// Snapshot returns the injector's resumable position: its seed, the number
// of engine-stream draws consumed, and the per-kind fault counts keyed by
// Kind.String(). Only the engine stream matters after a selector-round
// checkpoint — LLM faults can only fire during sampling, which a resumed run
// skips entirely — so the LLM stream's position is not captured.
func (in *Injector) Snapshot() (seed int64, engineDraws int, counts map[string]int) {
	counts = make(map[string]int, len(in.counts))
	for k, v := range in.counts {
		counts[k.String()] = v
	}
	return in.seed, in.engDraws, counts
}

// RestoreEngine fast-forwards the engine fault stream by draws and restores
// the per-kind counts, so a resumed run sees the same remaining fault
// sequence — and reports cumulative totals — as the uninterrupted one. Call
// it on a fresh injector created with the same seed and plan.
func (in *Injector) RestoreEngine(draws int, counts map[string]int) {
	for i := in.engDraws; i < draws; i++ {
		in.engRng.Float64()
	}
	in.engDraws = draws
	for name, n := range counts {
		for k := LLMTransient; k <= IndexFail; k++ {
			if k.String() == name {
				in.counts[k] = n
				break
			}
		}
	}
}

// engFloat draws from the engine stream, counting the draw for Snapshot.
func (in *Injector) engFloat() float64 {
	in.engDraws++
	return in.engRng.Float64()
}

// engHit is hit() on the counted engine stream.
func (in *Injector) engHit(rate float64) bool {
	return rate > 0 && in.engFloat() < rate
}

func (in *Injector) now() float64 {
	if in.clock == nil {
		return 0
	}
	return in.clock.Now()
}

func (in *Injector) hit(rng *rand.Rand, rate float64) bool {
	return rate > 0 && rng.Float64() < rate
}

func (in *Injector) record(k Kind) {
	in.counts[k]++
	in.tracer.Root().Event("fault."+k.String(), in.now())
}

// Counts returns the number of injected faults per kind.
func (in *Injector) Counts() map[Kind]int {
	out := make(map[Kind]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int {
	n := 0
	for _, v := range in.counts {
		n += v
	}
	return n
}

// Summary renders the per-kind counts as "kind=n" pairs in kind order.
func (in *Injector) Summary() string {
	kinds := make([]Kind, 0, len(in.counts))
	for k := range in.counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%s=%d", k, in.counts[k])
	}
	return strings.Join(parts, " ")
}

// BeforeComplete implements llm.CompleteInterceptor: it fails the call with
// a transient or rate-limit error according to the plan.
func (in *Injector) BeforeComplete(prompt string) error {
	_ = prompt
	now := in.now()
	if now < in.rateLimitedUntil {
		in.record(LLMRateLimit)
		return &Error{Kind: LLMRateLimit, Latency: in.plan.FailedCallSeconds}
	}
	// Draw both gates unconditionally so the consumed rng stream — and with
	// it every later fault decision — does not depend on virtual time.
	limit := in.hit(in.llmRng, in.plan.RateLimitRate)
	transient := in.hit(in.llmRng, in.plan.TransientRate)
	if limit {
		in.rateLimitedUntil = now + in.plan.RateLimitWindowSeconds
		in.record(LLMRateLimit)
		return &Error{Kind: LLMRateLimit, Latency: in.plan.FailedCallSeconds}
	}
	if transient {
		in.record(LLMTransient)
		return &Error{Kind: LLMTransient, Latency: in.plan.FailedCallSeconds}
	}
	return nil
}

// AfterComplete implements llm.CompleteInterceptor: it damages successful
// responses (truncation, garbage insertion) according to the plan.
func (in *Injector) AfterComplete(response string) (string, error) {
	truncate := in.hit(in.llmRng, in.plan.TruncateRate)
	malform := in.hit(in.llmRng, in.plan.MalformRate)
	if truncate && len(response) > 1 {
		in.record(LLMTruncated)
		// Cut somewhere in the middle 30–80% — usually mid-line, the way a
		// max-token cutoff lands.
		cut := int(float64(len(response)) * (0.3 + 0.5*in.llmRng.Float64()))
		if cut < 1 {
			cut = 1
		}
		response = response[:cut]
	}
	if malform {
		in.record(LLMMalformed)
		lines := strings.Split(response, "\n")
		at := 0
		if len(lines) > 1 {
			at = in.llmRng.Intn(len(lines))
		}
		chatter := "As an AI language model, I recommend reviewing these settings carefully"
		lines = append(lines[:at], append([]string{chatter}, lines[at:]...)...)
		response = strings.Join(lines, "\n")
	}
	return response, nil
}

// QueryFault implements engine.FaultInjector: with probability
// QueryAbortRate the execution aborts after a random fraction of its
// (timeout-capped) runtime was spent.
func (in *Injector) QueryFault(q *engine.Query) (wastedFrac float64, abort bool) {
	_ = q
	if !in.engHit(in.plan.QueryAbortRate) {
		return 0, false
	}
	in.record(QueryAbort)
	return in.engFloat(), true
}

// IndexFault implements engine.FaultInjector: with probability
// IndexFailRate the build fails after a random fraction of its cost.
func (in *Injector) IndexFault(def engine.IndexDef) (wastedFrac float64, fail bool) {
	_ = def
	if !in.engHit(in.plan.IndexFailRate) {
		return 0, false
	}
	in.record(IndexFail)
	return in.engFloat(), true
}
