package faults

import (
	"errors"
	"testing"

	"lambdatune/internal/engine"
)

func TestKillerAfterSampling(t *testing.T) {
	k := &Killer{AfterSampling: true}
	if err := k.AfterCheckpoint(0); !errors.Is(err, ErrKilled) {
		t.Errorf("post-sampling checkpoint: %v", err)
	}
	k = &Killer{AfterSampling: true}
	if err := k.AfterCheckpoint(2); err != nil {
		t.Errorf("round checkpoint must not fire AfterSampling: %v", err)
	}
}

func TestKillerAfterRound(t *testing.T) {
	k := &Killer{AfterRound: 2}
	for _, round := range []int{0, 1} {
		if err := k.AfterCheckpoint(round); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if err := k.AfterCheckpoint(2); !errors.Is(err, ErrKilled) {
		t.Errorf("round 2: %v", err)
	}
}

func TestKillerAfterSaves(t *testing.T) {
	k := &Killer{AfterSaves: 3}
	for i := 0; i < 2; i++ {
		if err := k.AfterCheckpoint(i); err != nil {
			t.Fatalf("save %d: %v", i+1, err)
		}
	}
	if err := k.AfterCheckpoint(7); !errors.Is(err, ErrKilled) {
		t.Errorf("third save: %v", err)
	}
}

func TestKillerExit(t *testing.T) {
	exited := -1
	k := &Killer{AfterSaves: 1, Exit: func(code int) { exited = code; panic("exit") }}
	func() {
		defer func() { recover() }()
		_ = k.AfterCheckpoint(0)
	}()
	if exited != KillExitCode {
		t.Errorf("exit code: %d", exited)
	}
}

func TestKillerZeroValueNeverKills(t *testing.T) {
	k := &Killer{}
	if k.Armed() {
		t.Error("zero killer reports armed")
	}
	for i := 0; i < 10; i++ {
		if err := k.AfterCheckpoint(i); err != nil {
			t.Fatalf("zero killer fired: %v", err)
		}
	}
}

// TestSnapshotRestoreEngine verifies that a fresh injector fast-forwarded to
// a snapshot's position produces the same remaining fault sequence as the
// original injector.
func TestSnapshotRestoreEngine(t *testing.T) {
	plan := NewPlan(0, 0.4)
	q := &engine.Query{Name: "q", SQL: "SELECT 1"}
	ix := engine.IndexDef{Table: "t", Columns: "c"}

	orig := NewInjector(plan, 11, nil)
	for i := 0; i < 25; i++ {
		orig.QueryFault(q)
		if i%5 == 0 {
			orig.IndexFault(ix)
		}
	}
	seed, draws, counts := orig.Snapshot()
	if seed != 11 || draws == 0 {
		t.Fatalf("snapshot: seed=%d draws=%d", seed, draws)
	}

	resumed := NewInjector(plan, seed, nil)
	resumed.RestoreEngine(draws, counts)

	// Counts restored.
	if resumed.Total() != orig.Total() {
		t.Fatalf("restored totals: %d != %d", resumed.Total(), orig.Total())
	}
	// Identical remaining stream.
	for i := 0; i < 50; i++ {
		w1, a1 := orig.QueryFault(q)
		w2, a2 := resumed.QueryFault(q)
		if w1 != w2 || a1 != a2 {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, w1, a1, w2, a2)
		}
		f1, b1 := orig.IndexFault(ix)
		f2, b2 := resumed.IndexFault(ix)
		if f1 != f2 || b1 != b2 {
			t.Fatalf("index draw %d diverged", i)
		}
	}
	if orig.Summary() != resumed.Summary() {
		t.Errorf("summaries diverged: %q vs %q", orig.Summary(), resumed.Summary())
	}
}
