package bench

import "testing"

// TestRaceStudyE14 pins the acceptance bars of the racing-evaluation study:
// ≥ 2x reduction in evaluated query-seconds at k=20 candidates, with the
// racing-selected configuration within 5% of the full-evaluation speedup.
func TestRaceStudyE14(t *testing.T) {
	s, err := Race(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", RenderRace(s))
	if s.Full.BestID == "" || s.Racing.BestID == "" {
		t.Fatalf("a strategy selected no configuration: %+v", s)
	}
	if s.Full.Speedup <= 1 || s.Racing.Speedup <= 1 {
		t.Errorf("tuning did not improve on the default: full %.2fx, racing %.2fx",
			s.Full.Speedup, s.Racing.Speedup)
	}
	if s.Reduction < 2 {
		t.Errorf("racing saved too little evaluation work: %.2fx reduction, want >= 2x", s.Reduction)
	}
	if s.SpeedupDelta > 0.05 {
		t.Errorf("racing quality outside the envelope: speedup delta %.2f%%, want <= 5%%",
			100*s.SpeedupDelta)
	}
}

// TestRaceStudyDeterministic: the study is a pure function of the seed —
// rerunning it reproduces every number exactly.
func TestRaceStudyDeterministic(t *testing.T) {
	a, err := Race(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Race(1)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("study not deterministic:\n first %+v\nsecond %+v", *a, *b)
	}
}
