package bench

import (
	"runtime"
	"testing"
	"time"
)

// TestScalingInvariance (E13) pins both halves of the scaling contract:
// identical selection decisions at every worker count, and — when the host
// actually has cores to use — a real wall-clock drop from 1 to 4 workers.
func TestScalingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("E13 burns real CPU; skipped in -short mode")
	}
	rows, err := Scaling(1, 300*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ScalingWorkerCounts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ScalingWorkerCounts))
	}
	base := rows[0]
	byWorkers := map[int]ScalingRow{}
	for _, r := range rows[1:] {
		byWorkers[r.Workers] = r
		if r.BestID != base.BestID || r.Speedup != base.Speedup || r.BestTime != base.BestTime {
			t.Errorf("workers=%d: best %s %.3fx (%.3fs), want %s %.3fx (%.3fs)",
				r.Workers, r.BestID, r.Speedup, r.BestTime, base.BestID, base.Speedup, base.BestTime)
		}
	}
	// The wall-clock claim needs real parallel hardware; a 1-core CI box
	// cannot speed anything up, so only assert where the cores exist.
	if runtime.NumCPU() >= 4 {
		r4 := byWorkers[4]
		if r4.EvalWallSeconds <= 0 || base.EvalWallSeconds/r4.EvalWallSeconds < 2 {
			t.Errorf("1→4 workers wall time %.2fs → %.2fs (%.2fx), want >= 2x on %d cores",
				base.EvalWallSeconds, r4.EvalWallSeconds,
				base.EvalWallSeconds/r4.EvalWallSeconds, runtime.NumCPU())
		}
	} else {
		t.Logf("only %d CPU(s): skipping the wall-clock scaling assertion", runtime.NumCPU())
	}
}
