package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestRobustnessAcceptance is the headline robustness criterion: at 30%
// injected LLM fault rate and 10% engine fault rate, tuning still returns a
// usable best configuration with speedup ≥ 1.0, and the fault report is
// populated — retries, breaker trips, engine faults, and the virtual time
// they cost.
func TestRobustnessAcceptance(t *testing.T) {
	// Seed 2's fault stream exercises every resilience mechanism in one run.
	r := RobustnessTrial(2, 0.3, 0.1)
	if r.Err != "" {
		t.Fatalf("run failed: %s", r.Err)
	}
	if r.BestTime <= 0 {
		t.Fatal("no best configuration")
	}
	if r.Speedup < 1.0 {
		t.Fatalf("speedup %v < 1.0 under faults", r.Speedup)
	}
	f := r.Faults
	if f.LLMFailures == 0 || f.LLMRetries == 0 {
		t.Fatalf("no LLM fault activity: %+v", f)
	}
	if f.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", f)
	}
	if f.QueryAborts == 0 || f.IndexFailures == 0 {
		t.Fatalf("no engine fault activity: %+v", f)
	}
	// Waiting is charged to the virtual clock and is part of the tuning cost.
	waited := f.BackoffSeconds + f.BreakerWaitSeconds + f.FailedCallSeconds
	if waited <= 0 {
		t.Fatalf("no virtual time charged for failures: %+v", f)
	}
	if r.TuningSeconds < waited {
		t.Fatalf("TuningSeconds %v excludes the %vs spent on failures", r.TuningSeconds, waited)
	}
	if !f.Any() {
		t.Fatal("FaultReport.Any() = false")
	}
}

// TestRobustnessGracefulDegradation sweeps seeds at the acceptance fault
// rates: every run must stay usable (speedup ≥ 1), whatever the fault
// pattern.
func TestRobustnessGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 8; seed++ {
		r := RobustnessTrial(seed, 0.3, 0.1)
		if r.Err != "" {
			t.Errorf("seed %d: run failed: %s", seed, r.Err)
			continue
		}
		if r.Speedup < 1.0 {
			t.Errorf("seed %d: speedup %v < 1.0", seed, r.Speedup)
		}
	}
}

// TestRobustnessDeterministic is the reproducibility property: a faulty
// tuning run at seed S is byte-identical across two executions — fault
// decisions, retries, degradation, timings, everything.
func TestRobustnessDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		a := fmt.Sprintf("%#v", RobustnessTrial(seed, 0.3, 0.1))
		b := fmt.Sprintf("%#v", RobustnessTrial(seed, 0.3, 0.1))
		if a != b {
			t.Errorf("seed %d: runs differ:\n%s\n%s", seed, a, b)
		}
	}
}

// TestRobustnessSweepShape: the fault grid renders one row per cell and the
// zero-fault cell reports a clean run.
func TestRobustnessSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault-grid sweep")
	}
	rows, err := Robustness(1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(RobustnessRates.LLM) * len(RobustnessRates.Engine)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	clean := rows[0]
	if clean.LLMRate != 0 || clean.EngineRate != 0 {
		t.Fatalf("first cell should be fault-free: %+v", clean)
	}
	if clean.Faults.Any() {
		t.Fatalf("zero-rate cell reported faults: %+v", clean.Faults)
	}
	out := RenderRobustness(rows)
	if !strings.Contains(out, "llm%") || strings.Count(out, "\n") < want+1 {
		t.Fatalf("render malformed:\n%s", out)
	}
}
