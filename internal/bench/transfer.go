package bench

import (
	"fmt"
	"sort"
	"strings"

	"lambdatune/internal/engine"
)

// TransferStudy reproduces the §6.3 cross-benchmark comparison: the paper
// observes that memory-related parameter settings of the winning
// configurations tend to transfer between OLAP workloads (same
// shared_buffers / maintenance_work_mem), that index recommendations do not,
// and that index-friendly optimizer settings accompany index
// recommendations.
type TransferStudy struct {
	// Params maps parameter → benchmark → chosen value ("" when the
	// winning configuration leaves it at default).
	Params map[string]map[string]string
	// Benchmarks lists the studied benchmarks in order.
	Benchmarks []string
	// SharedParams lists parameters set to the *same* value in every
	// benchmark's winning configuration.
	SharedParams []string
	// IndexOverlap is the Jaccard overlap of index-set keys between
	// benchmark pairs (expected ≈ 0: indexes are workload-specific).
	IndexOverlap map[string]float64
}

// Transfer runs λ-Tune on each Postgres benchmark and compares the winning
// configurations.
func Transfer(seed int64) (*TransferStudy, error) {
	benchmarks := []string{"tpch-1", "tpcds-1", "job"}
	study := &TransferStudy{
		Params:       map[string]map[string]string{},
		Benchmarks:   benchmarks,
		IndexOverlap: map[string]float64{},
	}
	indexSets := map[string]map[string]bool{}
	for _, b := range benchmarks {
		sc := Scenario{Benchmark: b, Flavor: engine.Postgres, Seed: seed}
		db, w, err := sc.NewDB()
		if err != nil {
			return nil, err
		}
		lt := &LambdaTune{Seed: seed}
		res, err := lt.RunLambdaTune(db, w.Queries)
		if err != nil {
			return nil, err
		}
		if res.Best == nil {
			return nil, fmt.Errorf("bench: no configuration for %s", b)
		}
		for name, val := range res.Best.Params {
			if study.Params[name] == nil {
				study.Params[name] = map[string]string{}
			}
			study.Params[name][b] = val
		}
		set := map[string]bool{}
		for _, ix := range res.Best.Indexes {
			set[ix.Key()] = true
		}
		indexSets[b] = set
	}
	// Shared parameters: same non-empty value across all benchmarks.
	for name, perBench := range study.Params {
		if len(perBench) != len(benchmarks) {
			continue
		}
		first := ""
		same := true
		for _, b := range benchmarks {
			v := perBench[b]
			if first == "" {
				first = v
			} else if v != first {
				same = false
			}
		}
		if same {
			study.SharedParams = append(study.SharedParams, name)
		}
	}
	sort.Strings(study.SharedParams)
	// Pairwise index overlap.
	for i := 0; i < len(benchmarks); i++ {
		for j := i + 1; j < len(benchmarks); j++ {
			a, b := indexSets[benchmarks[i]], indexSets[benchmarks[j]]
			inter, union := 0, len(b)
			for k := range a {
				if b[k] {
					inter++
				} else {
					union++
				}
			}
			key := benchmarks[i] + "↔" + benchmarks[j]
			if union == 0 {
				study.IndexOverlap[key] = 0
			} else {
				study.IndexOverlap[key] = float64(inter) / float64(union)
			}
		}
	}
	return study, nil
}

// RenderTransfer prints the study.
func RenderTransfer(s *TransferStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s", "Parameter")
	for _, bench := range s.Benchmarks {
		fmt.Fprintf(&b, "%14s", bench)
	}
	b.WriteByte('\n')
	names := make([]string, 0, len(s.Params))
	for n := range s.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-34s", n)
		for _, bench := range s.Benchmarks {
			v := s.Params[n][bench]
			if v == "" {
				v = "—"
			}
			fmt.Fprintf(&b, "%14s", v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nparameters identical across all benchmarks: %s\n",
		strings.Join(s.SharedParams, ", "))
	keys := make([]string, 0, len(s.IndexOverlap))
	for k := range s.IndexOverlap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "index-set overlap %s: %.0f%%\n", k, 100*s.IndexOverlap[k])
	}
	return b.String()
}
