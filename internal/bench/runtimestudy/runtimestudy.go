// Package runtimestudy implements E15 — the shared-runtime reuse study.
//
// N similar jobs (same benchmark, same DBMS, same seed) run twice: first
// isolated, each on its own standalone pipeline; then concurrently on one
// shared Runtime, one tenant per job. The study pins the two properties the
// shared runtime promises:
//
//  1. Determinism: every job's result (best script, best/default workload
//     seconds, virtual tuning cost) is byte-identical to its isolated run —
//     cross-job memo and plan-cache reuse moves host wall time only.
//  2. Reuse: the cross-job memo hit rate is well above zero (the acceptance
//     bar is > 50% for N=8 identical jobs: all but the first job's lookups
//     should land on entries some other job computed).
//
// The package lives outside internal/bench because it exercises the public
// Runtime API: internal/bench is imported by the root package's in-package
// benches, so importing the root package from there would be a cycle.
package runtimestudy

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"lambdatune"
)

// Jobs is N, the job count of the full E15 study.
const Jobs = 8

// JobRow is one job's outcome under the shared runtime.
type JobRow struct {
	Job    int    `json:"job"`
	Tenant string `json:"tenant"`
	// BestSeconds / TuningSeconds are virtual-clock results — the fields the
	// determinism contract pins (along with the best script, compared but
	// not serialized in full).
	BestSeconds   float64 `json:"best_time_s"`
	TuningSeconds float64 `json:"tuning_s"`
	// Identical reports the job's full result matched its isolated run.
	Identical bool `json:"identical_to_isolated_run"`
}

// Study is the E15 artifact.
type Study struct {
	Benchmark string `json:"benchmark"`
	Jobs      int    `json:"jobs"`
	Seed      int64  `json:"seed"`
	// IsolatedWallSeconds / SharedWallSeconds are host wall-clock totals for
	// the N jobs: isolated runs back to back vs concurrent on the shared
	// runtime. Wall time is hardware-dependent; the JSON records it for
	// context, never as an acceptance bar.
	IsolatedWallSeconds float64 `json:"isolated_wall_seconds"`
	SharedWallSeconds   float64 `json:"shared_wall_seconds"`
	// Memo counters aggregated over the runtime's namespaces.
	MemoLookups      uint64 `json:"memo_lookups"`
	MemoHits         uint64 `json:"memo_hits"`
	MemoCrossJobHits uint64 `json:"memo_cross_job_hits"`
	// CrossJobHitRate is MemoCrossJobHits / MemoLookups.
	CrossJobHitRate float64 `json:"cross_job_hit_rate"`
	// HitRatePositive / IdenticalToIsolated are the CI smoke booleans.
	HitRatePositive     bool     `json:"hit_rate_positive"`
	IdenticalToIsolated bool     `json:"identical_to_isolated"`
	PerJob              []JobRow `json:"per_job"`
}

// resultKey condenses a run's deterministic outcome for equality checks.
func resultKey(r *lambdatune.Result) string {
	return fmt.Sprintf("best=%q bestSeconds=%.17g defaultSeconds=%.17g tuningSeconds=%.17g candidates=%d",
		r.BestScript, r.BestSeconds, r.DefaultSeconds, r.TuningSeconds, r.Candidates)
}

func jobOptions(seed int64, tenant string) lambdatune.Options {
	opts := lambdatune.DefaultOptions()
	opts.Seed = seed
	opts.Evaluation.Parallelism = 2
	opts.Tenant = tenant
	return opts
}

// Run executes the study: jobs isolated runs, then the same jobs concurrent
// on one shared Runtime.
func Run(seed int64, jobs int) (*Study, error) {
	s := &Study{Benchmark: "tpch-1", Jobs: jobs, Seed: seed}

	// Phase 1: isolated baseline, one standalone pipeline per job.
	isolated := make([]string, jobs)
	start := time.Now()
	for i := range isolated {
		db, w, err := lambdatune.Benchmark(s.Benchmark, lambdatune.Postgres)
		if err != nil {
			return nil, err
		}
		res, err := db.Tune(w, lambdatune.NewSimulatedLLM(seed), jobOptions(seed, ""))
		if err != nil {
			return nil, fmt.Errorf("isolated job %d: %w", i, err)
		}
		isolated[i] = resultKey(res)
	}
	s.IsolatedWallSeconds = time.Since(start).Seconds()

	// Phase 2: the same jobs, concurrent on one shared runtime, one tenant
	// each. EvalSlots bounds the combined evaluation workers at the job
	// count, so the gate sees real contention.
	rt := lambdatune.NewRuntime(lambdatune.RuntimeOptions{EvalSlots: jobs})
	defer rt.Close()
	results := make([]*lambdatune.Result, jobs)
	errs := make([]error, jobs)
	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, w, err := rt.Benchmark(s.Benchmark, lambdatune.Postgres)
			if err != nil {
				errs[i] = err
				return
			}
			tenant := fmt.Sprintf("tenant-%d", i)
			results[i], errs[i] = rt.TuneContext(context.Background(), db, w,
				lambdatune.NewSimulatedLLM(seed), jobOptions(seed, tenant))
		}(i)
	}
	wg.Wait()
	s.SharedWallSeconds = time.Since(start).Seconds()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shared job %d: %w", i, err)
		}
	}

	s.IdenticalToIsolated = true
	for i, res := range results {
		row := JobRow{
			Job:           i,
			Tenant:        fmt.Sprintf("tenant-%d", i),
			BestSeconds:   res.BestSeconds,
			TuningSeconds: res.TuningSeconds,
			Identical:     resultKey(res) == isolated[i],
		}
		if !row.Identical {
			s.IdenticalToIsolated = false
		}
		s.PerJob = append(s.PerJob, row)
	}
	st := rt.Stats()
	s.MemoLookups = st.MemoLookups
	s.MemoHits = st.MemoHits
	s.MemoCrossJobHits = st.MemoCrossJobHits
	s.CrossJobHitRate = st.CrossJobHitRate()
	s.HitRatePositive = s.MemoCrossJobHits > 0
	return s, nil
}

// Render prints the study as a table.
func Render(s *Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 shared-runtime reuse, %d × %s / Postgres, seed %d\n",
		s.Jobs, s.Benchmark, s.Seed)
	fmt.Fprintf(&b, "%4s %10s %10s %9s %10s\n", "job", "tenant", "best_s", "tuning_s", "identical")
	for _, r := range s.PerJob {
		fmt.Fprintf(&b, "%4d %10s %10.3f %9.1f %10v\n", r.Job, r.Tenant, r.BestSeconds, r.TuningSeconds, r.Identical)
	}
	fmt.Fprintf(&b, "wall: %.2fs isolated → %.2fs shared (concurrent)\n",
		s.IsolatedWallSeconds, s.SharedWallSeconds)
	fmt.Fprintf(&b, "memo: %d lookups, %d hits, %d cross-job hits (rate %.1f%%)\n",
		s.MemoLookups, s.MemoHits, s.MemoCrossJobHits, 100*s.CrossJobHitRate)
	return b.String()
}

// ExportJSON writes the study as the BENCH_runtime.json artifact checked by
// CI (`make bench-runtime`).
func ExportJSON(path string, s *Study) error {
	doc := struct {
		Description string `json:"description"`
		Collected   string `json:"collected"`
		Study       *Study `json:"study"`
	}{
		Description: "E15 — cross-job reuse on the shared Runtime: N identical jobs concurrent on one runtime vs isolated, comparing per-job results (must be identical; reuse is wall-time-only) and the cross-job memo hit rate. Regenerate with `make bench-runtime`.",
		Collected:   time.Now().UTC().Format("2006-01-02"),
		Study:       s,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
