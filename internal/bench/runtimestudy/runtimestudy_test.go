package runtimestudy

import "testing"

// TestRuntimeStudySmall runs a reduced E15 (4 jobs) and asserts the
// determinism and reuse contracts hold.
func TestRuntimeStudySmall(t *testing.T) {
	s, err := Run(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IdenticalToIsolated {
		for _, r := range s.PerJob {
			if !r.Identical {
				t.Errorf("job %d diverged from its isolated run", r.Job)
			}
		}
		t.Fatal("shared-runtime results are not identical to isolated runs")
	}
	if s.MemoCrossJobHits == 0 {
		t.Fatalf("no cross-job memo hits across %d identical jobs: %+v", s.Jobs, s)
	}
	if !s.HitRatePositive {
		t.Fatal("hit_rate_positive is false despite cross-job hits")
	}
}
