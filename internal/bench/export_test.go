package bench

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestExportTable3CSV(t *testing.T) {
	dir := t.TempDir()
	rows := []Table3Row{{
		Scenario: Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres},
		Scaled:   map[string]float64{"λ-Tune": 1.0, "UDO": 2.5},
	}}
	if err := ExportTable3CSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "table3.csv"))
	if len(got) != 2 || got[0][0] != "scenario" {
		t.Fatalf("csv: %v", got)
	}
	if got[1][1] != "1.0000" {
		t.Errorf("λ-Tune cell: %q", got[1][1])
	}
}

func TestExportConvergenceCSV(t *testing.T) {
	dir := t.TempDir()
	figs := []FigureConvergence{{
		Scenario: Scenario{Benchmark: "job", Flavor: engine.Postgres},
		Series: []Series{{
			System: "λ-Tune",
			Points: []baselines.Event{{Clock: 10, BestTime: 5}, {Clock: 20, BestTime: 3}},
		}},
	}}
	if err := ExportConvergenceCSV(dir, "figure3", figs); err != nil {
		t.Fatal(err)
	}
	got := readCSV(t, filepath.Join(dir, "figure3.csv"))
	if len(got) != 3 {
		t.Fatalf("rows: %v", got)
	}
	if got[2][3] != "3.0000" {
		t.Errorf("best cell: %q", got[2][3])
	}
}

func TestExportFigure5And7CSV(t *testing.T) {
	dir := t.TempDir()
	if err := ExportFigure5CSV(dir, []Figure5Row{{Query: "Q1", Default: 2, Tuned: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := ExportFigure7CSV(dir, []Figure7Row{{Label: "x", WorkloadTokens: 7, BestTime: 1, TuningSeconds: 2}}); err != nil {
		t.Fatal(err)
	}
	if len(readCSV(t, filepath.Join(dir, "figure5.csv"))) != 2 {
		t.Error("figure5 rows")
	}
	if len(readCSV(t, filepath.Join(dir, "figure7.csv"))) != 2 {
		t.Error("figure7 rows")
	}
}

func TestAsciiChart(t *testing.T) {
	fc := FigureConvergence{
		Scenario: Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres},
		Series: []Series{
			{System: "λ-Tune", Points: []baselines.Event{{Clock: 50, BestTime: 10}}},
			{System: "UDO", Points: []baselines.Event{
				{Clock: 10, BestTime: 60}, {Clock: 100, BestTime: 30}, {Clock: 1000, BestTime: 12},
			}},
			{System: "ParamTree", Points: nil},
		},
	}
	out := AsciiChart(fc, 40)
	if !strings.Contains(out, "λ-Tune") || !strings.Contains(out, "UDO") {
		t.Fatalf("chart:\n%s", out)
	}
	// λ-Tune's single near-best point renders as the near-best glyph.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "λ-Tune") && !strings.Contains(line, "#") {
			t.Errorf("λ-Tune line lacks near-best glyph: %q", line)
		}
	}
}

func TestAsciiChartEmpty(t *testing.T) {
	fc := FigureConvergence{Scenario: Scenario{Benchmark: "job", Flavor: engine.MySQL}}
	if out := AsciiChart(fc, 40); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
}
