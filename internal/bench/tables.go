package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lambdatune/internal/engine"
)

// Table3Row is one scenario row of Table 3: per-system best cost scaled to
// the best overall configuration of the scenario.
type Table3Row struct {
	Scenario Scenario
	// Scaled maps system → cost of its best configuration divided by the
	// scenario's overall best (1.00 = winner).
	Scaled map[string]float64
}

// Table3 reproduces paper Table 3 (experiment E1).
func Table3(r *Runner, seed int64, trials int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, sc := range Table3Scenarios(seed, trials) {
		res, err := r.Run(sc)
		if err != nil {
			return nil, err
		}
		times := res.BestTimes()
		best := minFinite(sortedSystemTimes(times))
		row := Table3Row{Scenario: sc, Scaled: map[string]float64{}}
		for _, name := range SystemNames {
			if math.IsInf(times[name], 1) {
				row.Scaled[name] = math.Inf(1)
			} else {
				row.Scaled[name] = times[name] / best
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 prints the table in the paper's layout, with the per-system
// averages appended.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Scenario")
	for _, n := range SystemNames {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.Scenario.Label())
		for _, n := range SystemNames {
			v := row.Scaled[n]
			if math.IsInf(v, 1) {
				fmt.Fprintf(&b, "%12s", "—")
				continue
			}
			fmt.Fprintf(&b, "%12.2f", v)
			sums[n] += v
			counts[n]++
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s", "Average")
	for _, n := range SystemNames {
		if counts[n] == 0 {
			fmt.Fprintf(&b, "%12s", "—")
			continue
		}
		fmt.Fprintf(&b, "%12.2f", sums[n]/float64(counts[n]))
	}
	b.WriteByte('\n')
	return b.String()
}

// Table4Row is one row of Table 4: configurations evaluated per baseline on
// Postgres TPC-H.
type Table4Row struct {
	Scenario Scenario
	Counts   map[string]float64
}

// Table4 reproduces paper Table 4 (experiment E2).
func Table4(r *Runner, seed int64, trials int) ([]Table4Row, error) {
	scs := []Scenario{
		{Benchmark: "tpch-1", Flavor: engine.Postgres, InitialIndexes: true, Trials: trials, Seed: seed},
		{Benchmark: "tpch-1", Flavor: engine.Postgres, InitialIndexes: false, Trials: trials, Seed: seed},
		{Benchmark: "tpch-10", Flavor: engine.Postgres, InitialIndexes: true, Trials: trials, Seed: seed},
		{Benchmark: "tpch-10", Flavor: engine.Postgres, InitialIndexes: false, Trials: trials, Seed: seed},
	}
	var rows []Table4Row
	for _, sc := range scs {
		res, err := r.Run(sc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{Scenario: sc, Counts: res.EvalCounts()})
	}
	return rows, nil
}

// RenderTable4 prints Table 4.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Scenario")
	for _, n := range SystemNames {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.Scenario.Label())
		for _, n := range SystemNames {
			fmt.Fprintf(&b, "%12.0f", row.Counts[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table5 reproduces paper Table 5 (experiment E3): the best λ-Tune
// configuration for TPC-H 1GB on Postgres, parameters categorized and
// indexes listed per table.
type Table5 struct {
	Params  []Table5Param
	Indexes map[string][]string // table → indexed columns
	// WorkloadSeconds is the tuned full-workload time.
	WorkloadSeconds float64
	// DefaultSeconds is the untuned time.
	DefaultSeconds float64
}

// Table5Param is one parameter row.
type Table5Param struct {
	Name     string
	Category string
	Value    string
}

// BuildTable5 runs λ-Tune on TPC-H 1GB / Postgres without initial indexes
// and reports the winning configuration.
func BuildTable5(seed int64) (*Table5, error) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		return nil, err
	}
	defaultTime := db.WorkloadSeconds(w.Queries)
	lt := &LambdaTune{Seed: seed}
	res, err := lt.RunLambdaTune(db, w.Queries)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, fmt.Errorf("bench: λ-Tune found no configuration")
	}
	out := &Table5{Indexes: map[string][]string{}, WorkloadSeconds: res.BestTime, DefaultSeconds: defaultTime}
	pc := engine.Params(engine.Postgres)
	names := make([]string, 0, len(res.Best.Params))
	for n := range res.Best.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		def, _ := pc.Lookup(n)
		out.Params = append(out.Params, Table5Param{Name: n, Category: def.Category.String(), Value: res.Best.Params[n]})
	}
	for _, ix := range res.Best.Indexes {
		out.Indexes[ix.Table] = append(out.Indexes[ix.Table], ix.ColumnList()...)
	}
	for t := range out.Indexes {
		sort.Strings(out.Indexes[t])
	}
	return out, nil
}

// RenderTable5 prints Table 5.
func RenderTable5(t5 *Table5) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-12s %s\n", "Parameter", "Category", "Value")
	for _, p := range t5.Params {
		fmt.Fprintf(&b, "%-34s %-12s %s\n", p.Name, p.Category, p.Value)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s %s\n", "Table", "Indexed Columns")
	tables := make([]string, 0, len(t5.Indexes))
	for t := range t5.Indexes {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(&b, "%-14s %s\n", t, strings.Join(t5.Indexes[t], ", "))
	}
	fmt.Fprintf(&b, "\nworkload: %.1fs tuned vs %.1fs default (%.1fx)\n",
		t5.WorkloadSeconds, t5.DefaultSeconds, t5.DefaultSeconds/t5.WorkloadSeconds)
	return b.String()
}
