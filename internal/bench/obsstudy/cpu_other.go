//go:build !unix

package obsstudy

// cpuSeconds is unavailable off unix; phases report zero CPU time and the
// study falls back to wall-clock-only reporting.
func cpuSeconds() float64 { return 0 }
