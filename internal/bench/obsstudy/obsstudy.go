// Package obsstudy implements E17 — the observability-overhead study.
//
// The telemetry plane this repo grew around the job daemon — per-job span
// tracing, the shared metrics registry, structured slog logging — is
// contractually passive: it may cost host wall time but can never move a
// virtual-clock outcome. E17 prices that contract on the E16 configuration:
// the same skewed thousand-job stream runs twice on a current-lifecycle
// shared Runtime, once with every telemetry sink disconnected and once with
// all of them live (a metrics registry on the runtime, a per-job Trace, and
// an Info-level JSON slog logger), after an isolated baseline pass that pins
// the authoritative result for every distinct seed.
//
// The study pins three properties:
//
//  1. Determinism: every traced job's result is byte-identical to its
//     isolated run — telemetry observes the run, it never steers it.
//  2. Overhead: full telemetry costs < 5% wall time against the dark phase
//     (the acceptance bar for the observability plane), estimated as the
//     median over interleaved off/on pair ratios so host-throughput drift
//     and one-off noise bursts cancel instead of landing on one condition.
//  3. Integrity: the sampled traces (the daemon's own self-check cadence)
//     pass the span-schema validator, and
//     the registry actually accumulated the runtime_* / slots_* series the
//     daemon exposes on /metrics — the overhead being priced is real work.
//
// Like jobstudy (E16), the package lives beside package bench because it
// exercises the public Runtime API and importing the root package from
// internal/bench would be a cycle.
package obsstudy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lambdatune"
	"lambdatune/internal/obs"
)

// Jobs is the stream length of the full E17 study — the E16 configuration.
const Jobs = 1000

// Workers matches the E16 worker pool.
const Workers = 16

// evalSlots matches the E16 admission bound, so slot waits (and therefore the
// slots_queue_wait_seconds series the telemetry phase pays for) are real.
const evalSlots = 8

// memoCapacity matches E16: the stream overflows the memos, so the telemetry
// phase also pays for eviction accounting.
const memoCapacity = 256

const (
	hotTenant   = "hot"
	warmTenants = 8
	hotShare    = 0.5
	warmShare   = 0.3
)

// validateEvery samples the per-job trace schema check: the first traced job
// and every Nth after export their records through ValidateRecords. It
// matches the daemon's sampled post-completion self-check, so the telemetry
// phase prices exactly the deployment's per-job cost.
const validateEvery = 16

// job is one submission in the stream.
type job struct {
	tenant string
	seed   int64
}

// Phase aggregates one shared pass over the stream.
type Phase struct {
	// Telemetry is "off" (every sink disconnected) or "on" (registry +
	// per-job trace + Info-level JSON logging).
	Telemetry   string  `json:"telemetry"`
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the process CPU time (user + system) the phase consumed
	// — the interference-robust complement to wall time on a shared host
	// (0 where getrusage is unavailable).
	CPUSeconds float64 `json:"cpu_seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Ms      float64 `json:"p50_job_ms"`
	P99Ms      float64 `json:"p99_job_ms"`
	// Identical reports every job's result matched its isolated run.
	Identical bool `json:"identical_to_isolated"`
	// TotalSpans / TracesChecked / TracesValid cover the captured traces
	// (zero / zero / true for the dark phase, which captures none).
	// TracesChecked counts the sampled schema validations (see validateEvery).
	TotalSpans    int  `json:"total_spans"`
	TracesChecked int  `json:"traces_checked"`
	TracesValid   bool `json:"traces_valid"`
	// MetricsSeries is how many distinct series the registry accumulated by
	// the end of the phase (0 for the dark phase).
	MetricsSeries int `json:"metrics_series"`
}

// Study is the E17 artifact.
type Study struct {
	Benchmark string `json:"benchmark"`
	Jobs      int    `json:"jobs"`
	Workers   int    `json:"workers"`
	EvalSlots int    `json:"eval_slots"`
	Seed      int64  `json:"seed"`
	HotJobs   int    `json:"hot_jobs"`
	WarmJobs  int    `json:"warm_jobs"`
	ColdJobs  int    `json:"cold_jobs"`
	// IsolatedRuns is how many distinct seeds the baseline pass covered.
	IsolatedRuns        int     `json:"isolated_runs"`
	IsolatedWallSeconds float64 `json:"isolated_wall_seconds"`
	Off                 Phase   `json:"telemetry_off"`
	On                  Phase   `json:"telemetry_on"`
	// OffRepWallSeconds / OnRepWallSeconds record every interleaved
	// repetition's wall time (the phases above keep the fastest), so the
	// artifact shows the host-noise spread the estimator has to absorb.
	OffRepWallSeconds []float64 `json:"off_rep_wall_seconds"`
	OnRepWallSeconds  []float64 `json:"on_rep_wall_seconds"`
	// PairOverheadPcts is the per-pair wall overhead (on/off − 1, as a
	// percent) for each interleaved repetition pair, in rep order;
	// PairCPUOverheadPcts is the same ratio over process CPU time.
	PairOverheadPcts    []float64 `json:"pair_overhead_pcts"`
	PairCPUOverheadPcts []float64 `json:"pair_cpu_overhead_pcts"`
	// OverheadPct is the wall-time cost of full telemetry: the median of
	// the per-pair ratios. Each pair's two runs are adjacent in time, so
	// the ratio cancels the slow host-throughput drift a shared box shows
	// over a minutes-long study, and the median discards the odd pair that
	// lands on a noise burst — both failure modes a ratio of phase
	// minimums is exposed to (the floors can come from opposite ends of
	// the drift). Negative means telemetry measured faster (noise below
	// the measurement floor).
	OverheadPct float64 `json:"overhead_pct"`
	// The CI smoke booleans.
	OverheadWithin5Pct  bool `json:"overhead_within_5pct"`
	IdenticalToIsolated bool `json:"identical_to_isolated"`
	TracesValid         bool `json:"traces_valid"`
	MetricsPresent      bool `json:"metrics_present"`
}

// resultKey condenses a run's deterministic outcome for equality checks —
// the same fields E15/E16 pin.
func resultKey(r *lambdatune.Result) string {
	return fmt.Sprintf("best=%q bestSeconds=%.17g defaultSeconds=%.17g tuningSeconds=%.17g candidates=%d",
		r.BestScript, r.BestSeconds, r.DefaultSeconds, r.TuningSeconds, r.Candidates)
}

func jobOptions(seed int64, tenant string) lambdatune.Options {
	opts := lambdatune.DefaultOptions()
	opts.Seed = seed
	opts.Evaluation.Parallelism = 2
	opts.Tenant = tenant
	return opts
}

// stream builds the same deterministic job mix as E16: hot, warm, and cold
// jobs interleaved by a seeded shuffle.
func stream(seed int64, jobs int) (out []job, hot, warm, cold int) {
	hot = int(float64(jobs) * hotShare)
	warm = int(float64(jobs) * warmShare)
	cold = jobs - hot - warm
	for i := 0; i < hot; i++ {
		out = append(out, job{tenant: hotTenant, seed: seed})
	}
	for i := 0; i < warm; i++ {
		t := i % warmTenants
		out = append(out, job{tenant: fmt.Sprintf("warm-%d", t), seed: seed + 1 + int64(t)})
	}
	for i := 0; i < cold; i++ {
		out = append(out, job{tenant: fmt.Sprintf("cold-%d", i), seed: seed + 1000 + int64(i)})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, hot, warm, cold
}

// runShared executes the stream on one current-lifecycle shared Runtime. With
// telemetry on, the runtime carries a metrics registry and an Info-level JSON
// logger (sunk into io.Discard so the study prices the telemetry plane, not
// the host's stderr), and every job records a full span trace.
func runShared(benchmark string, jobs []job, isolated map[int64]string, telemetry bool) (Phase, error) {
	p := Phase{Telemetry: "off", TracesValid: true}
	ro := lambdatune.RuntimeOptions{
		EvalSlots:     evalSlots,
		TenantWeights: map[string]int{hotTenant: 4},
		MemoCapacity:  memoCapacity,
	}
	var metrics *lambdatune.Metrics
	if telemetry {
		p.Telemetry = "on"
		metrics = lambdatune.NewMetrics()
		ro.Metrics = metrics
		ro.Logger = slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	rt := lambdatune.NewRuntime(ro)
	defer rt.Close()

	type outcome struct {
		key   string
		ms    float64
		err   error
		match bool
		spans int
	}
	results := make([]outcome, len(jobs))
	work := make(chan int)
	var wg sync.WaitGroup
	var checkTick, validated atomic.Uint64
	cpu0 := cpuSeconds()
	start := time.Now()
	for w := 0; w < Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				j := jobs[i]
				jobStart := time.Now()
				db, wl, err := rt.Benchmark(benchmark, lambdatune.Postgres)
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				opts := jobOptions(j.seed, j.tenant)
				var trace *lambdatune.Trace
				if telemetry {
					trace = lambdatune.NewTrace()
					opts.Observability.Trace = trace
				}
				res, err := rt.TuneContext(context.Background(), db, wl,
					lambdatune.NewSimulatedLLM(j.seed), opts)
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				out := outcome{
					key:   resultKey(res),
					match: resultKey(res) == isolated[j.seed],
				}
				// Mirror the daemon's trace lifecycle exactly: the handle dies
				// with the job (the manager retains only a bounded FIFO, and
				// holding every trace to phase end would price an ever-growing
				// live heap no deployment holds), and the schema self-check is
				// sampled — the first job and every validateEvery-th after
				// export and validate, matching the manager's sampled
				// post-completion check (schema breaks are systematic, so a
				// sample catches them without a full export per job).
				if trace != nil {
					out.spans = trace.Tracer().Len()
					if n := checkTick.Add(1); n == 1 || n%validateEvery == 0 {
						recs := trace.Tracer().Records()
						validated.Add(1)
						if err := obs.ValidateRecords(recs); err != nil {
							out.err = fmt.Errorf("invalid trace: %w", err)
						}
					}
				}
				out.ms = time.Since(jobStart).Seconds() * 1000
				results[i] = out
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	p.WallSeconds = time.Since(start).Seconds()
	p.CPUSeconds = cpuSeconds() - cpu0
	if p.WallSeconds > 0 {
		p.JobsPerSec = float64(len(jobs)) / p.WallSeconds
	}

	p.Identical = true
	lat := make([]float64, 0, len(jobs))
	for i, r := range results {
		if r.err != nil {
			if strings.Contains(r.err.Error(), "invalid trace") {
				p.TracesValid = false
			}
			return p, fmt.Errorf("telemetry-%s job %d (tenant %s): %w", p.Telemetry, i, jobs[i].tenant, r.err)
		}
		if !r.match {
			p.Identical = false
		}
		p.TotalSpans += r.spans
		lat = append(lat, r.ms)
	}
	p.TracesChecked = int(validated.Load())
	sort.Float64s(lat)
	p.P50Ms = percentile(lat, 0.50)
	p.P99Ms = percentile(lat, 0.99)
	if metrics != nil {
		p.MetricsSeries = len(metrics.Snapshot())
	}
	return p, nil
}

// phaseReps is the number of interleaved off/on pairs. The pairs alternate
// within-pair order (off/on, on/off, ...) rather than running in blocks:
// host throughput drifts over a minutes-long study, and both a blocked
// order and a fixed within-pair order would charge that drift
// systematically to one condition. Correctness is required of every rep;
// the headline overhead is the median of the per-pair ratios (see
// Study.OverheadPct), an odd count so the median is a real pair.
const phaseReps = 5

// warmupJobs is the length of the unmeasured warmup pass each condition
// runs before the measured pairs (enough jobs to reach the steady-state
// heap at full worker concurrency, a fraction of a full pass's cost).
const warmupJobs = 200

// median returns the middle value of xs (mean of the two middles for an
// even count, 0 for none).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// better keeps the fastest correct repetition of a phase.
func better(best, p Phase, first bool) Phase {
	if first || p.WallSeconds < best.WallSeconds {
		return p
	}
	return best
}

// pairOrder alternates which condition leads each interleaved pair: even
// reps run dark first, odd reps run telemetry first.
func pairOrder(rep int) [2]bool {
	if rep%2 == 0 {
		return [2]bool{false, true}
	}
	return [2]bool{true, false}
}

// percentile reads the q-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes the study: an isolated baseline per distinct seed, then the
// stream with telemetry dark, then with every sink live.
func Run(seed int64, jobs int) (*Study, error) {
	s := &Study{Benchmark: "job", Jobs: jobs, Workers: Workers, EvalSlots: evalSlots, Seed: seed}
	js, hot, warm, cold := stream(seed, jobs)
	s.HotJobs, s.WarmJobs, s.ColdJobs = hot, warm, cold

	// Phase 1: isolated baseline — one standalone run per distinct seed pins
	// the authoritative result for every job sharing it.
	isolated := make(map[int64]string)
	order := make([]int64, 0)
	for _, j := range js {
		if _, ok := isolated[j.seed]; !ok {
			isolated[j.seed] = ""
			order = append(order, j.seed)
		}
	}
	sort.Slice(order, func(i, k int) bool { return order[i] < order[k] })
	start := time.Now()
	for _, sd := range order {
		db, w, err := lambdatune.Benchmark(s.Benchmark, lambdatune.Postgres)
		if err != nil {
			return nil, err
		}
		res, err := db.Tune(w, lambdatune.NewSimulatedLLM(sd), jobOptions(sd, ""))
		if err != nil {
			return nil, fmt.Errorf("isolated seed %d: %w", sd, err)
		}
		isolated[sd] = resultKey(res)
	}
	s.IsolatedRuns = len(order)
	s.IsolatedWallSeconds = time.Since(start).Seconds()

	// Warmup: one short unmeasured pass per condition. The first telemetry
	// pass in a fresh process grows the heap to the 16-worker traced live
	// set, and charging that one-time growth to the first measured pair
	// skews it by far more than the effect being measured.
	for _, telemetry := range []bool{false, true} {
		warm := js
		if len(warm) > warmupJobs {
			warm = warm[:warmupJobs]
		}
		if _, err := runShared(s.Benchmark, warm, isolated, telemetry); err != nil {
			return nil, err
		}
	}

	// Phases 2+3: telemetry dark (the cost floor) and every sink live, as
	// interleaved pairs with alternating within-pair order; each phase
	// reports its fastest correct rep. A rep that breaks determinism is
	// surfaced immediately.
	broke := false
	for r := 0; r < phaseReps && !broke; r++ {
		var offWall, onWall, offCPU, onCPU float64
		for _, telemetry := range pairOrder(r) {
			runtime.GC()
			p, err := runShared(s.Benchmark, js, isolated, telemetry)
			if err != nil {
				return nil, err
			}
			if telemetry {
				onWall, onCPU = p.WallSeconds, p.CPUSeconds
				s.On = better(s.On, p, r == 0)
				s.OnRepWallSeconds = append(s.OnRepWallSeconds, p.WallSeconds)
				if !p.Identical {
					s.On = p
				}
			} else {
				offWall, offCPU = p.WallSeconds, p.CPUSeconds
				s.Off = better(s.Off, p, r == 0)
				s.OffRepWallSeconds = append(s.OffRepWallSeconds, p.WallSeconds)
				if !p.Identical {
					s.Off = p
				}
			}
			if !p.Identical {
				broke = true
				break
			}
		}
		if !broke && offWall > 0 {
			s.PairOverheadPcts = append(s.PairOverheadPcts, 100*(onWall/offWall-1))
		}
		if !broke && offCPU > 0 {
			s.PairCPUOverheadPcts = append(s.PairCPUOverheadPcts, 100*(onCPU/offCPU-1))
		}
	}

	if len(s.PairOverheadPcts) > 0 {
		s.OverheadPct = median(s.PairOverheadPcts)
	} else if s.Off.JobsPerSec > 0 {
		s.OverheadPct = 100 * (s.Off.JobsPerSec - s.On.JobsPerSec) / s.Off.JobsPerSec
	}
	s.OverheadWithin5Pct = s.OverheadPct < 5
	s.IdenticalToIsolated = s.Off.Identical && s.On.Identical
	s.TracesValid = s.On.TracesValid
	s.MetricsPresent = s.On.MetricsSeries > 0
	return s, nil
}

// Render prints the study as a table.
func Render(s *Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17 observability overhead, %d × %s / Postgres (hot %d / warm %d / cold %d), %d workers, %d eval slots, seed %d\n",
		s.Jobs, s.Benchmark, s.HotJobs, s.WarmJobs, s.ColdJobs, s.Workers, s.EvalSlots, s.Seed)
	fmt.Fprintf(&b, "isolated baseline: %d distinct seeds in %.2fs\n", s.IsolatedRuns, s.IsolatedWallSeconds)
	fmt.Fprintf(&b, "%-10s %8s %8s %9s %8s %8s %9s %8s %9s\n",
		"telemetry", "wall_s", "cpu_s", "jobs/s", "p50_ms", "p99_ms", "spans", "series", "identical")
	for _, p := range []Phase{s.Off, s.On} {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %9.1f %8.2f %8.2f %9d %8d %9v\n",
			p.Telemetry, p.WallSeconds, p.CPUSeconds, p.JobsPerSec, p.P50Ms, p.P99Ms,
			p.TotalSpans, p.MetricsSeries, p.Identical)
	}
	fmt.Fprintf(&b, "rep walls (s): off %s | on %s\n",
		wallList(s.OffRepWallSeconds), wallList(s.OnRepWallSeconds))
	fmt.Fprintf(&b, "pair overheads (%%): wall %s | cpu %s\n",
		wallList(s.PairOverheadPcts), wallList(s.PairCPUOverheadPcts))
	fmt.Fprintf(&b, "overhead: %.2f%% wall (median of pairs; bar < 5%%); traces valid: %v (%d checked); metrics series: %d\n",
		s.OverheadPct, s.TracesValid, s.On.TracesChecked, s.On.MetricsSeries)
	return b.String()
}

// wallList renders rep wall times compactly.
func wallList(ws []float64) string {
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = fmt.Sprintf("%.2f", w)
	}
	return strings.Join(parts, " ")
}

// ExportJSON writes the study as the BENCH_obs.json artifact checked by CI
// (`make bench-obs`).
func ExportJSON(path string, s *Study) error {
	doc := struct {
		Description string `json:"description"`
		Collected   string `json:"collected"`
		Study       *Study `json:"study"`
	}{
		Description: "E17 — observability overhead at daemon scale: the E16 thousand-job stream on one shared Runtime with every telemetry sink dark vs live (metrics registry, per-job span traces, Info-level JSON slog), with an isolated baseline pinning every per-job result. Regenerate with `make bench-obs`.",
		Collected:   time.Now().UTC().Format("2006-01-02"),
		Study:       s,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
