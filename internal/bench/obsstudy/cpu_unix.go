//go:build unix

package obsstudy

import "syscall"

// cpuSeconds reads the process's cumulative CPU time (user + system) from
// getrusage. On a multi-tenant measurement host, wall time includes
// whatever the neighbours steal; process CPU time is the
// interference-robust view of what a phase actually computed, so the
// artifact records both.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(t syscall.Timeval) float64 { return float64(t.Sec) + float64(t.Usec)/1e6 }
	return sec(ru.Utime) + sec(ru.Stime)
}
