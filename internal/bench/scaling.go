package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
)

// E13 — parallel-evaluation scaling. The paper's testbed evaluates candidate
// configurations on one DBMS instance; with N instances the rounds of
// Algorithm 2 parallelize (DESIGN.md §7). This experiment pins the two
// properties that make the parallel evaluator trustworthy:
//
//  1. Invariance: every worker count picks the same best configuration with
//     the same speedup (virtual tuning cost varies — rounds cost the slowest
//     replica's elapsed time instead of the sequential early-break path).
//  2. Scaling: the real wall-clock time of the evaluation phase drops as
//     workers are added (each simulated query execution is given a real CPU
//     cost via engine.SetExecHook, so there is actual work to parallelize).

// ScalingRow is one worker count of the sweep.
type ScalingRow struct {
	Workers int
	// BestID / Speedup / BestTime must be identical across all rows
	// (parallelism-invariance).
	BestID        string
	Speedup       float64
	BestTime      float64
	TuningSeconds float64
	// EvalWallSeconds is the real wall-clock time of the selection phase —
	// the quantity that scales with Workers.
	EvalWallSeconds float64
}

// ScalingWorkerCounts is the sweep grid.
var ScalingWorkerCounts = []int{1, 2, 4, 8}

// spin busy-waits for roughly d, attaching a real CPU cost to a simulated
// query execution. A sleep would not work: sleeping goroutines overlap even
// on one core, so wall-clock time would "scale" without any real parallelism.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// ScalingTrial runs one tuning run on TPC-H 1GB / Postgres with the given
// worker count, burning burn of real CPU per query execution.
func ScalingTrial(seed int64, workers int, burn time.Duration) (ScalingRow, error) {
	row := ScalingRow{Workers: workers}
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		return row, err
	}
	defaultTime := db.WorkloadSeconds(w.Queries)
	if burn > 0 {
		if hk, ok := db.(backend.Hookable); ok {
			hk.SetExecHook(func(q *engine.Query, seconds float64) { spin(burn) })
		}
	}

	opts := tuner.DefaultOptions()
	opts.Seed = seed
	opts.Selector.Parallelism = workers
	res, err := tuner.New(db, llm.NewSimClient(seed), opts).Tune(context.Background(), w.Queries)
	if err != nil {
		return row, err
	}
	if res.Best != nil {
		row.BestID = res.Best.ID
	}
	row.BestTime = res.BestTime
	row.TuningSeconds = res.TuningSeconds
	row.EvalWallSeconds = res.EvalWallSeconds
	if res.BestTime > 0 {
		row.Speedup = defaultTime / res.BestTime
	}
	return row, nil
}

// Scaling sweeps the worker counts (E13). Every row is an independent run on
// a fresh database with the same seed; selection results must agree.
func Scaling(seed int64, burn time.Duration) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, n := range ScalingWorkerCounts {
		row, err := ScalingTrial(seed, n, burn)
		if err != nil {
			return nil, fmt.Errorf("scaling workers=%d: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling prints the sweep as a table.
func RenderScaling(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("E13 parallel-evaluation scaling, TPC-H 1GB / Postgres\n")
	fmt.Fprintf(&b, "%8s %10s %9s %9s %10s %9s\n",
		"workers", "best", "speedup", "tuning_s", "evalwall_s", "scale")
	var base float64
	for _, r := range rows {
		if base == 0 {
			base = r.EvalWallSeconds
		}
		scale := 0.0
		if r.EvalWallSeconds > 0 {
			scale = base / r.EvalWallSeconds
		}
		fmt.Fprintf(&b, "%8d %10s %8.2fx %9.1f %10.2f %8.2fx\n",
			r.Workers, r.BestID, r.Speedup, r.TuningSeconds, r.EvalWallSeconds, scale)
	}
	return b.String()
}
