package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"lambdatune/internal/backend"
	"lambdatune/internal/backend/instrumented"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
)

// E14 — racing (successive-halving) approximate evaluation. Full evaluation
// pays for every candidate on the whole workload each selection round; the
// racing strategy evaluates candidates on growing DP-schedule prefixes,
// eliminates the surrogate-dominated half per rung, and reserves the exact
// Algorithm 2 pass for the final survivors. This study pins the two
// properties that make racing worth shipping:
//
//  1. Cost: total evaluated query-seconds (the virtual-clock time charged by
//     RunQuery across the whole tuning run) drop by ≥ 2x at k=20 candidates.
//  2. Quality: the racing-selected configuration's speedup stays within 5%
//     of the full-evaluation configuration's speedup — the final pass is
//     exact, so the reported best time is a real measurement either way.

// RaceSamples is k, the candidate count of the study (acceptance criterion
// fixes k=20).
const RaceSamples = 20

// RaceRow is one evaluation strategy's cost/quality summary.
type RaceRow struct {
	Strategy string `json:"strategy"`
	BestID   string `json:"best"`
	// BestTime is the winner's exact full-workload time in simulated
	// seconds (both strategies report an exact measurement).
	BestTime float64 `json:"best_time_s"`
	// Speedup is default-config workload time / BestTime.
	Speedup float64 `json:"speedup"`
	// EvaluatedQuerySeconds is the total virtual query-execution time the
	// strategy spent evaluating candidates: the RunQuery virtual-clock sum
	// over the whole tuning run, measured by the instrumented backend.
	EvaluatedQuerySeconds float64 `json:"evaluated_query_seconds"`
	// QueryRuns counts RunQuery calls (timed executions, including
	// timed-out prefixes).
	QueryRuns uint64 `json:"query_runs"`
	// TuningSeconds is the end-to-end virtual tuning cost.
	TuningSeconds float64 `json:"tuning_s"`
}

// RaceStudy compares full vs racing evaluation at the same candidate count,
// seed, and workload.
type RaceStudy struct {
	Benchmark string  `json:"benchmark"`
	Samples   int     `json:"candidates"`
	Seed      int64   `json:"seed"`
	Full      RaceRow `json:"full"`
	Racing    RaceRow `json:"racing"`
	// Reduction is Full.EvaluatedQuerySeconds / Racing.EvaluatedQuerySeconds
	// — how much evaluation work racing saves (≥ 2x is the acceptance bar).
	Reduction float64 `json:"evaluated_seconds_reduction"`
	// SpeedupDelta is |Racing.Speedup − Full.Speedup| / Full.Speedup
	// (≤ 0.05 is the acceptance bar).
	SpeedupDelta float64 `json:"speedup_delta"`
}

// RaceTrial runs one tuning run on TPC-H 1GB / Postgres with the given
// evaluation strategy and candidate count, measuring evaluated
// query-seconds through the instrumented backend decorator.
func RaceTrial(seed int64, samples int, strategy selector.Strategy) (RaceRow, error) {
	row := RaceRow{Strategy: "full"}
	if strategy == selector.Racing {
		row.Strategy = "racing"
	}
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		return row, err
	}
	// Measure the default-config baseline on the raw backend so the
	// instrumented counters below cover tuning work only.
	defaultTime := db.WorkloadSeconds(w.Queries)
	idb := instrumented.Wrap(db)

	opts := tuner.DefaultOptions()
	opts.Seed = seed
	opts.Samples = samples
	opts.Selector.Strategy = strategy
	res, err := tuner.New(idb, llm.NewSimClient(seed), opts).Tune(context.Background(), w.Queries)
	if err != nil {
		return row, err
	}
	stats := idb.(backend.Instrumented).BackendStats()
	row.EvaluatedQuerySeconds = stats.RunQuery.Virtual.Sum
	row.QueryRuns = stats.RunQuery.Calls
	if res.Best != nil {
		row.BestID = res.Best.ID
	}
	row.BestTime = res.BestTime
	row.TuningSeconds = res.TuningSeconds
	if res.BestTime > 0 {
		row.Speedup = defaultTime / res.BestTime
	}
	return row, nil
}

// Race runs the E14 study: full vs racing evaluation at k=RaceSamples
// candidates, same seed, independent fresh databases.
func Race(seed int64) (*RaceStudy, error) {
	s := &RaceStudy{Benchmark: "tpch-1", Samples: RaceSamples, Seed: seed}
	var err error
	if s.Full, err = RaceTrial(seed, RaceSamples, selector.FullEvaluation); err != nil {
		return nil, fmt.Errorf("race full: %w", err)
	}
	if s.Racing, err = RaceTrial(seed, RaceSamples, selector.Racing); err != nil {
		return nil, fmt.Errorf("race racing: %w", err)
	}
	if s.Racing.EvaluatedQuerySeconds > 0 {
		s.Reduction = s.Full.EvaluatedQuerySeconds / s.Racing.EvaluatedQuerySeconds
	}
	if s.Full.Speedup > 0 {
		s.SpeedupDelta = math.Abs(s.Racing.Speedup-s.Full.Speedup) / s.Full.Speedup
	}
	return s, nil
}

// RenderRace prints the study as a table.
func RenderRace(s *RaceStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 racing vs full evaluation, %s / Postgres, k=%d candidates, seed %d\n",
		s.Benchmark, s.Samples, s.Seed)
	fmt.Fprintf(&b, "%8s %10s %9s %11s %8s %9s\n",
		"strategy", "best", "speedup", "evalqsec", "queries", "tuning_s")
	for _, r := range []RaceRow{s.Full, s.Racing} {
		fmt.Fprintf(&b, "%8s %10s %8.2fx %11.1f %8d %9.1f\n",
			r.Strategy, r.BestID, r.Speedup, r.EvaluatedQuerySeconds, r.QueryRuns, r.TuningSeconds)
	}
	fmt.Fprintf(&b, "evaluated query-seconds reduction: %.2fx   speedup delta: %.2f%%\n",
		s.Reduction, 100*s.SpeedupDelta)
	return b.String()
}

// ExportRaceJSON writes the study as BENCH_race.json-style machine-readable
// JSON (the `make bench-race` artifact checked by CI).
func ExportRaceJSON(path string, s *RaceStudy) error {
	doc := struct {
		Description string     `json:"description"`
		Collected   string     `json:"collected"`
		Study       *RaceStudy `json:"study"`
	}{
		Description: "E14 — evaluation cost of full vs racing (successive-halving) candidate evaluation. Simulated virtual-clock seconds on the deterministic substrate; the racing final pass is exact, so both best times are real measurements. Regenerate with `make bench-race`.",
		Collected:   time.Now().UTC().Format("2006-01-02"),
		Study:       s,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
