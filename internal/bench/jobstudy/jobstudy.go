// Package jobstudy implements E16 — the job-throughput study.
//
// A daemon-scale stream of ~1000 short tuning jobs runs across a skewed
// tenant population: one hot tenant re-submitting the same job, a band of
// warm tenants each repeating their own seed, and a long tail of cold
// tenants whose jobs are all distinct. The same stream runs twice on a
// shared Runtime — once under the legacy cache lifecycle (clear-on-overflow
// memos, drop-oldest plan-cache layers, per-admission namespace digests) and
// once under the current lifecycle (sharded segmented-LRU memos, recency
// compaction, cached admission digests) — after an isolated baseline pass
// that records the authoritative result for every distinct seed.
//
// The study pins three properties:
//
//  1. Determinism: every job's result under either shared lifecycle is
//     byte-identical to its isolated run. Lifecycles move host wall time
//     only; virtual-clock outcomes never depend on co-tenancy.
//  2. Throughput: the current lifecycle sustains materially more jobs/sec
//     than the legacy one on the same stream (the acceptance bar is 1.5x),
//     because cold-tenant churn no longer flushes the hot tenant's memo
//     entries and admission no longer rehashes the workload per job.
//  3. Lifecycle health under churn: the memo hit rate stays strictly above
//     the clear-on-overflow baseline, and evictions are non-zero — the
//     stream genuinely overflows the caches rather than fitting inside them.
//
// Like runtimestudy (E15), the package lives beside package bench rather
// than inside it because it exercises the public Runtime API and importing
// the root package from internal/bench would be a cycle.
package jobstudy

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lambdatune"
)

// Jobs is the stream length of the full E16 study.
const Jobs = 1000

// Workers is how many jobs run concurrently in the shared phases — a stand-in
// for the lambdatuned worker pool.
const Workers = 16

// evalSlots bounds concurrent evaluation workers across the whole runtime in
// both shared phases, so the weighted admission gate sees real contention.
const evalSlots = 8

// memoCapacity bounds each namespace's schedule memo in both shared phases.
// It is sized deliberately below the stream's cross-job working set (the cold
// tail alone creates more distinct entries than this): the study measures the
// lifecycles under overflow, where clear-on-overflow keeps discarding the hot
// tenant's entries and the segmented LRU keeps them protected. Both phases
// run the same bound, so the comparison isolates the eviction policy.
const memoCapacity = 256

const (
	hotTenant   = "hot"
	warmTenants = 8
	// hotShare/warmShare split the stream: 50% hot, 30% warm, the remaining
	// 20% cold singletons. Cold jobs exist to churn the caches; hot and warm
	// jobs measure how well each lifecycle protects reusable entries.
	hotShare  = 0.5
	warmShare = 0.3
)

// job is one submission in the stream.
type job struct {
	tenant string
	seed   int64
}

// Phase aggregates one shared pass over the stream.
type Phase struct {
	Lifecycle   string  `json:"lifecycle"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// P50Ms / P99Ms are per-job wall latencies (admission to result).
	P50Ms float64 `json:"p50_job_ms"`
	P99Ms float64 `json:"p99_job_ms"`
	// Memo counters from RuntimeStats at the end of the phase.
	MemoLookups      uint64  `json:"memo_lookups"`
	MemoHits         uint64  `json:"memo_hits"`
	MemoCrossJobHits uint64  `json:"memo_cross_job_hits"`
	MemoEvictions    uint64  `json:"memo_evictions"`
	MemoHitRate      float64 `json:"memo_hit_rate"`
	MemoHitRetention float64 `json:"memo_hit_retention"`
	// Plan-cache counters aggregated across the phase's template and every
	// job snapshot (the counters are shared, so any job's view is the total).
	PlanLookups   uint64  `json:"plan_lookups"`
	PlanHitRate   float64 `json:"plan_hit_rate"`
	PlanEvictions uint64  `json:"plan_evictions"`
	// Identical reports every job's result matched its isolated run.
	Identical bool `json:"identical_to_isolated"`
}

// Study is the E16 artifact.
type Study struct {
	Benchmark string `json:"benchmark"`
	Jobs      int    `json:"jobs"`
	Workers   int    `json:"workers"`
	EvalSlots int    `json:"eval_slots"`
	Seed      int64  `json:"seed"`
	HotJobs   int    `json:"hot_jobs"`
	WarmJobs  int    `json:"warm_jobs"`
	ColdJobs  int    `json:"cold_jobs"`
	// IsolatedRuns is how many distinct seeds the baseline pass covered (one
	// isolated run pins the result for every job sharing that seed).
	IsolatedRuns        int     `json:"isolated_runs"`
	IsolatedWallSeconds float64 `json:"isolated_wall_seconds"`
	Legacy              Phase   `json:"legacy"`
	Current             Phase   `json:"current"`
	// Speedup is Current.JobsPerSec / Legacy.JobsPerSec.
	Speedup float64 `json:"jobs_per_sec_speedup"`
	// The CI smoke booleans.
	SpeedupAtLeast1_5   bool `json:"speedup_at_least_1_5"`
	HitRateImproved     bool `json:"hit_rate_improved"`
	EvictionsPositive   bool `json:"evictions_positive"`
	IdenticalToIsolated bool `json:"identical_to_isolated"`
}

// resultKey condenses a run's deterministic outcome for equality checks —
// the same fields E15 pins.
func resultKey(r *lambdatune.Result) string {
	return fmt.Sprintf("best=%q bestSeconds=%.17g defaultSeconds=%.17g tuningSeconds=%.17g candidates=%d",
		r.BestScript, r.BestSeconds, r.DefaultSeconds, r.TuningSeconds, r.Candidates)
}

func jobOptions(seed int64, tenant string) lambdatune.Options {
	opts := lambdatune.DefaultOptions()
	opts.Seed = seed
	opts.Evaluation.Parallelism = 2
	opts.Tenant = tenant
	return opts
}

// stream builds the deterministic job mix: hot, warm, and cold jobs
// interleaved by a seeded shuffle so tenants contend the way a live daemon's
// queue would, not in sorted batches.
func stream(seed int64, jobs int) (out []job, hot, warm, cold int) {
	hot = int(float64(jobs) * hotShare)
	warm = int(float64(jobs) * warmShare)
	cold = jobs - hot - warm
	for i := 0; i < hot; i++ {
		out = append(out, job{tenant: hotTenant, seed: seed})
	}
	for i := 0; i < warm; i++ {
		t := i % warmTenants
		out = append(out, job{tenant: fmt.Sprintf("warm-%d", t), seed: seed + 1 + int64(t)})
	}
	for i := 0; i < cold; i++ {
		out = append(out, job{tenant: fmt.Sprintf("cold-%d", i), seed: seed + 1000 + int64(i)})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, hot, warm, cold
}

// runShared executes the stream on one shared Runtime with the given
// lifecycle and returns the phase aggregate.
func runShared(benchmark string, jobs []job, isolated map[int64]string, legacy bool, weights map[string]int) (Phase, error) {
	p := Phase{Lifecycle: "current"}
	if legacy {
		p.Lifecycle = "legacy"
	}
	rt := lambdatune.NewRuntime(lambdatune.RuntimeOptions{
		EvalSlots:           evalSlots,
		TenantWeights:       weights,
		MemoCapacity:        memoCapacity,
		LegacyMemoLifecycle: legacy,
	})
	defer rt.Close()

	type outcome struct {
		key   string
		ms    float64
		tidx  int
		err   error
		match bool
	}
	results := make([]outcome, len(jobs))
	work := make(chan int)
	var (
		wg      sync.WaitGroup
		probeMu sync.Mutex
		probe   *lambdatune.Database
	)
	start := time.Now()
	for w := 0; w < Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				j := jobs[i]
				jobStart := time.Now()
				db, wl, err := rt.Benchmark(benchmark, lambdatune.Postgres)
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				probeMu.Lock()
				if probe == nil {
					probe = db // plan-cache counters are shared template-wide
				}
				probeMu.Unlock()
				res, err := rt.TuneContext(context.Background(), db, wl,
					lambdatune.NewSimulatedLLM(j.seed), jobOptions(j.seed, j.tenant))
				if err != nil {
					results[i] = outcome{err: err}
					continue
				}
				key := resultKey(res)
				results[i] = outcome{
					key:   key,
					ms:    time.Since(jobStart).Seconds() * 1000,
					match: key == isolated[j.seed],
				}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	p.WallSeconds = time.Since(start).Seconds()
	if p.WallSeconds > 0 {
		p.JobsPerSec = float64(len(jobs)) / p.WallSeconds
	}

	p.Identical = true
	lat := make([]float64, 0, len(jobs))
	for i, r := range results {
		if r.err != nil {
			return p, fmt.Errorf("%s job %d (tenant %s): %w", p.Lifecycle, i, jobs[i].tenant, r.err)
		}
		if !r.match {
			p.Identical = false
		}
		lat = append(lat, r.ms)
	}
	sort.Float64s(lat)
	p.P50Ms = percentile(lat, 0.50)
	p.P99Ms = percentile(lat, 0.99)

	st := rt.Stats()
	p.MemoLookups = st.MemoLookups
	p.MemoHits = st.MemoHits
	p.MemoCrossJobHits = st.MemoCrossJobHits
	p.MemoEvictions = st.MemoEvictions
	p.MemoHitRetention = st.MemoHitRetention
	if st.MemoLookups > 0 {
		p.MemoHitRate = float64(st.MemoHits) / float64(st.MemoLookups)
	}
	if probe != nil {
		pc := probe.PlanCacheStats()
		p.PlanLookups = pc.Lookups()
		p.PlanHitRate = pc.HitRate()
		p.PlanEvictions = pc.Evictions
	}
	return p, nil
}

// phaseReps is how many times each shared phase runs; the reported numbers
// come from the fastest repetition. The phases are CPU-bound and
// deterministic, so the minimum over repetitions estimates the true cost
// with the host's scheduling and GC-pacing noise removed — the usual
// min-of-N benchmarking discipline. Correctness is still required of every
// repetition: a single result mismatch in any rep fails the phase.
const phaseReps = 2

// bestOf runs one phase fn phaseReps times and returns the fastest
// repetition, after a full collection before each so no rep inherits the
// previous one's GC debt.
func bestOf(reps int, fn func() (Phase, error)) (Phase, error) {
	var best Phase
	for r := 0; r < reps; r++ {
		runtime.GC()
		p, err := fn()
		if err != nil {
			return p, err
		}
		if !p.Identical {
			return p, nil // let the caller surface the determinism failure
		}
		if r == 0 || p.WallSeconds < best.WallSeconds {
			best = p
		}
	}
	return best, nil
}

// percentile reads the q-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes the study: an isolated baseline per distinct seed, then the
// full stream under the legacy lifecycle, then under the current one.
func Run(seed int64, jobs int) (*Study, error) {
	s := &Study{Benchmark: "job", Jobs: jobs, Workers: Workers, EvalSlots: evalSlots, Seed: seed}
	js, hot, warm, cold := stream(seed, jobs)
	s.HotJobs, s.WarmJobs, s.ColdJobs = hot, warm, cold

	// Phase 1: isolated baseline. Results depend only on (benchmark, seed,
	// options) — never on tenancy or lifecycle — so one standalone run per
	// distinct seed pins the authoritative result for every job sharing it.
	isolated := make(map[int64]string)
	order := make([]int64, 0)
	for _, j := range js {
		if _, ok := isolated[j.seed]; !ok {
			isolated[j.seed] = ""
			order = append(order, j.seed)
		}
	}
	sort.Slice(order, func(i, k int) bool { return order[i] < order[k] })
	start := time.Now()
	for _, sd := range order {
		db, w, err := lambdatune.Benchmark(s.Benchmark, lambdatune.Postgres)
		if err != nil {
			return nil, err
		}
		res, err := db.Tune(w, lambdatune.NewSimulatedLLM(sd), jobOptions(sd, ""))
		if err != nil {
			return nil, fmt.Errorf("isolated seed %d: %w", sd, err)
		}
		isolated[sd] = resultKey(res)
	}
	s.IsolatedRuns = len(order)
	s.IsolatedWallSeconds = time.Since(start).Seconds()

	// Phase 2: the legacy lifecycle — the pre-fair-share runtime's behavior,
	// preserved behind RuntimeOptions.LegacyMemoLifecycle as the measurable
	// baseline.
	var err error
	s.Legacy, err = bestOf(phaseReps, func() (Phase, error) {
		return runShared(s.Benchmark, js, isolated, true, nil)
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: the current lifecycle, with the hot tenant weighted 4 so the
	// deficit-round-robin admission path is exercised under skew (weights
	// move scheduling order only — determinism is still checked per job).
	s.Current, err = bestOf(phaseReps, func() (Phase, error) {
		return runShared(s.Benchmark, js, isolated, false, map[string]int{hotTenant: 4})
	})
	if err != nil {
		return nil, err
	}

	if s.Legacy.JobsPerSec > 0 {
		s.Speedup = s.Current.JobsPerSec / s.Legacy.JobsPerSec
	}
	s.SpeedupAtLeast1_5 = s.Speedup >= 1.5
	s.HitRateImproved = s.Current.MemoHitRate > s.Legacy.MemoHitRate
	s.EvictionsPositive = s.Current.MemoEvictions > 0
	s.IdenticalToIsolated = s.Current.Identical && s.Legacy.Identical
	return s, nil
}

// Render prints the study as a table.
func Render(s *Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E16 job throughput, %d × %s / Postgres (hot %d / warm %d / cold %d), %d workers, %d eval slots, seed %d\n",
		s.Jobs, s.Benchmark, s.HotJobs, s.WarmJobs, s.ColdJobs, s.Workers, s.EvalSlots, s.Seed)
	fmt.Fprintf(&b, "isolated baseline: %d distinct seeds in %.2fs\n", s.IsolatedRuns, s.IsolatedWallSeconds)
	fmt.Fprintf(&b, "%-8s %8s %9s %8s %8s %9s %9s %7s %9s %9s %9s\n",
		"phase", "wall_s", "jobs/s", "p50_ms", "p99_ms", "hit_rate", "retention", "evict", "crossjob", "plan_hit", "identical")
	for _, p := range []Phase{s.Legacy, s.Current} {
		fmt.Fprintf(&b, "%-8s %8.2f %9.1f %8.2f %8.2f %8.1f%% %8.1f%% %7d %9d %8.1f%% %9v\n",
			p.Lifecycle, p.WallSeconds, p.JobsPerSec, p.P50Ms, p.P99Ms,
			100*p.MemoHitRate, 100*p.MemoHitRetention, p.MemoEvictions, p.MemoCrossJobHits,
			100*p.PlanHitRate, p.Identical)
	}
	fmt.Fprintf(&b, "speedup: %.2fx jobs/sec (current vs legacy lifecycle); hit rate improved: %v; evictions: %d\n",
		s.Speedup, s.HitRateImproved, s.Current.MemoEvictions)
	return b.String()
}

// ExportJSON writes the study as the BENCH_jobs.json artifact checked by CI
// (`make bench-jobs`).
func ExportJSON(path string, s *Study) error {
	doc := struct {
		Description string `json:"description"`
		Collected   string `json:"collected"`
		Study       *Study `json:"study"`
	}{
		Description: "E16 — job throughput at daemon scale: ~1000 short jobs across skewed tenants on one shared Runtime, legacy clear-on-overflow cache lifecycle vs the sharded segmented-LRU lifecycle, with an isolated baseline pinning every per-job result. Regenerate with `make bench-jobs`.",
		Collected:   time.Now().UTC().Format("2006-01-02"),
		Study:       s,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
