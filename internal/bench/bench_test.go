package bench

import (
	"math"
	"strings"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
)

func TestRunTrialTPCH(t *testing.T) {
	r := NewRunner()
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, InitialIndexes: false, Trials: 1, Seed: 1}
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 1 {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	times := res.BestTimes()
	for _, name := range SystemNames {
		if math.IsInf(times[name], 1) {
			t.Errorf("%s found no configuration", name)
		}
	}
	// λ-Tune must be at or near the front (the paper's headline claim):
	// within 2x of the scenario best.
	best := minFinite(sortedSystemTimes(times))
	if times["λ-Tune"] > 2*best {
		t.Errorf("λ-Tune %v vs scenario best %v", times["λ-Tune"], best)
	}
}

func TestRunnerCaches(t *testing.T) {
	r := NewRunner()
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Trials: 1, Seed: 1}
	a, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("runner did not cache")
	}
}

func TestScenarioInitialIndexes(t *testing.T) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, InitialIndexes: true, Seed: 1}
	db, _, err := sc.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := db.(*backend.Sim)
	if !ok {
		t.Fatalf("scenario backend is %T, want *backend.Sim", db)
	}
	if sim.PermanentIndexCount() == 0 {
		t.Error("no initial indexes in initial-index scenario")
	}
}

func TestLambdaTuneParamsOnly(t *testing.T) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, InitialIndexes: true, Seed: 1}
	db, w, err := sc.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	lt := &LambdaTune{Seed: 1, ParamsOnly: true}
	res, err := lt.RunLambdaTune(db, w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if len(c.Indexes) > 0 {
			t.Errorf("candidate %s has indexes in params-only mode", c.ID)
		}
	}
}

func TestTable5Build(t *testing.T) {
	t5, err := BuildTable5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Params) == 0 {
		t.Error("no parameters in Table 5")
	}
	if len(t5.Indexes) == 0 {
		t.Error("no indexes in Table 5")
	}
	if t5.WorkloadSeconds >= t5.DefaultSeconds {
		t.Errorf("tuned %v not faster than default %v", t5.WorkloadSeconds, t5.DefaultSeconds)
	}
	out := RenderTable5(t5)
	if !strings.Contains(out, "shared_buffers") {
		t.Errorf("render missing shared_buffers:\n%s", out)
	}
}

func TestFigure5PerQueryNoRegressions(t *testing.T) {
	rows, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Paper: gains or at least equal performance for every single query
	// (allow 5% noise).
	for _, r := range rows {
		if r.Tuned > r.Default*1.05 {
			t.Errorf("%s regressed: %v → %v", r.Query, r.Default, r.Tuned)
		}
	}
}

func TestFigure7BudgetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full token-budget study (~20s)")
	}
	rows, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The compressed model-limit prompt must beat the full-SQL prompt
	// despite far fewer tokens (paper: better with >10x token reduction).
	var modelLimit, fullSQL *Figure7Row
	for i := range rows {
		switch rows[i].Label {
		case "compressed (model limit)":
			modelLimit = &rows[i]
		case "full SQL queries":
			fullSQL = &rows[i]
		}
	}
	if modelLimit == nil || fullSQL == nil {
		t.Fatal("rows missing")
	}
	if modelLimit.BestTime > fullSQL.BestTime*1.02 {
		t.Errorf("compressed (%v) worse than full SQL (%v)", modelLimit.BestTime, fullSQL.BestTime)
	}
	if modelLimit.WorkloadTokens >= fullSQL.WorkloadTokens {
		t.Errorf("compressed tokens %d not below full SQL %d", modelLimit.WorkloadTokens, fullSQL.WorkloadTokens)
	}
}

func TestOutlierStudy(t *testing.T) {
	o, err := Outliers(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Times) < 10 {
		t.Fatalf("only %d samples completed", len(o.Times))
	}
	// Paper: outliers up to ~5x the optimum. Require a clear spread.
	if o.Ratio < 1.5 {
		t.Errorf("no outliers observed: ratio %.2f", o.Ratio)
	}
	if o.Ratio > 20 {
		t.Errorf("implausible outlier ratio %.2f", o.Ratio)
	}
}

func TestDexterAndDB2IndexHelpers(t *testing.T) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: 1}
	db, w, err := sc.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	dx := DexterIndexes(db, w.Queries)
	if len(dx) == 0 {
		t.Error("Dexter helper returned nothing")
	}
	d2 := DB2Indexes(db, w.Queries)
	if len(d2) == 0 {
		t.Error("DB2 helper returned nothing")
	}
	// Helpers must restore settings.
	if db.(backend.SettingsAccessor).Settings()["random_page_cost"] != 4.0 {
		t.Error("helper leaked planner settings")
	}
}

func TestStripIndexesHelper(t *testing.T) {
	if !isCreateIndex("  CREATE INDEX i ON t (c);") {
		t.Error("isCreateIndex false negative")
	}
	if isCreateIndex("ALTER SYSTEM SET x = 1;") {
		t.Error("isCreateIndex false positive")
	}
}

func TestTransferStudy(t *testing.T) {
	s, err := Transfer(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.3: memory-related settings transfer across OLAP workloads.
	shared := map[string]bool{}
	for _, p := range s.SharedParams {
		shared[p] = true
	}
	for _, want := range []string{"maintenance_work_mem", "random_page_cost"} {
		if !shared[want] {
			t.Errorf("%s not shared across benchmarks (shared: %v)", want, s.SharedParams)
		}
	}
	// Index recommendations are workload-specific: overlap must be zero.
	for pair, ov := range s.IndexOverlap {
		if ov > 0 {
			t.Errorf("index sets overlap across benchmarks %s: %.2f", pair, ov)
		}
	}
	out := RenderTransfer(s)
	if !strings.Contains(out, "shared_buffers") {
		t.Errorf("render:\n%s", out)
	}
}
