package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/runstate"
)

// The chaos harness: kill the E1 run at every checkpoint boundary, resume,
// and require the resumed selection to land on the golden pre-refactor
// numbers bit-for-bit. Where golden_test.go pins the uninterrupted run,
// this file pins every interrupted-and-resumed variant of it — crash
// recovery must be invisible in the results.

// goldenE1 repeats golden_test.go's pinned outcome strings per parallelism.
var goldenE1 = map[int]string{
	1: "p=1 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=272.15842967122728",
	4: "p=4 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=216.78565701897892",
}

// errChaosKill simulates the crash at a checkpoint boundary.
var errChaosKill = errors.New("chaos kill")

// chaosRun executes the E1 scenario with checkpointing into dir, dying after
// durable save number killAfter (0 = run to completion). It returns the
// result rendered in the golden format (on success), the run error, and the
// checkpoint store.
func chaosRun(t *testing.T, dir string, parallelism, killAfter int) (string, error, *runstate.Store) {
	t.Helper()
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: 1}
	db, w, err := sc.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	def := db.WorkloadSeconds(w.Queries)

	store := runstate.NewStore(dir, "e1")
	if killAfter > 0 {
		store.AfterSave = func(*runstate.State) error {
			if store.Saves() >= killAfter {
				return errChaosKill
			}
			return nil
		}
	}
	opts := tuner.DefaultOptions()
	opts.Seed = 1
	opts.Selector.Parallelism = parallelism
	opts.Checkpoint = store

	// Resume whenever a usable checkpoint is already on disk — the same
	// decision a restarted service makes.
	if st, _, lerr := store.Load(); lerr == nil {
		opts.Resume = st
	}
	res, err := tuner.New(db, llm.NewSimClient(1), opts).Tune(context.Background(), w.Queries)
	if err != nil {
		return "", err, store
	}
	got := fmt.Sprintf("p=%d best=%s bestTime=%.17g default=%.17g speedup=%.17g tuning=%.17g",
		parallelism, res.Best.ID, res.BestTime, def, def/res.BestTime, res.TuningSeconds)
	return got, nil, store
}

// TestChaosKillResumeGoldenE1 crashes the E1 run after every durable
// checkpoint in turn and resumes it on a fresh engine; every resumed run
// must reproduce the golden selection string exactly, at parallelism 1
// and 4.
func TestChaosKillResumeGoldenE1(t *testing.T) {
	for _, p := range []int{1, 4} {
		// One uninterrupted run establishes the boundary count and re-checks
		// the golden pin with checkpointing active.
		base := t.TempDir()
		got, err, store := chaosRun(t, base, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != goldenE1[p] {
			t.Fatalf("checkpointed run drifted from golden:\n got  %s\n want %s", got, goldenE1[p])
		}
		total := store.Saves()
		if total < 2 {
			t.Fatalf("p=%d: only %d checkpoint saves", p, total)
		}

		for killAfter := 1; killAfter <= total; killAfter++ {
			t.Run(fmt.Sprintf("p%d/kill@%d", p, killAfter), func(t *testing.T) {
				dir := t.TempDir()
				if _, err, _ := chaosRun(t, dir, p, killAfter); !errors.Is(err, errChaosKill) {
					t.Fatalf("kill@%d did not fire: %v", killAfter, err)
				}
				got, err, _ := chaosRun(t, dir, p, 0) // resumes from the checkpoint
				if err != nil {
					t.Fatalf("resume after kill@%d: %v", killAfter, err)
				}
				if got != goldenE1[p] {
					t.Errorf("resumed run drifted from golden:\n got  %s\n want %s", got, goldenE1[p])
				}
			})
		}
	}
}

// TestChaosTornWriteGoldenE1 corrupts the live checkpoint with a simulated
// torn write after a crash; the resume must detect the corruption by
// checksum, fall back to the previous generation, and still land on the
// golden outcome.
func TestChaosTornWriteGoldenE1(t *testing.T) {
	dir := t.TempDir()
	if _, err, _ := chaosRun(t, dir, 1, 3); !errors.Is(err, errChaosKill) {
		t.Fatalf("kill@3 did not fire: %v", err)
	}
	store := runstate.NewStore(dir, "e1")
	data, err := os.ReadFile(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, tear := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(store.Path(), data[:tear], 0o644); err != nil {
			t.Fatal(err)
		}
		st, fellBack, err := store.Load()
		if err != nil {
			t.Fatalf("tear@%d: load: %v", tear, err)
		}
		if !fellBack {
			t.Fatalf("tear@%d: corruption not detected, no fallback", tear)
		}
		if st == nil {
			t.Fatalf("tear@%d: nil state from fallback", tear)
		}
	}
	// Leave the live file torn and resume: the run continues from the
	// previous generation to the golden answer.
	if err := os.WriteFile(store.Path(), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err, _ := chaosRun(t, dir, 1, 0)
	if err != nil {
		t.Fatalf("resume from fallback: %v", err)
	}
	if got != goldenE1[1] {
		t.Errorf("fallback resume drifted from golden:\n got  %s\n want %s", got, goldenE1[1])
	}
}
