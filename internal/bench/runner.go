package bench

import (
	"fmt"
	"math"
	"sort"

	"lambdatune/internal/baselines"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
)

// SystemNames lists the compared tuners in the paper's column order.
var SystemNames = []string{"λ-Tune", "UDO", "DB-BERT", "GPTuner", "LlamaTune", "ParamTree"}

// TrialResult holds one seed's traces for every system.
type TrialResult struct {
	Seed   int64
	Traces map[string]*baselines.Trace
	Lambda *tuner.Result
	// DefaultTime is the workload time under the scenario's initial state.
	DefaultTime float64
	// Deadline is the tuning budget granted to the baselines.
	Deadline float64
}

// ScenarioResult aggregates the scenario's trials.
type ScenarioResult struct {
	Scenario Scenario
	Trials   []*TrialResult
}

// BestTimes returns, per system, the average best execution time across
// trials (+Inf when a system never completed in any trial).
func (r *ScenarioResult) BestTimes() map[string]float64 {
	out := map[string]float64{}
	for _, name := range SystemNames {
		var sum float64
		n := 0
		for _, tr := range r.Trials {
			t := tr.Traces[name]
			if t != nil && !math.IsInf(t.BestTime, 1) {
				sum += t.BestTime
				n++
			}
		}
		if n == 0 {
			out[name] = math.Inf(1)
		} else {
			out[name] = sum / float64(n)
		}
	}
	return out
}

// EvalCounts returns, per system, the average number of evaluated
// configurations (paper Table 4).
func (r *ScenarioResult) EvalCounts() map[string]float64 {
	out := map[string]float64{}
	for _, name := range SystemNames {
		var sum float64
		n := 0
		for _, tr := range r.Trials {
			if t := tr.Traces[name]; t != nil {
				sum += float64(t.Evaluated)
				n++
			}
		}
		if n > 0 {
			out[name] = sum / float64(n)
		}
	}
	return out
}

// Runner executes scenarios, caching results so multiple tables/figures can
// share the same runs.
type Runner struct {
	cache map[string]*ScenarioResult
	// BudgetSeconds is the absolute tuning budget granted to the search
	// baselines, in simulated seconds — the same for every scenario, as in
	// the paper's fixed-wall-clock evaluation. Scenarios whose single trial
	// runs are longer get proportionally fewer trials (the SF10 and MySQL
	// effect behind Table 3's spread). λ-Tune bounds its own cost and
	// ignores it.
	BudgetSeconds float64
}

// NewRunner creates a runner with default budgets.
func NewRunner() *Runner {
	return &Runner{cache: map[string]*ScenarioResult{}, BudgetSeconds: 3600}
}

// Run executes (or returns the cached) scenario result.
func (r *Runner) Run(sc Scenario) (*ScenarioResult, error) {
	key := sc.Label() + fmt.Sprint(sc.Trials, sc.Seed)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	trials := sc.Trials
	if trials <= 0 {
		trials = 3
	}
	res := &ScenarioResult{Scenario: sc}
	for t := 0; t < trials; t++ {
		seed := sc.Seed + int64(t)*101
		tr, err := r.runTrial(sc, seed)
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
	}
	r.cache[key] = res
	return res, nil
}

// runTrial runs λ-Tune and every baseline once with the given seed, each on
// a fresh database instance of the scenario.
func (r *Runner) runTrial(sc Scenario, seed int64) (*TrialResult, error) {
	tr := &TrialResult{Seed: seed, Traces: map[string]*baselines.Trace{}}

	// λ-Tune first: its tuning time and worst candidate define the
	// baselines' budgets (paper §6.1).
	db, w, err := sc.NewDB()
	if err != nil {
		return nil, err
	}
	tr.DefaultTime = db.WorkloadSeconds(w.Queries)
	lt := &LambdaTune{Seed: seed, ParamsOnly: sc.InitialIndexes}
	res, err := lt.RunLambdaTune(db, w.Queries)
	if err != nil {
		return nil, err
	}
	tr.Lambda = res
	ltTrace := baselines.NewTrace("λ-Tune")
	ltTrace.Evaluated = len(res.Candidates)
	for _, ev := range res.Progress {
		ltTrace.Events = append(ltTrace.Events, baselines.Event{Clock: ev.Clock, BestTime: ev.BestTime, ConfigID: ev.ConfigID})
	}
	if res.Best != nil {
		ltTrace.BestTime = res.BestTime
		ltTrace.BestConfig = res.Best
	}
	tr.Traces["λ-Tune"] = ltTrace

	// Worst fully evaluated λ-Tune candidate → per-trial timeout ×3.
	worst := res.BestTime
	for _, m := range res.Metas {
		if m.IsComplete && m.Time > worst {
			worst = m.Time
		}
	}
	if worst < tr.DefaultTime || math.IsInf(worst, 1) {
		worst = tr.DefaultTime
	}
	trialTimeout := 3 * worst
	tr.Deadline = r.BudgetSeconds
	if min := 3 * tr.DefaultTime; tr.Deadline < min {
		// Guarantee a handful of trials even where a single default-speed
		// run exceeds the budget.
		tr.Deadline = min
	}

	for _, b := range baselineSet(seed, sc.InitialIndexes, trialTimeout) {
		bdb, bw, err := sc.NewDB()
		if err != nil {
			return nil, err
		}
		// Scenario 2 methodology: parameter-only baselines receive Dexter's
		// index recommendations before tuning starts (§6.2). UDO tunes its
		// own physical design.
		if !sc.InitialIndexes && b.Name() != "UDO" {
			for _, d := range DexterIndexes(bdb, bw.Queries) {
				bdb.CreatePermanentIndex(d)
			}
		}
		trace := b.Tune(bdb, bw.Queries, tr.Deadline)
		if math.IsInf(trace.BestTime, 1) {
			// The paper charges systems that never evaluate a configuration
			// successfully with the trial timeout (their Table 3 shows the
			// capped value; their figures a dashed line).
			trace.BestTime = trialTimeout
		}
		tr.Traces[b.Name()] = trace
	}
	return tr, nil
}

// Table3Scenarios lists the paper's 14 Table-3 rows in order.
func Table3Scenarios(seed int64, trials int) []Scenario {
	mk := func(bench string, f engine.Flavor, idx bool) Scenario {
		return Scenario{Benchmark: bench, Flavor: f, InitialIndexes: idx, Trials: trials, Seed: seed}
	}
	return []Scenario{
		mk("tpch-1", engine.Postgres, true),
		mk("tpch-1", engine.MySQL, true),
		mk("tpch-10", engine.Postgres, true),
		mk("tpch-10", engine.MySQL, true),
		mk("job", engine.Postgres, true),
		mk("job", engine.MySQL, true),
		mk("tpch-1", engine.Postgres, false),
		mk("tpch-1", engine.MySQL, false),
		mk("tpch-10", engine.Postgres, false),
		mk("tpch-10", engine.MySQL, false),
		mk("job", engine.Postgres, false),
		mk("job", engine.MySQL, false),
		mk("tpcds-1", engine.Postgres, false),
		mk("tpcds-1", engine.MySQL, false),
	}
}

// minFinite returns the smallest finite value (or +Inf).
func minFinite(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// sortedSystemTimes flattens a BestTimes map in SystemNames order.
func sortedSystemTimes(times map[string]float64) []float64 {
	out := make([]float64, len(SystemNames))
	for i, n := range SystemNames {
		out[i] = times[n]
	}
	return out
}

// sortEventsByClock orders trace events (defensive; traces are appended in
// clock order already).
func sortEventsByClock(evs []baselines.Event) {
	sort.Slice(evs, func(a, b int) bool { return evs[a].Clock < evs[b].Clock })
}
