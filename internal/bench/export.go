package bench

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file renders experiment results to machine-readable CSV (for
// re-plotting the paper's figures with any charting tool) and to ASCII
// staircase charts for terminal inspection.

// writeCSV writes rows to dir/name.csv.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// ExportTable3CSV writes the Table 3 matrix.
func ExportTable3CSV(dir string, rows []Table3Row) error {
	header := append([]string{"scenario"}, SystemNames...)
	var out [][]string
	for _, r := range rows {
		rec := []string{r.Scenario.Label()}
		for _, n := range SystemNames {
			rec = append(rec, f2s(r.Scaled[n]))
		}
		out = append(out, rec)
	}
	return writeCSV(dir, "table3", header, out)
}

// ExportTable4CSV writes the Table 4 trial counts.
func ExportTable4CSV(dir string, rows []Table4Row) error {
	header := append([]string{"scenario"}, SystemNames...)
	var out [][]string
	for _, r := range rows {
		rec := []string{r.Scenario.Label()}
		for _, n := range SystemNames {
			rec = append(rec, f2s(r.Counts[n]))
		}
		out = append(out, rec)
	}
	return writeCSV(dir, "table4", header, out)
}

// ExportConvergenceCSV writes one long-format CSV per figure: scenario,
// system, clock, best.
func ExportConvergenceCSV(dir, name string, figs []FigureConvergence) error {
	header := []string{"scenario", "system", "tuning_seconds", "best_seconds"}
	var out [][]string
	for _, fc := range figs {
		for _, s := range fc.Series {
			for _, p := range s.Points {
				out = append(out, []string{fc.Scenario.Label(), s.System, f2s(p.Clock), f2s(p.BestTime)})
			}
		}
	}
	return writeCSV(dir, name, header, out)
}

// ExportFigure5CSV writes the per-query comparison.
func ExportFigure5CSV(dir string, rows []Figure5Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Query, f2s(r.Default), f2s(r.Tuned)})
	}
	return writeCSV(dir, "figure5", []string{"query", "default_seconds", "tuned_seconds"}, out)
}

// ExportFigure7CSV writes the token-budget study.
func ExportFigure7CSV(dir string, rows []Figure7Row) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Label, strconv.Itoa(r.WorkloadTokens), f2s(r.BestTime), f2s(r.TuningSeconds)})
	}
	return writeCSV(dir, "figure7", []string{"prompt", "tokens", "best_seconds", "tuning_seconds"}, out)
}

// AsciiChart renders one scenario's convergence series as a log-x staircase
// chart suitable for terminals: each system is one row of a down-sampled
// timeline, with the best-so-far value class-coded.
func AsciiChart(fc FigureConvergence, width int) string {
	if width < 20 {
		width = 60
	}
	// Find the clock and value ranges across all systems.
	minClock, maxClock := math.Inf(1), 0.0
	minVal, maxVal := math.Inf(1), 0.0
	for _, s := range fc.Series {
		for _, p := range s.Points {
			if p.Clock > 0 && p.Clock < minClock {
				minClock = p.Clock
			}
			if p.Clock > maxClock {
				maxClock = p.Clock
			}
			if p.BestTime < minVal {
				minVal = p.BestTime
			}
			if p.BestTime > maxVal {
				maxVal = p.BestTime
			}
		}
	}
	if math.IsInf(minClock, 1) || maxClock <= 0 {
		return fmt.Sprintf("== %s == (no data)\n", fc.Scenario.Label())
	}
	if minClock == maxClock {
		maxClock = minClock * 2
	}
	logMin, logMax := math.Log(minClock), math.Log(maxClock)
	// Value → glyph bucket: best quartile '█', then '▓', '▒', '░'.
	glyph := func(v float64) byte {
		if maxVal <= minVal {
			return '#'
		}
		f := (v - minVal) / (maxVal - minVal)
		switch {
		case f < 0.25:
			return '#' // near-optimal
		case f < 0.5:
			return '+'
		case f < 0.75:
			return '-'
		default:
			return '.'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==  (x: log time %.0fs..%.0fs; #=near-best .=far)\n",
		fc.Scenario.Label(), minClock, maxClock)
	for _, s := range fc.Series {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		// Fill each column with the best-so-far value at that time.
		cur := math.NaN()
		pi := 0
		for x := 0; x < width; x++ {
			tAt := math.Exp(logMin + (logMax-logMin)*float64(x)/float64(width-1))
			for pi < len(s.Points) && s.Points[pi].Clock <= tAt*1.0000001 {
				cur = s.Points[pi].BestTime
				pi++
			}
			if !math.IsNaN(cur) {
				line[x] = glyph(cur)
			}
		}
		fmt.Fprintf(&b, "  %-10s |%s|\n", s.System, line)
	}
	return b.String()
}
