// Package bench reproduces every table and figure of the paper's evaluation
// (§6) on the simulated substrate. Experiment identifiers follow DESIGN.md's
// per-experiment index (E1 = Table 3 … E10 = the LLM-outlier study).
//
// Absolute numbers are simulated seconds, not the paper's EC2 wall-clock;
// the reproduction target is the *shape* of each result — which system wins,
// by roughly what factor, and where the cross-overs fall.
package bench

import (
	"context"
	"fmt"
	"log"
	"math"
	"path/filepath"
	"sync/atomic"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/baselines/db2advisor"
	"lambdatune/internal/baselines/dbbert"
	"lambdatune/internal/baselines/dexter"
	"lambdatune/internal/baselines/gptuner"
	"lambdatune/internal/baselines/llamatune"
	"lambdatune/internal/baselines/paramtree"
	"lambdatune/internal/baselines/udo"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/obs"
	"lambdatune/internal/workload"
)

// traceDir, when set, makes every RunLambdaTune invocation record a span
// trace and write it to <dir>/run-<seq>-seed<seed>.jsonl.
var (
	traceDir string
	traceSeq atomic.Int64
)

// SetTraceDir enables per-run JSONL trace export for all subsequent
// RunLambdaTune calls ("" disables). benchrunner -trace-dir uses this; the
// directory must already exist. Not safe to flip concurrently with runs.
func SetTraceDir(dir string) { traceDir = dir }

// Scenario is one evaluation setting: benchmark × DBMS × initial-index
// regime.
type Scenario struct {
	Benchmark      string // workload.ByName key
	Flavor         engine.Flavor
	InitialIndexes bool
	// Trials is the number of repetitions (the paper runs 3); traces are
	// averaged per trial seed.
	Trials int
	// Seed is the base random seed.
	Seed int64
}

// Label renders e.g. "TPC-H 1GB / PG / Initial Indexes".
func (s Scenario) Label() string {
	fl := "PG"
	if s.Flavor == engine.MySQL {
		fl = "MS"
	}
	ix := "No"
	if s.InitialIndexes {
		ix = "Yes"
	}
	return fmt.Sprintf("%s/%s/idx=%s", s.Benchmark, fl, ix)
}

// NewDB materializes the scenario's backend and workload: a fresh simulator
// instance with default settings and, in the initial-index regime, permanent
// PK/FK indexes.
func (s Scenario) NewDB() (backend.Backend, *workload.Workload, error) {
	w, err := workload.ByName(s.Benchmark)
	if err != nil {
		return nil, nil, err
	}
	db, err := backend.Open("sim", backend.Spec{
		Flavor:   s.Flavor,
		Catalog:  w.Catalog,
		Hardware: engine.DefaultHardware,
	})
	if err != nil {
		return nil, nil, err
	}
	if s.InitialIndexes {
		for _, d := range w.InitialIndexes() {
			db.CreatePermanentIndex(d)
		}
	}
	return db, w, nil
}

// LambdaTune adapts the core tuner to the baselines.Tuner interface so the
// harness can run it alongside the comparison systems.
type LambdaTune struct {
	Seed int64
	// Opts configures the run; zero value means tuner.DefaultOptions.
	Opts *tuner.Options
	// ParamsOnly strips index recommendations from LLM candidates
	// (scenario 1: pure parameter tuning).
	ParamsOnly bool
}

// Name implements baselines.Tuner.
func (l *LambdaTune) Name() string { return "λ-Tune" }

// Tune implements baselines.Tuner. λ-Tune bounds its own evaluation cost
// (Theorem 4.3), so the deadline is not used to cut it short.
func (l *LambdaTune) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	_ = deadline
	tr := baselines.NewTrace(l.Name())
	res, err := l.RunLambdaTune(db, queries)
	if err != nil {
		return tr
	}
	tr.Evaluated = len(res.Candidates)
	for _, ev := range res.Progress {
		tr.Events = append(tr.Events, baselines.Event{Clock: ev.Clock, BestTime: ev.BestTime, ConfigID: ev.ConfigID})
	}
	if res.Best != nil {
		tr.BestTime = res.BestTime
		tr.BestConfig = res.Best
	}
	return tr
}

// stripIndexes is a client wrapper that removes CREATE INDEX commands from
// LLM responses, implementing the pure-parameter-tuning regime without
// re-sampling.
type stripIndexes struct{ inner llm.Client }

func (s stripIndexes) Name() string { return s.inner.Name() }

func (s stripIndexes) Complete(ctx context.Context, prompt string) (string, error) {
	return s.filter(s.inner.Complete(ctx, prompt))
}

// CompleteT implements llm.TemperatureCompleter, forwarding the temperature
// to the inner client when it supports one.
func (s stripIndexes) CompleteT(ctx context.Context, prompt string, temp float64) (string, error) {
	return s.filter(llm.Complete(ctx, s.inner, prompt, temp))
}

func (s stripIndexes) filter(out string, err error) (string, error) {
	if err != nil {
		return "", err
	}
	var kept []byte
	for _, line := range splitLines(out) {
		if !isCreateIndex(line) {
			kept = append(kept, line...)
			kept = append(kept, '\n')
		}
	}
	return string(kept), nil
}

// RunLambdaTune executes λ-Tune on the scenario database, honoring the
// ParamsOnly regime via response filtering.
func (l *LambdaTune) RunLambdaTune(db backend.Backend, queries []*engine.Query) (*tuner.Result, error) {
	opts := tuner.DefaultOptions()
	if l.Opts != nil {
		opts = *l.Opts
	}
	opts.Seed = l.Seed
	var client llm.Client = llm.NewSimClient(l.Seed)
	if l.ParamsOnly {
		client = stripIndexes{inner: client}
	}
	var tr *obs.Tracer
	if traceDir != "" {
		tr = obs.NewTracer()
		opts.Trace = tr
	}
	res, err := tuner.New(db, client, opts).Tune(context.Background(), queries)
	if tr != nil {
		path := filepath.Join(traceDir, fmt.Sprintf("run-%03d-seed%d.jsonl", traceSeq.Add(1), l.Seed))
		if werr := tr.WriteFile(path); werr != nil {
			log.Printf("bench: trace export: %v", werr)
		}
	}
	return res, err
}

// baselineSet builds the five comparison tuners for a scenario. ParamsOnly
// (initial-index regime) switches UDO to parameter actions only.
func baselineSet(seed int64, paramsOnly bool, trialTimeout float64) []baselines.Tuner {
	u := udo.New(seed)
	u.TuneIndexes = !paramsOnly
	u.EvalTimeout = trialTimeout
	db := dbbert.New(seed)
	db.EvalTimeout = trialTimeout
	gp := gptuner.New(seed)
	gp.EvalTimeout = trialTimeout
	ll := llamatune.New(seed)
	ll.EvalTimeout = trialTimeout
	// ParamTree performs a single measurement run, not a search; it is not
	// subject to the trial timeout.
	pt := paramtree.New()
	return []baselines.Tuner{u, db, gp, ll, pt}
}

// withPlannerFriendlySettings runs fn under index-friendly planner settings
// when the backend exposes raw settings access, restoring the previous
// assignment afterwards. Without the SettingsAccessor capability fn runs
// under the live configuration.
func withPlannerFriendlySettings(db backend.Backend, fn func() []engine.IndexDef) []engine.IndexDef {
	sa, ok := db.(backend.SettingsAccessor)
	if !ok || db.Flavor() != engine.Postgres {
		return fn()
	}
	saved := sa.Settings()
	s := sa.Settings()
	s["random_page_cost"] = 1.1
	s["effective_cache_size"] = float64(db.Hardware().MemoryBytes * 3 / 4)
	sa.SetSettings(s)
	defer sa.SetSettings(saved)
	return fn()
}

// DexterIndexes returns Dexter's recommendations under index-friendly
// planner settings, as the harness pre-creates them for parameter-only
// baselines in scenario 2 (paper §6.2).
func DexterIndexes(db backend.Backend, queries []*engine.Query) []engine.IndexDef {
	return withPlannerFriendlySettings(db, func() []engine.IndexDef {
		return dexter.New().Recommend(db, queries)
	})
}

// DB2Indexes returns the DB2 advisor's recommendations analogously.
func DB2Indexes(db backend.Backend, queries []*engine.Query) []engine.IndexDef {
	return withPlannerFriendlySettings(db, func() []engine.IndexDef {
		return db2advisor.New().Recommend(db, queries)
	})
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func isCreateIndex(line string) bool {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	up := line[i:]
	return len(up) >= 12 && equalFold(up[:12], "CREATE INDEX")
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 32
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 32
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// inf is a shorthand used across the harness.
var inf = math.Inf(1)
