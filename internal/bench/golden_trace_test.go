package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace-shape files")

// tracedE1 runs E1 (TPC-H SF1, Postgres, seed 1) with tracing attached and
// returns the result and the trace's deterministic shape rendering.
func tracedE1(t *testing.T, p int) (*tuner.Result, string) {
	t.Helper()
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: 1}
	db, w, err := sc.NewDB()
	if err != nil {
		t.Fatal(err)
	}
	def := db.WorkloadSeconds(w.Queries)
	opts := tuner.DefaultOptions()
	opts.Seed = 1
	opts.Selector.Parallelism = p
	tr := obs.NewTracer()
	opts.Trace = tr
	lt := &LambdaTune{Seed: 1, Opts: &opts}
	res, err := lt.RunLambdaTune(db, w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	if err := obs.ValidateRecords(recs); err != nil {
		t.Fatalf("trace violates the span schema: %v", err)
	}
	// Tracing must be passive: the traced run reproduces the untraced golden
	// selection byte for byte (same strings TestGoldenSelectionE1 pins).
	got := fmt.Sprintf("p=%d best=%s bestTime=%.17g default=%.17g speedup=%.17g tuning=%.17g",
		p, res.Best.ID, res.BestTime, def, def/res.BestTime, res.TuningSeconds)
	golden := map[int]string{
		1: "p=1 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=272.15842967122728",
		4: "p=4 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=216.78565701897892",
	}
	if got != golden[p] {
		t.Errorf("traced selection drifted from the untraced golden:\n got  %s\n want %s", got, golden[p])
	}
	return res, obs.ShapeString(recs)
}

// TestGoldenTraceShapeE1 pins the trace tree of E1 — span nesting, names,
// attributes, and virtual timestamps — against checked-in goldens at
// Parallelism 1 and 4, and asserts the shape is reproducible run over run.
// Wall-clock annotations are excluded from the shape (they are the only
// nondeterministic part of a trace). Regenerate with `go test -run
// TestGoldenTraceShapeE1 -update ./internal/bench/`.
func TestGoldenTraceShapeE1(t *testing.T) {
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", p), func(t *testing.T) {
			_, shape := tracedE1(t, p)
			_, again := tracedE1(t, p)
			if shape != again {
				t.Fatalf("trace shape not reproducible across identical runs (parallelism %d)", p)
			}
			path := filepath.Join("testdata", fmt.Sprintf("trace_shape_e1_p%d.golden", p))
			if *updateGolden {
				if err := os.WriteFile(path, []byte(shape), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if shape != string(want) {
				t.Errorf("trace shape drifted from golden %s:\n--- got:\n%.2000s\n--- want:\n%.2000s",
					path, shape, want)
			}
		})
	}
}
