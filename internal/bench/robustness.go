package bench

import (
	"context"
	"fmt"
	"strings"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/faults"
	"lambdatune/internal/llm"
)

// RobustnessRow is one fault setting of the robustness sweep: λ-Tune under
// injected LLM and engine faults, with the resilience layer enabled.
type RobustnessRow struct {
	LLMRate    float64
	EngineRate float64
	// Speedup is DefaultTime / BestTime (≥ 1 when degradation seeds the
	// default configuration into the candidate pool).
	Speedup       float64
	BestTime      float64
	DefaultTime   float64
	TuningSeconds float64
	Faults        tuner.FaultReport
	// Err is set when the run failed outright (every sample dropped).
	Err string
}

// RobustnessRates is the sweep grid: LLM fault rates × engine fault rates.
var RobustnessRates = struct {
	LLM    []float64
	Engine []float64
}{
	LLM:    []float64{0, 0.1, 0.3, 0.5},
	Engine: []float64{0, 0.1},
}

// RobustnessTrial runs one tuning run on TPC-H 1GB / Postgres with the given
// injected fault rates and the resilience layer at production defaults.
// Fully deterministic in seed: same seed → byte-identical row.
func RobustnessTrial(seed int64, llmRate, engineRate float64) RobustnessRow {
	row := RobustnessRow{LLMRate: llmRate, EngineRate: engineRate}
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.DefaultTime = db.WorkloadSeconds(w.Queries)

	inj := faults.NewInjector(faults.NewPlan(llmRate, engineRate), seed, db.Clock())
	if fi, ok := db.(backend.FaultInjectable); ok {
		fi.SetFaultInjector(inj)
	}
	client := llm.WithInterceptor(llm.NewSimClient(seed), inj)

	opts := tuner.DefaultOptions()
	opts.Seed = seed
	opts.Resilience = &llm.ResilienceOptions{} // production defaults, db clock
	res, err := tuner.New(db, client, opts).Tune(context.Background(), w.Queries)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.BestTime = res.BestTime
	row.TuningSeconds = res.TuningSeconds
	row.Faults = res.Faults
	if res.BestTime > 0 {
		row.Speedup = row.DefaultTime / res.BestTime
	}
	return row
}

// Robustness sweeps the fault grid (E12). Every cell is an independent run on
// a fresh database.
func Robustness(seed int64) ([]RobustnessRow, error) {
	var rows []RobustnessRow
	for _, er := range RobustnessRates.Engine {
		for _, lr := range RobustnessRates.LLM {
			rows = append(rows, RobustnessTrial(seed, lr, er))
		}
	}
	return rows, nil
}

// RenderRobustness prints the sweep as a table.
func RenderRobustness(rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("λ-Tune under injected faults, TPC-H 1GB / Postgres (resilient client, default seeding)\n")
	fmt.Fprintf(&b, "%6s %6s %9s %9s %8s %8s %8s %7s %7s %7s %s\n",
		"llm%", "eng%", "speedup", "tuning_s", "llmfail", "retries", "dropped", "aborts", "ixfail", "breaker", "note")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%6.0f %6.0f %9s %9s %8s %8s %8s %7s %7s %7s run failed: %s\n",
				r.LLMRate*100, r.EngineRate*100, "-", "-", "-", "-", "-", "-", "-", "-", r.Err)
			continue
		}
		note := ""
		if r.Faults.DegradedToDefault {
			note = "degraded to default"
		}
		fmt.Fprintf(&b, "%6.0f %6.0f %8.2fx %9.1f %8d %8d %8d %7d %7d %7d %s\n",
			r.LLMRate*100, r.EngineRate*100, r.Speedup, r.TuningSeconds,
			r.Faults.LLMFailures, r.Faults.LLMRetries, r.Faults.DroppedSamples,
			r.Faults.QueryAborts, r.Faults.IndexFailures, r.Faults.BreakerTrips, note)
	}
	return b.String()
}
