package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/core/prompt"
	"lambdatune/internal/core/selector"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/workload"
)

// Series is one line of a convergence plot: best execution time found by a
// system as a function of tuning time (both in simulated seconds).
type Series struct {
	System string
	Points []baselines.Event
}

// FigureConvergence holds the Figure 3 / Figure 4 data for one scenario: a
// best-so-far series per system, averaged over trials (the paper plots the
// mean of three runs with a min/max band; with a deterministic substrate the
// per-seed traces are exact, so we merge them event-wise).
type FigureConvergence struct {
	Scenario Scenario
	Series   []Series
}

// Convergence builds Figure 3 (initialIndexes=true) or Figure 4 (false)
// data for all benchmark × DBMS combinations.
func Convergence(r *Runner, seed int64, trials int, initialIndexes bool) ([]FigureConvergence, error) {
	var out []FigureConvergence
	for _, sc := range Table3Scenarios(seed, trials) {
		if sc.InitialIndexes != initialIndexes {
			continue
		}
		res, err := r.Run(sc)
		if err != nil {
			return nil, err
		}
		fc := FigureConvergence{Scenario: sc}
		for _, name := range SystemNames {
			var evs []baselines.Event
			for _, trial := range res.Trials {
				if t := trial.Traces[name]; t != nil {
					evs = append(evs, t.Events...)
				}
			}
			sortEventsByClock(evs)
			// Collapse to the running minimum so merged trials form one
			// non-increasing staircase.
			var pts []baselines.Event
			best := math.Inf(1)
			for _, e := range evs {
				if e.BestTime < best {
					best = e.BestTime
					pts = append(pts, e)
				}
			}
			fc.Series = append(fc.Series, Series{System: name, Points: pts})
		}
		out = append(out, fc)
	}
	return out, nil
}

// RenderConvergence prints the figure as one staircase per system.
func RenderConvergence(figs []FigureConvergence) string {
	var b strings.Builder
	for _, fc := range figs {
		fmt.Fprintf(&b, "== %s ==\n", fc.Scenario.Label())
		for _, s := range fc.Series {
			fmt.Fprintf(&b, "  %-10s", s.System)
			if len(s.Points) == 0 {
				b.WriteString(" (no configuration completed)\n")
				continue
			}
			for _, p := range s.Points {
				fmt.Fprintf(&b, " (%.0fs→%.1fs)", p.Clock, p.BestTime)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure5Row is one query's runtime under the default configuration and
// under λ-Tune's best configuration (paper Figure 5, TPC-H 1GB Postgres).
type Figure5Row struct {
	Query   string
	Default float64
	Tuned   float64
}

// Figure5 reproduces experiment E6.
func Figure5(seed int64) ([]Figure5Row, error) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		return nil, err
	}
	defaults := make([]float64, len(w.Queries))
	for i, q := range w.Queries {
		defaults[i] = db.QuerySeconds(q)
	}
	lt := &LambdaTune{Seed: seed}
	res, err := lt.RunLambdaTune(db, w.Queries)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, fmt.Errorf("bench: no λ-Tune configuration")
	}
	// Install the winning configuration.
	db.DropTransientIndexes()
	if err := db.ApplyConfig(res.Best); err != nil {
		return nil, err
	}
	for _, ix := range res.Best.Indexes {
		db.CreateIndex(ix)
	}
	rows := make([]Figure5Row, len(w.Queries))
	for i, q := range w.Queries {
		rows[i] = Figure5Row{Query: q.Name, Default: defaults[i], Tuned: db.QuerySeconds(q)}
	}
	return rows, nil
}

// RenderFigure5 prints per-query bars.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %8s\n", "Query", "Default(s)", "λ-Tune(s)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.2f %12.2f %7.1fx\n", r.Query, r.Default, r.Tuned, r.Default/r.Tuned)
	}
	return b.String()
}

// AblationVariant labels the Figure 6 configurations.
type AblationVariant string

// Figure 6 variants.
const (
	AblationDefault      AblationVariant = "Default"
	AblationNoAdaptiveTO AblationVariant = "Adaptive Timeout off"
	AblationNoScheduler  AblationVariant = "Query Scheduler off"
	AblationObfuscated   AblationVariant = "Obfuscated Workload"
	AblationNoCompressor AblationVariant = "Compressor off (full SQL)"
)

// AblationResult is one Figure 6 line.
type AblationResult struct {
	Variant AblationVariant
	// Progress is the best-so-far staircase on the virtual clock.
	Progress []selector.ProgressEvent
	// BestTime is the final best workload time.
	BestTime float64
	// TuningSeconds is the total tuning time.
	TuningSeconds float64
	// FirstComplete is the clock time of the first fully evaluated
	// configuration (the paper's "time until first evaluation" metric).
	FirstComplete float64
}

// Figure6 reproduces the §6.4 ablation on JOB / Postgres / no indexes.
func Figure6(seed int64) ([]AblationResult, error) {
	variants := []AblationVariant{
		AblationDefault, AblationNoAdaptiveTO, AblationNoScheduler,
		AblationObfuscated, AblationNoCompressor,
	}
	var out []AblationResult
	for _, v := range variants {
		res, err := runAblation(v, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

func runAblation(v AblationVariant, seed int64) (*AblationResult, error) {
	w := workload.JOB()
	if v == AblationObfuscated {
		w = w.Obfuscate()
	}
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	opts := tuner.DefaultOptions()
	opts.Seed = seed
	// The simulated machine runs JOB roughly an order of magnitude faster
	// than the paper's EC2 testbed, so the paper's 10-second initial
	// timeout is scaled accordingly — this keeps the round structure (and
	// hence the reconfiguration-overhead dynamics the ablation measures)
	// the same as in §6.4.
	opts.Selector.InitialTimeout = 1
	switch v {
	case AblationNoAdaptiveTO:
		opts.Selector.AdaptiveTimeout = false
	case AblationNoScheduler:
		opts.UseScheduler = false
		opts.LazyIndexes = false
	case AblationNoCompressor:
		opts.Prompt.FullSQL = true
	}
	tn := tuner.New(db, llm.NewSimClient(seed), opts)
	res, err := tn.Tune(context.Background(), w.Queries)
	if err != nil {
		return nil, err
	}
	ar := &AblationResult{
		Variant:       v,
		Progress:      res.Progress,
		BestTime:      res.BestTime,
		TuningSeconds: res.TuningSeconds,
	}
	if len(res.Progress) > 0 {
		ar.FirstComplete = res.Progress[0].Clock
	}
	return ar, nil
}

// RenderFigure6 prints the ablation summary.
func RenderFigure6(rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %14s\n", "Variant", "FirstEval(s)", "BestTime(s)", "TuningTime(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14.1f %14.1f %14.1f\n", r.Variant, r.FirstComplete, r.BestTime, r.TuningSeconds)
	}
	return b.String()
}

// Figure7Row is one token-budget point of the compressor study.
type Figure7Row struct {
	Label          string
	WorkloadTokens int
	BestTime       float64
	TuningSeconds  float64
}

// Figure7 reproduces experiment E8 on JOB / Postgres: best configuration
// quality as a function of the compressor token budget, plus the full-SQL
// prompt for comparison.
func Figure7(seed int64) ([]Figure7Row, error) {
	budgets := []int{64, 196, 400, 800, 1600, 0} // 0 = fit to model limit
	var out []Figure7Row
	for _, budget := range budgets {
		opts := tuner.DefaultOptions()
		opts.Seed = seed
		opts.Prompt.TokenBudget = budget
		label := fmt.Sprintf("compressed (budget %d)", budget)
		if budget == 0 {
			label = "compressed (model limit)"
		}
		row, err := runFigure7Point(label, opts, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
	}
	opts := tuner.DefaultOptions()
	opts.Seed = seed
	opts.Prompt.FullSQL = true
	row, err := runFigure7Point("full SQL queries", opts, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, *row)
	return out, nil
}

// runFigure7Point averages three trials (the paper's repetition count) so
// one lucky or unlucky LLM sample does not dominate a budget point.
func runFigure7Point(label string, opts tuner.Options, seed int64) (*Figure7Row, error) {
	row := &Figure7Row{Label: label}
	const trials = 3
	for t := 0; t < trials; t++ {
		s := seed + int64(t)*101
		w := workload.JOB()
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		o := opts
		o.Seed = s
		tn := tuner.New(db, llm.NewSimClient(s), o)
		res, err := tn.Tune(context.Background(), w.Queries)
		if err != nil {
			return nil, err
		}
		row.WorkloadTokens = res.Prompt.WorkloadTokens
		row.BestTime += res.BestTime / trials
		row.TuningSeconds += res.TuningSeconds / trials
	}
	return row, nil
}

// RenderFigure7 prints the token-budget study.
func RenderFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %14s %14s\n", "Prompt", "Tokens", "BestTime(s)", "TuningTime(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10d %14.1f %14.1f\n", r.Label, r.WorkloadTokens, r.BestTime, r.TuningSeconds)
	}
	return b.String()
}

// Figure8Row is one benchmark's index-recommendation comparison.
type Figure8Row struct {
	Benchmark string
	// Times maps tool → workload time with only that tool's indexes (and
	// default parameters), per experiment E9.
	Times map[string]float64
}

// Figure8Tools lists the compared index sources in the paper's order.
var Figure8Tools = []string{"No Indexes", "λ-Tune", "Dexter", "DB2 Advisor"}

// Figure8 reproduces the index-recommendation comparison on Postgres.
func Figure8(seed int64) ([]Figure8Row, error) {
	var out []Figure8Row
	for _, bench := range []string{"tpch-1", "tpcds-1", "job"} {
		w, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		row := Figure8Row{Benchmark: bench, Times: map[string]float64{}}

		measure := func(defs []engine.IndexDef) float64 {
			db := engine.NewDB(engine.Postgres, w.Catalog, engine.DefaultHardware)
			// Index-friendly planner settings so recommendations are used
			// (identical across tools; only the index sets differ).
			s := db.Settings()
			s["random_page_cost"] = 1.1
			s["effective_cache_size"] = float64(db.Hardware().MemoryBytes * 3 / 4)
			db.SetSettings(s)
			for _, d := range defs {
				db.CreatePermanentIndex(d)
			}
			return db.WorkloadSeconds(w.Queries)
		}

		row.Times["No Indexes"] = measure(nil)

		// λ-Tune restricted to index recommendation: tune normally, keep
		// only the winning configuration's indexes.
		db, _, _ := Scenario{Benchmark: bench, Flavor: engine.Postgres, Seed: seed}.NewDB()
		lt := &LambdaTune{Seed: seed}
		res, err := lt.RunLambdaTune(db, w.Queries)
		if err != nil {
			return nil, err
		}
		var ltIdx []engine.IndexDef
		if res.Best != nil {
			ltIdx = res.Best.Indexes
		}
		row.Times["λ-Tune"] = measure(ltIdx)

		adb := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		row.Times["Dexter"] = measure(DexterIndexes(adb, w.Queries))
		adb2 := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		row.Times["DB2 Advisor"] = measure(DB2Indexes(adb2, w.Queries))
		out = append(out, row)
	}
	return out, nil
}

// RenderFigure8 prints the comparison.
func RenderFigure8(rows []Figure8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Benchmark")
	for _, tool := range Figure8Tools {
		fmt.Fprintf(&b, "%14s", tool)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Benchmark)
		for _, tool := range Figure8Tools {
			fmt.Fprintf(&b, "%13.1fs", r.Times[tool])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OutlierStudy reproduces the §6.3 observation: among 15 LLM samples for the
// TPC-H prompt, outlier configurations run up to ~5× slower than the best.
type OutlierStudy struct {
	Times []float64 // per-sample full-workload times, sample order
	// Ratio is worst/best.
	Ratio float64
}

// Outliers runs the 15-sample study.
func Outliers(seed int64) (*OutlierStudy, error) {
	sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: seed}
	db, w, err := sc.NewDB()
	if err != nil {
		return nil, err
	}
	pr, err := prompt.Generate(db, w.Queries, db.Hardware(), prompt.DefaultOptions())
	if err != nil {
		return nil, err
	}
	client := llm.NewSimClient(seed)
	study := &OutlierStudy{}
	for i := 0; i < 15; i++ {
		out, err := client.CompleteT(context.Background(), pr.Text, 0.7)
		if err != nil {
			return nil, err
		}
		cfg, _, err := engine.ParseScript(engine.Postgres, fmt.Sprintf("sample-%d", i+1), out)
		if err != nil {
			continue
		}
		time, complete := baselines.Evaluate(db, w.Queries, cfg, baselines.EvalOptions{})
		if complete {
			study.Times = append(study.Times, time)
		}
	}
	if len(study.Times) == 0 {
		return nil, fmt.Errorf("bench: no samples completed")
	}
	sorted := append([]float64(nil), study.Times...)
	sort.Float64s(sorted)
	study.Ratio = sorted[len(sorted)-1] / sorted[0]
	return study, nil
}

// RenderOutliers prints the study.
func RenderOutliers(o *OutlierStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "15 LLM samples, TPC-H 1GB / Postgres — full-workload times:\n")
	for i, t := range o.Times {
		fmt.Fprintf(&b, "  sample %2d: %8.1fs\n", i+1, t)
	}
	fmt.Fprintf(&b, "worst/best ratio: %.1fx (paper reports up to ~5x)\n", o.Ratio)
	return b.String()
}
