package bench

import (
	"fmt"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/tuner"
	"lambdatune/internal/engine"
)

// TestGoldenSelectionE1 pins the E1 (TPC-H SF1, Postgres, seed 1) selection
// outcome to the values captured on the concrete-simulator implementation,
// before the backend interface layer existed. Selection decisions — winning
// candidate, its runtime, the default runtime, and the tuning-time accounting
// — must stay byte-identical across refactors of the backend seam, at
// Parallelism 1 and 4 alike, and with the plan-memoization caches on or off
// (memoization may only change host CPU time, never simulated seconds). Any
// drift here means observable behavior changed, not just structure.
func TestGoldenSelectionE1(t *testing.T) {
	golden := map[int]string{
		1: "p=1 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=272.15842967122728",
		4: "p=4 best=llm-1 bestTime=10.136116263704787 default=80.00490240754776 speedup=7.8930529530356512 tuning=216.78565701897892",
	}
	for _, p := range []int{1, 4} {
		for _, cache := range []bool{true, false} {
			name := fmt.Sprintf("parallelism-%d/cache=%v", p, cache)
			t.Run(name, func(t *testing.T) {
				sc := Scenario{Benchmark: "tpch-1", Flavor: engine.Postgres, Seed: 1}
				db, w, err := sc.NewDB()
				if err != nil {
					t.Fatal(err)
				}
				backend.SetPlanCache(db, cache)
				def := db.WorkloadSeconds(w.Queries)
				opts := tuner.DefaultOptions()
				opts.Seed = 1
				opts.Selector.Parallelism = p
				lt := &LambdaTune{Seed: 1, Opts: &opts}
				res, err := lt.RunLambdaTune(db, w.Queries)
				if err != nil {
					t.Fatal(err)
				}
				got := fmt.Sprintf("p=%d best=%s bestTime=%.17g default=%.17g speedup=%.17g tuning=%.17g",
					p, res.Best.ID, res.BestTime, def, def/res.BestTime, res.TuningSeconds)
				if got != golden[p] {
					t.Errorf("selection drifted from pre-refactor golden:\n got  %s\n want %s", got, golden[p])
				}
			})
		}
	}
}
