package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpanRecord is the JSONL export form of a span. IDs are assigned in
// depth-first traversal order (parent 0 = root), so a trace file is fully
// deterministic except for the wall_* and annots annotation fields.
// encoding/json serializes map keys sorted, which keeps Attrs byte-stable
// too.
type SpanRecord struct {
	ID          int            `json:"id"`
	Parent      int            `json:"parent"`
	Name        string         `json:"name"`
	VirtStart   float64        `json:"virt_start"`
	VirtEnd     float64        `json:"virt_end"`
	WallStartNS int64          `json:"wall_start_ns,omitempty"`
	WallEndNS   int64          `json:"wall_end_ns,omitempty"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Annots      map[string]any `json:"annots,omitempty"`
	Events      []EventRecord  `json:"events,omitempty"`
}

// EventRecord is the export form of a point event.
type EventRecord struct {
	Name   string         `json:"name"`
	Virt   float64        `json:"virt"`
	WallNS int64          `json:"wall_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Annots map[string]any `json:"annots,omitempty"`
}

// WriteJSONL writes the tracer's records to w, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Records())
}

// WriteFile drains the tracer to a JSONL trace file at path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	werr := t.WriteJSONL(bw)
	if e := bw.Flush(); werr == nil {
		werr = e
	}
	if e := f.Close(); werr == nil {
		werr = e
	}
	return werr
}

// WriteJSONL writes records to w, one JSON object per line.
func WriteJSONL(w io.Writer, recs []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace stream back into records. Blank lines are
// skipped; any malformed line is an error.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []SpanRecord
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadFile parses the JSONL trace file at path.
func ReadFile(path string) ([]SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// ValidateRecords checks the span-schema invariants a well-formed trace
// export satisfies: ids strictly increase from 1 (which also rules out
// duplicates), every parent id refers to an earlier span (parents precede
// children in DFS order), virtual intervals are non-negative and well-ordered,
// virtual clocks are monotone down the tree (a child cannot start before its
// parent) and within a span (events at non-decreasing virtual times, never
// before the span opened), at least one root exists, and event names are
// non-empty. CI runs this over freshly produced traces, and the job trace
// endpoint runs it over every completed job's export.
func ValidateRecords(recs []SpanRecord) error {
	if len(recs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	roots := 0
	for i, r := range recs {
		if r.ID != i+1 {
			return fmt.Errorf("span %d: id %d out of sequence (want %d)", i, r.ID, i+1)
		}
		if r.Name == "" {
			return fmt.Errorf("span %d: empty name", r.ID)
		}
		if r.Parent == 0 {
			roots++
		} else if r.Parent < 0 || r.Parent >= r.ID {
			return fmt.Errorf("span %d (%s): parent %d does not precede it", r.ID, r.Name, r.Parent)
		} else if ps := recs[r.Parent-1]; r.VirtStart < ps.VirtStart {
			return fmt.Errorf("span %d (%s): virt_start %g before parent %d (%s) start %g", r.ID, r.Name, r.VirtStart, ps.ID, ps.Name, ps.VirtStart)
		}
		if r.VirtStart < 0 {
			return fmt.Errorf("span %d (%s): negative virt_start %g", r.ID, r.Name, r.VirtStart)
		}
		if r.VirtEnd < r.VirtStart {
			return fmt.Errorf("span %d (%s): virt_end %g < virt_start %g", r.ID, r.Name, r.VirtEnd, r.VirtStart)
		}
		prev := r.VirtStart
		for _, ev := range r.Events {
			if ev.Name == "" {
				return fmt.Errorf("span %d (%s): event with empty name", r.ID, r.Name)
			}
			if ev.Virt < 0 {
				return fmt.Errorf("span %d (%s): event %s at negative virtual time %g", r.ID, r.Name, ev.Name, ev.Virt)
			}
			if ev.Virt < prev {
				return fmt.Errorf("span %d (%s): event %s at virtual time %g is non-monotonic (previous mark %g)", r.ID, r.Name, ev.Name, ev.Virt, prev)
			}
			prev = ev.Virt
		}
	}
	if roots == 0 {
		return fmt.Errorf("trace has no root span")
	}
	return nil
}
