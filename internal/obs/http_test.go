package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestMetricsServerServesAndShutsDown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total").Add(3)
	reg.Gauge("test_gauge").Set(1.5)

	ms := NewMetricsServer(reg, "127.0.0.1:0")
	if ms.Addr() != "" {
		t.Error("addr before start should be empty")
	}
	if err := ms.Start(nil); err != nil {
		t.Fatal(err)
	}
	addr := ms.Addr()
	if addr == "" {
		t.Fatal("no bound address after start")
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "test_total 3") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"test_gauge": 1.5`) {
		t.Errorf("/debug/vars body:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := ms.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port is actually released: a fresh listener can bind it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after shutdown: %v", err)
	}
	ln.Close()
}

func TestMetricsServerShutdownBeforeStart(t *testing.T) {
	ms := NewMetricsServer(NewRegistry(), ":0")
	if err := ms.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown before start: %v", err)
	}
}

func TestMetricsServerBadAddr(t *testing.T) {
	ms := NewMetricsServer(NewRegistry(), "256.256.256.256:99999")
	if err := ms.Start(nil); err == nil {
		t.Fatal("expected bind error")
	}
}
