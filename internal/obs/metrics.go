package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a run's metrics: counters, gauges, and fixed-bucket
// histograms, addressed by name. Metric handles are cheap and lock-free
// after lookup (atomic float64 bit operations), so hot paths should resolve
// a handle once and reuse it. A nil *Registry returns nil metric handles,
// whose methods are all no-ops — call sites need no conditionals.
//
// Export comes in two dialects: WritePrometheus emits the text exposition
// format for scrape endpoints, and String() emits the JSON object form that
// expvar.Publish expects, so a Registry can be mounted directly on
// /debug/vars via expvar.Var.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*MetricHistogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*MetricHistogram{},
	}
}

// Counter is a monotonically increasing metric. The zero of a nil handle is
// a no-op.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by v (negative deltas are ignored — counters
// only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		if c.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricBuckets are the histogram upper bounds: one per decade from 1µs to
// 10,000s (the simulator's plausible per-call latency range), plus +Inf.
// They mirror the backend stats histograms so the two exports line up.
var metricBuckets = [...]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4}

// MetricHistogram is a fixed-bucket histogram with atomic buckets; Observe
// is lock-free.
type MetricHistogram struct {
	buckets [len(metricBuckets) + 1]atomic.Uint64 // last = overflow (+Inf)
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *MetricHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(metricBuckets) && v > metricBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *MetricHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *MetricHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *MetricHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &MetricHistogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every scalar metric (counters and gauges; histograms
// contribute name_count and name_sum) as a sorted-key map. This is the form
// folded into Result.Telemetry.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.counts)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus emits the registry in the Prometheus text exposition
// format (families sorted by name; counters as TYPE counter, gauges as
// gauge, histograms with cumulative le buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counts := sortedKeys(r.counts)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	r.mu.RUnlock()

	var b strings.Builder
	for _, name := range counts {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %v\n", name, name, r.Counter(name).Value())
	}
	for _, name := range gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %v\n", name, name, r.Gauge(name).Value())
	}
	for _, name := range hists {
		h := r.Histogram(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, ub := range metricBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, trimFloat(ub), cum)
		}
		cum += h.buckets[len(metricBuckets)].Load()
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %v\n%s_count %d\n", name, h.Sum(), name, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the registry as a JSON object of scalar values, the shape
// expvar.Publish expects of an expvar.Var, so a Registry can be mounted on
// /debug/vars directly.
func (r *Registry) String() string {
	if r == nil {
		return "{}"
	}
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %v", k, snap[k])
	}
	b.WriteByte('}')
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// trimFloat formats a bucket bound compactly (0.001, 1, 10000).
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
