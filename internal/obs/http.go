package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"
)

// MetricsServer serves a Registry over HTTP: Prometheus text exposition at
// /metrics and expvar-compatible JSON at /debug/vars. It owns its listener,
// so tests can bind ":0" and read the resolved address, and it shuts down
// gracefully — in-flight scrapes finish, the port is released — instead of
// being abandoned to process exit.
type MetricsServer struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener
}

// NewMetricsServer creates a server for the registry on addr (e.g. ":9090",
// "127.0.0.1:0"). Nothing is bound until Start.
func NewMetricsServer(reg *Registry, addr string) *MetricsServer {
	m := &MetricsServer{reg: reg}
	m.srv = &http.Server{Addr: addr, Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return m
}

// Handler returns the metrics mux, for embedding into a larger server (the
// lambdatuned job service mounts it next to its job endpoints).
func (m *MetricsServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, m.reg.String())
	})
	return mux
}

// Start binds the address and serves in the background. It returns once the
// listener is bound, so Addr is immediately valid; serve-loop failures after
// that are reported to errf when set.
func (m *MetricsServer) Start(errf func(error)) error {
	ln, err := net.Listen("tcp", m.srv.Addr)
	if err != nil {
		return err
	}
	m.ln = ln
	go func() {
		if err := m.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if errf != nil {
				errf(err)
			}
		}
	}()
	return nil
}

// Addr returns the bound address ("" before Start) — the resolved port when
// Start bound ":0".
func (m *MetricsServer) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests get until ctx's deadline to finish, then the listener closes.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	if m.ln == nil {
		return nil
	}
	return m.srv.Shutdown(ctx)
}
