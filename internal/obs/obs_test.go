package obs

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every entry point through nil receivers: the whole
// API must degrade to no-ops so untraced runs need no conditionals.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "x", 0)
	if s != nil {
		t.Fatalf("nil tracer must return nil span, got %v", s)
	}
	s.SetAttrs(Int("a", 1))
	s.Event("e", 1)
	s.End(2)
	if got := s.Name(); got != "" {
		t.Fatalf("nil span name = %q", got)
	}
	if tr.Root() != nil || tr.Len() != 0 || tr.Records() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Histogram("h").Observe(1)
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if got := reg.String(); got != "{}" {
		t.Fatalf("nil registry String() = %q", got)
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	Emitf(nil, 0, "round", "dropped")
	var cr *ConsoleReporter
	cr.Emit(ProgressEvent{})
}

// TestTraceTreeAndRecords pins DFS renumbering: children follow parents in
// creation order, ids are sequential, and wall fields come from the
// injected clock.
func TestTraceTreeAndRecords(t *testing.T) {
	tr := NewTracer()
	var tick int64
	tr.SetWallClock(func() time.Time {
		tick++
		return time.Unix(0, tick*1000)
	})
	run := tr.Start(nil, "run", 0, String("benchmark", "tpch-1"))
	a := tr.Start(run, "llm.sample", 0, Int("idx", 0))
	a.End(60)
	sel := tr.Start(run, "selection", 60)
	cand := tr.Start(sel, "candidate", 60, String("config", "llm-0"))
	q := tr.Start(cand, "query", 60, String("query", "q1"))
	q.End(70)
	cand.Event("verdict", 70, Bool("complete", true))
	cand.End(70)
	sel.End(70)
	run.End(70)

	if tr.Root() != run {
		t.Fatal("Root() must return the first root span")
	}
	recs := tr.Records()
	if err := ValidateRecords(recs); err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"run", "llm.sample", "selection", "candidate", "query"}
	wantParents := []int{0, 1, 1, 3, 4}
	if len(recs) != len(wantNames) {
		t.Fatalf("got %d records, want %d", len(recs), len(wantNames))
	}
	for i, r := range recs {
		if r.Name != wantNames[i] || r.Parent != wantParents[i] || r.ID != i+1 {
			t.Errorf("record %d = {id %d, parent %d, name %s}, want {id %d, parent %d, name %s}",
				i, r.ID, r.Parent, r.Name, i+1, wantParents[i], wantNames[i])
		}
		if r.WallStartNS == 0 {
			t.Errorf("record %d: missing wall start", i)
		}
	}
	if recs[4].VirtStart != 60 || recs[4].VirtEnd != 70 {
		t.Errorf("query span virtual interval = [%g,%g], want [60,70]", recs[4].VirtStart, recs[4].VirtEnd)
	}
	if len(recs[3].Events) != 1 || recs[3].Events[0].Name != "verdict" {
		t.Errorf("candidate events = %+v, want one verdict", recs[3].Events)
	}
}

// TestShapeStringDeterministic checks that two identically-driven tracers
// with different wall clocks render byte-identical shapes.
func TestShapeStringDeterministic(t *testing.T) {
	build := func(epoch int64) string {
		tr := NewTracer()
		tr.SetWallClock(func() time.Time { return time.Unix(epoch, 0) })
		run := tr.Start(nil, "run", 0)
		c := tr.Start(run, "candidate", 1, String("config", "llm-0"), Float("timeout", 2.5))
		c.Event("verdict", 3, Bool("complete", false))
		c.End(3)
		run.End(3)
		return ShapeString(tr.Records())
	}
	a, b := build(1000), build(999999)
	if a != b {
		t.Fatalf("shape depends on wall clock:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "candidate [1,3] config=llm-0 timeout=2.5") {
		t.Errorf("shape missing candidate line:\n%s", a)
	}
	if !strings.Contains(a, "@3 verdict complete=false") {
		t.Errorf("shape missing event line:\n%s", a)
	}
}

// TestAnnotAttributes: Annot-marked attributes export in the annots field,
// survive a JSONL round trip, and are scrubbed from the trace shape — two
// runs differing only in annotation values produce identical shapes.
func TestAnnotAttributes(t *testing.T) {
	build := func(hit bool) (*Tracer, string) {
		tr := NewTracer()
		run := tr.Start(nil, "run", 0)
		sch := tr.Start(run, "schedule", 1, Bool("scheduler", true), Annot(Bool("memo_hit", hit)))
		sch.Event("probe", 2, Int("n", 1), Annot(Bool("cached", hit)))
		sch.End(2)
		run.End(2)
		return tr, ShapeString(tr.Records())
	}
	tr, a := build(true)
	_, b := build(false)
	if a != b {
		t.Fatalf("shape depends on annotation values:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(a, "memo_hit") || strings.Contains(a, "cached") {
		t.Fatalf("annotations leaked into the shape:\n%s", a)
	}
	if !strings.Contains(a, "schedule [1,2] scheduler=true") {
		t.Errorf("deterministic attrs missing from the shape:\n%s", a)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sch := recs[1]
	if sch.Annots["memo_hit"] != true {
		t.Errorf("span annots lost in round trip: %+v", sch.Annots)
	}
	if _, ok := sch.Attrs["memo_hit"]; ok {
		t.Errorf("annotation duplicated into attrs: %+v", sch.Attrs)
	}
	ev := sch.Events[0]
	if ev.Annots["cached"] != true || ev.Attrs["n"].(float64) != 1 {
		t.Errorf("event attr split drifted: attrs=%+v annots=%+v", ev.Attrs, ev.Annots)
	}
}

// TestJSONLRoundTrip writes records out and reads them back.
func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	run := tr.Start(nil, "run", 0, Int("samples", 3))
	s := tr.Start(run, "llm.sample", 0)
	s.Event("llm.retry", 2, Int("attempt", 1), Float("backoff", 1.5))
	s.End(4)
	run.End(4)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Records()
	if len(got) != len(want) {
		t.Fatalf("round trip lost records: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Parent != want[i].Parent ||
			got[i].VirtStart != want[i].VirtStart || got[i].VirtEnd != want[i].VirtEnd {
			t.Errorf("record %d drifted: got %+v want %+v", i, got[i], want[i])
		}
	}
	// JSON numbers decode as float64; the retry attrs must survive.
	ev := got[1].Events[0]
	if ev.Attrs["attempt"].(float64) != 1 || ev.Attrs["backoff"].(float64) != 1.5 {
		t.Errorf("event attrs lost in round trip: %+v", ev.Attrs)
	}
}

// TestValidateRecords exercises the schema checks against broken traces.
func TestValidateRecords(t *testing.T) {
	ok := []SpanRecord{{ID: 1, Name: "run"}, {ID: 2, Parent: 1, Name: "q", VirtStart: 1, VirtEnd: 2}}
	if err := ValidateRecords(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		recs []SpanRecord
	}{
		{"empty", nil},
		{"id gap", []SpanRecord{{ID: 2, Name: "run"}}},
		{"no name", []SpanRecord{{ID: 1}}},
		{"forward parent", []SpanRecord{{ID: 1, Name: "run", Parent: 2}}},
		{"negative start", []SpanRecord{{ID: 1, Name: "run", VirtStart: -1}}},
		{"inverted interval", []SpanRecord{{ID: 1, Name: "run", VirtStart: 5, VirtEnd: 4}}},
		{"unnamed event", []SpanRecord{{ID: 1, Name: "run", Events: []EventRecord{{}}}}},
	}
	for _, tc := range cases {
		if err := ValidateRecords(tc.recs); err == nil {
			t.Errorf("%s: invalid trace accepted", tc.name)
		}
	}
}

// TestRegistry covers counter/gauge/histogram semantics and both export
// dialects.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tuner_rounds_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // counters never decrease
	if c.Value() != 3 {
		t.Errorf("counter = %g, want 3", c.Value())
	}
	if r.Counter("tuner_rounds_total") != c {
		t.Error("counter handle not cached")
	}
	g := r.Gauge("tuner_best_seconds")
	g.Set(10.5)
	g.Add(-0.5)
	if g.Value() != 10 {
		t.Errorf("gauge = %g, want 10", g.Value())
	}
	h := r.Histogram("backend_run_query_virtual_seconds")
	for _, v := range []float64{0.5, 2, 2, 1e5} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 100004.5 {
		t.Errorf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if snap["tuner_rounds_total"] != 3 || snap["tuner_best_seconds"] != 10 ||
		snap["backend_run_query_virtual_seconds_count"] != 4 {
		t.Errorf("snapshot = %v", snap)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE tuner_rounds_total counter\ntuner_rounds_total 3",
		"# TYPE tuner_best_seconds gauge\ntuner_best_seconds 10",
		"# TYPE backend_run_query_virtual_seconds histogram",
		`backend_run_query_virtual_seconds_bucket{le="1"} 1`,
		`backend_run_query_virtual_seconds_bucket{le="10"} 3`,
		`backend_run_query_virtual_seconds_bucket{le="+Inf"} 4`,
		"backend_run_query_virtual_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, text)
		}
	}

	js := r.String()
	if !strings.Contains(js, `"tuner_rounds_total": 3`) || !strings.HasPrefix(js, "{") || !strings.HasSuffix(js, "}") {
		t.Errorf("expvar export = %s", js)
	}
}

// TestRegistryConcurrent hammers one counter, gauge and histogram from many
// goroutines; run under -race this also proves the handles are safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %g, want %d", got, workers*per)
	}
	if got := r.Gauge("g").Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestSummarizeFixture classifies the checked-in fixture trace and pins the
// per-phase breakdown (the same fixture backs the trace-summary CLI test).
func TestSummarizeFixture(t *testing.T) {
	recs, err := ReadFile(filepath.Join("testdata", "fixture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRecords(recs); err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	if s.Spans != 12 || s.Events != 2 {
		t.Fatalf("spans=%d events=%d, want 12/2", s.Spans, s.Events)
	}
	got := map[string]PhaseCost{}
	for _, p := range s.Phases {
		got[p.Phase] = p
	}
	want := map[string]struct {
		spans int
		virt  float64
	}{
		PhaseLLM:      {2, 120},
		PhaseEval:     {2, 69.5},
		PhaseIndex:    {1, 10},
		PhasePrompt:   {1, 0.5},
		PhaseSchedule: {1, 0},
	}
	for phase, w := range want {
		p, ok := got[phase]
		if !ok {
			t.Errorf("phase %s missing from summary", phase)
			continue
		}
		if p.Spans != w.spans || math.Abs(p.VirtSeconds-w.virt) > 1e-9 {
			t.Errorf("phase %s = {spans %d, virt %g}, want {%d, %g}", phase, p.Spans, p.VirtSeconds, w.spans, w.virt)
		}
	}
	// Phases sort by descending virtual spend: llm first.
	if s.Phases[0].Phase != PhaseLLM {
		t.Errorf("top phase = %s, want llm", s.Phases[0].Phase)
	}
	// The schedule span carries wall-only cost (500ns).
	if sched := got[PhaseSchedule]; sched.WallSeconds != 5e-7 {
		t.Errorf("schedule wall seconds = %g, want 5e-7", sched.WallSeconds)
	}

	table := SummaryTable(s)
	for _, want := range []string{"phase", "llm", "eval", "index-build", "total", "spans=12 events=2"} {
		if !strings.Contains(table, want) {
			t.Errorf("summary table missing %q:\n%s", want, table)
		}
	}
}

// TestContextSpan round-trips a span through context.
func TestContextSpan(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(nil, "llm.sample", 0)
	ctx := ContextWithSpan(nil, s)
	if got := SpanFromContext(ctx); got != s {
		t.Fatal("span lost in context round trip")
	}
	if SpanFromContext(nil) != nil {
		t.Fatal("nil context must yield nil span")
	}
	if got := ContextWithSpan(nil, nil); SpanFromContext(got) != nil {
		t.Fatal("nil span must not be stored")
	}
}

// TestEndIdempotent pins first-End-wins semantics.
func TestEndIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(nil, "run", 0)
	s.End(5)
	s.End(9)
	recs := tr.Records()
	if recs[0].VirtEnd != 5 {
		t.Fatalf("second End overwrote the first: virt_end=%g", recs[0].VirtEnd)
	}
}

// TestTracerSummarizeMatchesRecords pins the direct span-walk Summarize to
// the record-based aggregation: same spans, same events, same phase buckets
// in the same order, including the open-span and inverted-interval clamps.
func TestTracerSummarizeMatchesRecords(t *testing.T) {
	tr := NewTracer()
	var tick int64
	tr.SetWallClock(func() time.Time {
		tick++
		return time.Unix(0, tick*1000)
	})
	run := tr.Start(nil, "run", 0)
	l := tr.Start(run, "llm.sample", 0)
	l.End(60)
	q := tr.Start(run, "query", 60, String("query", "q1"))
	q.Event("timeout", 65)
	q.End(70)
	ix := tr.Start(run, "index.build", 70)
	ix.End(68)                    // inverted interval: export clamps end to start
	tr.Start(run, "schedule", 70) // left open: virt_end == virt_start
	run.End(70)

	got := tr.Summarize()
	want := Summarize(tr.Records())
	if got.Spans != want.Spans || got.Events != want.Events {
		t.Fatalf("totals = {spans %d, events %d}, want {spans %d, events %d}",
			got.Spans, got.Events, want.Spans, want.Events)
	}
	if len(got.Phases) != len(want.Phases) {
		t.Fatalf("got %d phases, want %d", len(got.Phases), len(want.Phases))
	}
	for i := range want.Phases {
		g, w := got.Phases[i], want.Phases[i]
		if g.Phase != w.Phase || g.Spans != w.Spans ||
			math.Abs(g.VirtSeconds-w.VirtSeconds) > 1e-12 ||
			math.Abs(g.WallSeconds-w.WallSeconds) > 1e-12 {
			t.Errorf("phase %d = %+v, want %+v", i, g, w)
		}
	}
}
