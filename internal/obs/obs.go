// Package obs is λ-Tune's run-scoped telemetry subsystem: hierarchical trace
// spans, a metrics registry, and live progress reporting. The paper's value
// claim is *bounded evaluation cost* (geometric timeouts, lazy index creation,
// DP scheduling), and obs makes that budget auditable — every tuning run can
// record where its virtual seconds went (LLM calls, query evaluation, index
// builds, scheduling) and drain the record to a JSONL trace file.
//
// Design constraints, in order:
//
//   - Passive. Tracing must never change tuning behavior: spans read the
//     virtual clock, they never advance it, and no instrumentation site takes
//     a decision based on telemetry. A traced run selects the same
//     configuration, byte for byte, as an untraced one.
//   - Deterministic. Span ordering and all span timestamps are derived from
//     the virtual clock and the instrumentation sites' deterministic call
//     order; host wall-clock times are carried as annotations only. Exported
//     traces of two runs with the same seed are identical after scrubbing the
//     wall fields (see ShapeString).
//   - Cheap and optional. A nil *Tracer, nil *Span, nil *Registry and nil
//     sink are all valid and turn every call into a no-op, so call sites need
//     no conditionals and an untraced run pays one nil check per site.
//
// Concurrency: the tracer's span list is guarded by one mutex, and each span
// carries its own (uncontended) mutex — parallel evaluation workers touch
// disjoint spans, but the detector-visible accesses stay synchronized. Trace
// shape stays deterministic under parallelism because every span's children
// are created by exactly one goroutine (see Records).
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span or event attribute. Construct with String, Int,
// Float or Bool so values stay JSON-friendly. Annot marks the attribute as a
// nondeterministic annotation: it is exported alongside the wall clocks but
// excluded from the deterministic trace shape.
type Attr struct {
	Key   string
	Value any
	Annot bool
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Annot marks an attribute as a nondeterministic annotation — a fact whose
// value legitimately depends on scheduling (cache hit/miss under a worker
// pool, host resource readings). Annotations ride in the JSONL export's
// annots field, next to the wall clocks, and ShapeString scrubs them; the
// shape goldens stay byte-stable at any parallelism.
func Annot(a Attr) Attr { a.Annot = true; return a }

// Event is a point-in-time occurrence inside a span (a retry, a breaker
// transition, an injected fault, a checkpoint save). Virt is its virtual
// timestamp; WallNS the host annotation (UnixNano, 0 = unset).
type Event struct {
	Name   string
	Virt   float64
	WallNS int64
	Attrs  []Attr
}

// spanAttrBuf sizes the inline attribute storage every span carries. The
// instrumentation sites attach at most four attributes to the hot span kinds
// (query: 4, index.build: 3, schedule: 3), so the inline buffer absorbs
// nearly every attribute without a heap allocation; the rare richer span
// (the run root) spills into attrExtra. Because Start and SetAttrs copy into
// this buffer instead of retaining the caller's variadic slice, the
// compiler's escape analysis keeps those call-site slices on the stack —
// the dominant per-span allocation before this layout.
const spanAttrBuf = 4

// Span is one node of the trace tree: a named operation with a virtual-clock
// interval, a host wall-clock interval (annotation only), typed attributes,
// and point events. Spans are created with Tracer.Start and closed with End;
// a nil *Span is valid and ignores every call.
type Span struct {
	tr     *Tracer
	parent *Span
	name   string

	mu        sync.Mutex
	virtStart float64
	virtEnd   float64
	// wallStartNS / wallEndNS are UnixNano host stamps (0 = unset). Stored
	// as integers, not time.Time: spans are allocated by the hundreds per
	// run, and the monotonic-clock and *Location fields of time.Time would
	// cost 32 bytes and a GC-scanned pointer per span for an
	// annotation-only value.
	wallStartNS int64
	wallEndNS   int64
	// attrKeys/attrVals store the inline attributes as parallel arrays
	// rather than [spanAttrBuf]Attr: packing drops the per-Attr Annot bool
	// (plus its 7 padding bytes) into one bitmask, shrinking every span by
	// 32 bytes — real money when a traced run allocates hundreds of spans.
	attrKeys  [spanAttrBuf]string
	attrVals  [spanAttrBuf]any
	id        int32 // creation index + 1, assigned under tr.mu at Start
	nattr     uint8
	annotBits uint8
	ended     bool
}

// spanExtra holds the rare per-span payloads — point events and attribute
// overflow past the inline buffer — off the Span itself. A typical trace
// records a handful of events and spills across hundreds of spans, so
// keeping these two slice headers out of every span saves 48 bytes per span
// in exchange for a tracer-side map entry on the few spans that need one.
type spanExtra struct {
	attrs  []Attr
	events []Event
}

// appendInline copies attrs into the span's inline buffers and returns the
// overflow tail (a view into attrs, not retained). Callers hold s.mu (or
// the span is not yet published).
func (s *Span) appendInline(attrs []Attr) []Attr {
	i := 0
	for ; i < len(attrs) && int(s.nattr) < spanAttrBuf; i++ {
		s.attrKeys[s.nattr] = attrs[i].Key
		s.attrVals[s.nattr] = attrs[i].Value
		if attrs[i].Annot {
			s.annotBits |= 1 << s.nattr
		}
		s.nattr++
	}
	return attrs[i:]
}

// attrMaps folds the span's attributes (inline buffers plus any overflow)
// into the export maps (deterministic attributes and wall-clock
// annotations), later keys shadowing earlier ones. Returns nil maps when
// the span has no attributes of that kind. Callers hold s.mu.
func (s *Span) attrMaps(extra []Attr) (attrs, annots map[string]any) {
	n := int(s.nattr) + len(extra)
	if n == 0 {
		return nil, nil
	}
	add := func(key string, val any, annot bool) {
		if annot {
			if annots == nil {
				annots = make(map[string]any, n)
			}
			annots[key] = val
		} else {
			if attrs == nil {
				attrs = make(map[string]any, n)
			}
			attrs[key] = val
		}
	}
	for i := 0; i < int(s.nattr); i++ {
		add(s.attrKeys[i], s.attrVals[i], s.annotBits&(1<<i) != 0)
	}
	for _, a := range extra {
		add(a.Key, a.Value, a.Annot)
	}
	return attrs, annots
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttrs appends attributes to the span. Later keys shadow earlier ones at
// export time, so re-setting a key is allowed.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	rest := s.appendInline(attrs)
	s.mu.Unlock()
	if len(rest) > 0 {
		s.tr.spill(s, rest)
	}
}

// Event records a point event at virtual time virt.
func (s *Span) Event(name string, virt float64, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.tr
	wall := t.wallNow()
	t.mu.Lock()
	ex := t.extraLocked(s)
	ex.events = append(ex.events, Event{Name: name, Virt: virt, WallNS: wall, Attrs: attrs})
	t.mu.Unlock()
}

// End closes the span at virtual time virt. The first End wins; further calls
// are ignored, so defensive double-ends on error paths are harmless.
func (s *Span) End(virt float64) {
	if s == nil {
		return
	}
	wall := s.tr.wallNow()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.virtEnd = virt
		s.wallEndNS = wall
	}
	s.mu.Unlock()
}

// Tracer records one run's spans. The zero value is not usable; construct
// with NewTracer. A nil *Tracer is valid: Start returns a nil span and every
// derived call becomes a no-op.
// spanArena batches span allocation: a tuning run starts hundreds of tiny
// spans, and carving them out of fixed-size chunks instead of one heap object
// each keeps the traced run's GC object count (and with it the mark cost the
// telemetry phase pays in E17) close to the untraced run's. Chunks are never
// grown in place, so handed-out *Span pointers stay stable.
const spanArena = 64

type Tracer struct {
	mu   sync.Mutex
	root *Span
	// chunks holds the filled arena chunks and arena the one being carved;
	// together they store every span in creation order, so the tracer needs
	// no separate []*Span index — exports walk the chunks directly and a
	// span's creation ID lives on the span itself. Guarded by mu.
	chunks    [][]Span
	arena     []Span
	arenaUsed int
	nspans    int
	// extras maps the few spans carrying events or attribute overflow to
	// their off-span payload. Lazily allocated; guarded by mu.
	extras map[*Span]*spanExtra

	// now supplies host wall timestamps; replaceable for tests. Held in an
	// atomic rather than under mu: every Start/End/Event reads the clock, and
	// parallel evaluation workers would otherwise serialize on the tracer
	// mutex just to take a wall annotation.
	now atomic.Pointer[func() time.Time]
}

// NewTracer returns an empty run tracer.
func NewTracer() *Tracer {
	t := &Tracer{}
	f := time.Now
	t.now.Store(&f)
	return t
}

// SetWallClock replaces the host wall-clock source (tests pin it to make the
// full export, not just the shape, reproducible).
func (t *Tracer) SetWallClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now.Store(&now)
}

// wallNow reads the host clock as UnixNano, or 0 when the clock source
// yields the zero time (matching the "unset" convention of the span fields).
func (t *Tracer) wallNow() int64 {
	if t == nil {
		return 0
	}
	f := t.now.Load()
	if f == nil {
		return 0
	}
	tm := (*f)()
	if tm.IsZero() {
		return 0
	}
	return tm.UnixNano()
}

// Start opens a span under parent (nil parent = a root span) at virtual time
// virt. The first root span becomes Root(). Returns nil when the tracer is
// nil.
func (t *Tracer) Start(parent *Span, name string, virt float64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	wall := t.wallNow()
	t.mu.Lock()
	if t.arenaUsed == len(t.arena) {
		if t.arenaUsed > 0 {
			t.chunks = append(t.chunks, t.arena)
		}
		t.arena = make([]Span, spanArena)
		t.arenaUsed = 0
	}
	s := &t.arena[t.arenaUsed]
	t.arenaUsed++
	t.nspans++
	// Field-by-field init (not a struct literal assignment): the slot is
	// fresh zeroed arena memory, and copying a Span value would copy its
	// mutex.
	s.tr = t
	s.parent = parent
	s.name = name
	s.id = int32(t.nspans)
	s.virtStart = virt
	s.virtEnd = virt
	s.wallStartNS = wall
	if rest := s.appendInline(attrs); len(rest) > 0 {
		t.spillLocked(s, rest)
	}
	if t.root == nil && parent == nil {
		t.root = s
	}
	t.mu.Unlock()
	return s
}

// extraLocked returns (allocating on first use) the span's off-span payload.
// Callers hold t.mu.
func (t *Tracer) extraLocked(s *Span) *spanExtra {
	ex := t.extras[s]
	if ex == nil {
		if t.extras == nil {
			t.extras = make(map[*Span]*spanExtra)
		}
		ex = &spanExtra{}
		t.extras[s] = ex
	}
	return ex
}

// spill appends attribute overflow to the span's off-span payload.
func (t *Tracer) spill(s *Span, rest []Attr) {
	t.mu.Lock()
	t.spillLocked(s, rest)
	t.mu.Unlock()
}

func (t *Tracer) spillLocked(s *Span, rest []Attr) {
	ex := t.extraLocked(s)
	ex.attrs = append(ex.attrs, rest...)
}

// snapshot returns stable views of every span created so far, in creation
// order, plus a by-value copy of the off-span payload map. Chunk backing
// arrays never move or shrink once allocated, so the views stay valid after
// the lock is released; a concurrent Start only writes slots past the
// returned prefix, and a concurrent spill/Event only writes payload slots
// past the copied slice lengths.
func (t *Tracer) snapshot() ([][]Span, map[*Span]spanExtra) {
	t.mu.Lock()
	views := make([][]Span, 0, len(t.chunks)+1)
	views = append(views, t.chunks...)
	if t.arenaUsed > 0 {
		views = append(views, t.arena[:t.arenaUsed])
	}
	var extras map[*Span]spanExtra
	if len(t.extras) > 0 {
		extras = make(map[*Span]spanExtra, len(t.extras))
		for s, ex := range t.extras {
			extras[s] = *ex
		}
	}
	t.mu.Unlock()
	return views, extras
}

// Root returns the first root span (the "run" span in a tuning run), or nil.
// Detached event sources — the fault injector observes the engine from below
// the tracing call sites — attach their events here.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nspans
}

// Records flattens the trace into export records in deterministic order:
// depth-first over the span tree, children in creation order. Creation order
// per parent is deterministic even under parallel evaluation because every
// span's children are created by exactly one goroutine (the selector creates
// candidate spans before dispatch; each candidate's query/index spans are
// created by the one worker that owns the task). IDs are assigned in
// traversal order, so two runs with the same seed export identical records up
// to the wall-clock annotation fields.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	views, extras := t.snapshot()
	var total int
	for _, v := range views {
		total += len(v)
	}

	children := make(map[*Span][]*Span, total)
	var roots []*Span
	for _, v := range views {
		for i := range v {
			s := &v[i]
			if s.parent == nil {
				roots = append(roots, s)
				continue
			}
			children[s.parent] = append(children[s.parent], s)
		}
	}

	out := make([]SpanRecord, 0, total)
	var walk func(s *Span, parentID int)
	walk = func(s *Span, parentID int) {
		id := len(out) + 1
		out = append(out, s.record(id, parentID, extras[s]))
		for _, c := range children[s] {
			walk(c, id)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

// CreationRecords flattens the trace in span-creation order — the order the
// run emitted spans — with IDs that are stable as the trace grows: a span's ID
// is its creation index + 1 and never changes when later spans arrive, unlike
// Records' DFS renumbering. Parents always precede their children (a child is
// started under an already-created parent), so any prefix of the creation
// order is itself a well-formed trace, which is what lets a live stream emit
// records incrementally: callers poll with since = number of records already
// emitted and get only the new tail. Each record snapshots the span's state at
// call time; spans still open report virt_end == virt_start. The DFS export
// from Records remains the canonical completed-trace form.
func (t *Tracer) CreationRecords(since int) []SpanRecord {
	if t == nil {
		return nil
	}
	views, extras := t.snapshot()
	var total int
	for _, v := range views {
		total += len(v)
	}
	if since < 0 {
		since = 0
	}
	if since >= total {
		return nil
	}
	out := make([]SpanRecord, 0, total-since)
	idx := 0
	for _, v := range views {
		if idx+len(v) <= since {
			idx += len(v)
			continue
		}
		for i := range v {
			if idx++; idx <= since {
				continue
			}
			s := &v[i]
			parent := 0
			if s.parent != nil {
				parent = int(s.parent.id)
			}
			out = append(out, s.record(int(s.id), parent, extras[s]))
		}
	}
	return out
}

// record snapshots the span into an export record. ex carries the span's
// off-span payload (events, attribute overflow), already copied out of the
// tracer by snapshot.
func (s *Span) record(id, parent int, ex spanExtra) SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := SpanRecord{
		ID:        id,
		Parent:    parent,
		Name:      s.name,
		VirtStart: s.virtStart,
		VirtEnd:   s.virtEnd,
	}
	r.WallStartNS = s.wallStartNS
	r.WallEndNS = s.wallEndNS
	if r.VirtEnd < r.VirtStart {
		r.VirtEnd = r.VirtStart
	}
	r.Attrs, r.Annots = s.attrMaps(ex.attrs)
	for _, ev := range ex.events {
		er := EventRecord{Name: ev.Name, Virt: ev.Virt, WallNS: ev.WallNS}
		if len(ev.Attrs) > 0 {
			er.Attrs = attrMap(ev.Attrs)
			er.Annots = annotMap(ev.Attrs)
		}
		r.Events = append(r.Events, er)
	}
	return r
}

// attrMap folds the deterministic attributes of an ordered list into a map;
// later keys shadow earlier ones. Annotations are split off by annotMap.
func attrMap(attrs []Attr) map[string]any {
	var m map[string]any
	for _, a := range attrs {
		if a.Annot {
			continue
		}
		if m == nil {
			m = make(map[string]any, len(attrs))
		}
		m[a.Key] = a.Value
	}
	return m
}

// annotMap folds the annotation attributes into their own map, or nil when
// there are none.
func annotMap(attrs []Attr) map[string]any {
	var m map[string]any
	for _, a := range attrs {
		if !a.Annot {
			continue
		}
		if m == nil {
			m = make(map[string]any)
		}
		m[a.Key] = a.Value
	}
	return m
}

// ShapeString renders records as an indented span tree with names, sorted
// attributes, virtual timestamps and events — every deterministic field — and
// scrubs the annotations (wall clocks and Annot-marked attributes). Two runs
// with the same seed produce byte-identical shape strings at any
// parallelism; the golden trace test pins this.
func ShapeString(recs []SpanRecord) string {
	depth := map[int]int{}
	var b strings.Builder
	for _, r := range recs {
		d := 0
		if r.Parent != 0 {
			d = depth[r.Parent] + 1
		}
		depth[r.ID] = d
		indent := strings.Repeat("  ", d)
		fmt.Fprintf(&b, "%s%s [%.9g,%.9g]%s\n", indent, r.Name, r.VirtStart, r.VirtEnd, attrString(r.Attrs))
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "%s  @%.9g %s%s\n", indent, ev.Virt, ev.Name, attrString(ev.Attrs))
		}
	}
	return b.String()
}

// attrString renders attributes sorted by key as " k=v ...".
func attrString(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v := attrs[k]
		if f, ok := v.(float64); ok {
			fmt.Fprintf(&b, " %s=%.9g", k, f)
			continue
		}
		fmt.Fprintf(&b, " %s=%v", k, v)
	}
	return b.String()
}

// ctxKey carries the active span through context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying span; layers below the
// instrumentation site (the resilient LLM client) retrieve it with
// SpanFromContext to attach their events.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
