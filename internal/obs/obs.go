// Package obs is λ-Tune's run-scoped telemetry subsystem: hierarchical trace
// spans, a metrics registry, and live progress reporting. The paper's value
// claim is *bounded evaluation cost* (geometric timeouts, lazy index creation,
// DP scheduling), and obs makes that budget auditable — every tuning run can
// record where its virtual seconds went (LLM calls, query evaluation, index
// builds, scheduling) and drain the record to a JSONL trace file.
//
// Design constraints, in order:
//
//   - Passive. Tracing must never change tuning behavior: spans read the
//     virtual clock, they never advance it, and no instrumentation site takes
//     a decision based on telemetry. A traced run selects the same
//     configuration, byte for byte, as an untraced one.
//   - Deterministic. Span ordering and all span timestamps are derived from
//     the virtual clock and the instrumentation sites' deterministic call
//     order; host wall-clock times are carried as annotations only. Exported
//     traces of two runs with the same seed are identical after scrubbing the
//     wall fields (see ShapeString).
//   - Cheap and optional. A nil *Tracer, nil *Span, nil *Registry and nil
//     sink are all valid and turn every call into a no-op, so call sites need
//     no conditionals and an untraced run pays one nil check per site.
//
// Concurrency: the tracer's span list is guarded by one mutex, and each span
// carries its own (uncontended) mutex — parallel evaluation workers touch
// disjoint spans, but the detector-visible accesses stay synchronized. Trace
// shape stays deterministic under parallelism because every span's children
// are created by exactly one goroutine (see Records).
package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one typed span or event attribute. Construct with String, Int,
// Float or Bool so values stay JSON-friendly. Annot marks the attribute as a
// nondeterministic annotation: it is exported alongside the wall clocks but
// excluded from the deterministic trace shape.
type Attr struct {
	Key   string
	Value any
	Annot bool
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Annot marks an attribute as a nondeterministic annotation — a fact whose
// value legitimately depends on scheduling (cache hit/miss under a worker
// pool, host resource readings). Annotations ride in the JSONL export's
// annots field, next to the wall clocks, and ShapeString scrubs them; the
// shape goldens stay byte-stable at any parallelism.
func Annot(a Attr) Attr { a.Annot = true; return a }

// Event is a point-in-time occurrence inside a span (a retry, a breaker
// transition, an injected fault, a checkpoint save). Virt is its virtual
// timestamp; Wall the host annotation.
type Event struct {
	Name  string
	Virt  float64
	Wall  time.Time
	Attrs []Attr
}

// Span is one node of the trace tree: a named operation with a virtual-clock
// interval, a host wall-clock interval (annotation only), typed attributes,
// and point events. Spans are created with Tracer.Start and closed with End;
// a nil *Span is valid and ignores every call.
type Span struct {
	tr     *Tracer
	parent *Span
	name   string

	mu        sync.Mutex
	virtStart float64
	virtEnd   float64
	wallStart time.Time
	wallEnd   time.Time
	attrs     []Attr
	events    []Event
	ended     bool
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttrs appends attributes to the span. Later keys shadow earlier ones at
// export time, so re-setting a key is allowed.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event records a point event at virtual time virt.
func (s *Span) Event(name string, virt float64, attrs ...Attr) {
	if s == nil {
		return
	}
	wall := s.tr.wallNow()
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, Virt: virt, Wall: wall, Attrs: attrs})
	s.mu.Unlock()
}

// End closes the span at virtual time virt. The first End wins; further calls
// are ignored, so defensive double-ends on error paths are harmless.
func (s *Span) End(virt float64) {
	if s == nil {
		return
	}
	wall := s.tr.wallNow()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.virtEnd = virt
		s.wallEnd = wall
	}
	s.mu.Unlock()
}

// Tracer records one run's spans. The zero value is not usable; construct
// with NewTracer. A nil *Tracer is valid: Start returns a nil span and every
// derived call becomes a no-op.
type Tracer struct {
	mu    sync.Mutex
	spans []*Span // creation order
	root  *Span

	// now supplies host wall timestamps; replaceable for tests.
	now func() time.Time
}

// NewTracer returns an empty run tracer.
func NewTracer() *Tracer { return &Tracer{now: time.Now} }

// SetWallClock replaces the host wall-clock source (tests pin it to make the
// full export, not just the shape, reproducible).
func (t *Tracer) SetWallClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) wallNow() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Start opens a span under parent (nil parent = a root span) at virtual time
// virt. The first root span becomes Root(). Returns nil when the tracer is
// nil.
func (t *Tracer) Start(parent *Span, name string, virt float64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tr:        t,
		parent:    parent,
		name:      name,
		virtStart: virt,
		virtEnd:   virt,
		wallStart: t.wallNow(),
		attrs:     attrs,
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	if t.root == nil && parent == nil {
		t.root = s
	}
	t.mu.Unlock()
	return s
}

// Root returns the first root span (the "run" span in a tuning run), or nil.
// Detached event sources — the fault injector observes the engine from below
// the tracing call sites — attach their events here.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Records flattens the trace into export records in deterministic order:
// depth-first over the span tree, children in creation order. Creation order
// per parent is deterministic even under parallel evaluation because every
// span's children are created by exactly one goroutine (the selector creates
// candidate spans before dispatch; each candidate's query/index spans are
// created by the one worker that owns the task). IDs are assigned in
// traversal order, so two runs with the same seed export identical records up
// to the wall-clock annotation fields.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()

	children := make(map[*Span][]*Span, len(spans))
	var roots []*Span
	for _, s := range spans {
		if s.parent == nil {
			roots = append(roots, s)
			continue
		}
		children[s.parent] = append(children[s.parent], s)
	}

	out := make([]SpanRecord, 0, len(spans))
	ids := make(map[*Span]int, len(spans))
	var walk func(s *Span, parentID int)
	walk = func(s *Span, parentID int) {
		id := len(out) + 1
		ids[s] = id
		out = append(out, s.record(id, parentID))
		for _, c := range children[s] {
			walk(c, id)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return out
}

// record snapshots the span into an export record.
func (s *Span) record(id, parent int) SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := SpanRecord{
		ID:        id,
		Parent:    parent,
		Name:      s.name,
		VirtStart: s.virtStart,
		VirtEnd:   s.virtEnd,
	}
	if !s.wallStart.IsZero() {
		r.WallStartNS = s.wallStart.UnixNano()
	}
	if !s.wallEnd.IsZero() {
		r.WallEndNS = s.wallEnd.UnixNano()
	}
	if r.VirtEnd < r.VirtStart {
		r.VirtEnd = r.VirtStart
	}
	if len(s.attrs) > 0 {
		r.Attrs = attrMap(s.attrs)
		r.Annots = annotMap(s.attrs)
	}
	for _, ev := range s.events {
		er := EventRecord{Name: ev.Name, Virt: ev.Virt}
		if !ev.Wall.IsZero() {
			er.WallNS = ev.Wall.UnixNano()
		}
		if len(ev.Attrs) > 0 {
			er.Attrs = attrMap(ev.Attrs)
			er.Annots = annotMap(ev.Attrs)
		}
		r.Events = append(r.Events, er)
	}
	return r
}

// attrMap folds the deterministic attributes of an ordered list into a map;
// later keys shadow earlier ones. Annotations are split off by annotMap.
func attrMap(attrs []Attr) map[string]any {
	var m map[string]any
	for _, a := range attrs {
		if a.Annot {
			continue
		}
		if m == nil {
			m = make(map[string]any, len(attrs))
		}
		m[a.Key] = a.Value
	}
	return m
}

// annotMap folds the annotation attributes into their own map, or nil when
// there are none.
func annotMap(attrs []Attr) map[string]any {
	var m map[string]any
	for _, a := range attrs {
		if !a.Annot {
			continue
		}
		if m == nil {
			m = make(map[string]any)
		}
		m[a.Key] = a.Value
	}
	return m
}

// ShapeString renders records as an indented span tree with names, sorted
// attributes, virtual timestamps and events — every deterministic field — and
// scrubs the annotations (wall clocks and Annot-marked attributes). Two runs
// with the same seed produce byte-identical shape strings at any
// parallelism; the golden trace test pins this.
func ShapeString(recs []SpanRecord) string {
	depth := map[int]int{}
	var b strings.Builder
	for _, r := range recs {
		d := 0
		if r.Parent != 0 {
			d = depth[r.Parent] + 1
		}
		depth[r.ID] = d
		indent := strings.Repeat("  ", d)
		fmt.Fprintf(&b, "%s%s [%.9g,%.9g]%s\n", indent, r.Name, r.VirtStart, r.VirtEnd, attrString(r.Attrs))
		for _, ev := range r.Events {
			fmt.Fprintf(&b, "%s  @%.9g %s%s\n", indent, ev.Virt, ev.Name, attrString(ev.Attrs))
		}
	}
	return b.String()
}

// attrString renders attributes sorted by key as " k=v ...".
func attrString(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		v := attrs[k]
		if f, ok := v.(float64); ok {
			fmt.Fprintf(&b, " %s=%.9g", k, f)
			continue
		}
		fmt.Fprintf(&b, " %s=%v", k, v)
	}
	return b.String()
}

// ctxKey carries the active span through context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying span; layers below the
// instrumentation site (the resilient LLM client) retrieve it with
// SpanFromContext to attach their events.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
