package obs

import (
	"fmt"
	"io"
	"sync"
)

// ProgressEvent is one line of live run narration: a round opening, a
// candidate verdict, a timeout adaptation, a breaker trip. Virt is the
// virtual-clock timestamp the event is stamped with.
type ProgressEvent struct {
	Virt float64
	Kind string // "round", "candidate", "timeout", "llm", "run", ...
	Msg  string
}

// ProgressSink consumes progress events. Implementations must tolerate
// concurrent Emit calls only if they are handed to concurrent producers; the
// tuning pipeline emits exclusively from the coordinating goroutine so event
// order is deterministic.
type ProgressSink interface {
	Emit(ev ProgressEvent)
}

// Emitf formats and emits one event; a nil sink drops it. This is the
// call-site helper: Emitf(sink, virt, "round", "round %d starts", r).
func Emitf(s ProgressSink, virt float64, kind, format string, args ...any) {
	if s == nil {
		return
	}
	s.Emit(ProgressEvent{Virt: virt, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// ConsoleReporter streams progress events to a writer as
// "[ 123.4s] round 2: timeout 8.0s" lines, virtual-clock stamped.
type ConsoleReporter struct {
	W io.Writer

	mu sync.Mutex
}

// NewConsoleReporter returns a reporter writing to w.
func NewConsoleReporter(w io.Writer) *ConsoleReporter { return &ConsoleReporter{W: w} }

// Emit writes one line; safe for concurrent use.
func (c *ConsoleReporter) Emit(ev ProgressEvent) {
	if c == nil || c.W == nil {
		return
	}
	c.mu.Lock()
	fmt.Fprintf(c.W, "[%9.1fs] %s\n", ev.Virt, ev.Msg)
	c.mu.Unlock()
}
