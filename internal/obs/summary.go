package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Phase names the cost buckets a tuning run's spans are classified into.
// Leaf spans map to exactly one phase so phase totals never double-count;
// structural spans (run, selection, round, candidate) are containers and
// contribute nothing themselves.
const (
	PhaseLLM      = "llm"         // llm.sample spans: model latency, retries, backoff
	PhasePrompt   = "prompt"      // prompt compression / document selection
	PhaseEval     = "eval"        // query execution inside candidate evaluation
	PhaseIndex    = "index-build" // index creation charged by the engine
	PhaseSchedule = "schedule"    // DP query ordering (host CPU, wall only)
)

// spanPhase classifies a leaf span name into a phase ("" = structural).
func spanPhase(name string) string {
	switch name {
	case "llm.sample":
		return PhaseLLM
	case "prompt":
		return PhasePrompt
	case "query":
		return PhaseEval
	case "index.build":
		return PhaseIndex
	case "schedule":
		return PhaseSchedule
	}
	return ""
}

// PhaseCost aggregates one phase's spend across a trace.
type PhaseCost struct {
	Phase       string  `json:"phase"`
	Spans       int     `json:"spans"`
	VirtSeconds float64 `json:"virt_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Summary condenses a trace into the per-phase cost breakdown that
// Result.Telemetry carries: span/event totals, phase costs sorted by
// descending virtual spend, and (when a registry was attached) a scalar
// metrics snapshot.
type Summary struct {
	Spans   int
	Events  int
	Phases  []PhaseCost
	Metrics map[string]float64
}

// Summarize builds a phase breakdown from exported records.
func Summarize(recs []SpanRecord) Summary {
	byPhase := map[string]*PhaseCost{}
	s := Summary{Spans: len(recs)}
	for _, r := range recs {
		s.Events += len(r.Events)
		phase := spanPhase(r.Name)
		if phase == "" {
			continue
		}
		pc := byPhase[phase]
		if pc == nil {
			pc = &PhaseCost{Phase: phase}
			byPhase[phase] = pc
		}
		pc.Spans++
		pc.VirtSeconds += r.VirtEnd - r.VirtStart
		if r.WallEndNS > r.WallStartNS {
			pc.WallSeconds += float64(r.WallEndNS-r.WallStartNS) / 1e9
		}
	}
	for _, pc := range byPhase {
		s.Phases = append(s.Phases, *pc)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].VirtSeconds != s.Phases[j].VirtSeconds {
			return s.Phases[i].VirtSeconds > s.Phases[j].VirtSeconds
		}
		return s.Phases[i].Phase < s.Phases[j].Phase
	})
	return s
}

// Summarize condenses the tracer's current spans. It walks the spans
// directly rather than going through Records: the summary needs no IDs, no
// tree order and no attribute maps, and a full export per traced run is
// measurable overhead on a busy daemon (every finished job summarizes its
// trace for Result.Telemetry). The aggregation is identical to
// Summarize(t.Records()) — same clamps, same phase buckets.
func (t *Tracer) Summarize() Summary {
	if t == nil {
		return Summary{}
	}
	views, extras := t.snapshot()

	byPhase := map[string]*PhaseCost{}
	var s Summary
	for _, ex := range extras {
		s.Events += len(ex.events)
	}
	for _, view := range views {
		s.Spans += len(view)
		for i := range view {
			sp := &view[i]
			sp.mu.Lock()
			name := sp.name
			virtStart, virtEnd := sp.virtStart, sp.virtEnd
			wallStartNS, wallEndNS := sp.wallStartNS, sp.wallEndNS
			sp.mu.Unlock()

			phase := spanPhase(name)
			if phase == "" {
				continue
			}
			pc := byPhase[phase]
			if pc == nil {
				pc = &PhaseCost{Phase: phase}
				byPhase[phase] = pc
			}
			pc.Spans++
			if virtEnd < virtStart { // same clamp Records applies on export
				virtEnd = virtStart
			}
			pc.VirtSeconds += virtEnd - virtStart
			if wallEndNS > wallStartNS {
				pc.WallSeconds += float64(wallEndNS-wallStartNS) / 1e9
			}
		}
	}
	for _, pc := range byPhase {
		s.Phases = append(s.Phases, *pc)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].VirtSeconds != s.Phases[j].VirtSeconds {
			return s.Phases[i].VirtSeconds > s.Phases[j].VirtSeconds
		}
		return s.Phases[i].Phase < s.Phases[j].Phase
	})
	return s
}

// SummaryTable renders the breakdown as the table trace-summary prints:
//
//	phase        spans   virtual-s      share   wall-ms
//	llm              5   240.00000      63.2%     12.40
//	...
func SummaryTable(s Summary) string {
	var total float64
	for _, p := range s.Phases {
		total += p.VirtSeconds
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %12s %8s %10s\n", "phase", "spans", "virtual-s", "share", "wall-ms")
	for _, p := range s.Phases {
		share := 0.0
		if total > 0 {
			share = 100 * p.VirtSeconds / total
		}
		fmt.Fprintf(&b, "%-12s %6d %12.5f %7.1f%% %10.2f\n",
			p.Phase, p.Spans, p.VirtSeconds, share, p.WallSeconds*1e3)
	}
	fmt.Fprintf(&b, "%-12s %6d %12.5f %7.1f%%\n", "total", s.Spans, total, 100.0)
	fmt.Fprintf(&b, "spans=%d events=%d\n", s.Spans, s.Events)
	return b.String()
}
