package obs

import (
	"strings"
	"testing"
)

// TestValidateRecordsRejections pins the validator's rejection paths — the
// contracts the job trace endpoint relies on: duplicate span ids, orphaned
// parents, and non-monotonic clocks all fail with a diagnostic naming the
// offending span.
func TestValidateRecordsRejections(t *testing.T) {
	cases := []struct {
		name string
		recs []SpanRecord
		want string // substring of the error
	}{
		{
			"duplicate span ids",
			[]SpanRecord{{ID: 1, Name: "run"}, {ID: 1, Name: "dup"}},
			"out of sequence",
		},
		{
			"orphaned parent (forward reference)",
			[]SpanRecord{{ID: 1, Name: "run"}, {ID: 2, Parent: 3, Name: "q"}},
			"does not precede",
		},
		{
			"orphaned parent (self reference)",
			[]SpanRecord{{ID: 1, Parent: 1, Name: "run"}},
			"does not precede",
		},
		{
			"orphaned parent (negative)",
			[]SpanRecord{{ID: 1, Name: "run"}, {ID: 2, Parent: -1, Name: "q"}},
			"does not precede",
		},
		{
			"child starts before parent",
			[]SpanRecord{
				{ID: 1, Name: "run", VirtStart: 10, VirtEnd: 20},
				{ID: 2, Parent: 1, Name: "q", VirtStart: 5, VirtEnd: 6},
			},
			"before parent",
		},
		{
			"event before span start",
			[]SpanRecord{{ID: 1, Name: "run", VirtStart: 3, VirtEnd: 9,
				Events: []EventRecord{{Name: "retry", Virt: 1}}}},
			"non-monotonic",
		},
		{
			"events out of order within span",
			[]SpanRecord{{ID: 1, Name: "run", VirtStart: 0, VirtEnd: 9,
				Events: []EventRecord{{Name: "a", Virt: 5}, {Name: "b", Virt: 2}}}},
			"non-monotonic",
		},
		{
			"no root",
			[]SpanRecord{}, // empty doubles as no-root; distinct message below
			"empty",
		},
	}
	for _, tc := range cases {
		err := ValidateRecords(tc.recs)
		if err == nil {
			t.Errorf("%s: invalid trace accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateRecordsMonotoneAccepts checks the clock rules accept legitimate
// shapes: equal timestamps (zero-duration spans, simultaneous events) and an
// event exactly at span start.
func TestValidateRecordsMonotoneAccepts(t *testing.T) {
	recs := []SpanRecord{
		{ID: 1, Name: "run", VirtStart: 0, VirtEnd: 10,
			Events: []EventRecord{{Name: "a", Virt: 0}, {Name: "b", Virt: 4}, {Name: "c", Virt: 4}}},
		{ID: 2, Parent: 1, Name: "q", VirtStart: 0, VirtEnd: 0},
		{ID: 3, Parent: 1, Name: "q", VirtStart: 10, VirtEnd: 10},
	}
	if err := ValidateRecords(recs); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

// TestCreationRecords covers the streaming export: stable IDs in creation
// order, parents preceding children, incremental tails via since, and every
// prefix being a schema-valid trace.
func TestCreationRecords(t *testing.T) {
	tr := NewTracer()
	run := tr.Start(nil, "run", 0)
	a := tr.Start(run, "a", 1)
	first := tr.CreationRecords(0)
	if len(first) != 2 || first[0].Name != "run" || first[1].Name != "a" {
		t.Fatalf("creation order wrong: %+v", first)
	}
	if first[1].Parent != 1 {
		t.Fatalf("child parent = %d, want 1", first[1].Parent)
	}
	// An open span reports a zero-length interval so far.
	if first[1].VirtEnd != first[1].VirtStart {
		t.Fatalf("open span interval not clamped: %+v", first[1])
	}

	b := tr.Start(run, "b", 2)
	tr.Start(b, "b.child", 3).End(4)
	a.End(5)

	tail := tr.CreationRecords(len(first))
	if len(tail) != 2 || tail[0].Name != "b" || tail[1].Name != "b.child" {
		t.Fatalf("incremental tail wrong: %+v", tail)
	}
	// IDs are stable: the tail continues the numbering of the first batch.
	if tail[0].ID != 3 || tail[1].ID != 4 || tail[1].Parent != 3 {
		t.Fatalf("tail ids/parents not stable: %+v", tail)
	}

	all := tr.CreationRecords(0)
	for n := 1; n <= len(all); n++ {
		if err := ValidateRecords(all[:n]); err != nil {
			t.Fatalf("prefix of %d records invalid: %v", n, err)
		}
	}
	if got := tr.CreationRecords(len(all)); got != nil {
		t.Fatalf("exhausted stream returned %+v", got)
	}
	if got := (*Tracer)(nil).CreationRecords(0); got != nil {
		t.Fatalf("nil tracer returned %+v", got)
	}
	run.End(9)
}
