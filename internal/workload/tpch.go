package workload

import (
	"fmt"

	"lambdatune/internal/engine"
)

// TPCH returns the TPC-H workload at the given scale factor (1 GB per unit).
// All 22 query templates are included; Q7/Q8/Q9/Q13/Q22, which use derived
// tables in the official text, are flattened to equivalent join structures.
func TPCH(sf int) *Workload {
	if sf < 1 {
		sf = 1
	}
	s := int64(sf)
	cat := engine.NewCatalog(fmt.Sprintf("tpch-sf%d", sf), []engine.Table{
		{
			Name: "region", Rows: 5,
			Columns: []engine.Column{
				{Name: "r_regionkey", WidthBytes: 4, Distinct: 5},
				{Name: "r_name", WidthBytes: 12, Distinct: 5},
				{Name: "r_comment", WidthBytes: 80, Distinct: 5},
			},
			PrimaryKey: []string{"r_regionkey"},
		},
		{
			Name: "nation", Rows: 25,
			Columns: []engine.Column{
				{Name: "n_nationkey", WidthBytes: 4, Distinct: 25},
				{Name: "n_name", WidthBytes: 12, Distinct: 25},
				{Name: "n_regionkey", WidthBytes: 4, Distinct: 5},
				{Name: "n_comment", WidthBytes: 80, Distinct: 25},
			},
			PrimaryKey:  []string{"n_nationkey"},
			ForeignKeys: []string{"n_regionkey"},
		},
		{
			Name: "supplier", Rows: 10_000 * s,
			Columns: []engine.Column{
				{Name: "s_suppkey", WidthBytes: 4, Distinct: 10_000 * s},
				{Name: "s_name", WidthBytes: 18, Distinct: 10_000 * s},
				{Name: "s_address", WidthBytes: 25, Distinct: 10_000 * s},
				{Name: "s_nationkey", WidthBytes: 4, Distinct: 25},
				{Name: "s_phone", WidthBytes: 15, Distinct: 10_000 * s},
				{Name: "s_acctbal", WidthBytes: 8, Distinct: 9_000},
				{Name: "s_comment", WidthBytes: 60, Distinct: 10_000 * s},
			},
			PrimaryKey:  []string{"s_suppkey"},
			ForeignKeys: []string{"s_nationkey"},
		},
		{
			Name: "customer", Rows: 150_000 * s,
			Columns: []engine.Column{
				{Name: "c_custkey", WidthBytes: 4, Distinct: 150_000 * s},
				{Name: "c_name", WidthBytes: 18, Distinct: 150_000 * s},
				{Name: "c_address", WidthBytes: 25, Distinct: 150_000 * s},
				{Name: "c_nationkey", WidthBytes: 4, Distinct: 25},
				{Name: "c_phone", WidthBytes: 15, Distinct: 150_000 * s},
				{Name: "c_acctbal", WidthBytes: 8, Distinct: 140_000},
				{Name: "c_mktsegment", WidthBytes: 10, Distinct: 5},
				{Name: "c_comment", WidthBytes: 73, Distinct: 150_000 * s},
			},
			PrimaryKey:  []string{"c_custkey"},
			ForeignKeys: []string{"c_nationkey"},
		},
		{
			Name: "part", Rows: 200_000 * s,
			Columns: []engine.Column{
				{Name: "p_partkey", WidthBytes: 4, Distinct: 200_000 * s},
				{Name: "p_name", WidthBytes: 33, Distinct: 200_000 * s},
				{Name: "p_mfgr", WidthBytes: 25, Distinct: 5},
				{Name: "p_brand", WidthBytes: 10, Distinct: 25},
				{Name: "p_type", WidthBytes: 21, Distinct: 150},
				{Name: "p_size", WidthBytes: 4, Distinct: 50},
				{Name: "p_container", WidthBytes: 10, Distinct: 40},
				{Name: "p_retailprice", WidthBytes: 8, Distinct: 20_000},
				{Name: "p_comment", WidthBytes: 14, Distinct: 130_000},
			},
			PrimaryKey: []string{"p_partkey"},
		},
		{
			Name: "partsupp", Rows: 800_000 * s,
			Columns: []engine.Column{
				{Name: "ps_partkey", WidthBytes: 4, Distinct: 200_000 * s},
				{Name: "ps_suppkey", WidthBytes: 4, Distinct: 10_000 * s},
				{Name: "ps_availqty", WidthBytes: 4, Distinct: 10_000},
				{Name: "ps_supplycost", WidthBytes: 8, Distinct: 100_000},
				{Name: "ps_comment", WidthBytes: 120, Distinct: 800_000 * s},
			},
			PrimaryKey:  []string{"ps_partkey", "ps_suppkey"},
			ForeignKeys: []string{"ps_partkey", "ps_suppkey"},
		},
		{
			Name: "orders", Rows: 1_500_000 * s,
			Columns: []engine.Column{
				{Name: "o_orderkey", WidthBytes: 4, Distinct: 1_500_000 * s},
				{Name: "o_custkey", WidthBytes: 4, Distinct: 100_000 * s},
				{Name: "o_orderstatus", WidthBytes: 1, Distinct: 3},
				{Name: "o_totalprice", WidthBytes: 8, Distinct: 1_400_000},
				{Name: "o_orderdate", WidthBytes: 4, Distinct: 2_400},
				{Name: "o_orderpriority", WidthBytes: 15, Distinct: 5},
				{Name: "o_clerk", WidthBytes: 15, Distinct: 1_000 * s},
				{Name: "o_shippriority", WidthBytes: 4, Distinct: 1},
				{Name: "o_comment", WidthBytes: 48, Distinct: 1_500_000 * s},
			},
			PrimaryKey:  []string{"o_orderkey"},
			ForeignKeys: []string{"o_custkey"},
		},
		{
			Name: "lineitem", Rows: 6_001_215 * s,
			Columns: []engine.Column{
				{Name: "l_orderkey", WidthBytes: 4, Distinct: 1_500_000 * s},
				{Name: "l_partkey", WidthBytes: 4, Distinct: 200_000 * s},
				{Name: "l_suppkey", WidthBytes: 4, Distinct: 10_000 * s},
				{Name: "l_linenumber", WidthBytes: 4, Distinct: 7},
				{Name: "l_quantity", WidthBytes: 8, Distinct: 50},
				{Name: "l_extendedprice", WidthBytes: 8, Distinct: 900_000},
				{Name: "l_discount", WidthBytes: 8, Distinct: 11},
				{Name: "l_tax", WidthBytes: 8, Distinct: 9},
				{Name: "l_returnflag", WidthBytes: 1, Distinct: 3},
				{Name: "l_linestatus", WidthBytes: 1, Distinct: 2},
				{Name: "l_shipdate", WidthBytes: 4, Distinct: 2_500},
				{Name: "l_commitdate", WidthBytes: 4, Distinct: 2_500},
				{Name: "l_receiptdate", WidthBytes: 4, Distinct: 2_500},
				{Name: "l_shipinstruct", WidthBytes: 25, Distinct: 4},
				{Name: "l_shipmode", WidthBytes: 10, Distinct: 7},
				{Name: "l_comment", WidthBytes: 26, Distinct: 4_500_000 * s},
			},
			PrimaryKey:  []string{"l_orderkey", "l_linenumber"},
			ForeignKeys: []string{"l_orderkey", "l_partkey", "l_suppkey"},
		},
	})
	return &Workload{
		Name:    fmt.Sprintf("TPC-H SF%d", sf),
		Catalog: cat,
		Queries: prepare("Q", tpchQueries),
	}
}

// tpchQueries holds all 22 TPC-H templates in the engine's SQL subset.
var tpchQueries = []string{
	// Q1: pricing summary report.
	`SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity) AS sum_qty,
		SUM(l.l_extendedprice) AS sum_base_price,
		SUM(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
		SUM(l.l_extendedprice * (1 - l.l_discount) * (1 + l.l_tax)) AS sum_charge,
		AVG(l.l_quantity) AS avg_qty, AVG(l.l_extendedprice) AS avg_price,
		AVG(l.l_discount) AS avg_disc, COUNT(*) AS count_order
	FROM lineitem l
	WHERE l.l_shipdate <= DATE '1998-12-01' - INTERVAL '90' day
	GROUP BY l.l_returnflag, l.l_linestatus
	ORDER BY l.l_returnflag, l.l_linestatus`,

	// Q2: minimum cost supplier.
	`SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr, s.s_address, s.s_phone, s.s_comment
	FROM part p, supplier s, partsupp ps, nation n, region r
	WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
		AND p.p_size = 15 AND p.p_type LIKE '%BRASS'
		AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
		AND r.r_name = 'EUROPE'
		AND ps.ps_supplycost = (SELECT MIN(ps2.ps_supplycost)
			FROM partsupp ps2, supplier s2, nation n2, region r2
			WHERE p.p_partkey = ps2.ps_partkey AND s2.s_suppkey = ps2.ps_suppkey
				AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey
				AND r2.r_name = 'EUROPE')
	ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey LIMIT 100`,

	// Q3: shipping priority.
	`SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
		o.o_orderdate, o.o_shippriority
	FROM customer c, orders o, lineitem l
	WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey
		AND l.l_orderkey = o.o_orderkey
		AND o.o_orderdate < DATE '1995-03-15' AND l.l_shipdate > DATE '1995-03-15'
	GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
	ORDER BY revenue DESC, o.o_orderdate LIMIT 10`,

	// Q4: order priority checking.
	`SELECT o.o_orderpriority, COUNT(*) AS order_count
	FROM orders o
	WHERE o.o_orderdate >= DATE '1993-07-01'
		AND o.o_orderdate < DATE '1993-07-01' + INTERVAL '3' month
		AND EXISTS (SELECT 1 FROM lineitem l
			WHERE l.l_orderkey = o.o_orderkey AND l.l_commitdate < l.l_receiptdate)
	GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`,

	// Q5: local supplier volume.
	`SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
	FROM customer c, orders o, lineitem l, supplier s, nation n, region r
	WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
		AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
		AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
		AND r.r_name = 'ASIA'
		AND o.o_orderdate >= DATE '1994-01-01'
		AND o.o_orderdate < DATE '1994-01-01' + INTERVAL '1' year
	GROUP BY n.n_name ORDER BY revenue DESC`,

	// Q6: forecasting revenue change.
	`SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue
	FROM lineitem l
	WHERE l.l_shipdate >= DATE '1994-01-01'
		AND l.l_shipdate < DATE '1994-01-01' + INTERVAL '1' year
		AND l.l_discount BETWEEN 0.05 AND 0.07 AND l.l_quantity < 24`,

	// Q7: volume shipping (official derived-table form).
	`SELECT shipping.supp_nation, shipping.cust_nation, SUM(shipping.volume) AS revenue
	FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
			l.l_extendedprice * (1 - l.l_discount) AS volume
		FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
		WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
			AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
			AND c.c_nationkey = n2.n_nationkey
			AND n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
			AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') shipping
	GROUP BY shipping.supp_nation, shipping.cust_nation
	ORDER BY shipping.supp_nation, shipping.cust_nation`,

	// Q8: national market share (flattened).
	`SELECT o.o_orderdate, SUM(l.l_extendedprice * (1 - l.l_discount)) AS volume
	FROM part p, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r
	WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
		AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
		AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
		AND r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey
		AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
		AND p.p_type = 'ECONOMY ANODIZED STEEL'
	GROUP BY o.o_orderdate ORDER BY o.o_orderdate`,

	// Q9: product type profit measure (flattened).
	`SELECT n.n_name AS nation, SUM(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS sum_profit
	FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
	WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
		AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
		AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
		AND p.p_name LIKE '%green%'
	GROUP BY n.n_name ORDER BY nation`,

	// Q10: returned item reporting.
	`SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
		c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment
	FROM customer c, orders o, lineitem l, nation n
	WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
		AND o.o_orderdate >= DATE '1993-10-01'
		AND o.o_orderdate < DATE '1993-10-01' + INTERVAL '3' month
		AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
	GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name, c.c_address, c.c_comment
	ORDER BY revenue DESC LIMIT 20`,

	// Q11: important stock identification.
	`SELECT ps.ps_partkey, SUM(ps.ps_supplycost * ps.ps_availqty) AS value
	FROM partsupp ps, supplier s, nation n
	WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
		AND n.n_name = 'GERMANY'
	GROUP BY ps.ps_partkey
	HAVING SUM(ps.ps_supplycost * ps.ps_availqty) > (SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001
		FROM partsupp ps2, supplier s2, nation n2
		WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey AND n2.n_name = 'GERMANY')
	ORDER BY value DESC`,

	// Q12: shipping modes and order priority.
	`SELECT l.l_shipmode,
		SUM(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count,
		SUM(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count
	FROM orders o, lineitem l
	WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP')
		AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate
		AND l.l_receiptdate >= DATE '1994-01-01'
		AND l.l_receiptdate < DATE '1994-01-01' + INTERVAL '1' year
	GROUP BY l.l_shipmode ORDER BY l.l_shipmode`,

	// Q13: customer distribution (official derived-table form).
	`SELECT c_orders.c_count, COUNT(*) AS custdist
	FROM (SELECT c.c_custkey, COUNT(o.o_orderkey) AS c_count
		FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
		WHERE o.o_comment NOT LIKE '%special%requests%'
		GROUP BY c.c_custkey) c_orders
	GROUP BY c_orders.c_count ORDER BY custdist DESC, c_orders.c_count DESC`,

	// Q14: promotion effect.
	`SELECT 100.00 * SUM(CASE WHEN p.p_type LIKE 'PROMO%' THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
	FROM lineitem l, part p
	WHERE l.l_partkey = p.p_partkey
		AND l.l_shipdate >= DATE '1995-09-01'
		AND l.l_shipdate < DATE '1995-09-01' + INTERVAL '1' month`,

	// Q15: top supplier (view flattened into HAVING-style correlation).
	`SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone, SUM(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue
	FROM supplier s, lineitem l
	WHERE s.s_suppkey = l.l_suppkey
		AND l.l_shipdate >= DATE '1996-01-01'
		AND l.l_shipdate < DATE '1996-01-01' + INTERVAL '3' month
	GROUP BY s.s_suppkey, s.s_name, s.s_address, s.s_phone
	ORDER BY total_revenue DESC LIMIT 1`,

	// Q16: parts/supplier relationship.
	`SELECT p.p_brand, p.p_type, p.p_size, COUNT(DISTINCT ps.ps_suppkey) AS supplier_cnt
	FROM partsupp ps, part p
	WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45'
		AND p.p_type NOT LIKE 'MEDIUM POLISHED%'
		AND p.p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
		AND ps.ps_suppkey NOT IN (SELECT s.s_suppkey FROM supplier s WHERE s.s_comment LIKE '%Customer%Complaints%')
	GROUP BY p.p_brand, p.p_type, p.p_size
	ORDER BY supplier_cnt DESC, p.p_brand, p.p_type, p.p_size`,

	// Q17: small-quantity-order revenue.
	`SELECT SUM(l.l_extendedprice) / 7.0 AS avg_yearly
	FROM lineitem l, part p
	WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23' AND p.p_container = 'MED BOX'
		AND l.l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = p.p_partkey)`,

	// Q18: large volume customer.
	`SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, SUM(l.l_quantity)
	FROM customer c, orders o, lineitem l
	WHERE o.o_orderkey IN (SELECT l2.l_orderkey FROM lineitem l2 GROUP BY l2.l_orderkey HAVING SUM(l2.l_quantity) > 300)
		AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
	GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
	ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100`,

	// Q19: discounted revenue.
	`SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
	FROM lineitem l, part p
	WHERE (p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#12'
			AND p.p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
			AND l.l_quantity >= 1 AND l.l_quantity <= 11 AND p.p_size BETWEEN 1 AND 5
			AND l.l_shipmode IN ('AIR', 'AIR REG') AND l.l_shipinstruct = 'DELIVER IN PERSON')
		OR (p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23'
			AND p.p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
			AND l.l_quantity >= 10 AND l.l_quantity <= 20 AND p.p_size BETWEEN 1 AND 10
			AND l.l_shipmode IN ('AIR', 'AIR REG') AND l.l_shipinstruct = 'DELIVER IN PERSON')`,

	// Q20: potential part promotion.
	`SELECT s.s_name, s.s_address
	FROM supplier s, nation n
	WHERE s.s_suppkey IN (SELECT ps.ps_suppkey FROM partsupp ps
			WHERE ps.ps_partkey IN (SELECT p.p_partkey FROM part p WHERE p.p_name LIKE 'forest%')
			AND ps.ps_availqty > (SELECT 0.5 * SUM(l.l_quantity) FROM lineitem l
				WHERE l.l_partkey = ps.ps_partkey AND l.l_suppkey = ps.ps_suppkey
					AND l.l_shipdate >= DATE '1994-01-01'
					AND l.l_shipdate < DATE '1994-01-01' + INTERVAL '1' year))
		AND s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA'
	ORDER BY s.s_name`,

	// Q21: suppliers who kept orders waiting.
	`SELECT s.s_name, COUNT(*) AS numwait
	FROM supplier s, lineitem l1, orders o, nation n
	WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey
		AND o.o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate
		AND EXISTS (SELECT 1 FROM lineitem l2
			WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey)
		AND NOT EXISTS (SELECT 1 FROM lineitem l3
			WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey
				AND l3.l_receiptdate > l3.l_commitdate)
		AND s.s_nationkey = n.n_nationkey AND n.n_name = 'SAUDI ARABIA'
	GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100`,

	// Q22: global sales opportunity (flattened).
	`SELECT c.c_phone, COUNT(*) AS numcust, SUM(c.c_acctbal) AS totacctbal
	FROM customer c
	WHERE c.c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00)
		AND NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)
	GROUP BY c.c_phone ORDER BY c.c_phone`,
}
