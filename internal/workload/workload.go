// Package workload defines the benchmark workloads of the paper's evaluation
// (TPC-H at scale factors 1 and 10, TPC-DS at scale factor 1, and the Join
// Order Benchmark) as schemas with statistics plus SQL query sets.
//
// The tuning algorithms consume only query text and table statistics, never
// tuples, so the workloads carry per-scale-factor row counts, column widths,
// and distinct counts instead of generated data (see DESIGN.md §2). A few
// TPC-H/TPC-DS queries that use derived tables (subqueries in FROM) are
// flattened into equivalent join structures, which is the only property the
// algorithms observe.
package workload

import (
	"fmt"
	"strings"

	"lambdatune/internal/engine"
	"lambdatune/internal/sqlparser"
)

// Join and Filter alias the analyzer's types for brevity.
type (
	Join   = sqlparser.JoinCondition
	Filter = sqlparser.Filter
)

// Workload bundles a catalog with its query set.
type Workload struct {
	// Name identifies the benchmark, e.g. "TPC-H SF1".
	Name    string
	Catalog *engine.Catalog
	Queries []*engine.Query
}

// ByName returns the named benchmark workload. Recognized names:
// "tpch-1", "tpch-10", "tpcds-1", "job".
func ByName(name string) (*Workload, error) {
	switch strings.ToLower(name) {
	case "tpch-1", "tpch":
		return TPCH(1), nil
	case "tpch-10":
		return TPCH(10), nil
	case "tpcds-1", "tpcds":
		return TPCDS(1), nil
	case "job":
		return JOB(), nil
	}
	return nil, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the recognized benchmark names.
func Names() []string { return []string{"tpch-1", "tpch-10", "tpcds-1", "job"} }

// prepare compiles query texts, panicking on parse errors (the query sets
// are fixed and covered by tests).
func prepare(prefix string, sqls []string) []*engine.Query {
	out := make([]*engine.Query, len(sqls))
	for i, sql := range sqls {
		out[i] = engine.MustPrepareQuery(fmt.Sprintf("%s%d", prefix, i+1), sql)
	}
	return out
}

// InitialIndexes returns the PK/FK indexes created before tuning starts in
// the paper's "Initial Indexes = Yes" scenario (Figure 3): one index per
// primary-key and foreign-key column referenced by the workload.
func (w *Workload) InitialIndexes() []engine.IndexDef {
	referenced := map[string]bool{}
	for _, q := range w.Queries {
		for _, t := range q.Analysis.Tables {
			referenced[t] = true
		}
	}
	var defs []engine.IndexDef
	seen := map[string]bool{}
	add := func(table, col string) {
		def := engine.NewIndexDef(table, col)
		if !seen[def.Key()] {
			seen[def.Key()] = true
			defs = append(defs, def)
		}
	}
	for _, t := range w.Catalog.Tables() {
		if !referenced[t.Name] {
			continue
		}
		for _, pk := range t.PrimaryKey {
			add(t.Name, pk)
		}
		for _, fk := range t.ForeignKeys {
			add(t.Name, fk)
		}
	}
	return defs
}

// Obfuscate returns a copy of the workload with table and column names
// replaced by generic identifiers ("Tx"/"Cy"), reproducing the ablation of
// paper §6.4.3. Join structure and statistics are preserved.
func (w *Workload) Obfuscate() *Workload {
	tmap := map[string]string{}
	cmap := map[string]string{}
	var tables []engine.Table
	tn, cn := 0, 0
	for _, t := range w.Catalog.Tables() {
		tn++
		newT := engine.Table{Name: fmt.Sprintf("t%d", tn), Rows: t.Rows}
		tmap[t.Name] = newT.Name
		for _, c := range t.Columns {
			cn++
			name := fmt.Sprintf("c%d", cn)
			cmap[t.Name+"."+c.Name] = name
			newT.Columns = append(newT.Columns, engine.Column{Name: name, WidthBytes: c.WidthBytes, Distinct: c.Distinct})
		}
		for _, pk := range t.PrimaryKey {
			newT.PrimaryKey = append(newT.PrimaryKey, cmap[t.Name+"."+pk])
		}
		for _, fk := range t.ForeignKeys {
			newT.ForeignKeys = append(newT.ForeignKeys, cmap[t.Name+"."+fk])
		}
		tables = append(tables, newT)
	}
	cat := engine.NewCatalog(w.Catalog.Name+"-obfuscated", tables)

	queries := make([]*engine.Query, len(w.Queries))
	for i, q := range w.Queries {
		nq := *q
		an := q.Analysis
		nq.Analysis.Tables = make([]string, len(an.Tables))
		for j, t := range an.Tables {
			nq.Analysis.Tables[j] = tmap[t]
		}
		nq.Analysis.Joins = make([]Join, len(an.Joins))
		for j, jc := range an.Joins {
			nq.Analysis.Joins[j] = Join{
				LeftTable: tmap[jc.LeftTable], LeftColumn: cmap[jc.LeftTable+"."+jc.LeftColumn],
				RightTable: tmap[jc.RightTable], RightColumn: cmap[jc.RightTable+"."+jc.RightColumn],
			}.Canonical()
		}
		nq.Analysis.Filters = make([]Filter, len(an.Filters))
		for j, f := range an.Filters {
			nf := f
			nf.Table = tmap[f.Table]
			nf.Column = cmap[f.Table+"."+f.Column]
			nq.Analysis.Filters[j] = nf
		}
		queries[i] = &nq
	}
	return &Workload{Name: w.Name + " (obfuscated)", Catalog: cat, Queries: queries}
}
