package workload

import (
	"fmt"

	"lambdatune/internal/engine"
)

// TPCDS returns the TPC-DS workload at the given scale factor. The query set
// is a 60-query subset covering the benchmark's characteristic star-join
// shapes over all three sales channels; queries using derived tables or
// window functions in the official text are flattened to equivalent join
// structures (see DESIGN.md §2).
func TPCDS(sf int) *Workload {
	if sf < 1 {
		sf = 1
	}
	s := int64(sf)
	cat := engine.NewCatalog(fmt.Sprintf("tpcds-sf%d", sf), []engine.Table{
		{
			Name: "date_dim", Rows: 73_049,
			Columns: []engine.Column{
				{Name: "d_date_sk", WidthBytes: 4, Distinct: 73_049},
				{Name: "d_date", WidthBytes: 4, Distinct: 73_049},
				{Name: "d_year", WidthBytes: 4, Distinct: 201},
				{Name: "d_moy", WidthBytes: 4, Distinct: 12},
				{Name: "d_dom", WidthBytes: 4, Distinct: 31},
				{Name: "d_qoy", WidthBytes: 4, Distinct: 4},
				{Name: "d_day_name", WidthBytes: 9, Distinct: 7},
				{Name: "d_month_seq", WidthBytes: 4, Distinct: 2_400},
			},
			PrimaryKey: []string{"d_date_sk"},
		},
		{
			Name: "time_dim", Rows: 86_400,
			Columns: []engine.Column{
				{Name: "t_time_sk", WidthBytes: 4, Distinct: 86_400},
				{Name: "t_hour", WidthBytes: 4, Distinct: 24},
				{Name: "t_minute", WidthBytes: 4, Distinct: 60},
				{Name: "t_meal_time", WidthBytes: 20, Distinct: 4},
			},
			PrimaryKey: []string{"t_time_sk"},
		},
		{
			Name: "item", Rows: 18_000 * s,
			Columns: []engine.Column{
				{Name: "i_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "i_item_id", WidthBytes: 16, Distinct: 9_000 * s},
				{Name: "i_brand", WidthBytes: 32, Distinct: 700},
				{Name: "i_brand_id", WidthBytes: 4, Distinct: 950},
				{Name: "i_class", WidthBytes: 20, Distinct: 100},
				{Name: "i_category", WidthBytes: 20, Distinct: 10},
				{Name: "i_manufact_id", WidthBytes: 4, Distinct: 1_000},
				{Name: "i_manager_id", WidthBytes: 4, Distinct: 100},
				{Name: "i_current_price", WidthBytes: 8, Distinct: 9_000},
				{Name: "i_color", WidthBytes: 10, Distinct: 92},
				{Name: "i_size", WidthBytes: 10, Distinct: 7},
			},
			PrimaryKey: []string{"i_item_sk"},
		},
		{
			Name: "customer", Rows: 100_000 * s,
			Columns: []engine.Column{
				{Name: "c_customer_sk", WidthBytes: 4, Distinct: 100_000 * s},
				{Name: "c_customer_id", WidthBytes: 16, Distinct: 100_000 * s},
				{Name: "c_current_addr_sk", WidthBytes: 4, Distinct: 50_000 * s},
				{Name: "c_current_cdemo_sk", WidthBytes: 4, Distinct: 95_000},
				{Name: "c_current_hdemo_sk", WidthBytes: 4, Distinct: 7_200},
				{Name: "c_first_name", WidthBytes: 12, Distinct: 5_000},
				{Name: "c_last_name", WidthBytes: 14, Distinct: 5_000},
				{Name: "c_birth_country", WidthBytes: 20, Distinct: 200},
				{Name: "c_birth_year", WidthBytes: 4, Distinct: 70},
			},
			PrimaryKey:  []string{"c_customer_sk"},
			ForeignKeys: []string{"c_current_addr_sk", "c_current_cdemo_sk", "c_current_hdemo_sk"},
		},
		{
			Name: "customer_address", Rows: 50_000 * s,
			Columns: []engine.Column{
				{Name: "ca_address_sk", WidthBytes: 4, Distinct: 50_000 * s},
				{Name: "ca_state", WidthBytes: 2, Distinct: 51},
				{Name: "ca_city", WidthBytes: 20, Distinct: 700},
				{Name: "ca_county", WidthBytes: 20, Distinct: 1_850},
				{Name: "ca_country", WidthBytes: 20, Distinct: 1},
				{Name: "ca_zip", WidthBytes: 10, Distinct: 7_700},
				{Name: "ca_gmt_offset", WidthBytes: 8, Distinct: 6},
			},
			PrimaryKey: []string{"ca_address_sk"},
		},
		{
			Name: "customer_demographics", Rows: 1_920_800,
			Columns: []engine.Column{
				{Name: "cd_demo_sk", WidthBytes: 4, Distinct: 1_920_800},
				{Name: "cd_gender", WidthBytes: 1, Distinct: 2},
				{Name: "cd_marital_status", WidthBytes: 1, Distinct: 5},
				{Name: "cd_education_status", WidthBytes: 15, Distinct: 7},
			},
			PrimaryKey: []string{"cd_demo_sk"},
		},
		{
			Name: "household_demographics", Rows: 7_200,
			Columns: []engine.Column{
				{Name: "hd_demo_sk", WidthBytes: 4, Distinct: 7_200},
				{Name: "hd_income_band_sk", WidthBytes: 4, Distinct: 20},
				{Name: "hd_buy_potential", WidthBytes: 10, Distinct: 6},
				{Name: "hd_dep_count", WidthBytes: 4, Distinct: 10},
				{Name: "hd_vehicle_count", WidthBytes: 4, Distinct: 6},
			},
			PrimaryKey: []string{"hd_demo_sk"},
		},
		{
			Name: "store", Rows: 12 * s,
			Columns: []engine.Column{
				{Name: "s_store_sk", WidthBytes: 4, Distinct: 12 * s},
				{Name: "s_store_id", WidthBytes: 16, Distinct: 6 * s},
				{Name: "s_store_name", WidthBytes: 10, Distinct: 10},
				{Name: "s_state", WidthBytes: 2, Distinct: 9},
				{Name: "s_county", WidthBytes: 20, Distinct: 9},
				{Name: "s_city", WidthBytes: 20, Distinct: 10},
				{Name: "s_number_employees", WidthBytes: 4, Distinct: 100},
			},
			PrimaryKey: []string{"s_store_sk"},
		},
		{
			Name: "warehouse", Rows: 5 * s,
			Columns: []engine.Column{
				{Name: "w_warehouse_sk", WidthBytes: 4, Distinct: 5 * s},
				{Name: "w_warehouse_name", WidthBytes: 20, Distinct: 5 * s},
				{Name: "w_state", WidthBytes: 2, Distinct: 5},
			},
			PrimaryKey: []string{"w_warehouse_sk"},
		},
		{
			Name: "promotion", Rows: 300 * s,
			Columns: []engine.Column{
				{Name: "p_promo_sk", WidthBytes: 4, Distinct: 300 * s},
				{Name: "p_channel_dmail", WidthBytes: 1, Distinct: 2},
				{Name: "p_channel_email", WidthBytes: 1, Distinct: 2},
				{Name: "p_channel_tv", WidthBytes: 1, Distinct: 2},
			},
			PrimaryKey: []string{"p_promo_sk"},
		},
		{
			Name: "store_sales", Rows: 2_880_404 * s,
			Columns: []engine.Column{
				{Name: "ss_sold_date_sk", WidthBytes: 4, Distinct: 1_823},
				{Name: "ss_sold_time_sk", WidthBytes: 4, Distinct: 43_000},
				{Name: "ss_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "ss_customer_sk", WidthBytes: 4, Distinct: 95_000 * s},
				{Name: "ss_cdemo_sk", WidthBytes: 4, Distinct: 1_500_000},
				{Name: "ss_hdemo_sk", WidthBytes: 4, Distinct: 7_200},
				{Name: "ss_addr_sk", WidthBytes: 4, Distinct: 50_000 * s},
				{Name: "ss_store_sk", WidthBytes: 4, Distinct: 12 * s},
				{Name: "ss_promo_sk", WidthBytes: 4, Distinct: 300 * s},
				{Name: "ss_ticket_number", WidthBytes: 8, Distinct: 240_000 * s},
				{Name: "ss_quantity", WidthBytes: 4, Distinct: 100},
				{Name: "ss_sales_price", WidthBytes: 8, Distinct: 19_000},
				{Name: "ss_ext_sales_price", WidthBytes: 8, Distinct: 700_000},
				{Name: "ss_net_profit", WidthBytes: 8, Distinct: 1_400_000},
				{Name: "ss_list_price", WidthBytes: 8, Distinct: 19_000},
				{Name: "ss_coupon_amt", WidthBytes: 8, Distinct: 1_000_000},
			},
			ForeignKeys: []string{"ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_store_sk", "ss_promo_sk", "ss_cdemo_sk", "ss_hdemo_sk", "ss_addr_sk"},
		},
		{
			Name: "store_returns", Rows: 287_514 * s,
			Columns: []engine.Column{
				{Name: "sr_returned_date_sk", WidthBytes: 4, Distinct: 2_000},
				{Name: "sr_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "sr_customer_sk", WidthBytes: 4, Distinct: 85_000 * s},
				{Name: "sr_ticket_number", WidthBytes: 8, Distinct: 180_000 * s},
				{Name: "sr_return_amt", WidthBytes: 8, Distinct: 150_000},
				{Name: "sr_store_sk", WidthBytes: 4, Distinct: 12 * s},
			},
			ForeignKeys: []string{"sr_returned_date_sk", "sr_item_sk", "sr_customer_sk", "sr_store_sk"},
		},
		{
			Name: "catalog_sales", Rows: 1_441_548 * s,
			Columns: []engine.Column{
				{Name: "cs_sold_date_sk", WidthBytes: 4, Distinct: 1_823},
				{Name: "cs_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "cs_bill_customer_sk", WidthBytes: 4, Distinct: 95_000 * s},
				{Name: "cs_bill_cdemo_sk", WidthBytes: 4, Distinct: 1_200_000},
				{Name: "cs_ship_addr_sk", WidthBytes: 4, Distinct: 50_000 * s},
				{Name: "cs_warehouse_sk", WidthBytes: 4, Distinct: 5 * s},
				{Name: "cs_promo_sk", WidthBytes: 4, Distinct: 300 * s},
				{Name: "cs_order_number", WidthBytes: 8, Distinct: 160_000 * s},
				{Name: "cs_quantity", WidthBytes: 4, Distinct: 100},
				{Name: "cs_ext_sales_price", WidthBytes: 8, Distinct: 550_000},
				{Name: "cs_net_profit", WidthBytes: 8, Distinct: 1_100_000},
			},
			ForeignKeys: []string{"cs_sold_date_sk", "cs_item_sk", "cs_bill_customer_sk", "cs_warehouse_sk", "cs_promo_sk"},
		},
		{
			Name: "catalog_returns", Rows: 144_067 * s,
			Columns: []engine.Column{
				{Name: "cr_returned_date_sk", WidthBytes: 4, Distinct: 2_000},
				{Name: "cr_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "cr_order_number", WidthBytes: 8, Distinct: 90_000 * s},
				{Name: "cr_return_amount", WidthBytes: 8, Distinct: 80_000},
			},
			ForeignKeys: []string{"cr_returned_date_sk", "cr_item_sk"},
		},
		{
			Name: "web_sales", Rows: 719_384 * s,
			Columns: []engine.Column{
				{Name: "ws_sold_date_sk", WidthBytes: 4, Distinct: 1_823},
				{Name: "ws_sold_time_sk", WidthBytes: 4, Distinct: 43_000},
				{Name: "ws_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "ws_bill_customer_sk", WidthBytes: 4, Distinct: 90_000 * s},
				{Name: "ws_ship_addr_sk", WidthBytes: 4, Distinct: 50_000 * s},
				{Name: "ws_web_site_sk", WidthBytes: 4, Distinct: 30},
				{Name: "ws_promo_sk", WidthBytes: 4, Distinct: 300 * s},
				{Name: "ws_order_number", WidthBytes: 8, Distinct: 80_000 * s},
				{Name: "ws_quantity", WidthBytes: 4, Distinct: 100},
				{Name: "ws_ext_sales_price", WidthBytes: 8, Distinct: 400_000},
				{Name: "ws_net_profit", WidthBytes: 8, Distinct: 700_000},
			},
			ForeignKeys: []string{"ws_sold_date_sk", "ws_item_sk", "ws_bill_customer_sk", "ws_web_site_sk", "ws_promo_sk"},
		},
		{
			Name: "web_returns", Rows: 71_763 * s,
			Columns: []engine.Column{
				{Name: "wr_returned_date_sk", WidthBytes: 4, Distinct: 2_000},
				{Name: "wr_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "wr_order_number", WidthBytes: 8, Distinct: 45_000 * s},
				{Name: "wr_return_amt", WidthBytes: 8, Distinct: 40_000},
			},
			ForeignKeys: []string{"wr_returned_date_sk", "wr_item_sk"},
		},
		{
			Name: "web_site", Rows: 30,
			Columns: []engine.Column{
				{Name: "web_site_sk", WidthBytes: 4, Distinct: 30},
				{Name: "web_name", WidthBytes: 10, Distinct: 15},
			},
			PrimaryKey: []string{"web_site_sk"},
		},
		{
			Name: "inventory", Rows: 11_745_000 * s,
			Columns: []engine.Column{
				{Name: "inv_date_sk", WidthBytes: 4, Distinct: 261},
				{Name: "inv_item_sk", WidthBytes: 4, Distinct: 18_000 * s},
				{Name: "inv_warehouse_sk", WidthBytes: 4, Distinct: 5 * s},
				{Name: "inv_quantity_on_hand", WidthBytes: 4, Distinct: 1_000},
			},
			ForeignKeys: []string{"inv_date_sk", "inv_item_sk", "inv_warehouse_sk"},
		},
	})
	return &Workload{
		Name:    fmt.Sprintf("TPC-DS SF%d", sf),
		Catalog: cat,
		Queries: prepare("DS", tpcdsQueries),
	}
}

// tpcdsQueries is the 40-query subset (flattened where the official text
// uses derived tables or window functions).
var tpcdsQueries = []string{
	// Q3-style: brand revenue by year/month.
	`SELECT d.d_year, i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) AS sum_agg
	FROM date_dim d, store_sales ss, item i
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manufact_id = 128 AND d.d_moy = 11
	GROUP BY d.d_year, i.i_brand_id, i.i_brand
	ORDER BY d.d_year, sum_agg DESC, i.i_brand_id LIMIT 100`,
	// Q7-style: demographics-filtered average.
	`SELECT i.i_item_id, AVG(ss.ss_quantity) AS agg1, AVG(ss.ss_list_price) AS agg2,
		AVG(ss.ss_coupon_amt) AS agg3, AVG(ss.ss_sales_price) AS agg4
	FROM store_sales ss, customer_demographics cd, date_dim d, item i, promotion p
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND ss.ss_cdemo_sk = cd.cd_demo_sk AND ss.ss_promo_sk = p.p_promo_sk
		AND cd.cd_gender = 'M' AND cd.cd_marital_status = 'S'
		AND cd.cd_education_status = 'College' AND d.d_year = 2000
	GROUP BY i.i_item_id ORDER BY i.i_item_id LIMIT 100`,
	// Q19-style: brand revenue by manager.
	`SELECT i.i_brand_id, i.i_brand, i.i_manufact_id, SUM(ss.ss_ext_sales_price) AS ext_price
	FROM date_dim d, store_sales ss, item i, customer c, customer_address ca, store s
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manager_id = 8 AND d.d_moy = 11 AND d.d_year = 1998
		AND ss.ss_customer_sk = c.c_customer_sk AND c.c_current_addr_sk = ca.ca_address_sk
		AND ss.ss_store_sk = s.s_store_sk
	GROUP BY i.i_brand_id, i.i_brand, i.i_manufact_id
	ORDER BY ext_price DESC, i.i_brand_id LIMIT 100`,
	// Q25-style: store sales + returns + catalog follow-up purchases.
	`SELECT i.i_item_id, s.s_store_id, SUM(ss.ss_net_profit) AS store_sales_profit,
		SUM(sr.sr_return_amt) AS store_returns_loss, SUM(cs.cs_net_profit) AS catalog_sales_profit
	FROM store_sales ss, store_returns sr, catalog_sales cs, date_dim d1, item i, store s
	WHERE d1.d_moy = 4 AND d1.d_year = 2001 AND d1.d_date_sk = ss.ss_sold_date_sk
		AND i.i_item_sk = ss.ss_item_sk AND s.s_store_sk = ss.ss_store_sk
		AND ss.ss_customer_sk = sr.sr_customer_sk AND ss.ss_item_sk = sr.sr_item_sk
		AND ss.ss_ticket_number = sr.sr_ticket_number
		AND sr.sr_customer_sk = cs.cs_bill_customer_sk AND sr.sr_item_sk = cs.cs_item_sk
	GROUP BY i.i_item_id, s.s_store_id
	ORDER BY i.i_item_id, s.s_store_id LIMIT 100`,
	// Q26-style: catalog demographics averages.
	`SELECT i.i_item_id, AVG(cs.cs_quantity) AS agg1, AVG(cs.cs_ext_sales_price) AS agg2
	FROM catalog_sales cs, customer_demographics cd, date_dim d, item i, promotion p
	WHERE cs.cs_sold_date_sk = d.d_date_sk AND cs.cs_item_sk = i.i_item_sk
		AND cs.cs_bill_cdemo_sk = cd.cd_demo_sk AND cs.cs_promo_sk = p.p_promo_sk
		AND cd.cd_gender = 'F' AND cd.cd_marital_status = 'W'
		AND cd.cd_education_status = 'Primary' AND d.d_year = 1998
	GROUP BY i.i_item_id ORDER BY i.i_item_id LIMIT 100`,
	// Q42-style: category revenue.
	`SELECT d.d_year, i.i_category, SUM(ss.ss_ext_sales_price) AS total_sales
	FROM date_dim d, store_sales ss, item i
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manager_id = 1 AND d.d_moy = 11 AND d.d_year = 2000
	GROUP BY d.d_year, i.i_category ORDER BY total_sales DESC LIMIT 100`,
	// Q52-style: brand by month.
	`SELECT d.d_year, i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) AS ext_price
	FROM date_dim d, store_sales ss, item i
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manager_id = 1 AND d.d_moy = 11 AND d.d_year = 2000
	GROUP BY d.d_year, i.i_brand, i.i_brand_id ORDER BY d.d_year, ext_price DESC LIMIT 100`,
	// Q55-style: manager brand revenue.
	`SELECT i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) AS ext_price
	FROM date_dim d, store_sales ss, item i
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manager_id = 28 AND d.d_moy = 11 AND d.d_year = 1999
	GROUP BY i.i_brand, i.i_brand_id ORDER BY ext_price DESC, i.i_brand_id LIMIT 100`,
	// Q96-style: half-hour customer count.
	`SELECT COUNT(*) AS cnt
	FROM store_sales ss, household_demographics hd, time_dim t, store s
	WHERE ss.ss_sold_time_sk = t.t_time_sk AND ss.ss_hdemo_sk = hd.hd_demo_sk
		AND ss.ss_store_sk = s.s_store_sk AND t.t_hour = 20
		AND hd.hd_dep_count = 7 AND s.s_store_name = 'ese'`,
	// Q98-style: class revenue share.
	`SELECT i.i_item_id, i.i_category, i.i_class, i.i_current_price, SUM(ss.ss_ext_sales_price) AS itemrevenue
	FROM store_sales ss, item i, date_dim d
	WHERE ss.ss_item_sk = i.i_item_sk AND i.i_category IN ('Sports', 'Books', 'Home')
		AND ss.ss_sold_date_sk = d.d_date_sk
		AND d.d_date BETWEEN DATE '1999-02-22' AND DATE '1999-03-24'
	GROUP BY i.i_item_id, i.i_category, i.i_class, i.i_current_price
	ORDER BY i.i_category, i.i_class, i.i_item_id LIMIT 100`,
	// Q6-style: state purchase counts vs average price.
	`SELECT ca.ca_state, COUNT(*) AS cnt
	FROM customer_address ca, customer c, store_sales ss, date_dim d, item i
	WHERE ca.ca_address_sk = c.c_current_addr_sk AND c.c_customer_sk = ss.ss_customer_sk
		AND ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND d.d_year = 2001 AND d.d_moy = 1
		AND i.i_current_price > (SELECT 1.2 * AVG(i2.i_current_price) FROM item i2 WHERE i2.i_category = i.i_category)
	GROUP BY ca.ca_state HAVING COUNT(*) >= 10 ORDER BY cnt LIMIT 100`,
	// Q15-style: catalog sales by zip.
	`SELECT ca.ca_zip, SUM(cs.cs_ext_sales_price) AS total
	FROM catalog_sales cs, customer c, customer_address ca, date_dim d
	WHERE cs.cs_bill_customer_sk = c.c_customer_sk AND c.c_current_addr_sk = ca.ca_address_sk
		AND cs.cs_sold_date_sk = d.d_date_sk AND d.d_qoy = 2 AND d.d_year = 2001
		AND ca.ca_state IN ('CA', 'WA', 'GA')
	GROUP BY ca.ca_zip ORDER BY ca.ca_zip LIMIT 100`,
	// Q29-style: quantity analysis across channels.
	`SELECT i.i_item_id, s.s_store_id, SUM(ss.ss_quantity) AS store_sales_quantity,
		SUM(sr.sr_return_amt) AS returns_amt
	FROM store_sales ss, store_returns sr, date_dim d1, item i, store s
	WHERE d1.d_moy = 9 AND d1.d_year = 1999 AND d1.d_date_sk = ss.ss_sold_date_sk
		AND i.i_item_sk = ss.ss_item_sk AND s.s_store_sk = ss.ss_store_sk
		AND ss.ss_customer_sk = sr.sr_customer_sk AND ss.ss_item_sk = sr.sr_item_sk
		AND ss.ss_ticket_number = sr.sr_ticket_number
	GROUP BY i.i_item_id, s.s_store_id ORDER BY i.i_item_id LIMIT 100`,
	// Q37-style: inventory-backed catalog items.
	`SELECT i.i_item_id, i.i_current_price
	FROM item i, inventory inv, date_dim d, catalog_sales cs
	WHERE i.i_current_price BETWEEN 68 AND 98 AND inv.inv_item_sk = i.i_item_sk
		AND d.d_date_sk = inv.inv_date_sk
		AND d.d_date BETWEEN DATE '2000-02-01' AND DATE '2000-04-01'
		AND i.i_manufact_id IN (677, 940, 694, 808)
		AND inv.inv_quantity_on_hand BETWEEN 100 AND 500
		AND cs.cs_item_sk = i.i_item_sk
	GROUP BY i.i_item_id, i.i_current_price ORDER BY i.i_item_id LIMIT 100`,
	// Q82-style: store variant of Q37.
	`SELECT i.i_item_id, i.i_current_price
	FROM item i, inventory inv, date_dim d, store_sales ss
	WHERE i.i_current_price BETWEEN 62 AND 92 AND inv.inv_item_sk = i.i_item_sk
		AND d.d_date_sk = inv.inv_date_sk
		AND d.d_date BETWEEN DATE '2000-05-25' AND DATE '2000-07-25'
		AND i.i_manufact_id IN (129, 270, 821, 423)
		AND inv.inv_quantity_on_hand BETWEEN 100 AND 500
		AND ss.ss_item_sk = i.i_item_sk
	GROUP BY i.i_item_id, i.i_current_price ORDER BY i.i_item_id LIMIT 100`,
	// Q45-style: web sales by zip/city.
	`SELECT ca.ca_zip, ca.ca_city, SUM(ws.ws_ext_sales_price) AS total
	FROM web_sales ws, customer c, customer_address ca, date_dim d, item i
	WHERE ws.ws_bill_customer_sk = c.c_customer_sk AND c.c_current_addr_sk = ca.ca_address_sk
		AND ws.ws_item_sk = i.i_item_sk AND ws.ws_sold_date_sk = d.d_date_sk
		AND d.d_qoy = 2 AND d.d_year = 2001
	GROUP BY ca.ca_zip, ca.ca_city ORDER BY ca.ca_zip, ca.ca_city LIMIT 100`,
	// Q96 variant at different hour.
	`SELECT COUNT(*) AS cnt
	FROM store_sales ss, household_demographics hd, time_dim t, store s
	WHERE ss.ss_sold_time_sk = t.t_time_sk AND ss.ss_hdemo_sk = hd.hd_demo_sk
		AND ss.ss_store_sk = s.s_store_sk AND t.t_hour = 8
		AND hd.hd_dep_count = 5 AND s.s_store_name = 'ese'`,
	// Q43-style: store day-of-week sales.
	`SELECT s.s_store_name, s.s_store_id,
		SUM(CASE WHEN d.d_day_name = 'Sunday' THEN ss.ss_sales_price ELSE 0 END) AS sun_sales,
		SUM(CASE WHEN d.d_day_name = 'Monday' THEN ss.ss_sales_price ELSE 0 END) AS mon_sales
	FROM date_dim d, store_sales ss, store s
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND s.s_store_sk = ss.ss_store_sk
		AND d.d_year = 2000
	GROUP BY s.s_store_name, s.s_store_id ORDER BY s.s_store_name LIMIT 100`,
	// Q48-style: quantity by demographics and address.
	`SELECT SUM(ss.ss_quantity) AS total
	FROM store_sales ss, store s, customer_demographics cd, customer_address ca, date_dim d
	WHERE s.s_store_sk = ss.ss_store_sk AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2000
		AND ss.ss_cdemo_sk = cd.cd_demo_sk AND cd.cd_marital_status = 'M'
		AND cd.cd_education_status = '4 yr Degree'
		AND ss.ss_addr_sk = ca.ca_address_sk AND ca.ca_country = 'United States'
		AND ca.ca_state IN ('CO', 'OH', 'TX') AND ss.ss_net_profit BETWEEN 0 AND 2000`,
	// Q50-style: return latency buckets.
	`SELECT s.s_store_name, COUNT(*) AS total
	FROM store_sales ss, store_returns sr, store s, date_dim d1, date_dim d2
	WHERE d2.d_moy = 8 AND d2.d_year = 2001
		AND ss.ss_ticket_number = sr.sr_ticket_number AND ss.ss_item_sk = sr.sr_item_sk
		AND ss.ss_sold_date_sk = d1.d_date_sk AND sr.sr_returned_date_sk = d2.d_date_sk
		AND ss.ss_customer_sk = sr.sr_customer_sk AND ss.ss_store_sk = s.s_store_sk
	GROUP BY s.s_store_name ORDER BY s.s_store_name LIMIT 100`,
	// Q62-style: web shipping latency.
	`SELECT w.w_warehouse_name, COUNT(*) AS cnt
	FROM web_sales ws, warehouse w, date_dim d
	WHERE ws.ws_sold_date_sk = d.d_date_sk AND d.d_month_seq BETWEEN 1200 AND 1211
		AND ws.ws_item_sk > 0 AND w.w_warehouse_sk > 0
	GROUP BY w.w_warehouse_name ORDER BY w.w_warehouse_name LIMIT 100`,
	// Q68-style: city-level ticket aggregation.
	`SELECT c.c_last_name, c.c_first_name, ca.ca_city, SUM(ss.ss_ext_sales_price) AS extended_price
	FROM store_sales ss, date_dim d, store s, household_demographics hd, customer_address ca, customer c
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_addr_sk = ca.ca_address_sk
		AND ss.ss_customer_sk = c.c_customer_sk
		AND d.d_dom BETWEEN 1 AND 2 AND hd.hd_dep_count = 4
		AND s.s_city IN ('Midway', 'Fairview') AND d.d_year IN (1999, 2000, 2001)
	GROUP BY c.c_last_name, c.c_first_name, ca.ca_city
	ORDER BY c.c_last_name LIMIT 100`,
	// Q73-style: ticket frequency by household.
	`SELECT c.c_last_name, c.c_first_name, COUNT(*) AS cnt
	FROM store_sales ss, date_dim d, store s, household_demographics hd, customer c
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_customer_sk = c.c_customer_sk
		AND d.d_dom BETWEEN 1 AND 2 AND hd.hd_buy_potential = '>10000'
		AND hd.hd_vehicle_count > 0 AND d.d_year IN (1999, 2000, 2001)
		AND s.s_county IN ('Williamson County', 'Franklin Parish')
	GROUP BY c.c_last_name, c.c_first_name ORDER BY cnt DESC LIMIT 100`,
	// Q79-style: profit per ticket.
	`SELECT c.c_last_name, c.c_first_name, s.s_city, SUM(ss.ss_net_profit) AS profit
	FROM store_sales ss, date_dim d, store s, household_demographics hd, customer c
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_customer_sk = c.c_customer_sk
		AND hd.hd_dep_count = 6 AND d.d_year IN (1999, 2000, 2001)
		AND s.s_number_employees BETWEEN 200 AND 295
	GROUP BY c.c_last_name, c.c_first_name, s.s_city ORDER BY profit LIMIT 100`,
	// Q85-style: web returns with demographics.
	`SELECT AVG(ws.ws_quantity) AS avg_qty, AVG(wr.wr_return_amt) AS avg_amt
	FROM web_sales ws, web_returns wr, date_dim d, customer_demographics cd, customer_address ca
	WHERE ws.ws_order_number = wr.wr_order_number AND ws.ws_item_sk = wr.wr_item_sk
		AND ws.ws_sold_date_sk = d.d_date_sk AND d.d_year = 2000
		AND cd.cd_marital_status = 'M' AND cd.cd_education_status = 'Advanced Degree'
		AND ws.ws_ship_addr_sk = ca.ca_address_sk AND ca.ca_state IN ('IN', 'OH', 'NJ')`,
	// Q91-style: catalog returns by demographics.
	`SELECT cd.cd_marital_status, cd.cd_education_status, SUM(cr.cr_return_amount) AS returns_loss
	FROM catalog_returns cr, date_dim d, customer c, customer_demographics cd, customer_address ca
	WHERE cr.cr_returned_date_sk = d.d_date_sk AND d.d_year = 1998 AND d.d_moy = 11
		AND cr.cr_item_sk > 0 AND c.c_current_cdemo_sk = cd.cd_demo_sk
		AND c.c_current_addr_sk = ca.ca_address_sk AND ca.ca_gmt_offset = -7
	GROUP BY cd.cd_marital_status, cd.cd_education_status ORDER BY returns_loss DESC`,
	// Q99-style: catalog shipping latency by warehouse.
	`SELECT w.w_warehouse_name, COUNT(*) AS cnt
	FROM catalog_sales cs, warehouse w, date_dim d
	WHERE cs.cs_sold_date_sk = d.d_date_sk AND cs.cs_warehouse_sk = w.w_warehouse_sk
		AND d.d_month_seq BETWEEN 1200 AND 1211
	GROUP BY w.w_warehouse_name ORDER BY w.w_warehouse_name LIMIT 100`,
	// Q3 variant: different manufacturer and month.
	`SELECT d.d_year, i.i_brand_id, i.i_brand, SUM(ss.ss_ext_sales_price) AS sum_agg
	FROM date_dim d, store_sales ss, item i
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manufact_id = 436 AND d.d_moy = 12
	GROUP BY d.d_year, i.i_brand_id, i.i_brand ORDER BY d.d_year, sum_agg DESC LIMIT 100`,
	// Q88-style: multi-timeslot count (single slot flattened).
	`SELECT COUNT(*) AS h8_30_to_9
	FROM store_sales ss, household_demographics hd, time_dim t, store s
	WHERE ss.ss_sold_time_sk = t.t_time_sk AND ss.ss_hdemo_sk = hd.hd_demo_sk
		AND ss.ss_store_sk = s.s_store_sk AND t.t_hour = 8 AND t.t_minute >= 30
		AND hd.hd_dep_count = 2 AND s.s_store_name = 'ese'`,
	// Q90-style: am/pm web ratio (flattened to am side, demographics via customer key).
	`SELECT COUNT(*) AS amc
	FROM web_sales ws, household_demographics hd, time_dim t, web_site wsite
	WHERE ws.ws_sold_time_sk = t.t_time_sk AND ws.ws_web_site_sk = wsite.web_site_sk
		AND t.t_hour BETWEEN 8 AND 9 AND wsite.web_name LIKE 'pri%'
		AND ws.ws_bill_customer_sk = hd.hd_demo_sk`,
	// Q34-style: large-ticket households.
	`SELECT c.c_last_name, c.c_first_name, COUNT(*) AS cnt
	FROM store_sales ss, date_dim d, store s, household_demographics hd, customer c
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_customer_sk = c.c_customer_sk
		AND d.d_dom BETWEEN 1 AND 3 AND hd.hd_buy_potential = '>10000'
		AND hd.hd_vehicle_count > 0 AND d.d_year IN (1999, 2000, 2001)
		AND s.s_county = 'Williamson County'
	GROUP BY c.c_last_name, c.c_first_name ORDER BY cnt DESC LIMIT 100`,
	// Q27-style: store demographics averages by state.
	`SELECT i.i_item_id, s.s_state, AVG(ss.ss_quantity) AS agg1, AVG(ss.ss_list_price) AS agg2
	FROM store_sales ss, customer_demographics cd, date_dim d, store s, item i
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND ss.ss_store_sk = s.s_store_sk AND ss.ss_cdemo_sk = cd.cd_demo_sk
		AND cd.cd_gender = 'M' AND cd.cd_marital_status = 'S'
		AND cd.cd_education_status = 'College' AND d.d_year = 2002
		AND s.s_state IN ('TN', 'SD')
	GROUP BY i.i_item_id, s.s_state ORDER BY i.i_item_id, s.s_state LIMIT 100`,
	// Q61-style: promotional vs total revenue.
	`SELECT SUM(ss.ss_ext_sales_price) AS promotions
	FROM store_sales ss, store s, promotion p, date_dim d, customer c, customer_address ca, item i
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_promo_sk = p.p_promo_sk AND ss.ss_customer_sk = c.c_customer_sk
		AND ca.ca_address_sk = c.c_current_addr_sk AND ss.ss_item_sk = i.i_item_sk
		AND ca.ca_gmt_offset = -5 AND i.i_category = 'Jewelry'
		AND p.p_channel_dmail = 'Y' AND d.d_year = 1998 AND d.d_moy = 11`,
	// Q33-style: manufacturer revenue by channel (store slice).
	`SELECT i.i_manufact_id, SUM(ss.ss_ext_sales_price) AS total_sales
	FROM store_sales ss, date_dim d, customer_address ca, item i
	WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk
		AND ss.ss_addr_sk = ca.ca_address_sk AND d.d_year = 1998 AND d.d_moy = 5
		AND ca.ca_gmt_offset = -5 AND i.i_category = 'Books'
	GROUP BY i.i_manufact_id ORDER BY total_sales LIMIT 100`,
	// Q56-style: color-coded items (web slice).
	`SELECT i.i_item_id, SUM(ws.ws_ext_sales_price) AS total_sales
	FROM web_sales ws, date_dim d, customer_address ca, item i
	WHERE ws.ws_item_sk = i.i_item_sk AND ws.ws_sold_date_sk = d.d_date_sk
		AND ws.ws_ship_addr_sk = ca.ca_address_sk AND d.d_year = 2001 AND d.d_moy = 2
		AND ca.ca_gmt_offset = -5 AND i.i_color IN ('slate', 'blanched', 'burnished')
	GROUP BY i.i_item_id ORDER BY total_sales LIMIT 100`,
	// Q60-style: category items by month (catalog slice).
	`SELECT i.i_item_id, SUM(cs.cs_ext_sales_price) AS total_sales
	FROM catalog_sales cs, date_dim d, customer_address ca, item i
	WHERE cs.cs_item_sk = i.i_item_sk AND cs.cs_sold_date_sk = d.d_date_sk
		AND cs.cs_ship_addr_sk = ca.ca_address_sk AND d.d_year = 1998 AND d.d_moy = 9
		AND ca.ca_gmt_offset = -5 AND i.i_category = 'Music'
	GROUP BY i.i_item_id ORDER BY i.i_item_id LIMIT 100`,
	// Q13-style: bucketed quantity average.
	`SELECT AVG(ss.ss_quantity) AS q, AVG(ss.ss_ext_sales_price) AS p, AVG(ss.ss_net_profit) AS np
	FROM store_sales ss, store s, customer_demographics cd, household_demographics hd, customer_address ca, date_dim d
	WHERE s.s_store_sk = ss.ss_store_sk AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2001
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND cd.cd_demo_sk = ss.ss_cdemo_sk
		AND cd.cd_marital_status = 'M' AND cd.cd_education_status = 'Advanced Degree'
		AND hd.hd_dep_count = 3 AND ss.ss_addr_sk = ca.ca_address_sk
		AND ca.ca_country = 'United States' AND ca.ca_state IN ('TX', 'OH')
		AND ss.ss_net_profit BETWEEN 100 AND 200`,
	// Q65-style: low-revenue items per store.
	`SELECT s.s_store_name, i.i_item_id, SUM(ss.ss_sales_price) AS revenue
	FROM store s, item i, store_sales ss, date_dim d
	WHERE ss.ss_store_sk = s.s_store_sk AND ss.ss_item_sk = i.i_item_sk
		AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_month_seq BETWEEN 1176 AND 1187
	GROUP BY s.s_store_name, i.i_item_id ORDER BY s.s_store_name, i.i_item_id LIMIT 100`,
	// Q72-style: inventory shortfall joins.
	`SELECT i.i_item_id, w.w_warehouse_name, d.d_month_seq, COUNT(*) AS no_promo
	FROM catalog_sales cs, inventory inv, warehouse w, item i, date_dim d
	WHERE cs.cs_item_sk = i.i_item_sk AND inv.inv_item_sk = i.i_item_sk
		AND w.w_warehouse_sk = inv.inv_warehouse_sk AND cs.cs_sold_date_sk = d.d_date_sk
		AND d.d_year = 1999 AND inv.inv_quantity_on_hand < cs.cs_quantity
	GROUP BY i.i_item_id, w.w_warehouse_name, d.d_month_seq
	ORDER BY i.i_item_id LIMIT 100`,
	// Q92-style: excess web discount.
	`SELECT SUM(ws.ws_ext_sales_price) AS excess_discount
	FROM web_sales ws, item i, date_dim d
	WHERE i.i_manufact_id = 350 AND i.i_item_sk = ws.ws_item_sk
		AND d.d_date BETWEEN DATE '2000-01-27' AND DATE '2000-04-26'
		AND d.d_date_sk = ws.ws_sold_date_sk
		AND ws.ws_ext_sales_price > (SELECT 1.3 * AVG(ws2.ws_ext_sales_price)
			FROM web_sales ws2, date_dim d2
			WHERE ws2.ws_item_sk = i.i_item_sk AND d2.d_date_sk = ws2.ws_sold_date_sk)`,
	// Q95-style: multi-warehouse web orders.
	`SELECT COUNT(DISTINCT ws.ws_order_number) AS order_count, SUM(ws.ws_ext_sales_price) AS total
	FROM web_sales ws, date_dim d, customer_address ca, web_site wsite
	WHERE d.d_date BETWEEN DATE '1999-02-01' AND DATE '1999-04-01'
		AND ws.ws_sold_date_sk = d.d_date_sk AND ws.ws_ship_addr_sk = ca.ca_address_sk
		AND ca.ca_state = 'IL' AND ws.ws_web_site_sk = wsite.web_site_sk
		AND wsite.web_name = 'pri'
		AND EXISTS (SELECT 1 FROM web_returns wr WHERE wr.wr_order_number = ws.ws_order_number)`,
	// Q1-style: customers returning more than the store average (flattened).
	`SELECT c.c_customer_id
	FROM store_returns sr, date_dim d, store s, customer c
	WHERE sr.sr_returned_date_sk = d.d_date_sk AND d.d_year = 2000
		AND sr.sr_store_sk = s.s_store_sk AND s.s_state = 'TN'
		AND sr.sr_customer_sk = c.c_customer_sk
		AND sr.sr_return_amt > (SELECT 1.2 * AVG(sr2.sr_return_amt)
			FROM store_returns sr2 WHERE sr2.sr_store_sk = sr.sr_store_sk)
	GROUP BY c.c_customer_id ORDER BY c.c_customer_id LIMIT 100`,
	// Q16-style: catalog orders shipped from one state (flattened).
	`SELECT COUNT(DISTINCT cs.cs_order_number) AS order_count, SUM(cs.cs_ext_sales_price) AS total
	FROM catalog_sales cs, date_dim d, customer_address ca
	WHERE d.d_date BETWEEN DATE '2002-02-01' AND DATE '2002-04-01'
		AND cs.cs_sold_date_sk = d.d_date_sk AND cs.cs_ship_addr_sk = ca.ca_address_sk
		AND ca.ca_state = 'GA'
		AND EXISTS (SELECT 1 FROM catalog_returns cr WHERE cr.cr_order_number = cs.cs_order_number)`,
	// Q18-style: catalog averages by demographic buckets.
	`SELECT i.i_item_id, ca.ca_country, ca.ca_state, AVG(cs.cs_quantity) AS agg1
	FROM catalog_sales cs, customer_demographics cd, customer c, customer_address ca, date_dim d, item i
	WHERE cs.cs_sold_date_sk = d.d_date_sk AND cs.cs_item_sk = i.i_item_sk
		AND cs.cs_bill_cdemo_sk = cd.cd_demo_sk AND cs.cs_bill_customer_sk = c.c_customer_sk
		AND cd.cd_gender = 'F' AND cd.cd_education_status = 'Unknown'
		AND c.c_current_addr_sk = ca.ca_address_sk AND d.d_year = 1998
		AND c.c_birth_year IN (1965, 1972, 1980)
	GROUP BY i.i_item_id, ca.ca_country, ca.ca_state ORDER BY ca.ca_country LIMIT 100`,
	// Q20-style: catalog class revenue share.
	`SELECT i.i_item_id, i.i_category, i.i_class, SUM(cs.cs_ext_sales_price) AS itemrevenue
	FROM catalog_sales cs, item i, date_dim d
	WHERE cs.cs_item_sk = i.i_item_sk AND i.i_category IN ('Sports', 'Books', 'Home')
		AND cs.cs_sold_date_sk = d.d_date_sk
		AND d.d_date BETWEEN DATE '1999-02-22' AND DATE '1999-03-24'
	GROUP BY i.i_item_id, i.i_category, i.i_class ORDER BY i.i_category LIMIT 100`,
	// Q21-style: inventory before/after a date split.
	`SELECT w.w_warehouse_name, i.i_item_id,
		SUM(CASE WHEN d.d_date < DATE '2000-03-11' THEN inv.inv_quantity_on_hand ELSE 0 END) AS inv_before,
		SUM(CASE WHEN d.d_date >= DATE '2000-03-11' THEN inv.inv_quantity_on_hand ELSE 0 END) AS inv_after
	FROM inventory inv, warehouse w, item i, date_dim d
	WHERE i.i_current_price BETWEEN 0.99 AND 1.49 AND i.i_item_sk = inv.inv_item_sk
		AND inv.inv_warehouse_sk = w.w_warehouse_sk AND inv.inv_date_sk = d.d_date_sk
		AND d.d_date BETWEEN DATE '2000-02-10' AND DATE '2000-04-10'
	GROUP BY w.w_warehouse_name, i.i_item_id ORDER BY w.w_warehouse_name LIMIT 100`,
	// Q22-style: inventory averages by product hierarchy.
	`SELECT i.i_brand, i.i_class, i.i_category, AVG(inv.inv_quantity_on_hand) AS qoh
	FROM inventory inv, date_dim d, item i
	WHERE inv.inv_date_sk = d.d_date_sk AND inv.inv_item_sk = i.i_item_sk
		AND d.d_month_seq BETWEEN 1200 AND 1211
	GROUP BY i.i_brand, i.i_class, i.i_category ORDER BY qoh LIMIT 100`,
	// Q32-style: excess catalog discount.
	`SELECT SUM(cs.cs_ext_sales_price) AS excess_discount
	FROM catalog_sales cs, item i, date_dim d
	WHERE i.i_manufact_id = 977 AND i.i_item_sk = cs.cs_item_sk
		AND d.d_date BETWEEN DATE '2000-01-27' AND DATE '2000-04-26'
		AND d.d_date_sk = cs.cs_sold_date_sk
		AND cs.cs_ext_sales_price > (SELECT 1.3 * AVG(cs2.cs_ext_sales_price)
			FROM catalog_sales cs2, date_dim d2
			WHERE cs2.cs_item_sk = i.i_item_sk AND d2.d_date_sk = cs2.cs_sold_date_sk)`,
	// Q36-style: gross margin by category/class.
	`SELECT SUM(ss.ss_net_profit) / SUM(ss.ss_ext_sales_price) AS gross_margin,
		i.i_category, i.i_class
	FROM store_sales ss, date_dim d, item i, store s
	WHERE d.d_year = 2001 AND d.d_date_sk = ss.ss_sold_date_sk
		AND i.i_item_sk = ss.ss_item_sk AND s.s_store_sk = ss.ss_store_sk
		AND s.s_state IN ('TN', 'SD')
	GROUP BY i.i_category, i.i_class ORDER BY gross_margin LIMIT 100`,
	// Q40-style: warehouse sales around a returns event.
	`SELECT w.w_state, i.i_item_id,
		SUM(CASE WHEN d.d_date < DATE '2000-03-11' THEN cs.cs_ext_sales_price ELSE 0 END) AS before_amt,
		SUM(CASE WHEN d.d_date >= DATE '2000-03-11' THEN cs.cs_ext_sales_price ELSE 0 END) AS after_amt
	FROM catalog_sales cs, warehouse w, item i, date_dim d
	WHERE i.i_current_price BETWEEN 0.99 AND 1.49 AND i.i_item_sk = cs.cs_item_sk
		AND cs.cs_warehouse_sk = w.w_warehouse_sk AND cs.cs_sold_date_sk = d.d_date_sk
		AND d.d_date BETWEEN DATE '2000-02-10' AND DATE '2000-04-10'
	GROUP BY w.w_state, i.i_item_id ORDER BY w.w_state LIMIT 100`,
	// Q46-style: ticket totals for moving customers.
	`SELECT c.c_last_name, c.c_first_name, ca.ca_city, SUM(ss.ss_coupon_amt) AS amt
	FROM store_sales ss, date_dim d, store s, household_demographics hd, customer_address ca, customer c
	WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
		AND ss.ss_hdemo_sk = hd.hd_demo_sk AND ss.ss_addr_sk = ca.ca_address_sk
		AND ss.ss_customer_sk = c.c_customer_sk
		AND hd.hd_dep_count = 4 AND d.d_dom BETWEEN 1 AND 2
		AND d.d_year IN (1999, 2000, 2001) AND s.s_city IN ('Fairview', 'Midway')
	GROUP BY c.c_last_name, c.c_first_name, ca.ca_city ORDER BY c.c_last_name LIMIT 100`,
	// Q53-style: manufacturer quarterly sales.
	`SELECT i.i_manufact_id, SUM(ss.ss_sales_price) AS sum_sales
	FROM item i, store_sales ss, date_dim d, store s
	WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk
		AND ss.ss_store_sk = s.s_store_sk AND d.d_month_seq IN (1200, 1201, 1202, 1203)
		AND i.i_category IN ('Books', 'Children', 'Electronics')
	GROUP BY i.i_manufact_id ORDER BY sum_sales DESC LIMIT 100`,
	// Q59-style: weekly store sales comparison (flattened to one year).
	`SELECT s.s_store_name, s.s_store_id, d.d_day_name, SUM(ss.ss_sales_price) AS sales
	FROM date_dim d, store_sales ss, store s
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND s.s_store_sk = ss.ss_store_sk
		AND d.d_month_seq BETWEEN 1185 AND 1196
	GROUP BY s.s_store_name, s.s_store_id, d.d_day_name ORDER BY s.s_store_name LIMIT 100`,
	// Q63-style: manager monthly sales.
	`SELECT i.i_manager_id, SUM(ss.ss_sales_price) AS sum_sales
	FROM item i, store_sales ss, date_dim d, store s
	WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk
		AND ss.ss_store_sk = s.s_store_sk AND d.d_month_seq IN (1200, 1201, 1202)
		AND i.i_category IN ('Books', 'Children') AND i.i_class IN ('personal', 'portable')
	GROUP BY i.i_manager_id ORDER BY i.i_manager_id LIMIT 100`,
	// Q69-style: demographic counts for non-store buyers (flattened).
	`SELECT cd.cd_gender, cd.cd_marital_status, cd.cd_education_status, COUNT(*) AS cnt
	FROM customer c, customer_address ca, customer_demographics cd
	WHERE c.c_current_addr_sk = ca.ca_address_sk AND ca.ca_state IN ('KY', 'GA', 'NM')
		AND cd.cd_demo_sk = c.c_current_cdemo_sk
		AND EXISTS (SELECT 1 FROM store_sales ss, date_dim d
			WHERE c.c_customer_sk = ss.ss_customer_sk AND ss.ss_sold_date_sk = d.d_date_sk
				AND d.d_year = 2001 AND d.d_moy BETWEEN 4 AND 6)
	GROUP BY cd.cd_gender, cd.cd_marital_status, cd.cd_education_status
	ORDER BY cnt LIMIT 100`,
	// Q71-style: brand revenue by hour.
	`SELECT i.i_brand_id, i.i_brand, t.t_hour, SUM(ss.ss_ext_sales_price) AS ext_price
	FROM item i, store_sales ss, date_dim d, time_dim t
	WHERE d.d_date_sk = ss.ss_sold_date_sk AND ss.ss_item_sk = i.i_item_sk
		AND i.i_manager_id = 1 AND d.d_moy = 11 AND d.d_year = 1999
		AND ss.ss_sold_time_sk = t.t_time_sk AND t.t_meal_time IN ('breakfast', 'dinner')
	GROUP BY i.i_brand, i.i_brand_id, t.t_hour ORDER BY ext_price DESC LIMIT 100`,
	// Q84-style: customer lookup by income band city.
	`SELECT c.c_customer_id, c.c_last_name, c.c_first_name
	FROM customer c, customer_address ca, customer_demographics cd,
		household_demographics hd, store_returns sr
	WHERE ca.ca_city = 'Edgewood' AND c.c_current_addr_sk = ca.ca_address_sk
		AND c.c_current_cdemo_sk = cd.cd_demo_sk AND c.c_current_hdemo_sk = hd.hd_demo_sk
		AND hd.hd_income_band_sk BETWEEN 5 AND 10 AND cd.cd_demo_sk = sr.sr_customer_sk
	ORDER BY c.c_customer_id LIMIT 100`,
	// Q93-style: actual store sales net of returns.
	`SELECT ss.ss_customer_sk, SUM(ss.ss_sales_price) AS sumsales
	FROM store_sales ss, store_returns sr
	WHERE ss.ss_item_sk = sr.sr_item_sk AND ss.ss_ticket_number = sr.sr_ticket_number
		AND sr.sr_return_amt > 100
	GROUP BY ss.ss_customer_sk ORDER BY sumsales LIMIT 100`,
	// Q97-style: store/catalog buyer overlap (flattened).
	`SELECT COUNT(*) AS both_channels
	FROM store_sales ss, catalog_sales cs, date_dim d
	WHERE ss.ss_customer_sk = cs.cs_bill_customer_sk AND ss.ss_item_sk = cs.cs_item_sk
		AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_month_seq BETWEEN 1200 AND 1211`,
	// Q28-style: bucketed list-price averages (single bucket flattened).
	`SELECT AVG(ss.ss_list_price) AS b1_lp, COUNT(ss.ss_list_price) AS b1_cnt,
		COUNT(DISTINCT ss.ss_list_price) AS b1_cntd
	FROM store_sales ss
	WHERE ss.ss_quantity BETWEEN 0 AND 5
		AND (ss.ss_list_price BETWEEN 8 AND 18 OR ss.ss_coupon_amt BETWEEN 459 AND 1459)`,
}
