package workload

import (
	"fmt"
	"strings"

	"lambdatune/internal/engine"
)

// JOB returns the Join Order Benchmark workload: 113 queries over the IMDB
// schema. Each of the benchmark's 33 query families contributes its a/b/c/d
// variants, generated from the family's join template with the per-variant
// filter predicates — exactly how the official benchmark derives variants,
// whose SQL differs only in constants and added filters.
func JOB() *Workload {
	cat := engine.NewCatalog("imdb", []engine.Table{
		{
			Name: "title", Rows: 2_528_312,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 2_528_312},
				{Name: "title", WidthBytes: 17, Distinct: 2_400_000},
				{Name: "kind_id", WidthBytes: 4, Distinct: 7},
				{Name: "production_year", WidthBytes: 4, Distinct: 133},
				{Name: "episode_nr", WidthBytes: 4, Distinct: 16_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"kind_id"},
		},
		{
			Name: "cast_info", Rows: 36_244_344,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 36_244_344},
				{Name: "person_id", WidthBytes: 4, Distinct: 4_051_810},
				{Name: "movie_id", WidthBytes: 4, Distinct: 2_331_601},
				{Name: "person_role_id", WidthBytes: 4, Distinct: 3_140_339},
				{Name: "role_id", WidthBytes: 4, Distinct: 12},
				{Name: "note", WidthBytes: 18, Distinct: 400_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"person_id", "movie_id", "person_role_id", "role_id"},
		},
		{
			Name: "movie_info", Rows: 14_835_720,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 14_835_720},
				{Name: "movie_id", WidthBytes: 4, Distinct: 2_468_825},
				{Name: "info_type_id", WidthBytes: 4, Distinct: 71},
				{Name: "info", WidthBytes: 20, Distinct: 2_720_930},
				{Name: "note", WidthBytes: 19, Distinct: 133_416},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "info_type_id"},
		},
		{
			Name: "movie_info_idx", Rows: 1_380_035,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 1_380_035},
				{Name: "movie_id", WidthBytes: 4, Distinct: 459_925},
				{Name: "info_type_id", WidthBytes: 4, Distinct: 5},
				{Name: "info", WidthBytes: 10, Distinct: 128_872},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "info_type_id"},
		},
		{
			Name: "name", Rows: 4_167_491,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 4_167_491},
				{Name: "name", WidthBytes: 15, Distinct: 4_000_000},
				{Name: "gender", WidthBytes: 1, Distinct: 3},
				{Name: "name_pcode_cf", WidthBytes: 5, Distinct: 25_000},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "char_name", Rows: 3_140_339,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 3_140_339},
				{Name: "name", WidthBytes: 14, Distinct: 3_000_000},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "movie_companies", Rows: 2_609_129,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 2_609_129},
				{Name: "movie_id", WidthBytes: 4, Distinct: 1_087_236},
				{Name: "company_id", WidthBytes: 4, Distinct: 234_997},
				{Name: "company_type_id", WidthBytes: 4, Distinct: 2},
				{Name: "note", WidthBytes: 25, Distinct: 500_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "company_id", "company_type_id"},
		},
		{
			Name: "company_name", Rows: 234_997,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 234_997},
				{Name: "name", WidthBytes: 20, Distinct: 230_000},
				{Name: "country_code", WidthBytes: 5, Distinct: 112},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "company_type", Rows: 4,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 4},
				{Name: "kind", WidthBytes: 20, Distinct: 4},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "keyword", Rows: 134_170,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 134_170},
				{Name: "keyword", WidthBytes: 15, Distinct: 134_170},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "movie_keyword", Rows: 4_523_930,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 4_523_930},
				{Name: "movie_id", WidthBytes: 4, Distinct: 476_794},
				{Name: "keyword_id", WidthBytes: 4, Distinct: 134_170},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "keyword_id"},
		},
		{
			Name: "info_type", Rows: 113,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 113},
				{Name: "info", WidthBytes: 15, Distinct: 113},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "kind_type", Rows: 7,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 7},
				{Name: "kind", WidthBytes: 10, Distinct: 7},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "role_type", Rows: 12,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 12},
				{Name: "role", WidthBytes: 10, Distinct: 12},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "link_type", Rows: 18,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 18},
				{Name: "link", WidthBytes: 15, Distinct: 18},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "movie_link", Rows: 29_997,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 29_997},
				{Name: "movie_id", WidthBytes: 4, Distinct: 6_411},
				{Name: "linked_movie_id", WidthBytes: 4, Distinct: 15_245},
				{Name: "link_type_id", WidthBytes: 4, Distinct: 16},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "linked_movie_id", "link_type_id"},
		},
		{
			Name: "aka_name", Rows: 901_343,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 901_343},
				{Name: "person_id", WidthBytes: 4, Distinct: 588_222},
				{Name: "name", WidthBytes: 16, Distinct: 850_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"person_id"},
		},
		{
			Name: "aka_title", Rows: 361_472,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 361_472},
				{Name: "movie_id", WidthBytes: 4, Distinct: 300_000},
				{Name: "title", WidthBytes: 17, Distinct: 340_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id"},
		},
		{
			Name: "person_info", Rows: 2_963_664,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 2_963_664},
				{Name: "person_id", WidthBytes: 4, Distinct: 550_721},
				{Name: "info_type_id", WidthBytes: 4, Distinct: 22},
				{Name: "info", WidthBytes: 30, Distinct: 1_000_000},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"person_id", "info_type_id"},
		},
		{
			Name: "complete_cast", Rows: 135_086,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 135_086},
				{Name: "movie_id", WidthBytes: 4, Distinct: 93_514},
				{Name: "subject_id", WidthBytes: 4, Distinct: 2},
				{Name: "status_id", WidthBytes: 4, Distinct: 2},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []string{"movie_id", "subject_id", "status_id"},
		},
		{
			Name: "comp_cast_type", Rows: 4,
			Columns: []engine.Column{
				{Name: "id", WidthBytes: 4, Distinct: 4},
				{Name: "kind", WidthBytes: 15, Distinct: 4},
			},
			PrimaryKey: []string{"id"},
		},
	})

	return &Workload{Name: "JOB", Catalog: cat, Queries: jobQueries()}
}

// jobFamily is one of the benchmark's 33 query templates. Variants supply the
// per-variant extra predicates (officially labeled a, b, c, d).
type jobFamily struct {
	id int
	// from is the comma-separated FROM clause with aliases.
	from string
	// joins are the join predicates shared by all variants.
	joins []string
	// base are filter predicates shared by all variants.
	base []string
	// variants each add predicates to form one query.
	variants [][]string
}

// jobFamilies encodes the 33 JOB families (join graphs follow the official
// benchmark; filter constants are representative).
var jobFamilies = []jobFamily{
	{1, "company_type ct, info_type it, movie_companies mc, movie_info_idx mi_idx, title t",
		[]string{"ct.id = mc.company_type_id", "t.id = mc.movie_id", "t.id = mi_idx.movie_id", "mc.movie_id = mi_idx.movie_id", "it.id = mi_idx.info_type_id"},
		[]string{"ct.kind = 'production companies'"},
		[][]string{
			{"it.info = 'top 250 rank'", "mc.note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%'"},
			{"it.info = 'bottom 10 rank'", "t.production_year BETWEEN 2005 AND 2010"},
			{"it.info = 'top 250 rank'", "t.production_year > 2010"},
			{"it.info = 'bottom 10 rank'", "mc.note LIKE '%(co-production)%'"},
		}},
	{2, "company_name cn, keyword k, movie_companies mc, movie_keyword mk, title t",
		[]string{"cn.id = mc.company_id", "mc.movie_id = t.id", "t.id = mk.movie_id", "mk.keyword_id = k.id", "mc.movie_id = mk.movie_id"},
		nil,
		[][]string{
			{"cn.country_code = '[de]'", "k.keyword = 'character-name-in-title'"},
			{"cn.country_code = '[nl]'", "k.keyword = 'character-name-in-title'"},
			{"cn.country_code = '[sm]'", "k.keyword = 'character-name-in-title'"},
			{"cn.country_code = '[us]'", "k.keyword = 'character-name-in-title'"},
		}},
	{3, "keyword k, movie_info mi, movie_keyword mk, title t",
		[]string{"t.id = mi.movie_id", "t.id = mk.movie_id", "mk.movie_id = mi.movie_id", "k.id = mk.keyword_id"},
		[]string{"k.keyword LIKE '%sequel%'"},
		[][]string{
			{"mi.info IN ('Sweden', 'Norway', 'Germany', 'Denmark')", "t.production_year > 2005"},
			{"mi.info IN ('Bulgaria')", "t.production_year > 2010"},
			{"mi.info IN ('Sweden', 'Norway', 'Germany')", "t.production_year > 1990"},
		}},
	{4, "info_type it, keyword k, movie_info_idx mi_idx, movie_keyword mk, title t",
		[]string{"t.id = mi_idx.movie_id", "t.id = mk.movie_id", "mk.movie_id = mi_idx.movie_id", "k.id = mk.keyword_id", "it.id = mi_idx.info_type_id"},
		[]string{"it.info = 'rating'", "k.keyword LIKE '%sequel%'"},
		[][]string{
			{"mi_idx.info > '5.0'", "t.production_year > 2005"},
			{"mi_idx.info > '9.0'", "t.production_year > 2010"},
			{"mi_idx.info > '2.0'", "t.production_year > 1990"},
		}},
	{5, "company_type ct, info_type it, movie_companies mc, movie_info mi, title t",
		[]string{"t.id = mc.movie_id", "t.id = mi.movie_id", "mc.movie_id = mi.movie_id", "ct.id = mc.company_type_id", "it.id = mi.info_type_id"},
		nil,
		[][]string{
			{"ct.kind = 'production companies'", "mc.note LIKE '%(theatrical)%'", "mi.info IN ('Sweden', 'Norway', 'Germany')", "t.production_year > 2005"},
			{"ct.kind = 'production companies'", "mc.note LIKE '%(VHS)%'", "mi.info IN ('USA', 'America')", "t.production_year > 2010"},
			{"ct.kind = 'production companies'", "mi.info IN ('Sweden', 'Norway', 'Germany')", "t.production_year > 1990"},
		}},
	{6, "cast_info ci, keyword k, movie_keyword mk, name n, title t",
		[]string{"k.id = mk.keyword_id", "t.id = mk.movie_id", "t.id = ci.movie_id", "ci.movie_id = mk.movie_id", "n.id = ci.person_id"},
		nil,
		[][]string{
			{"k.keyword = 'marvel-cinematic-universe'", "n.name LIKE '%Downey%Robert%'", "t.production_year > 2010"},
			{"k.keyword = 'superhero'", "n.name LIKE '%Downey%Robert%'", "t.production_year > 2014"},
			{"k.keyword = 'marvel-cinematic-universe'", "t.production_year > 2014"},
			{"k.keyword = 'superhero'", "n.name LIKE '%Downey%Robert%'"},
			{"k.keyword IN ('superhero', 'sequel', 'marvel-comics')", "n.name LIKE '%Downey%Robert%'", "t.production_year > 2000"},
			{"k.keyword IN ('superhero', 'sequel')", "t.production_year > 2000"},
		}},
	{7, "aka_name an, cast_info ci, info_type it, link_type lt, movie_link ml, name n, person_info pi, title t",
		[]string{"n.id = an.person_id", "n.id = pi.person_id", "ci.person_id = n.id", "t.id = ci.movie_id", "ml.linked_movie_id = t.id", "lt.id = ml.link_type_id", "it.id = pi.info_type_id"},
		[]string{"it.info = 'mini biography'", "lt.link = 'features'"},
		[][]string{
			{"an.name LIKE '%a%'", "n.name_pcode_cf BETWEEN 'A' AND 'F'", "t.production_year BETWEEN 1980 AND 1995"},
			{"an.name LIKE '%liv%'", "n.gender = 'f'", "t.production_year BETWEEN 1980 AND 1984"},
			{"an.name LIKE '%an%'", "t.production_year BETWEEN 1980 AND 2010"},
		}},
	{8, "aka_name an, cast_info ci, company_name cn, movie_companies mc, name n, role_type rt, title t",
		[]string{"an.person_id = n.id", "n.id = ci.person_id", "ci.movie_id = t.id", "t.id = mc.movie_id", "mc.company_id = cn.id", "ci.role_id = rt.id", "an.person_id = ci.person_id", "ci.movie_id = mc.movie_id"},
		nil,
		[][]string{
			{"ci.note = '(voice: English version)'", "cn.country_code = '[jp]'", "mc.note LIKE '%(Japan)%'", "rt.role = 'actress'"},
			{"ci.note = '(voice)'", "cn.country_code = '[jp]'", "rt.role = 'actress'", "n.name LIKE '%Yo%'"},
			{"cn.country_code = '[us]'", "rt.role = 'writer'"},
			{"cn.country_code = '[us]'", "rt.role = 'costume designer'"},
		}},
	{9, "aka_name an, char_name chn, cast_info ci, company_name cn, movie_companies mc, name n, role_type rt, title t",
		[]string{"ci.movie_id = t.id", "t.id = mc.movie_id", "ci.movie_id = mc.movie_id", "mc.company_id = cn.id", "ci.role_id = rt.id", "n.id = ci.person_id", "chn.id = ci.person_role_id", "an.person_id = n.id", "an.person_id = ci.person_id"},
		[]string{"cn.country_code = '[us]'", "rt.role = 'actress'"},
		[][]string{
			{"ci.note IN ('(voice)', '(voice: Japanese version)')", "mc.note LIKE '%(USA)%'", "t.production_year BETWEEN 2005 AND 2015"},
			{"ci.note = '(voice)'", "mc.note LIKE '%(200%)%'", "t.production_year > 2000"},
			{"ci.note IN ('(voice)', '(voice: English version)')", "n.gender = 'f'"},
			{"n.gender = 'f'", "n.name LIKE '%An%'"},
		}},
	{10, "char_name chn, cast_info ci, company_name cn, company_type ct, movie_companies mc, role_type rt, title t",
		[]string{"t.id = mc.movie_id", "t.id = ci.movie_id", "ci.movie_id = mc.movie_id", "chn.id = ci.person_role_id", "rt.id = ci.role_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id"},
		nil,
		[][]string{
			{"ci.note LIKE '%(voice)%'", "ci.note LIKE '%(uncredited)%'", "cn.country_code = '[ru]'", "rt.role = 'actor'", "t.production_year > 2005"},
			{"ci.note LIKE '%(producer)%'", "cn.country_code = '[ru]'", "rt.role = 'actor'", "t.production_year > 2010"},
			{"ci.note LIKE '%(producer)%'", "cn.country_code = '[us]'", "t.production_year > 1990"},
		}},
	{11, "company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_keyword mk, movie_link ml, title t",
		[]string{"t.id = ml.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "mk.movie_id = ml.movie_id", "ml.movie_id = mc.movie_id", "mk.movie_id = mc.movie_id", "k.id = mk.keyword_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "lt.id = ml.link_type_id"},
		[]string{"cn.country_code <> '[pl]'", "k.keyword = 'sequel'"},
		[][]string{
			{"cn.name LIKE '%Film%'", "ct.kind = 'production companies'", "lt.link LIKE '%follow%'", "t.production_year BETWEEN 1950 AND 2000"},
			{"cn.name LIKE '%Warner%'", "ct.kind = 'production companies'", "lt.link LIKE '%follows%'", "t.production_year = 1998"},
			{"ct.kind = 'production companies'", "lt.link LIKE '%follow%'", "t.production_year BETWEEN 2000 AND 2010"},
			{"ct.kind = 'production companies'", "lt.link LIKE '%follow%'"},
		}},
	{12, "company_name cn, company_type ct, info_type it1, info_type it2, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t",
		[]string{"t.id = mi.movie_id", "t.id = mi_idx.movie_id", "mi.info_type_id = it1.id", "mi_idx.info_type_id = it2.id", "t.id = mc.movie_id", "ct.id = mc.company_type_id", "cn.id = mc.company_id", "mc.movie_id = mi.movie_id", "mc.movie_id = mi_idx.movie_id", "mi.movie_id = mi_idx.movie_id"},
		[]string{"cn.country_code = '[us]'", "ct.kind = 'production companies'", "it1.info = 'genres'", "it2.info = 'rating'"},
		[][]string{
			{"mi.info IN ('Drama', 'Horror')", "mi_idx.info > '8.0'", "t.production_year BETWEEN 2005 AND 2008"},
			{"mi.info IN ('Drama', 'Horror', 'Western')", "mi_idx.info > '7.0'", "t.production_year BETWEEN 2000 AND 2010"},
			{"mi.info IN ('Drama')", "mi_idx.info > '6.0'"},
		}},
	{13, "company_name cn, company_type ct, info_type it, info_type it2, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, title t",
		[]string{"mi.movie_id = t.id", "it2.id = mi.info_type_id", "kt.id = t.kind_id", "mc.movie_id = t.id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "mi_idx.movie_id = t.id", "it.id = mi_idx.info_type_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mc.movie_id", "mi_idx.movie_id = mc.movie_id"},
		[]string{"cn.country_code = '[de]'", "ct.kind = 'production companies'", "it.info = 'rating'", "it2.info = 'release dates'", "kt.kind = 'movie'"},
		[][]string{
			{},
			{"t.title LIKE '%Champion%'"},
			{"t.title LIKE 'Champion%'"},
			{"t.production_year > 2000"},
		}},
	{14, "info_type it1, info_type it2, keyword k, kind_type kt, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t",
		[]string{"t.id = mi.movie_id", "t.id = mk.movie_id", "t.id = mi_idx.movie_id", "mk.movie_id = mi.movie_id", "mk.movie_id = mi_idx.movie_id", "mi.movie_id = mi_idx.movie_id", "k.id = mk.keyword_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "kt.id = t.kind_id"},
		[]string{"it1.info = 'countries'", "it2.info = 'rating'", "kt.kind = 'movie'"},
		[][]string{
			{"k.keyword IN ('murder', 'blood', 'gore')", "mi.info IN ('Sweden', 'Germany')", "mi_idx.info < '8.5'", "t.production_year > 2010"},
			{"k.keyword IN ('murder', 'blood')", "mi.info IN ('Sweden', 'Germany', 'USA')", "mi_idx.info > '6.0'", "t.production_year > 2005"},
			{"k.keyword IN ('murder')", "mi_idx.info < '8.5'", "t.production_year > 2000"},
		}},
	{15, "aka_title at, company_name cn, company_type ct, info_type it1, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, title t",
		[]string{"t.id = at.movie_id", "t.id = mi.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "mc.movie_id = mi.movie_id", "mc.movie_id = mk.movie_id", "mi.movie_id = mk.movie_id", "k.id = mk.keyword_id", "it1.id = mi.info_type_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id"},
		[]string{"cn.country_code = '[us]'", "it1.info = 'release dates'"},
		[][]string{
			{"mi.note LIKE '%internet%'", "t.production_year > 1990"},
			{"mi.note LIKE '%internet%'", "mi.info LIKE 'USA:% 199%'", "t.production_year > 1990"},
			{"mi.info LIKE 'USA:% 200%'", "t.production_year > 2000"},
			{"mi.note LIKE '%internet%'", "mi.info LIKE 'USA:% 200%'"},
		}},
	{16, "aka_name an, cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t",
		[]string{"an.person_id = n.id", "n.id = ci.person_id", "ci.movie_id = t.id", "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.id = mc.movie_id", "mc.company_id = cn.id", "ci.movie_id = mc.movie_id", "ci.movie_id = mk.movie_id", "mc.movie_id = mk.movie_id"},
		[]string{"k.keyword = 'character-name-in-title'"},
		[][]string{
			{"cn.country_code = '[us]'", "t.episode_nr >= 50", "t.episode_nr < 100"},
			{"cn.country_code = '[us]'", "t.episode_nr < 100"},
			{"cn.country_code = '[us]'", "t.episode_nr >= 5", "t.episode_nr < 100"},
			{"cn.country_code = '[us]'"},
		}},
	{17, "cast_info ci, company_name cn, keyword k, movie_companies mc, movie_keyword mk, name n, title t",
		[]string{"n.id = ci.person_id", "ci.movie_id = t.id", "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.id = mc.movie_id", "mc.company_id = cn.id", "ci.movie_id = mc.movie_id", "ci.movie_id = mk.movie_id", "mc.movie_id = mk.movie_id"},
		[]string{"k.keyword = 'character-name-in-title'"},
		[][]string{
			{"cn.country_code = '[us]'", "n.name LIKE 'B%'"},
			{"cn.country_code = '[us]'", "n.name LIKE 'Z%'"},
			{"cn.country_code = '[us]'", "n.name LIKE 'X%'"},
			{"n.name LIKE '%Bert%'"},
			{"n.name LIKE 'B%'"},
			{"n.name LIKE 'Z%'"},
		}},
	{18, "cast_info ci, info_type it1, info_type it2, movie_info mi, movie_info_idx mi_idx, name n, title t",
		[]string{"t.id = mi.movie_id", "t.id = mi_idx.movie_id", "t.id = ci.movie_id", "ci.movie_id = mi.movie_id", "ci.movie_id = mi_idx.movie_id", "mi.movie_id = mi_idx.movie_id", "n.id = ci.person_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id"},
		nil,
		[][]string{
			{"ci.note IN ('(producer)', '(executive producer)')", "it1.info = 'budget'", "it2.info = 'votes'", "n.gender = 'm'", "n.name LIKE '%Tim%'"},
			{"ci.note IN ('(writer)', '(head writer)')", "it1.info = 'genres'", "it2.info = 'rating'", "n.gender = 'f'"},
			{"ci.note IN ('(writer)')", "it1.info = 'genres'", "it2.info = 'votes'"},
		}},
	{19, "aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, movie_companies mc, movie_info mi, name n, role_type rt, title t",
		[]string{"t.id = mi.movie_id", "t.id = mc.movie_id", "t.id = ci.movie_id", "mc.movie_id = ci.movie_id", "mc.movie_id = mi.movie_id", "mi.movie_id = ci.movie_id", "cn.id = mc.company_id", "it.id = mi.info_type_id", "n.id = ci.person_id", "rt.id = ci.role_id", "n.id = an.person_id", "ci.person_id = an.person_id", "chn.id = ci.person_role_id"},
		[]string{"cn.country_code = '[us]'", "it.info = 'release dates'", "rt.role = 'actress'"},
		[][]string{
			{"ci.note = '(voice)'", "mc.note LIKE '%(200%)%'", "mi.info LIKE 'Japan:%200%'", "n.gender = 'f'", "n.name LIKE '%An%'", "t.production_year BETWEEN 2005 AND 2009"},
			{"ci.note = '(voice)'", "n.gender = 'f'", "t.production_year BETWEEN 2007 AND 2008", "t.title LIKE '%Kung%Fu%Panda%'"},
			{"ci.note = '(voice)'", "n.gender = 'f'", "t.production_year > 2000"},
			{"n.gender = 'f'", "t.production_year > 2000"},
		}},
	{20, "complete_cast cc, comp_cast_type cct1, char_name chn, cast_info ci, keyword k, kind_type kt, movie_keyword mk, name n, title t",
		[]string{"cc.subject_id = cct1.id", "cc.movie_id = t.id", "kt.id = t.kind_id", "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.id = ci.movie_id", "ci.movie_id = mk.movie_id", "ci.movie_id = cc.movie_id", "mk.movie_id = cc.movie_id", "chn.id = ci.person_role_id", "n.id = ci.person_id"},
		[]string{"kt.kind = 'movie'"},
		[][]string{
			{"cct1.kind = 'cast'", "k.keyword IN ('superhero', 'marvel-comics')", "t.production_year > 1950"},
			{"cct1.kind = 'complete+verified'", "k.keyword IN ('superhero')", "t.production_year > 2000"},
			{"cct1.kind = 'cast'", "k.keyword IN ('superhero', 'marvel-comics', 'fight')", "t.production_year > 2000"},
		}},
	{21, "company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, movie_keyword mk, movie_link ml, title t",
		[]string{"t.id = ml.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "t.id = mi.movie_id", "mk.movie_id = ml.movie_id", "mk.movie_id = mc.movie_id", "mk.movie_id = mi.movie_id", "ml.movie_id = mc.movie_id", "ml.movie_id = mi.movie_id", "mc.movie_id = mi.movie_id", "k.id = mk.keyword_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "lt.id = ml.link_type_id"},
		[]string{"cn.country_code <> '[pl]'", "k.keyword = 'sequel'", "ct.kind = 'production companies'"},
		[][]string{
			{"cn.name LIKE '%Film%'", "lt.link LIKE '%follow%'", "mi.info IN ('Sweden', 'Germany')", "t.production_year BETWEEN 1950 AND 2000"},
			{"cn.name LIKE '%Warner%'", "lt.link LIKE '%follow%'", "mi.info IN ('Germany')", "t.production_year BETWEEN 2000 AND 2010"},
			{"lt.link LIKE '%follow%'", "mi.info IN ('Sweden', 'Germany', 'USA')"},
		}},
	{22, "company_name cn, company_type ct, info_type it1, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t",
		[]string{"t.id = mi.movie_id", "t.id = mk.movie_id", "t.id = mi_idx.movie_id", "t.id = mc.movie_id", "mk.movie_id = mi.movie_id", "mk.movie_id = mi_idx.movie_id", "mk.movie_id = mc.movie_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mc.movie_id", "mc.movie_id = mi_idx.movie_id", "k.id = mk.keyword_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "kt.id = t.kind_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id"},
		[]string{"it1.info = 'countries'", "it2.info = 'rating'", "k.keyword IN ('murder', 'blood', 'gore')", "kt.kind IN ('movie', 'episode')"},
		[][]string{
			{"cn.country_code <> '[us]'", "mc.note NOT LIKE '%(USA)%'", "mi.info IN ('Germany', 'Swedish')", "mi_idx.info < '7.0'", "t.production_year > 2008"},
			{"cn.country_code <> '[us]'", "mi.info IN ('Germany', 'Swedish', 'German')", "mi_idx.info > '6.5'", "t.production_year > 2005"},
			{"cn.country_code <> '[us]'", "mi_idx.info < '8.5'", "t.production_year > 2005"},
			{"mi_idx.info < '8.5'", "t.production_year > 2005"},
		}},
	{23, "complete_cast cc, comp_cast_type cct1, company_name cn, company_type ct, info_type it1, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_keyword mk, title t",
		[]string{"cc.subject_id = cct1.id", "cc.movie_id = t.id", "kt.id = t.kind_id", "t.id = mi.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "mk.movie_id = mi.movie_id", "mk.movie_id = mc.movie_id", "mi.movie_id = mc.movie_id", "k.id = mk.keyword_id", "it1.id = mi.info_type_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "cc.movie_id = mi.movie_id"},
		[]string{"cct1.kind = 'complete+verified'", "cn.country_code = '[us]'", "it1.info = 'release dates'", "kt.kind IN ('movie')"},
		[][]string{
			{"mi.note LIKE '%internet%'", "mi.info LIKE 'USA:% 199%'", "t.production_year > 1990"},
			{"mi.note LIKE '%internet%'", "mi.info LIKE 'USA:% 200%'", "t.production_year > 2000"},
			{"mi.note LIKE '%internet%'", "t.production_year > 1990"},
		}},
	{24, "aka_name an, char_name chn, cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, role_type rt, title t",
		[]string{"t.id = mi.movie_id", "t.id = mc.movie_id", "t.id = ci.movie_id", "t.id = mk.movie_id", "mc.movie_id = ci.movie_id", "mc.movie_id = mi.movie_id", "mc.movie_id = mk.movie_id", "mi.movie_id = ci.movie_id", "mi.movie_id = mk.movie_id", "ci.movie_id = mk.movie_id", "cn.id = mc.company_id", "it.id = mi.info_type_id", "n.id = ci.person_id", "rt.id = ci.role_id", "n.id = an.person_id", "ci.person_id = an.person_id", "chn.id = ci.person_role_id", "k.id = mk.keyword_id"},
		[]string{"cn.country_code = '[us]'", "it.info = 'release dates'", "rt.role = 'actress'", "n.gender = 'f'"},
		[][]string{
			{"ci.note = '(voice)'", "k.keyword IN ('hero', 'martial-arts')", "mi.info LIKE 'Japan:%201%'", "t.production_year > 2010"},
			{"ci.note = '(voice)'", "k.keyword IN ('hero')", "t.production_year > 2000"},
		}},
	{25, "cast_info ci, info_type it1, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t",
		[]string{"t.id = mi.movie_id", "t.id = mi_idx.movie_id", "t.id = ci.movie_id", "t.id = mk.movie_id", "ci.movie_id = mi.movie_id", "ci.movie_id = mi_idx.movie_id", "ci.movie_id = mk.movie_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mk.movie_id", "mi_idx.movie_id = mk.movie_id", "n.id = ci.person_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "k.id = mk.keyword_id"},
		[]string{"it1.info = 'genres'", "it2.info = 'votes'", "n.gender = 'm'"},
		[][]string{
			{"ci.note IN ('(writer)', '(head writer)')", "k.keyword IN ('murder', 'blood', 'gore')", "mi.info = 'Horror'"},
			{"ci.note IN ('(writer)')", "k.keyword IN ('murder', 'female-nudity')", "mi.info = 'Horror'"},
			{"ci.note IN ('(writer)')", "k.keyword IN ('murder', 'violence', 'blood')", "mi.info IN ('Horror', 'Thriller')"},
		}},
	{26, "complete_cast cc, comp_cast_type cct1, char_name chn, cast_info ci, info_type it2, keyword k, kind_type kt, movie_info_idx mi_idx, movie_keyword mk, name n, title t",
		[]string{"cc.subject_id = cct1.id", "cc.movie_id = t.id", "kt.id = t.kind_id", "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.id = ci.movie_id", "ci.movie_id = mk.movie_id", "ci.movie_id = cc.movie_id", "mk.movie_id = cc.movie_id", "chn.id = ci.person_role_id", "n.id = ci.person_id", "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id", "mi_idx.movie_id = cc.movie_id"},
		[]string{"cct1.kind = 'cast'", "it2.info = 'rating'", "kt.kind = 'movie'"},
		[][]string{
			{"chn.name IN ('Superman', 'Batman')", "k.keyword = 'superhero'", "mi_idx.info > '7.0'", "t.production_year > 2000"},
			{"k.keyword = 'superhero'", "mi_idx.info > '8.0'", "t.production_year > 2005"},
			{"k.keyword IN ('superhero', 'fight')", "mi_idx.info > '6.5'", "t.production_year > 2000"},
		}},
	{27, "complete_cast cc, comp_cast_type cct1, company_name cn, company_type ct, keyword k, link_type lt, movie_companies mc, movie_info mi, movie_keyword mk, movie_link ml, title t",
		[]string{"t.id = ml.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "t.id = mi.movie_id", "t.id = cc.movie_id", "mk.movie_id = ml.movie_id", "mk.movie_id = mc.movie_id", "mk.movie_id = mi.movie_id", "mk.movie_id = cc.movie_id", "ml.movie_id = mc.movie_id", "ml.movie_id = mi.movie_id", "ml.movie_id = cc.movie_id", "mc.movie_id = mi.movie_id", "mc.movie_id = cc.movie_id", "mi.movie_id = cc.movie_id", "k.id = mk.keyword_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "lt.id = ml.link_type_id", "cct1.id = cc.subject_id"},
		[]string{"cct1.kind = 'cast'", "cn.country_code <> '[pl]'", "ct.kind = 'production companies'", "k.keyword = 'sequel'", "lt.link LIKE '%follow%'"},
		[][]string{
			{"cn.name LIKE '%Film%'", "mi.info IN ('Sweden', 'Germany')", "t.production_year BETWEEN 1950 AND 2000"},
			{"mi.info IN ('Sweden', 'Germany')", "t.production_year = 1998"},
			{"mi.info IN ('Sweden', 'Norway', 'Germany')", "t.production_year BETWEEN 1950 AND 2010"},
		}},
	{28, "complete_cast cc, comp_cast_type cct1, company_name cn, company_type ct, info_type it1, info_type it2, keyword k, kind_type kt, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, title t",
		[]string{"cc.subject_id = cct1.id", "cc.movie_id = t.id", "kt.id = t.kind_id", "t.id = mi.movie_id", "t.id = mk.movie_id", "t.id = mi_idx.movie_id", "t.id = mc.movie_id", "mk.movie_id = mi.movie_id", "mk.movie_id = mi_idx.movie_id", "mk.movie_id = mc.movie_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mc.movie_id", "mc.movie_id = mi_idx.movie_id", "k.id = mk.keyword_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "cn.id = mc.company_id", "ct.id = mc.company_type_id", "cc.movie_id = mc.movie_id"},
		[]string{"it1.info = 'countries'", "it2.info = 'rating'", "k.keyword IN ('murder', 'blood', 'gore')", "kt.kind IN ('movie', 'episode')"},
		[][]string{
			{"cct1.kind = 'crew'", "cn.country_code <> '[us]'", "mi.info IN ('Germany', 'Swedish')", "mi_idx.info < '8.5'", "t.production_year > 2000"},
			{"cct1.kind = 'complete+verified'", "cn.country_code <> '[us]'", "mi_idx.info < '8.5'", "t.production_year > 2005"},
			{"cct1.kind = 'cast'", "mi_idx.info < '8.5'", "t.production_year > 2005"},
		}},
	{29, "aka_name an, complete_cast cc, comp_cast_type cct1, char_name chn, cast_info ci, company_name cn, info_type it, keyword k, movie_companies mc, movie_info mi, movie_keyword mk, name n, person_info pi, role_type rt, title t",
		[]string{"t.id = mi.movie_id", "t.id = mc.movie_id", "t.id = ci.movie_id", "t.id = mk.movie_id", "t.id = cc.movie_id", "mc.movie_id = ci.movie_id", "mc.movie_id = mi.movie_id", "mc.movie_id = mk.movie_id", "mc.movie_id = cc.movie_id", "mi.movie_id = ci.movie_id", "mi.movie_id = mk.movie_id", "mi.movie_id = cc.movie_id", "ci.movie_id = mk.movie_id", "ci.movie_id = cc.movie_id", "mk.movie_id = cc.movie_id", "cn.id = mc.company_id", "it.id = mi.info_type_id", "n.id = ci.person_id", "rt.id = ci.role_id", "n.id = an.person_id", "ci.person_id = an.person_id", "chn.id = ci.person_role_id", "n.id = pi.person_id", "ci.person_id = pi.person_id", "k.id = mk.keyword_id", "cct1.id = cc.subject_id"},
		[]string{"cn.country_code = '[us]'", "it.info = 'release dates'", "rt.role = 'actress'", "n.gender = 'f'", "cct1.kind = 'cast'", "k.keyword = 'computer-animation'"},
		[][]string{
			{"ci.note = '(voice)'", "mi.info LIKE 'Japan:%200%'", "t.production_year BETWEEN 2000 AND 2010"},
			{"ci.note = '(voice)'", "t.production_year BETWEEN 2000 AND 2010", "t.title = 'Shrek 2'"},
			{"ci.note = '(voice)'", "t.production_year BETWEEN 1990 AND 2010"},
		}},
	{30, "complete_cast cc, comp_cast_type cct1, cast_info ci, info_type it1, info_type it2, keyword k, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t",
		[]string{"t.id = mi.movie_id", "t.id = mi_idx.movie_id", "t.id = ci.movie_id", "t.id = mk.movie_id", "t.id = cc.movie_id", "ci.movie_id = mi.movie_id", "ci.movie_id = mi_idx.movie_id", "ci.movie_id = mk.movie_id", "ci.movie_id = cc.movie_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mk.movie_id", "mi.movie_id = cc.movie_id", "mi_idx.movie_id = mk.movie_id", "mi_idx.movie_id = cc.movie_id", "mk.movie_id = cc.movie_id", "n.id = ci.person_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "k.id = mk.keyword_id", "cct1.id = cc.subject_id"},
		[]string{"cct1.kind = 'cast'", "it1.info = 'genres'", "it2.info = 'votes'", "k.keyword IN ('murder', 'violence', 'blood')", "n.gender = 'm'"},
		[][]string{
			{"ci.note IN ('(writer)', '(head writer)')", "mi.info = 'Horror'", "t.production_year > 2000"},
			{"ci.note IN ('(writer)')", "mi.info IN ('Horror', 'Thriller')", "t.production_year > 2005"},
			{"ci.note IN ('(writer)')", "mi.info = 'Horror'"},
		}},
	{31, "cast_info ci, company_name cn, info_type it1, info_type it2, keyword k, movie_companies mc, movie_info mi, movie_info_idx mi_idx, movie_keyword mk, name n, title t",
		[]string{"t.id = mi.movie_id", "t.id = mi_idx.movie_id", "t.id = ci.movie_id", "t.id = mk.movie_id", "t.id = mc.movie_id", "ci.movie_id = mi.movie_id", "ci.movie_id = mi_idx.movie_id", "ci.movie_id = mk.movie_id", "ci.movie_id = mc.movie_id", "mi.movie_id = mi_idx.movie_id", "mi.movie_id = mk.movie_id", "mi.movie_id = mc.movie_id", "mi_idx.movie_id = mk.movie_id", "mi_idx.movie_id = mc.movie_id", "mk.movie_id = mc.movie_id", "n.id = ci.person_id", "it1.id = mi.info_type_id", "it2.id = mi_idx.info_type_id", "k.id = mk.keyword_id", "cn.id = mc.company_id"},
		[]string{"it1.info = 'genres'", "it2.info = 'votes'", "k.keyword IN ('murder', 'violence', 'blood')", "n.gender = 'm'"},
		[][]string{
			{"ci.note IN ('(writer)', '(head writer)')", "cn.name LIKE 'Lionsgate%'", "mi.info = 'Horror'"},
			{"ci.note IN ('(writer)')", "cn.name LIKE 'Lionsgate%'", "mi.info IN ('Horror', 'Thriller')"},
			{"ci.note IN ('(writer)')", "cn.name LIKE 'Universal%'", "mi.info = 'Horror'"},
		}},
	{32, "keyword k, link_type lt, movie_keyword mk, movie_link ml, title t1, title t2",
		[]string{"mk.keyword_id = k.id", "t1.id = mk.movie_id", "ml.movie_id = t1.id", "ml.linked_movie_id = t2.id", "lt.id = ml.link_type_id"},
		nil,
		[][]string{
			{"k.keyword = '10,000-mile-club'"},
			{"k.keyword = 'character-name-in-title'"},
		}},
	{33, "company_name cn1, company_name cn2, info_type it1, info_type it2, kind_type kt1, kind_type kt2, link_type lt, movie_companies mc1, movie_companies mc2, movie_info_idx mi_idx1, movie_info_idx mi_idx2, movie_link ml, title t1, title t2",
		[]string{"lt.id = ml.link_type_id", "t1.id = ml.movie_id", "t2.id = ml.linked_movie_id", "it1.id = mi_idx1.info_type_id", "t1.id = mi_idx1.movie_id", "kt1.id = t1.kind_id", "cn1.id = mc1.company_id", "t1.id = mc1.movie_id", "ml.movie_id = mi_idx1.movie_id", "ml.movie_id = mc1.movie_id", "mi_idx1.movie_id = mc1.movie_id", "it2.id = mi_idx2.info_type_id", "t2.id = mi_idx2.movie_id", "kt2.id = t2.kind_id", "cn2.id = mc2.company_id", "t2.id = mc2.movie_id", "ml.linked_movie_id = mi_idx2.movie_id", "ml.linked_movie_id = mc2.movie_id", "mi_idx2.movie_id = mc2.movie_id"},
		[]string{"it1.info = 'rating'", "it2.info = 'rating'", "kt1.kind = 'tv series'", "kt2.kind = 'tv series'"},
		[][]string{
			{"cn1.country_code = '[us]'", "lt.link IN ('sequel', 'follows', 'followed by')", "mi_idx2.info < '3.0'", "t2.production_year BETWEEN 2005 AND 2008"},
			{"cn1.country_code = '[nl]'", "lt.link LIKE '%follow%'", "mi_idx2.info < '3.0'", "t2.production_year = 2007"},
			{"cn1.country_code <> '[us]'", "lt.link IN ('sequel', 'follows', 'followed by')", "mi_idx2.info < '3.5'", "t2.production_year BETWEEN 2000 AND 2010"},
		}},
}

// jobQueries renders all families and variants into prepared queries,
// yielding the benchmark's 113 queries.
func jobQueries() []*engine.Query {
	var out []*engine.Query
	for _, fam := range jobFamilies {
		for vi, extra := range fam.variants {
			preds := append(append([]string{}, fam.joins...), fam.base...)
			preds = append(preds, extra...)
			sql := fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s",
				fam.from, strings.Join(preds, " AND "))
			name := fmt.Sprintf("%d%c", fam.id, 'a'+vi)
			out = append(out, engine.MustPrepareQuery(name, sql))
		}
	}
	return out
}
