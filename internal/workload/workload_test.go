package workload

import (
	"math"
	"testing"

	"lambdatune/internal/engine"
)

func TestTPCHShape(t *testing.T) {
	w := TPCH(1)
	if len(w.Queries) != 22 {
		t.Fatalf("queries: %d, want 22", len(w.Queries))
	}
	if err := w.Catalog.Validate(); err != nil {
		t.Fatal(err)
	}
	li := w.Catalog.Table("lineitem")
	if li == nil || li.Rows != 6_001_215 {
		t.Fatalf("lineitem stats: %+v", li)
	}
	w10 := TPCH(10)
	li10 := w10.Catalog.Table("lineitem")
	if li10.Rows != 10*li.Rows {
		t.Errorf("SF10 scaling: %d", li10.Rows)
	}
}

func TestTPCHJoinStructure(t *testing.T) {
	w := TPCH(1)
	// Q3 joins customer-orders-lineitem.
	q3 := w.Queries[2]
	if len(q3.Analysis.Joins) != 2 {
		t.Errorf("Q3 joins: %v", q3.Analysis.Joins)
	}
	// Q5 joins six tables.
	q5 := w.Queries[4]
	if len(q5.Analysis.Tables) != 6 {
		t.Errorf("Q5 tables: %v", q5.Analysis.Tables)
	}
}

func TestTPCDSShape(t *testing.T) {
	w := TPCDS(1)
	if len(w.Queries) != 60 {
		t.Fatalf("queries: %d, want 60", len(w.Queries))
	}
	if err := w.Catalog.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Catalog.Table("store_sales").Rows != 2_880_404 {
		t.Error("store_sales rows")
	}
}

func TestJOBShape(t *testing.T) {
	w := JOB()
	if len(w.Queries) != 113 {
		t.Fatalf("queries: %d, want 113", len(w.Queries))
	}
	if err := w.Catalog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every JOB query must reference at least 4 tables and have joins.
	for _, q := range w.Queries {
		if len(q.Analysis.Tables) < 4 {
			t.Errorf("%s: only %d tables", q.Name, len(q.Analysis.Tables))
		}
		if len(q.Analysis.Joins) < 3 {
			t.Errorf("%s: only %d joins", q.Name, len(q.Analysis.Joins))
		}
	}
}

func TestAllQueriesReferenceKnownTables(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.Queries {
			for _, tbl := range q.Analysis.Tables {
				if w.Catalog.Table(tbl) == nil {
					t.Errorf("%s %s: unknown table %q", name, q.Name, tbl)
				}
			}
			for _, j := range q.Analysis.Joins {
				for _, ref := range []struct{ tbl, col string }{
					{j.LeftTable, j.LeftColumn}, {j.RightTable, j.RightColumn},
				} {
					tab := w.Catalog.Table(ref.tbl)
					if tab == nil {
						t.Errorf("%s %s: join references unknown table %q", name, q.Name, ref.tbl)
						continue
					}
					if tab.Column(ref.col) == nil {
						t.Errorf("%s %s: join references unknown column %s.%s", name, q.Name, ref.tbl, ref.col)
					}
				}
			}
		}
	}
}

func TestAllQueriesExecutable(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		db := engine.NewDB(engine.Postgres, w.Catalog, engine.DefaultHardware)
		for _, q := range w.Queries {
			secs := db.QuerySeconds(q)
			if secs <= 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
				t.Errorf("%s %s: bad runtime %v", name, q.Name, secs)
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestInitialIndexes(t *testing.T) {
	w := TPCH(1)
	defs := w.InitialIndexes()
	if len(defs) == 0 {
		t.Fatal("no initial indexes")
	}
	want := map[string]bool{}
	for _, d := range defs {
		want[d.Key()] = true
	}
	for _, key := range []string{"lineitem(l_orderkey)", "orders(o_custkey)", "part(p_partkey)"} {
		if !want[key] {
			t.Errorf("missing initial index %s (have %v)", key, defs)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, d := range defs {
		if seen[d.Key()] {
			t.Errorf("duplicate index %s", d.Key())
		}
		seen[d.Key()] = true
	}
}

func TestObfuscatePreservesStructure(t *testing.T) {
	w := TPCH(1)
	o := w.Obfuscate()
	if len(o.Queries) != len(w.Queries) {
		t.Fatal("query count changed")
	}
	if err := o.Catalog.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		oq := o.Queries[i]
		if len(oq.Analysis.Joins) != len(q.Analysis.Joins) {
			t.Errorf("%s: join count changed", q.Name)
		}
		if len(oq.Analysis.Tables) != len(q.Analysis.Tables) {
			t.Errorf("%s: table count changed", q.Name)
		}
		for _, tbl := range oq.Analysis.Tables {
			if tbl[0] != 't' {
				t.Errorf("%s: table %q not obfuscated", q.Name, tbl)
			}
			if o.Catalog.Table(tbl) == nil {
				t.Errorf("%s: obfuscated table %q missing from catalog", q.Name, tbl)
			}
		}
	}
}

func TestObfuscatedRuntimesMatch(t *testing.T) {
	// Obfuscation renames but preserves statistics, so runtimes are equal.
	w := TPCH(1)
	o := w.Obfuscate()
	db1 := engine.NewDB(engine.Postgres, w.Catalog, engine.DefaultHardware)
	db2 := engine.NewDB(engine.Postgres, o.Catalog, engine.DefaultHardware)
	for i := range w.Queries {
		t1 := db1.QuerySeconds(w.Queries[i])
		t2 := db2.QuerySeconds(o.Queries[i])
		if math.Abs(t1-t2) > 1e-9*math.Max(t1, 1) {
			t.Errorf("%s: runtime changed under obfuscation: %v vs %v", w.Queries[i].Name, t1, t2)
		}
	}
}
