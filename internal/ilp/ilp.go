// Package ilp solves 0-1 integer linear programs by branch and bound with
// LP-relaxation bounds (using internal/lp's simplex). λ-Tune's workload
// compressor (paper §3.3) uses it to pick the value-maximal set of join
// snippets under a prompt token budget.
package ilp

import (
	"errors"
	"math"
	"sort"

	"lambdatune/internal/lp"
)

// Problem is a binary integer program: maximize Obj·x subject to A·x ≤ B with
// x ∈ {0,1}ⁿ.
type Problem struct {
	Obj []float64
	A   [][]float64
	B   []float64
}

// Solution is the optimal binary assignment.
type Solution struct {
	// Feasible reports whether any binary assignment satisfies the
	// constraints.
	Feasible bool
	X        []bool
	// Objective is Obj·X (0 when infeasible).
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Proven reports whether the search ran to completion; when false the
	// node budget was exhausted and X is the best incumbent found (an
	// anytime result, never worse than the greedy warm start).
	Proven bool
}

// ErrTooLarge guards against accidentally huge instances.
var ErrTooLarge = errors.New("ilp: more than 4096 variables")

const intEps = 1e-6

// DefaultNodeBudget bounds branch-and-bound size for Solve; use
// SolveBudget for a custom cap.
const DefaultNodeBudget = 1500

// Solve runs branch and bound with the default node budget. A greedy warm
// start supplies the incumbent; each node solves the LP relaxation (with
// fixed variables folded into the constraints) and branches on the most
// fractional variable. When the node budget is exhausted, the best
// incumbent is returned with Proven == false.
func Solve(p Problem) (Solution, error) { return SolveBudget(p, DefaultNodeBudget) }

// SolveBudget is Solve with an explicit node budget (0 = unlimited).
func SolveBudget(p Problem, nodeBudget int) (Solution, error) {
	n := len(p.Obj)
	if n > 4096 {
		return Solution{}, ErrTooLarge
	}
	if len(p.B) != len(p.A) {
		return Solution{}, errors.New("ilp: len(B) != len(A)")
	}
	for _, row := range p.A {
		if len(row) != n {
			return Solution{}, errors.New("ilp: row width != len(Obj)")
		}
	}
	if n == 0 {
		feasible := true
		for _, b := range p.B {
			if b < -intEps {
				feasible = false
			}
		}
		return Solution{Feasible: feasible}, nil
	}

	s := &solver{p: p, n: n, budget: nodeBudget}
	if x, obj, ok := s.greedy(); ok {
		s.bestX = x
		s.bestObj = obj
		s.hasBest = true
	}
	fixed := make([]int8, n) // 0 free, 1 fixed at 0, 2 fixed at 1
	s.branch(fixed)
	proven := s.budget == 0 || s.nodes < s.budget
	if !s.hasBest {
		return Solution{Feasible: false, Nodes: s.nodes, Proven: proven}, nil
	}
	return Solution{Feasible: true, X: s.bestX, Objective: s.bestObj, Nodes: s.nodes, Proven: proven}, nil
}

type solver struct {
	p       Problem
	n       int
	bestX   []bool
	bestObj float64
	hasBest bool
	nodes   int
	budget  int
}

const (
	free   int8 = 0
	fixed0 int8 = 1
	fixed1 int8 = 2
)

// greedy builds a feasible incumbent by adding variables in decreasing
// objective-per-unit-weight order, skipping any that break feasibility.
func (s *solver) greedy() ([]bool, float64, bool) {
	type cand struct {
		idx   int
		score float64
	}
	cands := make([]cand, 0, s.n)
	for j := 0; j < s.n; j++ {
		if s.p.Obj[j] <= 0 {
			continue
		}
		w := 0.0
		for i := range s.p.A {
			if s.p.A[i][j] > 0 {
				w += s.p.A[i][j]
			}
		}
		score := s.p.Obj[j]
		if w > 0 {
			score = s.p.Obj[j] / w
		}
		cands = append(cands, cand{j, score})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	x := make([]bool, s.n)
	slack := append([]float64(nil), s.p.B...)
	obj := 0.0
	feasible := true
	for i, b := range slack {
		_ = i
		if b < -intEps {
			feasible = false
		}
	}
	if !feasible {
		return nil, 0, false
	}
	for _, c := range cands {
		ok := true
		for i := range s.p.A {
			if slack[i]-s.p.A[i][c.idx] < -intEps {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		x[c.idx] = true
		obj += s.p.Obj[c.idx]
		for i := range s.p.A {
			slack[i] -= s.p.A[i][c.idx]
		}
	}
	return x, obj, true
}

// branch explores the subproblem where variables are fixed per `fixed`.
func (s *solver) branch(fixed []int8) {
	if s.budget > 0 && s.nodes >= s.budget {
		return
	}
	s.nodes++
	sol, state := s.relax(fixed)
	switch state {
	case relaxInfeasible:
		return // infeasible subtree
	case relaxUnknown:
		// LP stalled: no valid bound; branch blindly on the first free
		// variable (rare, numerical-degeneracy backstop).
		for j := 0; j < s.n; j++ {
			if fixed[j] == free {
				down := append([]int8(nil), fixed...)
				down[j] = fixed1
				s.branch(down)
				down[j] = fixed0
				s.branch(down)
				return
			}
		}
		// All fixed: check feasibility directly.
		s.tryIncumbentFromFixed(fixed)
		return
	}
	if s.hasBest && sol.Objective <= s.bestObj+intEps+1e-9*math.Abs(s.bestObj) {
		return // bound: cannot beat incumbent
	}
	// Find most fractional free variable.
	branchVar := -1
	bestFrac := intEps
	for j := 0; j < s.n; j++ {
		if fixed[j] != free {
			continue
		}
		f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
		if f > bestFrac {
			bestFrac = f
			branchVar = j
		}
	}
	if branchVar < 0 {
		// Integral solution: candidate incumbent.
		x := make([]bool, s.n)
		obj := 0.0
		for j := 0; j < s.n; j++ {
			v := fixed[j] == fixed1 || (fixed[j] == free && sol.X[j] > 0.5)
			x[j] = v
			if v {
				obj += s.p.Obj[j]
			}
		}
		if !s.hasBest || obj > s.bestObj {
			s.bestX = x
			s.bestObj = obj
			s.hasBest = true
		}
		return
	}
	// Branch x=1 first (tends to find good incumbents sooner for knapsacks).
	down := append([]int8(nil), fixed...)
	down[branchVar] = fixed1
	s.branch(down)
	down[branchVar] = fixed0
	s.branch(down)
}

// tryIncumbentFromFixed treats a fully fixed assignment as a candidate
// incumbent if it satisfies all constraints.
func (s *solver) tryIncumbentFromFixed(fixed []int8) {
	obj := 0.0
	for i := range s.p.A {
		lhs := 0.0
		for j := 0; j < s.n; j++ {
			if fixed[j] == fixed1 {
				lhs += s.p.A[i][j]
			}
		}
		if lhs > s.p.B[i]+intEps {
			return
		}
	}
	x := make([]bool, s.n)
	for j := 0; j < s.n; j++ {
		if fixed[j] == fixed1 {
			x[j] = true
			obj += s.p.Obj[j]
		}
	}
	if !s.hasBest || obj > s.bestObj {
		s.bestX, s.bestObj, s.hasBest = x, obj, true
	}
}

// relaxState classifies a relaxation outcome.
type relaxState int

const (
	relaxOK relaxState = iota
	relaxInfeasible
	relaxUnknown
)

// relax solves the LP relaxation with fixed variables substituted out.
// Free variables get an explicit ≤ 1 row. Right-hand sides receive a tiny
// deterministic perturbation that breaks the massive degeneracy of 0-RHS
// coupling constraints; enlarging b only loosens the relaxation, so the
// returned objective remains a valid upper bound.
func (s *solver) relax(fixed []int8) (lp.Solution, relaxState) {
	freeIdx := make([]int, 0, s.n)
	for j := 0; j < s.n; j++ {
		if fixed[j] == free {
			freeIdx = append(freeIdx, j)
		}
	}
	nf := len(freeIdx)
	rows := make([][]float64, 0, len(s.p.A)+nf)
	rhs := make([]float64, 0, len(s.p.A)+nf)
	for i := range s.p.A {
		row := make([]float64, nf)
		b := s.p.B[i] + 1e-7*float64(1+i%11) // anti-degeneracy perturbation
		for j := 0; j < s.n; j++ {
			if fixed[j] == fixed1 {
				b -= s.p.A[i][j]
			}
		}
		for k, j := range freeIdx {
			row[k] = s.p.A[i][j]
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}
	for k := range freeIdx {
		row := make([]float64, nf)
		row[k] = 1
		rows = append(rows, row)
		rhs = append(rhs, 1)
	}
	obj := make([]float64, nf)
	base := 0.0
	for j := 0; j < s.n; j++ {
		if fixed[j] == fixed1 {
			base += s.p.Obj[j]
		}
	}
	for k, j := range freeIdx {
		obj[k] = s.p.Obj[j]
	}
	sol, err := lp.Solve(lp.Problem{Obj: obj, A: rows, B: rhs})
	if err != nil {
		return lp.Solution{}, relaxUnknown
	}
	switch sol.Status {
	case lp.Infeasible:
		return lp.Solution{}, relaxInfeasible
	case lp.Stalled, lp.Unbounded:
		// Unbounded cannot happen with the explicit ≤1 rows; treat both as
		// "no usable bound".
		return lp.Solution{}, relaxUnknown
	}
	// Re-expand to full variable space for the caller.
	full := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if fixed[j] == fixed1 {
			full[j] = 1
		}
	}
	for k, j := range freeIdx {
		full[j] = sol.X[k]
	}
	return lp.Solution{Status: lp.Optimal, X: full, Objective: sol.Objective + base}, relaxOK
}
