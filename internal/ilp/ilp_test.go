package ilp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestKnapsackSmall(t *testing.T) {
	// Classic: values 60,100,120, weights 10,20,30, cap 50 → 220 (items 2,3).
	s := solveOK(t, Problem{
		Obj: []float64{60, 100, 120},
		A:   [][]float64{{10, 20, 30}},
		B:   []float64{50},
	})
	if !s.Feasible || math.Abs(s.Objective-220) > 1e-6 {
		t.Fatalf("got %+v", s)
	}
	if s.X[0] || !s.X[1] || !s.X[2] {
		t.Errorf("selection: %v", s.X)
	}
}

func TestGreedyIsNotOptimalHere(t *testing.T) {
	// Greedy by ratio picks item 0 (ratio 6.0), leaving capacity 8 that
	// fits nothing else → 60. The optimum is items 1+2 → 100.
	s := solveOK(t, Problem{
		Obj: []float64{60, 50, 50},
		A:   [][]float64{{10, 9, 9}},
		B:   []float64{18},
	})
	if math.Abs(s.Objective-100) > 1e-6 {
		t.Errorf("objective: %v (X=%v)", s.Objective, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 + x2 >= 3 impossible with two binaries: -x1 - x2 <= -3.
	s := solveOK(t, Problem{
		Obj: []float64{1, 1},
		A:   [][]float64{{-1, -1}},
		B:   []float64{-3},
	})
	if s.Feasible {
		t.Errorf("expected infeasible, got %+v", s)
	}
}

func TestImplicationConstraint(t *testing.T) {
	// λ-Tune-style: R <= L (snippet needs its LHS column), maximize value of
	// R with token cost. Variables: L, R. Obj: R worth 10, L worth 0.
	// Cost: L costs 3, R costs 2, budget 5. Constraint R - L <= 0.
	s := solveOK(t, Problem{
		Obj: []float64{0, 10},
		A: [][]float64{
			{3, 2},  // token budget
			{-1, 1}, // R <= L
		},
		B: []float64{5, 0},
	})
	if !s.Feasible || !s.X[0] || !s.X[1] {
		t.Fatalf("got %+v", s)
	}
	if math.Abs(s.Objective-10) > 1e-6 {
		t.Errorf("objective: %v", s.Objective)
	}
}

func TestBudgetExcludesDependentPair(t *testing.T) {
	// Same as above but budget 4 < 3+2: must select nothing valuable.
	s := solveOK(t, Problem{
		Obj: []float64{0, 10},
		A: [][]float64{
			{3, 2},
			{-1, 1},
		},
		B: []float64{4, 0},
	})
	if s.X[1] {
		t.Errorf("R selected despite budget: %+v", s)
	}
}

func TestEmptyProblem(t *testing.T) {
	s := solveOK(t, Problem{})
	if !s.Feasible || s.Objective != 0 {
		t.Errorf("got %+v", s)
	}
}

func TestNegativeObjectiveSkipped(t *testing.T) {
	s := solveOK(t, Problem{
		Obj: []float64{-5, 3},
		A:   [][]float64{{1, 1}},
		B:   []float64{2},
	})
	if s.X[0] || !s.X[1] {
		t.Errorf("selection: %v", s.X)
	}
}

func TestTooLarge(t *testing.T) {
	p := Problem{Obj: make([]float64, 5000)}
	if _, err := Solve(p); err == nil {
		t.Error("expected ErrTooLarge")
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := Solve(Problem{Obj: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("expected row-width error")
	}
	if _, err := Solve(Problem{Obj: []float64{1}, A: [][]float64{{1}}, B: nil}); err == nil {
		t.Error("expected B-length error")
	}
}

// exhaustive computes the true optimum by enumeration (n <= 16).
func exhaustive(p Problem) (float64, bool) {
	n := len(p.Obj)
	best, found := 0.0, false
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for i, row := range p.A {
			lhs := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					lhs += row[j]
				}
			}
			if lhs > p.B[i]+1e-9 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				obj += p.Obj[j]
			}
		}
		if !found || obj > best {
			best, found = obj, true
		}
	}
	return best, found
}

// TestAgainstExhaustive cross-checks B&B against brute force on random
// knapsack-with-side-constraints instances.
func TestAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		p := Problem{Obj: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(20))
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = float64(rng.Intn(8))
			}
			p.B[i] = float64(rng.Intn(15))
		}
		want, wantFeas := exhaustive(p)
		got := solveOK(t, p)
		if got.Feasible != wantFeas {
			t.Fatalf("trial %d: feasibility mismatch", trial)
		}
		if wantFeas && math.Abs(got.Objective-want) > 1e-6 {
			t.Errorf("trial %d: got %v, want %v", trial, got.Objective, want)
		}
	}
}

// TestSolutionFeasibility: returned assignments must satisfy all constraints.
func TestSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(10)
		p := Problem{Obj: make([]float64, n), A: make([][]float64, 2), B: make([]float64, 2)}
		for j := range p.Obj {
			p.Obj[j] = rng.Float64() * 10
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64() * 5
			}
			p.B[i] = rng.Float64() * 12
		}
		s := solveOK(t, p)
		if !s.Feasible {
			t.Fatalf("trial %d: all-zero is always feasible with b>=0", trial)
		}
		for i, row := range p.A {
			lhs := 0.0
			for j := range row {
				if s.X[j] {
					lhs += row[j]
				}
			}
			if lhs > p.B[i]+1e-6 {
				t.Errorf("trial %d: constraint %d violated", trial, i)
			}
		}
	}
}
