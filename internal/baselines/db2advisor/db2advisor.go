// Package db2advisor reimplements the DB2 Index Advisor (Valentin et al.,
// ICDE 2000): the optimizer itself proposes candidate indexes per query
// ("an optimizer smart enough to recommend its own indexes"), each candidate
// gets a benefit (what-if cost reduction) and a size, and a knapsack-style
// selection picks the set maximizing benefit under a disk-budget constraint.
package db2advisor

import (
	"sort"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
	"lambdatune/internal/ilp"
)

// Advisor is the DB2 index advisor.
type Advisor struct {
	// DiskBudgetBytes bounds the total size of recommended indexes
	// (0 = 20% of database size, the advisor's customary default).
	DiskBudgetBytes int64
}

// New returns the advisor with defaults.
func New() *Advisor { return &Advisor{} }

// Name identifies the advisor.
func (a *Advisor) Name() string { return "DB2 Advisor" }

// indexSizeBytes estimates a B-tree's size: key width + tuple pointer per
// row.
func indexSizeBytes(cat *engine.Catalog, def engine.IndexDef) int64 {
	t := cat.Table(def.Table)
	if t == nil {
		return 0
	}
	width := 8 // tuple pointer
	for _, c := range def.ColumnList() {
		if col := t.Column(c); col != nil {
			width += col.WidthBytes
		}
	}
	return t.Rows * int64(width)
}

// compositeCandidates derives two-column candidates per query: a filtered
// column extended by another filtered column of the same table — the
// composite proposals that distinguish the DB2 advisor from single-column
// tools.
func compositeCandidates(cat *engine.Catalog, queries []*engine.Query) []engine.IndexDef {
	seen := map[string]bool{}
	var out []engine.IndexDef
	for _, q := range queries {
		perTable := map[string][]string{}
		for _, f := range q.Analysis.Filters {
			t := cat.Table(f.Table)
			if t == nil || t.Column(f.Column) == nil {
				continue
			}
			perTable[f.Table] = append(perTable[f.Table], f.Column)
		}
		for table, cols := range perTable {
			if len(cols) < 2 {
				continue
			}
			sort.Strings(cols)
			for i := 0; i < len(cols); i++ {
				for j := 0; j < len(cols); j++ {
					if i == j {
						continue
					}
					def := engine.NewIndexDef(table, cols[i], cols[j])
					if !seen[def.Key()] {
						seen[def.Key()] = true
						out = append(out, def)
					}
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key() < out[b].Key() })
	return out
}

// Recommend returns the advised index set. What-if costing uses hypothetical
// index creation (no clock charge); the knapsack is solved exactly with the
// internal ILP solver.
func (a *Advisor) Recommend(db backend.Backend, queries []*engine.Query) []engine.IndexDef {
	budget := a.DiskBudgetBytes
	if budget <= 0 {
		budget = db.Catalog().TotalBytes() / 5
	}
	candidates := baselines.CandidateIndexes(db.Catalog(), queries)
	candidates = append(candidates, compositeCandidates(db.Catalog(), queries)...)
	base := make([]float64, len(queries))
	for i, q := range queries {
		base[i] = db.PlanCost(q)
	}

	type cand struct {
		def     engine.IndexDef
		benefit float64
		size    int64
	}
	var cands []cand
	for _, c := range candidates {
		if db.HasIndex(c) {
			continue
		}
		db.CreatePermanentIndex(c)
		var benefit float64
		for i, q := range queries {
			if est := db.PlanCost(q); est < base[i] {
				benefit += base[i] - est
			}
		}
		db.DropIndex(c)
		if benefit > 0 {
			cands = append(cands, cand{def: c, benefit: benefit, size: indexSizeBytes(db.Catalog(), c)})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].def.Key() < cands[j].def.Key() })

	// Knapsack: maximize Σ benefit subject to Σ size ≤ budget.
	obj := make([]float64, len(cands))
	row := make([]float64, len(cands))
	for i, c := range cands {
		obj[i] = c.benefit
		row[i] = float64(c.size)
	}
	sol, err := ilp.Solve(ilp.Problem{Obj: obj, A: [][]float64{row}, B: []float64{float64(budget)}})
	if err != nil || !sol.Feasible {
		return nil
	}
	var out []engine.IndexDef
	for i, take := range sol.X {
		if take {
			out = append(out, cands[i].def)
		}
	}
	return out
}
