package db2advisor

import (
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func setup(t *testing.T) (*backend.Sim, *workload.Workload) {
	t.Helper()
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	s := db.Settings()
	s["random_page_cost"] = 1.1
	s["effective_cache_size"] = float64(int64(45) << 30)
	db.SetSettings(s)
	return db, w
}

func TestDB2AdvisorRecommends(t *testing.T) {
	db, w := setup(t)
	defs := New().Recommend(db, w.Queries)
	if len(defs) == 0 {
		t.Fatal("advisor recommended nothing")
	}
	if len(db.Indexes()) != 0 || db.Clock().Now() != 0 {
		t.Error("what-if costing left state behind")
	}
}

func TestDB2AdvisorRespectsDiskBudget(t *testing.T) {
	db, w := setup(t)
	a := New()
	a.DiskBudgetBytes = 100 << 20 // tight: 100 MB
	defs := a.Recommend(db, w.Queries)
	var total int64
	for _, d := range defs {
		total += indexSizeBytes(db.Catalog(), d)
	}
	if total > a.DiskBudgetBytes {
		t.Errorf("recommended %d bytes under a %d budget", total, a.DiskBudgetBytes)
	}
}

func TestDB2AdvisorBudgetMonotone(t *testing.T) {
	db, w := setup(t)
	small := New()
	small.DiskBudgetBytes = 50 << 20
	big := New()
	big.DiskBudgetBytes = 10 << 30
	if len(small.Recommend(db, w.Queries)) > len(big.Recommend(db, w.Queries)) {
		t.Error("smaller budget recommended more indexes")
	}
}

func TestIndexSizeBytes(t *testing.T) {
	db, _ := setup(t)
	d := engine.NewIndexDef("lineitem", "l_orderkey")
	size := indexSizeBytes(db.Catalog(), d)
	// 6M rows × (4B key + 8B pointer).
	want := int64(6_001_215) * 12
	if size != want {
		t.Errorf("size %d, want %d", size, want)
	}
	if indexSizeBytes(db.Catalog(), engine.NewIndexDef("nope", "x")) != 0 {
		t.Error("unknown table size not 0")
	}
}

func TestCompositeCandidates(t *testing.T) {
	db, w := setup(t)
	cands := compositeCandidates(db.Catalog(), w.Queries)
	if len(cands) == 0 {
		t.Fatal("no composite candidates on TPC-H")
	}
	for _, c := range cands {
		cols := c.ColumnList()
		if len(cols) != 2 {
			t.Errorf("non-composite candidate: %v", c)
		}
		tab := db.Catalog().Table(c.Table)
		for _, col := range cols {
			if tab.Column(col) == nil {
				t.Errorf("candidate references unknown column: %v", c)
			}
		}
	}
}

func TestRecommendMayIncludeComposites(t *testing.T) {
	db, w := setup(t)
	defs := New().Recommend(db, w.Queries)
	if len(defs) == 0 {
		t.Fatal("no recommendations")
	}
	// Sanity: recommendations remain within budget and on known tables.
	for _, d := range defs {
		if db.Catalog().Table(d.Table) == nil {
			t.Errorf("unknown table: %v", d)
		}
	}
}
