// Package baselines defines the shared contract for the tuning systems that
// the paper compares λ-Tune against (UDO, DB-BERT, GPTuner, LlamaTune,
// ParamTree) and the index advisors (Dexter, DB2 Advisor). Each baseline is
// reimplemented after its published algorithm at the level of detail the
// evaluation observes: what it explores, how many trial runs it needs, and
// how it spends (virtual) tuning time.
package baselines

import (
	"errors"
	"math"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
)

// Event is one best-so-far improvement on the virtual clock.
type Event struct {
	Clock    float64
	BestTime float64
	ConfigID string
}

// Trace is the outcome of a baseline tuning run.
type Trace struct {
	// Name of the tuner that produced the trace.
	Name string
	// Events are best-so-far improvements in clock order.
	Events []Event
	// BestTime is the execution time of the best configuration found
	// (+Inf when nothing completed).
	BestTime float64
	// BestConfig is the best configuration (nil when nothing completed).
	BestConfig *engine.Config
	// Evaluated counts configuration trial runs (paper Table 4).
	Evaluated int
}

// NewTrace initializes an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{Name: name, BestTime: math.Inf(1)}
}

// Record notes a completed evaluation and updates the best-so-far.
func (tr *Trace) Record(clock float64, cfg *engine.Config, time float64, complete bool) {
	tr.Evaluated++
	if complete && time < tr.BestTime {
		tr.BestTime = time
		tr.BestConfig = cfg
		tr.Events = append(tr.Events, Event{Clock: clock, BestTime: time, ConfigID: cfg.ID})
	}
}

// Tuner is a baseline tuning system. Tune explores configurations until the
// backend's virtual clock passes deadline, then returns its trace.
type Tuner interface {
	Name() string
	Tune(db backend.Backend, queries []*engine.Query, deadline float64) *Trace
}

// EvalOptions controls full-workload trial runs.
type EvalOptions struct {
	// Timeout bounds one trial run in simulated seconds (the paper grants
	// baselines three times the worst λ-Tune configuration's time).
	Timeout float64
}

// ApplyConfig switches the backend to cfg, normalizing refusals: whatever
// error the backend returns, the result wraps *engine.ConfigRejectedError so
// every baseline reports rejected configurations through one errors.As-able
// type.
func ApplyConfig(db backend.Backend, cfg *engine.Config) error {
	err := db.ApplyConfig(cfg)
	if err == nil {
		return nil
	}
	var rej *engine.ConfigRejectedError
	if errors.As(err, &rej) {
		return err
	}
	return &engine.ConfigRejectedError{
		Stmt:   cfg.ID,
		Reason: "backend rejected configuration",
		Err:    err,
	}
}

// Evaluate performs one trial: switch the backend to cfg (dropping
// transient indexes of prior trials, creating cfg's indexes eagerly — the
// baselines lack λ-Tune's lazy-creation machinery) and run the workload
// under the timeout. Returns the workload execution time (query time only)
// and whether every query completed. A rejected configuration counts as a
// failed trial (+Inf, false).
func Evaluate(db backend.Backend, queries []*engine.Query, cfg *engine.Config, opts EvalOptions) (float64, bool) {
	db.DropTransientIndexes()
	if err := ApplyConfig(db, cfg); err != nil {
		return math.Inf(1), false
	}
	for _, ix := range cfg.Indexes {
		db.CreateIndex(ix)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = math.Inf(1)
	}
	remaining := timeout
	var total float64
	for _, q := range queries {
		res := db.RunQuery(q, remaining)
		if !res.Complete {
			return total, false
		}
		total += res.Seconds
		remaining -= res.Seconds
	}
	return total, true
}

// SampleQueries returns a deterministic ~fraction subset of the workload
// (at least one query), as UDO uses for cheap trial runs.
func SampleQueries(queries []*engine.Query, fraction float64, seed int64) []*engine.Query {
	if fraction >= 1 {
		return queries
	}
	n := int(float64(len(queries)) * fraction)
	if n < 1 {
		n = 1
	}
	// Deterministic stride-based sample.
	stride := len(queries) / n
	if stride < 1 {
		stride = 1
	}
	start := int(seed) % stride
	if start < 0 {
		start += stride
	}
	var out []*engine.Query
	for i := start; i < len(queries) && len(out) < n; i += stride {
		out = append(out, queries[i])
	}
	return out
}
