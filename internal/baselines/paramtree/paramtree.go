// Package paramtree reimplements the ParamTree method (Yang et al., 2023):
// regression trees over operator-level features recalibrate the five
// PostgreSQL optimizer cost constants (cpu_tuple_cost, cpu_operator_cost,
// cpu_index_tuple_cost, seq_page_cost, random_page_cost). ParamTree can
// produce per-operator constants; since PostgreSQL accepts a single value
// per parameter, the paper averages the operator-specific recommendations —
// we do the same. One full-workload evaluation verifies the recommendation
// (Table 4 reports exactly one trial).
package paramtree

import (
	"fmt"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Tuner is the ParamTree baseline. It only applies to the Postgres flavor
// (MySQL exposes no equivalent cost constants); on MySQL it recommends the
// empty configuration.
type Tuner struct {
	EvalTimeout float64
	// CalibrationError is the relative error of the learned constants
	// (regression trees fit the true hardware costs imperfectly).
	CalibrationError float64
}

// New returns ParamTree with a realistic ~10% calibration error.
func New() *Tuner { return &Tuner{CalibrationError: 0.10} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "ParamTree" }

// operatorEstimates simulates the per-operator regression-tree outputs: each
// operator class yields a slightly different constant estimate around the
// machine's true cost; the final recommendation averages them.
func (t *Tuner) operatorEstimates(truth float64) []float64 {
	e := t.CalibrationError
	// Three operator classes (scan-heavy, join-heavy, aggregate-heavy) with
	// deterministic alternating errors.
	return []float64{truth * (1 + e), truth * (1 - e/2), truth * (1 + e/4)}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Recommend produces the single calibrated configuration.
func (t *Tuner) Recommend(db backend.Backend) *engine.Config {
	cfg := &engine.Config{ID: "paramtree", Params: map[string]string{}}
	if db.Flavor() != engine.Postgres {
		return cfg
	}
	// True per-operation costs of the simulated machine, expressed in
	// planner units (seq_page_cost ≡ 1.0): see internal/engine's hardware
	// truth constants. ParamTree's regressions recover these from observed
	// operator runtimes.
	truths := map[string]float64{
		"seq_page_cost":        1.0,
		"random_page_cost":     2.5,
		"cpu_tuple_cost":       0.005,
		"cpu_operator_cost":    0.0015,
		"cpu_index_tuple_cost": 0.003,
	}
	for name, truth := range truths {
		cfg.Params[name] = fmt.Sprintf("%g", avg(t.operatorEstimates(truth)))
	}
	return cfg
}

// Tune implements baselines.Tuner: one recommendation, one verification run.
func (t *Tuner) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	tr := baselines.NewTrace(t.Name())
	cfg := t.Recommend(db)
	time, complete := baselines.Evaluate(db, queries, cfg, baselines.EvalOptions{Timeout: t.EvalTimeout})
	tr.Record(db.Clock().Now(), cfg, time, complete)
	_ = deadline
	return tr
}
