package paramtree

import (
	"strconv"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestParamTreeOneTrial(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tr := New().Tune(db, w.Queries, 1e9)
	if tr.Evaluated != 1 {
		t.Errorf("ParamTree ran %d trials, want 1 (Table 4)", tr.Evaluated)
	}
	if tr.BestConfig == nil {
		t.Fatal("no recommendation")
	}
	if len(tr.BestConfig.Params) != 5 {
		t.Errorf("recommends %d params, want the 5 optimizer constants", len(tr.BestConfig.Params))
	}
}

func TestParamTreeRecommendationsNearTruth(t *testing.T) {
	cfg := New().Recommend(backend.NewSim(engine.Postgres, workload.TPCH(1).Catalog, engine.DefaultHardware))
	rp, err := strconv.ParseFloat(cfg.Params["random_page_cost"], 64)
	if err != nil {
		t.Fatal(err)
	}
	// True random/seq ratio of the simulated machine is 2.5; the learned
	// value must be within calibration error.
	if rp < 2.0 || rp > 3.0 {
		t.Errorf("random_page_cost %v far from hardware truth 2.5", rp)
	}
}

func TestParamTreeHelpsPlans(t *testing.T) {
	// Calibrated constants have a bounded effect: ParamTree fixes the five
	// optimizer constants but not the planner's other inputs (e.g.
	// effective_cache_size), so plans can shift either way within a small
	// factor — the paper likewise finds ParamTree's scope too narrow for
	// large gains.
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	// Give the optimizer indexes to potentially mis-cost.
	for _, d := range w.InitialIndexes() {
		db.CreatePermanentIndex(d)
	}
	defaultTime := db.WorkloadSeconds(w.Queries)
	pt := New()
	cfg := pt.Recommend(db)
	s, err := cfg.ResolveSettings(engine.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSettings(s)
	tuned := db.WorkloadSeconds(w.Queries)
	if tuned > defaultTime*1.3 || tuned < defaultTime/3 {
		t.Errorf("calibration effect out of bounds: %v vs %v", tuned, defaultTime)
	}
}

func TestParamTreeMySQLNoOp(t *testing.T) {
	db := backend.NewSim(engine.MySQL, workload.TPCH(1).Catalog, engine.DefaultHardware)
	cfg := New().Recommend(db)
	if len(cfg.Params) != 0 {
		t.Errorf("MySQL has no optimizer constants to calibrate: %v", cfg.Params)
	}
}
