package dbbert

import (
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestDBBertImproves(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tr := New(3).Tune(db, w.Queries, 20000)
	if math.IsInf(tr.BestTime, 1) {
		t.Fatal("DB-BERT found nothing")
	}
	if tr.BestTime >= defaultTime {
		t.Errorf("best %v vs default %v", tr.BestTime, defaultTime)
	}
}

func TestDBBertHintsTranslatedToHardware(t *testing.T) {
	// A mined "25% of RAM" hint must materialize as an absolute size
	// proportional to machine memory.
	w := workload.TPCH(1)
	small := backend.NewSim(engine.Postgres, w.Catalog, engine.Hardware{Cores: 4, MemoryBytes: 8 << 30})
	tr := New(3).Tune(small, w.Queries, 8000)
	if tr.BestConfig == nil {
		t.Fatal("no best config")
	}
	if v, ok := tr.BestConfig.Params["shared_buffers"]; ok {
		pc := engine.Params(engine.Postgres)
		parsed, err := pc.ParseValue("shared_buffers", v)
		if err != nil {
			t.Fatal(err)
		}
		if parsed > 8<<30 {
			t.Errorf("shared_buffers %v exceeds machine memory", v)
		}
	}
}

func TestDBBertMySQLCorpus(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.MySQL, w.Catalog, engine.DefaultHardware)
	tr := New(3).Tune(db, w.Queries, 15000)
	if tr.BestConfig == nil {
		t.Fatal("no best config on MySQL")
	}
	for name := range tr.BestConfig.Params {
		if _, ok := engine.Params(engine.MySQL).Lookup(name); !ok {
			t.Errorf("Postgres hint %q applied to MySQL", name)
		}
	}
}

func TestCorpusParamsExist(t *testing.T) {
	for _, f := range []engine.Flavor{engine.Postgres, engine.MySQL} {
		pc := engine.Params(f)
		for _, h := range corpus(f) {
			if _, ok := pc.Lookup(h.Param); !ok {
				t.Errorf("%v corpus references unknown parameter %q", f, h.Param)
			}
			if h.Source == "" {
				t.Errorf("hint %q has no source sentence", h.Param)
			}
		}
	}
}
