// Package dbbert reimplements DB-BERT (Trummer, 2022): a tuning tool that
// "reads the manual" — it mines single-parameter tuning hints from text
// documents with a language model, translates relative recommendations
// (e.g. "25% of RAM") to the target hardware, and searches over hint
// combinations and scale factors with reinforcement learning.
//
// The bundled corpus paraphrases the standard PostgreSQL/MySQL tuning
// guidance that DB-BERT's evaluation mined from the web.
package dbbert

import (
	"fmt"
	"math"
	"math/rand"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Hint is a mined single-parameter recommendation.
type Hint struct {
	Param string
	// Value is the recommended setting; when RelativeToRAM is true, Value
	// is a fraction of machine memory (translated at tuning time).
	Value         float64
	RelativeToRAM bool
	// Source is the manual sentence the hint was mined from.
	Source string
}

// corpus holds the mined hints per flavor. Paraphrased from the PostgreSQL
// wiki ("Tuning Your PostgreSQL Server") and the MySQL reference manual —
// the same documents DB-BERT's evaluation feeds to the model.
func corpus(f engine.Flavor) []Hint {
	if f == engine.MySQL {
		return []Hint{
			{Param: "innodb_buffer_pool_size", Value: 0.7, RelativeToRAM: true,
				Source: "A typical recommendation is to set the buffer pool to 70% of available memory."},
			{Param: "sort_buffer_size", Value: 64 << 20,
				Source: "Increase sort_buffer_size for sessions performing large sorts."},
			{Param: "join_buffer_size", Value: 64 << 20,
				Source: "Joins without indexes benefit from a larger join_buffer_size."},
			{Param: "tmp_table_size", Value: 256 << 20,
				Source: "Raise tmp_table_size to keep implicit temporary tables in memory."},
			{Param: "max_heap_table_size", Value: 256 << 20,
				Source: "max_heap_table_size bounds in-memory temporary tables."},
			{Param: "innodb_io_capacity", Value: 2000,
				Source: "SSD-backed instances should raise innodb_io_capacity."},
			{Param: "innodb_read_io_threads", Value: 16,
				Source: "Increase the read IO threads on machines with many cores."},
			{Param: "innodb_log_file_size", Value: 1 << 30,
				Source: "Use large redo logs for write-heavy workloads."},
		}
	}
	return []Hint{
		{Param: "shared_buffers", Value: 0.25, RelativeToRAM: true,
			Source: "A reasonable starting value for shared_buffers is 25% of the memory in your system."},
		{Param: "effective_cache_size", Value: 0.5, RelativeToRAM: true,
			Source: "effective_cache_size should be set to an estimate of how much memory is available for disk caching, commonly 50% of RAM."},
		{Param: "work_mem", Value: 256 << 20,
			Source: "Analytic queries with big sorts and hashes benefit from work_mem far above the default."},
		{Param: "maintenance_work_mem", Value: 1 << 30,
			Source: "Raising maintenance_work_mem speeds up CREATE INDEX."},
		{Param: "random_page_cost", Value: 1.1,
			Source: "On SSD storage, lower random_page_cost towards 1.1 so the planner favors index scans."},
		{Param: "effective_io_concurrency", Value: 200,
			Source: "SSDs allow effective_io_concurrency values of 200 or more."},
		{Param: "max_parallel_workers_per_gather", Value: 4,
			Source: "OLAP systems benefit from more parallel workers per gather node."},
		{Param: "checkpoint_completion_target", Value: 0.9,
			Source: "Set checkpoint_completion_target to 0.9 to spread checkpoint IO."},
		{Param: "wal_buffers", Value: 16 << 20,
			Source: "A wal_buffers value of 16MB helps concurrent commits."},
		{Param: "default_statistics_target", Value: 100,
			Source: "The default statistics target of 100 suits most workloads."},
	}
}

// Tuner is the DB-BERT baseline.
type Tuner struct {
	Seed int64
	// EvalTimeout bounds each full-workload trial.
	EvalTimeout float64
}

// New returns DB-BERT with defaults.
func New(seed int64) *Tuner { return &Tuner{Seed: seed} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "DB-BERT" }

// Tune implements baselines.Tuner: RL over hint subsets and per-hint scale
// factors (DB-BERT multiplies mined values by factors in {0.25,0.5,1,2,4}).
func (t *Tuner) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	tr := baselines.NewTrace(t.Name())
	rng := rand.New(rand.NewSource(t.Seed))
	hints := corpus(db.Flavor())
	scales := []float64{0.25, 0.5, 1, 2, 4}
	pc := engine.Params(db.Flavor())
	mem := float64(db.Hardware().MemoryBytes)

	// Weights implement a softmax-free bandit: start uniform, reinforce
	// hints that appear in improving configurations.
	weight := make([]float64, len(hints))
	for i := range weight {
		weight[i] = 1
	}
	// Initial scale factors are part of the search space: DB-BERT does not
	// know a priori whether a mined value should be taken at face value.
	scaleIdx := make([]int, len(hints))
	for i := range scaleIdx {
		scaleIdx[i] = rng.Intn(len(scales))
	}

	trial := 0
	curBest := math.Inf(1)
	for db.Clock().Now() < deadline {
		trial++
		// Sample a hint subset proportional to weights, perturb one scale.
		cfg := &engine.Config{ID: fmt.Sprintf("dbbert-%d", trial), Params: map[string]string{}}
		var used []int
		for i, h := range hints {
			if rng.Float64() > weight[i]/(weight[i]+1) {
				continue
			}
			used = append(used, i)
			s := scales[scaleIdx[i]]
			if rng.Float64() < 0.3 {
				scaleIdx[i] = rng.Intn(len(scales))
				s = scales[scaleIdx[i]]
			}
			v := h.Value * s
			if h.RelativeToRAM {
				v = mem * h.Value * s
			}
			def, ok := pc.Lookup(h.Param)
			if !ok {
				continue
			}
			cfg.Params[h.Param] = baselines.Knob{Name: h.Param, Def: def}.Format(clamp(v, def.Min, def.Max))
		}
		time, complete := baselines.Evaluate(db, queries, cfg, baselines.EvalOptions{Timeout: t.EvalTimeout})
		tr.Record(db.Clock().Now(), cfg, time, complete)
		// Reinforce.
		if complete && time < curBest {
			curBest = time
			for _, i := range used {
				weight[i] *= 1.5
			}
		} else {
			for _, i := range used {
				weight[i] *= 0.95
			}
		}
	}
	return tr
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
