// Package dexter reimplements Dexter (github.com/ankane/dexter): an
// automatic index advisor for PostgreSQL built on hypothetical indexes
// (HypoPG). Dexter collects candidate indexes from the workload's predicate
// columns, creates them hypothetically, and keeps those whose what-if
// planner cost improvement exceeds a threshold.
package dexter

import (
	"sort"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Advisor is the Dexter index advisor.
type Advisor struct {
	// MinImprovement is the relative planner-cost improvement an index must
	// deliver on at least one query (Dexter's default is 50%... per query).
	MinImprovement float64
	// MaxIndexes caps the recommendation count (0 = unlimited).
	MaxIndexes int
}

// New returns Dexter with its published default threshold.
func New() *Advisor { return &Advisor{MinImprovement: 0.5} }

// Name identifies the advisor.
func (a *Advisor) Name() string { return "Dexter" }

// Recommend returns the advised indexes for the workload. The database's
// settings are used for what-if costing (hypothetical indexes: the index is
// created for costing only; creation time is *not* charged to the clock,
// matching HypoPG semantics). Any pre-existing transient indexes are
// restored on return.
func (a *Advisor) Recommend(db backend.Backend, queries []*engine.Query) []engine.IndexDef {
	candidates := baselines.CandidateIndexes(db.Catalog(), queries)
	// Baseline planner cost per query, under current indexes only.
	base := make([]float64, len(queries))
	for i, q := range queries {
		base[i] = db.PlanCost(q)
	}

	type scored struct {
		def     engine.IndexDef
		benefit float64
	}
	var useful []scored
	for _, cand := range candidates {
		if db.HasIndex(cand) {
			continue
		}
		// Hypothetically create, re-cost affected queries, drop.
		db.CreatePermanentIndex(cand) // no clock charge: hypothetical
		var benefit float64
		qualifies := false
		for i, q := range queries {
			c := db.PlanCost(q)
			if c < base[i] {
				benefit += base[i] - c
				if (base[i]-c)/base[i] >= a.MinImprovement {
					qualifies = true
				}
			}
		}
		db.DropIndex(cand)
		if qualifies {
			useful = append(useful, scored{def: cand, benefit: benefit})
		}
	}
	sort.Slice(useful, func(i, j int) bool {
		if useful[i].benefit != useful[j].benefit {
			return useful[i].benefit > useful[j].benefit
		}
		return useful[i].def.Key() < useful[j].def.Key()
	})
	var out []engine.IndexDef
	for _, s := range useful {
		if a.MaxIndexes > 0 && len(out) >= a.MaxIndexes {
			break
		}
		out = append(out, s.def)
	}
	return out
}
