package dexter

import (
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestDexterRecommends(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	// Index-friendly planner settings (the harness applies these before
	// asking for recommendations, like Dexter assumes SSD-tuned costs).
	s := db.Settings()
	s["random_page_cost"] = 1.1
	s["effective_cache_size"] = float64(int64(45) << 30)
	db.SetSettings(s)

	defs := New().Recommend(db, w.Queries)
	if len(defs) == 0 {
		t.Fatal("Dexter recommended nothing")
	}
	for _, d := range defs {
		if db.Catalog().Table(d.Table) == nil {
			t.Errorf("index on unknown table: %v", d)
		}
	}
	// What-if evaluation must not leave hypothetical indexes behind nor
	// advance the clock.
	if len(db.Indexes()) != 0 {
		t.Errorf("hypothetical indexes leaked: %v", db.Indexes())
	}
	if db.Clock().Now() != 0 {
		t.Errorf("what-if costing charged the clock: %v", db.Clock().Now())
	}
}

func TestDexterIndexesHelp(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	s := db.Settings()
	s["random_page_cost"] = 1.1
	db.SetSettings(s)
	before := db.WorkloadSeconds(w.Queries)
	for _, d := range New().Recommend(db, w.Queries) {
		db.CreatePermanentIndex(d)
	}
	after := db.WorkloadSeconds(w.Queries)
	if after >= before {
		t.Errorf("Dexter indexes did not help: %v vs %v", after, before)
	}
}

func TestDexterSkipsExisting(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	s := db.Settings()
	s["random_page_cost"] = 1.1
	db.SetSettings(s)
	all := New().Recommend(db, w.Queries)
	if len(all) == 0 {
		t.Skip("no recommendations")
	}
	db.CreatePermanentIndex(all[0])
	again := New().Recommend(db, w.Queries)
	for _, d := range again {
		if d.Key() == all[0].Key() {
			t.Errorf("existing index re-recommended: %v", d)
		}
	}
}

func TestDexterMaxIndexes(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	s := db.Settings()
	s["random_page_cost"] = 1.1
	db.SetSettings(s)
	a := New()
	a.MaxIndexes = 2
	if got := a.Recommend(db, w.Queries); len(got) > 2 {
		t.Errorf("cap ignored: %d indexes", len(got))
	}
}
