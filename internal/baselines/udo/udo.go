// Package udo reimplements UDO (Wang et al., 2021), the universal database
// optimizer: reinforcement learning over both system parameters and index
// choices. Following the paper's evaluation setup, UDO evaluates candidate
// configurations on workload *samples* (cheap trials, hence its large trial
// counts in Table 4) and the harness re-runs its incumbents on the full
// workload to make results comparable.
package udo

import (
	"fmt"
	"math"
	"math/rand"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Tuner is the UDO baseline.
type Tuner struct {
	// Seed drives exploration.
	Seed int64
	// SampleFraction is the share of the workload used per cheap trial.
	SampleFraction float64
	// Epsilon is the exploration rate of the ε-greedy policy.
	Epsilon float64
	// EvalTimeout bounds each full-workload verification run.
	EvalTimeout float64
	// TuneIndexes enables physical-design actions (scenario 2); when false
	// UDO only changes parameters (scenario 1).
	TuneIndexes bool
	// TuneKnobs enables parameter actions. Setting it false (with
	// TuneIndexes on) restricts the search to UDO's heavy-parameter MDP —
	// the paper's hierarchical design delegates light parameters to a
	// nested tuner, so the outer loop explores index choices alone.
	TuneKnobs bool
}

// New returns UDO with the published defaults.
func New(seed int64) *Tuner {
	return &Tuner{Seed: seed, SampleFraction: 0.1, Epsilon: 0.3, TuneIndexes: true, TuneKnobs: true}
}

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "UDO" }

// state is UDO's current configuration: one level index per knob plus an
// index subset.
type state struct {
	levels  []int
	indexes []bool
}

func (s state) clone() state {
	ls := append([]int(nil), s.levels...)
	ix := append([]bool(nil), s.indexes...)
	return state{levels: ls, indexes: ix}
}

// Tune implements baselines.Tuner: ε-greedy hill climbing with RL-style
// sample-based reward, verifying improved incumbents on the full workload.
func (t *Tuner) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	tr := baselines.NewTrace(t.Name())
	rng := rand.New(rand.NewSource(t.Seed))
	knobs := baselines.KnobSpace(db.Flavor(), db.Hardware())
	var candidates []engine.IndexDef
	if t.TuneIndexes {
		candidates = baselines.CandidateIndexes(db.Catalog(), queries)
	}
	sample := baselines.SampleQueries(queries, t.SampleFraction, t.Seed)

	cur := state{levels: make([]int, len(knobs)), indexes: make([]bool, len(candidates))}
	for i, k := range knobs {
		// Start at each knob's default level.
		for li, v := range k.Levels {
			if v == k.Def.Default {
				cur.levels[i] = li
			}
		}
	}
	curReward := math.Inf(1)
	trial := 0

	// UDO manages the physical design incrementally: toggling one index
	// costs one creation (or a free drop), never a full rebuild.
	db.DropTransientIndexes()
	// applyState runs one to two times per trial, so the parameter strings
	// are rendered once per (knob, level) up front and the Config (which no
	// backend retains) is a reused scratch — the hill climber spends its host
	// CPU on evaluation, not on re-formatting the same two dozen values.
	levelStrs := make([][]string, len(knobs))
	for i, k := range knobs {
		levelStrs[i] = make([]string, len(k.Levels))
		for li, v := range k.Levels {
			levelStrs[i][li] = k.Format(v)
		}
	}
	scratch := &engine.Config{ID: "state", Params: make(map[string]string, len(knobs))}
	applyState := func(s state) error {
		for i, on := range s.indexes {
			if on && !db.HasIndex(candidates[i]) {
				db.CreateIndex(candidates[i])
			} else if !on && db.HasIndex(candidates[i]) {
				db.DropIndex(candidates[i])
			}
		}
		clear(scratch.Params)
		for i, k := range knobs {
			if level := k.Levels[s.levels[i]]; level != k.Def.Default {
				scratch.Params[k.Name] = levelStrs[i][s.levels[i]]
			}
		}
		return baselines.ApplyConfig(db, scratch)
	}

	runQueries := func(qs []*engine.Query, timeout float64) (float64, bool) {
		if timeout <= 0 {
			timeout = math.Inf(1)
		}
		remaining := timeout
		var total float64
		for _, q := range qs {
			res := db.RunQuery(q, remaining)
			if !res.Complete {
				return total, false
			}
			total += res.Seconds
			remaining -= res.Seconds
		}
		return total, true
	}

	for db.Clock().Now() < deadline {
		trial++
		next := cur.clone()
		// Episode: one to three actions, each mutating a knob level or
		// toggling an index (UDO's MDP applies several actions per
		// episode). The learned policy quickly acquires directionality —
		// memory/size knobs pay off upward, candidate indexes pay off
		// switched on — so actions are biased accordingly (a stand-in for
		// UDO's converged Q-values).
		for a := rng.Intn(3) + 1; a > 0; a-- {
			if t.TuneIndexes && len(candidates) > 0 && (!t.TuneKnobs || rng.Float64() < 0.4) {
				i := rng.Intn(len(candidates))
				if rng.Float64() < 0.7 {
					next.indexes[i] = true
				} else {
					next.indexes[i] = !next.indexes[i]
				}
			} else {
				i := rng.Intn(len(knobs))
				if rng.Float64() < 0.7 && next.levels[i] < len(knobs[i].Levels)-1 {
					next.levels[i]++
				} else {
					next.levels[i] = rng.Intn(len(knobs[i].Levels))
				}
			}
		}
		if err := applyState(next); err != nil {
			continue
		}
		// Cheap trial on the sample.
		sampleTime, complete := runQueries(sample, t.EvalTimeout)
		tr.Evaluated++
		if db.Clock().Now() >= deadline {
			break
		}
		accept := complete && sampleTime < curReward
		if !accept && rng.Float64() < t.Epsilon {
			accept = complete
		}
		if !accept {
			// Revert (index drops are free; creations linger as state UDO
			// explored — it keeps the design of the accepted state).
			if err := applyState(cur); err != nil {
				continue
			}
			continue
		}
		cur = next
		curReward = sampleTime
		// Full-workload measurement of the new incumbent. The paper
		// re-executes configurations tried by UDO to make its results
		// comparable; this measurement happens outside UDO's tuning budget,
		// so it does not advance the clock.
		cfg := t.config(fmt.Sprintf("udo-%d", trial), knobs, candidates, cur)
		fullTime := db.WorkloadSeconds(queries)
		if fullTime < tr.BestTime {
			tr.BestTime = fullTime
			tr.BestConfig = cfg
			tr.Events = append(tr.Events, baselines.Event{
				Clock: db.Clock().Now(), BestTime: fullTime, ConfigID: cfg.ID,
			})
		}
	}
	return tr
}

// config materializes a state as a configuration.
func (t *Tuner) config(id string, knobs []baselines.Knob, candidates []engine.IndexDef, s state) *engine.Config {
	cfg := &engine.Config{ID: id, Params: map[string]string{}}
	for i, k := range knobs {
		level := k.Levels[s.levels[i]]
		if level == k.Def.Default {
			continue // leave defaults unset
		}
		cfg.Params[k.Name] = k.Format(level)
	}
	for i, on := range s.indexes {
		if on {
			cfg.Indexes = append(cfg.Indexes, candidates[i])
		}
	}
	return cfg
}
