package udo

import (
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestUDOFindsImprovement(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tr := New(7).Tune(db, w.Queries, 20000)
	if math.IsInf(tr.BestTime, 1) {
		t.Fatal("UDO found nothing")
	}
	if tr.BestTime >= defaultTime {
		t.Errorf("UDO best %v not better than default %v", tr.BestTime, defaultTime)
	}
	if tr.Evaluated < 10 {
		t.Errorf("UDO evaluated only %d configs", tr.Evaluated)
	}
}

func TestUDORespectsDeadline(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	deadline := 500.0
	New(7).Tune(db, w.Queries, deadline)
	// One full verification run may overshoot; bound the overshoot.
	if db.Clock().Now() > deadline*3 {
		t.Errorf("clock %v far beyond deadline %v", db.Clock().Now(), deadline)
	}
}

func TestUDOParamOnlyMode(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	u := New(7)
	u.TuneIndexes = false
	tr := u.Tune(db, w.Queries, 5000)
	if tr.BestConfig != nil && len(tr.BestConfig.Indexes) > 0 {
		t.Error("param-only UDO recommended indexes")
	}
}

func TestUDODeterministic(t *testing.T) {
	run := func() float64 {
		w := workload.TPCH(1)
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		return New(7).Tune(db, w.Queries, 3000).BestTime
	}
	if run() != run() {
		t.Error("UDO nondeterministic under fixed seed")
	}
}
