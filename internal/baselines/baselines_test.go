package baselines

import (
	"errors"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func setup(t *testing.T) (*backend.Sim, *workload.Workload) {
	t.Helper()
	w := workload.TPCH(1)
	return backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware), w
}

func TestEvaluateFullWorkload(t *testing.T) {
	db, w := setup(t)
	cfg := &engine.Config{ID: "c", Params: map[string]string{"shared_buffers": "8GB"}}
	time, complete := Evaluate(db, w.Queries, cfg, EvalOptions{})
	if !complete || time <= 0 {
		t.Fatalf("time=%v complete=%v", time, complete)
	}
}

// TestApplyConfigRejectionWrapping pins the error contract of the shared
// apply helper: every rejection — whatever the backend returned — surfaces
// as a *engine.ConfigRejectedError, so baseline tuners can uniformly detect
// unusable configurations with errors.As.
func TestApplyConfigRejectionWrapping(t *testing.T) {
	db, _ := setup(t)

	if err := ApplyConfig(db, &engine.Config{ID: "ok", Params: map[string]string{"work_mem": "64MB"}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	var rej *engine.ConfigRejectedError
	err := ApplyConfig(db, &engine.Config{ID: "bad", Params: map[string]string{"shared_buffers": "lots"}})
	if !errors.As(err, &rej) {
		t.Fatalf("bad value error is %T (%v), want *engine.ConfigRejectedError", err, err)
	}

	rej = nil
	err = ApplyConfig(db, &engine.Config{ID: "unk", Params: map[string]string{"no_such_parameter": "1"}})
	if !errors.As(err, &rej) {
		t.Fatalf("unknown parameter error is %T (%v), want *engine.ConfigRejectedError", err, err)
	}

	// A backend whose ApplyConfig fails with an arbitrary error still yields
	// the typed rejection, with the cause preserved for errors.Is.
	cause := errors.New("connection reset")
	rej = nil
	err = ApplyConfig(failingBackend{Sim: db, err: cause}, &engine.Config{ID: "opaque"})
	if !errors.As(err, &rej) {
		t.Fatalf("opaque backend error is %T (%v), want *engine.ConfigRejectedError", err, err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("wrapped rejection lost its cause: %v", err)
	}
	if rej.Stmt != "opaque" {
		t.Errorf("rejection Stmt = %q, want config ID", rej.Stmt)
	}
}

// failingBackend rejects every configuration with a fixed untyped error.
type failingBackend struct {
	*backend.Sim
	err error
}

func (f failingBackend) ApplyConfig(*engine.Config) error { return f.err }

func TestEvaluateTimeout(t *testing.T) {
	db, w := setup(t)
	cfg := &engine.Config{ID: "c", Params: map[string]string{}}
	_, complete := Evaluate(db, w.Queries, cfg, EvalOptions{Timeout: 0.1})
	if complete {
		t.Fatal("workload cannot complete under a 0.1s timeout")
	}
}

func TestEvaluateDropsPreviousIndexes(t *testing.T) {
	db, w := setup(t)
	c1 := &engine.Config{ID: "c1", Params: map[string]string{},
		Indexes: []engine.IndexDef{engine.NewIndexDef("lineitem", "l_orderkey")}}
	Evaluate(db, w.Queries[:1], c1, EvalOptions{})
	c2 := &engine.Config{ID: "c2", Params: map[string]string{}}
	Evaluate(db, w.Queries[:1], c2, EvalOptions{})
	if len(db.Indexes()) != 0 {
		t.Errorf("c1 indexes leaked into c2 trial: %v", db.Indexes())
	}
}

func TestTraceRecord(t *testing.T) {
	tr := NewTrace("x")
	cfg := &engine.Config{ID: "a"}
	tr.Record(1, cfg, 10, true)
	tr.Record(2, cfg, 20, true) // worse: no event
	tr.Record(3, cfg, 5, false) // incomplete: no event
	tr.Record(4, cfg, 8, true)  // better
	if tr.Evaluated != 4 {
		t.Errorf("evaluated: %d", tr.Evaluated)
	}
	if tr.BestTime != 8 || len(tr.Events) != 2 {
		t.Errorf("best=%v events=%d", tr.BestTime, len(tr.Events))
	}
}

func TestTraceEmpty(t *testing.T) {
	tr := NewTrace("x")
	if !math.IsInf(tr.BestTime, 1) || tr.BestConfig != nil {
		t.Error("empty trace not at +Inf")
	}
}

func TestSampleQueries(t *testing.T) {
	_, w := setup(t)
	s := SampleQueries(w.Queries, 0.2, 1)
	if len(s) < 1 || len(s) >= len(w.Queries) {
		t.Errorf("sample size: %d of %d", len(s), len(w.Queries))
	}
	full := SampleQueries(w.Queries, 1.0, 1)
	if len(full) != len(w.Queries) {
		t.Error("fraction 1 must return all")
	}
}

func TestKnobSpaceCoversParams(t *testing.T) {
	knobs := KnobSpace(engine.Postgres, engine.DefaultHardware)
	names := map[string]bool{}
	for _, k := range knobs {
		names[k.Name] = true
		if len(k.Levels) < 2 {
			t.Errorf("knob %s has %d levels", k.Name, len(k.Levels))
		}
		for i := 1; i < len(k.Levels); i++ {
			if k.Levels[i] <= k.Levels[i-1] {
				t.Errorf("knob %s levels not ascending: %v", k.Name, k.Levels)
			}
		}
	}
	for _, want := range []string{"shared_buffers", "work_mem", "random_page_cost"} {
		if !names[want] {
			t.Errorf("knob space missing %s", want)
		}
	}
}

func TestKnobFormatParseable(t *testing.T) {
	pc := engine.Params(engine.Postgres)
	for _, k := range KnobSpace(engine.Postgres, engine.DefaultHardware) {
		for _, lv := range k.Levels {
			if _, err := pc.ParseValue(k.Name, k.Format(lv)); err != nil {
				t.Errorf("knob %s level %v formats unparseable %q: %v", k.Name, lv, k.Format(lv), err)
			}
		}
	}
}

func TestCandidateIndexes(t *testing.T) {
	db, w := setup(t)
	cands := CandidateIndexes(db.Catalog(), w.Queries)
	if len(cands) < 10 {
		t.Fatalf("candidates: %d", len(cands))
	}
	keys := map[string]bool{}
	for _, c := range cands {
		if keys[c.Key()] {
			t.Errorf("duplicate candidate %s", c.Key())
		}
		keys[c.Key()] = true
		if db.Catalog().Table(c.Table) == nil {
			t.Errorf("candidate on unknown table: %v", c)
		}
	}
	if !keys["lineitem(l_orderkey)"] {
		t.Error("join-column candidate missing")
	}
	if !keys["lineitem(l_shipdate)"] {
		t.Error("filter-column candidate missing")
	}
}
