package llamatune

import (
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestLlamaTuneImproves(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tr := New(9).Tune(db, w.Queries, 30000)
	if math.IsInf(tr.BestTime, 1) {
		t.Fatal("LlamaTune found nothing")
	}
	if tr.BestTime >= defaultTime*1.05 {
		t.Errorf("best %v much worse than default %v", tr.BestTime, defaultTime)
	}
}

func TestLlamaTuneSampleEfficient(t *testing.T) {
	// Dimensionality reduction means few, expensive full-workload trials —
	// far fewer than UDO's sample-based count in the same budget.
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tr := New(9).Tune(db, w.Queries, 10000)
	if tr.Evaluated > 200 {
		t.Errorf("too many trials for a projection-based tuner: %d", tr.Evaluated)
	}
}

func TestLlamaTuneConfigsParseable(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	tr := New(9).Tune(db, w.Queries, 5000)
	if tr.BestConfig == nil {
		t.Skip("nothing completed in budget")
	}
	if _, err := tr.BestConfig.ResolveSettings(engine.Postgres); err != nil {
		t.Errorf("best config unresolvable: %v", err)
	}
}
