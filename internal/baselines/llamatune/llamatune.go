// Package llamatune reimplements LlamaTune (Kanellis et al., 2022):
// sample-efficient DBMS configuration tuning via low-dimensional random
// projection. The optimizer searches a d-dimensional continuous space; a
// fixed random linear projection (HeSBO-style) maps points to the full knob
// space, and special values are biased toward knob defaults.
package llamatune

import (
	"fmt"
	"math"
	"math/rand"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Tuner is the LlamaTune baseline.
type Tuner struct {
	Seed        int64
	EvalTimeout float64
	// Dim is the projected search-space dimensionality (paper uses 16).
	Dim int
	// BiasDefault is the probability a knob snaps to its default value
	// (LlamaTune's special-value biasing).
	BiasDefault float64
	// MaxTrials caps the optimizer iterations; the paper's evaluation
	// observes 10-19 completed trials per run.
	MaxTrials int
}

// New returns LlamaTune with published defaults.
func New(seed int64) *Tuner { return &Tuner{Seed: seed, Dim: 16, BiasDefault: 0.2, MaxTrials: 20} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "LlamaTune" }

// Tune implements baselines.Tuner: sequential search in the projected space
// with incumbent-guided refinement. LlamaTune is sample-efficient — few
// trials — but explores the raw (un-pruned) knob space, so individual trials
// can be very bad; the paper's Table 3 shows it winning some scenarios and
// losing badly in others.
func (t *Tuner) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	tr := baselines.NewTrace(t.Name())
	rng := rand.New(rand.NewSource(t.Seed))
	knobs := baselines.KnobSpace(db.Flavor(), db.Hardware())
	d := t.Dim
	if d <= 0 {
		d = 16
	}
	// HeSBO projection: each knob maps to a (dimension, sign) pair.
	dim := make([]int, len(knobs))
	sign := make([]float64, len(knobs))
	for i := range knobs {
		dim[i] = rng.Intn(d)
		if rng.Float64() < 0.5 {
			sign[i] = -1
		} else {
			sign[i] = 1
		}
	}

	incumbent := make([]float64, d) // points live in [-1, 1]^d
	bestTime := math.Inf(1)
	trial := 0
	for db.Clock().Now() < deadline && (t.MaxTrials <= 0 || trial < t.MaxTrials) {
		trial++
		if trial == 1 {
			// SMAC evaluates the default configuration first.
			cfg := &engine.Config{ID: "llamatune-default", Params: map[string]string{}}
			time, complete := baselines.Evaluate(db, queries, cfg, baselines.EvalOptions{Timeout: t.EvalTimeout})
			tr.Record(db.Clock().Now(), cfg, time, complete)
			if complete {
				bestTime = time
			}
			continue
		}
		point := make([]float64, d)
		if math.IsInf(bestTime, 1) || rng.Float64() < 0.4 {
			for j := range point {
				point[j] = rng.Float64()*2 - 1
			}
		} else {
			for j := range point {
				point[j] = clamp(incumbent[j]+(rng.Float64()*2-1)*0.3, -1, 1)
			}
		}
		cfg := t.project(fmt.Sprintf("llamatune-%d", trial), knobs, dim, sign, point, rng)
		time, complete := baselines.Evaluate(db, queries, cfg, baselines.EvalOptions{Timeout: t.EvalTimeout})
		tr.Record(db.Clock().Now(), cfg, time, complete)
		if complete && time < bestTime {
			bestTime = time
			copy(incumbent, point)
		}
	}
	return tr
}

// project maps a low-dimensional point to a full configuration: each knob
// reads its assigned dimension (sign-flipped), rescaled from [-1,1] to the
// knob's level range, with default-value biasing.
func (t *Tuner) project(id string, knobs []baselines.Knob, dim []int, sign []float64, point []float64, rng *rand.Rand) *engine.Config {
	cfg := &engine.Config{ID: id, Params: map[string]string{}}
	for i, k := range knobs {
		if rng.Float64() < t.BiasDefault {
			continue // biased to default: leave unset
		}
		v := sign[i] * point[dim[i]] // in [-1, 1]
		u := (v + 1) / 2             // in [0, 1]
		level := k.Levels[int(u*float64(len(k.Levels)-1)+0.5)]
		if level == k.Def.Default {
			continue
		}
		cfg.Params[k.Name] = k.Format(level)
	}
	return cfg
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
