package baselines

import (
	"fmt"
	"sort"

	"lambdatune/internal/engine"
)

// Knob is one tunable parameter with the discrete value levels that the
// search-based baselines explore.
type Knob struct {
	Name string
	// Levels are candidate values in the parameter's native numeric domain
	// (bytes for size parameters), ascending.
	Levels []float64
	// Def is the underlying parameter definition.
	Def engine.ParamDef
}

// Format renders a level as the value string a configuration script uses.
func (k Knob) Format(level float64) string {
	switch k.Def.Type {
	case engine.TypeBytes:
		return engine.FormatBytes(int64(level))
	case engine.TypeBool:
		if level != 0 {
			return "on"
		}
		return "off"
	case engine.TypeInt:
		return fmt.Sprintf("%d", int64(level))
	}
	return fmt.Sprintf("%g", level)
}

// KnobSpace builds the discrete search space for a flavor on the given
// hardware: for each parameter, a handful of levels spanning default to a
// hardware-proportional maximum. This mirrors how the baselines' published
// implementations discretize continuous knobs.
func KnobSpace(f engine.Flavor, hw engine.Hardware) []Knob {
	pc := engine.Params(f)
	var knobs []Knob
	for _, name := range pc.Names() {
		def, _ := pc.Lookup(name)
		var levels []float64
		switch def.Type {
		case engine.TypeBool:
			levels = []float64{0, 1}
		case engine.TypeBytes:
			// Default ×{1,4,16,...} capped at half the machine memory.
			max := float64(hw.MemoryBytes) / 2
			if max > def.Max {
				max = def.Max
			}
			for v := def.Default; v <= max; v *= 4 {
				levels = append(levels, v)
			}
			if len(levels) < 2 {
				levels = append(levels, def.Default*2)
			}
		case engine.TypeFloat:
			levels = []float64{def.Default, def.Default / 4, def.Default / 2, def.Default * 2, def.Default * 4}
			for i := range levels {
				if levels[i] < def.Min {
					levels[i] = def.Min
				}
				if levels[i] > def.Max {
					levels[i] = def.Max
				}
			}
		default: // TypeInt
			levels = []float64{def.Default, def.Default * 2, def.Default * 4, def.Default * 8}
			for i := range levels {
				if levels[i] > def.Max {
					levels[i] = def.Max
				}
			}
		}
		sort.Float64s(levels)
		levels = dedupe(levels)
		knobs = append(knobs, Knob{Name: name, Levels: levels, Def: def})
	}
	return knobs
}

func dedupe(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// CandidateIndexes enumerates single-column index candidates from the
// workload's join and filter columns (the index-search baselines' candidate
// pool).
func CandidateIndexes(cat *engine.Catalog, queries []*engine.Query) []engine.IndexDef {
	seen := map[string]bool{}
	var out []engine.IndexDef
	add := func(table, col string) {
		t := cat.Table(table)
		if t == nil || t.Column(col) == nil {
			return
		}
		def := engine.NewIndexDef(table, col)
		if !seen[def.Key()] {
			seen[def.Key()] = true
			out = append(out, def)
		}
	}
	for _, q := range queries {
		for _, j := range q.Analysis.Joins {
			add(j.LeftTable, j.LeftColumn)
			add(j.RightTable, j.RightColumn)
		}
		for _, f := range q.Analysis.Filters {
			add(f.Table, f.Column)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key() < out[b].Key() })
	return out
}
