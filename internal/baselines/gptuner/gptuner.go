// Package gptuner reimplements GPTuner (Lao et al., 2023): GPT-guided
// Bayesian optimization. The language model first prunes each knob's domain
// to a "meaningful region" (coarse stage); a sequential model-based
// optimizer then searches the reduced space, refining around the incumbent
// (fine stage).
package gptuner

import (
	"fmt"
	"math"
	"math/rand"

	"lambdatune/internal/backend"
	"lambdatune/internal/baselines"
	"lambdatune/internal/engine"
)

// Tuner is the GPTuner baseline.
type Tuner struct {
	Seed        int64
	EvalTimeout float64
	// CoarseTrials is the number of coarse-stage samples before switching
	// to incumbent refinement.
	CoarseTrials int
	// MaxTrials caps the optimization iterations (GPTuner's published
	// SMAC budget is ~100).
	MaxTrials int
}

// New returns GPTuner with published defaults.
func New(seed int64) *Tuner { return &Tuner{Seed: seed, CoarseTrials: 30, MaxTrials: 100} }

// Name implements baselines.Tuner.
func (t *Tuner) Name() string { return "GPTuner" }

// region is the GPT-pruned value range of one knob.
type region struct {
	knob baselines.Knob
	lo   float64
	hi   float64
}

// prunedSpace encodes the knowledge-guided space reduction: for each knob the
// LLM suggests a meaningful region around best-practice values (the same
// domain knowledge DB-BERT mines; GPTuner gets it structured).
func prunedSpace(f engine.Flavor, hw engine.Hardware) []region {
	mem := float64(hw.MemoryBytes)
	var out []region
	for _, k := range baselines.KnobSpace(f, hw) {
		r := region{knob: k, lo: k.Def.Default, hi: k.Def.Default}
		switch k.Name {
		case "shared_buffers":
			// The mined region spans from the shipped default up to the
			// recommended fraction of RAM; coarse-stage samples near the
			// low end are legitimate but poor, which is what the fine
			// stage must recover from.
			r.lo, r.hi = k.Def.Default, mem*0.4
		case "effective_cache_size":
			r.lo, r.hi = k.Def.Default, mem*0.8
		case "work_mem":
			r.lo, r.hi = k.Def.Default, 2<<30
		case "maintenance_work_mem":
			r.lo, r.hi = k.Def.Default, 4<<30
		case "random_page_cost":
			r.lo, r.hi = 1.0, 2.0
		case "effective_io_concurrency":
			r.lo, r.hi = 100, 400
		case "max_parallel_workers_per_gather":
			r.lo, r.hi = 2, float64(hw.Cores)
		// MySQL coverage is shallower: GPTuner's mined documents are
		// Postgres-centric, so only the headline InnoDB knobs get a pruned
		// region; the session-level sort/join/tmp buffers that matter for
		// OLAP spills are left untuned (the paper observes GPTuner's
		// weakest results on MySQL).
		case "innodb_buffer_pool_size":
			r.lo, r.hi = k.Def.Default, mem*0.8
		case "innodb_io_capacity":
			r.lo, r.hi = 1000, 10000
		case "innodb_read_io_threads":
			r.lo, r.hi = 8, 32
		default:
			continue // GPT deems the knob not worth tuning
		}
		r.lo = clamp(r.lo, k.Def.Min, k.Def.Max)
		r.hi = clamp(r.hi, k.Def.Min, k.Def.Max)
		out = append(out, r)
	}
	return out
}

// Tune implements baselines.Tuner: coarse random sampling in the pruned
// space, then fine-grained refinement around the incumbent (a surrogate-free
// stand-in for SMAC that preserves GPTuner's observable behaviour: moderate
// trial counts, fast convergence inside a good region).
func (t *Tuner) Tune(db backend.Backend, queries []*engine.Query, deadline float64) *baselines.Trace {
	tr := baselines.NewTrace(t.Name())
	rng := rand.New(rand.NewSource(t.Seed))
	space := prunedSpace(db.Flavor(), db.Hardware())
	if len(space) == 0 {
		return tr
	}

	best := make([]float64, len(space))
	for i, r := range space {
		best[i] = (r.lo + r.hi) / 2
	}
	bestTime := math.Inf(1)
	trial := 0

	for db.Clock().Now() < deadline && (t.MaxTrials <= 0 || trial < t.MaxTrials) {
		trial++
		point := make([]float64, len(space))
		if trial <= t.CoarseTrials || math.IsInf(bestTime, 1) {
			// Coarse: uniform in the pruned region.
			for i, r := range space {
				point[i] = r.lo + rng.Float64()*(r.hi-r.lo)
			}
		} else {
			// Fine: Gaussian-ish refinement around incumbent.
			for i, r := range space {
				span := (r.hi - r.lo) * 0.15
				point[i] = clamp(best[i]+(rng.Float64()*2-1)*span, r.lo, r.hi)
			}
		}
		cfg := &engine.Config{ID: fmt.Sprintf("gptuner-%d", trial), Params: map[string]string{}}
		for i, r := range space {
			cfg.Params[r.knob.Name] = r.knob.Format(point[i])
		}
		time, complete := baselines.Evaluate(db, queries, cfg, baselines.EvalOptions{Timeout: t.EvalTimeout})
		tr.Record(db.Clock().Now(), cfg, time, complete)
		if complete && time < bestTime {
			bestTime = time
			copy(best, point)
		}
	}
	return tr
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
