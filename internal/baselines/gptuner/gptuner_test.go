package gptuner

import (
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func TestGPTunerImproves(t *testing.T) {
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tr := New(5).Tune(db, w.Queries, 20000)
	if math.IsInf(tr.BestTime, 1) {
		t.Fatal("GPTuner found nothing")
	}
	if tr.BestTime >= defaultTime {
		t.Errorf("best %v vs default %v", tr.BestTime, defaultTime)
	}
}

func TestPrunedSpaceInsideDomains(t *testing.T) {
	for _, f := range []engine.Flavor{engine.Postgres, engine.MySQL} {
		for _, r := range prunedSpace(f, engine.DefaultHardware) {
			if r.lo > r.hi {
				t.Errorf("%s: inverted region [%v, %v]", r.knob.Name, r.lo, r.hi)
			}
			if r.lo < r.knob.Def.Min || r.hi > r.knob.Def.Max {
				t.Errorf("%s: region [%v, %v] outside domain [%v, %v]",
					r.knob.Name, r.lo, r.hi, r.knob.Def.Min, r.knob.Def.Max)
			}
		}
	}
}

func TestGPTunerConvergesFasterThanWideSearch(t *testing.T) {
	// With the GPT-pruned space, the first trials should already be decent:
	// best-so-far after a short deadline beats the default configuration.
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	defaultTime := db.WorkloadSeconds(w.Queries)
	tr := New(5).Tune(db, w.Queries, defaultTime*3)
	if math.IsInf(tr.BestTime, 1) || tr.BestTime >= defaultTime {
		t.Errorf("no early improvement: best=%v default=%v", tr.BestTime, defaultTime)
	}
}
