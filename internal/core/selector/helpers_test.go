package selector

import (
	"context"

	"lambdatune/internal/engine"
)

// sel1 runs Select with a background context and drops the error, matching
// the pre-context test call sites (budget exhaustion maps to a nil best).
func sel1(s *Selector, candidates []*engine.Config) *engine.Config {
	best, _ := s.Select(context.Background(), candidates)
	return best
}
