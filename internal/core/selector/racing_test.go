package selector

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/race"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

// racingOpts returns selector options with racing enabled.
func racingOpts(parallelism int, ropts race.Options) Options {
	o := DefaultOptions()
	o.Strategy = Racing
	o.Racing = ropts
	o.Parallelism = parallelism
	return o
}

// TestRacingNoEliminationMatchesSequential is the satellite property test:
// racing with elimination disabled (a single rung over the full prefix, with
// a timeout large enough to finish it) reproduces the plain sequential
// evaluator's per-candidate timings exactly — the rung machinery adds zero
// approximation when it eliminates nobody.
func TestRacingNoEliminationMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	w := workload.TPCH(1)
	for trial := 0; trial < 6; trial++ {
		k := 2 + rng.Intn(5)
		candidates := make([]*engine.Config, k)
		for i := range candidates {
			candidates[i] = randomConfig(rng, fmt.Sprintf("ne%d-%d", trial, i))
		}

		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		opts := racingOpts(1, race.Options{DisableElimination: true})
		opts.InitialTimeout = 1e9 // one rung finishes every candidate
		s := New(evaluator.New(db), w.Queries, opts)
		best := sel1(s, candidates)
		if best == nil {
			t.Fatalf("trial %d: no configuration selected", trial)
		}

		// Ground truth: each candidate measured exhaustively on a fresh
		// instance by the plain evaluator.
		gt := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		eval := evaluator.New(gt)
		for i, c := range candidates {
			m := evaluator.NewConfigMeta()
			if err := eval.Apply(c); err != nil {
				if s.Metas[c].IsComplete {
					t.Errorf("trial %d cand %d: unusable config marked complete", trial, i)
				}
				continue
			}
			eval.Evaluate(context.Background(), c, w.Queries, math.Inf(1), m)
			got := s.Metas[c]
			if got.Time != m.Time {
				t.Errorf("trial %d cand %s: racing time %v != sequential %v",
					trial, c.ID, got.Time, m.Time)
			}
			if len(got.Completed) != len(m.Completed) {
				t.Errorf("trial %d cand %s: racing completed %d != sequential %d",
					trial, c.ID, len(got.Completed), len(m.Completed))
			}
			var sum float64
			for _, secs := range got.QueryTimes {
				sum += secs
			}
			if math.Abs(sum-got.Time) > 1e-9 {
				t.Errorf("trial %d cand %s: QueryTimes sum %v != Time %v",
					trial, c.ID, sum, got.Time)
			}
		}
	}
}

// TestRacingSelectsExactOptimumAmongSurvivors: the racing winner's reported
// time is exact — it equals the plain evaluator's full-workload measurement
// for that configuration (the final pass is paper-faithful).
func TestRacingWinnerTimeIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	w := workload.TPCH(1)
	for trial := 0; trial < 6; trial++ {
		k := 4 + rng.Intn(6)
		candidates := make([]*engine.Config, k)
		for i := range candidates {
			candidates[i] = randomConfig(rng, fmt.Sprintf("ex%d-%d", trial, i))
		}
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		s := New(evaluator.New(db), w.Queries, racingOpts(1, race.Options{}))
		best := sel1(s, candidates)
		if best == nil {
			t.Fatalf("trial %d: no configuration selected", trial)
		}
		m := s.Metas[best]
		if !m.IsComplete || len(m.Completed) != len(w.Queries) {
			t.Fatalf("trial %d: winner incomplete: %d/%d", trial, len(m.Completed), len(w.Queries))
		}

		gt := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		eval := evaluator.New(gt)
		gm := evaluator.NewConfigMeta()
		if err := eval.Apply(best); err != nil {
			t.Fatalf("trial %d: winner unusable: %v", trial, err)
		}
		eval.Evaluate(context.Background(), best, w.Queries, math.Inf(1), gm)
		if m.Time != gm.Time {
			t.Errorf("trial %d: winner time %v != exact measurement %v", trial, m.Time, gm.Time)
		}
	}
}

// TestRacingParallelismInvariance: same seed, any Parallelism — identical
// eliminations (checkpointed survivor sets), identical winner, identical
// winner time.
func TestRacingParallelismInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	w := workload.TPCH(1)
	k := 9
	candidates := make([]*engine.Config, k)
	for i := range candidates {
		candidates[i] = randomConfig(rng, fmt.Sprintf("pi-%d", i))
	}

	type outcome struct {
		bestID    string
		bestTime  float64
		survivors [][]string
	}
	runAt := func(p int) outcome {
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		s := New(evaluator.New(db), w.Queries, racingOpts(p, race.Options{}))
		var survivors [][]string
		s.OnCheckpoint = func(rs *RoundState) error {
			if rs.Race != nil {
				survivors = append(survivors, append([]string(nil), rs.Race.Survivors...))
			}
			return nil
		}
		best := sel1(s, candidates)
		if best == nil {
			t.Fatalf("p=%d: no configuration selected", p)
		}
		return outcome{bestID: best.ID, bestTime: s.Metas[best].Time, survivors: survivors}
	}

	ref := runAt(1)
	for _, p := range []int{2, 4, 8} {
		got := runAt(p)
		if got.bestID != ref.bestID || got.bestTime != ref.bestTime {
			t.Errorf("p=%d: best %s (%v) != p=1 best %s (%v)",
				p, got.bestID, got.bestTime, ref.bestID, ref.bestTime)
		}
		if len(got.survivors) != len(ref.survivors) {
			t.Fatalf("p=%d: %d rung checkpoints != p=1's %d", p, len(got.survivors), len(ref.survivors))
		}
		for r := range ref.survivors {
			if fmt.Sprint(got.survivors[r]) != fmt.Sprint(ref.survivors[r]) {
				t.Errorf("p=%d rung %d: survivors %v != %v", p, r, got.survivors[r], ref.survivors[r])
			}
		}
	}
}

// TestRacingEliminationShrinksEvaluation: racing must evaluate strictly
// fewer query-seconds than full evaluation on the same candidate set (the
// whole point), while still returning a complete configuration.
func TestRacingReducesEvaluatedWork(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	w := workload.TPCH(1)
	k := 12
	candidates := make([]*engine.Config, k)
	for i := range candidates {
		candidates[i] = randomConfig(rng, fmt.Sprintf("rw-%d", i))
	}
	run := func(strategy Strategy) (float64, string) {
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		opts := DefaultOptions()
		opts.Strategy = strategy
		s := New(evaluator.New(db), w.Queries, opts)
		best := sel1(s, candidates)
		if best == nil {
			t.Fatal("no configuration selected")
		}
		return db.Clock().Now(), best.ID
	}
	fullClock, _ := run(FullEvaluation)
	raceClock, raceBest := run(Racing)
	if raceClock >= fullClock {
		t.Errorf("racing spent %.1f virtual seconds, full evaluation %.1f — no saving", raceClock, fullClock)
	}
	if raceBest == "" {
		t.Error("racing returned empty best id")
	}
}

// TestRacingResumeAtRungBoundary: a run killed at each rung-boundary
// checkpoint and resumed from it must reproduce the uninterrupted run's
// winner, winner time, and elimination sequence.
func TestRacingResumeAtRungBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	w := workload.TPCH(1)
	k := 8
	candidates := make([]*engine.Config, k)
	for i := range candidates {
		candidates[i] = randomConfig(rng, fmt.Sprintf("rb-%d", i))
	}

	// Uninterrupted reference, collecting every checkpoint.
	var saved []*RoundState
	dbRef := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	sRef := New(evaluator.New(dbRef), w.Queries, racingOpts(1, race.Options{}))
	sRef.OnCheckpoint = func(rs *RoundState) error {
		saved = append(saved, cloneRoundState(rs))
		return nil
	}
	bestRef := sel1(sRef, candidates)
	if bestRef == nil {
		t.Fatal("reference: no configuration selected")
	}
	refTime := sRef.Metas[bestRef].Time

	for i, ckpt := range saved {
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		s := New(evaluator.New(db), w.Queries, racingOpts(1, race.Options{}))
		s.Resume(ckpt)
		best := sel1(s, candidates)
		if best == nil {
			t.Fatalf("resume from checkpoint %d: no configuration selected", i)
		}
		if best.ID != bestRef.ID || s.Metas[best].Time != refTime {
			t.Errorf("resume from checkpoint %d: best %s (%v) != reference %s (%v)",
				i, best.ID, s.Metas[best].Time, bestRef.ID, refTime)
		}
	}
}

// cloneRoundState deep-copies a checkpoint the way the durable store's
// encode/decode round trip would, so resuming from it cannot alias the live
// run's bookkeeping.
func cloneRoundState(rs *RoundState) *RoundState {
	cp := &RoundState{
		Round: rs.Round, Timeout: rs.Timeout,
		BestID: rs.BestID, BestTime: rs.BestTime,
		Metas: map[string]*evaluator.ConfigMeta{},
		Race:  rs.Race.Clone(),
	}
	for id, m := range rs.Metas {
		if m == nil {
			continue
		}
		nm := evaluator.NewConfigMeta()
		nm.Time = m.Time
		nm.IsComplete = m.IsComplete
		nm.IndexTime = m.IndexTime
		nm.Aborts = m.Aborts
		for q, done := range m.Completed {
			if done {
				nm.Completed[q] = true
			}
		}
		if len(m.QueryTimes) > 0 {
			nm.QueryTimes = map[string]float64{}
			for q, secs := range m.QueryTimes {
				nm.QueryTimes[q] = secs
			}
		}
		cp.Metas[id] = nm
	}
	return cp
}
