package selector

import (
	"testing"

	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/engine"
)

// TestCheckpointAfterRounds verifies a finished run leaves a usable
// checkpoint behind: round count, next timeout, and per-config progress.
func TestCheckpointAfterRounds(t *testing.T) {
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	g, b := good(), bad()
	if sel1(s, []*engine.Config{b, g}) != g {
		t.Fatal("selection failed")
	}
	st := s.Checkpoint()
	if st == nil {
		t.Fatal("no checkpoint after Select")
	}
	if st.Round < 1 || st.Timeout <= 0 {
		t.Fatalf("checkpoint = round %d timeout %v", st.Round, st.Timeout)
	}
	if st.Metas["good"] == nil || st.Metas["bad"] == nil {
		t.Fatalf("checkpoint metas missing entries: %v", st.Metas)
	}
	if st.Metas["good"] != s.Metas[g] {
		t.Fatal("checkpoint must share the live bookkeeping")
	}
}

// TestResumeSkipsCompletedWork is the aborted-round scenario: a first run is
// cut off by MaxRounds, its checkpoint feeds a second selector, and the
// second run finishes without re-executing the queries the first one
// completed.
func TestResumeSkipsCompletedWork(t *testing.T) {
	db, qs := setup(t)
	g, b := good(), bad()

	// First run: far too few rounds to complete any configuration.
	opts := DefaultOptions()
	opts.MaxRounds = 1
	s1 := New(evaluator.New(db), qs, opts)
	if best := sel1(s1, []*engine.Config{b, g}); best != nil {
		t.Fatalf("round-capped run should not finish, got %v", best)
	}
	st := s1.Checkpoint()
	if st == nil || st.Round != 1 {
		t.Fatalf("checkpoint = %+v", st)
	}
	doneBefore := len(st.Metas["good"].Completed) + len(st.Metas["bad"].Completed)
	execBefore := db.Executions()

	// Second run resumes on the same database with re-parsed candidates
	// (fresh pointers, same IDs — matching is by ID).
	g2, b2 := good(), bad()
	s2 := New(evaluator.New(db), qs, DefaultOptions())
	s2.Resume(st)
	best := sel1(s2, []*engine.Config{b2, g2})
	if best != g2 {
		t.Fatalf("resumed run selected %v", best)
	}
	// Progress carried over: the resumed metas are the checkpointed ones.
	if s2.Metas[g2] != st.Metas["good"] {
		t.Fatal("resumed run did not adopt checkpointed bookkeeping")
	}
	if doneBefore > 0 && db.Executions() == execBefore {
		t.Fatal("resumed run executed nothing, yet queries were still open")
	}
}

// TestResumeMatchesFreshRunResult checks resuming does not change the
// selected winner compared to an uninterrupted run.
func TestResumeMatchesFreshRunResult(t *testing.T) {
	// Uninterrupted reference run.
	dbA, qsA := setup(t)
	sA := New(evaluator.New(dbA), qsA, DefaultOptions())
	gA, bA := good(), bad()
	bestA := sel1(sA, []*engine.Config{bA, gA})

	// Interrupted-and-resumed run.
	dbB, qsB := setup(t)
	opts := DefaultOptions()
	opts.MaxRounds = 1
	s1 := New(evaluator.New(dbB), qsB, opts)
	g1, b1 := good(), bad()
	sel1(s1, []*engine.Config{b1, g1})
	s2 := New(evaluator.New(dbB), qsB, DefaultOptions())
	s2.Resume(s1.Checkpoint())
	bestB := sel1(s2, []*engine.Config{b1, g1})

	if bestA.ID != bestB.ID {
		t.Fatalf("fresh run picked %s, resumed run picked %s", bestA.ID, bestB.ID)
	}
	if tA, tB := sA.Metas[bestA].Time, s2.Metas[bestB].Time; tA != tB {
		t.Fatalf("winner times differ: %v vs %v", tA, tB)
	}
}

// TestResumeRestoresTimeoutSchedule verifies the resumed run continues the
// geometric schedule instead of restarting at InitialTimeout.
func TestResumeRestoresTimeoutSchedule(t *testing.T) {
	db, qs := setup(t)
	opts := DefaultOptions()
	opts.MaxRounds = 2
	s1 := New(evaluator.New(db), qs, opts)
	sel1(s1, []*engine.Config{bad()})
	st := s1.Checkpoint()
	if st == nil {
		t.Fatal("no checkpoint")
	}
	if st.Timeout <= opts.InitialTimeout {
		t.Fatalf("checkpoint timeout %v should exceed the initial %v",
			st.Timeout, opts.InitialTimeout)
	}
}
