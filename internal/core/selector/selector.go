// Package selector implements λ-Tune's configuration selection component
// (paper §4, Algorithm 2): candidate configurations are evaluated in rounds
// under geometrically increasing timeouts, with reconfiguration-aware
// timeout adaptation and best-configuration-based timeout tightening. The
// scheme bounds total tuning time by O(k·α·C_best) — Theorem 4.3.
//
// With Options.Parallelism > 1 the candidates of each round are evaluated
// concurrently by an evaluator.Pool, one engine snapshot per worker; the
// round's elapsed tuning time is the max over workers (N parallel DBMS
// replicas). Selection decisions are parallelism-invariant: every
// parallelism picks the same best configuration with the same workload time,
// because the winner is always the candidate with the minimal full-workload
// execution time among those that can complete (see DESIGN.md §7 for the
// argument). Parallelism 1 follows the sequential path byte-identically.
package selector

import (
	"context"
	"errors"
	"math"
	"sort"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/race"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// Strategy selects how candidates are evaluated.
type Strategy int

const (
	// FullEvaluation is the paper's Algorithm 2 verbatim: every candidate
	// races the full workload under the geometric timeout schedule.
	FullEvaluation Strategy = iota
	// Racing evaluates candidates on growing DP-schedule prefixes and
	// eliminates the surrogate-dominated half each rung, reserving the exact
	// Algorithm 2 pass for the final survivors (see the race package).
	Racing
)

// ErrBudgetExhausted reports that the evaluation budget (Options.MaxRounds)
// was exhausted before any candidate completed the workload. The selector's
// checkpoint remains valid: feed it to Resume with a larger budget to
// continue instead of restarting.
var ErrBudgetExhausted = errors.New("selector: evaluation budget exhausted before any candidate completed")

// Best tracks the best fully evaluated configuration.
type Best struct {
	Time   float64
	Config *engine.Config
}

// ProgressEvent records tuning progress for convergence plots: at virtual
// time Clock, the best known full-workload execution time was BestTime.
type ProgressEvent struct {
	Clock    float64
	BestTime float64
	ConfigID string
}

// Options configures the selector.
type Options struct {
	// InitialTimeout is t, the first round's per-configuration timeout in
	// simulated seconds (paper §6.1 uses 10).
	InitialTimeout float64
	// Alpha is the geometric timeout growth factor (paper §6.1 uses 10;
	// Theorem 4.3 requires α ≥ 2).
	Alpha float64
	// AdaptiveTimeout enables the reconfiguration-overhead adaptation of
	// Algorithm 2 line 14 (the §6.4.1 ablation switches it off).
	AdaptiveTimeout bool
	// MaxRounds caps the number of rounds as a safety valve (0 = unlimited).
	MaxRounds int
	// Parallelism is the number of concurrent evaluation workers (simulated
	// DBMS replicas). 0 or 1 evaluates sequentially, reproducing the
	// single-instance results byte-identically; higher values evaluate each
	// round's candidates concurrently with identical selection decisions.
	// When a fault injector is installed on the database the selector always
	// uses the sequential path — injected fault sequences are defined on the
	// primary instance's clock and cannot be replayed across replicas.
	Parallelism int
	// Strategy selects full (paper-exact) or racing evaluation. Racing is
	// off by default; the selected configuration's reported workload time is
	// exact under both strategies.
	Strategy Strategy
	// Racing tunes the racing strategy (zero value = race.DefaultOptions).
	Racing race.Options
}

// DefaultOptions matches the paper's experimental setup.
func DefaultOptions() Options {
	return Options{InitialTimeout: 10, Alpha: 10, AdaptiveTimeout: true}
}

// RoundState is the selector's resumable checkpoint: the bookkeeping of a
// run that was interrupted (round cap, crash, cancellation, injected
// faults). Feeding it back via Resume continues evaluation from the last
// finished round instead of restarting — completed queries are never
// re-executed, and the timeout schedule picks up where it stopped.
type RoundState struct {
	// Round is the number of evaluation rounds already finished.
	Round int
	// Timeout is the next round's per-configuration timeout.
	Timeout float64
	// BestID / BestTime record the best fully evaluated configuration at
	// checkpoint time ("" = none yet). A checkpoint taken after the
	// completion round restores the best directly, so the resumed run jumps
	// straight to the tightened final pass — exactly where the uninterrupted
	// run was — instead of re-running a round the original never ran.
	BestID   string
	BestTime float64
	// Metas carries per-configuration progress, keyed by Config.ID (IDs,
	// not pointers, so a checkpoint survives re-parsing the candidates).
	Metas map[string]*evaluator.ConfigMeta
	// Race is the racing strategy's rung bookkeeping (nil for full
	// evaluation): which rung to run next and who is still in the race. A
	// resumed racing run re-enters the ladder at the checkpointed rung with
	// the checkpointed survivor set.
	Race *race.State
}

// Selector runs Algorithm 2 over a fixed workload and candidate set.
type Selector struct {
	Eval     *evaluator.Evaluator
	Workload []*engine.Query
	Opts     Options
	// Metas exposes the per-configuration bookkeeping after Select returns.
	Metas map[*engine.Config]*evaluator.ConfigMeta
	// Progress records best-so-far events on the virtual clock.
	Progress []ProgressEvent

	// Trace/Span/Reporter/Metrics are the optional telemetry hooks the
	// tuner installs after New: Span is the "selection" span rounds nest
	// under, Reporter receives live round/candidate narration (emitted only
	// from the coordinating goroutine, so event order is deterministic),
	// Metrics feeds the tuner_* counters. All nil-safe.
	Trace    *obs.Tracer
	Span     *obs.Span
	Reporter obs.ProgressSink
	Metrics  *obs.Registry

	// OnCheckpoint, when set, runs after every round-state save — the tuner
	// installs the durable-checkpoint writer here. A non-nil error aborts
	// the selection with that error (the in-memory checkpoint is already
	// recorded, so the partial run stays resumable).
	OnCheckpoint func(*RoundState) error

	resume *RoundState
	state  *RoundState
	// raceState is the live racing bookkeeping, cloned into every saved
	// RoundState (nil under full evaluation).
	raceState *race.State
}

// New creates a selector.
func New(eval *evaluator.Evaluator, w []*engine.Query, opts Options) *Selector {
	return &Selector{Eval: eval, Workload: w, Opts: opts}
}

// Resume installs a checkpoint from an earlier interrupted run; the next
// Select call continues from it. Candidates are matched to checkpointed
// progress by Config.ID.
func (s *Selector) Resume(st *RoundState) { s.resume = st }

// Checkpoint returns the selector's current round state (nil before any
// round ran). It shares the live ConfigMeta bookkeeping, so it reflects all
// progress up to the moment Select returned — including partial progress of
// a round that was interrupted by cancellation.
func (s *Selector) Checkpoint() *RoundState { return s.state }

// saveState records the checkpoint after a finished round, marks the save
// on the selection span, and hands the state to the OnCheckpoint hook (the
// durable writer). The hook's error is returned so a failed durable write —
// or a chaos-harness kill point — aborts the selection.
func (s *Selector) saveState(candidates []*engine.Config, rounds int, timeout float64, best *Best) error {
	st := &RoundState{Round: rounds, Timeout: timeout, Metas: map[string]*evaluator.ConfigMeta{}, Race: s.raceState.Clone()}
	if best != nil && best.Config != nil && !math.IsInf(best.Time, 1) {
		st.BestID = best.Config.ID
		st.BestTime = best.Time
	}
	for _, c := range candidates {
		st.Metas[c.ID] = s.Metas[c]
	}
	s.state = st
	s.Span.Event("checkpoint", s.Eval.DB.Clock().Now(),
		obs.Int("round", rounds), obs.Float("timeout", timeout))
	if s.OnCheckpoint != nil {
		return s.OnCheckpoint(st)
	}
	return nil
}

// resumedBest restores the checkpointed best-so-far configuration, or an
// infinite sentinel when the checkpoint predates any completion.
func (s *Selector) resumedBest(candidates []*engine.Config) Best {
	best := Best{Time: math.Inf(1)}
	if s.resume != nil && s.resume.BestID != "" {
		for _, c := range candidates {
			if c.ID == s.resume.BestID {
				best = Best{Time: s.resume.BestTime, Config: c}
				break
			}
		}
	}
	return best
}

// incomplete lists the candidates whose bookkeeping has not completed the
// workload, in original candidate order — the "remaining" set of the
// tightened final pass when resuming past the completion round.
func (s *Selector) incomplete(cs []*engine.Config) []*engine.Config {
	var out []*engine.Config
	for _, c := range cs {
		if m := s.Metas[c]; m == nil || !m.IsComplete {
			out = append(out, c)
		}
	}
	return out
}

// startRound opens one round's span under the selection span and narrates
// it; nil-safe when tracing is off.
func (s *Selector) startRound(round int, timeout float64) *obs.Span {
	now := s.Eval.DB.Clock().Now()
	s.Metrics.Counter("tuner_rounds_total").Inc()
	obs.Emitf(s.Reporter, now, "round", "round %d: per-candidate timeout %.4gs", round, timeout)
	if s.Span == nil {
		return nil
	}
	return s.Trace.Start(s.Span, "round", now, obs.Int("round", round), obs.Float("timeout", timeout))
}

// adaptTimeout applies Algorithm 2 line 14 (index-time-aware timeout
// adaptation) and records the adjustment as a round-span event.
func (s *Selector) adaptTimeout(candidates []*engine.Config, t float64, roundSpan *obs.Span) float64 {
	if !s.Opts.AdaptiveTimeout {
		return t
	}
	t0 := t
	for _, c := range candidates {
		if it := s.Metas[c].IndexTime; it > t {
			t = it
		}
	}
	if t > t0 {
		now := s.Eval.DB.Clock().Now()
		roundSpan.Event("timeout.adapted", now, obs.Float("from", t0), obs.Float("to", t))
		obs.Emitf(s.Reporter, now, "timeout", "timeout adapted %.4gs -> %.4gs (index creation dominates)", t0, t)
	}
	return t
}

// noteBest narrates and gauges a new best-so-far configuration.
func (s *Selector) noteBest(id string, time float64) {
	now := s.Eval.DB.Clock().Now()
	obs.Emitf(s.Reporter, now, "best", "new best %s: workload %.4gs", id, time)
	s.Metrics.Gauge("tuner_best_seconds").Set(time)
}

// Select is Algorithm 2 (ConfigSelect): it returns the configuration with
// the minimal full-workload execution time among the candidates.
//
// Errors: ctx cancellation returns ctx's error (with a valid checkpoint for
// resuming); exceeding Options.MaxRounds before any candidate completes
// returns ErrBudgetExhausted. Both leave the partial bookkeeping in Metas.
// An empty candidate list returns (nil, nil).
func (s *Selector) Select(ctx context.Context, candidates []*engine.Config) (*engine.Config, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.Metas = make(map[*engine.Config]*evaluator.ConfigMeta, len(candidates))
	for _, c := range candidates {
		if s.resume != nil {
			if m, ok := s.resume.Metas[c.ID]; ok && m != nil {
				s.Metas[c] = m
				continue
			}
		}
		s.Metas[c] = evaluator.NewConfigMeta()
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	t := s.Opts.InitialTimeout
	if t <= 0 {
		t = 10
	}
	alpha := s.Opts.Alpha
	if alpha < 2 {
		alpha = 2
	}
	rounds := 0
	if s.resume != nil {
		// Continue the interrupted run's timeout schedule instead of
		// replaying the finished rounds.
		if s.resume.Timeout > 0 {
			t = s.resume.Timeout
		}
		rounds = s.resume.Round
	}

	if s.Opts.Strategy == Racing {
		return s.selectRacing(ctx, candidates, t, alpha, rounds)
	}
	if s.parallelOK() {
		return s.selectParallel(ctx, candidates, t, alpha, rounds)
	}
	return s.selectSequential(ctx, candidates, t, alpha, rounds)
}

// parallelOK reports whether snapshot-parallel evaluation applies: requested
// and no fault injector pinning the run to the primary clock.
func (s *Selector) parallelOK() bool {
	return s.Opts.Parallelism > 1 && !backend.HasFaultInjector(s.Eval.DB)
}

// selectSequential is the single-instance path: one shared database, one
// clock, candidates evaluated in throughput order with an early break on the
// first completion. This is the paper's Algorithm 2 verbatim; Parallelism=1
// runs reproduce pre-parallelism results byte-identically.
func (s *Selector) selectSequential(ctx context.Context, candidates []*engine.Config, t, alpha float64, rounds int) (*engine.Config, error) {
	best := s.resumedBest(candidates)
	var remaining []*engine.Config
	if !math.IsInf(best.Time, 1) {
		// Resumed past the completion round: the best is known, and only the
		// tightened final pass remains — exactly where the uninterrupted run
		// stood after its post-completion checkpoint.
		remaining = s.incomplete(candidates)
	}
	for math.IsInf(best.Time, 1) {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(err, s.saveState(candidates, rounds, t, &best))
		}
		rounds++
		if s.Opts.MaxRounds > 0 && rounds > s.Opts.MaxRounds {
			return nil, ErrBudgetExhausted
		}
		roundSpan := s.startRound(rounds, t)
		for seq, c := range s.byThroughput(candidates) {
			s.update(ctx, c, t, &best, roundSpan, "round", seq)
			if s.Metas[c].IsComplete {
				remaining = without(candidates, c)
				break
			}
		}
		if err := ctx.Err(); err != nil {
			// Mid-round cancellation: checkpoint the partial progress (the
			// metas record every completed query) so Resume can continue.
			roundSpan.End(s.Eval.DB.Clock().Now())
			return nil, errors.Join(err, s.saveState(candidates, rounds-1, t, &best))
		}
		if !math.IsInf(best.Time, 1) {
			roundSpan.SetAttrs(obs.Bool("complete_found", true))
			roundSpan.End(s.Eval.DB.Clock().Now())
			if err := s.saveState(candidates, rounds, t, &best); err != nil {
				return nil, err
			}
			break
		}
		// Reconfiguration overheads: never let the next round's timeout be
		// dominated by index creation (Algorithm 2 line 14).
		t = s.adaptTimeout(candidates, t, roundSpan)
		t *= alpha
		roundSpan.SetAttrs(obs.Bool("complete_found", false))
		roundSpan.End(s.Eval.DB.Clock().Now())
		if err := s.saveState(candidates, rounds, t, &best); err != nil {
			return nil, err
		}
	}

	// Give every remaining configuration one chance with the tightened,
	// best-based timeout (lines 17-18).
	for seq, c := range s.byThroughput(remaining) {
		s.update(ctx, c, t, &best, s.Span, "final", seq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return best.Config, nil
}

// selectParallel evaluates each round's candidates concurrently on engine
// snapshots (one per worker) and merges the results deterministically: the
// round's elapsed time is the max over workers, completions are scanned in
// the round's evaluation order with strict improvement, and the tightened
// final pass runs the still-incomplete candidates against the best-based
// budget. The chosen configuration is identical to the sequential path's —
// both pick the candidate with the minimal full-workload time among those
// that can complete — while the elapsed tuning time models N replicas
// working in parallel.
func (s *Selector) selectParallel(ctx context.Context, candidates []*engine.Config, t, alpha float64, rounds int) (*engine.Config, error) {
	best := s.resumedBest(candidates)
	pool := evaluator.NewPool(s.Eval, s.Opts.Parallelism)
	var remaining []*engine.Config
	if !math.IsInf(best.Time, 1) {
		// Resumed past the completion round (see selectSequential).
		remaining = s.incomplete(candidates)
	}
	for math.IsInf(best.Time, 1) {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(err, s.saveState(candidates, rounds, t, &best))
		}
		rounds++
		if s.Opts.MaxRounds > 0 && rounds > s.Opts.MaxRounds {
			return nil, ErrBudgetExhausted
		}
		roundSpan := s.startRound(rounds, t)
		ordered := s.byThroughput(candidates)
		tasks := make([]evaluator.Task, 0, len(ordered))
		for seq, c := range ordered {
			m := s.Metas[c]
			todo := s.todo(m)
			if len(todo) == 0 {
				// Resumed checkpoint already completed this candidate.
				m.IsComplete = true
				continue
			}
			// Candidate spans are created here, in the round's evaluation
			// order on the coordinating goroutine, before any worker runs:
			// creation order (and so trace shape) is parallelism-invariant
			// scheduling-wise. The owning worker fills and ends each span.
			var span *obs.Span
			if roundSpan != nil {
				span = s.Trace.Start(roundSpan, "candidate", s.Eval.DB.Clock().Now(),
					obs.String("config", c.ID), obs.Int("seq", seq),
					obs.String("phase", "round"), obs.Float("timeout", t))
			}
			tasks = append(tasks, evaluator.Task{Config: c, Queries: todo, Timeout: t, Meta: m, Span: span})
		}
		if _, err := pool.Run(ctx, tasks); err != nil {
			roundSpan.End(s.Eval.DB.Clock().Now())
			return nil, errors.Join(err, s.saveState(candidates, rounds-1, t, &best))
		}
		// Deterministic merge: scan completions in the round's evaluation
		// order with strict improvement, mirroring the sequential scan.
		for _, c := range ordered {
			if m := s.Metas[c]; m.IsComplete && m.Time < best.Time {
				best = Best{Time: m.Time, Config: c}
				s.Progress = append(s.Progress, ProgressEvent{
					Clock:    s.Eval.DB.Clock().Now(),
					BestTime: m.Time,
					ConfigID: c.ID,
				})
				s.noteBest(c.ID, m.Time)
			}
		}
		if !math.IsInf(best.Time, 1) {
			for _, c := range candidates {
				if !s.Metas[c].IsComplete {
					remaining = append(remaining, c)
				}
			}
			roundSpan.SetAttrs(obs.Bool("complete_found", true))
			roundSpan.End(s.Eval.DB.Clock().Now())
			if err := s.saveState(candidates, rounds, t, &best); err != nil {
				return nil, err
			}
			break
		}
		t = s.adaptTimeout(candidates, t, roundSpan)
		t *= alpha
		roundSpan.SetAttrs(obs.Bool("complete_found", false))
		roundSpan.End(s.Eval.DB.Clock().Now())
		if err := s.saveState(candidates, rounds, t, &best); err != nil {
			return nil, err
		}
	}

	// Tightened final chance (Algorithm 2 lines 17-18), also in parallel:
	// any candidate whose total workload time beats the current best fits
	// within the best-based budget, so the global minimum always completes.
	ordered := s.byThroughput(remaining)
	tasks := make([]evaluator.Task, 0, len(ordered))
	for seq, c := range ordered {
		m := s.Metas[c]
		var span *obs.Span
		if s.Span != nil && s.Trace != nil {
			span = s.Trace.Start(s.Span, "candidate", s.Eval.DB.Clock().Now(),
				obs.String("config", c.ID), obs.Int("seq", seq), obs.String("phase", "final"))
		}
		budget := best.Time - m.Time
		if budget <= 0 {
			// Provably suboptimal (paper §4, Best Configuration).
			span.SetAttrs(obs.Bool("skipped", true))
			span.End(s.Eval.DB.Clock().Now())
			continue
		}
		todo := s.todo(m)
		if len(todo) == 0 {
			span.SetAttrs(obs.Bool("skipped", true))
			span.End(s.Eval.DB.Clock().Now())
			continue
		}
		span.SetAttrs(obs.Float("timeout", budget))
		tasks = append(tasks, evaluator.Task{Config: c, Queries: todo, Timeout: budget, Meta: m, Span: span})
	}
	if _, err := pool.Run(ctx, tasks); err != nil {
		return nil, err
	}
	for _, c := range ordered {
		if m := s.Metas[c]; m.IsComplete && m.Time < best.Time {
			best = Best{Time: m.Time, Config: c}
			s.Progress = append(s.Progress, ProgressEvent{
				Clock:    s.Eval.DB.Clock().Now(),
				BestTime: m.Time,
				ConfigID: c.ID,
			})
			s.noteBest(c.ID, m.Time)
		}
	}
	return best.Config, nil
}

// todo lists the workload queries the configuration has not completed yet.
func (s *Selector) todo(meta *evaluator.ConfigMeta) []*engine.Query {
	var out []*engine.Query
	for _, q := range s.Workload {
		if !meta.Completed[q.Name] {
			out = append(out, q)
		}
	}
	return out
}

// update is Algorithm 2's Update procedure. When tracing is on (parent span
// set), the candidate's evaluation — including the tightened-timeout and
// provably-suboptimal-skip verdicts — records as a candidate span under
// parent, with phase "round" or "final" and its position seq in the round's
// evaluation order.
func (s *Selector) update(ctx context.Context, c *engine.Config, t float64, best *Best, parent *obs.Span, phase string, seq int) {
	clock := s.Eval.DB.Clock()
	var span *obs.Span
	if parent != nil && s.Trace != nil {
		span = s.Trace.Start(parent, "candidate", clock.Now(),
			obs.String("config", c.ID), obs.Int("seq", seq),
			obs.String("phase", phase), obs.Int("worker", 0))
	}
	meta := s.Metas[c]
	if !math.IsInf(best.Time, 1) {
		// Any configuration exceeding best.Time − completed time is
		// provably suboptimal (paper §4, Best Configuration).
		t = best.Time - meta.Time
		if t <= 0 {
			span.SetAttrs(obs.Bool("skipped", true))
			span.End(clock.Now())
			return
		}
	}
	span.SetAttrs(obs.Float("timeout", t))
	todo := s.todo(meta)
	if len(todo) == 0 {
		meta.IsComplete = true
	} else {
		if err := s.Eval.Apply(c); err != nil {
			// Unusable configuration (bad parameter values): mark it
			// permanently incomplete.
			meta.IsComplete = false
			span.SetAttrs(obs.Bool("apply_failed", true))
			span.End(clock.Now())
			return
		}
		s.Eval.Span = span
		s.Eval.Evaluate(ctx, c, todo, t, meta)
		s.Eval.Span = nil
	}
	span.SetAttrs(obs.Bool("complete", meta.IsComplete),
		obs.Float("time", meta.Time), obs.Float("index_time", meta.IndexTime))
	span.End(clock.Now())
	if meta.IsComplete && meta.Time < best.Time {
		best.Time = meta.Time
		best.Config = c
		s.Progress = append(s.Progress, ProgressEvent{
			Clock:    s.Eval.DB.Clock().Now(),
			BestTime: meta.Time,
			ConfigID: c.ID,
		})
		s.noteBest(c.ID, meta.Time)
	}
}

// byThroughput orders configurations by decreasing throughput (queries
// completed per unit time), breaking ties by original position.
func (s *Selector) byThroughput(cs []*engine.Config) []*engine.Config {
	out := append([]*engine.Config(nil), cs...)
	pos := make(map[*engine.Config]int, len(cs))
	for i, c := range cs {
		pos[c] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		ta := s.Metas[out[a]].Throughput()
		tb := s.Metas[out[b]].Throughput()
		if ta != tb {
			return ta > tb
		}
		return pos[out[a]] < pos[out[b]]
	})
	return out
}

func without(cs []*engine.Config, drop *engine.Config) []*engine.Config {
	out := make([]*engine.Config, 0, len(cs)-1)
	for _, c := range cs {
		if c != drop {
			out = append(out, c)
		}
	}
	return out
}
