package selector

import (
	"context"
	"errors"
	"math"

	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/core/race"
	"lambdatune/internal/engine"
	"lambdatune/internal/obs"
)

// selectRacing is the successive-halving strategy: every surviving candidate
// runs a growing prefix of its DP schedule each rung, the online cost
// surrogate (race.Surrogate) ranks candidates by predicted full-workload
// time at each rung boundary, and the dominated half is eliminated. Once the
// field is down to FinalSurvivors, the exact Algorithm 2 path takes over —
// accumulated per-query times are exact, so the winner's reported workload
// time is identical to what a full evaluation would report for it.
//
// Determinism: rung membership, prefix contents, shared-index payers, and
// elimination decisions depend only on candidate order, metas, and plan
// costs — never on worker scheduling — so the same seed produces the same
// eliminations and the same selected configuration at any Parallelism.
func (s *Selector) selectRacing(ctx context.Context, candidates []*engine.Config, t, alpha float64, rounds int) (*engine.Config, error) {
	ropts := s.Opts.Racing.Norm()
	// Per-query observations feed the surrogate; replica evaluators inherit
	// the flag through NewPool.
	s.Eval.RecordTimes = true

	n := len(s.Workload)
	ladder := race.Ladder(n, ropts)
	survivors := candidates
	if st := s.resume; st != nil && st.Race != nil {
		s.raceState = st.Race.Clone()
		survivors = filterByIDs(candidates, s.raceState.Survivors)
	} else {
		s.raceState = &race.State{Survivors: configIDs(candidates)}
	}

	for !s.raceState.Done {
		if ropts.DisableElimination && s.raceState.Rung >= 1 {
			break
		}
		if !ropts.DisableElimination && len(survivors) <= ropts.FinalSurvivors {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(err, s.saveState(candidates, rounds, t, nil))
		}
		rounds++
		if s.Opts.MaxRounds > 0 && rounds > s.Opts.MaxRounds {
			return nil, ErrBudgetExhausted
		}
		rung := s.raceState.Rung
		prefix := ladder[min(rung, len(ladder)-1)]
		rungSpan, err := s.runRung(ctx, survivors, prefix, t, rung)
		if err != nil {
			rungSpan.End(s.Eval.DB.Clock().Now())
			return nil, errors.Join(err, s.saveState(candidates, rounds-1, t, nil))
		}
		if !ropts.DisableElimination {
			survivors = s.eliminate(candidates, survivors, ropts, rung, rungSpan)
		}
		t = s.adaptTimeout(survivors, t, rungSpan)
		rungSpan.End(s.Eval.DB.Clock().Now())
		// Rung budgets track the prefix growth (×Growth), not Algorithm 2's
		// ×α rounds: elimination ranks on partial observations plus the
		// surrogate, so rungs never need candidates to finish — escalating
		// budgets α-fast would just fully evaluate the survivors before the
		// exact final pass gets the chance to do it with best-based
		// tightening. The handoff continues the schedule from the last rung
		// budget, and Algorithm 2 escalates from there as usual.
		t *= ropts.Growth
		s.raceState = &race.State{Rung: rung + 1, Survivors: configIDs(survivors)}
		if err := s.saveState(candidates, rounds, t, nil); err != nil {
			return nil, err
		}
	}

	// Hand the survivors to the exact paper pass. Rung bookkeeping marked a
	// prefix pass "complete"; completion now means the whole workload, and
	// meta.Time is the exact accumulated time of the completed queries.
	s.raceState.Done = true
	survivors = filterByIDs(candidates, s.raceState.Survivors)
	for _, c := range survivors {
		m := s.Metas[c]
		m.IsComplete = len(m.Completed) == n
	}
	if s.parallelOK() {
		return s.selectParallel(ctx, survivors, t, alpha, rounds)
	}
	return s.selectSequential(ctx, survivors, t, alpha, rounds)
}

// runRung evaluates every survivor on its prefix-bounded todo list under one
// "rung" span, sharing index-build costs across the rung: the first
// candidate (in rung order) whose configuration carries an index key pays
// its build, every later candidate materializes it at zero virtual cost.
// The returned span is still open — elimination events land on it.
func (s *Selector) runRung(ctx context.Context, survivors []*engine.Config, prefix int, timeout float64, rung int) (*obs.Span, error) {
	clock := s.Eval.DB.Clock()
	s.Metrics.Counter("race_rungs_total").Inc()
	obs.Emitf(s.Reporter, clock.Now(), "rung", "rung %d: %d candidates on a %d-query prefix, timeout %.4gs",
		rung+1, len(survivors), prefix, timeout)
	var rungSpan *obs.Span
	if s.Span != nil {
		rungSpan = s.Trace.Start(s.Span, "rung", clock.Now(),
			obs.Int("rung", rung+1), obs.Int("prefix", prefix),
			obs.Int("survivors", len(survivors)), obs.Float("timeout", timeout))
	}

	// Static payer assignment: independent of worker count, so shared-build
	// accounting is parallelism-invariant.
	payer := map[string]string{}
	for _, c := range survivors {
		for _, ix := range c.Indexes {
			if _, ok := payer[ix.Key()]; !ok {
				payer[ix.Key()] = c.ID
			}
		}
	}

	tasks := make([]evaluator.Task, 0, len(survivors))
	for seq, c := range survivors {
		m := s.Metas[c]
		var span *obs.Span
		if rungSpan != nil {
			span = s.Trace.Start(rungSpan, "candidate", clock.Now(),
				obs.String("config", c.ID), obs.Int("seq", seq),
				obs.String("phase", "rung"), obs.Float("timeout", timeout))
		}
		if err := s.Eval.Apply(c); err != nil {
			// Unusable configuration: permanently incomplete, and the
			// surrogate will rank it last (predicted +Inf).
			m.IsComplete = false
			span.SetAttrs(obs.Bool("apply_failed", true))
			span.End(clock.Now())
			continue
		}
		order := s.Eval.Schedule(s.Workload, c)
		var todo []*engine.Query
		for _, q := range order[:min(prefix, len(order))] {
			if !m.Completed[q.Name] {
				todo = append(todo, q)
			}
		}
		if len(todo) == 0 {
			span.SetAttrs(obs.Bool("skipped", true))
			span.End(clock.Now())
			continue
		}
		var free map[string]bool
		for _, ix := range c.Indexes {
			if payer[ix.Key()] != c.ID {
				if free == nil {
					free = map[string]bool{}
				}
				free[ix.Key()] = true
			}
		}
		tasks = append(tasks, evaluator.Task{
			Config: c, Queries: todo, Timeout: timeout, Meta: m, Span: span, FreeIndexes: free,
		})
	}

	var err error
	if s.parallelOK() {
		pool := evaluator.NewPool(s.Eval, s.Opts.Parallelism)
		_, err = pool.Run(ctx, tasks)
	} else {
		err = s.runTasksOnPrimary(ctx, tasks)
	}
	return rungSpan, err
}

// runTasksOnPrimary is the sequential rung path: tasks run in order on the
// primary instance (mirroring evaluator.Pool's degraded path, but under the
// rung's pre-built candidate spans).
func (s *Selector) runTasksOnPrimary(ctx context.Context, tasks []evaluator.Task) error {
	clock := s.Eval.DB.Clock()
	for _, task := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		task.Span.SetAttrs(obs.Int("worker", 0))
		if err := s.Eval.Apply(task.Config); err != nil {
			task.Meta.IsComplete = false
			task.Span.SetAttrs(obs.Bool("apply_failed", true))
			task.Span.End(clock.Now())
			continue
		}
		s.Eval.Span = task.Span
		s.Eval.FreeIndexes = task.FreeIndexes
		s.Eval.Evaluate(ctx, task.Config, task.Queries, task.Timeout, task.Meta)
		s.Eval.FreeIndexes = nil
		s.Eval.Span = nil
		task.Span.SetAttrs(obs.Bool("complete", task.Meta.IsComplete),
			obs.Float("time", task.Meta.Time), obs.Float("index_time", task.Meta.IndexTime))
		task.Span.End(clock.Now())
	}
	return ctx.Err()
}

// eliminate refits the surrogate from every observed (plan cost, seconds)
// pair — including candidates eliminated in earlier rungs, whose
// observations remain valid — then drops the dominated half of the current
// survivors. Refitting from scratch keeps the surrogate stateless: a resumed
// run reconstructs the identical fit from the checkpointed metas.
func (s *Selector) eliminate(candidates, survivors []*engine.Config, ropts race.Options, rung int, rungSpan *obs.Span) []*engine.Config {
	var sur race.Surrogate
	for _, c := range candidates {
		m := s.Metas[c]
		if m == nil || len(m.QueryTimes) == 0 {
			continue
		}
		if s.Eval.Apply(c) != nil {
			continue
		}
		for _, q := range s.Workload {
			if secs, ok := m.QueryTimes[q.Name]; ok {
				sur.Observe(s.Eval.DB.PlanCost(q), secs)
			}
		}
	}
	s.Metrics.Gauge("race_surrogate_beta").Set(sur.Beta())

	scored := make([]race.Candidate, len(survivors))
	for i, c := range survivors {
		m := s.Metas[c]
		pred := m.Time
		if err := s.Eval.Apply(c); err != nil {
			pred = math.Inf(1)
		} else {
			for _, q := range s.Workload {
				if !m.Completed[q.Name] {
					pred += sur.Predict(s.Eval.DB.PlanCost(q))
				}
			}
		}
		scored[i] = race.Candidate{ID: c.ID, Pos: i, Predicted: pred}
	}
	keep, drop := race.Eliminate(scored, ropts)

	now := s.Eval.DB.Clock().Now()
	for _, d := range drop {
		s.Metrics.Counter("race_eliminations_total").Inc()
		rungSpan.Event("race.eliminate", now,
			obs.String("config", d.ID), obs.Int("rung", rung+1), obs.Float("predicted", d.Predicted))
		obs.Emitf(s.Reporter, now, "eliminate", "rung %d eliminates %s (predicted %.4gs)", rung+1, d.ID, d.Predicted)
	}
	out := make([]*engine.Config, 0, len(keep))
	for _, k := range keep {
		out = append(out, survivors[k.Pos])
	}
	return out
}

// filterByIDs returns the candidates whose IDs appear in ids, preserving
// candidate order.
func filterByIDs(candidates []*engine.Config, ids []string) []*engine.Config {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]*engine.Config, 0, len(ids))
	for _, c := range candidates {
		if want[c.ID] {
			out = append(out, c)
		}
	}
	return out
}

// configIDs lists candidate IDs in order.
func configIDs(cs []*engine.Config) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID
	}
	return out
}
