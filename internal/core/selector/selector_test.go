package selector

import (
	"context"
	"math"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

func setup(t *testing.T) (*backend.Sim, []*engine.Query) {
	t.Helper()
	w := workload.TPCH(1)
	db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
	return db, w.Queries
}

func cfg(id string, params map[string]string, idx ...engine.IndexDef) *engine.Config {
	return &engine.Config{ID: id, Params: params, Indexes: idx}
}

func good() *engine.Config {
	return cfg("good", map[string]string{
		"shared_buffers": "15GB", "work_mem": "1GB",
		"effective_cache_size": "45GB", "random_page_cost": "1.1",
	},
		engine.NewIndexDef("lineitem", "l_orderkey"),
		engine.NewIndexDef("orders", "o_custkey"))
}

func bad() *engine.Config {
	return cfg("bad", map[string]string{
		"enable_hashjoin": "off", "work_mem": "64kB", "shared_buffers": "128MB",
	})
}

func TestSelectPicksFasterConfig(t *testing.T) {
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	g, b := good(), bad()
	best := sel1(s, []*engine.Config{b, g})
	if best != g {
		t.Fatalf("selected %v", best)
	}
	if !s.Metas[g].IsComplete {
		t.Error("winner not marked complete")
	}
	if s.Metas[g].Time <= 0 {
		t.Error("winner time not recorded")
	}
}

func TestSelectSingleCandidate(t *testing.T) {
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	g := good()
	if sel1(s, []*engine.Config{g}) != g {
		t.Fatal("single candidate not selected")
	}
}

func TestSelectEmpty(t *testing.T) {
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	if sel1(s, nil) != nil {
		t.Fatal("empty candidate set returned a config")
	}
}

func TestSelectBoundedTuningTime(t *testing.T) {
	// Theorem 4.3: tuning time (query evaluation) ∈ O(k·α·C_best). With a
	// generous constant for index-creation overheads, the virtual clock
	// must stay within a small multiple of k·α·C_best.
	db, qs := setup(t)
	opts := DefaultOptions()
	s := New(evaluator.New(db), qs, opts)
	candidates := []*engine.Config{bad(), good(), cfg("mid", map[string]string{"work_mem": "64MB"})}
	start := db.Clock().Now()
	best := sel1(s, candidates)
	if best == nil {
		t.Fatal("no best")
	}
	elapsed := db.Clock().Now() - start
	cBest := s.Metas[best].Time
	bound := float64(len(candidates)) * opts.Alpha * cBest * 3
	if elapsed > bound {
		t.Errorf("tuning time %v exceeds 3·k·α·C_best = %v", elapsed, bound)
	}
}

func TestSelectAvoidsRedundantWork(t *testing.T) {
	// Completed queries must not re-run across rounds: the total number of
	// completed executions is bounded by k·|W|.
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	candidates := []*engine.Config{good(), bad(), cfg("mid", map[string]string{"work_mem": "256MB"})}
	sel1(s, candidates)
	if got, limit := db.Executions(), len(candidates)*len(qs); got > limit {
		t.Errorf("%d completed executions exceed k·|W| = %d", got, limit)
	}
}

func TestSelectProgressRecorded(t *testing.T) {
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	sel1(s, []*engine.Config{good(), bad()})
	if len(s.Progress) == 0 {
		t.Fatal("no progress events")
	}
	// Progress is monotone: times decrease, clock increases.
	for i := 1; i < len(s.Progress); i++ {
		if s.Progress[i].BestTime >= s.Progress[i-1].BestTime {
			t.Error("best time not improving")
		}
		if s.Progress[i].Clock < s.Progress[i-1].Clock {
			t.Error("clock went backwards")
		}
	}
}

func TestSelectExampleFromPaper(t *testing.T) {
	// Paper Example 4.1: the first configuration to finish is not
	// necessarily optimal. We emulate it with two configs where the "slow
	// starter" wins overall. Config A executes all queries quickly except a
	// long tail; Config B is uniformly moderate. The selector must return
	// the one with minimal total time, whichever finishes first.
	db, qs := setup(t)
	s := New(evaluator.New(db), qs, DefaultOptions())
	a, b := good(), cfg("plain", map[string]string{"shared_buffers": "8GB", "work_mem": "512MB"})
	best := sel1(s, []*engine.Config{a, b})
	// Verify optimality directly: measure both configs' full workload time.
	eval := evaluator.New(db)
	timeOf := func(c *engine.Config) float64 {
		if err := eval.Apply(c); err != nil {
			t.Fatal(err)
		}
		m := evaluator.NewConfigMeta()
		eval.Evaluate(context.Background(), c, qs, math.Inf(1), m)
		return m.Time
	}
	ta, tb := timeOf(a), timeOf(b)
	wantBest := a
	if tb < ta {
		wantBest = b
	}
	if best != wantBest {
		t.Errorf("selected %s (times: good=%v plain=%v)", best.ID, ta, tb)
	}
}

func TestSelectMaxRounds(t *testing.T) {
	db, qs := setup(t)
	opts := DefaultOptions()
	opts.InitialTimeout = 1e-9
	opts.Alpha = 2
	opts.MaxRounds = 3
	s := New(evaluator.New(db), qs, opts)
	if got := sel1(s, []*engine.Config{bad()}); got != nil {
		t.Errorf("expected nil under round cap, got %v", got)
	}
}

func TestSelectAdaptiveTimeoutOffStillTerminates(t *testing.T) {
	db, qs := setup(t)
	opts := DefaultOptions()
	opts.AdaptiveTimeout = false
	s := New(evaluator.New(db), qs, opts)
	if sel1(s, []*engine.Config{good(), bad()}) == nil {
		t.Fatal("no winner with adaptive timeout off")
	}
}

func TestSelectAdaptiveTimeoutReducesClock(t *testing.T) {
	// §6.4.1: without index-creation-aware timeouts, tuning takes longer
	// because early rounds are dominated by reconfiguration.
	run := func(adaptive bool) float64 {
		db, qs := setup(t)
		opts := DefaultOptions()
		opts.InitialTimeout = 0.1 // tiny vs index creation times
		opts.AdaptiveTimeout = adaptive
		s := New(evaluator.New(db), qs, opts)
		sel1(s, []*engine.Config{good(), bad(), cfg("m", map[string]string{"work_mem": "128MB"},
			engine.NewIndexDef("lineitem", "l_partkey"))})
		return db.Clock().Now()
	}
	with := run(true)
	without := run(false)
	if with > without {
		t.Errorf("adaptive timeouts slower: %v vs %v", with, without)
	}
}
