package selector

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/core/evaluator"
	"lambdatune/internal/engine"
	"lambdatune/internal/workload"
)

// TestSelectOptimalityProperty verifies the selector's core guarantee on
// randomized candidate sets: the returned configuration has the minimal
// full-workload execution time among all candidates (paper §4: the timeout
// scheme "guarantees that the system identifies the optimal configuration
// on the entire workload, out of all configurations generated").
func TestSelectOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := workload.TPCH(1)
	for trial := 0; trial < 8; trial++ {
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		k := 2 + rng.Intn(5)
		candidates := make([]*engine.Config, k)
		for i := range candidates {
			candidates[i] = randomConfig(rng, fmt.Sprintf("r%d-%d", trial, i))
		}
		s := New(evaluator.New(db), w.Queries, DefaultOptions())
		best := sel1(s, candidates)
		if best == nil {
			t.Fatalf("trial %d: no configuration selected", trial)
		}

		// Ground truth: measure every candidate exhaustively on a fresh
		// instance.
		gt := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		eval := evaluator.New(gt)
		times := make([]float64, k)
		for i, c := range candidates {
			if err := eval.Apply(c); err != nil {
				times[i] = math.Inf(1)
				continue
			}
			m := evaluator.NewConfigMeta()
			eval.Evaluate(context.Background(), c, w.Queries, math.Inf(1), m)
			times[i] = m.Time
		}
		bestIdx, bestTime := -1, math.Inf(1)
		for i, tm := range times {
			if tm < bestTime {
				bestIdx, bestTime = i, tm
			}
		}
		if best != candidates[bestIdx] {
			var selTime float64
			for i, c := range candidates {
				if c == best {
					selTime = times[i]
				}
			}
			// Allow exact ties.
			if math.Abs(selTime-bestTime) > 1e-9 {
				t.Errorf("trial %d: selected %s (%.3fs), optimum is %s (%.3fs)",
					trial, best.ID, selTime, candidates[bestIdx].ID, bestTime)
			}
		}
	}
}

// randomConfig draws parameter settings (and occasionally indexes) across
// the quality spectrum, including deliberately poor ones.
func randomConfig(rng *rand.Rand, id string) *engine.Config {
	cfg := &engine.Config{ID: id, Params: map[string]string{}}
	if rng.Float64() < 0.5 {
		cfg.Params["shared_buffers"] = fmt.Sprintf("%dMB", 128<<rng.Intn(8))
	}
	if rng.Float64() < 0.5 {
		cfg.Params["work_mem"] = fmt.Sprintf("%dkB", 64<<rng.Intn(15))
	}
	if rng.Float64() < 0.4 {
		cfg.Params["max_parallel_workers_per_gather"] = fmt.Sprintf("%d", rng.Intn(9))
	}
	if rng.Float64() < 0.3 {
		cfg.Params["random_page_cost"] = fmt.Sprintf("%g", 0.5+rng.Float64()*8)
	}
	if rng.Float64() < 0.2 {
		cfg.Params["enable_hashjoin"] = "off"
	}
	if rng.Float64() < 0.4 {
		cfg.Indexes = append(cfg.Indexes, engine.NewIndexDef("lineitem", "l_orderkey"))
	}
	if rng.Float64() < 0.3 {
		cfg.Indexes = append(cfg.Indexes, engine.NewIndexDef("orders", "o_custkey"))
	}
	return cfg
}

// TestSelectNeverReturnsIncomplete: whatever is returned must have processed
// the entire workload.
func TestSelectNeverReturnsIncomplete(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	w := workload.TPCH(1)
	for trial := 0; trial < 5; trial++ {
		db := backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware)
		candidates := []*engine.Config{
			randomConfig(rng, "a"), randomConfig(rng, "b"), randomConfig(rng, "c"),
		}
		s := New(evaluator.New(db), w.Queries, DefaultOptions())
		best := sel1(s, candidates)
		if best == nil {
			t.Fatal("nil best")
		}
		if m := s.Metas[best]; !m.IsComplete || len(m.Completed) != len(w.Queries) {
			t.Errorf("trial %d: returned config incomplete: %d/%d queries",
				trial, len(m.Completed), len(w.Queries))
		}
	}
}
