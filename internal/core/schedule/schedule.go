// Package schedule implements λ-Tune's query-ordering component (paper §5.2-
// §5.4): the expected index-creation cost model (Eq. 1), the dynamic-
// programming scheduler (Algorithm 4), and the k-means query clustering that
// bounds the DP's exponential input size at 13.
package schedule

import (
	"math"
	"sort"

	"lambdatune/internal/engine"
)

// MaxDPQueries caps the DP input size (paper §5.4: "we strictly limit the
// input to our algorithm to a manageable size of 13 queries").
const MaxDPQueries = 13

// IndexCost supplies the creation cost of an index.
type IndexCost func(engine.IndexDef) float64

// Item is one schedulable unit: a query (or query cluster) with the indexes
// it can exploit.
type Item struct {
	// Queries holds the original queries (one for plain items, several for
	// clusters).
	Queries []*engine.Query
	// Indexes are the potentially relevant index definitions, keyed by
	// IndexDef.Key().
	Indexes map[string]engine.IndexDef
}

// incrementalCost is z_i(Q) from §5.2: the creation cost of item's indexes
// not already covered by the created set.
func incrementalCost(it Item, created map[string]bool, cost IndexCost) float64 {
	var sum float64
	keys := make([]string, 0, len(it.Indexes))
	for k := range it.Indexes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !created[k] {
			sum += cost(it.Indexes[k])
		}
	}
	return sum
}

// ExpectedCost evaluates Eq. 1 for a given order: assuming interruption after
// each position is equally likely, the expected total index-creation cost is
// 1/n · Σ_k Σ_{j≤k} z_j = Σ_j (n-j+1)/n · z_j.
func ExpectedCost(order []Item, cost IndexCost) float64 {
	n := len(order)
	if n == 0 {
		return 0
	}
	created := map[string]bool{}
	var total float64
	for j, it := range order {
		z := incrementalCost(it, created, cost)
		total += z * float64(n-j) / float64(n)
		for k := range it.Indexes {
			created[k] = true
		}
	}
	return total
}

// OrderDP is Algorithm 4: exact dynamic programming over query subsets,
// returning an order minimizing Eq. 1. Panics if len(items) > MaxDPQueries
// (callers must cluster first; see Order).
//
// The recurrence exploits that the unnormalized objective
// F(order) = Σ_k Σ_{j≤k} z_j satisfies
// F(S ∘ q) = F(S) + totalCost(S) + z_q(S), where totalCost(S) is the
// creation cost of the union of S's indexes — a function of the *set* S
// only. This is exactly the principle-of-optimality property proved in
// Theorem 5.2.
func OrderDP(items []Item, cost IndexCost) []Item {
	n := len(items)
	if n == 0 {
		return nil
	}
	if n > MaxDPQueries {
		panic("schedule: OrderDP input exceeds MaxDPQueries; cluster first")
	}
	size := 1 << n
	dpCost := make([]float64, size)
	dpTotal := make([]float64, size) // totalCost(S): union index creation cost
	dpPrev := make([]int8, size)     // last item appended for reconstruction
	for mask := 1; mask < size; mask++ {
		dpCost[mask] = math.Inf(1)
		dpPrev[mask] = -1
	}

	// Union creation costs per subset, computed incrementally.
	// created-set membership is recomputed per transition below; to keep it
	// O(2^n · n · |idx|) we materialize each subset's index union lazily via
	// the per-item incremental cost against the predecessor's union set.
	unions := make([]map[string]bool, size)
	unions[0] = map[string]bool{}

	for mask := 0; mask < size; mask++ {
		if math.IsInf(dpCost[mask], 1) {
			continue
		}
		for q := 0; q < n; q++ {
			if mask&(1<<q) != 0 {
				continue
			}
			next := mask | 1<<q
			z := incrementalCost(items[q], unions[mask], cost)
			c := dpCost[mask] + dpTotal[mask] + z
			if c < dpCost[next]-1e-12 {
				dpCost[next] = c
				dpTotal[next] = dpTotal[mask] + z
				dpPrev[next] = int8(q)
				u := make(map[string]bool, len(unions[mask])+len(items[q].Indexes))
				for k := range unions[mask] {
					u[k] = true
				}
				for k := range items[q].Indexes {
					u[k] = true
				}
				unions[next] = u
			}
		}
	}

	// Reconstruct.
	order := make([]Item, 0, n)
	mask := size - 1
	for mask != 0 {
		q := int(dpPrev[mask])
		order = append(order, items[q])
		mask &^= 1 << q
	}
	// Reverse (we rebuilt back-to-front).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Order schedules queries for one configuration evaluation round: it builds
// items from the query→index map, clusters them down to MaxDPQueries when
// necessary (§5.4), runs the DP, and flattens the result back to a query
// order.
func Order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) []*engine.Query {
	if len(queries) == 0 {
		return nil
	}
	items := make([]Item, len(queries))
	for i, q := range queries {
		m := map[string]engine.IndexDef{}
		for _, d := range indexMap[q] {
			m[d.Key()] = d
		}
		items[i] = Item{Queries: []*engine.Query{q}, Indexes: m}
	}
	if len(items) > MaxDPQueries {
		items = Cluster(items, MaxDPQueries, seed)
	}
	ordered := OrderDP(items, cost)
	var out []*engine.Query
	for _, it := range ordered {
		out = append(out, it.Queries...)
	}
	return out
}
