// Package schedule implements λ-Tune's query-ordering component (paper §5.2-
// §5.4): the expected index-creation cost model (Eq. 1), the dynamic-
// programming scheduler (Algorithm 4), and the k-means query clustering that
// bounds the DP's exponential input size at 13.
package schedule

import (
	"math"
	"math/bits"
	"sort"

	"lambdatune/internal/engine"
)

// MaxDPQueries caps the DP input size (paper §5.4: "we strictly limit the
// input to our algorithm to a manageable size of 13 queries").
const MaxDPQueries = 13

// IndexCost supplies the creation cost of an index.
type IndexCost func(engine.IndexDef) float64

// Item is one schedulable unit: a query (or query cluster) with the indexes
// it can exploit.
type Item struct {
	// Queries holds the original queries (one for plain items, several for
	// clusters).
	Queries []*engine.Query
	// Indexes are the potentially relevant index definitions, keyed by
	// IndexDef.Key().
	Indexes map[string]engine.IndexDef
}

// indexSpace maps the distinct indexes across a set of items to dense
// integer ids so set operations become bitset words instead of string-map
// unions — the former dominated the CPU profile of a tuning run. Ids are
// assigned in sorted-key order and per-index costs are computed once per
// space; iterating set bits in ascending id order then reproduces the
// historical "sort the keys, sum the costs" order exactly, so every
// floating-point sum — and with it every scheduling decision — stays
// bit-identical to the map-based implementation.
type indexSpace struct {
	costs []float64 // creation cost per index id
	words int       // bitset width in uint64 words
	// itemBits[i] is item i's index set; each slice is words long.
	itemBits [][]uint64
}

func newIndexSpace(items []Item, cost IndexCost) indexSpace {
	var keys []string
	defs := map[string]engine.IndexDef{}
	for _, it := range items {
		for k, def := range it.Indexes {
			if _, ok := defs[k]; !ok {
				defs[k] = def
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	id := make(map[string]int, len(keys))
	sp := indexSpace{costs: make([]float64, len(keys)), words: (len(keys) + 63) / 64}
	for i, k := range keys {
		id[k] = i
		sp.costs[i] = cost(defs[k])
	}
	sp.itemBits = make([][]uint64, len(items))
	backing := make([]uint64, len(items)*sp.words)
	for i, it := range items {
		b := backing[i*sp.words : (i+1)*sp.words : (i+1)*sp.words]
		for k := range it.Indexes {
			b[id[k]/64] |= 1 << (id[k] % 64)
		}
		sp.itemBits[i] = b
	}
	return sp
}

// incremental is z_i(Q) from §5.2: the creation cost of the item's indexes
// (itemBits) not already covered by the created set, summed in ascending id
// (= sorted key) order.
func (sp *indexSpace) incremental(itemBits, created []uint64) float64 {
	var sum float64
	for w, b := range itemBits {
		d := b &^ created[w]
		for d != 0 {
			sum += sp.costs[w*64+bits.TrailingZeros64(d)]
			d &= d - 1
		}
	}
	return sum
}

// ExpectedCost evaluates Eq. 1 for a given order: assuming interruption after
// each position is equally likely, the expected total index-creation cost is
// 1/n · Σ_k Σ_{j≤k} z_j = Σ_j (n-j+1)/n · z_j.
func ExpectedCost(order []Item, cost IndexCost) float64 {
	n := len(order)
	if n == 0 {
		return 0
	}
	sp := newIndexSpace(order, cost)
	created := make([]uint64, sp.words)
	var total float64
	for j := range order {
		z := sp.incremental(sp.itemBits[j], created)
		total += z * float64(n-j) / float64(n)
		for w, b := range sp.itemBits[j] {
			created[w] |= b
		}
	}
	return total
}

// OrderDP is Algorithm 4: exact dynamic programming over query subsets,
// returning an order minimizing Eq. 1. Panics if len(items) > MaxDPQueries
// (callers must cluster first; see Order).
//
// The recurrence exploits that the unnormalized objective
// F(order) = Σ_k Σ_{j≤k} z_j satisfies
// F(S ∘ q) = F(S) + totalCost(S) + z_q(S), where totalCost(S) is the
// creation cost of the union of S's indexes — a function of the *set* S
// only. This is exactly the principle-of-optimality property proved in
// Theorem 5.2.
func OrderDP(items []Item, cost IndexCost) []Item {
	n := len(items)
	if n == 0 {
		return nil
	}
	if n > MaxDPQueries {
		panic("schedule: OrderDP input exceeds MaxDPQueries; cluster first")
	}
	sp := newIndexSpace(items, cost)
	size := 1 << n
	dpCost := make([]float64, size)
	dpTotal := make([]float64, size) // totalCost(S): union index creation cost
	dpPrev := make([]int8, size)     // last item appended for reconstruction
	for mask := 1; mask < size; mask++ {
		dpCost[mask] = math.Inf(1)
		dpPrev[mask] = -1
	}

	// Union index sets per subset as bitsets, carved from one contiguous
	// backing slice — the per-transition incremental cost is then a handful
	// of word operations instead of a sorted string-map walk, and improving
	// a subset updates its union in place with no allocation.
	w := sp.words
	unionBacking := make([]uint64, size*w)
	union := func(mask int) []uint64 { return unionBacking[mask*w : (mask+1)*w] }

	for mask := 0; mask < size; mask++ {
		if math.IsInf(dpCost[mask], 1) {
			continue
		}
		um := union(mask)
		for q := 0; q < n; q++ {
			if mask&(1<<q) != 0 {
				continue
			}
			next := mask | 1<<q
			z := sp.incremental(sp.itemBits[q], um)
			c := dpCost[mask] + dpTotal[mask] + z
			if c < dpCost[next]-1e-12 {
				dpCost[next] = c
				dpTotal[next] = dpTotal[mask] + z
				dpPrev[next] = int8(q)
				un := union(next)
				for i := range un {
					un[i] = um[i] | sp.itemBits[q][i]
				}
			}
		}
	}

	// Reconstruct.
	order := make([]Item, 0, n)
	mask := size - 1
	for mask != 0 {
		q := int(dpPrev[mask])
		order = append(order, items[q])
		mask &^= 1 << q
	}
	// Reverse (we rebuilt back-to-front).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Order schedules queries for one configuration evaluation round: it builds
// items from the query→index map, clusters them down to MaxDPQueries when
// necessary (§5.4), runs the DP, and flattens the result back to a query
// order.
func Order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) []*engine.Query {
	if len(queries) == 0 {
		return nil
	}
	items := make([]Item, len(queries))
	for i, q := range queries {
		m := map[string]engine.IndexDef{}
		for _, d := range indexMap[q] {
			m[d.Key()] = d
		}
		items[i] = Item{Queries: []*engine.Query{q}, Indexes: m}
	}
	if len(items) > MaxDPQueries {
		items = Cluster(items, MaxDPQueries, seed)
	}
	ordered := OrderDP(items, cost)
	var out []*engine.Query
	for _, it := range ordered {
		out = append(out, it.Queries...)
	}
	return out
}
