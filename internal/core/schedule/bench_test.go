package schedule

import (
	"math/rand"
	"reflect"
	"testing"

	"lambdatune/internal/engine"
)

// benchItems builds n items drawing randomly from nDefs index groups — the
// shape Cluster sees when the selector hands it a large workload.
func benchItems(n, nDefs int, seed int64) ([]Item, map[string]float64) {
	rng := rand.New(rand.NewSource(seed))
	defs := make([]engine.IndexDef, nDefs)
	costs := map[string]float64{}
	for i := range defs {
		defs[i] = engine.NewIndexDef("t", string(rune('a'+i)))
		costs[defs[i].Key()] = 1 + 3*rng.Float64()
	}
	items := make([]Item, n)
	for i := range items {
		m := map[string]engine.IndexDef{}
		for _, d := range defs {
			if rng.Float64() < 0.4 {
				m[d.Key()] = d
			}
		}
		items[i] = Item{Queries: []*engine.Query{{Name: "q"}}, Indexes: m}
	}
	return items, costs
}

// TestClusterSeedDeterministic: the same seed must reproduce the exact same
// clustering (buffer reuse inside the k-means loop must not perturb it), and
// a different seed is allowed to differ.
func TestClusterSeedDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		items, _ := benchItems(60, 8, 3)
		a := Cluster(items, MaxDPQueries, seed)
		items2, _ := benchItems(60, 8, 3)
		b := Cluster(items2, MaxDPQueries, seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: two runs produced different clusterings", seed)
		}
	}
}

// BenchmarkCluster measures the k-means clustering pass.
func BenchmarkCluster(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(map[int]string{50: "items50", 200: "items200"}[n], func(b *testing.B) {
			items, _ := benchItems(n, 10, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Cluster(items, MaxDPQueries, 1)
			}
		})
	}
}

// BenchmarkOrderDP measures the scheduling DP over the bitset index space.
func BenchmarkOrderDP(b *testing.B) {
	items, costs := benchItems(MaxDPQueries, 10, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrderDP(items, fixedCost(costs))
	}
}
