package schedule

import (
	"math"
	"math/rand"
	"sort"

	"lambdatune/internal/engine"
)

// Cluster groups items into at most k clusters by k-means over binary index
// vectors with Euclidean distance (paper §5.4). Each returned Item merges the
// member queries and the union of their index sets. Queries with identical
// index dependencies naturally collapse into one cluster.
func Cluster(items []Item, k int, seed int64) []Item {
	if len(items) <= k {
		return items
	}
	// Assign each distinct index a vector dimension.
	dims := map[string]int{}
	for _, it := range items {
		keys := make([]string, 0, len(it.Indexes))
		for key := range it.Indexes {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if _, ok := dims[key]; !ok {
				dims[key] = len(dims)
			}
		}
	}
	d := len(dims)
	if d == 0 {
		// No indexes anywhere: order is irrelevant; one merged cluster.
		merged := Item{Indexes: map[string]engine.IndexDef{}}
		for _, it := range items {
			merged.Queries = append(merged.Queries, it.Queries...)
		}
		return []Item{merged}
	}
	vecs := make([][]float64, len(items))
	for i, it := range items {
		v := make([]float64, d)
		for key := range it.Indexes {
			v[dims[key]] = 1
		}
		vecs[i] = v
	}

	rng := rand.New(rand.NewSource(seed))
	centers := kmeansPlusPlusInit(vecs, k, rng)
	assign := make([]int, len(vecs))
	// Per-iteration accumulation buffers, allocated once and zeroed per
	// iteration instead of re-made inside the 50-iteration loop. Sums are
	// written back into the centers element-wise (never by slice swap), so
	// the buffers can be reused without aliasing the centers.
	counts := make([]int, k)
	next := make([][]float64, k)
	nextBacking := make([]float64, k*d)
	for c := range next {
		next[c] = nextBacking[c*d : (c+1)*d : (c+1)*d]
	}
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if dist := sqDist(v, ctr); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Early exit when no assignment moved. The iter > 0 guard is load-
		// bearing: assign starts all-zero, so a first pass that happens to
		// assign everything to cluster 0 must still recompute centers.
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		for c := range counts {
			counts[c] = 0
		}
		for i := range nextBacking {
			nextBacking[i] = 0
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				next[c][j] += x
			}
		}
		for c := range next {
			if counts[c] == 0 {
				continue // keep old center for empty clusters
			}
			for j := range next[c] {
				centers[c][j] = next[c][j] / float64(counts[c])
			}
		}
	}

	// Merge members per cluster, preserving input order within clusters.
	byCluster := make([]Item, 0, k)
	for c := 0; c < k; c++ {
		merged := Item{Indexes: map[string]engine.IndexDef{}}
		for i, it := range items {
			if assign[i] != c {
				continue
			}
			merged.Queries = append(merged.Queries, it.Queries...)
			for key, def := range it.Indexes {
				merged.Indexes[key] = def
			}
		}
		if len(merged.Queries) > 0 {
			byCluster = append(byCluster, merged)
		}
	}
	return byCluster
}

// kmeansPlusPlusInit seeds centers with the k-means++ strategy.
func kmeansPlusPlusInit(vecs [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := rng.Intn(len(vecs))
	centers = append(centers, append([]float64(nil), vecs[first]...))
	dists := make([]float64, len(vecs)) // reused across center picks
	for len(centers) < k {
		// Pick the next center proportional to squared distance.
		var total float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centers; duplicate one.
			centers = append(centers, append([]float64(nil), vecs[rng.Intn(len(vecs))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), vecs[idx]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
