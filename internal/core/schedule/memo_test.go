package schedule

import (
	"fmt"
	"testing"

	"lambdatune/internal/engine"
)

// memoFixture builds n queries with per-query index sets drawn from a small
// pool, mirroring how the evaluator feeds Order.
func memoFixture(n int) ([]*engine.Query, map[*engine.Query][]engine.IndexDef) {
	queries := make([]*engine.Query, n)
	indexMap := map[*engine.Query][]engine.IndexDef{}
	for i := range queries {
		q := &engine.Query{Name: fmt.Sprintf("q%02d", i)}
		queries[i] = q
		for j := 0; j <= i%3; j++ {
			indexMap[q] = append(indexMap[q], engine.NewIndexDef(
				fmt.Sprintf("t%d", (i+j)%5), fmt.Sprintf("c%d", j)))
		}
	}
	return queries, indexMap
}

func costOf(base float64) IndexCost {
	return func(d engine.IndexDef) float64 { return base + float64(len(d.Key())) }
}

// TestMemoOrderMatchesPlain asserts a memo hit returns exactly the
// permutation the plain DP computes, across repeats, subsets, and changed
// costs (which must key separately).
func TestMemoOrderMatchesPlain(t *testing.T) {
	queries, indexMap := memoFixture(9)
	m := NewMemo()
	check := func(qs []*engine.Query, cost IndexCost, seed int64) {
		t.Helper()
		want := Order(qs, indexMap, cost, seed)
		for rep := 0; rep < 3; rep++ {
			got := m.Order(qs, indexMap, cost, seed)
			if len(got) != len(want) {
				t.Fatalf("len mismatch: got %d want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rep %d pos %d: got %s want %s", rep, i, got[i].Name, want[i].Name)
				}
			}
		}
	}
	check(queries, costOf(10), 1)
	check(queries[:5], costOf(10), 1) // subset keys separately
	check(queries, costOf(500), 1)    // changed cost invalidates
	check(queries, costOf(10), 2)     // changed seed keys separately
	check(queries, costOf(10), 1)     // original inputs still hit correctly
}

// TestMemoNilReceiver asserts the nil memo degrades to the plain DP.
func TestMemoNilReceiver(t *testing.T) {
	queries, indexMap := memoFixture(6)
	var m *Memo
	want := Order(queries, indexMap, costOf(3), 7)
	got := m.Order(queries, indexMap, costOf(3), 7)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: got %s want %s", i, got[i].Name, want[i].Name)
		}
	}
}

// TestMemoPointerAliasing asserts that equal-looking inputs backed by
// different Query pointers do not serve each other's entries: the memo's
// permutation must always index the caller's own queries.
func TestMemoPointerAliasing(t *testing.T) {
	qsA, mapA := memoFixture(6)
	qsB, mapB := memoFixture(6) // same names and index sets, fresh pointers
	m := NewMemo()
	m.Order(qsA, mapA, costOf(3), 1)
	got := m.Order(qsB, mapB, costOf(3), 1)
	for _, q := range got {
		found := false
		for _, b := range qsB {
			if q == b {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("result contains a query pointer not from the caller's slice")
		}
	}
}
