package schedule

import (
	"fmt"
	"sync"
	"testing"

	"lambdatune/internal/engine"
)

// cloneFixture rebuilds the fixture's queries as fresh pointers with the
// same names and positionally identical index sets — the shape of a second
// job over the same workload digest.
func cloneFixture(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef) ([]*engine.Query, map[*engine.Query][]engine.IndexDef) {
	out := make([]*engine.Query, len(queries))
	m := map[*engine.Query][]engine.IndexDef{}
	for i, q := range queries {
		c := &engine.Query{Name: q.Name}
		out[i] = c
		m[c] = indexMap[q]
	}
	return out, m
}

// TestOrderScopedCrossOwnerRemap asserts a second owner with fresh query
// pointers (same names, same key) hits the first owner's entry and gets the
// permutation replayed onto its own pointers.
func TestOrderScopedCrossOwnerRemap(t *testing.T) {
	queries, indexMap := memoFixture(8)
	m := NewMemo()
	want, hit, cross := m.OrderScoped("job-a", queries, indexMap, costOf(10), 1)
	if hit || cross {
		t.Fatalf("first computation reported hit=%v cross=%v", hit, cross)
	}

	clone, cloneMap := cloneFixture(queries, indexMap)
	got, hit, cross := m.OrderScoped("job-b", clone, cloneMap, costOf(10), 1)
	if !hit || !cross {
		t.Fatalf("cross-owner probe: hit=%v cross=%v, want true/true", hit, cross)
	}
	for i := range got {
		if got[i] == want[i] {
			t.Fatalf("pos %d: cross-owner hit leaked the owner's query pointer", i)
		}
		if got[i].Name != want[i].Name {
			t.Fatalf("pos %d: got %s want %s", i, got[i].Name, want[i].Name)
		}
	}

	// Same owner re-probing its own pointers: hit, but not cross.
	if _, hit, cross = m.OrderScoped("job-a", queries, indexMap, costOf(10), 1); !hit || cross {
		t.Fatalf("same-owner probe: hit=%v cross=%v, want true/false", hit, cross)
	}
}

// TestOrderScopedPrivateNoRemap asserts the unscoped (owner "") path keeps
// pre-runtime semantics: alien pointers with equal names recompute instead
// of remapping.
func TestOrderScopedPrivateNoRemap(t *testing.T) {
	queries, indexMap := memoFixture(6)
	m := NewMemo()
	m.Order(queries, indexMap, costOf(10), 1)
	clone, cloneMap := cloneFixture(queries, indexMap)
	if _, hit := m.OrderWithHit(clone, cloneMap, costOf(10), 1); hit {
		t.Fatal("private memo reported a hit for alien query pointers")
	}
}

// TestOrderScopedCoalescing runs many owners concurrently on the same key
// and asserts every result agrees with the plain DP — exercising the
// inflight wait path under the race detector.
func TestOrderScopedCoalescing(t *testing.T) {
	queries, indexMap := memoFixture(10)
	want := Order(queries, indexMap, costOf(10), 1)

	m := NewMemo()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		owner := fmt.Sprintf("job-%d", w)
		clone, cloneMap := cloneFixture(queries, indexMap)
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, _ := m.OrderScoped(owner, clone, cloneMap, costOf(10), 1)
			for i := range got {
				if got[i].Name != want[i].Name {
					errs <- fmt.Errorf("%s pos %d: got %s want %s", owner, i, got[i].Name, want[i].Name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
