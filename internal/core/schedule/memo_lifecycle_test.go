package schedule

import (
	"testing"
)

// TestMemoEvictThenRecompute is the eviction-correctness contract: after the
// lifecycle evicts an entry, a fresh probe of the same inputs must recompute
// a permutation identical to the originally memoized one — same names in the
// same positions, and every returned pointer drawn from the caller's own
// query slice (the namespace replay guarantee).
func TestMemoEvictThenRecompute(t *testing.T) {
	qsA, mapA := memoFixture(7)
	cost := costOf(3)
	m := NewMemoCapacity(6, false) // below the shard count: one deterministic shard

	orig, hit, _ := m.OrderScoped("job-a", qsA, mapA, cost, 1)
	if hit {
		t.Fatal("first probe cannot hit")
	}

	// Churn enough distinct keys through the memo to evict the original.
	for seed := int64(100); seed < 130; seed++ {
		m.OrderScoped("job-a", qsA, mapA, cost, seed)
	}
	if ev := m.Stats().Evictions; ev == 0 {
		t.Fatal("churn past capacity must evict")
	}

	// Re-probe from a different job with fresh query pointers, as a new run
	// in the same namespace would.
	qsB, mapB := memoFixture(7)
	got, hit, _ := m.OrderScoped("job-b", qsB, mapB, cost, 1)
	if hit {
		t.Fatal("probe after eviction must recompute, not hit")
	}
	if len(got) != len(orig) {
		t.Fatalf("recomputed %d queries, originally %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Name != orig[i].Name {
			t.Fatalf("pos %d: recomputed %s, originally memoized %s", i, got[i].Name, orig[i].Name)
		}
		// Pointer verification: every result must come from the caller's
		// slice, never from the evicted entry's captured pointers.
		found := false
		for _, b := range qsB {
			if got[i] == b {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pos %d: result pointer not from the probing caller's slice", i)
		}
	}

	// And the recomputed entry must itself be re-memoized and replayable.
	again, hit, cross := m.OrderScoped("job-c", qsB, mapB, cost, 1)
	if !hit || !cross {
		t.Fatalf("re-memoized entry: hit=%v cross=%v, want true/true", hit, cross)
	}
	for i := range again {
		if again[i] != got[i] {
			t.Fatalf("pos %d: replay diverged from recomputation", i)
		}
	}
}

// TestMemoSegmentedLRURetention asserts the point of the segmented LRU: an
// entry that proved itself by a re-hit is promoted to the protected segment
// and survives a churn of cold one-shot entries that exceeds capacity many
// times over — exactly the churn that flushes the legacy lifecycle.
func TestMemoSegmentedLRURetention(t *testing.T) {
	qs, im := memoFixture(7)
	cost := costOf(3)
	const hotSeed = 1

	m := NewMemoCapacity(6, false)
	m.OrderScoped("hot", qs, im, cost, hotSeed)
	if _, hit, _ := m.OrderScoped("hot", qs, im, cost, hotSeed); !hit {
		t.Fatal("second probe of the hot key must hit")
	}
	for seed := int64(100); seed < 150; seed++ {
		m.OrderScoped("cold", qs, im, cost, seed)
	}
	if _, hit, _ := m.OrderScoped("hot", qs, im, cost, hotSeed); !hit {
		t.Fatal("protected hot entry evicted by cold churn; segmented LRU broken")
	}
	st := m.Stats()
	if st.ProtectedHits == 0 {
		t.Fatal("no protected hits recorded despite promotion")
	}
	if st.Evictions == 0 {
		t.Fatal("cold churn past capacity must evict")
	}

	// The legacy lifecycle loses the same hot entry to the same churn.
	lg := NewMemoCapacity(6, true)
	lg.OrderScoped("hot", qs, im, cost, hotSeed)
	if _, hit, _ := lg.OrderScoped("hot", qs, im, cost, hotSeed); !hit {
		t.Fatal("legacy memo must hit before overflow")
	}
	for seed := int64(100); seed < 150; seed++ {
		lg.OrderScoped("cold", qs, im, cost, seed)
	}
	if _, hit, _ := lg.OrderScoped("hot", qs, im, cost, hotSeed); hit {
		t.Fatal("legacy clear-on-overflow unexpectedly retained the hot entry")
	}
	if lg.Stats().Evictions == 0 {
		t.Fatal("legacy flush must count evictions")
	}
}

// TestMemoShardedEviction runs the default sharded configuration past its
// bound and asserts the total entry count stays bounded while results stay
// correct (every probe still returns the plain DP's permutation).
func TestMemoShardedEviction(t *testing.T) {
	qs, im := memoFixture(5)
	cost := costOf(3)
	m := NewMemoCapacity(16, false) // 8 shards, 2 entries each
	for seed := int64(0); seed < 200; seed++ {
		got := m.Order(qs, im, cost, seed)
		want := Order(qs, im, cost, seed)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d pos %d: memo diverged from plain DP", seed, i)
			}
		}
	}
	if ev := m.Stats().Evictions; ev == 0 {
		t.Fatal("200 distinct keys through 16 slots must evict")
	}
	total := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if len(s.entries) > s.cap {
			s.mu.Unlock()
			t.Fatalf("shard %d holds %d entries, cap %d", i, len(s.entries), s.cap)
		}
		if s.probation.n+s.protected.n != len(s.entries) {
			s.mu.Unlock()
			t.Fatalf("shard %d: list lengths %d+%d disagree with map size %d",
				i, s.probation.n, s.protected.n, len(s.entries))
		}
		total += len(s.entries)
		s.mu.Unlock()
	}
	if total > 16 {
		t.Fatalf("memo holds %d entries, bound 16", total)
	}
}

// TestMemoProtectedDemotion fills the protected segment beyond its bound and
// asserts demotion keeps the segment capped instead of growing unbounded.
func TestMemoProtectedDemotion(t *testing.T) {
	qs, im := memoFixture(6)
	cost := costOf(3)
	m := NewMemoCapacity(5, false) // one shard: cap 5, protected cap 4
	for seed := int64(0); seed < 5; seed++ {
		m.OrderScoped("a", qs, im, cost, seed)
		m.OrderScoped("a", qs, im, cost, seed) // re-hit: promote every entry
	}
	s := &m.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.protected.n > s.protCap {
		t.Fatalf("protected segment %d exceeds bound %d", s.protected.n, s.protCap)
	}
	if s.probation.n+s.protected.n != len(s.entries) {
		t.Fatalf("list lengths %d+%d disagree with map size %d",
			s.probation.n, s.protected.n, len(s.entries))
	}
}

// TestMemoLegacyPointerSafety mirrors TestMemoPointerAliasing across an
// eviction boundary: after a legacy flush mid-sequence, replays must still
// only ever return the probing caller's pointers.
func TestMemoLegacyPointerSafety(t *testing.T) {
	qsA, mapA := memoFixture(6)
	cost := costOf(3)
	m := NewMemoCapacity(4, true)
	m.OrderScoped("a", qsA, mapA, cost, 1)
	for seed := int64(50); seed < 60; seed++ {
		m.OrderScoped("a", qsA, mapA, cost, seed)
	}
	qsB, mapB := memoFixture(6)
	got, _, _ := m.OrderScoped("b", qsB, mapB, cost, 1)
	for _, q := range got {
		found := false
		for _, b := range qsB {
			if q == b {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("result contains a query pointer not from the caller's slice")
		}
	}
}
