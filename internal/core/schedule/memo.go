package schedule

import (
	"encoding/binary"
	"math"
	"strings"
	"sync"

	"lambdatune/internal/engine"
)

// Memo caches Order results across evaluation rounds. The selector
// re-schedules the same (remaining queries, configuration) inputs round
// after round — every round in which a configuration completes nothing
// repeats the previous round's DP verbatim — and the DP dominates a tuning
// run's host CPU time, so memoizing it is the scheduling counterpart of the
// engine's plan cache.
//
// The key captures everything Order consumes: the query sequence, each
// query's relevant index keys, every distinct index's creation cost (the
// only backend state the DP reads, folded in as raw float bits), and the
// clustering seed. Query identity is verified by pointer comparison on hit,
// so equal names can never alias. Like the plan cache, the memo changes host
// CPU time only — a hit returns the exact permutation the DP would compute.
//
// A Memo is safe for concurrent use: the parallel evaluator's workers
// schedule rounds on separate snapshots but share one memo.
type Memo struct {
	mu sync.Mutex
	m  map[string]memoEntry
}

type memoEntry struct {
	in   []*engine.Query
	perm []int // perm[i] indexes into in
}

// memoMaxEntries bounds the memo; overflow clears it (the working set of a
// selector run is orders of magnitude smaller).
const memoMaxEntries = 4096

// NewMemo returns an empty Order memo.
func NewMemo() *Memo { return &Memo{} }

// Order is the memoizing front of the package-level Order function. A nil
// receiver degrades to the plain DP, so callers can thread an optional memo
// without branching.
func (m *Memo) Order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) []*engine.Query {
	out, _ := m.OrderWithHit(queries, indexMap, cost, seed)
	return out
}

// OrderWithHit is Order plus a hit report for telemetry: the bool is true
// when the permutation came from the memo rather than a fresh DP run.
func (m *Memo) OrderWithHit(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) ([]*engine.Query, bool) {
	if m == nil {
		return Order(queries, indexMap, cost, seed), false
	}
	var b strings.Builder
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	b.Write(buf[:])
	seen := map[string]bool{}
	for _, q := range queries {
		b.WriteString(q.Name)
		b.WriteByte(1)
		for _, d := range indexMap[q] {
			k := d.Key()
			b.WriteString(k)
			if !seen[k] {
				seen[k] = true
				// Fold the creation cost in at first sight so the key stays
				// a deterministic function of the inputs.
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(cost(d)))
				b.Write(buf[:])
			}
			b.WriteByte(2)
		}
		b.WriteByte(3)
	}
	key := b.String()

	m.mu.Lock()
	e, ok := m.m[key]
	m.mu.Unlock()
	if ok && sameQueries(e.in, queries) {
		out := make([]*engine.Query, len(e.perm))
		for i, idx := range e.perm {
			out[i] = e.in[idx]
		}
		return out, true
	}

	out := Order(queries, indexMap, cost, seed)
	pos := make(map[*engine.Query]int, len(queries))
	for i, q := range queries {
		pos[q] = i
	}
	perm := make([]int, len(out))
	for i, q := range out {
		perm[i] = pos[q]
	}
	in := append([]*engine.Query(nil), queries...)
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[string]memoEntry, 64)
	} else if len(m.m) >= memoMaxEntries {
		clear(m.m)
	}
	m.m[key] = memoEntry{in: in, perm: perm}
	m.mu.Unlock()
	return out, false
}

func sameQueries(a, b []*engine.Query) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
