package schedule

import (
	"encoding/binary"
	"math"
	"strings"
	"sync"

	"lambdatune/internal/engine"
)

// Memo caches Order results across evaluation rounds. The selector
// re-schedules the same (remaining queries, configuration) inputs round
// after round — every round in which a configuration completes nothing
// repeats the previous round's DP verbatim — and the DP dominates a tuning
// run's host CPU time, so memoizing it is the scheduling counterpart of the
// engine's plan cache.
//
// The key captures everything Order consumes: the query sequence, each
// query's relevant index keys, every distinct index's creation cost (the
// only backend state the DP reads, folded in as raw float bits), and the
// clustering seed. Query identity is verified by pointer comparison on hit,
// so equal names can never alias. Like the plan cache, the memo changes host
// CPU time only — a hit returns the exact permutation the DP would compute.
//
// A Memo is safe for concurrent use: the parallel evaluator's workers
// schedule rounds on separate snapshots but share one memo. A runtime-owned
// memo is additionally shared across whole jobs via OrderScoped, which
// attributes entries to their creating job and coalesces concurrent
// first computations of the same key.
type Memo struct {
	mu sync.Mutex
	m  map[string]memoEntry
	// inflight coalesces concurrent scoped first computations: the first
	// caller of a missing key computes, later callers wait for its entry
	// instead of repeating the DP. Private (unscoped) callers never wait —
	// they recompute exactly as the pre-runtime memo did.
	inflight map[string]chan struct{}
}

type memoEntry struct {
	in    []*engine.Query
	perm  []int // perm[i] indexes into in
	owner string
}

// memoMaxEntries bounds the memo; overflow clears it (the working set of a
// selector run is orders of magnitude smaller).
const memoMaxEntries = 4096

// NewMemo returns an empty Order memo.
func NewMemo() *Memo { return &Memo{} }

// Order is the memoizing front of the package-level Order function. A nil
// receiver degrades to the plain DP, so callers can thread an optional memo
// without branching.
func (m *Memo) Order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) []*engine.Query {
	out, _ := m.OrderWithHit(queries, indexMap, cost, seed)
	return out
}

// OrderWithHit is Order plus a hit report for telemetry: the bool is true
// when the permutation came from the memo rather than a fresh DP run.
func (m *Memo) OrderWithHit(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) ([]*engine.Query, bool) {
	out, hit, _ := m.OrderScoped("", queries, indexMap, cost, seed)
	return out, hit
}

// OrderScoped is OrderWithHit for runtime-shared memos: owner names the job
// probing the memo ("" = private, pre-runtime semantics). The extra bool
// reports a cross-job hit — the entry was computed by a different owner.
//
// Two behaviors are gated on owner != "" because only the runtime can
// justify them:
//
//   - Cross-run reuse. Distinct runs hold distinct *engine.Query pointers
//     for the same workload, so the pointer-identity check that guards
//     private memos would never fire across jobs. A runtime memo lives in a
//     namespace keyed by (catalog fingerprint, workload digest), which
//     proves that positionally equal query names carry byte-equal SQL —
//     so on a key match with equal names the stored permutation is replayed
//     onto the caller's own query pointers.
//
//   - Coalescing. Concurrent jobs miss the same key together at startup;
//     the first computes, the rest wait and then hit. This converts the
//     thundering herd of N similar jobs into one DP run per key.
func (m *Memo) OrderScoped(owner string, queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) ([]*engine.Query, bool, bool) {
	if m == nil {
		return Order(queries, indexMap, cost, seed), false, false
	}
	var b strings.Builder
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	b.Write(buf[:])
	seen := map[string]bool{}
	for _, q := range queries {
		b.WriteString(q.Name)
		b.WriteByte(1)
		for _, d := range indexMap[q] {
			k := d.Key()
			b.WriteString(k)
			if !seen[k] {
				seen[k] = true
				// Fold the creation cost in at first sight so the key stays
				// a deterministic function of the inputs.
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(cost(d)))
				b.Write(buf[:])
			}
			b.WriteByte(2)
		}
		b.WriteByte(3)
	}
	key := b.String()

	for {
		m.mu.Lock()
		if e, ok := m.m[key]; ok {
			if sameQueries(e.in, queries) {
				m.mu.Unlock()
				out := make([]*engine.Query, len(e.perm))
				for i, idx := range e.perm {
					out[i] = e.in[idx]
				}
				return out, true, owner != "" && e.owner != owner
			}
			if owner != "" && sameNames(e.in, queries) {
				m.mu.Unlock()
				out := make([]*engine.Query, len(e.perm))
				for i, idx := range e.perm {
					out[i] = queries[idx]
				}
				return out, true, e.owner != owner
			}
			// Same key but incompatible query slice (private memo with alien
			// pointers): fall through and recompute, overwriting the entry.
		}
		if owner != "" {
			if ch, ok := m.inflight[key]; ok {
				m.mu.Unlock()
				<-ch
				continue // the computing job stored the entry; re-probe
			}
			if m.inflight == nil {
				m.inflight = make(map[string]chan struct{})
			}
			ch := make(chan struct{})
			m.inflight[key] = ch
			m.mu.Unlock()
			defer func() {
				m.mu.Lock()
				delete(m.inflight, key)
				m.mu.Unlock()
				close(ch)
			}()
		} else {
			m.mu.Unlock()
		}
		break
	}

	out := Order(queries, indexMap, cost, seed)
	pos := make(map[*engine.Query]int, len(queries))
	for i, q := range queries {
		pos[q] = i
	}
	perm := make([]int, len(out))
	for i, q := range out {
		perm[i] = pos[q]
	}
	in := append([]*engine.Query(nil), queries...)
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[string]memoEntry, 64)
	} else if len(m.m) >= memoMaxEntries {
		clear(m.m)
	}
	m.m[key] = memoEntry{in: in, perm: perm, owner: owner}
	m.mu.Unlock()
	return out, false, false
}

func sameQueries(a, b []*engine.Query) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameNames reports positional name equality — the cross-run identity test.
// It is sound only inside a runtime namespace, where the workload digest
// already pins each name to one SQL body.
func sameNames(a, b []*engine.Query) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}
