package schedule

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"lambdatune/internal/engine"
)

// Memo caches Order results across evaluation rounds. The selector
// re-schedules the same (remaining queries, configuration) inputs round
// after round — every round in which a configuration completes nothing
// repeats the previous round's DP verbatim — and the DP dominates a tuning
// run's host CPU time, so memoizing it is the scheduling counterpart of the
// engine's plan cache.
//
// The key captures everything Order consumes: the query sequence, each
// query's relevant index keys, every distinct index's creation cost (the
// only backend state the DP reads, folded in as raw float bits), and the
// clustering seed. Query identity is verified by pointer comparison on hit,
// so equal names can never alias. Like the plan cache, the memo changes host
// CPU time only — a hit returns the exact permutation the DP would compute.
//
// Lifecycle. The memo is bounded by a sharded segmented LRU rather than the
// clear-on-overflow of earlier revisions: keys hash onto independent shards
// (one lock each, so concurrent jobs don't serialize on one mutex), and each
// shard keeps a probation and a protected segment. New entries enter
// probation; a re-hit entry is promoted to protected, displacing the
// protected segment's own least-recent entry back to probation when the
// segment is full. Overflow evicts from the probation tail first, so a
// long-lived daemon churning through cold one-shot tenants evicts their
// never-re-hit entries while hot cross-job entries stay resident. The legacy
// clear-on-overflow behavior survives behind NewMemoCapacity's legacy flag
// as the A/B baseline for the lifecycle benchmarks.
//
// A Memo is safe for concurrent use: the parallel evaluator's workers
// schedule rounds on separate snapshots but share one memo. A runtime-owned
// memo is additionally shared across whole jobs via OrderScoped, which
// attributes entries to their creating job and coalesces concurrent
// first computations of the same key.
type Memo struct {
	shards   []memoShard
	legacy   bool
	capacity int // total entry bound across shards

	hits          atomic.Int64
	protectedHits atomic.Int64
	evictions     atomic.Int64

	// inflight coalesces concurrent scoped first computations: the first
	// caller of a missing key computes, later callers wait for its entry
	// instead of repeating the DP. Private (unscoped) callers never wait —
	// they recompute exactly as the pre-runtime memo did.
	inflightMu sync.Mutex
	inflight   map[string]chan struct{}
}

// memoShard is one independently locked slice of the memo's key space.
type memoShard struct {
	mu        sync.Mutex
	entries   map[string]*memoEntry
	probation lruList
	protected lruList
	cap       int // entry bound for this shard
	protCap   int // protected-segment bound (a fraction of cap)
}

// memoEntry is one memoized permutation, threaded onto its segment's
// recency list.
type memoEntry struct {
	key   string
	in    []*engine.Query
	perm  []int // perm[i] indexes into in
	owner string

	protected  bool
	prev, next *memoEntry
}

// lruList is an intrusive doubly-linked recency list: front = most recent.
type lruList struct {
	front, back *memoEntry
	n           int
}

func (l *lruList) pushFront(e *memoEntry) {
	e.prev = nil
	e.next = l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
	l.n++
}

func (l *lruList) remove(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// memoMaxEntries is the default total entry bound (the working set of one
// selector run is orders of magnitude smaller; a daemon's cross-job hot set
// is what the segmented LRU protects within it).
const memoMaxEntries = 4096

// memoShardCount is the number of lock shards (power of two for masking).
const memoShardCount = 8

// NewMemo returns an empty Order memo with the default segmented-LRU
// lifecycle.
func NewMemo() *Memo { return NewMemoCapacity(memoMaxEntries, false) }

// NewLegacyMemo returns a memo with the historical clear-on-overflow
// lifecycle at the default bound — the A/B baseline for eviction benchmarks.
func NewLegacyMemo() *Memo { return NewMemoCapacity(memoMaxEntries, true) }

// NewMemoCapacity returns a memo bounded to capacity entries. legacy selects
// the historical clear-on-overflow lifecycle (single shard, full flush at
// the bound) — kept as the measurable baseline for eviction benchmarks.
func NewMemoCapacity(capacity int, legacy bool) *Memo {
	if capacity < 1 {
		capacity = 1
	}
	shards := memoShardCount
	if legacy || capacity < shards {
		shards = 1
	}
	m := &Memo{
		shards:   make([]memoShard, shards),
		legacy:   legacy,
		capacity: capacity,
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.cap = per
		// Protected holds at most ~80% of a shard, so promotion always
		// leaves probation room for new entries to prove themselves.
		s.protCap = per * 4 / 5
		if s.protCap < 1 {
			s.protCap = 1
		}
	}
	return m
}

// MemoStats is a point-in-time snapshot of the memo's lifecycle accounting.
type MemoStats struct {
	// Hits counts probes served from the memo.
	Hits int64
	// ProtectedHits counts hits on protected-segment entries — entries that
	// earned residency by re-use. ProtectedHits/Hits is the hit-retention
	// signal exported by the runtime.
	ProtectedHits int64
	// Evictions counts entries dropped by the lifecycle (individual LRU
	// evictions, or whole flushed entries in legacy mode).
	Evictions int64
}

// SegmentStats is a point-in-time snapshot of segment occupancy across every
// shard: how many entries are still proving themselves (probation) versus
// earned residency through re-use (protected). Both are zero under the legacy
// lifecycle, which has no segments.
type SegmentStats struct {
	Probation int
	Protected int
}

// Segments sums probation/protected occupancy over the shards (zero value
// for nil or legacy memos). Each shard is locked briefly in turn, so the
// snapshot is per-shard consistent rather than globally atomic — fine for
// telemetry, which is its only consumer.
func (m *Memo) Segments() SegmentStats {
	var out SegmentStats
	if m == nil || m.legacy {
		return out
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out.Probation += s.probation.n
		out.Protected += s.protected.n
		s.mu.Unlock()
	}
	return out
}

// Stats returns the memo's lifecycle accounting (zero value for nil).
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	return MemoStats{
		Hits:          m.hits.Load(),
		ProtectedHits: m.protectedHits.Load(),
		Evictions:     m.evictions.Load(),
	}
}

// shardIndex maps a key onto its lock shard. Generic over the key's
// representation so the probe path can hash the pooled []byte key without
// first converting it to a string; the FNV-1a loop is written out because
// hash/fnv's Write would force the key bytes onto the heap.
func shardIndex[K ~string | ~[]byte](m *Memo, key K) *memoShard {
	if len(m.shards) == 1 {
		return &m.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return &m.shards[h%uint32(len(m.shards))]
}

// orderKeyBuf is pooled scratch for OrderScoped's key construction: the key
// bytes plus the first-sight index set used for cost folding. Reusing both
// removes the dominant allocation on the memo's hit path — a warm probe
// allocates only the replayed permutation.
type orderKeyBuf struct {
	b    []byte
	seen []engine.IndexDef
}

var orderKeyPool = sync.Pool{New: func() any { return new(orderKeyBuf) }}

// seenIndex reports whether seen already holds d's key. Name plays no part
// in IndexDef.Key, so the comparison mirrors it: Table and Columns only. A
// linear scan replaces the per-call map — index lists are short and a slice
// probe allocates nothing.
func seenIndex(seen []engine.IndexDef, d engine.IndexDef) bool {
	for _, s := range seen {
		if s.Table == d.Table && s.Columns == d.Columns {
			return true
		}
	}
	return false
}

// Order is the memoizing front of the package-level Order function. A nil
// receiver degrades to the plain DP, so callers can thread an optional memo
// without branching.
func (m *Memo) Order(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) []*engine.Query {
	out, _ := m.OrderWithHit(queries, indexMap, cost, seed)
	return out
}

// OrderWithHit is Order plus a hit report for telemetry: the bool is true
// when the permutation came from the memo rather than a fresh DP run.
func (m *Memo) OrderWithHit(queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) ([]*engine.Query, bool) {
	out, hit, _ := m.OrderScoped("", queries, indexMap, cost, seed)
	return out, hit
}

// OrderScoped is OrderWithHit for runtime-shared memos: owner names the job
// probing the memo ("" = private, pre-runtime semantics). The extra bool
// reports a cross-job hit — the entry was computed by a different owner.
//
// Two behaviors are gated on owner != "" because only the runtime can
// justify them:
//
//   - Cross-run reuse. Distinct runs hold distinct *engine.Query pointers
//     for the same workload, so the pointer-identity check that guards
//     private memos would never fire across jobs. A runtime memo lives in a
//     namespace keyed by (catalog fingerprint, workload digest), which
//     proves that positionally equal query names carry byte-equal SQL —
//     so on a key match with equal names the stored permutation is replayed
//     onto the caller's own query pointers.
//
//   - Coalescing. Concurrent jobs miss the same key together at startup;
//     the first computes, the rest wait and then hit. This converts the
//     thundering herd of N similar jobs into one DP run per key.
func (m *Memo) OrderScoped(owner string, queries []*engine.Query, indexMap map[*engine.Query][]engine.IndexDef, cost IndexCost, seed int64) ([]*engine.Query, bool, bool) {
	if m == nil {
		return Order(queries, indexMap, cost, seed), false, false
	}
	// The key is built into a pooled buffer; probe and the inflight lookup
	// use the map[string(b)] no-allocation index form, so a hit — the common
	// case for a warm daemon — materializes no key string at all.
	kb := orderKeyPool.Get().(*orderKeyBuf)
	k := kb.b[:0]
	seen := kb.seen[:0]
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	k = append(k, buf[:]...)
	for _, q := range queries {
		k = append(k, q.Name...)
		k = append(k, 1)
		for _, d := range indexMap[q] {
			k = append(k, d.Table...)
			k = append(k, '(')
			k = append(k, d.Columns...)
			k = append(k, ')')
			if !seenIndex(seen, d) {
				seen = append(seen, d)
				// Fold the creation cost in at first sight so the key stays
				// a deterministic function of the inputs.
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(cost(d)))
				k = append(k, buf[:]...)
			}
			k = append(k, 2)
		}
		k = append(k, 3)
	}
	kb.b, kb.seen = k, seen

	for {
		if out, hit, cross, ok := m.probe(k, owner, queries); ok {
			orderKeyPool.Put(kb)
			return out, hit, cross
		}
		if owner == "" {
			break
		}
		m.inflightMu.Lock()
		if ch, ok := m.inflight[string(k)]; ok {
			m.inflightMu.Unlock()
			<-ch
			continue // the computing job stored the entry; re-probe
		}
		if m.inflight == nil {
			m.inflight = make(map[string]chan struct{})
		}
		ikey := string(k)
		ch := make(chan struct{})
		m.inflight[ikey] = ch
		m.inflightMu.Unlock()
		defer func() {
			m.inflightMu.Lock()
			delete(m.inflight, ikey)
			m.inflightMu.Unlock()
			close(ch)
		}()
		break
	}

	// Compute path: the key string is materialized exactly here, where it is
	// about to be retained by store.
	key := string(k)
	orderKeyPool.Put(kb)

	out := Order(queries, indexMap, cost, seed)
	pos := make(map[*engine.Query]int, len(queries))
	for i, q := range queries {
		pos[q] = i
	}
	perm := make([]int, len(out))
	for i, q := range out {
		perm[i] = pos[q]
	}
	in := append([]*engine.Query(nil), queries...)
	m.store(key, in, perm, owner)
	return out, false, false
}

// probe looks key up, replays a compatible entry, and reports ok=false when
// the caller must (re)compute — either a miss or an entry whose query slice
// is incompatible with the caller's (private memo with alien pointers).
func (m *Memo) probe(key []byte, owner string, queries []*engine.Query) ([]*engine.Query, bool, bool, bool) {
	s := shardIndex(m, key)
	s.mu.Lock()
	e, ok := s.entries[string(key)]
	if !ok {
		s.mu.Unlock()
		return nil, false, false, false
	}
	switch {
	case sameQueries(e.in, queries):
		out := make([]*engine.Query, len(e.perm))
		for i, idx := range e.perm {
			out[i] = e.in[idx]
		}
		s.touch(e, m)
		s.mu.Unlock()
		return out, true, owner != "" && e.owner != owner, true
	case owner != "" && sameNames(e.in, queries):
		out := make([]*engine.Query, len(e.perm))
		for i, idx := range e.perm {
			out[i] = queries[idx]
		}
		cross := e.owner != owner
		s.touch(e, m)
		s.mu.Unlock()
		return out, true, cross, true
	}
	s.mu.Unlock()
	return nil, false, false, false
}

// touch records a hit on e and promotes it: probation entries move to the
// protected segment (demoting that segment's coldest entry when full);
// protected entries move to their segment's front. Caller holds s.mu.
func (s *memoShard) touch(e *memoEntry, m *Memo) {
	m.hits.Add(1)
	if m.legacy {
		return // legacy lifecycle has no recency structure
	}
	if e.protected {
		m.protectedHits.Add(1)
		if s.protected.front != e {
			s.protected.remove(e)
			s.protected.pushFront(e)
		}
		return
	}
	s.probation.remove(e)
	e.protected = true
	s.protected.pushFront(e)
	if s.protected.n > s.protCap {
		demoted := s.protected.back
		s.protected.remove(demoted)
		demoted.protected = false
		s.probation.pushFront(demoted)
	}
}

// store inserts (or replaces) key's entry and applies the lifecycle bound:
// segmented-LRU eviction from the probation tail (falling back to the
// protected tail when probation is empty), or a full flush in legacy mode.
func (m *Memo) store(key string, in []*engine.Query, perm []int, owner string) {
	s := shardIndex(m, key)
	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[string]*memoEntry, 64)
	} else if m.legacy && len(s.entries) >= s.cap {
		m.evictions.Add(int64(len(s.entries)))
		clear(s.entries)
	}
	if old, ok := s.entries[key]; ok && !m.legacy {
		if old.protected {
			s.protected.remove(old)
		} else {
			s.probation.remove(old)
		}
	}
	e := &memoEntry{key: key, in: in, perm: perm, owner: owner}
	s.entries[key] = e
	if !m.legacy {
		s.probation.pushFront(e)
		for len(s.entries) > s.cap {
			victim := s.probation.back
			if victim == nil {
				victim = s.protected.back
				s.protected.remove(victim)
			} else {
				s.probation.remove(victim)
			}
			delete(s.entries, victim.key)
			m.evictions.Add(1)
		}
	}
	s.mu.Unlock()
}

func sameQueries(a, b []*engine.Query) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameNames reports positional name equality — the cross-run identity test.
// It is sound only inside a runtime namespace, where the workload digest
// already pins each name to one SQL body.
func sameNames(a, b []*engine.Query) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}
