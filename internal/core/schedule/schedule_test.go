package schedule

import (
	"math"
	"math/rand"
	"testing"

	"lambdatune/internal/engine"
)

// fixedCost assigns costs by index key through a map.
func fixedCost(costs map[string]float64) IndexCost {
	return func(d engine.IndexDef) float64 { return costs[d.Key()] }
}

func item(name string, defs ...engine.IndexDef) Item {
	m := map[string]engine.IndexDef{}
	for _, d := range defs {
		m[d.Key()] = d
	}
	return Item{Queries: []*engine.Query{{Name: name}}, Indexes: m}
}

func TestExpectedCostPaperExample(t *testing.T) {
	// Paper Example 5.1: q1 needs index costing 1, q2 needs index costing 5.
	// Order q1-q2: 1 + 0.5*5 = 3.5. Order q2-q1: 5 + 0.5*1 = 5.5.
	ia := engine.NewIndexDef("t", "a")
	ib := engine.NewIndexDef("t", "b")
	cost := fixedCost(map[string]float64{ia.Key(): 1, ib.Key(): 5})
	q1 := item("q1", ia)
	q2 := item("q2", ib)
	if got := ExpectedCost([]Item{q1, q2}, cost); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("q1-q2: %v, want 3.5", got)
	}
	if got := ExpectedCost([]Item{q2, q1}, cost); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("q2-q1: %v, want 5.5", got)
	}
}

func TestOrderDPPrefersCheapFirst(t *testing.T) {
	ia := engine.NewIndexDef("t", "a")
	ib := engine.NewIndexDef("t", "b")
	cost := fixedCost(map[string]float64{ia.Key(): 1, ib.Key(): 5})
	order := OrderDP([]Item{item("expensive", ib), item("cheap", ia)}, cost)
	if order[0].Queries[0].Name != "cheap" {
		t.Errorf("order: %s first", order[0].Queries[0].Name)
	}
}

func TestOrderDPSharedIndexes(t *testing.T) {
	// q1 and q2 share index A; q3 needs expensive B. Optimal puts q3 last
	// and the A-sharing pair first (A paid once).
	ia := engine.NewIndexDef("t", "a")
	ib := engine.NewIndexDef("t", "b")
	cost := fixedCost(map[string]float64{ia.Key(): 2, ib.Key(): 10})
	items := []Item{item("q3", ib), item("q1", ia), item("q2", ia)}
	order := OrderDP(items, cost)
	if order[2].Queries[0].Name != "q3" {
		t.Errorf("expensive query not last: %v", names(order))
	}
}

func names(items []Item) []string {
	var out []string
	for _, it := range items {
		for _, q := range it.Queries {
			out = append(out, q.Name)
		}
	}
	return out
}

// bruteForce finds the optimal order by enumeration.
func bruteForce(items []Item, cost IndexCost) float64 {
	n := len(items)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			order := make([]Item, n)
			for i, p := range perm {
				order[i] = items[p]
			}
			if c := ExpectedCost(order, cost); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// TestOrderDPMatchesBruteForce: DP must return an Eq.1-optimal order on
// random instances (Theorem 5.3).
func TestOrderDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tables := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		costs := map[string]float64{}
		var defs []engine.IndexDef
		for _, tb := range tables {
			d := engine.NewIndexDef(tb, "x")
			defs = append(defs, d)
			costs[d.Key()] = float64(1 + rng.Intn(20))
		}
		items := make([]Item, n)
		for i := range items {
			m := map[string]engine.IndexDef{}
			for _, d := range defs {
				if rng.Float64() < 0.4 {
					m[d.Key()] = d
				}
			}
			items[i] = Item{Queries: []*engine.Query{{Name: string(rune('a' + i))}}, Indexes: m}
		}
		cost := fixedCost(costs)
		got := ExpectedCost(OrderDP(items, cost), cost)
		want := bruteForce(items, cost)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: DP %v, brute force %v", trial, got, want)
		}
	}
}

func TestOrderDPEmpty(t *testing.T) {
	if got := OrderDP(nil, fixedCost(nil)); got != nil {
		t.Errorf("empty: %v", got)
	}
}

func TestOrderDPPanicsOverCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized input")
		}
	}()
	items := make([]Item, MaxDPQueries+1)
	for i := range items {
		items[i] = item("q")
	}
	OrderDP(items, fixedCost(nil))
}

func TestClusterMergesIdenticalDependencies(t *testing.T) {
	// Queries with identical index sets collapse (paper example: q1:A, q2:A).
	ia := engine.NewIndexDef("t", "a")
	ib := engine.NewIndexDef("t", "b")
	var items []Item
	for i := 0; i < 10; i++ {
		items = append(items, item("a", ia))
	}
	for i := 0; i < 10; i++ {
		items = append(items, item("b", ib))
	}
	clusters := Cluster(items, 2, 1)
	if len(clusters) != 2 {
		t.Fatalf("clusters: %d", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Queries)
		if len(c.Indexes) != 1 {
			t.Errorf("mixed cluster: %v", c.Indexes)
		}
	}
	if total != 20 {
		t.Errorf("queries lost: %d", total)
	}
}

func TestClusterPreservesAllQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var items []Item
	defs := []engine.IndexDef{
		engine.NewIndexDef("a", "x"), engine.NewIndexDef("b", "x"),
		engine.NewIndexDef("c", "x"), engine.NewIndexDef("d", "x"),
	}
	for i := 0; i < 50; i++ {
		m := map[string]engine.IndexDef{}
		for _, d := range defs {
			if rng.Float64() < 0.5 {
				m[d.Key()] = d
			}
		}
		items = append(items, Item{Queries: []*engine.Query{{Name: "q"}}, Indexes: m})
	}
	clusters := Cluster(items, MaxDPQueries, 7)
	if len(clusters) > MaxDPQueries {
		t.Fatalf("too many clusters: %d", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Queries)
	}
	if total != 50 {
		t.Errorf("queries lost in clustering: %d", total)
	}
}

func TestClusterNoIndexes(t *testing.T) {
	var items []Item
	for i := 0; i < 30; i++ {
		items = append(items, item("q"))
	}
	clusters := Cluster(items, 5, 1)
	if len(clusters) != 1 {
		t.Errorf("index-free items should merge to one cluster, got %d", len(clusters))
	}
}

func TestOrderEndToEnd(t *testing.T) {
	// 30 queries, 4 index groups: Order must cluster then DP and return all.
	defs := []engine.IndexDef{
		engine.NewIndexDef("a", "x"), engine.NewIndexDef("b", "x"),
		engine.NewIndexDef("c", "x"), engine.NewIndexDef("d", "x"),
	}
	costs := map[string]float64{
		defs[0].Key(): 1, defs[1].Key(): 5, defs[2].Key(): 10, defs[3].Key(): 20,
	}
	var queries []*engine.Query
	indexMap := map[*engine.Query][]engine.IndexDef{}
	for i := 0; i < 30; i++ {
		q := &engine.Query{Name: string(rune('a' + i%26))}
		queries = append(queries, q)
		indexMap[q] = []engine.IndexDef{defs[i%4]}
	}
	ordered := Order(queries, indexMap, fixedCost(costs), 3)
	if len(ordered) != 30 {
		t.Fatalf("queries lost: %d", len(ordered))
	}
	// First query should depend on the cheapest index group.
	first := indexMap[ordered[0]][0]
	if costs[first.Key()] != 1 {
		t.Errorf("first query depends on cost-%v index", costs[first.Key()])
	}
}

func TestExpectedCostDecreasingWeights(t *testing.T) {
	// Moving an expensive-index query later strictly reduces expected cost.
	ia := engine.NewIndexDef("t", "a")
	ib := engine.NewIndexDef("t", "b")
	ic := engine.NewIndexDef("t", "c")
	cost := fixedCost(map[string]float64{ia.Key(): 1, ib.Key(): 1, ic.Key(): 50})
	early := []Item{item("x", ic), item("y", ia), item("z", ib)}
	late := []Item{item("y", ia), item("z", ib), item("x", ic)}
	if ExpectedCost(late, cost) >= ExpectedCost(early, cost) {
		t.Error("later placement of expensive index not cheaper")
	}
}
