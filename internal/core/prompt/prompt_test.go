package prompt

import (
	"context"
	"strings"
	"testing"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
	"lambdatune/internal/sqlparser"
	"lambdatune/internal/workload"
)

func tpchDB(t *testing.T) (*backend.Sim, *workload.Workload) {
	t.Helper()
	w := workload.TPCH(1)
	return backend.NewSim(engine.Postgres, w.Catalog, engine.DefaultHardware), w
}

func TestCollectSnippets(t *testing.T) {
	db, w := tpchDB(t)
	snips := CollectSnippets(db, w.Queries)
	if len(snips) < 8 {
		t.Fatalf("snippets: %d", len(snips))
	}
	// Sorted descending by value.
	for i := 1; i < len(snips); i++ {
		if snips[i].Value > snips[i-1].Value {
			t.Fatal("snippets not sorted by value")
		}
	}
	// The orders-lineitem join must rank among the most expensive.
	found := false
	for _, s := range snips[:5] {
		if s.Condition.String() == "lineitem.l_orderkey = orders.o_orderkey" {
			found = true
		}
	}
	if !found {
		t.Errorf("l_orderkey join not in top snippets: %+v", snips[:5])
	}
}

func TestSelectILPBudgetRespected(t *testing.T) {
	db, w := tpchDB(t)
	snips := CollectSnippets(db, w.Queries)
	for _, budget := range []int{50, 100, 200, 400} {
		sel, err := SelectILP(snips, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Tokens > budget {
			t.Errorf("budget %d: rendered tokens %d", budget, sel.Tokens)
		}
	}
}

func TestSelectILPMonotoneInBudget(t *testing.T) {
	db, w := tpchDB(t)
	snips := CollectSnippets(db, w.Queries)
	prev := -1.0
	for _, budget := range []int{50, 150, 400, 1000} {
		sel, err := SelectILP(snips, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Value < prev-1e-6 {
			t.Errorf("value decreased with larger budget: %v after %v", sel.Value, prev)
		}
		prev = sel.Value
	}
}

func TestSelectILPBeatsOrMatchesGreedy(t *testing.T) {
	// The ILP budgets tokens with the linear H_c model (which charges a
	// separator for every RHS column) while the greedy selector measures
	// the rendered text (whose last RHS column has no trailing comma), so
	// right at the budget boundary the two can admit marginally different
	// snippet sets; compare with a 5% tolerance.
	db, w := tpchDB(t)
	snips := CollectSnippets(db, w.Queries)
	for _, budget := range []int{60, 120, 250} {
		ilpSel, err := SelectILP(snips, budget)
		if err != nil {
			t.Fatal(err)
		}
		gSel := SelectGreedy(snips, budget)
		if ilpSel.Value < gSel.Value*0.95 {
			t.Errorf("budget %d: ILP value %v < greedy %v", budget, ilpSel.Value, gSel.Value)
		}
	}
}

func TestSelectILPNoSymmetricDuplicates(t *testing.T) {
	db, w := tpchDB(t)
	snips := CollectSnippets(db, w.Queries)
	sel, err := SelectILP(snips, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for lhs, rhss := range sel.Lines {
		for _, rhs := range rhss {
			key := lhs + "|" + rhs
			rev := rhs + "|" + lhs
			if seen[rev] {
				t.Errorf("symmetric pair selected twice: %s and %s", key, rev)
			}
			seen[key] = true
		}
	}
}

func TestSelectILPEmpty(t *testing.T) {
	sel, err := SelectILP(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Lines) != 0 || sel.Value != 0 {
		t.Errorf("empty input: %+v", sel)
	}
}

func TestSelectionRenderFormat(t *testing.T) {
	// Right-hand sides keep insertion (value) order.
	sel := Selection{Lines: map[string][]string{
		"a.x": {"c.z", "b.y"},
	}}
	got := sel.Render()
	want := "a.x: c.z, b.y\n"
	if got != want {
		t.Errorf("render: %q, want %q", got, want)
	}
}

func TestRenderLineOrderByValue(t *testing.T) {
	sel := Selection{
		Lines:     map[string][]string{"low.x": {"a.b"}, "high.y": {"c.d"}},
		LineValue: map[string]float64{"low.x": 1, "high.y": 100},
	}
	got := sel.Render()
	want := "high.y: c.d\nlow.x: a.b\n"
	if got != want {
		t.Errorf("render: %q, want %q", got, want)
	}
}

func TestGeneratePromptStructure(t *testing.T) {
	db, w := tpchDB(t)
	res, err := Generate(db, w.Queries, engine.DefaultHardware, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PostgreSQL", "memory: 61 GB", "cores: 8", "join key"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("prompt missing %q", want)
		}
	}
	if res.WorkloadTokens <= 0 || res.TotalTokens <= res.WorkloadTokens {
		t.Errorf("token accounting: %+v", res)
	}
}

func TestGeneratePromptBudget(t *testing.T) {
	db, w := tpchDB(t)
	opts := DefaultOptions()
	opts.TokenBudget = 80
	res, err := Generate(db, w.Queries, engine.DefaultHardware, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkloadTokens > 80 {
		t.Errorf("workload tokens %d exceed budget", res.WorkloadTokens)
	}
}

func TestGenerateFullSQL(t *testing.T) {
	db, w := tpchDB(t)
	opts := DefaultOptions()
	opts.FullSQL = true
	opts.TokenBudget = 3000
	res, err := Generate(db, w.Queries, engine.DefaultHardware, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesEmbedded == 0 {
		t.Fatal("no queries embedded")
	}
	if res.QueriesEmbedded >= len(w.Queries) {
		t.Errorf("all %d queries fit in 3000 tokens — budget not binding", res.QueriesEmbedded)
	}
	if !strings.Contains(res.Text, "SELECT") {
		t.Error("no SQL in full-SQL prompt")
	}
}

// TestPromptFeedsLLM: the generated prompt must give the simulated LLM
// enough structure to produce parseable, index-bearing configurations.
func TestPromptFeedsLLM(t *testing.T) {
	db, w := tpchDB(t)
	res, err := Generate(db, w.Queries, engine.DefaultHardware, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	client := llm.NewSimClient(1)
	out, err := client.CompleteT(context.Background(), res.Text, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg, _, err := engine.ParseScript(engine.Postgres, "t", out)
	if err != nil {
		t.Fatalf("LLM output unparseable: %v", err)
	}
	if len(cfg.Indexes) == 0 {
		t.Errorf("no index recommendations from prompt:\n%s\n→\n%s", res.Text, out)
	}
	// All recommended indexes must target real tables.
	for _, ix := range cfg.Indexes {
		if w.Catalog.Table(ix.Table) == nil {
			t.Errorf("index on unknown table: %+v", ix)
		}
	}
}

func TestSnippetValuesPositive(t *testing.T) {
	db, w := tpchDB(t)
	for _, s := range CollectSnippets(db, w.Queries) {
		if s.Value <= 0 {
			t.Errorf("non-positive snippet value: %+v", s)
		}
		if s.Condition != s.Condition.Canonical() {
			t.Errorf("non-canonical snippet: %+v", s.Condition)
		}
	}
}

func TestSelectGreedyBudgetRespected(t *testing.T) {
	snips := []Snippet{
		{Condition: sqlparser.JoinCondition{LeftTable: "a", LeftColumn: "x", RightTable: "b", RightColumn: "y"}, Value: 10},
		{Condition: sqlparser.JoinCondition{LeftTable: "c", LeftColumn: "x", RightTable: "d", RightColumn: "y"}, Value: 5},
	}
	sel := SelectGreedy(snips, 8)
	if sel.Tokens > 8 {
		t.Errorf("greedy exceeded budget: %d", sel.Tokens)
	}
}
