package prompt

import (
	"fmt"
	"strings"

	"lambdatune/internal/backend"
	"lambdatune/internal/engine"
	"lambdatune/internal/llm"
)

// template is Listing 1 of the paper, with Go format verbs in place of the
// ${...} placeholders.
const template = `Recommend some configuration parameters for %s to
optimize the system's performance. Parameters might
include system-level configurations, like memory,
query optimizer or physical design configurations,
like index recommendations.
Each row in the following list has the following format:
{a join key A}:{all the joins with A in the workload}
%s
The workload runs on a system with the following specs:
memory: %d GB
cores: %d
`

// fullSQLTemplate is the compressor-off ablation prompt (§6.4.4): raw SQL
// queries instead of the compressed join structure.
const fullSQLTemplate = `Recommend some configuration parameters for %s to
optimize the system's performance. Parameters might
include system-level configurations, like memory,
query optimizer or physical design configurations,
like index recommendations.
The workload consists of the following SQL queries:
%s
The workload runs on a system with the following specs:
memory: %d GB
cores: %d
`

// Options configures prompt generation.
type Options struct {
	// TokenBudget bounds the workload-representation tokens (paper's ℬ).
	// Zero means "fit as much as possible" under ModelLimit.
	TokenBudget int
	// ModelLimit is the LLM's intrinsic input limit, used when TokenBudget
	// is zero.
	ModelLimit int
	// UseILP selects the §3.3 ILP (true, default path) or the greedy
	// ablation selector.
	UseILP bool
	// FullSQL disables the compressor entirely (§6.4.4): raw queries are
	// embedded until the budget is exhausted.
	FullSQL bool
}

// DefaultOptions matches the paper's configuration.
func DefaultOptions() Options {
	return Options{TokenBudget: 0, ModelLimit: 4000, UseILP: true}
}

// Result is a generated prompt with bookkeeping for the experiments.
type Result struct {
	Text string
	// WorkloadTokens counts the tokens spent on workload representation.
	WorkloadTokens int
	// TotalTokens counts the whole prompt.
	TotalTokens int
	// SelectedValue is the total V(p) conveyed (0 for FullSQL).
	SelectedValue float64
	// QueriesEmbedded counts raw queries included (FullSQL mode only).
	QueriesEmbedded int
}

// Generate builds the tuning prompt for the workload (paper Algorithm 1,
// GeneratePrompt step). The backend is used only for EXPLAIN-based snippet
// valuation under its current (default) configuration.
func Generate(db backend.Backend, queries []*engine.Query, hw engine.Hardware, opts Options) (Result, error) {
	budget := opts.TokenBudget
	if budget <= 0 {
		budget = opts.ModelLimit
		if budget <= 0 {
			budget = 4000
		}
	}
	dbms := db.Flavor().String()
	memGB := int(hw.MemoryBytes >> 30)

	if opts.FullSQL {
		var b strings.Builder
		n := 0
		for _, q := range queries {
			sql := q.SQL + ";\n"
			if llm.CountTokens(b.String()+sql) > budget {
				break
			}
			b.WriteString(sql)
			n++
		}
		text := fmt.Sprintf(fullSQLTemplate, dbms, b.String(), memGB, hw.Cores)
		return Result{
			Text:            text,
			WorkloadTokens:  llm.CountTokens(b.String()),
			TotalTokens:     llm.CountTokens(text),
			QueriesEmbedded: n,
		}, nil
	}

	snippets := CollectSnippets(db, queries)
	var sel Selection
	var err error
	if opts.UseILP {
		sel, err = SelectILP(snippets, budget)
		if err != nil {
			return Result{}, err
		}
	} else {
		sel = SelectGreedy(snippets, budget)
	}
	text := fmt.Sprintf(template, dbms, strings.TrimRight(sel.Render(), "\n"), memGB, hw.Cores)
	return Result{
		Text:           text,
		WorkloadTokens: sel.Tokens,
		TotalTokens:    llm.CountTokens(text),
		SelectedValue:  sel.Value,
	}, nil
}
